#pragma once
// Minimal self-contained JSON value / parser / writer — just enough to
// persist platforms, task graphs and design-point databases (io/serialize.hpp)
// without external dependencies. Supports the JSON subset those artifacts
// need: null, bool, finite numbers, strings (with \" \\ \/ \b \f \n \r \t and
// \uXXXX BMP escapes), arrays and objects. Object key order is preserved.

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <variant>
#include <vector>

namespace clr::io {

class Json;
using JsonArray = std::vector<Json>;
/// Order-preserving object representation.
using JsonObject = std::vector<std::pair<std::string, Json>>;

/// Parse / structure errors carry a byte offset into the input.
class JsonError : public std::runtime_error {
 public:
  JsonError(const std::string& message, std::size_t offset)
      : std::runtime_error(message + " (at offset " + std::to_string(offset) + ")"),
        offset_(offset) {}
  std::size_t offset() const { return offset_; }

 private:
  std::size_t offset_;
};

/// A JSON value.
class Json {
 public:
  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}
  Json(bool b) : value_(b) {}
  Json(double d) : value_(d) {}
  Json(int i) : value_(static_cast<double>(i)) {}
  Json(unsigned u) : value_(static_cast<double>(u)) {}
  Json(std::int64_t i) : value_(static_cast<double>(i)) {}
  Json(std::uint64_t u) : value_(static_cast<double>(u)) {}
  Json(const char* s) : value_(std::string(s)) {}
  Json(std::string s) : value_(std::move(s)) {}
  Json(JsonArray a) : value_(std::move(a)) {}
  Json(JsonObject o) : value_(std::move(o)) {}

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(value_); }
  bool is_bool() const { return std::holds_alternative<bool>(value_); }
  bool is_number() const { return std::holds_alternative<double>(value_); }
  bool is_string() const { return std::holds_alternative<std::string>(value_); }
  bool is_array() const { return std::holds_alternative<JsonArray>(value_); }
  bool is_object() const { return std::holds_alternative<JsonObject>(value_); }

  /// Typed accessors; throw JsonError on type mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const JsonArray& as_array() const;
  const JsonObject& as_object() const;

  /// Object field lookup; throws JsonError when missing.
  const Json& at(const std::string& key) const;
  /// Object field lookup; returns nullptr when missing.
  const Json* find(const std::string& key) const;

  /// Convenience integral accessor with range check.
  std::int64_t as_int() const;

  /// Serialize. indent = 0 emits compact JSON, > 0 pretty-prints.
  std::string dump(int indent = 0) const;

  /// Parse a complete JSON document (trailing junk is an error).
  static Json parse(const std::string& text);

 private:
  std::variant<std::nullptr_t, bool, double, std::string, JsonArray, JsonObject> value_;
};

}  // namespace clr::io
