#pragma once
// Versioned, zero-copy `.clrdb` design-database snapshots (DESIGN.md §5.11).
//
// The JSON artifact of io/serialize.hpp is the human-readable interchange
// format; this is the *service* format: a little-endian flat binary holding
// the DesignDb, its ClrSpace and (optionally) the precomputed DrcMatrix in
// relocatable, offset-addressed tables. One read (or one read-only mmap)
// makes every table usable in place — no parse, no per-process DrcMatrix
// rebuild, and one physical copy shared by any number of processes mapping
// the same file.
//
// File layout (all integers little-endian, all sections 8-byte aligned):
//
//   [0..8)   magic        89 'C' 'L' 'R' 'D' 'B' 0D 0A   (PNG-style: catches
//                         text-mode mangling and truncated/foreign files)
//   [8..12)  u32 version  format version; readers accept 1..kSnapshotVersion
//   [12..16) u32 flags    must be 0 (reserved in every defined version)
//   [16..24) u64 file_size  total byte size; must equal the actual size
//   [24..32) u64 checksum   FNV-1a64 over [payload_start, file_size)
//   [32..36) u32 section_count
//   [36..40) u32 reserved    must be 0
//   [40.. )  section table: section_count × { u32 kind; u32 reserved;
//                                             u64 offset; u64 size }
//   payload sections follow (payload_start = 40 + 24·section_count).
//
// The header and section table are validated structurally (every byte is
// either checked against an expected value or bounds-checked before use);
// the payload is covered by the checksum. Deserialization is hostile-input
// safe: any truncation, bad magic, unknown version/flag/section, checksum
// mismatch, out-of-bounds offset or inconsistent count throws SnapshotError
// — never reads past the buffer (fuzzed by tests/io/test_snapshot.cpp under
// ASan). Versioning follows the RethinkDB serialize_for_version idiom:
// writers are version-gated, readers dispatch on the header version, and a
// future version is rejected with a found-vs-supported message.

#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "dse/design_db.hpp"
#include "reliability/clr_config.hpp"
#include "runtime/drc_matrix.hpp"
#include "runtime/mdp_policy.hpp"

namespace clr::io {

/// Current snapshot format version; bump on any layout change and keep the
/// old decoder alive behind the version dispatch.
///
/// Version history:
///   1 — design-database container: ClrSpace + DesignPoints [+ DrcMatrix].
///   2 — adds the checkpoint section kinds (ExploreState, RunnerState,
///       DESIGN.md §5.12). A version-2 file holds EITHER a design database
///       (same sections as version 1, byte-identical layout) OR exactly one
///       checkpoint section — never both. Version-1 files still load.
///   3 — adds the FleetState checkpoint kind (completed fleet aggregation
///       blocks, DESIGN.md §5.13). Same shape rule as version 2; version-1
///       and version-2 files still load.
///   4 — adds the MdpPolicy design-database companion section (kind 8, the
///       solved rt::MdpTable; DESIGN.md §5.14) and extends the checkpoint
///       stats/block-sum payloads with the reconfiguration-port fields
///       (io/checkpoint.cpp decodes older payload layouts by version).
///       Versions 1-3 still load.
inline constexpr std::uint32_t kSnapshotVersion = 4;

/// Section kinds. Values are part of the format; never reuse.
enum class SnapshotSection : std::uint32_t {
  ClrSpace = 1,      ///< the CLR configuration menu the points index into
  DesignPoints = 2,  ///< columnar DesignDb tables (CSR task assignments)
  DrcMatrix = 3,     ///< optional n×n pairwise reconfiguration costs
  // 4 is reserved for the sched::CompiledGraph tables (future version).
  ExploreState = 5,  ///< design-flow checkpoint (GA state + stage progress)
  RunnerState = 6,   ///< exp::Runner checkpoint (completed replication jobs)
  FleetState = 7,    ///< fleet::run_fleet checkpoint (completed block sums)
  MdpPolicy = 8,     ///< solved rt::MdpTable riding with its design database
};

/// Typed deserialization failure. Every constructor-path error names what it
/// found and what it expected (same message discipline as the JSON schema
/// check in io/serialize.cpp).
class SnapshotError : public std::runtime_error {
 public:
  enum class Kind {
    Io,          ///< cannot open/read/map the file
    Truncated,   ///< buffer shorter than the structures it declares
    BadMagic,    ///< not a .clrdb file
    BadVersion,  ///< version from the future (or 0)
    Checksum,    ///< payload bytes do not match the stored checksum
    Bounds,      ///< a section offset/size/count escapes the buffer
    BadValue,    ///< a stored value is structurally invalid (flags, indices)
  };

  SnapshotError(Kind kind, const std::string& message)
      : std::runtime_error("snapshot: " + message), kind_(kind) {}

  Kind kind() const { return kind_; }

 private:
  Kind kind_;
};

/// Zero-copy, read-only view over a validated snapshot buffer. attach()
/// performs the full structural + checksum validation once; every accessor
/// afterwards is a bounds-free span into the caller's buffer (the buffer
/// must outlive the view). All spans alias the file bytes directly — this is
/// the share-one-mapping-across-processes path.
class SnapshotView {
 public:
  /// Validate `data[0, size)` as a .clrdb snapshot. Throws SnapshotError on
  /// any structural or checksum defect. `data` must be 8-byte aligned (mmap
  /// and the Snapshot arena both guarantee this).
  static SnapshotView attach(const void* data, std::size_t size);

  std::uint32_t version() const { return version_; }

  // --- CLR space ---
  std::size_t clr_space_size() const { return clr_count_; }
  /// Decoded configuration `i` (encoded as 4 technique bytes in the file).
  rel::ClrConfig clr_config(std::size_t i) const;

  // --- Design points (columnar) ---
  std::size_t num_points() const { return num_points_; }
  std::size_t num_assignments() const { return num_assignments_; }
  /// CSR offsets into the assignment columns: point i owns rows
  /// [point_offsets()[i], point_offsets()[i+1]).
  std::span<const std::uint64_t> point_offsets() const { return point_off_; }
  std::span<const double> energy() const { return energy_; }
  std::span<const double> makespan() const { return makespan_; }
  std::span<const double> func_rel() const { return func_rel_; }
  /// 0/1 per point (ReD extra flag).
  std::span<const std::uint8_t> extra() const { return extra_; }
  std::span<const std::uint32_t> assignment_pe() const { return pe_; }
  std::span<const std::uint32_t> assignment_impl() const { return impl_; }
  std::span<const std::uint32_t> assignment_clr() const { return clr_index_; }
  std::span<const std::int32_t> assignment_priority() const { return priority_; }

  // --- Optional DrcMatrix ---
  bool has_drc() const { return drc_present_; }
  /// Row-major num_points()² cost table (empty when the section is absent).
  std::span<const double> drc_costs() const { return drc_costs_; }

  // --- Optional MdpPolicy companion section (version 4, DESIGN.md §5.14) ---
  bool has_mdp() const { return mdp_present_; }
  std::uint32_t mdp_makespan_bins() const { return mdp_makespan_bins_; }
  std::uint32_t mdp_func_rel_bins() const { return mdp_func_rel_bins_; }
  std::uint64_t mdp_num_points() const { return mdp_num_points_; }
  double mdp_gamma() const { return mdp_gamma_; }
  double mdp_p_rc() const { return mdp_p_rc_; }
  /// The QoS box the bins partition, as 6 doubles: energy min/max, makespan
  /// min/max, func_rel min/max (empty when the section is absent).
  std::span<const double> mdp_ranges() const { return mdp_ranges_; }
  /// Greedy action per state, state = bin·num_points + current point.
  std::span<const std::uint32_t> mdp_policy() const { return mdp_policy_; }
  /// Value function per state (same indexing).
  std::span<const double> mdp_values() const { return mdp_values_; }

  // --- Checkpoint sections (versions 2-3, DESIGN.md §5.12-5.13) ---
  /// True when the file holds a checkpoint instead of a design database.
  bool has_checkpoint() const { return checkpoint_kind_ != 0; }
  /// The checkpoint's section kind (ExploreState, RunnerState or
  /// FleetState); 0 when has_checkpoint() is false.
  std::uint32_t checkpoint_section_kind() const { return checkpoint_kind_; }
  /// The raw checkpoint payload bytes; io/checkpoint.hpp owns the decoding
  /// (attach() only validates the span bounds and a minimum size).
  std::span<const std::uint8_t> checkpoint_payload() const { return checkpoint_payload_; }

 private:
  friend class Snapshot;
  SnapshotView() = default;

  std::uint32_t version_ = 0;
  std::size_t clr_count_ = 0;
  std::span<const std::uint8_t> clr_configs_;  ///< 4 bytes per config
  std::size_t num_points_ = 0;
  std::size_t num_assignments_ = 0;
  std::span<const std::uint64_t> point_off_;
  std::span<const double> energy_, makespan_, func_rel_;
  std::span<const std::uint8_t> extra_;
  std::span<const std::uint32_t> pe_, impl_, clr_index_;
  std::span<const std::int32_t> priority_;
  std::span<const double> drc_costs_;
  bool drc_present_ = false;
  bool mdp_present_ = false;
  std::uint32_t mdp_makespan_bins_ = 0;
  std::uint32_t mdp_func_rel_bins_ = 0;
  std::uint64_t mdp_num_points_ = 0;
  double mdp_gamma_ = 0.0;
  double mdp_p_rc_ = 0.0;
  std::span<const double> mdp_ranges_;
  std::span<const std::uint32_t> mdp_policy_;
  std::span<const double> mdp_values_;
  std::uint32_t checkpoint_kind_ = 0;
  std::span<const std::uint8_t> checkpoint_payload_;
};

/// Owning snapshot: a read-only mmap of the file when the platform supports
/// it (instant, demand-paged, physically shared across processes), else one
/// aligned heap arena filled by a single read. Movable, not copyable.
class Snapshot {
 public:
  /// Open + validate. Throws SnapshotError (Kind::Io on filesystem errors).
  static Snapshot open(const std::string& path);

  /// Validate an in-memory image (takes ownership; used by tests/fuzzing).
  static Snapshot from_bytes(std::string bytes);

  Snapshot(Snapshot&& other) noexcept;
  Snapshot& operator=(Snapshot&& other) noexcept;
  Snapshot(const Snapshot&) = delete;
  Snapshot& operator=(const Snapshot&) = delete;
  ~Snapshot();

  const SnapshotView& view() const { return view_; }
  std::size_t size_bytes() const { return size_; }
  /// True when the bytes are a shared read-only file mapping (zero-copy).
  bool is_mapped() const { return mapped_; }

 private:
  Snapshot() = default;
  void reset() noexcept;

  SnapshotView view_;
  void* data_ = nullptr;
  std::size_t size_ = 0;
  bool mapped_ = false;
  std::string arena_;  ///< backing store for the non-mmap / from_bytes path
};

/// A snapshot materialized into the library's owning runtime types.
struct LoadedSnapshot {
  dse::DesignDb db;
  rel::ClrSpace space{std::vector<rel::ClrConfig>{}};
  /// Present when the file carried a DrcMatrix section; loaders then skip
  /// the O(n²·tasks) rebuild entirely.
  std::optional<rt::DrcMatrix> drc;
  /// Present when the file carried an MdpPolicy section (version 4); loaders
  /// then skip the offline value-iteration solve entirely.
  std::optional<rt::MdpTable> mdp;
};

/// Copy a validated view into owning DesignDb/ClrSpace/DrcMatrix values.
/// Validates the cross-section invariants the flat tables cannot express
/// (clr indices inside the space, monotone CSR offsets already checked).
/// Rejects checkpoint-holding files (those go through io/checkpoint.hpp).
LoadedSnapshot materialize(const SnapshotView& view);

/// Serialize for an explicit format version (RethinkDB serialize_for_version
/// idiom). The design-database sections are layout-identical in versions
/// 1..4, so all are writable — the older versions stay available for
/// cross-version compatibility tests and downgrade-friendly exports. `drc`
/// and `mdp` are optional; an `mdp` table requires version >= 4 (older
/// versions cannot carry the section and are rejected with BadValue).
std::string serialize_snapshot_for_version(std::uint32_t version, const dse::DesignDb& db,
                                           const rel::ClrSpace& space,
                                           const rt::DrcMatrix* drc,
                                           const rt::MdpTable* mdp = nullptr);

/// Serialize at the current version.
std::string serialize_snapshot(const dse::DesignDb& db, const rel::ClrSpace& space,
                               const rt::DrcMatrix* drc = nullptr,
                               const rt::MdpTable* mdp = nullptr);

/// Durably write `bytes` to `path`: write to `path + ".tmp"`, fsync the file,
/// rename over `path`, then fsync the parent directory — after a power-cut
/// crash the destination holds either the old bytes or the new bytes, never
/// a torn or zero-length file. Throws SnapshotError (Kind::Io) on failure;
/// a failed attempt never disturbs an existing good file at `path`.
void write_file_durable(const std::string& path, std::string_view bytes);

/// Write a .clrdb file via write_file_durable (atomic and power-cut safe).
void save_snapshot(const std::string& path, const dse::DesignDb& db, const rel::ClrSpace& space,
                   const rt::DrcMatrix* drc = nullptr, const rt::MdpTable* mdp = nullptr);

/// open() + materialize() in one call.
LoadedSnapshot load_snapshot(const std::string& path);

/// True when `path` names a .clrdb artifact (by extension; the loaders also
/// sniff the magic, so a mis-extensioned file still fails loudly).
bool is_snapshot_path(const std::string& path);

/// True when `bytes` starts with the snapshot magic (format dispatch for
/// loaders that accept both JSON and .clrdb).
bool has_snapshot_magic(std::string_view bytes);

namespace detail {

/// One raw section destined for a .clrdb container.
struct RawSection {
  std::uint32_t kind = 0;
  std::string bytes;
};

/// Assemble a complete .clrdb image (magic, header, checksum, section table,
/// 8-aligned payload) around pre-encoded section bytes. Shared by the
/// design-database serializer and the checkpoint writers so the container
/// discipline (alignment, checksum coverage) cannot drift between them.
std::string assemble_snapshot_container(std::uint32_t version,
                                        std::vector<RawSection> sections);

}  // namespace detail

}  // namespace clr::io
