#pragma once
// JSON (de)serialization of the library's persistent artifacts:
//   - Platform      — the architecture model,
//   - TaskGraph     — the application model,
//   - ClrSpace      — the CLR configuration menu,
//   - DesignDb      — the stored design points (the Fig. 3 database the
//                     design-time stage hands to the run-time manager).
//
// The DesignDb file embeds the CLR space it indexes into, so a loaded
// database is self-describing; the platform/graph are stored separately
// (they are larger and shared across databases).

#include "dse/design_db.hpp"
#include "io/json.hpp"
#include "platform/platform.hpp"
#include "reliability/clr_config.hpp"
#include "taskgraph/graph.hpp"

namespace clr::io {

/// Current schema version; bumped on breaking format changes.
inline constexpr int kSchemaVersion = 1;

Json to_json(const plat::Platform& platform);
plat::Platform platform_from_json(const Json& j);

Json to_json(const tg::TaskGraph& graph);
tg::TaskGraph task_graph_from_json(const Json& j);

Json to_json(const rel::ClrSpace& space);
rel::ClrSpace clr_space_from_json(const Json& j);

Json to_json(const sched::Configuration& cfg);
sched::Configuration configuration_from_json(const Json& j);

/// The design-point database, embedding its CLR space.
Json to_json(const dse::DesignDb& db, const rel::ClrSpace& space);

struct LoadedDesignDb {
  dse::DesignDb db;
  rel::ClrSpace space;
};
LoadedDesignDb design_db_from_json(const Json& j);

/// Convenience file round trips (throw std::runtime_error / JsonError).
void save_design_db(const std::string& path, const dse::DesignDb& db,
                    const rel::ClrSpace& space);
LoadedDesignDb load_design_db(const std::string& path);

}  // namespace clr::io
