#include "io/checkpoint.hpp"

#include <algorithm>
#include <cstring>

namespace clr::io {

namespace {

/// Caps on every decoded element count: far above real runs (populations are
/// tens, grids are thousands) yet small enough that every size computation
/// stays far from overflow on hostile input.
constexpr std::uint64_t kMaxCkptCount = std::uint64_t{1} << 20;
constexpr std::uint64_t kMaxCkptJobs = std::uint64_t{1} << 24;
/// Fleet scale: up to 2^40 devices (far above the 10⁵–10⁶ target) while the
/// block count stays under kMaxCkptCount and every size product stays far
/// from overflow.
constexpr std::uint64_t kMaxFleetDevices = std::uint64_t{1} << 40;

[[noreturn]] void fail(SnapshotError::Kind kind, const std::string& message) {
  throw SnapshotError(kind, message);
}

// --- Little-endian append (mirrors io/snapshot.cpp's container encoding) ---

template <typename T>
void append_scalar(std::string& out, T v) {
  char buf[sizeof v];
  std::memcpy(buf, &v, sizeof v);
  out.append(buf, sizeof v);
}

void pad_to_8(std::string& out) { out.append((8 - out.size() % 8) % 8, '\0'); }

// --- Bounded decode cursor ---------------------------------------------------

/// Reads scalars/spans off a checkpoint payload; any read past the end
/// throws a typed Truncated error naming the field, so torn payloads (and
/// fuzzer mutations) fail loudly instead of reading out of bounds.
class Cursor {
 public:
  explicit Cursor(std::span<const std::uint8_t> bytes)
      : p_(bytes.data()), end_(bytes.data() + bytes.size()) {}

  template <typename T>
  T take(const char* what) {
    if (remaining() < sizeof(T)) {
      fail(SnapshotError::Kind::Truncated,
           std::string("checkpoint payload ends inside ") + what);
    }
    T v;
    std::memcpy(&v, p_, sizeof v);
    p_ += sizeof v;
    return v;
  }

  std::uint64_t take_count(const char* what, std::uint64_t cap) {
    const auto n = take<std::uint64_t>(what);
    if (n > cap) {
      fail(SnapshotError::Kind::BadValue, std::string(what) + " count " + std::to_string(n) +
                                              " exceeds the format limit of " +
                                              std::to_string(cap));
    }
    return n;
  }

  const std::uint8_t* take_raw(std::uint64_t n, const char* what) {
    if (remaining() < n) {
      fail(SnapshotError::Kind::Truncated,
           std::string("checkpoint payload ends inside ") + what);
    }
    const std::uint8_t* at = p_;
    p_ += n;
    return at;
  }

  std::size_t remaining() const { return static_cast<std::size_t>(end_ - p_); }

 private:
  const std::uint8_t* p_;
  const std::uint8_t* end_;
};

/// At most 7 bytes of zero padding may follow a fully-decoded payload.
void expect_only_padding(const Cursor& cursor, const char* what) {
  if (cursor.remaining() >= 8) {
    fail(SnapshotError::Kind::BadValue, std::string(what) + " payload has " +
                                            std::to_string(cursor.remaining()) +
                                            " undecoded trailing bytes");
  }
}

// --- Shared sub-encodings ----------------------------------------------------

void encode_individual(std::string& out, const moea::Individual& ind) {
  append_scalar<std::uint64_t>(out, ind.genes.size());
  for (int g : ind.genes) append_scalar<std::int32_t>(out, g);
  append_scalar<std::uint64_t>(out, ind.eval.objectives.size());
  for (double o : ind.eval.objectives) append_scalar<double>(out, o);
  append_scalar<double>(out, ind.eval.violation);
  append_scalar<double>(out, ind.fitness);
  append_scalar<std::int32_t>(out, ind.rank);
  append_scalar<double>(out, ind.crowding);
}

moea::Individual decode_individual(Cursor& cursor) {
  moea::Individual ind;
  const auto ngenes = cursor.take_count("individual genes", kMaxCkptCount);
  ind.genes.reserve(static_cast<std::size_t>(ngenes));
  for (std::uint64_t i = 0; i < ngenes; ++i) {
    ind.genes.push_back(cursor.take<std::int32_t>("individual gene"));
  }
  const auto nobj = cursor.take_count("individual objectives", kMaxCkptCount);
  ind.eval.objectives.reserve(static_cast<std::size_t>(nobj));
  for (std::uint64_t i = 0; i < nobj; ++i) {
    ind.eval.objectives.push_back(cursor.take<double>("individual objective"));
  }
  ind.eval.violation = cursor.take<double>("individual violation");
  ind.fitness = cursor.take<double>("individual fitness");
  ind.rank = cursor.take<std::int32_t>("individual rank");
  ind.crowding = cursor.take<double>("individual crowding");
  return ind;
}

void encode_ga_state(std::string& out, const moea::GaState& ga) {
  append_scalar<std::uint64_t>(out, ga.generations_done);
  append_scalar<std::uint64_t>(out, ga.rng_state.size());
  out.append(ga.rng_state);
  append_scalar<std::uint64_t>(out, ga.population.size());
  for (const auto& ind : ga.population) encode_individual(out, ind);
  append_scalar<std::uint64_t>(out, ga.archive.size());
  for (const auto& ind : ga.archive) encode_individual(out, ind);
}

moea::GaState decode_ga_state(Cursor& cursor) {
  moea::GaState ga;
  ga.generations_done = cursor.take<std::uint64_t>("GA generation counter");
  const auto rng_len = cursor.take_count("GA rng state", kMaxCkptCount);
  const std::uint8_t* rng_bytes = cursor.take_raw(rng_len, "GA rng state");
  ga.rng_state.assign(reinterpret_cast<const char*>(rng_bytes),
                      static_cast<std::size_t>(rng_len));
  const auto npop = cursor.take_count("GA population", kMaxCkptCount);
  ga.population.reserve(static_cast<std::size_t>(npop));
  for (std::uint64_t i = 0; i < npop; ++i) ga.population.push_back(decode_individual(cursor));
  const auto narch = cursor.take_count("GA archive", kMaxCkptCount);
  ga.archive.reserve(static_cast<std::size_t>(narch));
  for (std::uint64_t i = 0; i < narch; ++i) ga.archive.push_back(decode_individual(cursor));
  return ga;
}

void encode_design_db(std::string& out, const dse::DesignDb& db) {
  append_scalar<std::uint64_t>(out, db.size());
  for (const auto& p : db.points()) {
    append_scalar<double>(out, p.energy);
    append_scalar<double>(out, p.makespan);
    append_scalar<double>(out, p.func_rel);
    out.push_back(p.extra ? '\1' : '\0');
    append_scalar<std::uint64_t>(out, p.config.tasks.size());
    for (const auto& a : p.config.tasks) {
      append_scalar<std::uint32_t>(out, a.pe);
      append_scalar<std::uint32_t>(out, a.impl_index);
      append_scalar<std::uint32_t>(out, a.clr_index);
      append_scalar<std::int32_t>(out, a.priority);
    }
  }
}

dse::DesignDb decode_design_db(Cursor& cursor) {
  dse::DesignDb db;
  const auto npoints = cursor.take_count("design points", kMaxCkptCount);
  db.reserve(static_cast<std::size_t>(npoints));
  for (std::uint64_t i = 0; i < npoints; ++i) {
    dse::DesignPoint p;
    p.energy = cursor.take<double>("point energy");
    p.makespan = cursor.take<double>("point makespan");
    p.func_rel = cursor.take<double>("point func_rel");
    p.extra = cursor.take<std::uint8_t>("point extra flag") != 0;
    const auto ntasks = cursor.take_count("point tasks", kMaxCkptCount);
    p.config.tasks.resize(static_cast<std::size_t>(ntasks));
    for (auto& a : p.config.tasks) {
      a.pe = cursor.take<std::uint32_t>("assignment pe");
      a.impl_index = cursor.take<std::uint32_t>("assignment impl");
      a.clr_index = cursor.take<std::uint32_t>("assignment clr");
      a.priority = cursor.take<std::int32_t>("assignment priority");
    }
    db.add(std::move(p));
  }
  return db;
}

/// RuntimeStats without the trace. Version 4 appends the reconfiguration-port
/// fields (23 fixed fields, 184 bytes per job); versions <= 3 carried 18
/// fields in 144 bytes — decode_stats reconstructs the new fields exactly for
/// those (see below), so pre-v4 checkpoints resume bit-identically.
void encode_stats(std::string& out, const rt::RuntimeStats& s) {
  append_scalar<double>(out, s.total_cycles);
  append_scalar<std::uint64_t>(out, s.num_events);
  append_scalar<std::uint64_t>(out, s.num_reconfigs);
  append_scalar<std::uint64_t>(out, s.num_infeasible_events);
  append_scalar<double>(out, s.avg_energy);
  append_scalar<double>(out, s.total_reconfig_cost);
  append_scalar<double>(out, s.avg_reconfig_cost);
  append_scalar<double>(out, s.max_drc);
  append_scalar<double>(out, s.qos_violation_time);
  append_scalar<std::uint64_t>(out, s.num_transient_faults);
  append_scalar<std::uint64_t>(out, s.num_recovered_transients);
  append_scalar<std::uint64_t>(out, s.num_unrecovered_failures);
  append_scalar<std::uint64_t>(out, s.num_permanent_faults);
  append_scalar<std::uint64_t>(out, s.num_evacuations);
  append_scalar<std::uint64_t>(out, s.num_safe_mode_entries);
  append_scalar<double>(out, s.downtime);
  append_scalar<double>(out, s.availability);
  append_scalar<double>(out, s.mttr);
  append_scalar<double>(out, s.reconfig_stall_time);
  append_scalar<double>(out, s.prefetch_hidden_time);
  append_scalar<std::uint64_t>(out, s.prefetch_hits);
  append_scalar<std::uint64_t>(out, s.prefetch_misses);
  append_scalar<double>(out, s.service_availability);
}

rt::RuntimeStats decode_stats(Cursor& cursor, std::uint32_t version) {
  rt::RuntimeStats s;
  s.total_cycles = cursor.take<double>("stats total_cycles");
  s.num_events = static_cast<std::size_t>(cursor.take<std::uint64_t>("stats num_events"));
  s.num_reconfigs = static_cast<std::size_t>(cursor.take<std::uint64_t>("stats num_reconfigs"));
  s.num_infeasible_events =
      static_cast<std::size_t>(cursor.take<std::uint64_t>("stats num_infeasible_events"));
  s.avg_energy = cursor.take<double>("stats avg_energy");
  s.total_reconfig_cost = cursor.take<double>("stats total_reconfig_cost");
  s.avg_reconfig_cost = cursor.take<double>("stats avg_reconfig_cost");
  s.max_drc = cursor.take<double>("stats max_drc");
  s.qos_violation_time = cursor.take<double>("stats qos_violation_time");
  s.num_transient_faults =
      static_cast<std::size_t>(cursor.take<std::uint64_t>("stats num_transient_faults"));
  s.num_recovered_transients =
      static_cast<std::size_t>(cursor.take<std::uint64_t>("stats num_recovered_transients"));
  s.num_unrecovered_failures =
      static_cast<std::size_t>(cursor.take<std::uint64_t>("stats num_unrecovered_failures"));
  s.num_permanent_faults =
      static_cast<std::size_t>(cursor.take<std::uint64_t>("stats num_permanent_faults"));
  s.num_evacuations =
      static_cast<std::size_t>(cursor.take<std::uint64_t>("stats num_evacuations"));
  s.num_safe_mode_entries =
      static_cast<std::size_t>(cursor.take<std::uint64_t>("stats num_safe_mode_entries"));
  s.downtime = cursor.take<double>("stats downtime");
  s.availability = cursor.take<double>("stats availability");
  s.mttr = cursor.take<double>("stats mttr");
  if (version >= 4) {
    s.reconfig_stall_time = cursor.take<double>("stats reconfig_stall_time");
    s.prefetch_hidden_time = cursor.take<double>("stats prefetch_hidden_time");
    s.prefetch_hits = static_cast<std::size_t>(cursor.take<std::uint64_t>("stats prefetch_hits"));
    s.prefetch_misses =
        static_cast<std::size_t>(cursor.take<std::uint64_t>("stats prefetch_misses"));
    s.service_availability = cursor.take<double>("stats service_availability");
  } else {
    // Pre-v4 runs had no reconfiguration port model: every reconfiguration
    // stalled in full, so the split is reconstructible exactly — stall equals
    // the folded cost, nothing was hidden, and service availability is the
    // same clamp the simulator applies (bit-identical inputs, same formula).
    s.reconfig_stall_time = s.total_reconfig_cost;
    s.prefetch_hidden_time = 0.0;
    s.prefetch_hits = 0;
    s.prefetch_misses = 0;
    s.service_availability =
        s.total_cycles > 0.0
            ? std::clamp(1.0 - (s.downtime + s.reconfig_stall_time) / s.total_cycles, 0.0, 1.0)
            : 1.0;
  }
  return s;
}

/// fleet::BlockSum. Version 4 appends the reconfiguration-port aggregates
/// (12 counters + 10 doubles, 176 bytes per block); versions <= 3 carried
/// 10 counters + 7 doubles in 136 bytes — decode_block_sum reconstructs the
/// exact pre-port equivalents for those.
void encode_block_sum(std::string& out, const fleet::BlockSum& b) {
  append_scalar<std::uint64_t>(out, b.devices);
  append_scalar<std::uint64_t>(out, b.events);
  append_scalar<std::uint64_t>(out, b.reconfigs);
  append_scalar<std::uint64_t>(out, b.infeasible_events);
  append_scalar<std::uint64_t>(out, b.transient_faults);
  append_scalar<std::uint64_t>(out, b.recovered_transients);
  append_scalar<std::uint64_t>(out, b.unrecovered_failures);
  append_scalar<std::uint64_t>(out, b.permanent_faults);
  append_scalar<std::uint64_t>(out, b.evacuations);
  append_scalar<std::uint64_t>(out, b.safe_mode_entries);
  append_scalar<std::uint64_t>(out, b.prefetch_hits);
  append_scalar<std::uint64_t>(out, b.prefetch_misses);
  append_scalar<double>(out, b.energy_sum);
  append_scalar<double>(out, b.reconfig_cost_sum);
  append_scalar<double>(out, b.violation_time_sum);
  append_scalar<double>(out, b.downtime_sum);
  append_scalar<double>(out, b.availability_sum);
  append_scalar<double>(out, b.mttr_sum);
  append_scalar<double>(out, b.stall_time_sum);
  append_scalar<double>(out, b.hidden_time_sum);
  append_scalar<double>(out, b.service_availability_sum);
  append_scalar<double>(out, b.max_drc);
}

fleet::BlockSum decode_block_sum(Cursor& cursor, std::uint32_t version) {
  fleet::BlockSum b;
  b.devices = cursor.take<std::uint64_t>("block devices");
  b.events = cursor.take<std::uint64_t>("block events");
  b.reconfigs = cursor.take<std::uint64_t>("block reconfigs");
  b.infeasible_events = cursor.take<std::uint64_t>("block infeasible_events");
  b.transient_faults = cursor.take<std::uint64_t>("block transient_faults");
  b.recovered_transients = cursor.take<std::uint64_t>("block recovered_transients");
  b.unrecovered_failures = cursor.take<std::uint64_t>("block unrecovered_failures");
  b.permanent_faults = cursor.take<std::uint64_t>("block permanent_faults");
  b.evacuations = cursor.take<std::uint64_t>("block evacuations");
  b.safe_mode_entries = cursor.take<std::uint64_t>("block safe_mode_entries");
  if (version >= 4) {
    b.prefetch_hits = cursor.take<std::uint64_t>("block prefetch_hits");
    b.prefetch_misses = cursor.take<std::uint64_t>("block prefetch_misses");
  }
  b.energy_sum = cursor.take<double>("block energy_sum");
  b.reconfig_cost_sum = cursor.take<double>("block reconfig_cost_sum");
  b.violation_time_sum = cursor.take<double>("block violation_time_sum");
  b.downtime_sum = cursor.take<double>("block downtime_sum");
  b.availability_sum = cursor.take<double>("block availability_sum");
  b.mttr_sum = cursor.take<double>("block mttr_sum");
  if (version >= 4) {
    b.stall_time_sum = cursor.take<double>("block stall_time_sum");
    b.hidden_time_sum = cursor.take<double>("block hidden_time_sum");
    b.service_availability_sum = cursor.take<double>("block service_availability_sum");
  } else {
    // Pre-v4 fleets never prefetched, so every device stalled its full dRC:
    // the stall fold is bit-identical to the cost fold (same addends, same
    // block order), nothing was hidden, and no stages were consumed. The
    // per-device service-availability clamp is not recoverable from a folded
    // sum; fault availability is its exact value whenever no device stalled
    // and its upper bound otherwise — the closest reconstruction available.
    b.stall_time_sum = b.reconfig_cost_sum;
    b.hidden_time_sum = 0.0;
    b.service_availability_sum = b.availability_sum;
  }
  b.max_drc = cursor.take<double>("block max_drc");
  return b;
}

std::span<const std::uint8_t> checkpoint_payload_of_kind(const SnapshotView& view,
                                                         SnapshotSection kind,
                                                         const char* name) {
  if (!view.has_checkpoint()) {
    fail(SnapshotError::Kind::BadValue,
         std::string("file holds a design database, not a ") + name + " checkpoint");
  }
  if (view.checkpoint_section_kind() != static_cast<std::uint32_t>(kind)) {
    fail(SnapshotError::Kind::BadValue,
         std::string("expected a ") + name + " checkpoint (section kind " +
             std::to_string(static_cast<std::uint32_t>(kind)) + "), found kind " +
             std::to_string(view.checkpoint_section_kind()));
  }
  return view.checkpoint_payload();
}

}  // namespace

// ---------------------------------------------------------------------------
// Explore checkpoints
// ---------------------------------------------------------------------------

std::string serialize_explore_checkpoint(const ExploreCheckpoint& checkpoint) {
  if (checkpoint.ref.size() != checkpoint.scale.size()) {
    fail(SnapshotError::Kind::BadValue,
         "reference point spans " + std::to_string(checkpoint.ref.size()) +
             " objectives but the scales span " + std::to_string(checkpoint.scale.size()));
  }
  std::string payload;
  append_scalar<std::uint64_t>(payload, checkpoint.sequence);
  append_scalar<std::uint64_t>(payload, checkpoint.param_hash);
  append_scalar<std::uint32_t>(payload, checkpoint.stage);
  append_scalar<std::uint32_t>(payload, 0);  // reserved
  append_scalar<double>(payload, checkpoint.spec_max_makespan);
  append_scalar<double>(payload, checkpoint.spec_min_func_rel);
  append_scalar<std::uint64_t>(payload, checkpoint.ref.size());
  for (double r : checkpoint.ref) append_scalar<double>(payload, r);
  for (double s : checkpoint.scale) append_scalar<double>(payload, s);
  encode_ga_state(payload, checkpoint.ga);
  append_scalar<std::uint64_t>(payload, checkpoint.red_seed_pos);
  encode_design_db(payload, checkpoint.based);
  encode_design_db(payload, checkpoint.red);
  pad_to_8(payload);

  std::vector<detail::RawSection> sections;
  sections.push_back(
      {static_cast<std::uint32_t>(SnapshotSection::ExploreState), std::move(payload)});
  return detail::assemble_snapshot_container(kSnapshotVersion, std::move(sections));
}

ExploreCheckpoint decode_explore_checkpoint(const SnapshotView& view) {
  Cursor cursor(checkpoint_payload_of_kind(view, SnapshotSection::ExploreState, "explore"));
  ExploreCheckpoint c;
  c.sequence = cursor.take<std::uint64_t>("sequence");
  c.param_hash = cursor.take<std::uint64_t>("param hash");
  c.stage = cursor.take<std::uint32_t>("stage");
  if (c.stage > 1) {
    fail(SnapshotError::Kind::BadValue,
         "explore stage " + std::to_string(c.stage) + " (want 0=base or 1=red)");
  }
  const auto reserved = cursor.take<std::uint32_t>("reserved");
  if (reserved != 0) {
    fail(SnapshotError::Kind::BadValue,
         "explore checkpoint reserved field is " + std::to_string(reserved) + " (must be 0)");
  }
  c.spec_max_makespan = cursor.take<double>("spec max_makespan");
  c.spec_min_func_rel = cursor.take<double>("spec min_func_rel");
  const auto nref = cursor.take_count("reference point", kMaxCkptCount);
  c.ref.reserve(static_cast<std::size_t>(nref));
  for (std::uint64_t i = 0; i < nref; ++i) c.ref.push_back(cursor.take<double>("reference"));
  c.scale.reserve(static_cast<std::size_t>(nref));
  for (std::uint64_t i = 0; i < nref; ++i) c.scale.push_back(cursor.take<double>("scale"));
  c.ga = decode_ga_state(cursor);
  c.red_seed_pos = cursor.take<std::uint64_t>("red seed position");
  c.based = decode_design_db(cursor);
  c.red = decode_design_db(cursor);
  expect_only_padding(cursor, "explore checkpoint");
  return c;
}

// ---------------------------------------------------------------------------
// Runner checkpoints
// ---------------------------------------------------------------------------

std::string serialize_runner_checkpoint(const RunnerCheckpoint& checkpoint) {
  if (checkpoint.done.size() != checkpoint.runs.size()) {
    fail(SnapshotError::Kind::BadValue,
         "done flags span " + std::to_string(checkpoint.done.size()) + " jobs but " +
             std::to_string(checkpoint.runs.size()) + " run records were provided");
  }
  std::string payload;
  append_scalar<std::uint64_t>(payload, checkpoint.sequence);
  append_scalar<std::uint64_t>(payload, checkpoint.grid_hash);
  append_scalar<std::uint64_t>(payload, checkpoint.replications);
  append_scalar<std::uint64_t>(payload, checkpoint.done.size());
  for (std::uint8_t d : checkpoint.done) payload.push_back(d != 0 ? '\1' : '\0');
  for (const auto& s : checkpoint.runs) encode_stats(payload, s);
  pad_to_8(payload);

  std::vector<detail::RawSection> sections;
  sections.push_back(
      {static_cast<std::uint32_t>(SnapshotSection::RunnerState), std::move(payload)});
  return detail::assemble_snapshot_container(kSnapshotVersion, std::move(sections));
}

RunnerCheckpoint decode_runner_checkpoint(const SnapshotView& view) {
  Cursor cursor(checkpoint_payload_of_kind(view, SnapshotSection::RunnerState, "runner"));
  RunnerCheckpoint c;
  c.sequence = cursor.take<std::uint64_t>("sequence");
  c.grid_hash = cursor.take<std::uint64_t>("grid hash");
  c.replications = cursor.take<std::uint64_t>("replication count");
  const auto jobs = cursor.take_count("job flags", kMaxCkptJobs);
  const std::uint8_t* flags = cursor.take_raw(jobs, "job flags");
  c.done.reserve(static_cast<std::size_t>(jobs));
  for (std::uint64_t i = 0; i < jobs; ++i) {
    if (flags[i] > 1) {
      fail(SnapshotError::Kind::BadValue, "job flag " + std::to_string(i) + " is " +
                                              std::to_string(flags[i]) + " (want 0 or 1)");
    }
    c.done.push_back(flags[i]);
  }
  c.runs.reserve(static_cast<std::size_t>(jobs));
  for (std::uint64_t i = 0; i < jobs; ++i) c.runs.push_back(decode_stats(cursor, view.version()));
  expect_only_padding(cursor, "runner checkpoint");
  return c;
}

// ---------------------------------------------------------------------------
// Fleet checkpoints
// ---------------------------------------------------------------------------

std::string serialize_fleet_checkpoint(const FleetCheckpoint& checkpoint) {
  const fleet::FleetProgress& p = checkpoint.progress;
  if (p.block_size == 0) {
    fail(SnapshotError::Kind::BadValue, "fleet checkpoint block_size must be >= 1");
  }
  const std::uint64_t expected_blocks =
      p.devices == 0 ? 0 : (p.devices + p.block_size - 1) / p.block_size;
  if (p.done.size() != expected_blocks || p.blocks.size() != expected_blocks) {
    fail(SnapshotError::Kind::BadValue,
         "fleet checkpoint carries " + std::to_string(p.done.size()) + " flags / " +
             std::to_string(p.blocks.size()) + " block sums but " +
             std::to_string(p.devices) + " devices at block size " +
             std::to_string(p.block_size) + " partition into " +
             std::to_string(expected_blocks) + " blocks");
  }
  std::string payload;
  append_scalar<std::uint64_t>(payload, checkpoint.sequence);
  append_scalar<std::uint64_t>(payload, checkpoint.param_hash);
  append_scalar<std::uint64_t>(payload, p.devices);
  append_scalar<std::uint64_t>(payload, p.block_size);
  append_scalar<std::uint64_t>(payload, p.done.size());
  for (std::uint8_t d : p.done) payload.push_back(d != 0 ? '\1' : '\0');
  for (const auto& b : p.blocks) encode_block_sum(payload, b);
  pad_to_8(payload);

  std::vector<detail::RawSection> sections;
  sections.push_back(
      {static_cast<std::uint32_t>(SnapshotSection::FleetState), std::move(payload)});
  return detail::assemble_snapshot_container(kSnapshotVersion, std::move(sections));
}

FleetCheckpoint decode_fleet_checkpoint(const SnapshotView& view) {
  Cursor cursor(checkpoint_payload_of_kind(view, SnapshotSection::FleetState, "fleet"));
  FleetCheckpoint c;
  c.sequence = cursor.take<std::uint64_t>("sequence");
  c.param_hash = cursor.take<std::uint64_t>("param hash");
  c.progress.param_hash = c.param_hash;
  c.progress.devices = cursor.take_count("fleet devices", kMaxFleetDevices);
  c.progress.block_size = cursor.take<std::uint64_t>("fleet block size");
  if (c.progress.block_size == 0) {
    fail(SnapshotError::Kind::BadValue, "fleet checkpoint block size is 0 (must be >= 1)");
  }
  const std::uint64_t expected_blocks =
      c.progress.devices == 0
          ? 0
          : (c.progress.devices + c.progress.block_size - 1) / c.progress.block_size;
  const auto blocks = cursor.take_count("fleet blocks", kMaxCkptCount);
  if (blocks != expected_blocks) {
    fail(SnapshotError::Kind::BadValue,
         "fleet checkpoint declares " + std::to_string(blocks) + " blocks but " +
             std::to_string(c.progress.devices) + " devices at block size " +
             std::to_string(c.progress.block_size) + " partition into " +
             std::to_string(expected_blocks));
  }
  const std::uint8_t* flags = cursor.take_raw(blocks, "fleet block flags");
  c.progress.done.reserve(static_cast<std::size_t>(blocks));
  for (std::uint64_t i = 0; i < blocks; ++i) {
    if (flags[i] > 1) {
      fail(SnapshotError::Kind::BadValue, "fleet block flag " + std::to_string(i) + " is " +
                                              std::to_string(flags[i]) + " (want 0 or 1)");
    }
    c.progress.done.push_back(flags[i]);
  }
  c.progress.blocks.reserve(static_cast<std::size_t>(blocks));
  for (std::uint64_t i = 0; i < blocks; ++i)
    c.progress.blocks.push_back(decode_block_sum(cursor, view.version()));
  expect_only_padding(cursor, "fleet checkpoint");
  return c;
}

// ---------------------------------------------------------------------------
// Common helpers + the A/B store
// ---------------------------------------------------------------------------

std::uint64_t checkpoint_sequence(const SnapshotView& view) {
  if (!view.has_checkpoint()) {
    fail(SnapshotError::Kind::BadValue, "file holds a design database, not a checkpoint");
  }
  // attach() guarantees the 16-byte preamble; the sequence is its first u64.
  std::uint64_t seq = 0;
  std::memcpy(&seq, view.checkpoint_payload().data(), sizeof seq);
  return seq;
}

std::optional<Snapshot> CheckpointStore::load_newest() {
  std::optional<Snapshot> best;
  std::uint64_t best_sequence = 0;
  int best_slot = -1;
  for (int slot = 0; slot < 2; ++slot) {
    const std::string path = slot == 0 ? slot_a() : slot_b();
    try {
      Snapshot snapshot = Snapshot::open(path);
      const std::uint64_t sequence = checkpoint_sequence(snapshot.view());
      if (best_slot < 0 || sequence > best_sequence) {
        best_sequence = sequence;
        best_slot = slot;
        best = std::move(snapshot);
      }
    } catch (const SnapshotError&) {
      // Missing, torn or corrupted slot: the sibling is the fallback.
    }
  }
  if (best_slot < 0) {
    write_slot_ = 0;
    next_sequence_ = 1;
    return std::nullopt;
  }
  write_slot_ = best_slot ^ 1;
  next_sequence_ = best_sequence + 1;
  return best;
}

void CheckpointStore::save(std::string_view bytes) {
  // Validate BEFORE touching disk: the A/B fallback only works if every
  // accepted save is a loadable checkpoint carrying the expected sequence.
  const Snapshot snapshot = Snapshot::from_bytes(std::string(bytes));
  const std::uint64_t sequence = checkpoint_sequence(snapshot.view());
  if (sequence != next_sequence_) {
    fail(SnapshotError::Kind::BadValue,
         "checkpoint carries sequence " + std::to_string(sequence) + " but the store expects " +
             std::to_string(next_sequence_));
  }
  write_file_durable(write_slot_ == 0 ? slot_a() : slot_b(), bytes);
  write_slot_ ^= 1;
  ++next_sequence_;
}

}  // namespace clr::io
