#include "io/snapshot.hpp"

#include <bit>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#define CLR_SNAPSHOT_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

// The format is defined little-endian and the zero-copy view reinterprets
// the mapped bytes in place. Big-endian hosts would need a byte-swapping
// materialize path; none of the supported targets are big-endian, so fail
// the build loudly instead of corrupting data silently.
static_assert(std::endian::native == std::endian::little,
              "io::snapshot requires a little-endian host (zero-copy .clrdb views)");

namespace clr::io {

namespace {

constexpr std::uint8_t kMagic[8] = {0x89, 'C', 'L', 'R', 'D', 'B', 0x0D, 0x0A};
constexpr std::size_t kHeaderSize = 40;
constexpr std::size_t kSectionEntrySize = 24;
/// Backstop against absurd section tables in hostile headers; version 1
/// defines three section kinds, so even future formats stay far below this.
constexpr std::uint32_t kMaxSections = 256;
/// Element-count caps keeping every size computation far from u64 overflow.
constexpr std::uint64_t kMaxCount = std::uint64_t{1} << 32;
constexpr std::uint64_t kMaxDrcPoints = std::uint64_t{1} << 26;
/// Per-axis cap on the MdpPolicy QoS-bin grid (the builder caps the whole
/// state space at 2^22, so any honest file stays far below this).
constexpr std::uint32_t kMaxMdpBins = 1u << 16;

std::uint64_t fnv1a(const std::uint8_t* data, std::size_t size) {
  std::uint64_t h = 14695981039346656037ULL;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= data[i];
    h *= 1099511628211ULL;
  }
  return h;
}

std::uint64_t align8(std::uint64_t n) { return (n + 7) & ~std::uint64_t{7}; }

// --- Little-endian scalar access (memcpy: alignment-safe, optimizes to a
// plain load/store on every supported target). ---

template <typename T>
T load_scalar(const std::uint8_t* p) {
  T v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

template <typename T>
void append_scalar(std::string& out, T v) {
  char buf[sizeof v];
  std::memcpy(buf, &v, sizeof v);
  out.append(buf, sizeof v);
}

void pad_to_8(std::string& out) { out.append(align8(out.size()) - out.size(), '\0'); }

std::string hex(std::uint64_t v) {
  char buf[19];
  std::snprintf(buf, sizeof buf, "0x%016llx", static_cast<unsigned long long>(v));
  return buf;
}

/// One validated section-table entry.
struct SectionEntry {
  std::uint32_t kind = 0;
  std::uint64_t offset = 0;
  std::uint64_t size = 0;
};

[[noreturn]] void fail(SnapshotError::Kind kind, const std::string& message) {
  throw SnapshotError(kind, message);
}

}  // namespace

// ---------------------------------------------------------------------------
// SnapshotView::attach — full hostile-input validation
// ---------------------------------------------------------------------------

SnapshotView SnapshotView::attach(const void* data, std::size_t size) {
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  if (reinterpret_cast<std::uintptr_t>(bytes) % 8 != 0) {
    fail(SnapshotError::Kind::BadValue, "buffer is not 8-byte aligned");
  }
  if (size < sizeof kMagic) {
    fail(SnapshotError::Kind::Truncated,
         "file of " + std::to_string(size) + " bytes is shorter than the 8-byte magic");
  }
  if (std::memcmp(bytes, kMagic, sizeof kMagic) != 0) {
    fail(SnapshotError::Kind::BadMagic, "bad magic (not a .clrdb snapshot)");
  }
  if (size < kHeaderSize) {
    fail(SnapshotError::Kind::Truncated, "file of " + std::to_string(size) +
                                             " bytes is shorter than the " +
                                             std::to_string(kHeaderSize) + "-byte header");
  }

  SnapshotView v;
  v.version_ = load_scalar<std::uint32_t>(bytes + 8);
  if (v.version_ == 0 || v.version_ > kSnapshotVersion) {
    fail(SnapshotError::Kind::BadVersion,
         "snapshot version " + std::to_string(v.version_) + " (this reader supports 1.." +
             std::to_string(kSnapshotVersion) + ")");
  }
  const auto flags = load_scalar<std::uint32_t>(bytes + 12);
  if (flags != 0) {
    fail(SnapshotError::Kind::BadValue,
         "unknown header flags " + hex(flags) + " (version " + std::to_string(v.version_) +
             " defines none)");
  }
  const auto declared_size = load_scalar<std::uint64_t>(bytes + 16);
  if (declared_size != size) {
    fail(SnapshotError::Kind::Truncated, "header declares " + std::to_string(declared_size) +
                                             " bytes but the buffer holds " +
                                             std::to_string(size));
  }
  const auto stored_checksum = load_scalar<std::uint64_t>(bytes + 24);
  const auto section_count = load_scalar<std::uint32_t>(bytes + 32);
  const auto header_reserved = load_scalar<std::uint32_t>(bytes + 36);
  if (header_reserved != 0) {
    fail(SnapshotError::Kind::BadValue,
         "reserved header field is " + hex(header_reserved) + " (must be 0)");
  }
  if (section_count > kMaxSections) {
    fail(SnapshotError::Kind::Bounds, "section count " + std::to_string(section_count) +
                                          " exceeds the format limit of " +
                                          std::to_string(kMaxSections));
  }
  const std::uint64_t payload_start =
      kHeaderSize + std::uint64_t{section_count} * kSectionEntrySize;
  if (payload_start > size) {
    fail(SnapshotError::Kind::Truncated,
         "section table needs " + std::to_string(payload_start) + " bytes but the file has " +
             std::to_string(size));
  }

  // Content integrity before structure: a flipped payload byte must surface
  // as a checksum mismatch, not as whichever structural check it confuses.
  const std::uint64_t computed_checksum = fnv1a(bytes + payload_start, size - payload_start);
  if (computed_checksum != stored_checksum) {
    fail(SnapshotError::Kind::Checksum, "stored payload checksum " + hex(stored_checksum) +
                                            " but the payload hashes to " +
                                            hex(computed_checksum));
  }

  // Section table: bounds-check every entry against the buffer before any
  // payload byte is interpreted. Version 1 defines kinds 1..3; version 2
  // adds the checkpoint kinds 5..6; version 3 adds the fleet checkpoint
  // kind 7; version 4 adds the MdpPolicy companion kind 8 (4 stays reserved
  // throughout).
  const auto kind_allowed = [&](std::uint32_t kind) {
    if (kind >= 1 && kind <= 3) return true;
    if (v.version_ >= 2 && (kind == 5 || kind == 6)) return true;
    if (v.version_ >= 3 && kind == 7) return true;
    return v.version_ >= 4 && kind == 8;
  };
  std::vector<SectionEntry> sections;
  sections.reserve(section_count);
  bool seen[9] = {};
  for (std::uint32_t i = 0; i < section_count; ++i) {
    const std::uint8_t* e = bytes + kHeaderSize + std::size_t{i} * kSectionEntrySize;
    SectionEntry s;
    s.kind = load_scalar<std::uint32_t>(e);
    const auto reserved = load_scalar<std::uint32_t>(e + 4);
    s.offset = load_scalar<std::uint64_t>(e + 8);
    s.size = load_scalar<std::uint64_t>(e + 16);
    if (reserved != 0) {
      fail(SnapshotError::Kind::BadValue,
           "section " + std::to_string(i) + ": reserved field is " + hex(reserved));
    }
    if (!kind_allowed(s.kind)) {
      fail(SnapshotError::Kind::BadValue,
           "unknown section kind " + std::to_string(s.kind) + " (version " +
               std::to_string(v.version_) +
               (v.version_ == 1   ? " defines kinds 1..3)"
                : v.version_ == 2 ? " defines kinds 1..3, 5..6)"
                : v.version_ == 3 ? " defines kinds 1..3, 5..7)"
                                  : " defines kinds 1..3, 5..8)"));
    }
    if (seen[s.kind]) {
      fail(SnapshotError::Kind::BadValue, "duplicate section kind " + std::to_string(s.kind));
    }
    seen[s.kind] = true;
    if (s.offset % 8 != 0) {
      fail(SnapshotError::Kind::Bounds, "section " + std::to_string(i) + ": offset " +
                                            std::to_string(s.offset) + " is not 8-byte aligned");
    }
    if (s.offset < payload_start || s.offset > size || s.size > size - s.offset) {
      fail(SnapshotError::Kind::Bounds, "section " + std::to_string(i) + ": [" +
                                            std::to_string(s.offset) + ", +" +
                                            std::to_string(s.size) + ") escapes the " +
                                            std::to_string(size) + "-byte file");
    }
    sections.push_back(s);
  }
  // Shape rule: a file is either a design database (ClrSpace + DesignPoints
  // [+ DrcMatrix] [+ MdpPolicy from version 4]) or, from version 2, a single
  // checkpoint section. The only-section rule below already forbids an
  // MdpPolicy companion riding with a checkpoint; the required-sections rule
  // forbids it without its design database.
  const bool has_checkpoint_section =
      seen[static_cast<std::uint32_t>(SnapshotSection::ExploreState)] ||
      seen[static_cast<std::uint32_t>(SnapshotSection::RunnerState)] ||
      seen[static_cast<std::uint32_t>(SnapshotSection::FleetState)];
  if (has_checkpoint_section) {
    if (section_count != 1) {
      fail(SnapshotError::Kind::BadValue,
           "a checkpoint section must be the file's only section, found " +
               std::to_string(section_count));
    }
  } else if (!seen[static_cast<std::uint32_t>(SnapshotSection::ClrSpace)] ||
             !seen[static_cast<std::uint32_t>(SnapshotSection::DesignPoints)]) {
    fail(SnapshotError::Kind::BadValue,
         "missing required section (a design database requires ClrSpace=1 and DesignPoints=2)");
  }

  // Per-section structural decode. Every count is validated against the
  // section's byte size before a span is formed.
  for (const SectionEntry& s : sections) {
    const std::uint8_t* p = bytes + s.offset;
    switch (static_cast<SnapshotSection>(s.kind)) {
      case SnapshotSection::ClrSpace: {
        if (s.size < 8) {
          fail(SnapshotError::Kind::Truncated, "ClrSpace section of " + std::to_string(s.size) +
                                                   " bytes cannot hold its 8-byte count");
        }
        const auto count = load_scalar<std::uint64_t>(p);
        if (count == 0 || count > kMaxCount) {
          fail(SnapshotError::Kind::BadValue,
               "ClrSpace count " + std::to_string(count) + " (want 1.." +
                   std::to_string(kMaxCount) + ")");
        }
        const std::uint64_t required = align8(8 + count * 4);
        if (required != s.size) {
          fail(SnapshotError::Kind::Bounds, "ClrSpace section holds " + std::to_string(s.size) +
                                                " bytes but " + std::to_string(count) +
                                                " configs need " + std::to_string(required));
        }
        v.clr_count_ = static_cast<std::size_t>(count);
        v.clr_configs_ = {p + 8, static_cast<std::size_t>(count) * 4};
        break;
      }
      case SnapshotSection::DesignPoints: {
        if (s.size < 16) {
          fail(SnapshotError::Kind::Truncated, "DesignPoints section of " +
                                                   std::to_string(s.size) +
                                                   " bytes cannot hold its two 8-byte counts");
        }
        const auto np = load_scalar<std::uint64_t>(p);
        const auto na = load_scalar<std::uint64_t>(p + 8);
        if (np > kMaxCount || na > kMaxCount) {
          fail(SnapshotError::Kind::Bounds, "DesignPoints counts (" + std::to_string(np) + ", " +
                                                std::to_string(na) + ") exceed the format limit");
        }
        const std::uint64_t required =
            align8(16 + (np + 1) * 8 + 3 * np * 8 + align8(np) + 4 * na * 4);
        if (required != s.size) {
          fail(SnapshotError::Kind::Bounds,
               "DesignPoints section holds " + std::to_string(s.size) + " bytes but " +
                   std::to_string(np) + " points / " + std::to_string(na) +
                   " assignments need " + std::to_string(required));
        }
        v.num_points_ = static_cast<std::size_t>(np);
        v.num_assignments_ = static_cast<std::size_t>(na);
        std::uint64_t at = 16;
        const auto take = [&](std::uint64_t bytes_needed) {
          const std::uint8_t* field = p + at;
          at += bytes_needed;
          return field;
        };
        v.point_off_ = {reinterpret_cast<const std::uint64_t*>(take((np + 1) * 8)),
                        static_cast<std::size_t>(np + 1)};
        v.energy_ = {reinterpret_cast<const double*>(take(np * 8)),
                     static_cast<std::size_t>(np)};
        v.makespan_ = {reinterpret_cast<const double*>(take(np * 8)),
                       static_cast<std::size_t>(np)};
        v.func_rel_ = {reinterpret_cast<const double*>(take(np * 8)),
                       static_cast<std::size_t>(np)};
        v.extra_ = {take(align8(np)), static_cast<std::size_t>(np)};
        v.pe_ = {reinterpret_cast<const std::uint32_t*>(take(na * 4)),
                 static_cast<std::size_t>(na)};
        v.impl_ = {reinterpret_cast<const std::uint32_t*>(take(na * 4)),
                   static_cast<std::size_t>(na)};
        v.clr_index_ = {reinterpret_cast<const std::uint32_t*>(take(na * 4)),
                        static_cast<std::size_t>(na)};
        v.priority_ = {reinterpret_cast<const std::int32_t*>(take(na * 4)),
                       static_cast<std::size_t>(na)};
        // CSR invariants: offsets start at 0, never decrease, end at na.
        if (v.point_off_[0] != 0 || v.point_off_[v.num_points_] != na) {
          fail(SnapshotError::Kind::BadValue,
               "assignment offsets must run from 0 to " + std::to_string(na) + ", found [" +
                   std::to_string(v.point_off_[0]) + ", " +
                   std::to_string(v.point_off_[v.num_points_]) + "]");
        }
        for (std::size_t i = 0; i < v.num_points_; ++i) {
          if (v.point_off_[i] > v.point_off_[i + 1]) {
            fail(SnapshotError::Kind::BadValue,
                 "assignment offsets decrease at point " + std::to_string(i) + " (" +
                     std::to_string(v.point_off_[i]) + " > " +
                     std::to_string(v.point_off_[i + 1]) + ")");
          }
        }
        break;
      }
      case SnapshotSection::DrcMatrix: {
        if (s.size < 8) {
          fail(SnapshotError::Kind::Truncated, "DrcMatrix section of " + std::to_string(s.size) +
                                                   " bytes cannot hold its 8-byte count");
        }
        const auto n = load_scalar<std::uint64_t>(p);
        if (n > kMaxDrcPoints) {
          fail(SnapshotError::Kind::Bounds,
               "DrcMatrix size " + std::to_string(n) + " exceeds the format limit of " +
                   std::to_string(kMaxDrcPoints));
        }
        const std::uint64_t required = 8 + n * n * 8;
        if (required != s.size) {
          fail(SnapshotError::Kind::Bounds, "DrcMatrix section holds " + std::to_string(s.size) +
                                                " bytes but " + std::to_string(n) + "x" +
                                                std::to_string(n) + " costs need " +
                                                std::to_string(required));
        }
        v.drc_present_ = true;
        v.drc_costs_ = {reinterpret_cast<const double*>(p + 8),
                        static_cast<std::size_t>(n * n)};
        break;
      }
      case SnapshotSection::MdpPolicy: {
        // Fixed 80-byte preamble: u32 makespan_bins, u32 func_rel_bins,
        // u64 num_points, f64 gamma, f64 p_rc, f64 ranges[6]; then
        // u32 policy[S] (8-padded) and f64 values[S], S = bins · num_points.
        if (s.size < 80) {
          fail(SnapshotError::Kind::Truncated, "MdpPolicy section of " + std::to_string(s.size) +
                                                   " bytes cannot hold its 80-byte preamble");
        }
        const auto mb = load_scalar<std::uint32_t>(p);
        const auto fb = load_scalar<std::uint32_t>(p + 4);
        const auto np = load_scalar<std::uint64_t>(p + 8);
        if (mb == 0 || fb == 0 || mb > kMaxMdpBins || fb > kMaxMdpBins) {
          fail(SnapshotError::Kind::BadValue,
               "MdpPolicy bin grid " + std::to_string(mb) + "x" + std::to_string(fb) +
                   " (each axis wants 1.." + std::to_string(kMaxMdpBins) + ")");
        }
        if (np == 0 || np > kMaxCount) {
          fail(SnapshotError::Kind::BadValue, "MdpPolicy point count " + std::to_string(np) +
                                                  " (want 1.." + std::to_string(kMaxCount) + ")");
        }
        const std::uint64_t states = std::uint64_t{mb} * fb * np;
        if (states > kMaxCount) {
          fail(SnapshotError::Kind::Bounds, "MdpPolicy state count " + std::to_string(states) +
                                                " exceeds the format limit of " +
                                                std::to_string(kMaxCount));
        }
        const std::uint64_t required = 80 + align8(states * 4) + states * 8;
        if (required != s.size) {
          fail(SnapshotError::Kind::Bounds, "MdpPolicy section holds " + std::to_string(s.size) +
                                                " bytes but " + std::to_string(states) +
                                                " states need " + std::to_string(required));
        }
        v.mdp_present_ = true;
        v.mdp_makespan_bins_ = mb;
        v.mdp_func_rel_bins_ = fb;
        v.mdp_num_points_ = np;
        v.mdp_gamma_ = load_scalar<double>(p + 16);
        v.mdp_p_rc_ = load_scalar<double>(p + 24);
        v.mdp_ranges_ = {reinterpret_cast<const double*>(p + 32), 6};
        v.mdp_policy_ = {reinterpret_cast<const std::uint32_t*>(p + 80),
                         static_cast<std::size_t>(states)};
        v.mdp_values_ = {reinterpret_cast<const double*>(p + 80 + align8(states * 4)),
                         static_cast<std::size_t>(states)};
        for (std::size_t i = 0; i < v.mdp_policy_.size(); ++i) {
          if (v.mdp_policy_[i] >= np) {
            fail(SnapshotError::Kind::BadValue,
                 "MdpPolicy state " + std::to_string(i) + ": action " +
                     std::to_string(v.mdp_policy_[i]) + " outside the " + std::to_string(np) +
                     "-point database");
          }
        }
        break;
      }
      case SnapshotSection::ExploreState:
      case SnapshotSection::RunnerState:
      case SnapshotSection::FleetState: {
        // The payload is an opaque record stream decoded by io/checkpoint.cpp
        // (bounded cursor, typed errors). attach() only guarantees the span
        // is in bounds and can hold the leading sequence + identity hash.
        if (s.size < 16) {
          fail(SnapshotError::Kind::Truncated,
               "checkpoint section of " + std::to_string(s.size) +
                   " bytes cannot hold its 16-byte preamble");
        }
        v.checkpoint_kind_ = s.kind;
        v.checkpoint_payload_ = {p, static_cast<std::size_t>(s.size)};
        break;
      }
    }
  }

  // Cross-section invariants.
  if (v.drc_present_) {
    const std::size_t n = v.num_points_;
    if (v.drc_costs_.size() != n * n) {
      fail(SnapshotError::Kind::BadValue,
           "DrcMatrix covers " + std::to_string(v.drc_costs_.size()) + " entries but the " +
               std::to_string(n) + "-point database needs " + std::to_string(n * n));
    }
  }
  if (v.mdp_present_ && v.mdp_num_points_ != v.num_points_) {
    fail(SnapshotError::Kind::BadValue,
         "MdpPolicy was solved over " + std::to_string(v.mdp_num_points_) +
             " points but the database holds " + std::to_string(v.num_points_));
  }
  for (std::size_t i = 0; i < v.num_assignments_; ++i) {
    if (v.clr_index_[i] >= v.clr_count_) {
      fail(SnapshotError::Kind::BadValue, "assignment " + std::to_string(i) +
                                              ": CLR index " + std::to_string(v.clr_index_[i]) +
                                              " outside the " + std::to_string(v.clr_count_) +
                                              "-entry CLR space");
    }
  }
  return v;
}

rel::ClrConfig SnapshotView::clr_config(std::size_t i) const {
  const std::uint8_t* p = clr_configs_.data() + i * 4;
  rel::ClrConfig c;
  c.hw = static_cast<rel::HwTechnique>(p[0]);
  c.ssw = static_cast<rel::SswTechnique>(p[1]);
  c.asw = static_cast<rel::AswTechnique>(p[2]);
  c.ssw_param = p[3];
  return c;
}

// ---------------------------------------------------------------------------
// Serialization (version-gated)
// ---------------------------------------------------------------------------

namespace {

std::string encode_clr_space(const rel::ClrSpace& space) {
  std::string out;
  append_scalar<std::uint64_t>(out, space.size());
  for (const rel::ClrConfig& c : space.configs()) {
    out.push_back(static_cast<char>(static_cast<std::uint8_t>(c.hw)));
    out.push_back(static_cast<char>(static_cast<std::uint8_t>(c.ssw)));
    out.push_back(static_cast<char>(static_cast<std::uint8_t>(c.asw)));
    out.push_back(static_cast<char>(c.ssw_param));
  }
  pad_to_8(out);
  return out;
}

std::string encode_design_points(const dse::DesignDb& db) {
  std::string out;
  std::uint64_t na = 0;
  for (const auto& p : db.points()) na += p.config.tasks.size();
  append_scalar<std::uint64_t>(out, db.size());
  append_scalar<std::uint64_t>(out, na);
  std::uint64_t off = 0;
  for (const auto& p : db.points()) {
    append_scalar<std::uint64_t>(out, off);
    off += p.config.tasks.size();
  }
  append_scalar<std::uint64_t>(out, off);
  for (const auto& p : db.points()) append_scalar<double>(out, p.energy);
  for (const auto& p : db.points()) append_scalar<double>(out, p.makespan);
  for (const auto& p : db.points()) append_scalar<double>(out, p.func_rel);
  for (const auto& p : db.points()) out.push_back(p.extra ? '\1' : '\0');
  pad_to_8(out);
  for (const auto& p : db.points()) {
    for (const auto& a : p.config.tasks) append_scalar<std::uint32_t>(out, a.pe);
  }
  for (const auto& p : db.points()) {
    for (const auto& a : p.config.tasks) append_scalar<std::uint32_t>(out, a.impl_index);
  }
  for (const auto& p : db.points()) {
    for (const auto& a : p.config.tasks) append_scalar<std::uint32_t>(out, a.clr_index);
  }
  for (const auto& p : db.points()) {
    for (const auto& a : p.config.tasks) append_scalar<std::int32_t>(out, a.priority);
  }
  pad_to_8(out);
  return out;
}

std::string encode_drc(const rt::DrcMatrix& drc) {
  std::string out;
  const std::size_t n = drc.size();
  append_scalar<std::uint64_t>(out, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) append_scalar<double>(out, drc.drc(i, j));
  }
  return out;
}

std::string encode_mdp_table(const rt::MdpTable& mdp) {
  std::string out;
  append_scalar<std::uint32_t>(out, mdp.makespan_bins);
  append_scalar<std::uint32_t>(out, mdp.func_rel_bins);
  append_scalar<std::uint64_t>(out, mdp.num_points);
  append_scalar<double>(out, mdp.gamma);
  append_scalar<double>(out, mdp.p_rc);
  append_scalar<double>(out, mdp.ranges.energy_min);
  append_scalar<double>(out, mdp.ranges.energy_max);
  append_scalar<double>(out, mdp.ranges.makespan_min);
  append_scalar<double>(out, mdp.ranges.makespan_max);
  append_scalar<double>(out, mdp.ranges.func_rel_min);
  append_scalar<double>(out, mdp.ranges.func_rel_max);
  for (std::uint32_t a : mdp.policy) append_scalar<std::uint32_t>(out, a);
  pad_to_8(out);
  for (double value : mdp.values) append_scalar<double>(out, value);
  return out;
}

}  // namespace

namespace detail {

std::string assemble_snapshot_container(std::uint32_t version,
                                        std::vector<RawSection> sections) {
  const std::uint64_t payload_start = kHeaderSize + sections.size() * kSectionEntrySize;
  std::string payload;
  std::vector<SectionEntry> table;
  for (const RawSection& p : sections) {
    SectionEntry e;
    e.kind = p.kind;
    e.offset = payload_start + payload.size();
    e.size = p.bytes.size();
    table.push_back(e);
    payload += p.bytes;
  }

  std::string out;
  out.reserve(payload_start + payload.size());
  out.append(reinterpret_cast<const char*>(kMagic), sizeof kMagic);
  append_scalar<std::uint32_t>(out, version);
  append_scalar<std::uint32_t>(out, 0);  // flags
  append_scalar<std::uint64_t>(out, payload_start + payload.size());
  append_scalar<std::uint64_t>(out,
                               fnv1a(reinterpret_cast<const std::uint8_t*>(payload.data()),
                                     payload.size()));
  append_scalar<std::uint32_t>(out, static_cast<std::uint32_t>(table.size()));
  append_scalar<std::uint32_t>(out, 0);  // reserved
  for (const SectionEntry& e : table) {
    append_scalar<std::uint32_t>(out, e.kind);
    append_scalar<std::uint32_t>(out, 0);
    append_scalar<std::uint64_t>(out, e.offset);
    append_scalar<std::uint64_t>(out, e.size);
  }
  out += payload;
  return out;
}

}  // namespace detail

std::string serialize_snapshot_for_version(std::uint32_t version, const dse::DesignDb& db,
                                           const rel::ClrSpace& space,
                                           const rt::DrcMatrix* drc,
                                           const rt::MdpTable* mdp) {
  // The design-database sections are layout-identical in versions 1..4;
  // only the header version differs (versions 2 and 3 additionally *allow*
  // checkpoint sections, which this writer never emits, and version 4 the
  // MdpPolicy companion below).
  if (version != 1 && version != 2 && version != 3 && version != 4) {
    fail(SnapshotError::Kind::BadVersion,
         "cannot serialize snapshot version " + std::to_string(version) +
             " (this writer supports 1.." + std::to_string(kSnapshotVersion) + ")");
  }
  if (drc != nullptr && drc->size() != db.size()) {
    fail(SnapshotError::Kind::BadValue,
         "DrcMatrix spans " + std::to_string(drc->size()) + " points but the database holds " +
             std::to_string(db.size()));
  }
  if (mdp != nullptr && version < 4) {
    fail(SnapshotError::Kind::BadVersion,
         "an MdpPolicy section needs format version 4, cannot emit it at version " +
             std::to_string(version));
  }
  if (mdp != nullptr && mdp->num_points != db.size()) {
    fail(SnapshotError::Kind::BadValue,
         "MdpPolicy was solved over " + std::to_string(mdp->num_points) +
             " points but the database holds " + std::to_string(db.size()));
  }

  std::vector<detail::RawSection> sections;
  sections.push_back({static_cast<std::uint32_t>(SnapshotSection::ClrSpace),
                      encode_clr_space(space)});
  sections.push_back({static_cast<std::uint32_t>(SnapshotSection::DesignPoints),
                      encode_design_points(db)});
  if (drc != nullptr) {
    sections.push_back({static_cast<std::uint32_t>(SnapshotSection::DrcMatrix),
                        encode_drc(*drc)});
  }
  if (mdp != nullptr) {
    sections.push_back({static_cast<std::uint32_t>(SnapshotSection::MdpPolicy),
                        encode_mdp_table(*mdp)});
  }
  return detail::assemble_snapshot_container(version, std::move(sections));
}

std::string serialize_snapshot(const dse::DesignDb& db, const rel::ClrSpace& space,
                               const rt::DrcMatrix* drc, const rt::MdpTable* mdp) {
  return serialize_snapshot_for_version(kSnapshotVersion, db, space, drc, mdp);
}

void write_file_durable(const std::string& path, std::string_view bytes) {
  const std::string tmp = path + ".tmp";
#if defined(CLR_SNAPSHOT_HAVE_MMAP)
  // tmp + write + fsync(file) + rename + fsync(directory): rename-only
  // atomicity protects against a crashed *writer*, but without the fsyncs a
  // power cut can still leave a zero-length or torn destination (the rename
  // may reach disk before the data does). The directory fsync persists the
  // rename itself.
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) fail(SnapshotError::Kind::Io, "cannot open " + tmp + " for writing");
  std::size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      ::close(fd);
      ::unlink(tmp.c_str());
      fail(SnapshotError::Kind::Io, "short write to " + tmp);
    }
    written += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    fail(SnapshotError::Kind::Io, "cannot fsync " + tmp);
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    fail(SnapshotError::Kind::Io, "cannot close " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    fail(SnapshotError::Kind::Io, "cannot rename " + tmp + " to " + path);
  }
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash + 1);
  const int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dir_fd >= 0) {
    // Best-effort: some filesystems reject directory fsync; the rename above
    // already succeeded, so don't fail the save over it.
    (void)::fsync(dir_fd);
    ::close(dir_fd);
  }
#else
  {
    std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
    if (!f) fail(SnapshotError::Kind::Io, "cannot open " + tmp + " for writing");
    f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    f.flush();
    if (!f) fail(SnapshotError::Kind::Io, "short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    fail(SnapshotError::Kind::Io, "cannot rename " + tmp + " to " + path);
  }
#endif
}

void save_snapshot(const std::string& path, const dse::DesignDb& db, const rel::ClrSpace& space,
                   const rt::DrcMatrix* drc, const rt::MdpTable* mdp) {
  write_file_durable(path, serialize_snapshot(db, space, drc, mdp));
}

// ---------------------------------------------------------------------------
// Snapshot (owning mmap / arena)
// ---------------------------------------------------------------------------

Snapshot::Snapshot(Snapshot&& other) noexcept { *this = std::move(other); }

Snapshot& Snapshot::operator=(Snapshot&& other) noexcept {
  if (this != &other) {
    reset();
    view_ = other.view_;
    data_ = other.data_;
    size_ = other.size_;
    mapped_ = other.mapped_;
    arena_ = std::move(other.arena_);
    other.data_ = nullptr;
    other.size_ = 0;
    other.mapped_ = false;
    other.view_ = SnapshotView{};
  }
  return *this;
}

Snapshot::~Snapshot() { reset(); }

void Snapshot::reset() noexcept {
#if defined(CLR_SNAPSHOT_HAVE_MMAP)
  if (mapped_ && data_ != nullptr) munmap(data_, size_);
#endif
  data_ = nullptr;
  size_ = 0;
  mapped_ = false;
  arena_.clear();
}

Snapshot Snapshot::from_bytes(std::string bytes) {
  Snapshot s;
  s.arena_ = std::move(bytes);
  s.data_ = s.arena_.data();
  s.size_ = s.arena_.size();
  s.view_ = SnapshotView::attach(s.data_, s.size_);
  return s;
}

Snapshot Snapshot::open(const std::string& path) {
#if defined(CLR_SNAPSHOT_HAVE_MMAP)
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd >= 0) {
    struct stat st {};
    if (fstat(fd, &st) == 0 && st.st_size > 0) {
      void* map = mmap(nullptr, static_cast<std::size_t>(st.st_size), PROT_READ, MAP_PRIVATE,
                       fd, 0);
      ::close(fd);
      if (map != MAP_FAILED) {
        Snapshot s;
        s.data_ = map;
        s.size_ = static_cast<std::size_t>(st.st_size);
        s.mapped_ = true;
        // attach() throwing unwinds through ~Snapshot, which unmaps.
        s.view_ = SnapshotView::attach(s.data_, s.size_);
        return s;
      }
      // mmap failure (e.g. a pseudo-filesystem): fall through to the read path.
    } else {
      ::close(fd);
    }
  }
#endif
  std::ifstream f(path, std::ios::binary);
  if (!f) fail(SnapshotError::Kind::Io, "cannot open " + path);
  std::ostringstream buffer;
  buffer << f.rdbuf();
  return from_bytes(std::move(buffer).str());
}

// ---------------------------------------------------------------------------
// Materialization
// ---------------------------------------------------------------------------

namespace {

LoadedSnapshot materialize_v1(const SnapshotView& view) {
  LoadedSnapshot loaded;

  std::vector<rel::ClrConfig> configs;
  configs.reserve(view.clr_space_size());
  for (std::size_t i = 0; i < view.clr_space_size(); ++i) configs.push_back(view.clr_config(i));
  loaded.space = rel::ClrSpace(std::move(configs));

  loaded.db.reserve(view.num_points());
  const auto off = view.point_offsets();
  for (std::size_t i = 0; i < view.num_points(); ++i) {
    dse::DesignPoint p;
    p.energy = view.energy()[i];
    p.makespan = view.makespan()[i];
    p.func_rel = view.func_rel()[i];
    p.extra = view.extra()[i] != 0;
    const std::size_t first = static_cast<std::size_t>(off[i]);
    const std::size_t count = static_cast<std::size_t>(off[i + 1] - off[i]);
    p.config.tasks.resize(count);
    for (std::size_t t = 0; t < count; ++t) {
      sched::TaskAssignment& a = p.config.tasks[t];
      a.pe = view.assignment_pe()[first + t];
      a.impl_index = view.assignment_impl()[first + t];
      a.clr_index = view.assignment_clr()[first + t];
      a.priority = view.assignment_priority()[first + t];
    }
    loaded.db.add(std::move(p));
  }

  if (view.has_drc()) {
    const auto costs = view.drc_costs();
    loaded.drc.emplace(view.num_points(), std::vector<double>(costs.begin(), costs.end()));
  }

  if (view.has_mdp()) {
    rt::MdpTable table;
    table.makespan_bins = view.mdp_makespan_bins();
    table.func_rel_bins = view.mdp_func_rel_bins();
    table.num_points = view.mdp_num_points();
    table.gamma = view.mdp_gamma();
    table.p_rc = view.mdp_p_rc();
    const auto r = view.mdp_ranges();
    table.ranges.energy_min = r[0];
    table.ranges.energy_max = r[1];
    table.ranges.makespan_min = r[2];
    table.ranges.makespan_max = r[3];
    table.ranges.func_rel_min = r[4];
    table.ranges.func_rel_max = r[5];
    table.policy.assign(view.mdp_policy().begin(), view.mdp_policy().end());
    table.values.assign(view.mdp_values().begin(), view.mdp_values().end());
    loaded.mdp = std::move(table);
  }
  return loaded;
}

}  // namespace

LoadedSnapshot materialize(const SnapshotView& view) {
  if (view.has_checkpoint()) {
    fail(SnapshotError::Kind::BadValue,
         "file holds a checkpoint (section kind " +
             std::to_string(view.checkpoint_section_kind()) +
             "), not a design database — resume it with --resume / io::checkpoint");
  }
  switch (view.version()) {
    // The design-database sections are layout-identical in versions 1..4
    // (version 4 can additionally carry the MdpPolicy companion, which
    // materialize_v1 copies out when present).
    case 1:
    case 2:
    case 3:
    case 4:
      return materialize_v1(view);
    default: break;
  }
  // attach() already rejects unknown versions; keep the dispatch total anyway.
  fail(SnapshotError::Kind::BadVersion,
       "no materializer for snapshot version " + std::to_string(view.version()) +
           " (this reader supports 1.." + std::to_string(kSnapshotVersion) + ")");
}

LoadedSnapshot load_snapshot(const std::string& path) {
  const Snapshot snapshot = Snapshot::open(path);
  return materialize(snapshot.view());
}

bool is_snapshot_path(const std::string& path) {
  const std::string suffix = ".clrdb";
  return path.size() >= suffix.size() &&
         path.compare(path.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool has_snapshot_magic(std::string_view bytes) {
  return bytes.size() >= sizeof kMagic &&
         std::memcmp(bytes.data(), kMagic, sizeof kMagic) == 0;
}

}  // namespace clr::io
