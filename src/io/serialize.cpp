#include "io/serialize.hpp"

#include <fstream>
#include <sstream>

#include "common/table.hpp"
#include "io/snapshot.hpp"

namespace clr::io {

namespace {

void check_version(const Json& j, const char* kind) {
  const Json* v = j.find("version");
  if (v == nullptr) {
    throw JsonError(std::string(kind) + ": missing schema version (this reader supports " +
                        std::to_string(kSchemaVersion) + ")",
                    0);
  }
  if (v->as_int() != kSchemaVersion) {
    throw JsonError(std::string(kind) + ": unsupported schema version " +
                        std::to_string(v->as_int()) + " (this reader supports " +
                        std::to_string(kSchemaVersion) + ")",
                    0);
  }
}

const char* kind_name(plat::PeKind kind) {
  switch (kind) {
    case plat::PeKind::GeneralPurpose: return "general";
    case plat::PeKind::Dsp: return "dsp";
    case plat::PeKind::Accelerator: return "accelerator";
  }
  throw JsonError("unknown PeKind", 0);
}

plat::PeKind kind_from_name(const std::string& name) {
  if (name == "general") return plat::PeKind::GeneralPurpose;
  if (name == "dsp") return plat::PeKind::Dsp;
  if (name == "accelerator") return plat::PeKind::Accelerator;
  throw JsonError("unknown PE kind '" + name + "'", 0);
}

}  // namespace

Json to_json(const plat::Platform& platform) {
  JsonArray types;
  for (const auto& t : platform.pe_types()) {
    types.push_back(Json(JsonObject{{"name", Json(t.name)},
                                    {"kind", Json(kind_name(t.kind))},
                                    {"perf_factor", Json(t.perf_factor)},
                                    {"power_factor", Json(t.power_factor)},
                                    {"avf", Json(t.avf)},
                                    {"beta_aging", Json(t.beta_aging)},
                                    {"static_power", Json(t.static_power)}}));
  }
  JsonArray prrs;
  for (std::size_t i = 0; i < platform.num_prrs(); ++i) {
    prrs.push_back(Json(JsonObject{
        {"bitstream_bytes", Json(static_cast<double>(platform.prr(static_cast<plat::PrrId>(i)).bitstream_bytes))}}));
  }
  JsonArray pes;
  for (const auto& pe : platform.pes()) {
    JsonObject o{{"type", Json(static_cast<double>(pe.type))},
                 {"local_mem_bytes", Json(static_cast<double>(pe.local_mem_bytes))}};
    if (pe.prr != plat::Pe::kNoPrr) o.emplace_back("prr", Json(static_cast<double>(pe.prr)));
    pes.push_back(Json(std::move(o)));
  }
  const auto& ic = platform.interconnect();
  return Json(JsonObject{
      {"version", Json(kSchemaVersion)},
      {"pe_types", Json(std::move(types))},
      {"prrs", Json(std::move(prrs))},
      {"pes", Json(std::move(pes))},
      {"interconnect",
       Json(JsonObject{{"binary_bandwidth", Json(ic.binary_bandwidth)},
                       {"icap_bandwidth", Json(ic.icap_bandwidth)},
                       {"per_migration_overhead", Json(ic.per_migration_overhead)},
                       {"topology", Json(ic.topology == plat::Topology::Bus ? "bus" : "mesh2d")},
                       {"mesh_columns", Json(static_cast<double>(ic.mesh_columns))}})}});
}

plat::Platform platform_from_json(const Json& j) {
  check_version(j, "platform");
  plat::Platform hw;
  for (const auto& t : j.at("pe_types").as_array()) {
    plat::PeType type;
    type.name = t.at("name").as_string();
    type.kind = kind_from_name(t.at("kind").as_string());
    type.perf_factor = t.at("perf_factor").as_number();
    type.power_factor = t.at("power_factor").as_number();
    type.avf = t.at("avf").as_number();
    type.beta_aging = t.at("beta_aging").as_number();
    type.static_power = t.at("static_power").as_number();
    hw.add_pe_type(type);
  }
  for (const auto& p : j.at("prrs").as_array()) {
    hw.add_prr(static_cast<std::uint32_t>(p.at("bitstream_bytes").as_int()));
  }
  for (const auto& p : j.at("pes").as_array()) {
    const auto type = static_cast<plat::PeTypeId>(p.at("type").as_int());
    const auto mem = static_cast<std::uint32_t>(p.at("local_mem_bytes").as_int());
    const Json* prr = p.find("prr");
    hw.add_pe(type, mem,
              prr != nullptr ? static_cast<std::uint32_t>(prr->as_int()) : plat::Pe::kNoPrr);
  }
  const Json& ic = j.at("interconnect");
  plat::Interconnect interconnect;
  interconnect.binary_bandwidth = ic.at("binary_bandwidth").as_number();
  interconnect.icap_bandwidth = ic.at("icap_bandwidth").as_number();
  interconnect.per_migration_overhead = ic.at("per_migration_overhead").as_number();
  if (const Json* topo = ic.find("topology"); topo != nullptr) {
    const std::string& name = topo->as_string();
    if (name == "bus") interconnect.topology = plat::Topology::Bus;
    else if (name == "mesh2d") interconnect.topology = plat::Topology::Mesh2D;
    else throw JsonError("unknown topology '" + name + "'", 0);
    interconnect.mesh_columns = static_cast<std::size_t>(ic.at("mesh_columns").as_int());
  }
  hw.set_interconnect(interconnect);
  return hw;
}

Json to_json(const tg::TaskGraph& graph) {
  JsonArray tasks;
  for (const auto& t : graph.tasks()) {
    tasks.push_back(Json(JsonObject{{"type", Json(static_cast<double>(t.type))},
                                    {"criticality", Json(t.criticality)},
                                    {"name", Json(t.name)}}));
  }
  JsonArray edges;
  for (const auto& e : graph.edges()) {
    edges.push_back(Json(JsonObject{{"src", Json(static_cast<double>(e.src))},
                                    {"dst", Json(static_cast<double>(e.dst))},
                                    {"comm_time", Json(e.comm_time)},
                                    {"data_bytes", Json(static_cast<double>(e.data_bytes))}}));
  }
  return Json(JsonObject{{"version", Json(kSchemaVersion)},
                         {"period", Json(graph.period())},
                         {"tasks", Json(std::move(tasks))},
                         {"edges", Json(std::move(edges))}});
}

tg::TaskGraph task_graph_from_json(const Json& j) {
  check_version(j, "task graph");
  tg::TaskGraph g;
  g.set_period(j.at("period").as_number());
  for (const auto& t : j.at("tasks").as_array()) {
    g.add_task(static_cast<tg::TaskType>(t.at("type").as_int()), t.at("criticality").as_number(),
               t.at("name").as_string());
  }
  for (const auto& e : j.at("edges").as_array()) {
    g.add_edge(static_cast<tg::TaskId>(e.at("src").as_int()),
               static_cast<tg::TaskId>(e.at("dst").as_int()), e.at("comm_time").as_number(),
               static_cast<std::uint32_t>(e.at("data_bytes").as_int()));
  }
  return g;
}

Json to_json(const rel::ClrSpace& space) {
  JsonArray configs;
  for (const auto& c : space.configs()) {
    configs.push_back(Json(JsonObject{{"hw", Json(static_cast<double>(static_cast<int>(c.hw)))},
                                      {"ssw", Json(static_cast<double>(static_cast<int>(c.ssw)))},
                                      {"asw", Json(static_cast<double>(static_cast<int>(c.asw)))},
                                      {"ssw_param", Json(static_cast<double>(c.ssw_param))}}));
  }
  return Json(JsonObject{{"version", Json(kSchemaVersion)}, {"configs", Json(std::move(configs))}});
}

rel::ClrSpace clr_space_from_json(const Json& j) {
  check_version(j, "CLR space");
  std::vector<rel::ClrConfig> configs;
  for (const auto& c : j.at("configs").as_array()) {
    rel::ClrConfig config;
    config.hw = static_cast<rel::HwTechnique>(c.at("hw").as_int());
    config.ssw = static_cast<rel::SswTechnique>(c.at("ssw").as_int());
    config.asw = static_cast<rel::AswTechnique>(c.at("asw").as_int());
    config.ssw_param = static_cast<std::uint8_t>(c.at("ssw_param").as_int());
    configs.push_back(config);
  }
  return rel::ClrSpace(std::move(configs));
}

Json to_json(const sched::Configuration& cfg) {
  // Compact columnar encoding: four parallel arrays.
  JsonArray pe, impl, clr, prio;
  for (const auto& a : cfg.tasks) {
    pe.push_back(Json(static_cast<double>(a.pe)));
    impl.push_back(Json(static_cast<double>(a.impl_index)));
    clr.push_back(Json(static_cast<double>(a.clr_index)));
    prio.push_back(Json(static_cast<double>(a.priority)));
  }
  return Json(JsonObject{{"pe", Json(std::move(pe))},
                         {"impl", Json(std::move(impl))},
                         {"clr", Json(std::move(clr))},
                         {"priority", Json(std::move(prio))}});
}

sched::Configuration configuration_from_json(const Json& j) {
  const auto& pe = j.at("pe").as_array();
  const auto& impl = j.at("impl").as_array();
  const auto& clr = j.at("clr").as_array();
  const auto& prio = j.at("priority").as_array();
  if (pe.size() != impl.size() || pe.size() != clr.size() || pe.size() != prio.size()) {
    throw JsonError("configuration: column length mismatch", 0);
  }
  sched::Configuration cfg;
  cfg.tasks.resize(pe.size());
  for (std::size_t t = 0; t < pe.size(); ++t) {
    cfg.tasks[t].pe = static_cast<plat::PeId>(pe[t].as_int());
    cfg.tasks[t].impl_index = static_cast<std::uint32_t>(impl[t].as_int());
    cfg.tasks[t].clr_index = static_cast<std::uint32_t>(clr[t].as_int());
    cfg.tasks[t].priority = static_cast<std::int32_t>(prio[t].as_int());
  }
  return cfg;
}

Json to_json(const dse::DesignDb& db, const rel::ClrSpace& space) {
  JsonArray points;
  for (const auto& p : db.points()) {
    points.push_back(Json(JsonObject{{"config", to_json(p.config)},
                                     {"energy", Json(p.energy)},
                                     {"makespan", Json(p.makespan)},
                                     {"func_rel", Json(p.func_rel)},
                                     {"extra", Json(p.extra)}}));
  }
  return Json(JsonObject{{"version", Json(kSchemaVersion)},
                         {"clr_space", to_json(space)},
                         {"points", Json(std::move(points))}});
}

LoadedDesignDb design_db_from_json(const Json& j) {
  check_version(j, "design database");
  LoadedDesignDb loaded{dse::DesignDb{}, clr_space_from_json(j.at("clr_space"))};
  for (const auto& p : j.at("points").as_array()) {
    dse::DesignPoint point;
    point.config = configuration_from_json(p.at("config"));
    point.energy = p.at("energy").as_number();
    point.makespan = p.at("makespan").as_number();
    point.func_rel = p.at("func_rel").as_number();
    point.extra = p.at("extra").as_bool();
    loaded.db.add(std::move(point));
  }
  return loaded;
}

void save_design_db(const std::string& path, const dse::DesignDb& db,
                    const rel::ClrSpace& space) {
  util::write_file(path, to_json(db, space).dump(2) + "\n");
}

LoadedDesignDb load_design_db(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("load_design_db: cannot open " + path);
  std::ostringstream buffer;
  buffer << f.rdbuf();
  std::string bytes = std::move(buffer).str();
  // Dispatch on content, not extension: a .clrdb snapshot loads through the
  // binary path (the DrcMatrix section, if any, is dropped here — callers
  // that want it use io::load_snapshot directly).
  if (has_snapshot_magic(bytes)) {
    LoadedSnapshot snap = materialize(Snapshot::from_bytes(std::move(bytes)).view());
    return LoadedDesignDb{std::move(snap.db), std::move(snap.space)};
  }
  return design_db_from_json(Json::parse(bytes));
}

}  // namespace clr::io
