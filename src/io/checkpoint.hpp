#pragma once
// Crash-safe run checkpoints in the `.clrdb` container (DESIGN.md §5.12).
//
// A checkpoint file is a `.clrdb` holding exactly one section: ExploreState
// (the design-flow's restartable state at a GA generation boundary),
// RunnerState (the replication jobs an exp::Runner grid has completed) or
// FleetState (the aggregation blocks a fleet::run_fleet run has fully
// accumulated). The container layer (io/snapshot.hpp) supplies the magic,
// header, FNV-1a checksum and section bounds; this layer owns the payload
// encoding — a little-endian byte stream decoded through a bounded cursor,
// so hostile or torn payloads surface as typed SnapshotErrors, never as
// out-of-bounds reads.
//
// Both payloads start with the same 16-byte preamble:
//   u64 sequence     monotone save counter (the A/B store picks the newest)
//   u64 identity     param_hash / grid_hash — resuming under different
//                    parameters is refused instead of silently diverging
//
// Atomicity: checkpoints are written through CheckpointStore, an A/B slot
// pair (`<base>.a` / `<base>.b`) where each save goes durably (tmp + fsync +
// rename + directory fsync) into the slot NOT holding the newest good
// checkpoint. A torn or corrupted write therefore always leaves the previous
// good checkpoint loadable in the sibling slot.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "dse/design_db.hpp"
#include "fleet/progress.hpp"
#include "io/snapshot.hpp"
#include "moea/control.hpp"
#include "runtime/simulator.hpp"

namespace clr::io {

/// Restartable design-flow state (clrtool explore). Captures which stage is
/// in flight, the pre-GA calibration products (reference point, scales, the
/// derived QoS spec — all computed from RNG draws that precede the saved GA
/// boundary), the GA boundary state itself, and the databases accumulated by
/// completed stages.
struct ExploreCheckpoint {
  std::uint64_t sequence = 0;
  /// Hash of every result-affecting flow parameter (exp::explore_param_hash);
  /// resume refuses a mismatch.
  std::uint64_t param_hash = 0;
  /// 0 = BaseD stage in flight, 1 = ReD stage in flight.
  std::uint32_t stage = 0;
  /// The derived QoS spec (flow-level, computed before the base stage).
  double spec_max_makespan = 0.0;
  double spec_min_func_rel = 0.0;
  /// Eq. (5) reference point and objective scales (base stage only; empty
  /// in red-stage checkpoints).
  std::vector<double> ref;
  std::vector<double> scale;
  /// The in-flight GA's boundary state (population, archive, RNG stream,
  /// generation counter).
  moea::GaState ga;
  /// ReD stage: position in the deterministic seed schedule.
  std::uint64_t red_seed_pos = 0;
  /// BaseD database (red-stage checkpoints; empty while the base stage runs).
  dse::DesignDb based;
  /// ReD database accumulated from completed seeds (red stage only).
  dse::DesignDb red;
};

/// Restartable exp::Runner grid state: which replication jobs (cell ×
/// replication) are done, and their stripped RuntimeStats (traces are not
/// persisted — aggregation never reads them). Job order is the Runner's
/// deterministic (cell-major, replication-minor) order.
struct RunnerCheckpoint {
  std::uint64_t sequence = 0;
  /// Hash of the grid's result-affecting identity (exp::Runner::grid_hash);
  /// resume refuses a mismatch.
  std::uint64_t grid_hash = 0;
  std::uint64_t replications = 0;
  /// One flag per job, 1 = completed. Size = cells × replications.
  std::vector<std::uint8_t> done;
  /// One record per job (same indexing as `done`); meaningful only where
  /// done[i] != 0.
  std::vector<rt::RuntimeStats> runs;
};

/// Restartable fleet state (fleet::run_fleet, DESIGN.md §5.13): the fixed
/// block partition and every fully-accumulated BlockSum. Blocks in flight at
/// the stop are simply recomputed on resume (per-device seeding makes the
/// redo bit-identical), so the done flags + sums are the complete state.
struct FleetCheckpoint {
  std::uint64_t sequence = 0;
  /// Hash of every result-affecting fleet parameter (fleet::fleet_param_hash,
  /// mirrored in progress.param_hash); resume refuses a mismatch.
  std::uint64_t param_hash = 0;
  fleet::FleetProgress progress;
};

/// Serialize into a complete single-section .clrdb image at the current
/// container version.
std::string serialize_explore_checkpoint(const ExploreCheckpoint& checkpoint);
std::string serialize_runner_checkpoint(const RunnerCheckpoint& checkpoint);
std::string serialize_fleet_checkpoint(const FleetCheckpoint& checkpoint);

/// Decode a validated view holding the matching checkpoint section. Throws
/// SnapshotError (BadValue on a kind mismatch or malformed field, Truncated
/// when the payload under-runs its declared counts).
ExploreCheckpoint decode_explore_checkpoint(const SnapshotView& view);
RunnerCheckpoint decode_runner_checkpoint(const SnapshotView& view);
FleetCheckpoint decode_fleet_checkpoint(const SnapshotView& view);

/// The checkpoint's sequence number (first preamble field). Throws BadValue
/// when the view holds no checkpoint section.
std::uint64_t checkpoint_sequence(const SnapshotView& view);

/// A/B checkpoint slot pair around a user-facing path: slot files are
/// `<base>.a` and `<base>.b`. See the file comment for the fallback
/// guarantee. Not thread-safe (one writer per run).
class CheckpointStore {
 public:
  explicit CheckpointStore(std::string base_path) : base_(std::move(base_path)) {}

  const std::string& base_path() const { return base_; }
  std::string slot_a() const { return base_ + ".a"; }
  std::string slot_b() const { return base_ + ".b"; }

  /// Open both slots, tolerating missing/corrupt/torn files per slot, and
  /// return the validated snapshot with the highest sequence (nullopt when
  /// neither slot loads). Marks the *other* slot as the next write target,
  /// so the newest good checkpoint is never overwritten by the next save.
  std::optional<Snapshot> load_newest();

  /// The sequence the next saved checkpoint must carry: 1 on a fresh store,
  /// newest + 1 after a successful load_newest().
  std::uint64_t next_sequence() const { return next_sequence_; }

  /// Validate `bytes` as a checkpoint container carrying next_sequence(),
  /// write it durably into the current write slot, and flip slots.
  void save(std::string_view bytes);

 private:
  std::string base_;
  int write_slot_ = 0;  ///< 0 = slot A, 1 = slot B
  std::uint64_t next_sequence_ = 1;
};

}  // namespace clr::io
