#include "io/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <sstream>

// Number parsing/printing must be locale-independent: JSON mandates '.' as
// the decimal separator, but std::stod and snprintf("%g") obey LC_NUMERIC, so
// a host with a comma-decimal locale (de_DE, fr_FR, ...) would write invalid
// JSON and fail to re-parse its own artifacts. The primary path uses the
// locale-free std::from_chars / std::to_chars; toolchains without the
// floating-point overloads (pre-C++17-complete stdlibs) get a classic-locale
// shim that rewrites the decimal point around snprintf/strtod instead.
#if defined(__cpp_lib_to_chars) && __cpp_lib_to_chars >= 201611L
#include <charconv>
#define CLR_JSON_HAVE_FP_CHARCONV 1
#else
#include <cerrno>
#include <clocale>
#include <cstdlib>
#include <cstring>
#endif

namespace clr::io {

bool Json::as_bool() const {
  if (!is_bool()) throw JsonError("expected bool", 0);
  return std::get<bool>(value_);
}

double Json::as_number() const {
  if (!is_number()) throw JsonError("expected number", 0);
  return std::get<double>(value_);
}

const std::string& Json::as_string() const {
  if (!is_string()) throw JsonError("expected string", 0);
  return std::get<std::string>(value_);
}

const JsonArray& Json::as_array() const {
  if (!is_array()) throw JsonError("expected array", 0);
  return std::get<JsonArray>(value_);
}

const JsonObject& Json::as_object() const {
  if (!is_object()) throw JsonError("expected object", 0);
  return std::get<JsonObject>(value_);
}

const Json* Json::find(const std::string& key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : std::get<JsonObject>(value_)) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Json& Json::at(const std::string& key) const {
  const Json* v = find(key);
  if (v == nullptr) throw JsonError("missing field '" + key + "'", 0);
  return *v;
}

std::int64_t Json::as_int() const {
  const double d = as_number();
  if (std::nearbyint(d) != d || std::abs(d) > 9.007199254740992e15) {
    throw JsonError("expected integral number", 0);
  }
  return static_cast<std::int64_t>(d);
}

namespace {

void escape_into(const std::string& s, std::string& out) {
  out += '"';
  for (char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  out += '"';
}

#if !defined(CLR_JSON_HAVE_FP_CHARCONV)
/// Classic-locale shim: undo whatever LC_NUMERIC did to snprintf's decimal
/// point (the only locale-dependent byte "%g"/"%f" can emit for finite
/// doubles). The output grammar is then identical to the C locale's.
void fix_decimal_point(char* buf) {
  const char* point = std::localeconv()->decimal_point;
  if (point == nullptr || std::strcmp(point, ".") == 0) return;
  char* at = std::strstr(buf, point);
  if (at == nullptr) return;
  *at = '.';
  std::memmove(at + 1, at + std::strlen(point), std::strlen(at + std::strlen(point)) + 1);
}
#endif

void number_into(double d, std::string& out) {
  if (!std::isfinite(d)) throw JsonError("cannot serialize non-finite number", 0);
  char buf[64];
#if defined(CLR_JSON_HAVE_FP_CHARCONV)
  // to_chars with an explicit precision produces the same bytes as snprintf
  // "%.0f" / "%.17g" in the C locale (pinned by tests/io/test_json.cpp), so
  // reports stay byte-identical to the historical snprintf output.
  const auto res = (std::nearbyint(d) == d && std::abs(d) < 1e15)
                       ? std::to_chars(buf, buf + sizeof buf, d, std::chars_format::fixed, 0)
                       : std::to_chars(buf, buf + sizeof buf, d, std::chars_format::general, 17);
  out.append(buf, res.ptr);
#else
  if (std::nearbyint(d) == d && std::abs(d) < 1e15) {
    std::snprintf(buf, sizeof buf, "%.0f", d);
  } else {
    std::snprintf(buf, sizeof buf, "%.17g", d);
  }
  fix_decimal_point(buf);
  out += buf;
#endif
}

}  // namespace

namespace {
void dump_into(const Json& v, std::string& out, int indent, int depth);

void newline_indent(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent) * depth, ' ');
}
}  // namespace

std::string Json::dump(int indent) const {
  std::string out;
  dump_into(*this, out, indent, 0);
  return out;
}

namespace {
void dump_into(const Json& v, std::string& out, int indent, int depth) {
  if (v.is_null()) {
    out += "null";
  } else if (v.is_bool()) {
    out += v.as_bool() ? "true" : "false";
  } else if (v.is_number()) {
    number_into(v.as_number(), out);
  } else if (v.is_string()) {
    escape_into(v.as_string(), out);
  } else if (v.is_array()) {
    const auto& a = v.as_array();
    if (a.empty()) {
      out += "[]";
      return;
    }
    out += '[';
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (i) out += ',';
      newline_indent(out, indent, depth + 1);
      dump_into(a[i], out, indent, depth + 1);
    }
    newline_indent(out, indent, depth);
    out += ']';
  } else {
    const auto& o = v.as_object();
    if (o.empty()) {
      out += "{}";
      return;
    }
    out += '{';
    for (std::size_t i = 0; i < o.size(); ++i) {
      if (i) out += ',';
      newline_indent(out, indent, depth + 1);
      escape_into(o[i].first, out);
      out += indent > 0 ? ": " : ":";
      dump_into(o[i].second, out, indent, depth + 1);
    }
    newline_indent(out, indent, depth);
    out += '}';
  }
}
}  // namespace

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json parse_document() {
    skip_ws();
    Json v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const { throw JsonError(message, pos_); }

  char peek() const {
    if (pos_ >= text_.size()) throw JsonError("unexpected end of input", pos_);
    return text_[pos_];
  }

  char take() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (take() != c) {
      --pos_;
      fail(std::string("expected '") + c + "'");
    }
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume_literal(const char* lit) {
    const std::size_t len = std::char_traits<char>::length(lit);
    if (text_.compare(pos_, len, lit) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  Json parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't':
        if (consume_literal("true")) return Json(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return Json(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return Json(nullptr);
        fail("invalid literal");
      default: return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    JsonObject obj;
    skip_ws();
    if (peek() == '}') {
      take();
      return Json(std::move(obj));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.emplace_back(std::move(key), parse_value());
      skip_ws();
      const char c = take();
      if (c == '}') break;
      if (c != ',') {
        --pos_;
        fail("expected ',' or '}' in object");
      }
    }
    return Json(std::move(obj));
  }

  Json parse_array() {
    expect('[');
    JsonArray arr;
    skip_ws();
    if (peek() == ']') {
      take();
      return Json(std::move(arr));
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      const char c = take();
      if (c == ']') break;
      if (c != ',') {
        --pos_;
        fail("expected ',' or ']' in array");
      }
    }
    return Json(std::move(arr));
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = take();
      if (c == '"') break;
      if (c == '\\') {
        const char esc = take();
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = take();
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else fail("invalid \\u escape");
            }
            // Encode the BMP code point as UTF-8 (surrogates unsupported).
            if (code >= 0xD800 && code <= 0xDFFF) fail("surrogate pairs not supported");
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            --pos_;
            fail("invalid escape");
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        --pos_;
        fail("unescaped control character in string");
      } else {
        out += c;
      }
    }
    return out;
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    auto digits = [&] {
      std::size_t n = 0;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
        ++n;
      }
      return n;
    };
    if (digits() == 0) fail("invalid number");
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (digits() == 0) fail("invalid number: missing fraction digits");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (digits() == 0) fail("invalid number: missing exponent digits");
    }
    return Json(decode_number(start, pos_));
  }

  /// Decimal exponent of the leading significant digit of a (grammar-valid)
  /// number token, including the explicit exponent: ~308 for DBL_MAX-sized
  /// values, ~-324 for denormals. Used only to classify an out-of-range
  /// parse as overflow (reject) vs underflow (clamp).
  static long long magnitude_exponent(const char* p, const char* end) {
    if (*p == '-') ++p;
    long long exponent = 0;
    bool seen_significant = false;
    long long int_digits = 0;
    for (; p != end && *p >= '0' && *p <= '9'; ++p) {
      if (seen_significant) {
        ++int_digits;
      } else if (*p != '0') {
        seen_significant = true;
      }
    }
    if (seen_significant) exponent = int_digits;  // first sig digit is 10^int_digits
    if (p != end && *p == '.') {
      ++p;
      long long frac_pos = -1;
      for (; p != end && *p >= '0' && *p <= '9'; ++p, --frac_pos) {
        if (!seen_significant && *p != '0') {
          seen_significant = true;
          exponent = frac_pos;
        }
      }
    }
    if (!seen_significant) return 0;  // token is ±0.00..e±N — never out of range
    if (p != end && (*p == 'e' || *p == 'E')) {
      ++p;
      const bool negative = (p != end && *p == '-');
      if (p != end && (*p == '+' || *p == '-')) ++p;
      long long e = 0;
      for (; p != end && *p >= '0' && *p <= '9'; ++p) {
        if (e < 1000000) e = e * 10 + (*p - '0');  // clamp: only the sign matters
      }
      exponent += negative ? -e : e;
    }
    return exponent;
  }

  /// Locale-independent double decode of text_[start, end). IEEE semantics on
  /// the range edges: magnitudes below the smallest denormal underflow to a
  /// signed zero (a legally serialized 5e-324 must re-parse, and tinier is
  /// semantically zero); magnitudes above DBL_MAX are a hard error.
  double decode_number(std::size_t start, std::size_t end) const {
    const char* first = text_.data() + start;
    const char* last = text_.data() + end;
#if defined(CLR_JSON_HAVE_FP_CHARCONV)
    double value = 0.0;
    const auto res = std::from_chars(first, last, value);
    if (res.ec == std::errc()) return value;
    if (res.ec == std::errc::result_out_of_range) {
      if (magnitude_exponent(first, last) > 0) {
        throw JsonError("number out of range (overflows double)", start);
      }
      return *first == '-' ? -0.0 : 0.0;  // underflow-to-zero, value unmodified by from_chars
    }
    throw JsonError("invalid number", start);
#else
    // Classic-locale shim: strtod expects the locale's decimal point, so
    // substitute it into a copy of the token. strtod (unlike std::stod)
    // returns the correctly rounded denormal on ERANGE underflow; only a
    // HUGE_VAL result is a genuine overflow.
    std::string token(first, last);
    const char* point = std::localeconv()->decimal_point;
    if (point != nullptr && std::strcmp(point, ".") != 0) {
      if (const auto dot = token.find('.'); dot != std::string::npos) {
        token.replace(dot, 1, point);
      }
    }
    errno = 0;
    char* parse_end = nullptr;
    const double value = std::strtod(token.c_str(), &parse_end);
    if (parse_end != token.c_str() + token.size()) throw JsonError("invalid number", start);
    if (errno == ERANGE && std::abs(value) == HUGE_VAL) {
      throw JsonError("number out of range (overflows double)", start);
    }
    return value;
#endif
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(const std::string& text) { return Parser(text).parse_document(); }

}  // namespace clr::io
