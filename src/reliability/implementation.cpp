#include "reliability/implementation.hpp"

#include <map>
#include <stdexcept>

namespace clr::rel {

std::vector<std::size_t> ImplementationSet::compatible_with(tg::TaskId t,
                                                            plat::PeTypeId type) const {
  std::vector<std::size_t> result;
  const auto& list = impls_.at(t);
  for (std::size_t i = 0; i < list.size(); ++i) {
    if (list[i].pe_type == type) result.push_back(i);
  }
  return result;
}

void ImplementationSet::add(tg::TaskId t, Implementation impl) {
  if (t >= impls_.size()) throw std::out_of_range("ImplementationSet::add: unknown task");
  if (impl.base_time <= 0.0) throw std::invalid_argument("Implementation: base_time must be > 0");
  if (impl.base_power <= 0.0) throw std::invalid_argument("Implementation: base_power must be > 0");
  impls_[t].push_back(impl);
}

ImplementationSet generate_implementations(const tg::TaskGraph& graph, const plat::Platform& hw,
                                           const ImplGenParams& params, util::Rng& rng) {
  ImplementationSet set;
  set.resize(graph.num_tasks());

  // Per (task type, PE type) cost tables so identical task types get
  // identical implementation characteristics — TGFF semantics.
  struct Entry {
    double time;
    double power;
    std::uint32_t bytes;
  };
  std::map<std::pair<tg::TaskType, plat::PeTypeId>, Entry> table;
  std::map<tg::TaskType, bool> has_accel;

  auto entry_for = [&](tg::TaskType tt, plat::PeTypeId pt, bool accel) -> const Entry& {
    const auto key = std::make_pair(tt, pt);
    auto it = table.find(key);
    if (it == table.end()) {
      Entry e;
      e.time = rng.uniform(params.base_time_min, params.base_time_max);
      if (accel) e.time /= params.accel_speedup;
      e.power = rng.uniform(params.base_power_min, params.base_power_max);
      e.bytes = static_cast<std::uint32_t>(rng.uniform_int(
          static_cast<int>(params.binary_bytes_min), static_cast<int>(params.binary_bytes_max)));
      it = table.emplace(key, e).first;
    }
    return it->second;
  };

  for (const auto& task : graph.tasks()) {
    for (const auto& pe_type : hw.pe_types()) {
      const bool accel = pe_type.kind == plat::PeKind::Accelerator;
      if (accel) {
        auto it = has_accel.find(task.type);
        if (it == has_accel.end()) {
          it = has_accel.emplace(task.type, rng.chance(params.accel_availability)).first;
        }
        if (!it->second) continue;
      }
      const Entry& e = entry_for(task.type, pe_type.id, accel);
      Implementation impl;
      impl.pe_type = pe_type.id;
      impl.base_time = e.time;
      impl.base_power = e.power;
      impl.binary_bytes = e.bytes;
      set.add(task.id, impl);
    }
  }

  // Every task must be runnable somewhere.
  for (tg::TaskId t = 0; t < graph.num_tasks(); ++t) {
    if (set.for_task(t).empty()) {
      throw std::logic_error("generate_implementations: task without implementations");
    }
  }
  return set;
}

}  // namespace clr::rel
