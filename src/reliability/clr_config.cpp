#include "reliability/clr_config.hpp"

#include <stdexcept>

namespace clr::rel {

std::string to_string(const ClrConfig& c) {
  std::string s = to_string(c.hw);
  s += '+';
  s += to_string(c.ssw);
  if (c.ssw != SswTechnique::None) {
    s += '(';
    s += std::to_string(c.ssw_param);
    s += ')';
  }
  s += '+';
  s += to_string(c.asw);
  return s;
}

ClrSpace::ClrSpace(std::vector<ClrConfig> configs) : granularity_(ClrGranularity::Full) {
  const ClrConfig unprotected{};
  if (configs.empty() || !(configs.front() == unprotected)) {
    configs_.push_back(unprotected);
  }
  for (auto& c : configs) {
    // Drop duplicates of the prepended unprotected point.
    if (!configs_.empty() && c == unprotected && configs_.front() == unprotected) continue;
    configs_.push_back(c);
  }
}

ClrSpace::ClrSpace(ClrGranularity granularity) : granularity_(granularity) {
  auto add = [&](HwTechnique hw, SswTechnique ssw, AswTechnique asw, std::uint8_t param = 0) {
    configs_.push_back(ClrConfig{hw, ssw, asw, param});
  };

  // Index 0 is always the unprotected point.
  add(HwTechnique::None, SswTechnique::None, AswTechnique::None);

  switch (granularity) {
    case ClrGranularity::HwOnly:
      add(HwTechnique::Hardening, SswTechnique::None, AswTechnique::None);
      add(HwTechnique::PartialTmr, SswTechnique::None, AswTechnique::None);
      break;

    case ClrGranularity::Coarse:
      // One representative technique per layer plus pairwise combinations —
      // the 6-point CLR1 space of Fig. 1.
      add(HwTechnique::PartialTmr, SswTechnique::None, AswTechnique::None);
      add(HwTechnique::None, SswTechnique::Retry, AswTechnique::Checksum, 1);
      add(HwTechnique::None, SswTechnique::None, AswTechnique::CodeTripling);
      add(HwTechnique::Hardening, SswTechnique::Retry, AswTechnique::Checksum, 1);
      add(HwTechnique::PartialTmr, SswTechnique::Retry, AswTechnique::Checksum, 2);
      break;

    case ClrGranularity::Full:
      // Cross product of the technique menus with sensible parameters.
      // Retry is only meaningful with a detecting ASW layer; Hamming and
      // CodeTripling already correct, so Retry(1) mops up their residue.
      for (HwTechnique hw : {HwTechnique::None, HwTechnique::Hardening, HwTechnique::PartialTmr}) {
        // HW-only points (beyond the global unprotected one).
        if (hw != HwTechnique::None) add(hw, SswTechnique::None, AswTechnique::None);
        for (AswTechnique asw :
             {AswTechnique::Checksum, AswTechnique::Hamming, AswTechnique::CodeTripling}) {
          add(hw, SswTechnique::None, asw);
          for (std::uint8_t k : {std::uint8_t{1}, std::uint8_t{2}, std::uint8_t{3}}) {
            add(hw, SswTechnique::Retry, asw, k);
          }
          add(hw, SswTechnique::Checkpoint, asw, 2);
          add(hw, SswTechnique::Checkpoint, asw, 4);
        }
      }
      break;

    default:
      throw std::invalid_argument("ClrSpace: unknown granularity");
  }
}

}  // namespace clr::rel
