#pragma once
// Fault-mitigation technique library across the three layers of the paper's
// CLR model (§3.3, Table 2):
//   Hardware      (HWRel)  — spatial redundancy: partial TMR, circuit hardening
//   System SW     (SSWRel) — temporal redundancy: retry, checkpointing
//   Application SW(ASWRel) — information redundancy: checksum, Hamming, tripling
//
// Each technique is described by multiplicative time/power overheads and by
// coverage parameters that drive the error-probability algebra in
// MetricsModel (see DESIGN.md §5.1).

#include <array>
#include <cstdint>
#include <string>

namespace clr::rel {

/// Hardware-layer technique (spatial redundancy).
enum class HwTechnique : std::uint8_t { None = 0, Hardening, PartialTmr };
inline constexpr std::size_t kNumHwTechniques = 3;

/// System-software-layer technique (temporal redundancy). The `param` of a
/// ClrConfig holds the retry count / checkpoint-segment count.
enum class SswTechnique : std::uint8_t { None = 0, Retry, Checkpoint };
inline constexpr std::size_t kNumSswTechniques = 3;

/// Application-software-layer technique (information redundancy).
enum class AswTechnique : std::uint8_t { None = 0, Checksum, Hamming, CodeTripling };
inline constexpr std::size_t kNumAswTechniques = 4;

/// Hardware technique traits: overheads plus the *residual* fraction of raw
/// faults that survive the spatial redundancy (1.0 = no protection).
struct HwTraits {
  double time_factor;
  double power_factor;
  double residual;
};

/// System-software technique traits. Retry/checkpoint act on *detected but
/// uncorrected* errors from the layer above; per_unit_overhead is the time
/// overhead per retry slot / checkpoint segment.
struct SswTraits {
  double base_time_factor;     ///< detection-hook / checkpoint-setup overhead
  double per_unit_overhead;    ///< additional time factor per param unit
  double power_factor;
};

/// Application-software technique traits: detection and correction coverage
/// (correct <= detect) plus overheads.
struct AswTraits {
  double time_factor;
  double power_factor;
  double detect_coverage;
  double correct_coverage;
};

/// Trait tables (calibrated to typical overheads from the CLR literature;
/// see DESIGN.md §5.1 for the rationale).
const HwTraits& hw_traits(HwTechnique t);
const SswTraits& ssw_traits(SswTechnique t);
const AswTraits& asw_traits(AswTechnique t);

std::string to_string(HwTechnique t);
std::string to_string(SswTechnique t);
std::string to_string(AswTechnique t);

}  // namespace clr::rel
