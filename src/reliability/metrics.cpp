#include "reliability/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace clr::rel {

TaskMetrics MetricsModel::evaluate(const Implementation& impl, const plat::PeType& pe_type,
                                   const ClrConfig& cfg) const {
  if (impl.pe_type != pe_type.id) {
    throw std::invalid_argument("MetricsModel::evaluate: implementation/PE type mismatch");
  }
  const HwTraits& hw = hw_traits(cfg.hw);
  const SswTraits& ssw = ssw_traits(cfg.ssw);
  const AswTraits& asw = asw_traits(cfg.asw);

  TaskMetrics m;

  // --- Error-free execution time (MinExT): all static time overheads. ---
  const double ssw_factor =
      ssw.base_time_factor + ssw.per_unit_overhead * static_cast<double>(cfg.ssw_param);
  m.min_ext = impl.base_time * pe_type.perf_factor * hw.time_factor * asw.time_factor *
              (cfg.ssw == SswTechnique::None ? 1.0 : ssw_factor);

  // --- Average power (W): multiplicative overheads; redundancy burns power
  // even when no error occurs. ---
  m.avg_power = impl.base_power * pe_type.power_factor * hw.power_factor * asw.power_factor *
                ssw.power_factor;

  // --- Error probability algebra (DESIGN.md §5.1). ---
  // Raw per-execution upset probability: Poisson arrivals over the exposed
  // time window, masked by the PE micro-architecture (AVF).
  const double p_raw = 1.0 - std::exp(-fault_.lambda_seu * m.min_ext * pe_type.avf);
  // Spatial (hardware) redundancy masks all but `residual` of the upsets.
  const double p_hw = p_raw * hw.residual;
  // Information redundancy splits the surviving errors.
  const double p_detected_unc = p_hw * (asw.detect_coverage - asw.correct_coverage);
  const double p_silent = p_hw * (1.0 - asw.detect_coverage);

  double residual_detected = p_detected_unc;  // no temporal redundancy
  double expected_reexec_time = 0.0;

  switch (cfg.ssw) {
    case SswTechnique::None:
      break;
    case SswTechnique::Retry: {
      // Up to k full re-executions of detected-uncorrected attempts. A retry
      // fails the same way with probability p_detected_unc; the error
      // persists only if the initial attempt and all k retries fail.
      const int k = std::max<int>(1, cfg.ssw_param);
      double persist = p_detected_unc;
      double expected_retries = 0.0;
      double fail_chain = p_detected_unc;
      for (int j = 1; j <= k; ++j) {
        expected_retries += fail_chain;        // a j-th retry happens iff the
        fail_chain *= p_detected_unc;          // previous j attempts failed
      }
      persist = fail_chain;  // = p_detected_unc^(k+1)
      residual_detected = persist;
      expected_reexec_time = expected_retries * m.min_ext;
      break;
    }
    case SswTechnique::Checkpoint: {
      // k checkpoint segments: a detected error rolls back one segment
      // (cost min_ext / k) and is re-tried once per segment; two consecutive
      // failures of the same segment abort (residual ~ p^2).
      const int k = std::max<int>(1, cfg.ssw_param);
      residual_detected = p_detected_unc * p_detected_unc;
      expected_reexec_time =
          (p_detected_unc + residual_detected) * (m.min_ext / static_cast<double>(k));
      break;
    }
  }

  m.err_prob = std::clamp(p_silent + residual_detected, 0.0, 1.0);
  m.avg_ext = m.min_ext + expected_reexec_time;

  // --- Aging (η, MTTF): Weibull with PE shape βp; the scale parameter comes
  // from the steady-state thermal model (Arrhenius acceleration with the
  // junction temperature reached at this implementation's power). ---
  m.eta = thermal_.eta(m.avg_power);
  m.mttf = m.eta * std::tgamma(1.0 + 1.0 / pe_type.beta_aging);

  return m;
}

double ThermalModel::eta(double avg_power) const {
  constexpr double kBoltzmannEv = 8.617333262e-5;  // eV / K
  const double t = junction_k(std::max(avg_power, 0.0));
  return eta_ref * std::exp(activation_ev / kBoltzmannEv * (1.0 / t - 1.0 / t_ref_k));
}

}  // namespace clr::rel
