#pragma once
// Task-level performance metrics of Table 2, evaluated per
// (implementation, PE, CLR configuration) following the CLRFrame-style
// model [13] documented in DESIGN.md §5.1:
//
//   MinExT(t,i)  — error-free execution time (all technique time overheads)
//   AvgExT(t,i)  — expected execution time including re-executions
//   ErrProb(t,i) — probability an execution produces a wrong (or unrecovered)
//                  result
//   MTTF(t,i)    — aging-limited mean time to failure (Weibull, shape βp)
//   W(t,i)       — average dynamic power while executing
//   η(t,i)       — Weibull scale parameter (thermal/power stress indicator)

#include "platform/platform.hpp"
#include "reliability/clr_config.hpp"
#include "reliability/implementation.hpp"

namespace clr::rel {

/// Environmental fault model: the single-event-upset rate the paper treats
/// as a (per-scenario) constant (§4: "constant resource availability and
/// λSEU as the working scenario").
struct FaultModel {
  /// SEU arrival rate per time unit of raw execution on AVF = 1 logic.
  double lambda_seu = 1e-2;
};

/// Steady-state thermal model driving the aging scale parameter η (Table 2:
/// "η(t,i) is a function of the thermal profile of executing Impl(t,i)").
/// Junction temperature rises linearly with dissipated power
/// (T = T_ambient + R_th * W) and aging accelerates with temperature by the
/// Arrhenius law: η(T) = η_ref * exp(Ea/k * (1/T - 1/T_ref)).
struct ThermalModel {
  double ambient_k = 318.0;      ///< ambient temperature (45 C)
  double rth_k_per_w = 25.0;     ///< junction-to-ambient thermal resistance
  double activation_ev = 0.7;    ///< activation energy (electromigration-ish)
  double t_ref_k = 338.0;        ///< reference junction temperature (65 C)
  double eta_ref = 5e6;          ///< Weibull scale at the reference temperature

  /// Junction temperature for a given average power.
  double junction_k(double avg_power) const { return ambient_k + rth_k_per_w * avg_power; }

  /// Arrhenius-accelerated Weibull scale parameter at that power.
  double eta(double avg_power) const;
};

/// The Table 2 metric bundle for one (task, impl, PE, CLR config) choice.
struct TaskMetrics {
  double min_ext = 0.0;    ///< MinExT
  double avg_ext = 0.0;    ///< AvgExT
  double err_prob = 0.0;   ///< ErrProb (post-mitigation, per execution)
  double mttf = 0.0;       ///< MTTF
  double avg_power = 0.0;  ///< W
  double eta = 0.0;        ///< η (Weibull scale / stress indicator)

  /// Energy of one average execution (J = AvgExT * W), used by Eq. (3).
  double energy() const { return avg_ext * avg_power; }
};

/// Deterministic analytical evaluation of Table 2 metrics.
class MetricsModel {
 public:
  explicit MetricsModel(FaultModel fault = {}, ThermalModel thermal = {})
      : fault_(fault), thermal_(thermal) {}

  const FaultModel& fault_model() const { return fault_; }
  void set_fault_model(FaultModel fm) { fault_ = fm; }
  const ThermalModel& thermal_model() const { return thermal_; }
  void set_thermal_model(ThermalModel tm) { thermal_ = tm; }

  /// Evaluate the metric bundle for running `impl` on PE type `pe_type`
  /// under CLR configuration `cfg`.
  TaskMetrics evaluate(const Implementation& impl, const plat::PeType& pe_type,
                       const ClrConfig& cfg) const;

 private:
  FaultModel fault_;
  ThermalModel thermal_;
};

}  // namespace clr::rel
