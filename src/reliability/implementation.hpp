#pragma once
// Task implementations (paper §3.2): each task type has a set of
// implementations Impl(t,i), each tied to a PE type (processor kind +
// system/application software variant) with its own base execution time,
// power, and binary footprint. Accelerator implementations additionally
// carry the PRR bitstream cost.

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "platform/platform.hpp"
#include "taskgraph/graph.hpp"

namespace clr::rel {

/// One implementation choice for a task.
struct Implementation {
  /// PE type this implementation runs on (binds processor + ISA/bitstream).
  plat::PeTypeId pe_type = 0;
  /// Execution time of the bare implementation on a reference core at the
  /// PE-type's perf_factor 1.0 (the scheduler multiplies by perf_factor).
  double base_time = 10.0;
  /// Dynamic power of the bare implementation at power_factor 1.0.
  double base_power = 1.0;
  /// Binary size copied over the interconnect when the task migrates.
  std::uint32_t binary_bytes = 1u << 16;
};

/// Implementation sets for all tasks of one application.
class ImplementationSet {
 public:
  ImplementationSet() = default;

  /// Implementations available for task `t` (indexable; never empty once
  /// built via generate()).
  const std::vector<Implementation>& for_task(tg::TaskId t) const { return impls_.at(t); }
  std::size_t num_tasks() const { return impls_.size(); }

  /// Implementations of task `t` runnable on PE type `type`.
  std::vector<std::size_t> compatible_with(tg::TaskId t, plat::PeTypeId type) const;

  void add(tg::TaskId t, Implementation impl);
  void resize(std::size_t num_tasks) { impls_.resize(num_tasks); }

 private:
  std::vector<std::vector<Implementation>> impls_;
};

/// Parameters for the synthetic implementation-set generator (the TGFF-style
/// per-task-type execution-time tables of §5.1).
struct ImplGenParams {
  double base_time_min = 6.0;
  double base_time_max = 36.0;
  double base_power_min = 0.6;
  double base_power_max = 1.6;
  std::uint32_t binary_bytes_min = 16u << 10;
  std::uint32_t binary_bytes_max = 192u << 10;
  /// Fraction of task *types* that have an accelerator implementation.
  double accel_availability = 0.6;
  /// Accelerator speedup over the reference implementation (time divides).
  double accel_speedup = 2.5;
};

/// Generate per-task implementation sets: every task gets one implementation
/// per non-accelerator PE type (time/power drawn per *task type*, so equal
/// task types share tables), and — for a seeded subset of task types — an
/// accelerator implementation.
ImplementationSet generate_implementations(const tg::TaskGraph& graph, const plat::Platform& hw,
                                           const ImplGenParams& params, util::Rng& rng);

}  // namespace clr::rel
