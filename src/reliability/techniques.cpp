#include "reliability/techniques.hpp"

#include <stdexcept>

namespace clr::rel {

namespace {
// Hardware: partial TMR triplicates critical sublogic (large power cost,
// small timing cost via majority voters, strong masking); hardening swaps in
// rad-hard(ish) cells (moderate cost, moderate masking).
constexpr std::array<HwTraits, kNumHwTechniques> kHw{{
    /*None*/ {1.00, 1.00, 1.00},
    /*Hardening*/ {1.15, 1.35, 0.30},
    /*PartialTmr*/ {1.05, 2.20, 0.08},
}};

// System software: retry re-executes the whole task on detected errors;
// checkpointing pays a per-segment save cost but re-executes only a segment.
constexpr std::array<SswTraits, kNumSswTechniques> kSsw{{
    /*None*/ {1.00, 0.00, 1.00},
    /*Retry*/ {1.02, 0.00, 1.00},
    /*Checkpoint*/ {1.01, 0.03, 1.05},
}};

// Application software: checksum detects but cannot correct; Hamming corrects
// single-symbol errors; code tripling (triple execution + vote) corrects at
// ~3x time.
constexpr std::array<AswTraits, kNumAswTechniques> kAsw{{
    /*None*/ {1.00, 1.00, 0.00, 0.00},
    /*Checksum*/ {1.10, 1.05, 0.95, 0.00},
    /*Hamming*/ {1.35, 1.15, 0.97, 0.90},
    /*CodeTripling*/ {2.90, 1.10, 0.99, 0.95},
}};
}  // namespace

const HwTraits& hw_traits(HwTechnique t) { return kHw.at(static_cast<std::size_t>(t)); }
const SswTraits& ssw_traits(SswTechnique t) { return kSsw.at(static_cast<std::size_t>(t)); }
const AswTraits& asw_traits(AswTechnique t) { return kAsw.at(static_cast<std::size_t>(t)); }

std::string to_string(HwTechnique t) {
  switch (t) {
    case HwTechnique::None: return "hw:none";
    case HwTechnique::Hardening: return "hw:harden";
    case HwTechnique::PartialTmr: return "hw:ptmr";
  }
  throw std::invalid_argument("to_string: bad HwTechnique");
}

std::string to_string(SswTechnique t) {
  switch (t) {
    case SswTechnique::None: return "ssw:none";
    case SswTechnique::Retry: return "ssw:retry";
    case SswTechnique::Checkpoint: return "ssw:ckpt";
  }
  throw std::invalid_argument("to_string: bad SswTechnique");
}

std::string to_string(AswTechnique t) {
  switch (t) {
    case AswTechnique::None: return "asw:none";
    case AswTechnique::Checksum: return "asw:crc";
    case AswTechnique::Hamming: return "asw:hamming";
    case AswTechnique::CodeTripling: return "asw:triple";
  }
  throw std::invalid_argument("to_string: bad AswTechnique");
}

}  // namespace clr::rel
