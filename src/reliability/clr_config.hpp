#pragma once
// CLR configuration Ct = HWRelt x SSWRelt x ASWRelt (paper §4.1) and the
// enumerated configuration spaces used in the evaluation:
//   HwOnly — hardware-layer techniques only (the "HW-Only" system of Fig. 1)
//   Coarse — a reduced cross-layer set (CLR1 in Fig. 1)
//   Full   — the complete cross-layer product (CLR2 in Fig. 1)

#include <cstdint>
#include <string>
#include <vector>

#include "reliability/techniques.hpp"

namespace clr::rel {

/// One point of the per-task CLR space Ct.
struct ClrConfig {
  HwTechnique hw = HwTechnique::None;
  SswTechnique ssw = SswTechnique::None;
  AswTechnique asw = AswTechnique::None;
  /// Technique parameter: retry count for Retry, segment count for Checkpoint
  /// (ignored for SswTechnique::None).
  std::uint8_t ssw_param = 0;

  friend bool operator==(const ClrConfig&, const ClrConfig&) = default;
};

std::string to_string(const ClrConfig& c);

/// Granularity of the enumerated CLR space.
enum class ClrGranularity : std::uint8_t { HwOnly, Coarse, Full };

/// Enumerated, indexable CLR configuration space shared by all tasks.
/// The chromosome stores an index into this table.
class ClrSpace {
 public:
  explicit ClrSpace(ClrGranularity granularity);

  /// Custom space from an explicit configuration list (ablation studies,
  /// user-defined technique menus). The unprotected configuration is
  /// prepended when absent so index 0 is always the no-op (kUnprotected).
  explicit ClrSpace(std::vector<ClrConfig> configs);

  ClrGranularity granularity() const { return granularity_; }
  std::size_t size() const { return configs_.size(); }
  const ClrConfig& config(std::size_t index) const { return configs_.at(index); }
  const std::vector<ClrConfig>& configs() const { return configs_; }

  /// Index of the unprotected configuration (all layers None); always 0.
  static constexpr std::size_t kUnprotected = 0;

 private:
  ClrGranularity granularity_;
  std::vector<ClrConfig> configs_;
};

}  // namespace clr::rel
