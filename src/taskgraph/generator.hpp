#pragma once
// TGFF-substitute synthetic task-graph generator (DESIGN.md §2).
//
// The paper generates its 10–100-task applications with the TGFF tool [4].
// TGFF grows a DAG by alternating fan-out steps (a node spawns children) and
// fan-in steps (several frontier nodes join into one), bounded by in/out
// degree limits, and assigns task types whose execution costs come from
// per-type tables. This generator reproduces that construction, seeded and
// deterministic.

#include <cstdint>

#include "common/rng.hpp"
#include "taskgraph/graph.hpp"

namespace clr::tg {

/// Knobs mirroring the TGFF options the paper's setup needs.
struct GeneratorParams {
  std::size_t num_tasks = 20;
  /// Number of distinct task types; execution-cost tables are per type.
  std::size_t num_task_types = 8;
  std::size_t max_out_degree = 4;
  std::size_t max_in_degree = 3;
  /// Probability that a growth step is a fan-in (join) rather than fan-out.
  double fan_in_prob = 0.35;
  /// Communication time range for edges (uniform).
  double comm_time_min = 1.0;
  double comm_time_max = 8.0;
  /// Payload size range in bytes (uniform, rounded).
  std::uint32_t data_bytes_min = 512;
  std::uint32_t data_bytes_max = 16384;
  /// Criticality weight range (uniform); ζt is this normalized over tasks.
  double criticality_min = 0.5;
  double criticality_max = 2.0;
  /// Application period (0 = aperiodic / derived by caller).
  double period = 0.0;
};

/// Seeded TGFF-like generator.
class TgffGenerator {
 public:
  explicit TgffGenerator(GeneratorParams params) : params_(params) {}

  /// Build one DAG. Always returns a connected, acyclic graph whose task
  /// count equals params.num_tasks (>= 1).
  TaskGraph generate(util::Rng& rng) const;

  const GeneratorParams& params() const { return params_; }

 private:
  GeneratorParams params_;
};

/// The 11-task / 13-edge JPEG-encoder application of Fig. 2b, used by the
/// examples and as a fixed regression workload.
TaskGraph make_jpeg_encoder_graph();

}  // namespace clr::tg
