#pragma once
// Application model (paper §3.2):
//   Gapp = (Tapp, Eapp, Papp) — task nodes, directed dependency edges, period.
// Each task Tt = (IDt, Typet, Implt); implementations live in the reliability
// module (they depend on the platform/CLR model), so the graph stores the
// task *type* and per-task criticality weight used by Eq. (2).

#include <cstdint>
#include <string>
#include <vector>

namespace clr::tg {

using TaskId = std::uint32_t;
using EdgeId = std::uint32_t;
using TaskType = std::uint32_t;

/// Task node (IDt, Typet); criticality ζt feeds functional reliability (Eq. 2).
struct Task {
  TaskId id = 0;
  TaskType type = 0;
  /// Raw (un-normalized) criticality weight; TaskGraph::normalized_criticality
  /// divides by the sum so Σ ζt = 1.
  double criticality = 1.0;
  std::string name;
};

/// Dependency edge Ee = (IDe, Srce, Dste, CommTe).
struct Edge {
  EdgeId id = 0;
  TaskId src = 0;
  TaskId dst = 0;
  /// Data transfer time when src and dst run on *different* PEs (same-PE
  /// communication goes through local memory at zero cost).
  double comm_time = 0.0;
  /// Payload size in bytes (used by the interconnect/energy models).
  std::uint32_t data_bytes = 0;
};

/// Immutable-after-build directed acyclic task graph.
class TaskGraph {
 public:
  TaskGraph() = default;

  /// Add a task; returns its id (ids are dense, 0-based).
  TaskId add_task(TaskType type, double criticality = 1.0, std::string name = {});

  /// Add a dependency edge; returns its id. Throws on unknown endpoints or
  /// a self-loop.
  EdgeId add_edge(TaskId src, TaskId dst, double comm_time, std::uint32_t data_bytes = 0);

  void set_period(double period) { period_ = period; }
  double period() const { return period_; }

  std::size_t num_tasks() const { return tasks_.size(); }
  std::size_t num_edges() const { return edges_.size(); }

  const Task& task(TaskId id) const { return tasks_.at(id); }
  const Edge& edge(EdgeId id) const { return edges_.at(id); }
  const std::vector<Task>& tasks() const { return tasks_; }
  const std::vector<Edge>& edges() const { return edges_; }

  /// Edge ids leaving / entering a task.
  const std::vector<EdgeId>& out_edges(TaskId id) const { return out_.at(id); }
  const std::vector<EdgeId>& in_edges(TaskId id) const { return in_.at(id); }

  /// Successor / predecessor task ids.
  std::vector<TaskId> successors(TaskId id) const;
  std::vector<TaskId> predecessors(TaskId id) const;

  /// True iff the graph has no directed cycle.
  bool is_acyclic() const;

  /// Kahn topological order; throws std::logic_error when cyclic.
  std::vector<TaskId> topological_order() const;

  /// ζt of Eq. (2): task criticality normalized so the sum over tasks is 1.
  double normalized_criticality(TaskId id) const;

  /// Longest path through the graph where each task costs `task_cost(id)` and
  /// cross-PE communication is ignored (a lower bound on any makespan).
  double critical_path_length(const std::vector<double>& task_cost) const;

  /// Source tasks (no predecessors) / sink tasks (no successors).
  std::vector<TaskId> sources() const;
  std::vector<TaskId> sinks() const;

 private:
  std::vector<Task> tasks_;
  std::vector<Edge> edges_;
  std::vector<std::vector<EdgeId>> out_;
  std::vector<std::vector<EdgeId>> in_;
  double period_ = 0.0;
};

}  // namespace clr::tg
