#include "taskgraph/generator.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace clr::tg {

TaskGraph TgffGenerator::generate(util::Rng& rng) const {
  const auto& p = params_;
  if (p.num_tasks == 0) throw std::invalid_argument("TgffGenerator: num_tasks must be >= 1");
  if (p.num_task_types == 0) throw std::invalid_argument("TgffGenerator: num_task_types must be >= 1");
  if (p.comm_time_min < 0.0 || p.comm_time_max < p.comm_time_min) {
    throw std::invalid_argument("TgffGenerator: bad comm_time range");
  }

  TaskGraph g;
  g.set_period(p.period);

  auto new_task = [&]() {
    const auto type = static_cast<TaskType>(rng.index(p.num_task_types));
    const double crit = rng.uniform(p.criticality_min, p.criticality_max);
    return g.add_task(type, crit);
  };
  auto new_edge = [&](TaskId src, TaskId dst) {
    const double comm = rng.uniform(p.comm_time_min, p.comm_time_max);
    const auto bytes = static_cast<std::uint32_t>(
        rng.uniform_int(static_cast<int>(p.data_bytes_min), static_cast<int>(p.data_bytes_max)));
    g.add_edge(src, dst, comm, bytes);
  };

  // Frontier = tasks that can still take more out-edges. TGFF-style growth:
  // fan-out from a frontier node, or fan-in several frontier nodes into one.
  std::vector<TaskId> frontier;
  std::vector<std::size_t> out_degree;

  const TaskId root = new_task();
  frontier.push_back(root);
  out_degree.push_back(0);

  while (g.num_tasks() < p.num_tasks) {
    const std::size_t remaining = p.num_tasks - g.num_tasks();
    const bool can_fan_in = frontier.size() >= 2;
    const bool do_fan_in = can_fan_in && rng.chance(p.fan_in_prob);

    if (do_fan_in) {
      // Join 2..max_in_degree frontier nodes into a fresh task.
      const std::size_t want = 2 + rng.index(std::max<std::size_t>(1, p.max_in_degree - 1));
      const std::size_t join = std::min(want, frontier.size());
      rng.shuffle(frontier);
      const TaskId joined = new_task();
      out_degree.push_back(0);
      for (std::size_t i = 0; i < join; ++i) {
        const TaskId src = frontier[frontier.size() - 1 - i];
        new_edge(src, joined);
        if (++out_degree[src] >= p.max_out_degree) {
          // src leaves the frontier below.
        }
      }
      // Remove joined-from nodes that are saturated; keep the rest.
      std::vector<TaskId> next;
      for (std::size_t i = 0; i < frontier.size(); ++i) {
        const TaskId t = frontier[i];
        const bool was_joined = i >= frontier.size() - join;
        if (!was_joined || out_degree[t] < p.max_out_degree) next.push_back(t);
      }
      next.push_back(joined);
      frontier = std::move(next);
    } else {
      // Fan out: pick a frontier node, give it 1..max_out children (capped by
      // remaining budget).
      const std::size_t fi = rng.index(frontier.size());
      const TaskId parent = frontier[fi];
      const std::size_t head = p.max_out_degree - out_degree[parent];
      const std::size_t kids =
          std::min({remaining, head, static_cast<std::size_t>(1) + rng.index(p.max_out_degree)});
      for (std::size_t k = 0; k < std::max<std::size_t>(kids, 1); ++k) {
        if (g.num_tasks() >= p.num_tasks) break;
        const TaskId child = new_task();
        out_degree.push_back(0);
        new_edge(parent, child);
        ++out_degree[parent];
        frontier.push_back(child);
        if (out_degree[parent] >= p.max_out_degree) break;
      }
      if (out_degree[parent] >= p.max_out_degree) {
        frontier.erase(frontier.begin() + static_cast<std::ptrdiff_t>(fi));
      }
    }
  }

  return g;
}

TaskGraph make_jpeg_encoder_graph() {
  // Fig. 2b: source S fans into four parallel H1..H4-style pipelines that
  // re-join for quantization (Q) and entropy coding (Z): 11 tasks, 13 edges.
  TaskGraph g;
  // Task types: 0=split, 1=colorspace, 2=dct, 3=quant, 4=entropy, 5=pack.
  const TaskId s = g.add_task(0, 2.0, "S");           // source / split
  const TaskId d1 = g.add_task(1, 1.0, "D1");         // block prep x4
  const TaskId d2 = g.add_task(1, 1.0, "D2");
  const TaskId d3 = g.add_task(1, 1.0, "D3");
  const TaskId d4 = g.add_task(1, 1.0, "D4");
  const TaskId h1 = g.add_task(2, 1.5, "H1");         // DCT stages
  const TaskId h2 = g.add_task(2, 1.5, "H2");
  const TaskId h3 = g.add_task(2, 1.5, "H3");
  const TaskId h4 = g.add_task(2, 1.5, "H4");
  const TaskId q = g.add_task(3, 2.0, "Q");           // quantization join
  const TaskId z = g.add_task(4, 2.5, "Z");           // entropy coding

  g.add_edge(s, d1, 2.0, 4096);
  g.add_edge(s, d2, 2.0, 4096);
  g.add_edge(s, d3, 2.0, 4096);
  g.add_edge(s, d4, 2.0, 4096);
  g.add_edge(d1, h1, 1.5, 2048);
  g.add_edge(d2, h2, 1.5, 2048);
  g.add_edge(d3, h3, 1.5, 2048);
  g.add_edge(d4, h4, 1.5, 2048);
  g.add_edge(h1, q, 1.0, 1024);
  g.add_edge(h2, q, 1.0, 1024);
  g.add_edge(h3, q, 1.0, 1024);
  g.add_edge(h4, q, 1.0, 1024);
  g.add_edge(q, z, 2.5, 8192);
  g.set_period(200.0);
  return g;
}

}  // namespace clr::tg
