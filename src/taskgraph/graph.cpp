#include "taskgraph/graph.hpp"

#include <algorithm>
#include <numeric>
#include <queue>
#include <stdexcept>

namespace clr::tg {

TaskId TaskGraph::add_task(TaskType type, double criticality, std::string name) {
  if (criticality < 0.0) throw std::invalid_argument("add_task: criticality must be >= 0");
  const auto id = static_cast<TaskId>(tasks_.size());
  tasks_.push_back(Task{id, type, criticality, std::move(name)});
  out_.emplace_back();
  in_.emplace_back();
  return id;
}

EdgeId TaskGraph::add_edge(TaskId src, TaskId dst, double comm_time, std::uint32_t data_bytes) {
  if (src >= tasks_.size() || dst >= tasks_.size()) {
    throw std::out_of_range("add_edge: unknown endpoint");
  }
  if (src == dst) throw std::invalid_argument("add_edge: self-loop");
  if (comm_time < 0.0) throw std::invalid_argument("add_edge: negative comm_time");
  const auto id = static_cast<EdgeId>(edges_.size());
  edges_.push_back(Edge{id, src, dst, comm_time, data_bytes});
  out_[src].push_back(id);
  in_[dst].push_back(id);
  return id;
}

std::vector<TaskId> TaskGraph::successors(TaskId id) const {
  std::vector<TaskId> result;
  result.reserve(out_.at(id).size());
  for (EdgeId e : out_.at(id)) result.push_back(edges_[e].dst);
  return result;
}

std::vector<TaskId> TaskGraph::predecessors(TaskId id) const {
  std::vector<TaskId> result;
  result.reserve(in_.at(id).size());
  for (EdgeId e : in_.at(id)) result.push_back(edges_[e].src);
  return result;
}

bool TaskGraph::is_acyclic() const {
  std::vector<std::size_t> indegree(tasks_.size(), 0);
  for (const auto& e : edges_) ++indegree[e.dst];
  std::queue<TaskId> ready;
  for (TaskId t = 0; t < tasks_.size(); ++t) {
    if (indegree[t] == 0) ready.push(t);
  }
  std::size_t visited = 0;
  while (!ready.empty()) {
    const TaskId t = ready.front();
    ready.pop();
    ++visited;
    for (EdgeId e : out_[t]) {
      if (--indegree[edges_[e].dst] == 0) ready.push(edges_[e].dst);
    }
  }
  return visited == tasks_.size();
}

std::vector<TaskId> TaskGraph::topological_order() const {
  std::vector<std::size_t> indegree(tasks_.size(), 0);
  for (const auto& e : edges_) ++indegree[e.dst];
  std::queue<TaskId> ready;
  for (TaskId t = 0; t < tasks_.size(); ++t) {
    if (indegree[t] == 0) ready.push(t);
  }
  std::vector<TaskId> order;
  order.reserve(tasks_.size());
  while (!ready.empty()) {
    const TaskId t = ready.front();
    ready.pop();
    order.push_back(t);
    for (EdgeId e : out_[t]) {
      if (--indegree[edges_[e].dst] == 0) ready.push(edges_[e].dst);
    }
  }
  if (order.size() != tasks_.size()) throw std::logic_error("topological_order: graph is cyclic");
  return order;
}

double TaskGraph::normalized_criticality(TaskId id) const {
  const double total = std::accumulate(tasks_.begin(), tasks_.end(), 0.0,
                                       [](double acc, const Task& t) { return acc + t.criticality; });
  if (total <= 0.0) return tasks_.empty() ? 0.0 : 1.0 / static_cast<double>(tasks_.size());
  return tasks_.at(id).criticality / total;
}

double TaskGraph::critical_path_length(const std::vector<double>& task_cost) const {
  if (task_cost.size() != tasks_.size()) {
    throw std::invalid_argument("critical_path_length: cost vector size mismatch");
  }
  std::vector<double> finish(tasks_.size(), 0.0);
  double best = 0.0;
  for (TaskId t : topological_order()) {
    double start = 0.0;
    for (EdgeId e : in_[t]) start = std::max(start, finish[edges_[e].src]);
    finish[t] = start + task_cost[t];
    best = std::max(best, finish[t]);
  }
  return best;
}

std::vector<TaskId> TaskGraph::sources() const {
  std::vector<TaskId> result;
  for (TaskId t = 0; t < tasks_.size(); ++t) {
    if (in_[t].empty()) result.push_back(t);
  }
  return result;
}

std::vector<TaskId> TaskGraph::sinks() const {
  std::vector<TaskId> result;
  for (TaskId t = 0; t < tasks_.size(); ++t) {
    if (out_[t].empty()) result.push_back(t);
  }
  return result;
}

}  // namespace clr::tg
