#include "reconfig/reconfig.hpp"

#include <stdexcept>

namespace clr::recfg {

ReconfigCost ReconfigModel::cost(const sched::Configuration& from,
                                 const sched::Configuration& to) const {
  if (from.size() != to.size()) {
    throw std::invalid_argument("ReconfigModel::cost: configuration size mismatch");
  }
  const auto& ic = platform_->interconnect();
  ReconfigCost c;

  for (tg::TaskId t = 0; t < from.size(); ++t) {
    const auto& a = from[t];
    const auto& b = to[t];
    const bool moved = a.pe != b.pe;
    const bool impl_changed = a.impl_index != b.impl_index;
    if (!moved && !impl_changed) continue;  // re-ordering / CLR change: free

    const rel::Implementation& impl = impls_->for_task(t).at(b.impl_index);
    // On a mesh NoC the binary travels hop-by-hop from the old to the new
    // PE; implementation swaps on the same PE load from backing store at
    // unit distance.
    const double factor = moved ? platform_->comm_factor(a.pe, b.pe) : 1.0;
    c.migration += factor * static_cast<double>(impl.binary_bytes) / ic.binary_bandwidth +
                   ic.per_migration_overhead;
    ++c.migrated_tasks;

    // Loading onto a PRR-hosted accelerator requires its bitstream unless the
    // same accelerator implementation already occupied that PRR slot.
    const plat::Pe& target_pe = platform_->pe(b.pe);
    if (target_pe.prr != plat::Pe::kNoPrr) {
      const plat::Prr& prr = platform_->prr(target_pe.prr);
      c.bitstream += static_cast<double>(prr.bitstream_bytes) / ic.icap_bandwidth;
      ++c.prr_loads;
    }
  }
  return c;
}

double ReconfigModel::average_drc(const sched::Configuration& from,
                                  const std::vector<sched::Configuration>& targets) const {
  if (targets.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& target : targets) sum += drc(from, target);
  return sum / static_cast<double>(targets.size());
}

}  // namespace clr::recfg
