#pragma once
// Reconfiguration model (paper §3.5). Of the four adaptation modes, only
// (3) changing a task's implementation and (4) changing its PE binding incur
// cost: the task binary must be copied to the new PE's local memory over the
// on-chip interconnect, and — when the new implementation is an accelerator
// in a PRR — the PRR bitstream must be streamed through the ICAP.
// Re-ordering (1) and CLR-configuration changes (2) are free.
//
// dRC(a, b) is the total cost of reconfiguring from configuration a to b.

#include "reliability/implementation.hpp"
#include "schedule/configuration.hpp"

namespace clr::recfg {

/// Breakdown of one reconfiguration's cost.
struct ReconfigCost {
  double migration = 0.0;  ///< binary copies over the interconnect + overhead
  double bitstream = 0.0;  ///< PRR bitstream loads through the ICAP
  std::size_t migrated_tasks = 0;
  std::size_t prr_loads = 0;

  double total() const { return migration + bitstream; }
};

/// Deterministic dRC evaluation.
class ReconfigModel {
 public:
  ReconfigModel(const plat::Platform& platform, const rel::ImplementationSet& impls)
      : platform_(&platform), impls_(&impls) {}

  /// Cost breakdown of switching from `from` to `to`.
  /// dRC(x, x) is always zero.
  ReconfigCost cost(const sched::Configuration& from, const sched::Configuration& to) const;

  /// Convenience: total dRC.
  double drc(const sched::Configuration& from, const sched::Configuration& to) const {
    return cost(from, to).total();
  }

  /// Average dRC from `from` to every configuration in `targets` — the
  /// secondary objective of the ReD stage (§4.2.1).
  double average_drc(const sched::Configuration& from,
                     const std::vector<sched::Configuration>& targets) const;

 private:
  const plat::Platform* platform_;
  const rel::ImplementationSet* impls_;
};

}  // namespace clr::recfg
