#pragma once
// Architecture model (paper §3.1): a heterogeneous MPSoC with distributed
// shared memory, P processing elements characterized by (IDp, PETypep),
// partially reconfigurable regions (PRRs) hosting accelerators, an on-chip
// interconnect for binary migration, and an ICAP port for bitstream loads.
//
// PETypep folds together (1) processor kind, (2) aging fault profile βp and
// (3) soft-error masking (AVF) — exactly the three heterogeneity factors the
// paper lists.

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace clr::plat {

using PeId = std::uint32_t;
using PeTypeId = std::uint32_t;
using PrrId = std::uint32_t;

/// Processor kind within a PE type.
enum class PeKind : std::uint8_t {
  GeneralPurpose,  ///< embedded general-purpose core
  Dsp,             ///< specialized signal processor
  Accelerator,     ///< soft accelerator instantiated in a PRR
};

/// PE type: the heterogeneity tuple of §3.1.
struct PeType {
  PeTypeId id = 0;
  std::string name;
  PeKind kind = PeKind::GeneralPurpose;
  /// Execution-time multiplier relative to the reference core (lower=faster).
  double perf_factor = 1.0;
  /// Dynamic power multiplier relative to the reference core.
  double power_factor = 1.0;
  /// Architectural Vulnerability Factor — soft-error masking of the PE
  /// micro-architecture (fraction of raw upsets that become task errors).
  double avf = 0.4;
  /// Weibull shape parameter of the PE's aging fault profile (βp).
  double beta_aging = 2.0;
  /// Static (idle) power of a PE of this type.
  double static_power = 0.05;
};

/// A processing element instance (IDp, PETypep) with fixed local memory for
/// the binaries of the tasks mapped on it (§3.5).
struct Pe {
  PeId id = 0;
  PeTypeId type = 0;
  std::uint32_t local_mem_bytes = 1u << 20;
  /// For accelerator PEs: the PRR this PE occupies (PRR id), else npos.
  static constexpr std::uint32_t kNoPrr = 0xffffffffu;
  std::uint32_t prr = kNoPrr;
};

/// Partially reconfigurable region hosting an accelerator PE; switching the
/// accelerator requires streaming a bitstream through the ICAP.
struct Prr {
  PrrId id = 0;
  std::uint32_t bitstream_bytes = 1u << 21;
};

/// Interconnect topology: a shared bus (uniform cost between any PE pair) or
/// a 2-D mesh NoC where cost scales with the Manhattan hop distance between
/// the PEs' grid positions (PE id -> (id % columns, id / columns)).
enum class Topology : std::uint8_t { Bus, Mesh2D };

/// On-chip interconnect + reconfiguration ports.
struct Interconnect {
  /// Bytes per time unit for task-binary migration over the NoC/bus.
  double binary_bandwidth = 4096.0;
  /// Bytes per time unit through the ICAP for PRR bitstreams.
  double icap_bandwidth = 1024.0;
  /// Fixed overhead charged per migrated task (control, cache warmup).
  double per_migration_overhead = 2.0;
  /// Topology of the on-chip network (Bus keeps the uniform-cost semantics).
  Topology topology = Topology::Bus;
  /// Mesh width used to place PE ids on the grid (Mesh2D only).
  std::size_t mesh_columns = 4;
};

/// The full HMPSoC platform.
class Platform {
 public:
  Platform() = default;

  PeTypeId add_pe_type(PeType type);
  PeId add_pe(PeTypeId type, std::uint32_t local_mem_bytes = 1u << 20,
              std::uint32_t prr = Pe::kNoPrr);
  PrrId add_prr(std::uint32_t bitstream_bytes);

  void set_interconnect(Interconnect ic) { interconnect_ = ic; }
  const Interconnect& interconnect() const { return interconnect_; }

  std::size_t num_pes() const { return pes_.size(); }
  std::size_t num_pe_types() const { return types_.size(); }
  std::size_t num_prrs() const { return prrs_.size(); }

  const Pe& pe(PeId id) const { return pes_.at(id); }
  const PeType& pe_type(PeTypeId id) const { return types_.at(id); }
  const PeType& type_of(PeId id) const { return types_.at(pes_.at(id).type); }
  const Prr& prr(PrrId id) const { return prrs_.at(id); }
  const std::vector<Pe>& pes() const { return pes_; }
  const std::vector<PeType>& pe_types() const { return types_; }

  /// True when the PE is an accelerator living in a PRR.
  bool is_reconfigurable(PeId id) const;

  /// Ids of PEs whose type kind matches `kind`.
  std::vector<PeId> pes_of_kind(PeKind kind) const;

  /// Manhattan hop distance between two PEs under the configured topology
  /// (Bus: 1 for distinct PEs; Mesh2D: grid distance, min 1 for distinct
  /// PEs on the same tile). 0 when a == b.
  std::size_t hop_count(PeId a, PeId b) const;

  /// Communication-cost multiplier between two PEs: 1.0 on a bus (and for
  /// a == b), the hop count on a mesh. Scales both edge communication times
  /// in the scheduler and binary-migration times in the reconfiguration
  /// model.
  double comm_factor(PeId a, PeId b) const;

 private:
  std::vector<PeType> types_;
  std::vector<Pe> pes_;
  std::vector<Prr> prrs_;
  Interconnect interconnect_;
};

/// The evaluation platform of §5.1: 5 PEs of 3 types differing in masking
/// factor (AVF), plus 3 PRR-hosted accelerator slots.
Platform make_default_hmpsoc();

}  // namespace clr::plat
