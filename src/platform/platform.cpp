#include "platform/platform.hpp"

namespace clr::plat {

PeTypeId Platform::add_pe_type(PeType type) {
  type.id = static_cast<PeTypeId>(types_.size());
  if (type.perf_factor <= 0.0) throw std::invalid_argument("PeType: perf_factor must be > 0");
  if (type.power_factor <= 0.0) throw std::invalid_argument("PeType: power_factor must be > 0");
  if (type.avf < 0.0 || type.avf > 1.0) throw std::invalid_argument("PeType: avf must be in [0,1]");
  if (type.beta_aging <= 0.0) throw std::invalid_argument("PeType: beta_aging must be > 0");
  types_.push_back(std::move(type));
  return types_.back().id;
}

PeId Platform::add_pe(PeTypeId type, std::uint32_t local_mem_bytes, std::uint32_t prr) {
  if (type >= types_.size()) throw std::out_of_range("add_pe: unknown PE type");
  if (prr != Pe::kNoPrr && prr >= prrs_.size()) throw std::out_of_range("add_pe: unknown PRR");
  const auto id = static_cast<PeId>(pes_.size());
  pes_.push_back(Pe{id, type, local_mem_bytes, prr});
  return id;
}

PrrId Platform::add_prr(std::uint32_t bitstream_bytes) {
  const auto id = static_cast<PrrId>(prrs_.size());
  prrs_.push_back(Prr{id, bitstream_bytes});
  return id;
}

bool Platform::is_reconfigurable(PeId id) const {
  const Pe& p = pes_.at(id);
  return p.prr != Pe::kNoPrr;
}

std::vector<PeId> Platform::pes_of_kind(PeKind kind) const {
  std::vector<PeId> result;
  for (const auto& p : pes_) {
    if (types_[p.type].kind == kind) result.push_back(p.id);
  }
  return result;
}

std::size_t Platform::hop_count(PeId a, PeId b) const {
  if (a >= pes_.size() || b >= pes_.size()) throw std::out_of_range("hop_count: unknown PE");
  if (a == b) return 0;
  if (interconnect_.topology == Topology::Bus) return 1;
  const std::size_t cols = std::max<std::size_t>(interconnect_.mesh_columns, 1);
  const auto ax = a % cols, ay = a / cols;
  const auto bx = b % cols, by = b / cols;
  const std::size_t dist = (ax > bx ? ax - bx : bx - ax) + (ay > by ? ay - by : by - ay);
  return std::max<std::size_t>(dist, 1);
}

double Platform::comm_factor(PeId a, PeId b) const {
  if (a == b) return 1.0;
  if (interconnect_.topology == Topology::Bus) return 1.0;
  return static_cast<double>(hop_count(a, b));
}

Platform make_default_hmpsoc() {
  Platform hw;

  // Three PE types differing mainly in masking factor (AVF), per §5.1, plus
  // an accelerator type for the PRR slots.
  PeType big;
  big.name = "big-core";
  big.kind = PeKind::GeneralPurpose;
  big.perf_factor = 0.8;    // fastest general-purpose core
  big.power_factor = 1.6;   // but power hungry
  big.avf = 0.45;           // little architectural masking
  big.beta_aging = 2.2;
  big.static_power = 0.08;

  PeType little;
  little.name = "little-core";
  little.kind = PeKind::GeneralPurpose;
  little.perf_factor = 1.4;
  little.power_factor = 0.7;
  little.avf = 0.30;
  little.beta_aging = 1.8;
  little.static_power = 0.03;

  PeType dsp;
  dsp.name = "dsp";
  dsp.kind = PeKind::Dsp;
  dsp.perf_factor = 1.0;
  dsp.power_factor = 1.0;
  dsp.avf = 0.20;           // strongest masking of the three
  dsp.beta_aging = 2.0;
  dsp.static_power = 0.05;

  PeType accel;
  accel.name = "prr-accel";
  accel.kind = PeKind::Accelerator;
  accel.perf_factor = 0.5;  // accelerators are fast for matching tasks
  accel.power_factor = 0.9;
  accel.avf = 0.55;         // SRAM configuration memory is more vulnerable
  accel.beta_aging = 2.5;
  accel.static_power = 0.04;

  const PeTypeId t_big = hw.add_pe_type(big);
  const PeTypeId t_little = hw.add_pe_type(little);
  const PeTypeId t_dsp = hw.add_pe_type(dsp);
  const PeTypeId t_accel = hw.add_pe_type(accel);

  // 5 fixed PEs: 2 big, 2 little, 1 DSP.
  hw.add_pe(t_big);
  hw.add_pe(t_big);
  hw.add_pe(t_little);
  hw.add_pe(t_little);
  hw.add_pe(t_dsp);

  // 3 PRRs, each hosting one accelerator slot.
  const PrrId r0 = hw.add_prr(2u << 20);
  const PrrId r1 = hw.add_prr(2u << 20);
  const PrrId r2 = hw.add_prr(3u << 20);
  hw.add_pe(t_accel, 1u << 19, r0);
  hw.add_pe(t_accel, 1u << 19, r1);
  hw.add_pe(t_accel, 1u << 19, r2);

  Interconnect ic;
  ic.binary_bandwidth = 8192.0;
  ic.icap_bandwidth = 2048.0;
  ic.per_migration_overhead = 2.0;
  hw.set_interconnect(ic);
  return hw;
}

}  // namespace clr::plat
