#pragma once
// Span-based tracing & profiling subsystem (DESIGN.md §5.8).
//
// A process-wide, thread-safe tracer that records nestable scoped spans,
// instant events and counter samples into per-thread buffers, and exports
// them as Chrome trace_event JSON (loadable in Perfetto / chrome://tracing)
// or as a compact per-span summary table (count / total / p50 / p95 / max).
//
// Design goals, in order:
//
//   1. Near-zero disabled cost. Tracing is compiled in everywhere but off by
//      default; every CLR_TRACE_* macro guards on a single relaxed atomic
//      load of the category mask before touching anything else. A disabled
//      span constructs to two pointer-sized stores (see bench/trace_overhead).
//   2. No effect on results. The tracer only *observes*: it never draws from
//      an Rng, never reorders work, and never blocks the traced thread on
//      another recording thread — traced runs are bit-for-bit identical to
//      untraced ones at any job count (tests/experiments/test_trace_determinism).
//   3. Lock-free hot path. Each thread appends to its own chunked buffer;
//      slots are published with a release store of the chunk's count, so a
//      later collector (acquire load) sees fully-written events without the
//      recording threads ever taking a lock per event. Locks are only taken
//      on the cold paths: first record on a thread, a chunk filling up, and
//      collection itself.
//
// Control-plane contract: enable() / disable() / clear() / collect() are
// *not* meant to race with recording threads. Call them from the driver
// around parallel regions (enable before the run, collect after the pool has
// joined) — exactly how clrtool, the benches and the tests use them.

#include <array>
#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace clr::io {
class Json;
}

namespace clr::trace {

/// Trace categories: one bit each so the runtime filter (`--trace-categories
/// dse,runtime`) is a mask test, not a string compare.
enum class Category : std::uint32_t {
  Dse = 1u << 0,      ///< design-time engines: HvGa/Nsga2 generations, ReD seeds
  Runtime = 1u << 1,  ///< RuntimeSimulator QoS / reconfiguration / fault events
  Exp = 1u << 2,      ///< exp::Runner grid, per-cell replication jobs
  Drc = 1u << 3,      ///< DrcMatrix builds
  Bench = 1u << 4,    ///< bench-harness phases
};

inline constexpr std::uint32_t kAllCategories = 0xffffffffu;

/// Enable-mask of a single category (combine with |).
inline constexpr std::uint32_t mask_of(Category c) {
  return static_cast<std::uint32_t>(c);
}

/// Short stable name ("dse", "runtime", ...) used in exports and CLI parsing.
const char* category_name(Category c);

/// Parse a comma-separated category list ("dse,runtime") into a mask.
/// "all" (or an empty string) selects every category; unknown names throw
/// std::invalid_argument with a one-line message listing the valid ones.
std::uint32_t parse_categories(const std::string& csv);

/// One key/value argument attached to an event. Values are rendered at
/// record time into their final JSON token so the export path never has to
/// re-interpret types.
struct Arg {
  Arg() = default;
  Arg(const char* k, const char* v) : key(k), value(v), is_string(true) {}
  Arg(const char* k, const std::string& v) : key(k), value(v), is_string(true) {}
  Arg(const char* k, double v);
  Arg(const char* k, bool v) : key(k), value(v ? "true" : "false"), is_string(false) {}
  Arg(const char* k, int v) : key(k), value(std::to_string(v)), is_string(false) {}
  Arg(const char* k, long v) : key(k), value(std::to_string(v)), is_string(false) {}
  Arg(const char* k, long long v) : key(k), value(std::to_string(v)), is_string(false) {}
  Arg(const char* k, unsigned v) : key(k), value(std::to_string(v)), is_string(false) {}
  Arg(const char* k, unsigned long v) : key(k), value(std::to_string(v)), is_string(false) {}
  Arg(const char* k, unsigned long long v)
      : key(k), value(std::to_string(v)), is_string(false) {}

  std::string key;
  std::string value;      ///< rendered JSON token (numbers/bools) or raw text
  bool is_string = true;  ///< raw text must be quoted/escaped on export
};

/// Chrome trace_event phases we emit.
enum class Phase : char {
  Complete = 'X',  ///< span with a duration
  Instant = 'i',   ///< point event
  Counter = 'C',   ///< sampled counter value
};

/// One recorded event. `ts_ns` is monotonic nanoseconds since the tracer's
/// epoch (the last enable()/clear()).
struct Event {
  std::string name;
  Category category = Category::Dse;
  Phase phase = Phase::Instant;
  std::uint64_t ts_ns = 0;
  std::uint64_t dur_ns = 0;  ///< Complete events only
  std::uint32_t tid = 0;     ///< registration-order thread id
  std::vector<Arg> args;
};

/// Aggregated statistics of one (category, name) span population — the
/// summary-table row.
struct SpanStats {
  std::string name;
  Category category = Category::Dse;
  std::size_t count = 0;
  double total_ms = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double max_ms = 0.0;
};

/// The process-wide tracer. All recording goes through instance().
class Tracer {
 public:
  static Tracer& instance();

  /// Start recording events whose category is in `mask`. Resets the
  /// timestamp epoch but keeps previously collected events.
  void enable(std::uint32_t mask = kAllCategories);
  void disable();
  /// Drop all recorded events and thread buffers. Not safe to race with
  /// recording threads (see the control-plane contract above).
  void clear();

  bool enabled() const { return mask_.load(std::memory_order_relaxed) != 0; }
  bool category_enabled(Category c) const {
    return (mask_.load(std::memory_order_relaxed) & static_cast<std::uint32_t>(c)) != 0;
  }
  std::uint32_t mask() const { return mask_.load(std::memory_order_relaxed); }

  /// Monotonic nanoseconds since the current epoch.
  std::uint64_t now_ns() const;

  /// Append one event to the calling thread's buffer. Callers are expected
  /// to have checked category_enabled() first (the macros do).
  void record(Event ev);

  /// Convenience recorders. No-ops when the category is disabled.
  void instant(Category c, const char* name, std::initializer_list<Arg> args = {});
  void counter(Category c, const char* name, double value);

  /// Merge every thread buffer into one timeline ordered by (ts, tid).
  /// Call after the traced parallel region has joined.
  std::vector<Event> collect() const;

  /// Chrome trace_event JSON ({"traceEvents": [...], "displayTimeUnit":
  /// "ms"}) over collect() — loadable in Perfetto / chrome://tracing.
  io::Json chrome_trace() const;

  /// Per-(category, name) duration statistics over the Complete events of
  /// collect(), sorted by descending total time.
  std::vector<SpanStats> span_stats() const;

  /// span_stats() rendered as a TextTable ("trace summary").
  std::string summary() const;

  std::size_t num_events() const;

 private:
  Tracer() = default;

  // Chunked single-writer buffer: the owning thread fills slots and
  // publishes them by storing the new count with release semantics; the
  // collector reads counts with acquire and only touches published slots.
  struct Chunk {
    static constexpr std::size_t kEvents = 512;
    std::atomic<std::size_t> count{0};
    std::array<Event, kEvents> events;
  };
  struct ThreadBuffer {
    std::uint32_t tid = 0;
    mutable std::mutex chunks_mu;  ///< guards the chunk list, not the slots
    std::vector<std::unique_ptr<Chunk>> chunks;
    Chunk* current = nullptr;  ///< owner thread only

    void push(Event ev);
  };

  ThreadBuffer* this_thread_buffer();

  std::atomic<std::uint32_t> mask_{0};
  std::atomic<std::uint64_t> generation_{1};
  std::atomic<std::uint64_t> epoch_ns_{0};
  mutable std::mutex mu_;  ///< guards buffers_
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
};

/// RAII scoped span: measures construction-to-destruction and records one
/// Complete event. When the category is disabled at construction the span is
/// inert (no allocation, no clock read).
class Span {
 public:
  Span(Category c, const char* name) : Span(c, name, {}) {}
  Span(Category c, const char* name, std::initializer_list<Arg> args);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attach an argument after construction (e.g. a result computed inside
  /// the span). No-op on an inert span.
  void arg(Arg a);

  bool active() const { return active_; }

 private:
  bool active_ = false;
  Category category_ = Category::Dse;
  const char* name_ = nullptr;
  std::uint64_t start_ns_ = 0;
  std::vector<Arg> args_;
};

}  // namespace clr::trace

// --- recording macros -------------------------------------------------------
// All of them compile to a single relaxed atomic load when tracing is off.
// CLR_TRACE_SPAN creates a block-scoped RAII span; extra arguments are
// forwarded to the Span constructor, so brace-lists work:
//   CLR_TRACE_SPAN(span, Category::Dse, "hvga.generation", {{"gen", g}});

#define CLR_TRACE_CONCAT_IMPL(a, b) a##b
#define CLR_TRACE_CONCAT(a, b) CLR_TRACE_CONCAT_IMPL(a, b)

#define CLR_TRACE_SPAN(var, cat, ...) ::clr::trace::Span var(cat, __VA_ARGS__)

#define CLR_TRACE_INSTANT(cat, ...)                                      \
  do {                                                                   \
    auto& _clr_tr = ::clr::trace::Tracer::instance();                    \
    if (_clr_tr.category_enabled(cat)) _clr_tr.instant(cat, __VA_ARGS__); \
  } while (0)

#define CLR_TRACE_COUNTER(cat, name, value)                                    \
  do {                                                                         \
    auto& _clr_tr = ::clr::trace::Tracer::instance();                          \
    if (_clr_tr.category_enabled(cat)) _clr_tr.counter(cat, name, value);      \
  } while (0)
