#include "trace/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <stdexcept>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "io/json.hpp"

namespace clr::trace {

namespace {

constexpr Category kCategories[] = {Category::Dse, Category::Runtime, Category::Exp,
                                    Category::Drc, Category::Bench};

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

Arg::Arg(const char* k, double v) : key(k), is_string(false) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  value = buf;
}

const char* category_name(Category c) {
  switch (c) {
    case Category::Dse: return "dse";
    case Category::Runtime: return "runtime";
    case Category::Exp: return "exp";
    case Category::Drc: return "drc";
    case Category::Bench: return "bench";
  }
  return "unknown";
}

std::uint32_t parse_categories(const std::string& csv) {
  if (csv.empty() || csv == "all") return kAllCategories;
  std::uint32_t mask = 0;
  std::size_t pos = 0;
  while (pos <= csv.size()) {
    const std::size_t comma = std::min(csv.find(',', pos), csv.size());
    std::string token = csv.substr(pos, comma - pos);
    pos = comma + 1;
    while (!token.empty() && (token.front() == ' ' || token.front() == '\t')) token.erase(0, 1);
    while (!token.empty() && (token.back() == ' ' || token.back() == '\t')) token.pop_back();
    if (token.empty()) continue;
    if (token == "all") {
      mask = kAllCategories;
      continue;
    }
    bool known = false;
    for (Category c : kCategories) {
      if (token == category_name(c)) {
        mask |= static_cast<std::uint32_t>(c);
        known = true;
        break;
      }
    }
    if (!known) {
      throw std::invalid_argument("unknown trace category '" + token +
                                  "' (use dse, runtime, exp, drc, bench or all)");
    }
  }
  return mask;
}

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

void Tracer::enable(std::uint32_t mask) {
  epoch_ns_.store(steady_ns(), std::memory_order_relaxed);
  mask_.store(mask, std::memory_order_relaxed);
}

void Tracer::disable() { mask_.store(0, std::memory_order_relaxed); }

void Tracer::clear() {
  // Invalidate every thread's cached buffer pointer before freeing the
  // buffers (control-plane op: callers guarantee no thread is recording).
  generation_.fetch_add(1, std::memory_order_acq_rel);
  std::lock_guard<std::mutex> lock(mu_);
  buffers_.clear();
  epoch_ns_.store(steady_ns(), std::memory_order_relaxed);
}

std::uint64_t Tracer::now_ns() const {
  return steady_ns() - epoch_ns_.load(std::memory_order_relaxed);
}

void Tracer::ThreadBuffer::push(Event ev) {
  Chunk* c = current;
  if (c == nullptr || c->count.load(std::memory_order_relaxed) == Chunk::kEvents) {
    auto fresh = std::make_unique<Chunk>();
    c = fresh.get();
    std::lock_guard<std::mutex> lock(chunks_mu);
    chunks.push_back(std::move(fresh));
    current = c;
  }
  const std::size_t i = c->count.load(std::memory_order_relaxed);
  c->events[i] = std::move(ev);
  // Publish the slot: a collector that acquires `count` sees the event fully
  // written. The owning thread is the only writer of slots and count.
  c->count.store(i + 1, std::memory_order_release);
}

Tracer::ThreadBuffer* Tracer::this_thread_buffer() {
  struct Cache {
    ThreadBuffer* buffer = nullptr;
    std::uint64_t generation = 0;
  };
  thread_local Cache cache;
  const std::uint64_t gen = generation_.load(std::memory_order_acquire);
  if (cache.buffer == nullptr || cache.generation != gen) {
    auto fresh = std::make_unique<ThreadBuffer>();
    std::lock_guard<std::mutex> lock(mu_);
    fresh->tid = static_cast<std::uint32_t>(buffers_.size());
    cache.buffer = fresh.get();
    cache.generation = gen;
    buffers_.push_back(std::move(fresh));
  }
  return cache.buffer;
}

void Tracer::record(Event ev) {
  ThreadBuffer* buf = this_thread_buffer();
  ev.tid = buf->tid;
  buf->push(std::move(ev));
}

void Tracer::instant(Category c, const char* name, std::initializer_list<Arg> args) {
  if (!category_enabled(c)) return;
  Event ev;
  ev.name = name;
  ev.category = c;
  ev.phase = Phase::Instant;
  ev.ts_ns = now_ns();
  ev.args.assign(args.begin(), args.end());
  record(std::move(ev));
}

void Tracer::counter(Category c, const char* name, double value) {
  if (!category_enabled(c)) return;
  Event ev;
  ev.name = name;
  ev.category = c;
  ev.phase = Phase::Counter;
  ev.ts_ns = now_ns();
  ev.args.push_back(Arg("value", value));
  record(std::move(ev));
}

std::vector<Event> Tracer::collect() const {
  std::vector<Event> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& buf : buffers_) {
      std::lock_guard<std::mutex> chunk_lock(buf->chunks_mu);
      for (const auto& chunk : buf->chunks) {
        const std::size_t n = chunk->count.load(std::memory_order_acquire);
        for (std::size_t i = 0; i < n; ++i) out.push_back(chunk->events[i]);
      }
    }
  }
  std::stable_sort(out.begin(), out.end(), [](const Event& a, const Event& b) {
    if (a.ts_ns != b.ts_ns) return a.ts_ns < b.ts_ns;
    return a.tid < b.tid;
  });
  return out;
}

std::size_t Tracer::num_events() const {
  std::size_t n = 0;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& buf : buffers_) {
    std::lock_guard<std::mutex> chunk_lock(buf->chunks_mu);
    for (const auto& chunk : buf->chunks) n += chunk->count.load(std::memory_order_acquire);
  }
  return n;
}

io::Json Tracer::chrome_trace() const {
  const auto events = collect();
  io::JsonArray trace_events;
  trace_events.reserve(events.size());
  for (const auto& ev : events) {
    io::JsonObject obj{
        {"name", io::Json(ev.name)},
        {"cat", io::Json(category_name(ev.category))},
        {"ph", io::Json(std::string(1, static_cast<char>(ev.phase)))},
        // Chrome's ts/dur unit is microseconds.
        {"ts", io::Json(static_cast<double>(ev.ts_ns) / 1e3)},
        {"pid", io::Json(1)},
        {"tid", io::Json(ev.tid)},
    };
    if (ev.phase == Phase::Complete) {
      obj.emplace_back("dur", io::Json(static_cast<double>(ev.dur_ns) / 1e3));
    }
    if (ev.phase == Phase::Instant) obj.emplace_back("s", io::Json("t"));
    if (!ev.args.empty()) {
      io::JsonObject args;
      args.reserve(ev.args.size());
      for (const auto& a : ev.args) {
        if (a.is_string) {
          args.emplace_back(a.key, io::Json(a.value));
        } else if (a.value == "true" || a.value == "false") {
          args.emplace_back(a.key, io::Json(a.value == "true"));
        } else {
          args.emplace_back(a.key, io::Json(std::strtod(a.value.c_str(), nullptr)));
        }
      }
      obj.emplace_back("args", io::Json(std::move(args)));
    }
    trace_events.emplace_back(std::move(obj));
  }
  return io::Json(io::JsonObject{{"traceEvents", io::Json(std::move(trace_events))},
                                 {"displayTimeUnit", io::Json("ms")}});
}

std::vector<SpanStats> Tracer::span_stats() const {
  struct Key {
    Category category;
    std::string name;
    bool operator<(const Key& o) const {
      if (category != o.category) return category < o.category;
      return name < o.name;
    }
  };
  std::map<Key, std::vector<double>> durations;
  for (const auto& ev : collect()) {
    if (ev.phase != Phase::Complete) continue;
    durations[{ev.category, ev.name}].push_back(static_cast<double>(ev.dur_ns) / 1e6);
  }

  std::vector<SpanStats> stats;
  stats.reserve(durations.size());
  for (auto& [key, ms] : durations) {
    SpanStats s;
    s.name = key.name;
    s.category = key.category;
    s.count = ms.size();
    for (double d : ms) {
      s.total_ms += d;
      s.max_ms = std::max(s.max_ms, d);
    }
    s.p50_ms = util::percentile(ms, 0.50);
    s.p95_ms = util::percentile(ms, 0.95);
    stats.push_back(std::move(s));
  }
  std::sort(stats.begin(), stats.end(),
            [](const SpanStats& a, const SpanStats& b) { return a.total_ms > b.total_ms; });
  return stats;
}

std::string Tracer::summary() const {
  util::TextTable table("trace summary");
  table.set_header({"category", "span", "count", "total ms", "p50 ms", "p95 ms", "max ms"});
  for (const auto& s : span_stats()) {
    table.add_row({category_name(s.category), s.name, std::to_string(s.count),
                   util::TextTable::fmt(s.total_ms, 3), util::TextTable::fmt(s.p50_ms, 3),
                   util::TextTable::fmt(s.p95_ms, 3), util::TextTable::fmt(s.max_ms, 3)});
  }
  return table.to_string();
}

Span::Span(Category c, const char* name, std::initializer_list<Arg> args)
    : category_(c), name_(name) {
  auto& tracer = Tracer::instance();
  if (!tracer.category_enabled(c)) return;
  active_ = true;
  args_.assign(args.begin(), args.end());
  start_ns_ = tracer.now_ns();
}

Span::~Span() {
  if (!active_) return;
  auto& tracer = Tracer::instance();
  Event ev;
  ev.name = name_;
  ev.category = category_;
  ev.phase = Phase::Complete;
  ev.ts_ns = start_ns_;
  const std::uint64_t end = tracer.now_ns();
  ev.dur_ns = end > start_ns_ ? end - start_ns_ : 0;
  ev.args = std::move(args_);
  tracer.record(std::move(ev));
}

void Span::arg(Arg a) {
  if (active_) args_.push_back(std::move(a));
}

}  // namespace clr::trace
