#pragma once
// Memoizing evaluation cache + parallel batch evaluator for the DSE engines.
//
// Crossover and mutation re-produce identical chromosomes constantly (per-gene
// reset mutation at p = 0.03 leaves most children untouched copies of their
// parents), and the ReD stage re-seeds every secondary run from the same BaseD
// front — so a genome-keyed memo table converts a large share of the
// scheduler-bound evaluations into hash lookups.
//
// The cache is sharded (one mutex + map per shard) so parallel evaluation
// batches do not serialize on a single lock, and bounded: each shard evicts
// its oldest entries (FIFO) once it reaches capacity / kShards entries.
// Lookups compare the full gene vector, never the hash alone, so a hash
// collision degrades to a miss instead of returning a wrong evaluation.

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "moea/individual.hpp"
#include "moea/problem.hpp"

namespace clr::util {
class ThreadPool;
}

namespace clr::moea {

/// 64-bit FNV-1a over the gene words — deterministic across runs and
/// platforms (feeds the cache-key scheme documented in DESIGN.md).
std::uint64_t hash_genes(const std::vector<int>& genes);

/// Bounded, sharded, thread-safe memo table: chromosome -> payload.
/// Generic over the payload so the DSE layer can reuse it for schedule
/// results and reconfiguration costs (see MappingProblem / DesignTimeDse).
template <typename Value>
class GenomeCache {
 public:
  explicit GenomeCache(std::size_t capacity = 1 << 16) : capacity_(capacity) {
    shard_capacity_ = capacity_ / kShards;
    if (shard_capacity_ == 0) shard_capacity_ = 1;
  }

  /// Copy the cached payload for `genes` into *out. Returns false on miss.
  bool lookup(const std::vector<int>& genes, Value* out) const {
    Shard& shard = shard_for(genes);
    std::lock_guard<std::mutex> lock(shard.mu);
    const auto it = shard.map.find(genes);
    if (it == shard.map.end()) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    hits_.fetch_add(1, std::memory_order_relaxed);
    *out = it->second;
    return true;
  }

  /// Insert (or overwrite) the payload for `genes`, evicting the shard's
  /// oldest entry when it is full.
  void store(const std::vector<int>& genes, const Value& value) {
    Shard& shard = shard_for(genes);
    std::lock_guard<std::mutex> lock(shard.mu);
    const auto [it, inserted] = shard.map.try_emplace(genes, value);
    if (!inserted) {
      it->second = value;
      return;
    }
    shard.order.push_back(genes);
    while (shard.map.size() > shard_capacity_) {
      shard.map.erase(shard.order.front());
      shard.order.pop_front();
      evictions_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  std::size_t size() const {
    std::size_t total = 0;
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      total += shard.map.size();
    }
    return total;
  }

  std::size_t capacity() const { return shard_capacity_ * kShards; }

  std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  std::uint64_t evictions() const { return evictions_.load(std::memory_order_relaxed); }

  /// Fraction of lookups answered from the cache (0 when never queried).
  double hit_rate() const {
    const double total = static_cast<double>(hits() + misses());
    return total > 0.0 ? static_cast<double>(hits()) / total : 0.0;
  }

  void clear() {
    for (Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      shard.map.clear();
      shard.order.clear();
    }
  }

 private:
  struct GenesHash {
    std::size_t operator()(const std::vector<int>& g) const {
      return static_cast<std::size_t>(hash_genes(g));
    }
  };

  static constexpr std::size_t kShards = 16;

  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::vector<int>, Value, GenesHash> map;
    std::deque<std::vector<int>> order;  ///< insertion order for FIFO eviction
  };

  Shard& shard_for(const std::vector<int>& genes) const {
    // Use the high bits for shard selection; the map consumes the low bits.
    return shards_[(hash_genes(genes) >> 48) % kShards];
  }

  mutable std::array<Shard, kShards> shards_;
  std::size_t capacity_;
  std::size_t shard_capacity_;
  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
  mutable std::atomic<std::uint64_t> evictions_{0};
};

/// The chromosome -> Evaluation memo shared by the GA engines.
using EvalCache = GenomeCache<Evaluation>;

/// Execution context for the generate-then-evaluate phase of the engines:
/// an optional shared thread pool and an optional shared memo cache. Both
/// nullptr reproduce the sequential, uncached behavior.
struct EvalOptions {
  util::ThreadPool* pool = nullptr;
  EvalCache* cache = nullptr;
  /// Route misses through Problem::evaluate_batch in SoA-block-sized chunks
  /// (bit-identical to the scalar path; off = per-genome evaluate(), kept
  /// for the side-by-side throughput bench and A/B debugging).
  bool batched = true;
};

/// Evaluates a batch of individuals against a Problem: consults the cache,
/// deduplicates identical genomes within the batch, fans the remaining
/// misses out over the pool, and stores the results back. Results are
/// independent of thread count and batch order because Problem::evaluate is
/// deterministic and the batched chunking is fixed by index arithmetic.
class BatchEvaluator {
 public:
  BatchEvaluator(const Problem& problem, const EvalOptions& opts)
      : problem_(&problem), pool_(opts.pool), cache_(opts.cache), batched_(opts.batched) {}

  /// Fill ind->eval for every individual in the batch.
  void evaluate(const std::vector<Individual*>& batch) const;

 private:
  const Problem* problem_;
  util::ThreadPool* pool_;
  EvalCache* cache_;
  bool batched_;
};

}  // namespace clr::moea
