#pragma once
// Hypervolume computation for the Eq. (5) fitness (Fig. 4a) and for DSE
// quality metrics: exact 2-D and 3-D algorithms plus a Monte-Carlo estimator
// for higher dimensions.

#include <array>
#include <vector>

#include "common/rng.hpp"

namespace clr::moea {

/// Exact hypervolume (minimization) dominated by `points` relative to
/// reference `ref`. Points worse than `ref` in any dimension contribute
/// nothing. 2-D sweep algorithm.
double hypervolume_2d(std::vector<std::array<double, 2>> points, const std::array<double, 2>& ref);

/// Exact 3-D hypervolume by slicing along the third objective.
double hypervolume_3d(std::vector<std::array<double, 3>> points, const std::array<double, 3>& ref);

/// Monte-Carlo hypervolume for any dimension; `lower` bounds the sampling
/// box from below. Deterministic given the Rng state.
double hypervolume_mc(const std::vector<std::vector<double>>& points,
                      const std::vector<double>& lower, const std::vector<double>& ref,
                      std::size_t samples, util::Rng& rng);

/// Exact hypervolume of an arbitrary-dimension point set, dispatching to the
/// 2-D/3-D exact routines; throws for other dimensions.
double hypervolume(const std::vector<std::vector<double>>& points, const std::vector<double>& ref);

/// Signed per-point hypervolume fitness of Fig. 4a:
///  - feasible (all objectives <= ref): + product of (ref_k - f_k)
///  - infeasible: - sum over violated dimensions of (f_k - ref_k) * scale_k,
///    so selection pressure points back toward the feasible box.
/// `scale` normalizes heterogeneous objective units (pass 1s if unused).
double signed_point_hypervolume(const std::vector<double>& objectives,
                                const std::vector<double>& ref,
                                const std::vector<double>& scale);

}  // namespace clr::moea
