#include "moea/problem.hpp"

#include <stdexcept>

namespace clr::moea {

void Problem::evaluate_batch(std::span<Individual* const> batch) const {
  for (Individual* ind : batch) ind->eval = evaluate(ind->genes);
}

std::vector<int> Problem::random_genes(util::Rng& rng) const {
  std::vector<int> genes(num_genes());
  for (std::size_t i = 0; i < genes.size(); ++i) {
    const int dom = domain_size(i);
    if (dom <= 0) throw std::logic_error("Problem: empty gene domain");
    genes[i] = rng.uniform_int(0, dom - 1);
  }
  return genes;
}

void Problem::repair(std::vector<int>& genes) const {
  if (genes.size() != num_genes()) throw std::invalid_argument("repair: gene count mismatch");
  for (std::size_t i = 0; i < genes.size(); ++i) {
    const int dom = domain_size(i);
    int g = genes[i] % dom;
    if (g < 0) g += dom;
    genes[i] = g;
  }
}

}  // namespace clr::moea
