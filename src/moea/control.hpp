#pragma once
// Cooperative run control for the GA engines (DESIGN.md §5.12).
//
// Both HvGa and Nsga2 advance in strict generation steps: all RNG draws
// happen sequentially on the master Rng, so the engine's complete restartable
// state at a generation boundary is {population, archive, engine state,
// generation counter}. GaState captures exactly that; GaRunControl lets a
// session observe every boundary (to checkpoint), request a cooperative stop
// (the current generation always finishes), and resume from a saved state —
// the resumed run continues the RNG stream and population bit-exactly, so an
// interrupted-and-resumed run equals the uninterrupted one.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/stop.hpp"
#include "moea/individual.hpp"

namespace clr::moea {

/// Restartable GA engine state at a generation boundary.
///
/// `generations_done == 0` means the initial population has been evaluated
/// but no offspring generation has run yet. `archive` holds the archive
/// members in insertion-compatible order: re-inserting them into a fresh
/// ParetoArchive reproduces the same archive (all members are feasible,
/// mutually non-dominated and deduplicated). `rng_state` is the serialized
/// mt19937_64 stream (util::Rng::save_state).
struct GaState {
  std::uint64_t generations_done = 0;
  std::vector<Individual> population;
  std::vector<Individual> archive;
  std::string rng_state;
};

/// Optional run control for HvGa::run / Nsga2::run. Engines treat a null
/// control pointer (the default) as "run to completion, no callbacks".
struct GaRunControl {
  /// Checked at the top of every generation; when set, the engine returns
  /// the current boundary state with `complete = false` instead of starting
  /// another generation.
  util::StopToken stop;

  /// Invoked at every generation boundary — after the initial evaluation
  /// (generations_done = 0) and after each completed generation — with the
  /// full restartable state. Checkpoint cadence is the caller's business;
  /// the engine reports every boundary.
  std::function<void(const GaState&)> on_boundary;

  /// When non-null, skip initialization and continue from this boundary:
  /// the population (with evaluations/fitness) is restored verbatim, the
  /// archive is rebuilt by in-order re-insertion, the RNG stream is restored
  /// into the caller's `rng`, and the loop starts at `generations_done`.
  /// The boundary callback is not re-fired for the resumed state.
  const GaState* resume = nullptr;
};

}  // namespace clr::moea
