#include "moea/hypervolume.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>

namespace clr::moea {

double hypervolume_2d(std::vector<std::array<double, 2>> points,
                      const std::array<double, 2>& ref) {
  // Keep points strictly inside the reference box.
  std::erase_if(points, [&](const auto& p) { return p[0] >= ref[0] || p[1] >= ref[1]; });
  if (points.empty()) return 0.0;
  // Sort by first objective ascending (ties: second ascending), then build
  // the lower-left staircase of points that strictly improve the second
  // objective.
  std::sort(points.begin(), points.end());
  double hv = 0.0;
  std::vector<std::array<double, 2>> stair;
  double min_y = ref[1];
  for (const auto& p : points) {
    if (p[1] < min_y) {
      stair.push_back(p);
      min_y = p[1];
    }
  }
  // Area of the staircase region: strips between consecutive stair points.
  for (std::size_t i = 0; i < stair.size(); ++i) {
    const double next_x = (i + 1 < stair.size()) ? stair[i + 1][0] : ref[0];
    hv += (next_x - stair[i][0]) * (ref[1] - stair[i][1]);
  }
  return hv;
}

double hypervolume_3d(std::vector<std::array<double, 3>> points,
                      const std::array<double, 3>& ref) {
  std::erase_if(points,
                [&](const auto& p) { return p[0] >= ref[0] || p[1] >= ref[1] || p[2] >= ref[2]; });
  if (points.empty()) return 0.0;
  // Slice along z: sort ascending z; each slab [z_i, z_{i+1}) is the 2-D HV of
  // all points with z <= z_i.
  std::sort(points.begin(), points.end(),
            [](const auto& a, const auto& b) { return a[2] < b[2]; });
  double hv = 0.0;
  std::vector<std::array<double, 2>> active;
  for (std::size_t i = 0; i < points.size(); ++i) {
    active.push_back({points[i][0], points[i][1]});
    // Points sharing (nearly) the same z go into the same slab.
    if (i + 1 < points.size() && points[i + 1][2] == points[i][2]) continue;
    const double z_low = points[i][2];
    const double z_high = (i + 1 < points.size()) ? points[i + 1][2] : ref[2];
    hv += hypervolume_2d(active, {ref[0], ref[1]}) * (z_high - z_low);
  }
  return hv;
}

double hypervolume_mc(const std::vector<std::vector<double>>& points,
                      const std::vector<double>& lower, const std::vector<double>& ref,
                      std::size_t samples, util::Rng& rng) {
  if (points.empty() || samples == 0) return 0.0;
  const std::size_t dim = ref.size();
  if (lower.size() != dim) throw std::invalid_argument("hypervolume_mc: bound dim mismatch");
  double box = 1.0;
  for (std::size_t k = 0; k < dim; ++k) {
    if (lower[k] >= ref[k]) return 0.0;
    box *= ref[k] - lower[k];
  }
  std::size_t hits = 0;
  std::vector<double> x(dim);
  for (std::size_t s = 0; s < samples; ++s) {
    for (std::size_t k = 0; k < dim; ++k) x[k] = rng.uniform(lower[k], ref[k]);
    for (const auto& p : points) {
      bool dominated = true;
      for (std::size_t k = 0; k < dim; ++k) {
        if (p[k] > x[k]) {
          dominated = false;
          break;
        }
      }
      if (dominated) {
        ++hits;
        break;
      }
    }
  }
  return box * static_cast<double>(hits) / static_cast<double>(samples);
}

double hypervolume(const std::vector<std::vector<double>>& points,
                   const std::vector<double>& ref) {
  if (points.empty()) return 0.0;
  const std::size_t dim = ref.size();
  for (const auto& p : points) {
    if (p.size() != dim) throw std::invalid_argument("hypervolume: point dim mismatch");
  }
  if (dim == 2) {
    std::vector<std::array<double, 2>> pts;
    pts.reserve(points.size());
    for (const auto& p : points) pts.push_back({p[0], p[1]});
    return hypervolume_2d(std::move(pts), {ref[0], ref[1]});
  }
  if (dim == 3) {
    std::vector<std::array<double, 3>> pts;
    pts.reserve(points.size());
    for (const auto& p : points) pts.push_back({p[0], p[1], p[2]});
    return hypervolume_3d(std::move(pts), {ref[0], ref[1], ref[2]});
  }
  throw std::invalid_argument("hypervolume: exact computation only for 2-D/3-D");
}

double signed_point_hypervolume(const std::vector<double>& objectives,
                                const std::vector<double>& ref,
                                const std::vector<double>& scale) {
  if (objectives.size() != ref.size() || scale.size() != ref.size()) {
    throw std::invalid_argument("signed_point_hypervolume: dimension mismatch");
  }
  double penalty = 0.0;
  for (std::size_t k = 0; k < ref.size(); ++k) {
    if (objectives[k] > ref[k]) penalty += (objectives[k] - ref[k]) * scale[k];
  }
  if (penalty > 0.0) return -penalty;
  double hv = 1.0;
  for (std::size_t k = 0; k < ref.size(); ++k) hv *= (ref[k] - objectives[k]) * scale[k];
  return hv;
}

}  // namespace clr::moea
