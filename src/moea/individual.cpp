#include "moea/individual.hpp"

#include <stdexcept>

namespace clr::moea {

bool dominates(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) throw std::invalid_argument("dominates: dimension mismatch");
  bool strictly_better = false;
  for (std::size_t k = 0; k < a.size(); ++k) {
    if (a[k] > b[k]) return false;
    if (a[k] < b[k]) strictly_better = true;
  }
  return strictly_better;
}

bool constrained_dominates(const Evaluation& a, const Evaluation& b) {
  const bool fa = a.feasible();
  const bool fb = b.feasible();
  if (fa && !fb) return true;
  if (!fa && fb) return false;
  if (!fa && !fb) return a.violation < b.violation;
  return dominates(a.objectives, b.objectives);
}

}  // namespace clr::moea
