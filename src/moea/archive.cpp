#include "moea/archive.hpp"

#include <algorithm>

namespace clr::moea {

bool ParetoArchive::insert(const Individual& candidate) {
  if (!candidate.eval.feasible()) return false;
  for (const auto& m : members_) {
    if (m.genes == candidate.genes) return false;
    if (dominates(m.eval.objectives, candidate.eval.objectives)) return false;
    if (m.eval.objectives == candidate.eval.objectives) return false;  // duplicate point
  }
  std::erase_if(members_, [&](const Individual& m) {
    return dominates(candidate.eval.objectives, m.eval.objectives);
  });
  members_.push_back(candidate);
  return true;
}

bool ParetoArchive::non_dominated(const Evaluation& eval) const {
  return std::none_of(members_.begin(), members_.end(), [&](const Individual& m) {
    return dominates(m.eval.objectives, eval.objectives);
  });
}

}  // namespace clr::moea
