#include "moea/nsga2.hpp"

#include <algorithm>
#include <limits>
#include <memory>
#include <stdexcept>

#include "common/parallel.hpp"
#include "trace/trace.hpp"

namespace clr::moea {

std::vector<std::vector<std::size_t>> non_dominated_sort(std::vector<Individual>& pop) {
  const std::size_t n = pop.size();
  std::vector<std::vector<std::size_t>> dominated_by(n);
  std::vector<std::size_t> domination_count(n, 0);
  std::vector<std::vector<std::size_t>> fronts;

  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (constrained_dominates(pop[i].eval, pop[j].eval)) {
        dominated_by[i].push_back(j);
        ++domination_count[j];
      } else if (constrained_dominates(pop[j].eval, pop[i].eval)) {
        dominated_by[j].push_back(i);
        ++domination_count[i];
      }
    }
  }

  std::vector<std::size_t> current;
  for (std::size_t i = 0; i < n; ++i) {
    if (domination_count[i] == 0) {
      pop[i].rank = 0;
      current.push_back(i);
    }
  }
  while (!current.empty()) {
    fronts.push_back(current);
    std::vector<std::size_t> next;
    for (std::size_t i : current) {
      for (std::size_t j : dominated_by[i]) {
        if (--domination_count[j] == 0) {
          pop[j].rank = static_cast<int>(fronts.size());
          next.push_back(j);
        }
      }
    }
    current = std::move(next);
  }
  return fronts;
}

void assign_crowding(std::vector<Individual>& pop, const std::vector<std::size_t>& front) {
  if (front.empty()) return;
  const std::size_t m = pop[front[0]].eval.objectives.size();
  for (std::size_t i : front) pop[i].crowding = 0.0;
  if (front.size() <= 2) {
    for (std::size_t i : front) pop[i].crowding = std::numeric_limits<double>::infinity();
    return;
  }
  std::vector<std::size_t> order(front);
  for (std::size_t k = 0; k < m; ++k) {
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return pop[a].eval.objectives[k] < pop[b].eval.objectives[k];
    });
    const double lo = pop[order.front()].eval.objectives[k];
    const double hi = pop[order.back()].eval.objectives[k];
    pop[order.front()].crowding = std::numeric_limits<double>::infinity();
    pop[order.back()].crowding = std::numeric_limits<double>::infinity();
    if (hi - lo <= 0.0) continue;
    for (std::size_t i = 1; i + 1 < order.size(); ++i) {
      pop[order[i]].crowding += (pop[order[i + 1]].eval.objectives[k] -
                                 pop[order[i - 1]].eval.objectives[k]) /
                                (hi - lo);
    }
  }
}

namespace {

bool crowded_better(const Individual& a, const Individual& b) {
  if (a.rank != b.rank) return a.rank < b.rank;
  return a.crowding > b.crowding;
}

}  // namespace

MoeaResult Nsga2::run(const Problem& problem, util::Rng& rng,
                      const std::vector<std::vector<int>>& seeds,
                      const EvalOptions& opts, const GaRunControl* control) const {
  if (params_.population < 2) throw std::invalid_argument("Nsga2: population must be >= 2");

  // Private pool when the caller did not share one (a 1-thread pool runs
  // everything inline on this thread).
  std::unique_ptr<util::ThreadPool> owned_pool;
  EvalOptions eval_opts = opts;
  if (eval_opts.pool == nullptr && util::resolve_threads(params_.threads) > 1) {
    owned_pool = std::make_unique<util::ThreadPool>(params_.threads);
    eval_opts.pool = owned_pool.get();
  }
  const BatchEvaluator evaluator(problem, eval_opts);
  const auto evaluate_all = [&](std::vector<Individual>& group) {
    std::vector<Individual*> batch;
    batch.reserve(group.size());
    for (auto& ind : group) batch.push_back(&ind);
    evaluator.evaluate(batch);
  };

  MoeaResult result;
  auto& pop = result.population;
  pop.reserve(params_.population);

  // Boundary reporting: the full restartable state at a generation boundary
  // is {population (incl. rank/crowding), archive, RNG stream, generation
  // counter} — every RNG draw happens sequentially on `rng`.
  const auto report_boundary = [&](std::uint64_t generations_done) {
    if (control == nullptr || !control->on_boundary) return;
    GaState state;
    state.generations_done = generations_done;
    state.population = pop;
    state.archive = result.archive.members();
    state.rng_state = rng.save_state();
    control->on_boundary(state);
  };
  const auto stop_requested = [&] {
    return control != nullptr && control->stop.stop_requested();
  };

  std::uint64_t gen_start = 0;
  if (control != nullptr && control->resume != nullptr) {
    // Resume: rank/crowding travel inside Individual, so the restored
    // population feeds crowded-tournament selection unchanged. The archive
    // is rebuilt by in-order re-insertion (members are feasible, mutually
    // non-dominated, deduplicated).
    const GaState& saved = *control->resume;
    pop = saved.population;
    for (const auto& member : saved.archive) result.archive.insert(member);
    rng.restore_state(saved.rng_state);
    gen_start = saved.generations_done;
  } else {
    for (const auto& seed : seeds) {
      if (pop.size() >= params_.population) break;
      Individual ind;
      ind.genes = seed;
      problem.repair(ind.genes);
      pop.push_back(std::move(ind));
    }
    while (pop.size() < params_.population) {
      Individual ind;
      ind.genes = problem.random_genes(rng);
      pop.push_back(std::move(ind));
    }
    evaluate_all(pop);
    for (auto& ind : pop) result.archive.insert(ind);
    {
      auto fronts = non_dominated_sort(pop);
      for (const auto& f : fronts) assign_crowding(pop, f);
    }
    report_boundary(0);
  }

  for (std::size_t gen = gen_start; gen < params_.generations; ++gen) {
    if (stop_requested()) {
      result.complete = false;
      break;
    }
    CLR_TRACE_SPAN(gen_span, trace::Category::Dse, "nsga2.generation", {{"gen", gen}});
    // Generate phase: offspring genomes via the binary-operator pipeline —
    // every RNG draw happens here, sequentially on the master Rng.
    std::vector<Individual> offspring;
    offspring.reserve(params_.population);
    auto better = [&](std::size_t a, std::size_t b) { return crowded_better(pop[a], pop[b]); };
    while (offspring.size() < params_.population) {
      const std::size_t pa = tournament(pop.size(), params_.tournament_size, better, rng);
      const std::size_t pb = tournament(pop.size(), params_.tournament_size, better, rng);
      Individual ca, cb;
      ca.genes = pop[pa].genes;
      cb.genes = pop[pb].genes;
      uniform_crossover(ca.genes, cb.genes, params_.crossover_prob, rng);
      reset_mutation(problem, ca.genes, params_.mutation_prob, rng);
      reset_mutation(problem, cb.genes, params_.mutation_prob, rng);
      offspring.push_back(std::move(ca));
      // With an odd population the second child of the last pair is surplus:
      // drop it before evaluation (its mutation draws above keep the RNG
      // stream aligned with the even-population case).
      if (offspring.size() < params_.population) offspring.push_back(std::move(cb));
    }

    // Evaluate phase: one parallel, memoized batch per generation.
    {
      CLR_TRACE_SPAN(eval_span, trace::Category::Dse, "nsga2.eval_batch",
                     {{"gen", gen}, {"batch", offspring.size()}});
      evaluate_all(offspring);
    }
    if (eval_opts.cache != nullptr) {
      CLR_TRACE_COUNTER(trace::Category::Dse, "nsga2.eval_cache.hits",
                        static_cast<double>(eval_opts.cache->hits()));
      CLR_TRACE_COUNTER(trace::Category::Dse, "nsga2.eval_cache.misses",
                        static_cast<double>(eval_opts.cache->misses()));
    }
    for (auto& child : offspring) result.archive.insert(child);

    // Environmental selection over parents + offspring.
    std::vector<Individual> merged;
    merged.reserve(pop.size() + offspring.size());
    std::move(pop.begin(), pop.end(), std::back_inserter(merged));
    std::move(offspring.begin(), offspring.end(), std::back_inserter(merged));
    auto fronts = non_dominated_sort(merged);
    for (const auto& f : fronts) assign_crowding(merged, f);

    std::vector<Individual> next;
    next.reserve(params_.population);
    for (const auto& front : fronts) {
      if (next.size() + front.size() <= params_.population) {
        for (std::size_t i : front) next.push_back(merged[i]);
      } else {
        std::vector<std::size_t> sorted(front);
        std::sort(sorted.begin(), sorted.end(), [&](std::size_t a, std::size_t b) {
          return merged[a].crowding > merged[b].crowding;
        });
        for (std::size_t i : sorted) {
          if (next.size() >= params_.population) break;
          next.push_back(merged[i]);
        }
      }
      if (next.size() >= params_.population) break;
    }
    pop = std::move(next);
    report_boundary(static_cast<std::uint64_t>(gen) + 1);
  }

  return result;
}

}  // namespace clr::moea
