#pragma once
// Genetic operators with the paper's §5.1 parameters as defaults:
// crossover probability 0.7, mutation probability 0.03 (per gene),
// tournament selection with 5 individuals.

#include <functional>
#include <vector>

#include "common/rng.hpp"
#include "moea/problem.hpp"

namespace clr::moea {

struct GaParams {
  std::size_t population = 80;
  std::size_t generations = 100;
  double crossover_prob = 0.7;   ///< per-pair (paper §5.1)
  double mutation_prob = 0.03;   ///< per-gene reset (paper §5.1)
  std::size_t tournament_size = 5;  ///< (paper §5.1)
  /// Evaluation concurrency when the caller does not share a pool through
  /// EvalOptions: 0 = std::thread::hardware_concurrency(). Results are
  /// identical at any thread count (generate-then-evaluate contract).
  std::size_t threads = 0;
};

/// Tournament selection: draw `size` competitors, return the index of the one
/// `better(a, b)` prefers (strict "a beats b" predicate).
std::size_t tournament(std::size_t population_size, std::size_t size,
                       const std::function<bool(std::size_t, std::size_t)>& better,
                       util::Rng& rng);

/// Uniform crossover: with probability `prob` swap each gene pair with 0.5.
void uniform_crossover(std::vector<int>& a, std::vector<int>& b, double prob, util::Rng& rng);

/// Per-gene reset mutation within the problem's domains.
void reset_mutation(const Problem& problem, std::vector<int>& genes, double prob, util::Rng& rng);

}  // namespace clr::moea
