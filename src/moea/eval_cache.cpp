#include "moea/eval_cache.hpp"

#include <algorithm>

#include "common/parallel.hpp"

namespace clr::moea {

std::uint64_t hash_genes(const std::vector<int>& genes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  for (int g : genes) {
    auto word = static_cast<std::uint64_t>(static_cast<std::uint32_t>(g));
    for (int byte = 0; byte < 4; ++byte) {
      h ^= (word >> (8 * byte)) & 0xffULL;
      h *= 0x100000001b3ULL;  // FNV-1a prime
    }
  }
  return h;
}

void BatchEvaluator::evaluate(const std::vector<Individual*>& batch) const {
  // Resolve cache hits and collapse within-batch duplicates; only the first
  // occurrence of each distinct genome is evaluated.
  std::vector<Individual*> unique;
  std::vector<std::pair<Individual*, Individual*>> copies;  // (dup, source)
  unique.reserve(batch.size());
  {
    struct GenesHash {
      std::size_t operator()(const std::vector<int>& g) const {
        return static_cast<std::size_t>(hash_genes(g));
      }
    };
    std::unordered_map<std::vector<int>, Individual*, GenesHash> seen;
    seen.reserve(batch.size());
    for (Individual* ind : batch) {
      if (cache_ != nullptr && cache_->lookup(ind->genes, &ind->eval)) continue;
      const auto [it, inserted] = seen.try_emplace(ind->genes, ind);
      if (inserted) {
        unique.push_back(ind);
      } else {
        copies.emplace_back(ind, it->second);
      }
    }
  }

  // Each iteration writes only its own individual's eval — safe to fan out.
  // Batched mode hands the pool SoA-block-sized chunks so every pool task
  // amortizes one full SIMD block through Problem::evaluate_batch; the chunk
  // boundaries are fixed by index arithmetic, so block composition — and
  // with it every result bit — is identical at any thread count (the
  // sequential path evaluates the same [0,8), [8,16), ... blocks).
  constexpr std::size_t kChunk = 8;  // == sched::BatchGenomes::kLanes
  if (pool_ != nullptr) {
    if (batched_) {
      const std::size_t chunks = (unique.size() + kChunk - 1) / kChunk;
      pool_->parallel_for(chunks, [&](std::size_t c) {
        const std::size_t begin = c * kChunk;
        const std::size_t count = std::min(kChunk, unique.size() - begin);
        problem_->evaluate_batch({unique.data() + begin, count});
      });
    } else {
      pool_->parallel_for(
          unique.size(), [&](std::size_t i) { unique[i]->eval = problem_->evaluate(unique[i]->genes); });
    }
  } else if (batched_) {
    problem_->evaluate_batch({unique.data(), unique.size()});
  } else {
    for (Individual* ind : unique) ind->eval = problem_->evaluate(ind->genes);
  }

  for (auto& [dup, source] : copies) dup->eval = source->eval;
  if (cache_ != nullptr) {
    for (const Individual* ind : unique) cache_->store(ind->genes, ind->eval);
  }
}

}  // namespace clr::moea
