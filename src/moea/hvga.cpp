#include "moea/hvga.hpp"

#include <algorithm>
#include <stdexcept>

#include "moea/hypervolume.hpp"

namespace clr::moea {

double HvGa::fitness_of(const Evaluation& eval) const {
  if (eval.objectives.size() != reference_.size()) {
    throw std::invalid_argument("HvGa: objective/reference dimension mismatch");
  }
  return signed_point_hypervolume(eval.objectives, reference_, scale_);
}

HvGa::Result HvGa::run(const Problem& problem, util::Rng& rng,
                       const std::vector<std::vector<int>>& seeds) const {
  if (params_.population < 2) throw std::invalid_argument("HvGa: population must be >= 2");

  Result result;
  auto& pop = result.population;
  pop.reserve(params_.population);

  for (const auto& seed : seeds) {
    if (pop.size() >= params_.population) break;
    Individual ind;
    ind.genes = seed;
    problem.repair(ind.genes);
    pop.push_back(std::move(ind));
  }
  while (pop.size() < params_.population) {
    Individual ind;
    ind.genes = problem.random_genes(rng);
    pop.push_back(std::move(ind));
  }
  for (auto& ind : pop) {
    ind.eval = problem.evaluate(ind.genes);
    ind.fitness = fitness_of(ind.eval);
    result.archive.insert(ind);
  }

  for (std::size_t gen = 0; gen < params_.generations; ++gen) {
    auto better = [&](std::size_t a, std::size_t b) { return pop[a].fitness > pop[b].fitness; };
    std::vector<Individual> offspring;
    offspring.reserve(params_.population);
    while (offspring.size() < params_.population) {
      const std::size_t pa = tournament(pop.size(), params_.tournament_size, better, rng);
      const std::size_t pb = tournament(pop.size(), params_.tournament_size, better, rng);
      Individual ca, cb;
      ca.genes = pop[pa].genes;
      cb.genes = pop[pb].genes;
      uniform_crossover(ca.genes, cb.genes, params_.crossover_prob, rng);
      reset_mutation(problem, ca.genes, params_.mutation_prob, rng);
      reset_mutation(problem, cb.genes, params_.mutation_prob, rng);
      ca.eval = problem.evaluate(ca.genes);
      cb.eval = problem.evaluate(cb.genes);
      ca.fitness = fitness_of(ca.eval);
      cb.fitness = fitness_of(cb.eval);
      result.archive.insert(ca);
      result.archive.insert(cb);
      offspring.push_back(std::move(ca));
      if (offspring.size() < params_.population) offspring.push_back(std::move(cb));
    }

    // (mu + lambda) truncation on scalar fitness keeps the best sweepers;
    // the archive preserves diversity of the non-dominated set.
    std::vector<Individual> merged;
    merged.reserve(pop.size() + offspring.size());
    std::move(pop.begin(), pop.end(), std::back_inserter(merged));
    std::move(offspring.begin(), offspring.end(), std::back_inserter(merged));
    std::sort(merged.begin(), merged.end(),
              [](const Individual& a, const Individual& b) { return a.fitness > b.fitness; });
    merged.resize(params_.population);
    pop = std::move(merged);
  }

  result.best_fitness = pop.empty() ? 0.0 : pop.front().fitness;
  return result;
}

}  // namespace clr::moea
