#include "moea/hvga.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "common/parallel.hpp"
#include "moea/hypervolume.hpp"
#include "trace/trace.hpp"

namespace clr::moea {

double HvGa::fitness_of(const Evaluation& eval) const {
  if (eval.objectives.size() != reference_.size()) {
    throw std::invalid_argument("HvGa: objective/reference dimension mismatch");
  }
  return signed_point_hypervolume(eval.objectives, reference_, scale_);
}

HvGa::Result HvGa::run(const Problem& problem, util::Rng& rng,
                       const std::vector<std::vector<int>>& seeds,
                       const EvalOptions& opts, const GaRunControl* control) const {
  if (params_.population < 2) throw std::invalid_argument("HvGa: population must be >= 2");

  // Private pool when the caller did not share one (a 1-thread pool runs
  // everything inline on this thread).
  std::unique_ptr<util::ThreadPool> owned_pool;
  EvalOptions eval_opts = opts;
  if (eval_opts.pool == nullptr && util::resolve_threads(params_.threads) > 1) {
    owned_pool = std::make_unique<util::ThreadPool>(params_.threads);
    eval_opts.pool = owned_pool.get();
  }
  const BatchEvaluator evaluator(problem, eval_opts);
  const auto evaluate_all = [&](std::vector<Individual>& group) {
    std::vector<Individual*> batch;
    batch.reserve(group.size());
    for (auto& ind : group) batch.push_back(&ind);
    evaluator.evaluate(batch);
  };

  Result result;
  auto& pop = result.population;
  pop.reserve(params_.population);

  // Boundary reporting: the full restartable state at a generation boundary
  // is {population, archive, RNG stream, generation counter} — every RNG
  // draw happens sequentially on `rng`, so nothing else is hidden.
  const auto report_boundary = [&](std::uint64_t generations_done) {
    if (control == nullptr || !control->on_boundary) return;
    GaState state;
    state.generations_done = generations_done;
    state.population = pop;
    state.archive = result.archive.members();
    state.rng_state = rng.save_state();
    control->on_boundary(state);
  };
  const auto stop_requested = [&] {
    return control != nullptr && control->stop.stop_requested();
  };

  std::uint64_t gen_start = 0;
  if (control != nullptr && control->resume != nullptr) {
    // Resume: restore the boundary state verbatim. Re-inserting the archive
    // members in order reproduces the archive (they are feasible, mutually
    // non-dominated and deduplicated by construction). The boundary callback
    // is not re-fired for the restored state.
    const GaState& saved = *control->resume;
    pop = saved.population;
    for (const auto& member : saved.archive) result.archive.insert(member);
    rng.restore_state(saved.rng_state);
    gen_start = saved.generations_done;
  } else {
    for (const auto& seed : seeds) {
      if (pop.size() >= params_.population) break;
      Individual ind;
      ind.genes = seed;
      problem.repair(ind.genes);
      pop.push_back(std::move(ind));
    }
    while (pop.size() < params_.population) {
      Individual ind;
      ind.genes = problem.random_genes(rng);
      pop.push_back(std::move(ind));
    }
    evaluate_all(pop);
    for (auto& ind : pop) {
      ind.fitness = fitness_of(ind.eval);
      result.archive.insert(ind);
    }
    report_boundary(0);
  }

  for (std::size_t gen = gen_start; gen < params_.generations; ++gen) {
    if (stop_requested()) {
      result.complete = false;
      break;
    }
    CLR_TRACE_SPAN(gen_span, trace::Category::Dse, "hvga.generation", {{"gen", gen}});
    // Generate phase: every RNG draw (tournaments, crossover, mutation)
    // happens here, sequentially on the master Rng — the draw order is
    // independent of how the subsequent evaluations are scheduled.
    auto better = [&](std::size_t a, std::size_t b) { return pop[a].fitness > pop[b].fitness; };
    std::vector<Individual> offspring;
    offspring.reserve(params_.population);
    while (offspring.size() < params_.population) {
      const std::size_t pa = tournament(pop.size(), params_.tournament_size, better, rng);
      const std::size_t pb = tournament(pop.size(), params_.tournament_size, better, rng);
      Individual ca, cb;
      ca.genes = pop[pa].genes;
      cb.genes = pop[pb].genes;
      uniform_crossover(ca.genes, cb.genes, params_.crossover_prob, rng);
      reset_mutation(problem, ca.genes, params_.mutation_prob, rng);
      reset_mutation(problem, cb.genes, params_.mutation_prob, rng);
      offspring.push_back(std::move(ca));
      // With an odd population the second child of the last pair is surplus:
      // drop it before evaluation (its mutation draws above keep the RNG
      // stream aligned with the even-population case).
      if (offspring.size() < params_.population) offspring.push_back(std::move(cb));
    }

    // Evaluate phase: one parallel, memoized batch per generation.
    {
      CLR_TRACE_SPAN(eval_span, trace::Category::Dse, "hvga.eval_batch",
                     {{"gen", gen}, {"batch", offspring.size()}});
      evaluate_all(offspring);
    }
    if (eval_opts.cache != nullptr) {
      CLR_TRACE_COUNTER(trace::Category::Dse, "hvga.eval_cache.hits",
                        static_cast<double>(eval_opts.cache->hits()));
      CLR_TRACE_COUNTER(trace::Category::Dse, "hvga.eval_cache.misses",
                        static_cast<double>(eval_opts.cache->misses()));
    }
    for (auto& child : offspring) {
      child.fitness = fitness_of(child.eval);
      result.archive.insert(child);
    }

    // (mu + lambda) truncation on scalar fitness keeps the best sweepers;
    // the archive preserves diversity of the non-dominated set.
    std::vector<Individual> merged;
    merged.reserve(pop.size() + offspring.size());
    std::move(pop.begin(), pop.end(), std::back_inserter(merged));
    std::move(offspring.begin(), offspring.end(), std::back_inserter(merged));
    std::sort(merged.begin(), merged.end(),
              [](const Individual& a, const Individual& b) { return a.fitness > b.fitness; });
    merged.resize(params_.population);
    pop = std::move(merged);
    report_boundary(static_cast<std::uint64_t>(gen) + 1);
  }

  result.best_fitness = pop.empty() ? 0.0 : pop.front().fitness;
  return result;
}

}  // namespace clr::moea
