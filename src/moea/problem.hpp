#pragma once
// Abstract integer-chromosome multi-objective problem. The DSE layer
// implements this for the CLR-integrated mapping space of Eq. (4).

#include <cstddef>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "moea/individual.hpp"

namespace clr::moea {

class Problem {
 public:
  virtual ~Problem() = default;

  /// Number of integer genes.
  virtual std::size_t num_genes() const = 0;

  /// Domain size of gene `locus`; valid alleles are [0, domain_size).
  virtual int domain_size(std::size_t locus) const = 0;

  /// Number of (minimized) objectives.
  virtual std::size_t num_objectives() const = 0;

  /// Evaluate a chromosome. Must be deterministic.
  virtual Evaluation evaluate(const std::vector<int>& genes) const = 0;

  /// Evaluate a batch, filling ind->eval for every individual. Semantically
  /// identical to calling evaluate() per individual — the default does
  /// exactly that; problems with a vectorized kernel override it
  /// (dse::MappingProblem routes through CompiledGraph::evaluate_batch).
  /// Results must not depend on how callers partition work into batches.
  virtual void evaluate_batch(std::span<Individual* const> batch) const;

  /// Uniform-random chromosome within the domains.
  std::vector<int> random_genes(util::Rng& rng) const;

  /// Clamp/wrap out-of-domain alleles (used after seeding from foreign
  /// chromosomes).
  void repair(std::vector<int>& genes) const;
};

}  // namespace clr::moea
