#pragma once
// NSGA-II with constraint-domination — the general-purpose MOEA used for the
// ReD secondary optimization and available as an ablation alternative to the
// hypervolume-fitness GA.

#include <vector>

#include "moea/archive.hpp"
#include "moea/control.hpp"
#include "moea/eval_cache.hpp"
#include "moea/operators.hpp"
#include "moea/problem.hpp"

namespace clr::moea {

/// Fast non-dominated sort (constraint-domination). Returns fronts of
/// indices; also writes Individual::rank.
std::vector<std::vector<std::size_t>> non_dominated_sort(std::vector<Individual>& pop);

/// Crowding distance within one front (writes Individual::crowding).
void assign_crowding(std::vector<Individual>& pop, const std::vector<std::size_t>& front);

/// NSGA-II result: final population plus the feasible non-dominated archive
/// accumulated over all generations.
struct MoeaResult {
  std::vector<Individual> population;
  ParetoArchive archive;
  /// False when a cooperative stop cut the run short at a generation
  /// boundary (the state reported via GaRunControl::on_boundary resumes it).
  bool complete = true;
};

class Nsga2 {
 public:
  explicit Nsga2(GaParams params) : params_(params) {}

  /// Run the optimization. `seeds` (optional) are injected into the initial
  /// population after repair. Each generation is generate-then-evaluate: all
  /// RNG draws happen sequentially on `rng`, then the pending genomes are
  /// evaluated as one parallel batch (`opts.pool` / params().threads) with
  /// optional memoization (`opts.cache`) — results are bit-for-bit identical
  /// at any thread count. `control` (optional) adds cooperative stop,
  /// per-generation boundary callbacks and resume-from-checkpoint; see
  /// moea/control.hpp.
  MoeaResult run(const Problem& problem, util::Rng& rng,
                 const std::vector<std::vector<int>>& seeds = {},
                 const EvalOptions& opts = {},
                 const GaRunControl* control = nullptr) const;

  const GaParams& params() const { return params_; }

 private:
  GaParams params_;
};

}  // namespace clr::moea
