#pragma once
// GA individual and Pareto-dominance primitives. All objectives are
// MINIMIZED; callers negate gains (the paper maximizes R = -Japp, i.e.
// minimizes energy).

#include <vector>

namespace clr::moea {

/// Result of evaluating a chromosome.
struct Evaluation {
  /// Objective vector (minimization).
  std::vector<double> objectives;
  /// Aggregate constraint violation; 0 = feasible. Units are
  /// problem-defined but must be comparable within one problem.
  double violation = 0.0;

  bool feasible() const { return violation <= 0.0; }
};

/// Integer-coded GA individual.
struct Individual {
  std::vector<int> genes;
  Evaluation eval;
  /// Scalar fitness for hypervolume-fitness GA (higher is better).
  double fitness = 0.0;
  /// NSGA-II bookkeeping.
  int rank = 0;
  double crowding = 0.0;
};

/// True iff `a` Pareto-dominates `b` (minimization, no constraints).
bool dominates(const std::vector<double>& a, const std::vector<double>& b);

/// Constraint-domination (Deb): feasible beats infeasible; two infeasibles
/// compare by violation; two feasibles by Pareto dominance.
bool constrained_dominates(const Evaluation& a, const Evaluation& b);

}  // namespace clr::moea
