#pragma once
// Hypervolume-fitness GA — the design-time solver of Eq. (5) / Fig. 4a.
//
// Each individual's scalar fitness is its signed hypervolume relative to the
// reference point R (the QoS constraint corner): feasible points earn the
// volume they sweep toward R; infeasible points earn a negative penalty
// proportional to how far they exceed R. Maximizing the population's summed
// hypervolume pushes the population onto a spread Pareto front, which is
// accumulated in a feasible non-dominated archive (the BaseD database).

#include "moea/archive.hpp"
#include "moea/control.hpp"
#include "moea/eval_cache.hpp"
#include "moea/operators.hpp"
#include "moea/problem.hpp"

namespace clr::moea {

class HvGa {
 public:
  /// @param reference the R point of Fig. 4a, one entry per objective
  ///        (minimization; feasibility means objective <= reference).
  /// @param scale per-objective normalization (1/range); used to make the
  ///        signed hypervolume comparable across heterogeneous units.
  HvGa(GaParams params, std::vector<double> reference, std::vector<double> scale)
      : params_(params), reference_(std::move(reference)), scale_(std::move(scale)) {}

  struct Result {
    std::vector<Individual> population;
    ParetoArchive archive;
    double best_fitness = 0.0;
    /// False when a cooperative stop cut the run short at a generation
    /// boundary (the state reported via GaRunControl::on_boundary resumes it).
    bool complete = true;
  };

  /// Run the optimization. Each generation is generate-then-evaluate: all
  /// RNG draws happen sequentially on `rng`, then the pending genomes are
  /// evaluated as one parallel batch (`opts.pool` / params().threads) with
  /// optional memoization (`opts.cache`) — results are bit-for-bit identical
  /// at any thread count. `control` (optional) adds cooperative stop,
  /// per-generation boundary callbacks and resume-from-checkpoint; see
  /// moea/control.hpp.
  Result run(const Problem& problem, util::Rng& rng,
             const std::vector<std::vector<int>>& seeds = {},
             const EvalOptions& opts = {},
             const GaRunControl* control = nullptr) const;

  const GaParams& params() const { return params_; }
  const std::vector<double>& reference() const { return reference_; }

 private:
  double fitness_of(const Evaluation& eval) const;

  GaParams params_;
  std::vector<double> reference_;
  std::vector<double> scale_;
};

}  // namespace clr::moea
