#include "moea/operators.hpp"

#include <stdexcept>

namespace clr::moea {

std::size_t tournament(std::size_t population_size, std::size_t size,
                       const std::function<bool(std::size_t, std::size_t)>& better,
                       util::Rng& rng) {
  if (population_size == 0) throw std::invalid_argument("tournament: empty population");
  if (size == 0) throw std::invalid_argument("tournament: size must be >= 1");
  std::size_t champion = rng.index(population_size);
  for (std::size_t i = 1; i < size; ++i) {
    const std::size_t challenger = rng.index(population_size);
    if (better(challenger, champion)) champion = challenger;
  }
  return champion;
}

void uniform_crossover(std::vector<int>& a, std::vector<int>& b, double prob, util::Rng& rng) {
  if (a.size() != b.size()) throw std::invalid_argument("uniform_crossover: size mismatch");
  if (!rng.chance(prob)) return;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (rng.chance(0.5)) std::swap(a[i], b[i]);
  }
}

void reset_mutation(const Problem& problem, std::vector<int>& genes, double prob,
                    util::Rng& rng) {
  if (genes.size() != problem.num_genes()) {
    throw std::invalid_argument("reset_mutation: gene count mismatch");
  }
  for (std::size_t i = 0; i < genes.size(); ++i) {
    if (rng.chance(prob)) genes[i] = rng.uniform_int(0, problem.domain_size(i) - 1);
  }
}

}  // namespace clr::moea
