#pragma once
// Bounded-free Pareto archive of feasible, non-dominated individuals,
// deduplicated by chromosome. The design-time DSE's BaseD database is the
// final contents of this archive.

#include <vector>

#include "moea/individual.hpp"

namespace clr::moea {

class ParetoArchive {
 public:
  /// Insert a candidate. Returns true when it was added (i.e. feasible and
  /// not dominated by, nor identical to, an archived point). Dominated
  /// archive members are evicted.
  bool insert(const Individual& candidate);

  const std::vector<Individual>& members() const { return members_; }
  std::size_t size() const { return members_.size(); }
  bool empty() const { return members_.empty(); }
  void clear() { members_.clear(); }

  /// True iff no archive member dominates `eval` (ties allowed).
  bool non_dominated(const Evaluation& eval) const;

 private:
  std::vector<Individual> members_;
};

}  // namespace clr::moea
