#pragma once
// Minimal discrete-event simulation engine (the "Discrete Event" substrate of
// the paper's Fig. 3). Events are (time, sequence, callback) triples; ties in
// time are broken by insertion order so runs are fully deterministic.

#include <cstdint>
#include <functional>
#include <limits>
#include <queue>
#include <vector>

namespace clr::sim {

/// Deterministic event-driven executive.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedule `cb` at absolute time `when` (must be >= now()).
  /// Returns a monotonically increasing event id.
  std::uint64_t schedule(double when, Callback cb);

  /// Cancel a pending event by id; returns false when it already fired, was
  /// already cancelled, or is unknown.
  bool cancel(std::uint64_t id);

  /// Current simulation time (last fired event's time).
  double now() const { return now_; }

  /// Number of pending (non-cancelled) events.
  std::size_t pending() const { return pending_; }

  /// Fire the next event; returns false when the queue is empty.
  bool step();

  /// Run until the queue drains or `until` is passed (events strictly after
  /// `until` stay queued). Returns the number of events fired.
  std::size_t run(double until = std::numeric_limits<double>::infinity());

 private:
  enum class State : std::uint8_t { Pending, Fired, Cancelled };

  struct Entry {
    double when;
    std::uint64_t id;
    Callback cb;
    bool operator>(const Entry& other) const {
      if (when != other.when) return when > other.when;
      return id > other.id;
    }
  };

  /// Drop cancelled entries from the heap top; returns false when empty.
  bool skip_cancelled();

  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::vector<State> state_;
  double now_ = 0.0;
  std::size_t pending_ = 0;
};

}  // namespace clr::sim
