#pragma once
// Monte-Carlo fault-injection simulator: executes a CLR-integrated mapping
// event-by-event with *sampled* SEUs instead of the closed-form expectations
// of the analytical model (reliability/metrics.hpp). Each run replays the
// list-scheduling policy with actual (retry-extended) execution times, dices
// per-attempt upsets through the same masking / detection / correction /
// re-execution chain, and reports what really happened.
//
// Purpose: validation (the property tests assert that empirical per-task
// error rates, makespans and energies converge to the Table 2/3 analytical
// values) and what-if studies at fault rates where the analytical
// first-order model starts to drift.

#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "schedule/scheduler.hpp"
#include "sim/des.hpp"

namespace clr::sim {

/// Outcome of one simulated application execution.
struct RunOutcome {
  double makespan = 0.0;
  double energy = 0.0;
  /// Per-task: did the task finish with a wrong / unrecovered result?
  std::vector<bool> task_failed;
  /// Criticality-weighted success of this run (the empirical Fapp sample).
  double weighted_success = 0.0;
  /// Total re-executions (retries + checkpoint rollbacks) across tasks.
  std::size_t reexecutions = 0;
};

/// Aggregated statistics over many runs.
struct InjectionAggregate {
  util::RunningStats makespan;
  util::RunningStats energy;
  util::RunningStats weighted_success;  ///< mean() is the empirical Fapp
  std::vector<double> task_error_rate;  ///< empirical ErrProb per task
  double mean_reexecutions = 0.0;
  std::size_t runs = 0;
};

/// Event-driven stochastic executor for one application context.
class FaultInjector {
 public:
  explicit FaultInjector(const sched::EvalContext& ctx);

  /// Simulate a single application execution.
  RunOutcome run_once(const sched::Configuration& cfg, util::Rng& rng) const;

  /// Simulate `runs` executions and aggregate.
  InjectionAggregate run_many(const sched::Configuration& cfg, std::size_t runs,
                              util::Rng& rng) const;

 private:
  /// Sampled execution of one task attempt chain on its PE; returns the
  /// total busy time, consumed energy and whether the final result is wrong.
  struct AttemptResult {
    double busy_time = 0.0;
    double energy = 0.0;
    bool failed = false;
    std::size_t reexecutions = 0;
  };
  AttemptResult execute_task(tg::TaskId t, const sched::TaskAssignment& a, util::Rng& rng) const;

  const sched::EvalContext* ctx_;
};

}  // namespace clr::sim
