#include "sim/fault_injection.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "reliability/techniques.hpp"

namespace clr::sim {

FaultInjector::FaultInjector(const sched::EvalContext& ctx) : ctx_(&ctx) { ctx.check(); }

FaultInjector::AttemptResult FaultInjector::execute_task(tg::TaskId t,
                                                         const sched::TaskAssignment& a,
                                                         util::Rng& rng) const {
  const auto& impl = ctx_->impls->for_task(t).at(a.impl_index);
  const auto& pe_type = ctx_->platform->type_of(a.pe);
  const rel::ClrConfig& cfg = ctx_->clr_space->config(a.clr_index);
  // The deterministic (error-free) attempt time and power come from the same
  // analytical model, so the injector and the estimator share one truth.
  const rel::TaskMetrics metrics = ctx_->metrics.evaluate(impl, pe_type, cfg);
  const double attempt_time = metrics.min_ext;
  const double power = metrics.avg_power;

  const auto& hw = rel::hw_traits(cfg.hw);
  const auto& asw = rel::asw_traits(cfg.asw);
  const double lambda = ctx_->metrics.fault_model().lambda_seu;
  const double p_raw = 1.0 - std::exp(-lambda * attempt_time * pe_type.avf);

  // Per-attempt outcome sampling through the same masking chain as the
  // analytical model: upset -> hardware residual -> ASW correct/detect.
  enum class Outcome { Ok, Silent, Detected };
  auto sample_attempt = [&]() {
    if (!rng.chance(p_raw)) return Outcome::Ok;          // no upset
    if (!rng.chance(hw.residual)) return Outcome::Ok;    // spatially masked
    const double u = rng.uniform();
    if (u < asw.correct_coverage) return Outcome::Ok;    // corrected in place
    if (u < asw.detect_coverage) return Outcome::Detected;
    return Outcome::Silent;
  };

  AttemptResult result;
  result.busy_time = attempt_time;
  result.energy = attempt_time * power;

  Outcome outcome = sample_attempt();
  switch (cfg.ssw) {
    case rel::SswTechnique::None:
      result.failed = outcome != Outcome::Ok;
      break;

    case rel::SswTechnique::Retry: {
      // Up to k full re-executions of detected failures. A silent error is
      // invisible to the system and terminates the chain immediately.
      const int k = std::max<int>(1, cfg.ssw_param);
      int retries = 0;
      while (outcome == Outcome::Detected && retries < k) {
        ++retries;
        ++result.reexecutions;
        result.busy_time += attempt_time;
        result.energy += attempt_time * power;
        outcome = sample_attempt();
      }
      result.failed = outcome != Outcome::Ok;
      break;
    }

    case rel::SswTechnique::Checkpoint: {
      // A detected error rolls back one of k segments; a second consecutive
      // detection aborts (matching the analytical residual q^2 and expected
      // rollback time (q + q^2) * T/k).
      const int k = std::max<int>(1, cfg.ssw_param);
      const double segment = attempt_time / static_cast<double>(k);
      if (outcome == Outcome::Detected) {
        ++result.reexecutions;
        result.busy_time += segment;
        result.energy += segment * power;
        outcome = sample_attempt();
        if (outcome == Outcome::Detected) {
          ++result.reexecutions;
          result.busy_time += segment;
          result.energy += segment * power;
          result.failed = true;
          break;
        }
      }
      result.failed = outcome != Outcome::Ok;
      break;
    }
  }
  return result;
}

RunOutcome FaultInjector::run_once(const sched::Configuration& cfg, util::Rng& rng) const {
  const tg::TaskGraph& g = *ctx_->graph;
  if (cfg.size() != g.num_tasks()) {
    throw std::invalid_argument("FaultInjector: configuration size mismatch");
  }

  RunOutcome outcome;
  outcome.task_failed.assign(g.num_tasks(), false);

  // Same list-scheduling policy as the analytical estimator, with sampled
  // (retry-extended) durations instead of expectations.
  std::vector<std::size_t> pending(g.num_tasks());
  for (tg::TaskId t = 0; t < g.num_tasks(); ++t) pending[t] = g.in_edges(t).size();
  std::vector<double> finish(g.num_tasks(), 0.0);
  std::vector<double> pe_free(ctx_->platform->num_pes(), 0.0);
  std::vector<tg::TaskId> ready;
  for (tg::TaskId t = 0; t < g.num_tasks(); ++t) {
    if (pending[t] == 0) ready.push_back(t);
  }

  std::size_t done = 0;
  while (done < g.num_tasks()) {
    if (ready.empty()) throw std::logic_error("FaultInjector: cyclic graph");
    auto best = std::min_element(ready.begin(), ready.end(), [&](tg::TaskId a, tg::TaskId b) {
      if (cfg[a].priority != cfg[b].priority) return cfg[a].priority > cfg[b].priority;
      return a < b;
    });
    const tg::TaskId t = *best;
    ready.erase(best);

    double est = pe_free[cfg[t].pe];
    for (tg::EdgeId e : g.in_edges(t)) {
      const tg::Edge& edge = g.edge(e);
      const double comm =
          cfg[edge.src].pe != cfg[t].pe
              ? edge.comm_time * ctx_->platform->comm_factor(cfg[edge.src].pe, cfg[t].pe)
              : 0.0;
      est = std::max(est, finish[edge.src] + comm);
    }

    const AttemptResult exec = execute_task(t, cfg[t], rng);
    finish[t] = est + exec.busy_time;
    pe_free[cfg[t].pe] = finish[t];
    outcome.energy += exec.energy;
    outcome.task_failed[t] = exec.failed;
    outcome.reexecutions += exec.reexecutions;
    outcome.makespan = std::max(outcome.makespan, finish[t]);
    ++done;

    for (tg::EdgeId e : g.out_edges(t)) {
      const tg::TaskId dst = g.edge(e).dst;
      if (--pending[dst] == 0) ready.push_back(dst);
    }
  }

  double success = 0.0;
  for (tg::TaskId t = 0; t < g.num_tasks(); ++t) {
    if (!outcome.task_failed[t]) success += g.normalized_criticality(t);
  }
  outcome.weighted_success = success;
  return outcome;
}

InjectionAggregate FaultInjector::run_many(const sched::Configuration& cfg, std::size_t runs,
                                           util::Rng& rng) const {
  if (runs == 0) throw std::invalid_argument("FaultInjector: runs must be > 0");
  InjectionAggregate agg;
  agg.runs = runs;
  agg.task_error_rate.assign(ctx_->graph->num_tasks(), 0.0);
  double reexec_sum = 0.0;
  for (std::size_t r = 0; r < runs; ++r) {
    const RunOutcome one = run_once(cfg, rng);
    agg.makespan.add(one.makespan);
    agg.energy.add(one.energy);
    agg.weighted_success.add(one.weighted_success);
    reexec_sum += static_cast<double>(one.reexecutions);
    for (std::size_t t = 0; t < one.task_failed.size(); ++t) {
      if (one.task_failed[t]) agg.task_error_rate[t] += 1.0;
    }
  }
  for (double& rate : agg.task_error_rate) rate /= static_cast<double>(runs);
  agg.mean_reexecutions = reexec_sum / static_cast<double>(runs);
  return agg;
}

}  // namespace clr::sim
