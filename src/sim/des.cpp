#include "sim/des.hpp"

#include <stdexcept>

namespace clr::sim {

std::uint64_t EventQueue::schedule(double when, Callback cb) {
  if (when < now_) throw std::invalid_argument("EventQueue::schedule: time in the past");
  const auto id = static_cast<std::uint64_t>(state_.size());
  state_.push_back(State::Pending);
  heap_.push(Entry{when, id, std::move(cb)});
  ++pending_;
  return id;
}

bool EventQueue::cancel(std::uint64_t id) {
  if (id >= state_.size() || state_[id] != State::Pending) return false;
  state_[id] = State::Cancelled;
  --pending_;
  return true;
}

bool EventQueue::skip_cancelled() {
  while (!heap_.empty() && state_[heap_.top().id] == State::Cancelled) {
    heap_.pop();
  }
  return !heap_.empty();
}

bool EventQueue::step() {
  if (!skip_cancelled()) return false;
  Entry top = heap_.top();
  heap_.pop();
  state_[top.id] = State::Fired;
  now_ = top.when;
  --pending_;
  top.cb();
  return true;
}

std::size_t EventQueue::run(double until) {
  std::size_t fired = 0;
  while (skip_cancelled() && heap_.top().when <= until) {
    step();
    ++fired;
  }
  return fired;
}

}  // namespace clr::sim
