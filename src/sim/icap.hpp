#pragma once
// ICAP reconfiguration-port model (DESIGN.md §5.14).
//
// FPGA-style platforms reconfigure through a single internal configuration
// access port: bitstream loads serialize, and a load started speculatively
// before it is needed hides part (or all) of the reconfiguration latency —
// the Resano et al. hybrid prefetch-scheduling insight (PAPERS.md). This
// models exactly that contract:
//
//   - ONE port: staged loads are FIFO-serialized; a request issued while the
//     port is busy starts when the port frees up.
//   - stage() enqueues a speculative load of `target` with the given
//     duration.
//   - consume(target) is called when the system actually reconfigures to
//     `target`: if a staged load of that target exists, the time the port
//     already spent on it is *hidden* latency (capped by the real duration);
//     the remainder stalls the service. Any other staged load was a
//     misprediction and is cancelled (the port is needed for the real load).
//
// Purely deterministic bookkeeping — no RNG, no allocation in steady state
// (the FIFO reuses its storage).

#include <cstddef>
#include <vector>

namespace clr::sim {

class IcapPort {
 public:
  struct Consume {
    bool hit = false;      ///< a staged load of the requested target existed
    double hidden = 0.0;   ///< latency already covered by the staged load
  };

  /// Enqueue a speculative load. `duration` is the full load time; the load
  /// starts at `now` or when the port frees up, whichever is later.
  void stage(std::size_t target, double duration, double now) {
    const double start = busy_until_ > now ? busy_until_ : now;
    busy_until_ = start + duration;
    queue_.push_back(Entry{target, start, duration});
  }

  /// The system reconfigures to `target` at `now` with real load time
  /// `duration`: credit the staged progress, drop everything else.
  Consume consume(std::size_t target, double duration, double now) {
    Consume c;
    for (const Entry& e : queue_) {
      if (e.target != target) continue;
      const double elapsed = now > e.start ? now - e.start : 0.0;
      const double progress = elapsed < e.duration ? elapsed : e.duration;
      c.hit = true;
      c.hidden = progress < duration ? progress : duration;
      break;
    }
    cancel_all();
    return c;
  }

  /// Drop every staged load and free the port (mispredict / evacuation).
  void cancel_all() {
    queue_.clear();
    busy_until_ = 0.0;
  }

  bool has_staged() const { return !queue_.empty(); }
  std::size_t queued() const { return queue_.size(); }

 private:
  struct Entry {
    std::size_t target = 0;
    double start = 0.0;
    double duration = 0.0;
  };
  std::vector<Entry> queue_;
  double busy_until_ = 0.0;
};

}  // namespace clr::sim
