#include "runtime/prefetch.hpp"

#include <stdexcept>

namespace clr::rt {

PrefetchPolicy::PrefetchPolicy(AdaptationPolicy& inner, const dse::DesignDb& db,
                               const DrcMatrix& drc, PrefetchParams params)
    : inner_(&inner), db_(&db), drc_(&drc), params_(params) {
  if (db.empty()) throw std::invalid_argument("PrefetchPolicy: empty database");
  if (drc.size() != db.size()) {
    throw std::invalid_argument("PrefetchPolicy: drc size must match db size");
  }
}

Decision PrefetchPolicy::select(std::size_t current, const dse::QosSpec& spec) {
  predictor_.observe(spec);
  return inner_->select(current, spec);
}

Decision PrefetchPolicy::select_initial(std::size_t hint, const dse::QosSpec& spec) {
  predictor_.observe(spec);
  return inner_->select_initial(hint, spec);
}

Decision PrefetchPolicy::peek(std::size_t current, const dse::QosSpec& spec) {
  return inner_->peek(current, spec);
}

void PrefetchPolicy::end_episode() { inner_->end_episode(); }

void PrefetchPolicy::reset() {
  inner_->reset();
  predictor_.reset();
  port_.cancel_all();
}

void PrefetchPolicy::set_health(const flt::PlatformHealth* health) {
  AdaptationPolicy::set_health(health);
  inner_->set_health(health);
}

void PrefetchPolicy::stage_predicted(std::size_t current, double now) {
  if (predictor_.observations() < params_.min_observations) return;
  const dse::QosSpec predicted = predictor_.predict();
  // peek, not select: the speculation must not record learning state or
  // otherwise perturb the inner policy — the wrapped run stays bit-identical.
  const std::size_t target = inner_->peek(current, predicted).point;
  port_.cancel_all();
  if (target == current) return;  // predicted stay-put: nothing to load
  port_.stage(target, drc_->drc(current, target), now);
}

PrefetchPolicy::Credit PrefetchPolicy::credit_for(std::size_t target, double drc, double now) {
  Credit credit;
  credit.had_stage = port_.has_staged();
  const sim::IcapPort::Consume c = port_.consume(target, drc, now);
  credit.hit = c.hit;
  credit.hidden = c.hidden;
  return credit;
}

}  // namespace clr::rt
