#include "runtime/simulator.hpp"

#include <algorithm>
#include <limits>
#include <optional>
#include <stdexcept>

#include "runtime/prefetch.hpp"
#include "trace/trace.hpp"

namespace clr::rt {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

RuntimeStats RuntimeSimulator::run(const dse::DesignDb& db, AdaptationPolicy& policy,
                                   const QosProcess& qos, util::Rng& rng) const {
  return run(db, policy, qos, rng, nullptr);
}

RuntimeStats RuntimeSimulator::run(const dse::DesignDb& db, AdaptationPolicy& policy,
                                   const QosProcess& qos, util::Rng& rng,
                                   const flt::FaultScenario* scenario) const {
  if (db.empty()) throw std::invalid_argument("RuntimeSimulator: empty database");
  if (params_.total_cycles <= 0.0) {
    throw std::invalid_argument("RuntimeSimulator: total_cycles must be > 0");
  }

  const bool faults_on = scenario != nullptr && scenario->params.enabled();

  CLR_TRACE_SPAN(run_span, trace::Category::Runtime, "rt.run",
                 {{"points", db.size()},
                  {"cycles", params_.total_cycles},
                  {"faults", faults_on}});

  RuntimeStats stats;
  stats.total_cycles = params_.total_cycles;
  policy.reset();

  // Speculative-staging hooks are only driven when the policy is wrapped in a
  // PrefetchPolicy; otherwise every reconfiguration stalls its full dRC and
  // reconfig_stall_time degenerates to total_reconfig_cost exactly.
  auto* prefetch = dynamic_cast<PrefetchPolicy*>(&policy);

  // Fault-side state. The injector owns the dedicated fault Rng, so the QoS
  // stream (`rng`) sees the exact same draws at any fault rate — and zero
  // extra draws when faults are off.
  std::optional<flt::PlatformHealth> health;
  std::optional<flt::FaultInjector> injector;
  if (faults_on) {
    std::vector<flt::PeFaultProfile> profiles = scenario->profiles;
    if (profiles.empty()) {
      plat::PeId max_pe = 0;
      for (const auto& p : db.points()) {
        for (const auto& a : p.config.tasks) max_pe = std::max(max_pe, a.pe);
      }
      profiles = flt::uniform_profiles(static_cast<std::size_t>(max_pe) + 1);
    }
    health.emplace(db, profiles.size());
    injector.emplace(scenario->params, std::move(profiles), scenario->seed);
    policy.set_health(&*health);
  }
  // The health object dies with this frame: never leave the policy holding a
  // dangling pointer, even on an exceptional exit.
  struct HealthGuard {
    AdaptationPolicy& policy;
    ~HealthGuard() { policy.set_health(nullptr); }
  } health_guard{policy};

  // Initial placement: policy decision for the first spec, free of charge —
  // and, for learning policies, free of episode recording too (the hint
  // point was never occupied, so no dRC was actually paid).
  dse::QosSpec spec = qos.sample_spec(rng);
  std::size_t current = policy.select_initial(db.least_violating(spec), spec).point;
  bool violating = !db.point(current).feasible_for(spec);
  bool safe_mode = false;

  double now = 0.0;
  double next_event = qos.sample_gap(rng);
  double next_episode = params_.episode_cycles;
  double energy_weighted = 0.0;
  double repair_time = 0.0;
  std::size_t repairs = 0;

  const auto trace_push = [&](const EventRecord& ev) {
    if (stats.trace.size() < params_.trace_events) stats.trace.push_back(ev);
  };

  // Degraded-mode fallback chain (tentpole): called when the active point
  // died under a permanent fault, or at a QoS event while in safe mode.
  //   Tier 1 — policy's best pick among feasible points on alive PEs;
  //   Tier 2 — relaxed-QoS fallback: the pick violates the spec, but within
  //            FaultParams::qos_tolerance;
  //   Tier 3 — safe-mode sentinel: nothing acceptable (or nothing alive);
  //            downtime accrues until a later requirement is coverable.
  const auto resolve_degraded = [&](EventRecord& rec) {
    // The port is needed for any emergency load (and useless in safe mode):
    // drop whatever speculation is in flight. Evacuations never get hidden
    // latency — the predictor staged for a QoS drift, not a PE death.
    if (prefetch != nullptr) prefetch->cancel_staged();
    if (health->num_alive_points() == 0) {
      if (!safe_mode) {
        safe_mode = true;
        ++stats.num_safe_mode_entries;
        CLR_TRACE_INSTANT(trace::Category::Runtime, "rt.safe_mode",
                          {{"t", now}, {"reason", "no_alive_points"}});
      }
      violating = true;
      rec.infeasible = true;
      return;
    }
    const Decision d = policy.select(current, spec);
    const double viol = db.violation_of(d.point, spec);
    if (viol <= scenario->params.qos_tolerance) {
      ++stats.num_evacuations;
      ++stats.num_reconfigs;
      stats.total_reconfig_cost += d.drc;
      stats.reconfig_stall_time += d.drc;  // emergency loads stall in full
      stats.max_drc = std::max(stats.max_drc, d.drc);
      stats.downtime += d.drc;  // the migration is a service interruption
      repair_time += d.drc;
      ++repairs;
      CLR_TRACE_INSTANT(trace::Category::Runtime, "rt.reconfig",
                        {{"t", now},
                         {"from", current},
                         {"to", d.point},
                         {"drc", d.drc},
                         {"reason", safe_mode ? "safe_mode_exit" : "evacuation"},
                         {"qos_violation", viol}});
      current = d.point;
      safe_mode = false;
      violating = viol > 0.0;
      rec.reconfigured = true;
      rec.drc = d.drc;
      rec.infeasible = d.feasible_set_empty;
    } else {
      if (!safe_mode) {
        safe_mode = true;
        ++stats.num_safe_mode_entries;
        CLR_TRACE_INSTANT(trace::Category::Runtime, "rt.safe_mode",
                          {{"t", now}, {"reason", "qos_beyond_tolerance"}});
      }
      violating = true;
      rec.infeasible = true;
    }
  };

  while (now < params_.total_cycles) {
    const double next_fault = faults_on ? injector->next_time() : kInf;
    const double horizon =
        std::min({next_event, next_episode, params_.total_cycles, next_fault});
    if (!safe_mode) energy_weighted += db.point(current).energy * (horizon - now);
    if (violating || safe_mode) stats.qos_violation_time += horizon - now;
    if (safe_mode) stats.downtime += horizon - now;
    now = horizon;

    if (now >= params_.total_cycles) break;

    if (now == next_episode) {
      policy.end_episode();
      next_episode += params_.episode_cycles;
      if (now != next_event && now != next_fault) continue;
    }

    if (faults_on && now == next_fault) {
      const flt::FaultEvent fe = injector->pop();
      EventRecord rec{now, current, 0.0, false, false, fe.kind, false, false};
      if (fe.kind == flt::FaultKind::Transient) {
        ++stats.num_transient_faults;
        // A soft error only matters when it strikes a PE the active point is
        // actually running on; safe mode executes nothing.
        const bool hit = !safe_mode && db.uses_pe(current, fe.pe);
        bool recovered = false;
        if (hit) {
          const auto& tasks = db.point(current).config.tasks;
          std::vector<std::size_t> on_pe;
          for (std::size_t t = 0; t < tasks.size(); ++t) {
            if (tasks[t].pe == fe.pe) on_pe.push_back(t);
          }
          const auto& struck = tasks[on_pe[injector->rng().index(on_pe.size())]];
          const double p_recover =
              scenario->clr_space != nullptr
                  ? flt::recovery_probability(scenario->clr_space->config(struck.clr_index))
                  : scenario->params.fallback_coverage;
          if (injector->rng().chance(p_recover)) {
            recovered = true;
            ++stats.num_recovered_transients;
            const double latency = scenario->params.recovery_latency;
            stats.downtime += latency;
            repair_time += latency;
            ++repairs;
            // Re-execution work: the recovery window burns the active
            // point's energy rate on redone computation.
            energy_weighted +=
                scenario->params.reexec_energy_factor * db.point(current).energy * latency;
          } else {
            ++stats.num_unrecovered_failures;
          }
        }
        CLR_TRACE_INSTANT(trace::Category::Runtime, "rt.fault.transient",
                          {{"t", now},
                           {"pe", fe.pe},
                           {"hit_active_point", hit},
                           {"recovered", recovered}});
      } else {  // permanent wear-out
        ++stats.num_permanent_faults;
        health->kill_pe(fe.pe);
        CLR_TRACE_INSTANT(trace::Category::Runtime, "rt.fault.permanent",
                          {{"t", now},
                           {"pe", fe.pe},
                           {"alive_points", health->num_alive_points()},
                           {"active_point_lost", !health->point_alive(current)}});
        if (!safe_mode && !health->point_alive(current)) resolve_degraded(rec);
      }
      rec.point = current;
      rec.violation = violating || safe_mode;
      rec.safe_mode = safe_mode;
      trace_push(rec);
      if (now != next_event) continue;
    }

    // QoS-change event (requirements drift per the AR(1) process).
    spec = qos.next_spec(spec, rng);
    ++stats.num_events;
    if (safe_mode) {
      // Try to climb back out of safe mode under the new requirement.
      EventRecord rec{now, current, 0.0, false, false, flt::FaultKind::None, true, true};
      resolve_degraded(rec);
      if (rec.infeasible) ++stats.num_infeasible_events;
      CLR_TRACE_INSTANT(trace::Category::Runtime, "rt.qos_event",
                        {{"t", now},
                         {"point", current},
                         {"reconfigured", rec.reconfigured},
                         {"infeasible", rec.infeasible},
                         {"violation", violating || safe_mode}});
      rec.point = current;
      rec.violation = violating || safe_mode;
      rec.safe_mode = safe_mode;
      trace_push(rec);
    } else {
      const Decision d = policy.select(current, spec);
      if (d.feasible_set_empty) ++stats.num_infeasible_events;

      const bool reconfigured = d.point != current;
      const double drc = reconfigured ? d.drc : 0.0;
      if (reconfigured) {
        ++stats.num_reconfigs;
        stats.total_reconfig_cost += drc;
        stats.max_drc = std::max(stats.max_drc, drc);
        double stall = drc;
        if (prefetch != nullptr) {
          const PrefetchPolicy::Credit credit = prefetch->credit_for(d.point, drc, now);
          stats.prefetch_hidden_time += credit.hidden;
          stall = drc - credit.hidden;
          if (credit.hit) {
            ++stats.prefetch_hits;
          } else if (credit.had_stage) {
            ++stats.prefetch_misses;  // cancel-on-mispredict
          }
        }
        stats.reconfig_stall_time += stall;
        CLR_TRACE_INSTANT(trace::Category::Runtime, "rt.reconfig",
                          {{"t", now},
                           {"from", current},
                           {"to", d.point},
                           {"drc", drc},
                           {"reason", "qos_change"}});
      }
      current = d.point;
      violating = !db.point(current).feasible_for(spec);
      CLR_TRACE_INSTANT(trace::Category::Runtime, "rt.qos_event",
                        {{"t", now},
                         {"point", d.point},
                         {"reconfigured", reconfigured},
                         {"infeasible", d.feasible_set_empty},
                         {"violation", violating}});
      trace_push(EventRecord{now, d.point, drc, reconfigured, d.feasible_set_empty,
                             flt::FaultKind::None, violating, false});
    }
    // Speculate on the NEXT requirement while the current one is serviced.
    if (prefetch != nullptr && !safe_mode) prefetch->stage_predicted(current, now);
    next_event = now + qos.sample_gap(rng);
  }
  policy.end_episode();

  stats.avg_energy = energy_weighted / params_.total_cycles;
  stats.avg_reconfig_cost =
      stats.num_events > 0 ? stats.total_reconfig_cost / static_cast<double>(stats.num_events)
                           : 0.0;
  stats.availability =
      std::clamp(1.0 - stats.downtime / params_.total_cycles, 0.0, 1.0);
  stats.mttr = repairs > 0 ? repair_time / static_cast<double>(repairs) : 0.0;
  stats.service_availability = std::clamp(
      1.0 - (stats.downtime + stats.reconfig_stall_time) / params_.total_cycles, 0.0, 1.0);
  return stats;
}

std::string trace_to_csv(const std::vector<EventRecord>& trace) {
  std::string out = "time,point,drc,reconfigured,infeasible,fault,violation\n";
  for (const auto& ev : trace) {
    out += std::to_string(ev.time) + "," + std::to_string(ev.point) + "," +
           std::to_string(ev.drc) + "," + (ev.reconfigured ? "1" : "0") + "," +
           (ev.infeasible ? "1" : "0") + "," +
           std::to_string(static_cast<int>(ev.fault)) + "," + (ev.violation ? "1" : "0") +
           "\n";
  }
  return out;
}

std::vector<double> pretrain_aura(AuraPolicy& policy, const dse::DesignDb& db,
                                  const QosProcess& qos, double cycles_per_sweep,
                                  std::size_t sweeps, util::Rng& rng) {
  SimulationParams params;
  params.total_cycles = cycles_per_sweep;
  RuntimeSimulator sim(params);
  policy.set_learning(true);
  for (std::size_t s = 0; s < sweeps; ++s) {
    sim.run(db, policy, qos, rng);
  }
  policy.set_learning(false);
  policy.neutralize_unvisited();
  return policy.values();
}

}  // namespace clr::rt
