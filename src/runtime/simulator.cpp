#include "runtime/simulator.hpp"

#include <algorithm>
#include <stdexcept>

namespace clr::rt {

RuntimeStats RuntimeSimulator::run(const dse::DesignDb& db, AdaptationPolicy& policy,
                                   const QosProcess& qos, util::Rng& rng) const {
  if (db.empty()) throw std::invalid_argument("RuntimeSimulator: empty database");
  if (params_.total_cycles <= 0.0) {
    throw std::invalid_argument("RuntimeSimulator: total_cycles must be > 0");
  }

  RuntimeStats stats;
  stats.total_cycles = params_.total_cycles;
  policy.reset();

  // Initial placement: policy decision for the first spec, free of charge —
  // and, for learning policies, free of episode recording too (the hint
  // point was never occupied, so no dRC was actually paid).
  dse::QosSpec spec = qos.sample_spec(rng);
  std::size_t current = policy.select_initial(db.least_violating(spec), spec).point;

  double now = 0.0;
  double next_event = qos.sample_gap(rng);
  double next_episode = params_.episode_cycles;
  double energy_weighted = 0.0;

  while (now < params_.total_cycles) {
    const double horizon = std::min({next_event, next_episode, params_.total_cycles});
    energy_weighted += db.point(current).energy * (horizon - now);
    now = horizon;

    if (now >= params_.total_cycles) break;

    if (now == next_episode) {
      policy.end_episode();
      next_episode += params_.episode_cycles;
      if (now != next_event) continue;
    }

    // QoS-change event (requirements drift per the AR(1) process).
    spec = qos.next_spec(spec, rng);
    const Decision d = policy.select(current, spec);
    ++stats.num_events;
    if (d.feasible_set_empty) ++stats.num_infeasible_events;

    const bool reconfigured = d.point != current;
    const double drc = reconfigured ? d.drc : 0.0;
    if (reconfigured) {
      ++stats.num_reconfigs;
      stats.total_reconfig_cost += drc;
      stats.max_drc = std::max(stats.max_drc, drc);
    }
    if (stats.trace.size() < params_.trace_events) {
      stats.trace.push_back(EventRecord{now, d.point, drc, reconfigured, d.feasible_set_empty});
    }
    current = d.point;
    next_event = now + qos.sample_gap(rng);
  }
  policy.end_episode();

  stats.avg_energy = energy_weighted / params_.total_cycles;
  stats.avg_reconfig_cost =
      stats.num_events > 0 ? stats.total_reconfig_cost / static_cast<double>(stats.num_events)
                           : 0.0;
  return stats;
}

std::string trace_to_csv(const std::vector<EventRecord>& trace) {
  std::string out = "time,point,drc,reconfigured,infeasible\n";
  for (const auto& ev : trace) {
    out += std::to_string(ev.time) + "," + std::to_string(ev.point) + "," +
           std::to_string(ev.drc) + "," + (ev.reconfigured ? "1" : "0") + "," +
           (ev.infeasible ? "1" : "0") + "\n";
  }
  return out;
}

std::vector<double> pretrain_aura(AuraPolicy& policy, const dse::DesignDb& db,
                                  const QosProcess& qos, double cycles_per_sweep,
                                  std::size_t sweeps, util::Rng& rng) {
  SimulationParams params;
  params.total_cycles = cycles_per_sweep;
  RuntimeSimulator sim(params);
  policy.set_learning(true);
  for (std::size_t s = 0; s < sweeps; ++s) {
    sim.run(db, policy, qos, rng);
  }
  policy.set_learning(false);
  policy.neutralize_unvisited();
  return policy.values();
}

}  // namespace clr::rt
