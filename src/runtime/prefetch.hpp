#pragma once
// Predictive reconfiguration prefetching (DESIGN.md §5.14).
//
// TrendPredictor learns the QoS drift online — the AR(1) factor of
// QosProcess is learnable from the observed requirement sequence — and
// predicts the likely next requirement. PrefetchPolicy wraps any
// AdaptationPolicy: selections are forwarded untouched (the wrapper NEVER
// changes which point is picked, so every pre-existing result field is
// bit-identical with the wrapper on or off), but after each decision it asks
// the inner policy what it WOULD pick for the predicted next requirement
// (peek — side-effect free) and speculatively stages that bitstream on the
// sim::IcapPort. When the next reconfiguration matches the staged target the
// staged progress is hidden latency; a mismatch cancels the stage
// (cancel-on-mispredict). The simulator drives the staging hooks and
// accounts reconfig_stall_time / prefetch_hidden_time in RuntimeStats.
//
// Deterministic throughout: the predictor is a closed-form moment estimator,
// the port is bookkeeping — no RNG anywhere, so enabling prefetch cannot
// perturb the QoS/fault streams.

#include <cstddef>

#include "dse/design_db.hpp"
#include "runtime/drc_matrix.hpp"
#include "runtime/policy.hpp"
#include "sim/icap.hpp"

namespace clr::rt {

/// Online AR(1) estimator of one QoS dimension: running first/second moments
/// plus the lag-1 cross moment give phi_hat = cov(x_t, x_{t+1}) / var(x);
/// the one-step prediction is mean + phi_hat * (last - mean).
class TrendPredictor {
 public:
  void observe(const dse::QosSpec& spec) {
    makespan_.observe(spec.max_makespan);
    func_rel_.observe(spec.min_func_rel);
    ++observations_;
  }

  dse::QosSpec predict() const {
    dse::QosSpec spec;
    spec.max_makespan = makespan_.predict();
    spec.min_func_rel = func_rel_.predict();
    return spec;
  }

  std::size_t observations() const { return observations_; }
  double phi_makespan() const { return makespan_.phi(); }
  double phi_func_rel() const { return func_rel_.phi(); }

  void reset() {
    makespan_ = Dim{};
    func_rel_ = Dim{};
    observations_ = 0;
  }

 private:
  struct Dim {
    double sum = 0.0, sum_sq = 0.0, sum_lag = 0.0, last = 0.0;
    std::size_t n = 0;

    void observe(double x) {
      if (n > 0) sum_lag += last * x;
      sum += x;
      sum_sq += x * x;
      last = x;
      ++n;
    }
    double mean() const { return n > 0 ? sum / static_cast<double>(n) : 0.0; }
    double phi() const {
      if (n < 2) return 0.0;
      const double m = mean();
      const double var = sum_sq / static_cast<double>(n) - m * m;
      if (var <= 1e-18) return 0.0;
      const double cov = sum_lag / static_cast<double>(n - 1) - m * m;
      const double phi = cov / var;
      return phi < -0.999 ? -0.999 : (phi > 0.999 ? 0.999 : phi);
    }
    double predict() const { return n == 0 ? 0.0 : mean() + phi() * (last - mean()); }
  };

  Dim makespan_{};
  Dim func_rel_{};
  std::size_t observations_ = 0;
};

struct PrefetchParams {
  /// Observed QoS events before staging begins (the phi estimate needs a few
  /// samples; staging on noise would only burn the port).
  std::size_t min_observations = 4;
};

/// Transparent prefetching wrapper. Selection, learning and health routing
/// all forward to the inner policy; the wrapper only adds the speculative
/// staging state the simulator drives between decisions.
class PrefetchPolicy : public AdaptationPolicy {
 public:
  PrefetchPolicy(AdaptationPolicy& inner, const dse::DesignDb& db, const DrcMatrix& drc,
                 PrefetchParams params = {});

  Decision select(std::size_t current, const dse::QosSpec& spec) override;
  Decision select_initial(std::size_t hint, const dse::QosSpec& spec) override;
  Decision peek(std::size_t current, const dse::QosSpec& spec) override;
  void end_episode() override;
  void reset() override;
  void set_health(const flt::PlatformHealth* health) override;

  /// Simulator hook, after each QoS decision: predict the next requirement
  /// and stage the inner policy's pick for it (cancelling any previous
  /// stage). No-op while the predictor is warming up or when the predicted
  /// pick is the current point (nothing to load).
  void stage_predicted(std::size_t current, double now);

  /// Simulator hook, when a reconfiguration to `target` (real load time
  /// `drc`) starts at `now`: hidden-latency credit from the staged load.
  /// `had_stage` distinguishes a cold port from a misprediction.
  struct Credit {
    double hidden = 0.0;
    bool hit = false;
    bool had_stage = false;
  };
  Credit credit_for(std::size_t target, double drc, double now);

  /// Simulator hook on evacuations/safe-mode: the port is needed for the
  /// emergency load, drop any speculation.
  void cancel_staged() { port_.cancel_all(); }

  const TrendPredictor& predictor() const { return predictor_; }
  AdaptationPolicy& inner() { return *inner_; }

 private:
  AdaptationPolicy* inner_;
  const dse::DesignDb* db_;
  const DrcMatrix* drc_;
  PrefetchParams params_;
  TrendPredictor predictor_;
  sim::IcapPort port_;
};

}  // namespace clr::rt
