#pragma once
// Precomputed pairwise reconfiguration costs between all stored design
// points. The database is immutable at run-time, so dRC(i -> j) is evaluated
// once; the Monte-Carlo simulator then does O(1) lookups per candidate
// instead of re-walking both configurations on every event.

#include <vector>

#include "dse/design_db.hpp"
#include "reconfig/reconfig.hpp"

namespace clr::util {
class ThreadPool;
}

namespace clr::rt {

class DrcMatrix {
 public:
  DrcMatrix(const dse::DesignDb& db, const recfg::ReconfigModel& model);

  /// Same table, with the O(n²) ReconfigModel::drc evaluations fanned out
  /// over `pool` (row-parallel; the model is stateless-const, each row writes
  /// only its own slice). nullptr builds sequentially. Bit-for-bit identical
  /// to the sequential constructor at any thread count.
  DrcMatrix(const dse::DesignDb& db, const recfg::ReconfigModel& model, util::ThreadPool* pool);

  /// Build from an explicit row-major n x n cost table (tests, what-if
  /// analyses). Throws std::invalid_argument unless costs.size() == n*n.
  DrcMatrix(std::size_t n, std::vector<double> costs);

  /// dRC of reconfiguring from stored point `from` to stored point `to`.
  double drc(std::size_t from, std::size_t to) const { return costs_[from * n_ + to]; }

  /// dRC with dead-point invalidation: a permanent PE fault retires stored
  /// points (flt::PlatformHealth), and every table entry *into* a dead point
  /// becomes +infinity — a dead target can never win a cost comparison even
  /// if a caller forgets to filter its candidate set. Costs *from* a dead
  /// point stay valid: an evacuation still migrates the surviving task
  /// binaries. nullptr mask keeps the plain lookup.
  double drc(std::size_t from, std::size_t to, const std::vector<bool>* point_alive) const;

  /// Largest pairwise cost in the table (global normalization scale).
  double max_drc() const;

  std::size_t size() const { return n_; }

 private:
  std::size_t n_ = 0;
  std::vector<double> costs_;
};

}  // namespace clr::rt
