#include "runtime/policy.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "common/stats.hpp"
#include "faults/fault_model.hpp"
#include "moea/hypervolume.hpp"

namespace clr::rt {

const std::vector<bool>* AdaptationPolicy::alive_mask() const {
  return health_ != nullptr ? &health_->point_mask() : nullptr;
}

BaselinePolicy::BaselinePolicy(const dse::DesignDb& db, const DrcMatrix& drc)
    : db_(&db), drc_(&drc) {
  if (db.empty()) throw std::invalid_argument("BaselinePolicy: empty database");
}

Decision BaselinePolicy::select(std::size_t current, const dse::QosSpec& spec) {
  Decision d;
  const auto* mask = alive_mask();
  auto feas = db_->feasible_indices(spec, mask);
  if (feas.empty()) {
    d.feasible_set_empty = true;
    d.point = db_->least_violating(spec, mask);
  } else {
    // Best signed hypervolume w.r.t. the QoS corner in (S, -F, J) space —
    // scale by the database ranges so units are comparable.
    const auto r = db_->ranges();
    const std::vector<double> ref{spec.max_makespan, -spec.min_func_rel,
                                  r.energy_max * 1.05 + 1e-9};
    const std::vector<double> scale{
        1.0 / std::max(r.makespan_max - r.makespan_min, 1e-9),
        1.0 / std::max(r.func_rel_max - r.func_rel_min, 1e-9),
        1.0 / std::max(r.energy_max - r.energy_min, 1e-9)};
    double best_hv = -std::numeric_limits<double>::infinity();
    std::size_t best = feas.front();
    for (std::size_t i : feas) {
      const auto& p = db_->point(i);
      const double hv =
          moea::signed_point_hypervolume({p.makespan, -p.func_rel, p.energy}, ref, scale);
      if (hv > best_hv) {
        best_hv = hv;
        best = i;
      }
    }
    d.point = best;
  }
  d.drc = drc_->drc(current, d.point);
  return d;
}

UraPolicy::UraPolicy(const dse::DesignDb& db, const DrcMatrix& drc, double p_rc)
    : db_(&db), drc_(&drc), p_rc_(p_rc) {
  if (db.empty()) throw std::invalid_argument("UraPolicy: empty database");
  if (p_rc < 0.0 || p_rc > 1.0) throw std::invalid_argument("UraPolicy: pRC must be in [0,1]");
  // Database-global scales for the *learning* reward: unlike the per-event
  // FEAS normalization of Algorithm 1 (which ranks candidates), the reward
  // fed to AuRA's value updates must be stationary across events, or the
  // learned values average incomparable quantities.
  const auto r = db.ranges();
  global_energy_lo_ = r.energy_min;
  global_energy_hi_ = r.energy_max;
  global_drc_hi_ = drc.max_drc();
}

Decision UraPolicy::evaluate_and_pick(std::size_t current, const dse::QosSpec& spec,
                                      const std::vector<double>* state_values, double gamma,
                                      double guard) {
  Decision d;
  const auto* mask = alive_mask();
  auto feas = db_->feasible_indices(spec, mask);
  if (feas.empty()) {
    d.feasible_set_empty = true;
    d.point = db_->least_violating(spec, mask);
    d.drc = drc_->drc(current, d.point);
    d.reward = 0.0;  // violating spec is the worst outcome in the [0,1] scale
    return d;
  }

  // Algorithm 1 lines 5-9: estimate dRC and R per feasible point, normalize
  // within FEAS, combine by pRC. dRC normalizes against a zero floor (not
  // the FEAS minimum): staying put costs nothing and must rank strictly
  // better than the cheapest actual move, otherwise a value lookahead breaks
  // the artificial tie with paid reconfigurations.
  std::vector<double> drc(feas.size());
  std::vector<double> perf(feas.size());  // R(p) = -Japp(p)
  double drc_hi = 0.0;
  double r_lo = std::numeric_limits<double>::infinity(), r_hi = -r_lo;
  for (std::size_t k = 0; k < feas.size(); ++k) {
    const auto& p = db_->point(feas[k]);
    drc[k] = drc_->drc(current, feas[k]);
    perf[k] = -p.energy;
    drc_hi = std::max(drc_hi, drc[k]);
    r_lo = std::min(r_lo, perf[k]);
    r_hi = std::max(r_hi, perf[k]);
  }

  std::vector<double> immediate(feas.size());
  double best_imm = -std::numeric_limits<double>::infinity();
  std::size_t best_k = 0;
  for (std::size_t k = 0; k < feas.size(); ++k) {
    immediate[k] = p_rc_ * util::min_max_norm(perf[k], r_lo, r_hi) -
                   (1.0 - p_rc_) * util::min_max_norm(drc[k], 0.0, drc_hi);
    if (immediate[k] > best_imm || (immediate[k] == best_imm && feas[k] == current)) {
      best_imm = immediate[k];
      best_k = k;
    }
  }

  // Guarded value lookahead (AuRA): among candidates whose immediate RET is
  // within the guard band of the best, prefer the one with the best
  // RET + gamma * V — the learned values arbitrate otherwise-close choices
  // toward states with better long-run returns.
  if (state_values != nullptr && gamma > 0.0) {
    // guard = 0 means the lookahead arbitrates *exact* ties only — any
    // positive band, however small, would admit candidates strictly worse on
    // the immediate objective and break the γ=0/guard=0 uRA subsumption.
    const double band = std::max(guard, 0.0);
    double best_ret = -std::numeric_limits<double>::infinity();
    for (std::size_t k = 0; k < feas.size(); ++k) {
      if (immediate[k] + band < best_imm) continue;
      const double ret = immediate[k] + gamma * (*state_values)[feas[k]];
      if (ret > best_ret || (ret == best_ret && feas[k] == current)) {
        best_ret = ret;
        best_k = k;
      }
    }
  }

  d.point = feas[best_k];
  d.drc = drc[best_k];
  d.reward = global_reward(d.point, d.drc);
  return d;
}

double UraPolicy::global_reward(std::size_t point, double paid_drc) const {
  // Rewards live in [0, 1] (an affine shift of Algorithm 1's weighted sum):
  // a zero-initialized value function is then *pessimistic* about unvisited
  // states, so the agent does not pay reconfigurations just to explore them.
  const double norm_r =
      1.0 - util::min_max_norm(db_->point(point).energy, global_energy_lo_, global_energy_hi_);
  const double norm_drc = util::min_max_norm(paid_drc, 0.0, global_drc_hi_);
  return p_rc_ * norm_r + (1.0 - p_rc_) * (1.0 - norm_drc);
}

Decision UraPolicy::select(std::size_t current, const dse::QosSpec& spec) {
  return evaluate_and_pick(current, spec, nullptr, 0.0, 0.0);
}

AuraPolicy::AuraPolicy(const dse::DesignDb& db, const DrcMatrix& drc, double p_rc,
                       Params params)
    : UraPolicy(db, drc, p_rc), params_(params) {
  if (params.gamma < 0.0 || params.gamma >= 1.0) {
    throw std::invalid_argument("AuraPolicy: gamma must be in [0,1)");
  }
  if (params.alpha <= 0.0 || params.alpha > 1.0) {
    throw std::invalid_argument("AuraPolicy: alpha must be in (0,1]");
  }
  values_.assign(db.size(), params.initial_value);
  visits_.assign(db.size(), 0);
}

AuraPolicy::AuraPolicy(const dse::DesignDb& db, const DrcMatrix& drc, double p_rc)
    : AuraPolicy(db, drc, p_rc, Params{}) {}

Decision AuraPolicy::select(std::size_t current, const dse::QosSpec& spec) {
  Decision d = evaluate_and_pick(current, spec, &values_, params_.gamma, params_.guard);
  if (learning_) episode_.emplace_back(d.point, d.reward);
  return d;
}

Decision AuraPolicy::select_initial(std::size_t hint, const dse::QosSpec& spec) {
  // The t=0 placement is free: the "current" hint was never occupied, so the
  // dRC its reward would charge was never paid. Keep it out of the episode.
  return evaluate_and_pick(hint, spec, &values_, params_.gamma, params_.guard);
}

Decision AuraPolicy::peek(std::size_t current, const dse::QosSpec& spec) {
  // Speculative preview (prefetch staging): same evaluation as select(), but
  // never recorded — a mispredicted stage must not bias the value updates.
  return evaluate_and_pick(current, spec, &values_, params_.gamma, params_.guard);
}

void AuraPolicy::end_episode() {
  if (!learning_ || episode_.empty()) return;
  // Every-visit Monte-Carlo: discounted return from each step to episode end.
  double g = 0.0;
  for (auto it = episode_.rbegin(); it != episode_.rend(); ++it) {
    g = it->second + params_.gamma * g;
    double& v = values_[it->first];
    v += params_.alpha * (g - v);
    ++visits_[it->first];
  }
  episode_.clear();
}

void AuraPolicy::neutralize_unvisited() {
  double sum = 0.0;
  std::size_t visited = 0;
  for (std::size_t i = 0; i < values_.size(); ++i) {
    if (visits_[i] > 0) {
      sum += values_[i];
      ++visited;
    }
  }
  if (visited == 0) return;
  const double mean = sum / static_cast<double>(visited);
  for (std::size_t i = 0; i < values_.size(); ++i) {
    if (visits_[i] == 0) values_[i] = mean;
  }
}

void AuraPolicy::reset() { episode_.clear(); }

void AuraPolicy::set_values(std::vector<double> values) {
  if (values.size() != values_.size()) {
    throw std::invalid_argument("AuraPolicy::set_values: size mismatch");
  }
  values_ = std::move(values);
}

}  // namespace clr::rt
