#include "runtime/mdp.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

namespace clr::rt {

namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

/// Bellman backup of one state: max over allowed actions of
/// R(s,a) + gamma * E[V(s')]. Returns the best action through `best_action`.
double backup(const Mdp& mdp, const std::vector<double>& value, double gamma, std::size_t s,
              std::uint32_t& best_action) {
  double best = kNegInf;
  std::uint32_t arg = 0;
  for (std::size_t a = 0; a < mdp.num_actions; ++a) {
    if (!mdp.action_allowed(s, a)) continue;
    double expected = 0.0;
    for (const auto& [next, prob] : mdp.row(s, a)) expected += prob * value[next];
    const double q = mdp.reward[s * mdp.num_actions + a] + gamma * expected;
    if (q > best) {
      best = q;
      arg = static_cast<std::uint32_t>(a);
    }
  }
  best_action = arg;
  return best;
}

}  // namespace

void Mdp::validate() const {
  if (num_states == 0 || num_actions == 0) {
    throw std::invalid_argument("Mdp: num_states and num_actions must be > 0");
  }
  const std::size_t sa = num_states * num_actions;
  if (row_of.size() != sa) throw std::invalid_argument("Mdp: row_of size mismatch");
  if (reward.size() != sa) throw std::invalid_argument("Mdp: reward size mismatch");
  if (!allowed.empty() && allowed.size() != sa) {
    throw std::invalid_argument("Mdp: allowed size mismatch");
  }
  for (std::uint32_t r : row_of) {
    if (r >= rows.size()) throw std::invalid_argument("Mdp: row id out of range");
  }
  for (const MdpRow& row : rows) {
    double sum = 0.0;
    for (const auto& [next, prob] : row) {
      if (next >= num_states) throw std::invalid_argument("Mdp: next state out of range");
      if (prob < 0.0) throw std::invalid_argument("Mdp: negative transition probability");
      sum += prob;
    }
    if (std::abs(sum - 1.0) > 1e-9) {
      throw std::invalid_argument("Mdp: transition row sums to " + std::to_string(sum) +
                                  ", expected 1");
    }
  }
  if (!allowed.empty()) {
    for (std::size_t s = 0; s < num_states; ++s) {
      bool any = false;
      for (std::size_t a = 0; a < num_actions && !any; ++a) any = action_allowed(s, a);
      if (!any) {
        throw std::invalid_argument("Mdp: state " + std::to_string(s) +
                                    " has no allowed action");
      }
    }
  }
}

MdpSolution solve_value_iteration(const Mdp& mdp, const ValueIterationOptions& opts) {
  if (opts.gamma < 0.0 || opts.gamma >= 1.0) {
    throw std::invalid_argument("solve_value_iteration: gamma must be in [0,1)");
  }
  MdpSolution sol;
  sol.value.assign(mdp.num_states, 0.0);
  sol.policy.assign(mdp.num_states, 0);

  for (std::size_t sweep = 0; sweep < opts.max_sweeps; ++sweep) {
    double residual = 0.0;
    // Gauss-Seidel: V(s) updated in place; later states of the same sweep
    // read the fresh values, which only accelerates the contraction (the
    // fixed point is the same — proven sweep-order-independent by the oracle
    // suite).
    if (opts.order == SweepOrder::Forward) {
      for (std::size_t s = 0; s < mdp.num_states; ++s) {
        std::uint32_t a = 0;
        const double v = backup(mdp, sol.value, opts.gamma, s, a);
        residual = std::max(residual, std::abs(v - sol.value[s]));
        sol.value[s] = v;
      }
    } else {
      for (std::size_t s = mdp.num_states; s-- > 0;) {
        std::uint32_t a = 0;
        const double v = backup(mdp, sol.value, opts.gamma, s, a);
        residual = std::max(residual, std::abs(v - sol.value[s]));
        sol.value[s] = v;
      }
    }
    sol.iterations = sweep + 1;
    sol.residual = residual;
    if (residual <= opts.tolerance) {
      sol.converged = true;
      break;
    }
  }

  // Greedy policy of the final value function (one more consistent pass so
  // the reported policy matches `value` regardless of sweep order).
  for (std::size_t s = 0; s < mdp.num_states; ++s) {
    backup(mdp, sol.value, opts.gamma, s, sol.policy[s]);
  }
  return sol;
}

std::vector<double> evaluate_stationary_policy(const Mdp& mdp,
                                               std::span<const std::uint32_t> policy,
                                               double gamma) {
  const std::size_t n = mdp.num_states;
  if (policy.size() != n) {
    throw std::invalid_argument("evaluate_stationary_policy: policy size mismatch");
  }
  // Dense system A V = b with A = I - gamma * P_pi, b = R_pi.
  std::vector<double> a(n * n, 0.0);
  std::vector<double> b(n, 0.0);
  for (std::size_t s = 0; s < n; ++s) {
    a[s * n + s] = 1.0;
    const std::size_t act = policy[s];
    if (act >= mdp.num_actions || !mdp.action_allowed(s, act)) {
      throw std::invalid_argument("evaluate_stationary_policy: disallowed action");
    }
    for (const auto& [next, prob] : mdp.row(s, act)) a[s * n + next] -= gamma * prob;
    b[s] = mdp.reward[s * mdp.num_actions + act];
  }
  // Partial-pivot Gaussian elimination. A is strictly diagonally dominant for
  // gamma < 1, so the system is always solvable; pivoting keeps it stable.
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::abs(a[r * n + col]) > std::abs(a[pivot * n + col])) pivot = r;
    }
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) std::swap(a[col * n + c], a[pivot * n + c]);
      std::swap(b[col], b[pivot]);
    }
    const double diag = a[col * n + col];
    if (diag == 0.0) {
      throw std::runtime_error("evaluate_stationary_policy: singular system");
    }
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = a[r * n + col] / diag;
      if (factor == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) a[r * n + c] -= factor * a[col * n + c];
      b[r] -= factor * b[col];
    }
  }
  std::vector<double> v(n, 0.0);
  for (std::size_t row = n; row-- > 0;) {
    double sum = b[row];
    for (std::size_t c = row + 1; c < n; ++c) sum -= a[row * n + c] * v[c];
    v[row] = sum / a[row * n + row];
  }
  return v;
}

MdpSolution solve_policy_iteration(const Mdp& mdp, double gamma, std::size_t max_rounds) {
  if (gamma < 0.0 || gamma >= 1.0) {
    throw std::invalid_argument("solve_policy_iteration: gamma must be in [0,1)");
  }
  MdpSolution sol;
  sol.policy.assign(mdp.num_states, 0);
  // Start from the first allowed action of every state.
  for (std::size_t s = 0; s < mdp.num_states; ++s) {
    for (std::size_t a = 0; a < mdp.num_actions; ++a) {
      if (mdp.action_allowed(s, a)) {
        sol.policy[s] = static_cast<std::uint32_t>(a);
        break;
      }
    }
  }
  for (std::size_t round = 0; round < max_rounds; ++round) {
    sol.value = evaluate_stationary_policy(mdp, sol.policy, gamma);
    sol.iterations = round + 1;
    bool stable = true;
    double residual = 0.0;
    for (std::size_t s = 0; s < mdp.num_states; ++s) {
      std::uint32_t best = 0;
      const double v = backup(mdp, sol.value, gamma, s, best);
      residual = std::max(residual, std::abs(v - sol.value[s]));
      if (best != sol.policy[s]) {
        // Accept strictly-improving switches only: ties keep the incumbent,
        // or PI can cycle between equal-value policies forever.
        double incumbent = 0.0;
        for (const auto& [next, prob] : mdp.row(s, sol.policy[s])) {
          incumbent += prob * sol.value[next];
        }
        incumbent = mdp.reward[s * mdp.num_actions + sol.policy[s]] + gamma * incumbent;
        if (v > incumbent) {
          sol.policy[s] = best;
          stable = false;
        }
      }
    }
    sol.residual = residual;
    if (stable) {
      sol.converged = true;
      break;
    }
  }
  return sol;
}

FiniteHorizonSolution solve_finite_horizon(const Mdp& mdp, std::size_t horizon, double gamma) {
  FiniteHorizonSolution sol;
  sol.value.assign(mdp.num_states, 0.0);
  sol.policy.assign(horizon, std::vector<std::uint32_t>(mdp.num_states, 0));
  // Backward induction: V_H = 0, V_t(s) = max_a R(s,a) + gamma * E[V_{t+1}].
  for (std::size_t t = horizon; t-- > 0;) {
    std::vector<double> v_next = sol.value;
    for (std::size_t s = 0; s < mdp.num_states; ++s) {
      sol.value[s] = backup(mdp, v_next, gamma, s, sol.policy[t][s]);
    }
  }
  return sol;
}

double evaluate_finite_horizon_policy(const Mdp& mdp,
                                      const std::vector<std::vector<std::uint32_t>>& policy,
                                      std::span<const double> initial, double gamma) {
  if (initial.size() != mdp.num_states) {
    throw std::invalid_argument("evaluate_finite_horizon_policy: initial size mismatch");
  }
  std::vector<double> dist(initial.begin(), initial.end());
  std::vector<double> next(mdp.num_states, 0.0);
  double total = 0.0;
  double discount = 1.0;
  for (const auto& step : policy) {
    if (step.size() != mdp.num_states) {
      throw std::invalid_argument("evaluate_finite_horizon_policy: step size mismatch");
    }
    std::fill(next.begin(), next.end(), 0.0);
    for (std::size_t s = 0; s < mdp.num_states; ++s) {
      if (dist[s] == 0.0) continue;
      const std::size_t a = step[s];
      if (a >= mdp.num_actions || !mdp.action_allowed(s, a)) {
        throw std::invalid_argument("evaluate_finite_horizon_policy: disallowed action");
      }
      total += discount * dist[s] * mdp.reward[s * mdp.num_actions + a];
      for (const auto& [n, prob] : mdp.row(s, a)) next[n] += dist[s] * prob;
    }
    dist.swap(next);
    discount *= gamma;
  }
  return total;
}

}  // namespace clr::rt
