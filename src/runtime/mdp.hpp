#pragma once
// Generic finite Markov decision process and exact solvers (DESIGN.md §5.14).
//
// The stored-design-point selection problem is a proper MDP (the bi-objective
// MDP redundancy-allocation line of work, PAPERS.md): states are (QoS bin,
// active point) pairs, actions are reconfiguration targets, transitions come
// from the AR(1) QoS drift, rewards from the uRA objective. This header keeps
// the *abstract* MDP machinery separate from that binding (mdp_policy.hpp) so
// the solvers can be proven optimal against exhaustive small-instance oracles
// (tests/runtime/test_mdp_oracle.cpp) independent of any QoS semantics.
//
// Transition rows are stored sparsely and shared via `row_of`: the QoS-bin
// kernel's next-state distribution depends only on (bin, action), so the S×A
// table points into B×A distinct rows instead of materializing a dense
// S×A×S tensor (which would not fit for production-sized databases).
//
// All solvers are deterministic: no RNG, fixed sweep orders, and the sweep
// order is a caller-visible knob precisely so tests can prove the fixed point
// does not depend on it.

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace clr::rt {

/// Sparse next-state distribution: (state, probability) pairs. Probabilities
/// must be >= 0 and sum to 1 (validate() enforces a 1e-9 tolerance).
using MdpRow = std::vector<std::pair<std::uint32_t, double>>;

/// A finite MDP with shared sparse transition rows.
struct Mdp {
  std::size_t num_states = 0;
  std::size_t num_actions = 0;
  /// Row id per (s, a), row-major (s * num_actions + a), into `rows`.
  std::vector<std::uint32_t> row_of;
  /// Distinct next-state distributions.
  std::vector<MdpRow> rows;
  /// Immediate reward per (s, a), row-major.
  std::vector<double> reward;
  /// Optional action mask per (s, a) (empty = every action allowed). Every
  /// state must keep at least one allowed action.
  std::vector<std::uint8_t> allowed;

  bool action_allowed(std::size_t s, std::size_t a) const {
    return allowed.empty() || allowed[s * num_actions + a] != 0;
  }
  const MdpRow& row(std::size_t s, std::size_t a) const {
    return rows[row_of[s * num_actions + a]];
  }

  /// Structural check: sizes consistent, rows stochastic, row ids in range,
  /// at least one allowed action per state. Throws std::invalid_argument.
  void validate() const;
};

/// Gauss-Seidel sweep direction for in-place value iteration.
enum class SweepOrder { Forward, Reverse };

struct ValueIterationOptions {
  double gamma = 0.9;          ///< discount factor in [0, 1)
  double tolerance = 1e-12;    ///< max per-sweep value change to accept
  std::size_t max_sweeps = 100000;
  SweepOrder order = SweepOrder::Forward;
};

/// Solver outcome: greedy policy, value function and convergence telemetry.
struct MdpSolution {
  std::vector<std::uint32_t> policy;
  std::vector<double> value;
  std::size_t iterations = 0;
  /// Final Bellman residual max_s |V(s) - (TV)(s)|.
  double residual = 0.0;
  bool converged = false;
};

/// In-place (Gauss-Seidel) value iteration: sweeps update V(s) immediately so
/// later states in the same sweep see the fresh values — typically converging
/// in fewer sweeps than Jacobi iteration. The returned policy is the greedy
/// policy of the final value function.
MdpSolution solve_value_iteration(const Mdp& mdp, const ValueIterationOptions& opts);

/// Howard policy iteration: exact policy evaluation (dense linear solve) +
/// greedy improvement until the policy is stable. The fallback for kernels
/// where value iteration's contraction is slow (gamma close to 1).
MdpSolution solve_policy_iteration(const Mdp& mdp, double gamma,
                                   std::size_t max_rounds = 1000);

/// Exact expected discounted return of a stationary deterministic policy:
/// solves (I - gamma * P_pi) V = R_pi by partial-pivot Gaussian elimination.
/// This is the oracle-grade evaluation the exhaustive enumeration tests use.
std::vector<double> evaluate_stationary_policy(const Mdp& mdp,
                                               std::span<const std::uint32_t> policy,
                                               double gamma);

/// Finite-horizon solution by backward induction: policy[t][s] is the action
/// at step t (t = 0 first), value[s] the optimal expected return over
/// `horizon` steps starting in s.
struct FiniteHorizonSolution {
  std::vector<std::vector<std::uint32_t>> policy;
  std::vector<double> value;
};
FiniteHorizonSolution solve_finite_horizon(const Mdp& mdp, std::size_t horizon,
                                           double gamma = 1.0);

/// Exact expected return of an arbitrary (possibly non-stationary) policy
/// over policy.size() steps, starting from the distribution `initial`
/// (size num_states, sums to 1). Forward propagation of the full state
/// distribution — every enumerated candidate AND the solver's policy are
/// scored by this same routine, so "attains the optimum exactly" is a
/// bit-exact comparison, not a tolerance check.
double evaluate_finite_horizon_policy(const Mdp& mdp,
                                      const std::vector<std::vector<std::uint32_t>>& policy,
                                      std::span<const double> initial, double gamma = 1.0);

}  // namespace clr::rt
