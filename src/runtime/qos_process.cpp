#include "runtime/qos_process.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace clr::rt {

namespace {
util::BivariateGaussian make_dist(const dse::MetricRanges& r, const QosProcessParams& p) {
  const double s_range = std::max(r.makespan_max - r.makespan_min, 1e-9);
  const double f_range = std::max(r.func_rel_max - r.func_rel_min, 1e-9);
  return util::BivariateGaussian(
      r.makespan_min + p.makespan_mean_frac * s_range, r.func_rel_min + p.func_rel_mean_frac * f_range,
      std::max(p.makespan_sd_frac * s_range, 1e-12), std::max(p.func_rel_sd_frac * f_range, 1e-12),
      p.rho);
}
}  // namespace

QosProcess::QosProcess(const dse::MetricRanges& ranges, QosProcessParams params)
    : ranges_(ranges), params_(params), dist_(make_dist(ranges, params)) {
  if (params.mean_event_gap <= 0.0) {
    throw std::invalid_argument("QosProcess: mean_event_gap must be > 0");
  }
}

dse::QosSpec QosProcess::sample_spec(util::Rng& rng) const {
  const auto [s, f] = dist_.sample(rng);
  dse::QosSpec spec;
  spec.max_makespan = std::clamp(s, ranges_.makespan_min, ranges_.makespan_max);
  spec.min_func_rel = std::clamp(f, ranges_.func_rel_min, ranges_.func_rel_max);
  return spec;
}

dse::QosSpec QosProcess::next_spec(const dse::QosSpec& prev, util::Rng& rng) const {
  const double phi = params_.ar1_phi;
  if (phi == 0.0) return sample_spec(rng);
  const auto [s_inn, f_inn] = dist_.sample(rng);
  const double scale = std::sqrt(std::max(0.0, 1.0 - phi * phi));
  const double s = dist_.mean_x() + phi * (prev.max_makespan - dist_.mean_x()) +
                   scale * (s_inn - dist_.mean_x());
  const double f = dist_.mean_y() + phi * (prev.min_func_rel - dist_.mean_y()) +
                   scale * (f_inn - dist_.mean_y());
  dse::QosSpec spec;
  spec.max_makespan = std::clamp(s, ranges_.makespan_min, ranges_.makespan_max);
  spec.min_func_rel = std::clamp(f, ranges_.func_rel_min, ranges_.func_rel_max);
  return spec;
}

double QosProcess::sample_gap(util::Rng& rng) const {
  return rng.exponential_mean(params_.mean_event_gap);
}

}  // namespace clr::rt
