#pragma once
// Run-time adaptation policies (paper §4.3):
//
//  - BaselinePolicy: the [11]-style purely performance-oriented selection —
//    on every event it moves to the feasible point with the best signed
//    hypervolume w.r.t. the new QoS corner, regardless of reconfiguration
//    cost (the behaviour BaseD exhibits in Fig. 6).
//  - UraPolicy: user-modulated run-time adaptation, Algorithm 1 —
//    RET(p) = pRC * norm(R(p)) - (1 - pRC) * norm(dRC(p)) over the feasible
//    stored points, normalized within the feasible set.
//  - AuraPolicy: agent-based uRA (§4.3.2) — every stored design point is an
//    RL state; selection adds a one-step lookahead of the learned state value
//    (gamma * V(p)), and values are updated by every-visit Monte-Carlo
//    returns over fixed-length episodes. gamma = 0 recovers uRA exactly.
//    Prior knowledge is injected by pre-training V with an offline
//    Monte-Carlo simulation of the same fixed policy (see RuntimeSimulator).

#include <vector>

#include "dse/design_db.hpp"
#include "runtime/drc_matrix.hpp"

namespace clr::flt {
class PlatformHealth;
}

namespace clr::rt {

/// Outcome of one policy decision.
struct Decision {
  std::size_t point = 0;        ///< selected database index
  bool feasible_set_empty = false;  ///< no stored point satisfied the spec
  double drc = 0.0;             ///< reconfiguration cost from the current point
  double reward = 0.0;          ///< normalized immediate return (uRA's RET term)
};

/// Common interface: select the next stored design point for a new QoS spec.
class AdaptationPolicy {
 public:
  virtual ~AdaptationPolicy() = default;

  /// Pick the next point given the current one and the new requirement.
  virtual Decision select(std::size_t current, const dse::QosSpec& spec) = 0;

  /// Pick the initial point before the simulation starts (t = 0). `hint` is
  /// only a starting suggestion, never a point the system occupied — no dRC
  /// is paid — so learning policies must not record this decision into their
  /// episode (the reward would charge a cost from a state never visited).
  /// Defaults to the regular selection for memoryless policies.
  virtual Decision select_initial(std::size_t hint, const dse::QosSpec& spec) {
    return select(hint, spec);
  }

  /// Side-effect-free preview of select(): the point the policy WOULD pick
  /// for `spec` from `current`. Never records learning state — the prefetch
  /// wrapper uses this to stage a *predicted* requirement's target without
  /// perturbing the policy. Memoryless policies default to select(); learning
  /// policies must override with their episode-free evaluation.
  virtual Decision peek(std::size_t current, const dse::QosSpec& spec) {
    return select(current, spec);
  }

  /// Episode boundary notification (learning policies update values here).
  virtual void end_episode() {}

  /// Reset transient state between simulation runs (learned values persist).
  virtual void reset() {}

  /// Attach (or detach, with nullptr) the platform-health state of the
  /// current run. While attached, every selection is restricted to stored
  /// points whose PEs are all alive — the feasible set shrinks as permanent
  /// faults retire PEs. The simulator owns the health object; it attaches it
  /// at run start and detaches it before returning. Virtual so wrappers
  /// (PrefetchPolicy) can forward the attachment to their inner policy.
  virtual void set_health(const flt::PlatformHealth* health) { health_ = health; }
  const flt::PlatformHealth* health() const { return health_; }

 protected:
  /// Alive-mask over stored points, nullptr when no health is attached (the
  /// fault-free fast path: feasibility checks skip the mask entirely).
  const std::vector<bool>* alive_mask() const;

 private:
  const flt::PlatformHealth* health_ = nullptr;
};

/// Performance-oriented baseline: best signed hypervolume w.r.t. the QoS
/// corner on every event (reconfiguration-cost-blind).
class BaselinePolicy : public AdaptationPolicy {
 public:
  BaselinePolicy(const dse::DesignDb& db, const DrcMatrix& drc);
  Decision select(std::size_t current, const dse::QosSpec& spec) override;

 private:
  const dse::DesignDb* db_;
  const DrcMatrix* drc_;
};

/// Algorithm 1. pRC = 1 maximizes performance (energy reduction); pRC = 0
/// minimizes reconfiguration cost (stay put whenever feasible).
class UraPolicy : public AdaptationPolicy {
 public:
  UraPolicy(const dse::DesignDb& db, const DrcMatrix& drc, double p_rc);
  Decision select(std::size_t current, const dse::QosSpec& spec) override;

  double p_rc() const { return p_rc_; }

 protected:
  /// Shared evaluation core: returns RET per feasible point (plus lookahead
  /// hook used by AuRA). Handles the empty-feasible-set fallback.
  Decision evaluate_and_pick(std::size_t current, const dse::QosSpec& spec,
                             const std::vector<double>* state_values, double gamma,
                             double guard);

  /// Stationary (database-global) reward for the RL value updates:
  /// pRC * normR(point) - (1 - pRC) * norm(dRC paid), normalized over the
  /// whole database / cost table.
  double global_reward(std::size_t point, double paid_drc) const;

  const dse::DesignDb* db_;
  const DrcMatrix* drc_;
  double p_rc_;
  double global_energy_lo_ = 0.0;
  double global_energy_hi_ = 0.0;
  double global_drc_hi_ = 0.0;
};

/// AuRA (§4.3.2): uRA with learned state-value lookahead.
class AuraPolicy : public UraPolicy {
 public:
  struct Params {
    double gamma = 0.5;   ///< discount factor (0 => uRA)
    double alpha = 0.05;  ///< value-function learning rate
    /// Guard band: the value lookahead only arbitrates among candidates
    /// whose immediate RET is within `guard` of the best immediate RET.
    /// 0 (default) restricts the lookahead to exact ties — the agent then
    /// can never do worse than uRA on the immediate objective and uses its
    /// learned values to resolve cost ties (e.g. between several free
    /// CLR-only reconfiguration targets). Larger values trade bounded
    /// immediate loss for speculative long-run gain.
    double guard = 0.0;
    /// Initial value for every state (uniform prior of the purely online
    /// agent; replaced by Monte-Carlo pre-training when prior knowledge is
    /// available).
    double initial_value = 0.0;
  };

  AuraPolicy(const dse::DesignDb& db, const DrcMatrix& drc, double p_rc, Params params);
  /// Defaults: gamma 0.5, alpha 0.05, guard 0 (exact ties), zero-valued prior.
  AuraPolicy(const dse::DesignDb& db, const DrcMatrix& drc, double p_rc);

  Decision select(std::size_t current, const dse::QosSpec& spec) override;
  /// Same selection as select(), but never recorded into the episode: the
  /// free initial placement must not bias the value updates.
  Decision select_initial(std::size_t hint, const dse::QosSpec& spec) override;
  /// Episode-free evaluation (speculative previews must not enter learning).
  Decision peek(std::size_t current, const dse::QosSpec& spec) override;
  void end_episode() override;
  void reset() override;

  const std::vector<double>& values() const { return values_; }
  void set_values(std::vector<double> values);
  const Params& rl_params() const { return params_; }

  /// Number of value updates each state has received.
  const std::vector<std::size_t>& visit_counts() const { return visits_; }

  /// Give states never visited during (pre-)training the mean value of the
  /// visited ones. Without this, an arbitrary initial value acts as a strong
  /// optimism/pessimism bias relative to the learned values and distorts the
  /// ranking (argmax only cares about value *differences*).
  void neutralize_unvisited();

  /// Freeze learning (used after offline pre-training when evaluating).
  void set_learning(bool enabled) { learning_ = enabled; }

 private:
  Params params_;
  std::vector<double> values_;
  std::vector<std::size_t> visits_;
  bool learning_ = true;
  /// (state, reward) trajectory of the current episode.
  std::vector<std::pair<std::size_t, double>> episode_;
};

}  // namespace clr::rt
