#include "runtime/mdp_policy.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "common/stats.hpp"
#include "runtime/mdp.hpp"

namespace clr::rt {

namespace {

/// Standard normal CDF.
double norm_cdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

/// Per-dimension AR(1) bin-transition matrix (n × n, row-major): from the
/// center of bin i, next = mean + phi * (center - mean) + N(0, (1-phi²)·sd²),
/// integrated over the bin edges. The first/last bins absorb the tails —
/// exactly where QosProcess's clamping parks out-of-box draws.
std::vector<double> bin_kernel(std::size_t n, double lo, double hi, double mean, double sd,
                               double phi) {
  std::vector<double> t(n * n, 0.0);
  const double width = (hi - lo) / static_cast<double>(n);
  const double step_sd = std::max(sd * std::sqrt(std::max(0.0, 1.0 - phi * phi)), 1e-12);
  for (std::size_t i = 0; i < n; ++i) {
    const double center = lo + (static_cast<double>(i) + 0.5) * width;
    const double mu = mean + phi * (center - mean);
    double prev_cdf = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      const double edge_hi = lo + static_cast<double>(j + 1) * width;
      const double cdf = j + 1 == n ? 1.0 : norm_cdf((edge_hi - mu) / step_sd);
      t[i * n + j] = cdf - prev_cdf;
      prev_cdf = cdf;
    }
  }
  return t;
}

std::size_t pes_used(const dse::DesignPoint& p) {
  std::vector<plat::PeId> pes;
  for (const auto& a : p.config.tasks) pes.push_back(a.pe);
  std::sort(pes.begin(), pes.end());
  pes.erase(std::unique(pes.begin(), pes.end()), pes.end());
  return pes.size();
}

}  // namespace

std::size_t MdpTable::bin_of(const dse::QosSpec& spec) const {
  auto bucket = [](double x, double lo, double hi, std::uint32_t n) {
    const double t = util::min_max_norm(x, lo, hi);
    return std::min(static_cast<std::size_t>(t * static_cast<double>(n)),
                    static_cast<std::size_t>(n) - 1);
  };
  const std::size_t s = bucket(spec.max_makespan, ranges.makespan_min, ranges.makespan_max,
                               makespan_bins);
  const std::size_t f = bucket(spec.min_func_rel, ranges.func_rel_min, ranges.func_rel_max,
                               func_rel_bins);
  return s * func_rel_bins + f;
}

MdpTable build_mdp_table(const dse::DesignDb& db, const DrcMatrix& drc,
                         const dse::MetricRanges& ranges, double p_rc,
                         const QosProcessParams& qos, const flt::FaultParams& faults,
                         const MdpPolicyParams& params) {
  if (db.empty()) throw std::invalid_argument("build_mdp_table: empty database");
  if (params.makespan_bins == 0 || params.func_rel_bins == 0) {
    throw std::invalid_argument("build_mdp_table: bin counts must be >= 1");
  }
  if (p_rc < 0.0 || p_rc > 1.0) {
    throw std::invalid_argument("build_mdp_table: pRC must be in [0,1]");
  }
  const std::size_t points = db.size();
  const std::size_t bins = params.makespan_bins * params.func_rel_bins;
  const std::size_t states = bins * points;
  if (states > (std::size_t{1} << 22)) {
    throw std::invalid_argument("build_mdp_table: state space exceeds the 2^22 cap");
  }

  // Per-dimension AR(1) bin kernels over the QoS box. The cross-dimension
  // correlation (rho) is dropped: the joint kernel is the product of the
  // marginals — a standard factored approximation that keeps the row count
  // at bins instead of bins² distinct covariance integrals.
  const double s_range = std::max(ranges.makespan_max - ranges.makespan_min, 1e-9);
  const double f_range = std::max(ranges.func_rel_max - ranges.func_rel_min, 1e-9);
  const std::vector<double> t_s =
      bin_kernel(params.makespan_bins, ranges.makespan_min, ranges.makespan_max,
                 ranges.makespan_min + qos.makespan_mean_frac * s_range,
                 std::max(qos.makespan_sd_frac * s_range, 1e-12), qos.ar1_phi);
  const std::vector<double> t_f =
      bin_kernel(params.func_rel_bins, ranges.func_rel_min, ranges.func_rel_max,
                 ranges.func_rel_min + qos.func_rel_mean_frac * f_range,
                 std::max(qos.func_rel_sd_frac * f_range, 1e-12), qos.ar1_phi);

  // Reward ingredients (all database-global, like UraPolicy::global_reward):
  // energy/dRC normalization plus the fault-regime hazard per action — the
  // probability a fault strikes the action's PEs within one mean event gap,
  // charged the action's expected evacuation cost.
  const auto r = db.ranges();
  const double drc_hi = std::max(drc.max_drc(), 1e-12);
  std::vector<double> energy_norm(points), hazard(points), evac_norm(points);
  const double per_pe_rate =
      faults.transient_rate + (faults.pe_mtbf > 0.0 ? 1.0 / faults.pe_mtbf : 0.0);
  for (std::size_t k = 0; k < points; ++k) {
    const auto& p = db.point(k);
    energy_norm[k] = util::min_max_norm(p.energy, r.energy_min, r.energy_max);
    const double rate = per_pe_rate * static_cast<double>(pes_used(p));
    hazard[k] = 1.0 - std::exp(-rate * qos.mean_event_gap);
    double evac = 0.0;
    for (std::size_t j = 0; j < points; ++j) evac += drc.drc(k, j);
    evac_norm[k] = (evac / static_cast<double>(points)) / drc_hi;
  }

  // Assemble the factored MDP: state = bin * points + current, action = next
  // point. The next state is (next bin, action), so the transition row
  // depends only on (bin, action) — bins × points shared rows.
  Mdp mdp;
  mdp.num_states = states;
  mdp.num_actions = points;
  mdp.row_of.resize(states * points);
  mdp.rows.resize(bins * points);
  mdp.reward.resize(states * points);
  for (std::size_t bs = 0; bs < params.makespan_bins; ++bs) {
    for (std::size_t bf = 0; bf < params.func_rel_bins; ++bf) {
      const std::size_t bin = bs * params.func_rel_bins + bf;
      // Bin-center requirement for the feasibility shaping term.
      const double s_width = s_range / static_cast<double>(params.makespan_bins);
      const double f_width = f_range / static_cast<double>(params.func_rel_bins);
      dse::QosSpec center;
      center.max_makespan = ranges.makespan_min + (static_cast<double>(bs) + 0.5) * s_width;
      center.min_func_rel = ranges.func_rel_min + (static_cast<double>(bf) + 0.5) * f_width;
      for (std::size_t a = 0; a < points; ++a) {
        MdpRow& row = mdp.rows[bin * points + a];
        row.reserve(bins);
        for (std::size_t ns = 0; ns < params.makespan_bins; ++ns) {
          for (std::size_t nf = 0; nf < params.func_rel_bins; ++nf) {
            const double prob =
                t_s[bs * params.makespan_bins + ns] * t_f[bf * params.func_rel_bins + nf];
            if (prob <= 0.0) continue;
            const std::size_t nbin = ns * params.func_rel_bins + nf;
            row.emplace_back(static_cast<std::uint32_t>(nbin * points + a), prob);
          }
        }
        // Numerical drift of the CDF products: renormalize so validate()'s
        // stochasticity contract holds exactly within tolerance.
        double sum = 0.0;
        for (const auto& e : row) sum += e.second;
        if (sum > 0.0) {
          for (auto& e : row) e.second /= sum;
        }
      }
      for (std::size_t cur = 0; cur < points; ++cur) {
        const std::size_t s = bin * points + cur;
        for (std::size_t a = 0; a < points; ++a) {
          const double cost = util::min_max_norm(drc.drc(cur, a), 0.0, drc_hi);
          double reward = p_rc * (1.0 - energy_norm[a]) + (1.0 - p_rc) * (1.0 - cost);
          // Feasibility shaping: an action that misses the bin-center
          // requirement forfeits the whole [0,1] reward band — the dominant
          // term, mirroring evaluate_and_pick's feasible-set restriction.
          if (!db.point(a).feasible_for(center)) reward -= 1.0;
          // Fault hazard: expected evacuation cost before the next decision.
          reward -= hazard[a] * evac_norm[a];
          mdp.reward[s * points + a] = reward;
          mdp.row_of[s * points + a] = static_cast<std::uint32_t>(bin * points + a);
        }
      }
    }
  }
  mdp.validate();

  ValueIterationOptions opts;
  opts.gamma = params.gamma;
  opts.tolerance = params.tolerance;
  opts.max_sweeps = params.max_sweeps;
  MdpSolution sol = solve_value_iteration(mdp, opts);
  if (!sol.converged) {
    // Slow contraction (gamma near 1): Howard policy iteration terminates in
    // finitely many exact evaluation/improvement rounds instead.
    sol = solve_policy_iteration(mdp, params.gamma);
  }

  MdpTable table;
  table.makespan_bins = static_cast<std::uint32_t>(params.makespan_bins);
  table.func_rel_bins = static_cast<std::uint32_t>(params.func_rel_bins);
  table.num_points = points;
  table.gamma = params.gamma;
  table.p_rc = p_rc;
  table.ranges = ranges;
  table.policy = std::move(sol.policy);
  table.values = std::move(sol.value);
  return table;
}

MdpPolicy::MdpPolicy(const dse::DesignDb& db, const DrcMatrix& drc, const MdpTable& table)
    : db_(&db), drc_(&drc), table_(&table) {
  if (db.empty()) throw std::invalid_argument("MdpPolicy: empty database");
  if (table.num_points != db.size()) {
    throw std::invalid_argument("MdpPolicy: table was solved for a different database size");
  }
  if (table.policy.size() != table.num_states() || table.values.size() != table.num_states()) {
    throw std::invalid_argument("MdpPolicy: malformed table");
  }
  for (std::uint32_t a : table.policy) {
    if (a >= table.num_points) throw std::invalid_argument("MdpPolicy: action out of range");
  }
}

Decision MdpPolicy::decide(std::size_t current, const dse::QosSpec& spec) const {
  Decision d;
  const auto* mask = alive_mask();
  const std::size_t points = db_->size();
  const auto usable = [&](std::size_t k) {
    return (mask == nullptr || (*mask)[k]) && db_->point(k).feasible_for(spec);
  };

  std::size_t pick = table_->policy[table_->state_of(spec, current)];
  if (!usable(pick)) {
    // The tabular action was optimal for the bin center, not this concrete
    // requirement (or its PEs died). Fall back to the feasible point the
    // value function ranks highest in this bin — a linear scan, no
    // allocation, deterministic tie-break toward the current point.
    const std::size_t base = table_->bin_of(spec) * points;
    bool found = false;
    double best_v = -std::numeric_limits<double>::infinity();
    std::size_t best_k = 0;
    for (std::size_t k = 0; k < points; ++k) {
      if (!usable(k)) continue;
      const double v = table_->values[base + k];
      if (!found || v > best_v || (v == best_v && k == current)) {
        found = true;
        best_v = v;
        best_k = k;
      }
    }
    if (found) {
      pick = best_k;
    } else {
      d.feasible_set_empty = true;
      pick = db_->least_violating(spec, mask);
    }
  }
  d.point = pick;
  d.drc = drc_->drc(current, pick);
  return d;
}

Decision MdpPolicy::select(std::size_t current, const dse::QosSpec& spec) {
  return decide(current, spec);
}

Decision MdpPolicy::peek(std::size_t current, const dse::QosSpec& spec) {
  return decide(current, spec);
}

}  // namespace clr::rt
