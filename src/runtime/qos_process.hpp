#pragma once
// The stochastic operating environment of §5.1: QoS requirements (SSPEC,
// FSPEC) vary as a bivariate Gaussian, and the time between discrete events
// is exponential with a mean of 100 application execution cycles.

#include "common/distributions.hpp"
#include "common/rng.hpp"
#include "dse/design_db.hpp"

namespace clr::rt {

/// Parameters of the QoS-requirement process, expressed as fractions of the
/// achievable metric ranges so one definition works across applications.
struct QosProcessParams {
  /// Mean of the makespan bound, as a fraction of [S_min, S_max]. Tight
  /// enough that new requirements regularly invalidate the current point
  /// (the paper's Fig. 6 shows reconfigurations on roughly half the events).
  double makespan_mean_frac = 0.45;
  double makespan_sd_frac = 0.25;
  /// Mean of the reliability floor, as a fraction of [F_min, F_max].
  double func_rel_mean_frac = 0.60;
  double func_rel_sd_frac = 0.25;
  /// Correlation between the two requirements (tight latency often comes
  /// with tight reliability in the paper's surveillance scenario).
  double rho = 0.3;
  /// Temporal autocorrelation of consecutive requirements (AR(1) factor).
  /// The paper's motivating scenario — battery level and terrain drifting
  /// over a satellite pass — changes requirements gradually, not i.i.d.;
  /// phi = 0 recovers independent draws.
  double ar1_phi = 0.6;
  /// Mean cycles between QoS-change events (exponential).
  double mean_event_gap = 100.0;
};

/// Samples QoS-requirement changes and event gaps; calibrated to a database's
/// achievable metric ranges so most sampled specs are satisfiable.
class QosProcess {
 public:
  QosProcess(const dse::MetricRanges& ranges, QosProcessParams params = {});

  /// Draw a QoS requirement from the stationary distribution (clamped into
  /// the achievable box). Used for the first event of a run.
  dse::QosSpec sample_spec(util::Rng& rng) const;

  /// AR(1) step: the next requirement drifts from `prev` toward the mean
  /// with innovation scaled by sqrt(1 - phi^2), so the stationary marginal
  /// matches sample_spec. phi = 0 degenerates to sample_spec.
  dse::QosSpec next_spec(const dse::QosSpec& prev, util::Rng& rng) const;

  /// Draw the gap (in application cycles) to the next discrete event.
  double sample_gap(util::Rng& rng) const;

  const QosProcessParams& params() const { return params_; }
  const dse::MetricRanges& ranges() const { return ranges_; }

 private:
  dse::MetricRanges ranges_;
  QosProcessParams params_;
  util::BivariateGaussian dist_;
};

}  // namespace clr::rt
