#pragma once
// rt::MdpPolicy — decision-theoretic stored-point selection (DESIGN.md §5.14).
//
// The QoS space is discretized into a makespan × reliability bin grid; the
// state is (QoS bin, active design point), the action the next design point.
// The transition kernel derives from the AR(1) QosProcess parameters (per
// dimension: a Gaussian step distribution integrated over the bin edges, the
// cross-dimension correlation dropped as a documented product approximation)
// and the fault-regime hazard rates (expected evacuation cost per event is
// folded into the reward). Solved OFFLINE by in-place value iteration with a
// policy-iteration fallback (runtime/mdp.hpp, proven optimal by
// tests/runtime/test_mdp_oracle.cpp); the runtime decision is a pure table
// lookup — deterministic, allocation-free — with a feasibility-checked
// fallback scan when the tabular pick misses the concrete requirement.
//
// The resulting MdpTable is immutable and shareable (the fleet builds one per
// run and hands it to every device) and serializable as the `.clrdb`
// MdpPolicy section (io/snapshot.hpp, format version 4).

#include <cstdint>
#include <vector>

#include "dse/design_db.hpp"
#include "faults/fault_model.hpp"
#include "runtime/drc_matrix.hpp"
#include "runtime/policy.hpp"
#include "runtime/qos_process.hpp"

namespace clr::rt {

/// Offline solve knobs for the tabular policy.
struct MdpPolicyParams {
  std::size_t makespan_bins = 6;   ///< QoS-bin grid resolution (makespan axis)
  std::size_t func_rel_bins = 6;   ///< QoS-bin grid resolution (reliability axis)
  double gamma = 0.9;              ///< discount factor of the offline solve
  double tolerance = 1e-10;        ///< value-iteration convergence tolerance
  std::size_t max_sweeps = 10000;  ///< VI sweep budget before the PI fallback
};

/// The solved tabular policy: one action (next point) and one value per
/// (QoS bin, current point) state. Plain data — buildable, comparable and
/// serializable without the DesignDb it was solved against.
struct MdpTable {
  std::uint32_t makespan_bins = 0;
  std::uint32_t func_rel_bins = 0;
  std::uint64_t num_points = 0;
  double gamma = 0.0;
  double p_rc = 0.0;
  /// The QoS box the bins partition (the QosProcess ranges).
  dse::MetricRanges ranges{};
  /// Greedy action per state, state = bin * num_points + current.
  std::vector<std::uint32_t> policy;
  /// Value function per state (same indexing).
  std::vector<double> values;

  std::size_t num_bins() const {
    return static_cast<std::size_t>(makespan_bins) * func_rel_bins;
  }
  std::size_t num_states() const { return num_bins() * static_cast<std::size_t>(num_points); }

  /// Row-major bin of a requirement (clamped into the grid).
  std::size_t bin_of(const dse::QosSpec& spec) const;
  std::size_t state_of(const dse::QosSpec& spec, std::size_t current) const {
    return bin_of(spec) * static_cast<std::size_t>(num_points) + current;
  }

  bool operator==(const MdpTable&) const = default;
};

/// Build + solve the tabular policy offline. Deterministic (no RNG): the
/// kernel integrates the AR(1) step distribution analytically. Throws
/// std::invalid_argument on degenerate inputs (empty db, zero bins, a state
/// space above the 2^22 safety cap).
MdpTable build_mdp_table(const dse::DesignDb& db, const DrcMatrix& drc,
                         const dse::MetricRanges& ranges, double p_rc,
                         const QosProcessParams& qos, const flt::FaultParams& faults,
                         const MdpPolicyParams& params = {});

/// Tabular adaptation policy over a prebuilt (and possibly shared) table.
/// The table must outlive the policy and match the database size.
class MdpPolicy : public AdaptationPolicy {
 public:
  MdpPolicy(const dse::DesignDb& db, const DrcMatrix& drc, const MdpTable& table);

  /// Allocation-free on the happy path: a table lookup, a feasibility check
  /// and (only when the tabular pick misses the concrete spec or died with a
  /// PE) a linear value-ranked fallback scan.
  Decision select(std::size_t current, const dse::QosSpec& spec) override;
  Decision peek(std::size_t current, const dse::QosSpec& spec) override;

  const MdpTable& table() const { return *table_; }

 private:
  Decision decide(std::size_t current, const dse::QosSpec& spec) const;

  const dse::DesignDb* db_;
  const DrcMatrix* drc_;
  const MdpTable* table_;
};

}  // namespace clr::rt
