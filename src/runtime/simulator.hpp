#pragma once
// Monte-Carlo discrete-event simulation of the run-time adaptation loop
// (paper §5.1): QoS requirements change at exponentially-distributed event
// times; at each event the policy picks the next stored design point; energy
// integrates the active point's Japp per application cycle; reconfiguration
// costs accumulate per transition. Episodes of fixed length drive the AuRA
// value updates.

#include <cstddef>
#include <string>
#include <vector>

#include "dse/design_db.hpp"
#include "runtime/policy.hpp"
#include "runtime/qos_process.hpp"

namespace clr::rt {

struct SimulationParams {
  /// Total simulated application execution cycles (paper: one million).
  double total_cycles = 1e6;
  /// Episode length for value-function updates (paper: "typically a
  /// thousand ... application execution cycles").
  double episode_cycles = 1000.0;
  /// Record the first N events into the trace (0 = no trace) — Fig. 6 uses
  /// the first 50 QoS changes.
  std::size_t trace_events = 0;
};

/// One traced QoS-change event.
struct EventRecord {
  double time = 0.0;        ///< cycles
  std::size_t point = 0;    ///< selected database index
  double drc = 0.0;         ///< cost paid for this transition (0 = stayed)
  bool reconfigured = false;
  bool infeasible = false;  ///< no stored point satisfied the new spec
};

/// Aggregated simulation outcome.
struct RuntimeStats {
  double total_cycles = 0.0;
  std::size_t num_events = 0;
  std::size_t num_reconfigs = 0;
  std::size_t num_infeasible_events = 0;
  /// Time-weighted mean Japp of the active configuration (the paper's Javg).
  double avg_energy = 0.0;
  /// Total dRC paid over the run.
  double total_reconfig_cost = 0.0;
  /// Mean dRC per QoS-change event (the paper's average reconfiguration cost).
  double avg_reconfig_cost = 0.0;
  /// Largest single transition cost (the ΔdRC annotation of Fig. 6).
  double max_drc = 0.0;
  std::vector<EventRecord> trace;
};

/// The run-time adaptation loop of Fig. 3 (right half).
class RuntimeSimulator {
 public:
  explicit RuntimeSimulator(SimulationParams params = {}) : params_(params) {}

  /// Simulate `policy` over `db` against the QoS process. The initial point
  /// is the policy's choice for the first sampled spec (no cost charged).
  RuntimeStats run(const dse::DesignDb& db, AdaptationPolicy& policy, const QosProcess& qos,
                   util::Rng& rng) const;

  const SimulationParams& params() const { return params_; }

 private:
  SimulationParams params_;
};

/// Render a recorded event trace as CSV ("time,point,drc,reconfigured,
/// infeasible") for offline plotting — e.g. regenerating Fig. 6 graphically.
std::string trace_to_csv(const std::vector<EventRecord>& trace);

/// Offline Monte-Carlo pre-training of an AuRA agent (§4.3.2 "Prior
/// knowledge"): runs `sweeps` simulations of `cycles_per_sweep` cycles with
/// learning enabled, then freezes learning. Returns the trained values.
std::vector<double> pretrain_aura(AuraPolicy& policy, const dse::DesignDb& db,
                                  const QosProcess& qos, double cycles_per_sweep,
                                  std::size_t sweeps, util::Rng& rng);

}  // namespace clr::rt
