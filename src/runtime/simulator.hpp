#pragma once
// Monte-Carlo discrete-event simulation of the run-time adaptation loop
// (paper §5.1): QoS requirements change at exponentially-distributed event
// times; at each event the policy picks the next stored design point; energy
// integrates the active point's Japp per application cycle; reconfiguration
// costs accumulate per transition. Episodes of fixed length drive the AuRA
// value updates.
//
// With a fault scenario attached (flt::FaultScenario) the timeline
// additionally carries transient soft errors and permanent PE wear-out, and
// the loop gains degraded-mode semantics:
//
//   - a transient fault on a PE the active point uses is recovered with the
//     probability the struck task's CLR configuration buys
//     (flt::recovery_probability); recovery charges a latency (downtime) and
//     a re-execution energy premium, a miss counts an unrecovered failure;
//   - a permanent fault retires the PE and every stored point bound to it
//     (flt::PlatformHealth); if the active point dies, the simulator walks an
//     explicit fallback chain: (1) the policy's best pick among feasible
//     points on alive PEs, (2) a relaxed-QoS fallback whose violation is
//     within FaultParams::qos_tolerance, (3) a safe-mode sentinel that
//     accrues downtime until some later requirement becomes coverable (or
//     the run ends — e.g. when no PE survives).
//
// RuntimeStats accordingly grows availability, MTTR, unrecovered-failure and
// QoS-violation-time accounting; these fields stay zero (and the event loop
// bit-for-bit identical) when no scenario is attached or all rates are 0.

#include <cstddef>
#include <string>
#include <vector>

#include "dse/design_db.hpp"
#include "faults/fault_model.hpp"
#include "runtime/policy.hpp"
#include "runtime/qos_process.hpp"

namespace clr::rt {

struct SimulationParams {
  /// Total simulated application execution cycles (paper: one million).
  double total_cycles = 1e6;
  /// Episode length for value-function updates (paper: "typically a
  /// thousand ... application execution cycles").
  double episode_cycles = 1000.0;
  /// Record the first N events into the trace (0 = no trace) — Fig. 6 uses
  /// the first 50 QoS changes.
  std::size_t trace_events = 0;
};

/// One traced timeline event: a QoS change, or — under fault injection — a
/// fault arrival.
struct EventRecord {
  double time = 0.0;        ///< cycles
  std::size_t point = 0;    ///< active database index after the event
  double drc = 0.0;         ///< cost paid for this transition (0 = stayed)
  bool reconfigured = false;
  bool infeasible = false;  ///< no stored point satisfied the new spec
  /// Fault carried by this event (None for plain QoS changes).
  flt::FaultKind fault = flt::FaultKind::None;
  /// The active point violates the active QoS spec after this event (or the
  /// system sits in safe mode).
  bool violation = false;
  /// The system is in the tier-3 safe-mode sentinel after this event.
  bool safe_mode = false;
};

/// Aggregated simulation outcome.
struct RuntimeStats {
  double total_cycles = 0.0;
  std::size_t num_events = 0;
  std::size_t num_reconfigs = 0;
  std::size_t num_infeasible_events = 0;
  /// Time-weighted mean Japp of the active configuration (the paper's Javg).
  double avg_energy = 0.0;
  /// Total dRC paid over the run.
  double total_reconfig_cost = 0.0;
  /// Mean dRC per QoS-change event (the paper's average reconfiguration cost).
  double avg_reconfig_cost = 0.0;
  /// Largest single transition cost (the ΔdRC annotation of Fig. 6).
  double max_drc = 0.0;

  // --- QoS-violation accounting (also active without fault injection) ---
  /// Cycles during which the active point violated the active requirement
  /// (infeasible events kept the least-violating point) or the system sat in
  /// safe mode.
  double qos_violation_time = 0.0;

  // --- fault / degraded-mode accounting (zero without a fault scenario) ---
  std::size_t num_transient_faults = 0;      ///< transient arrivals (all PEs)
  std::size_t num_recovered_transients = 0;  ///< hits on the active point, recovered
  std::size_t num_unrecovered_failures = 0;  ///< hits the CLR coverage missed
  std::size_t num_permanent_faults = 0;      ///< PEs permanently lost
  std::size_t num_evacuations = 0;           ///< fallback-chain tier-1/2 migrations
  std::size_t num_safe_mode_entries = 0;     ///< fallback-chain tier-3 drops
  /// Cycles of service interruption: transient recovery latencies, permanent
  /// evacuation migrations (their dRC) and safe-mode residence.
  double downtime = 0.0;
  /// 1 - downtime / total_cycles, clamped to [0, 1].
  double availability = 1.0;
  /// Mean downtime per repair action (transient recoveries + evacuations);
  /// 0 when no repair happened. Safe-mode residence is excluded: it is
  /// unrepaired outage, not repair work.
  double mttr = 0.0;

  // --- reconfiguration-port accounting (DESIGN.md §5.14) ---
  /// Cycles the service actually stalled loading bitstreams. Without
  /// prefetching this equals total_reconfig_cost exactly (the historic folded
  /// accounting); with prefetching the staged progress is subtracted.
  /// Invariant: total_reconfig_cost == reconfig_stall_time +
  /// prefetch_hidden_time, always.
  double reconfig_stall_time = 0.0;
  /// Cycles of reconfiguration latency hidden by speculative staging.
  double prefetch_hidden_time = 0.0;
  std::size_t prefetch_hits = 0;    ///< reconfigs that found their target staged
  std::size_t prefetch_misses = 0;  ///< reconfigs that cancelled a wrong stage
  /// 1 - (downtime + reconfig_stall_time) / total_cycles, clamped to [0, 1]:
  /// availability of the *service*, which reconfiguration stalls also
  /// interrupt (availability above only charges fault handling).
  double service_availability = 1.0;

  std::vector<EventRecord> trace;
};

/// The run-time adaptation loop of Fig. 3 (right half).
class RuntimeSimulator {
 public:
  explicit RuntimeSimulator(SimulationParams params = {}) : params_(params) {}

  /// Simulate `policy` over `db` against the QoS process. The initial point
  /// is the policy's choice for the first sampled spec (no cost charged).
  RuntimeStats run(const dse::DesignDb& db, AdaptationPolicy& policy, const QosProcess& qos,
                   util::Rng& rng) const;

  /// Same, with fault injection: `scenario` supplies the fault environment,
  /// per-PE profiles and the dedicated fault-stream seed (kept separate from
  /// `rng` so the QoS sequence is identical across fault rates). nullptr —
  /// or a scenario with all rates 0 — reproduces the fault-free run exactly.
  RuntimeStats run(const dse::DesignDb& db, AdaptationPolicy& policy, const QosProcess& qos,
                   util::Rng& rng, const flt::FaultScenario* scenario) const;

  const SimulationParams& params() const { return params_; }

 private:
  SimulationParams params_;
};

/// Render a recorded event trace as CSV ("time,point,drc,reconfigured,
/// infeasible,fault,violation") for offline plotting — e.g. regenerating
/// Fig. 6 graphically. `fault` is 0 none / 1 transient / 2 permanent.
std::string trace_to_csv(const std::vector<EventRecord>& trace);

/// Offline Monte-Carlo pre-training of an AuRA agent (§4.3.2 "Prior
/// knowledge"): runs `sweeps` simulations of `cycles_per_sweep` cycles with
/// learning enabled, then freezes learning. Returns the trained values.
/// Pre-training is always fault-free: prior knowledge reflects the nominal
/// platform.
std::vector<double> pretrain_aura(AuraPolicy& policy, const dse::DesignDb& db,
                                  const QosProcess& qos, double cycles_per_sweep,
                                  std::size_t sweeps, util::Rng& rng);

}  // namespace clr::rt
