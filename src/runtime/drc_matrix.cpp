#include "runtime/drc_matrix.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "common/parallel.hpp"
#include "trace/trace.hpp"

namespace clr::rt {

DrcMatrix::DrcMatrix(std::size_t n, std::vector<double> costs)
    : n_(n), costs_(std::move(costs)) {
  if (costs_.size() != n_ * n_) {
    throw std::invalid_argument("DrcMatrix: cost table must be n*n");
  }
}

double DrcMatrix::drc(std::size_t from, std::size_t to,
                      const std::vector<bool>* point_alive) const {
  if (point_alive != nullptr && !(*point_alive)[to]) {
    return std::numeric_limits<double>::infinity();
  }
  return drc(from, to);
}

double DrcMatrix::max_drc() const {
  double best = 0.0;
  for (double c : costs_) best = std::max(best, c);
  return best;
}

DrcMatrix::DrcMatrix(const dse::DesignDb& db, const recfg::ReconfigModel& model)
    : DrcMatrix(db, model, nullptr) {}

DrcMatrix::DrcMatrix(const dse::DesignDb& db, const recfg::ReconfigModel& model,
                     util::ThreadPool* pool)
    : n_(db.size()), costs_(db.size() * db.size(), 0.0) {
  CLR_TRACE_SPAN(build_span, trace::Category::Drc, "drc.build",
                 {{"points", n_}, {"parallel", pool != nullptr}});
  const auto fill_row = [&](std::size_t i) {
    for (std::size_t j = 0; j < n_; ++j) {
      if (i == j) continue;
      costs_[i * n_ + j] = model.drc(db.point(i).config, db.point(j).config);
    }
  };
  if (pool != nullptr) {
    pool->parallel_for(n_, fill_row);
  } else {
    for (std::size_t i = 0; i < n_; ++i) fill_row(i);
  }
}

}  // namespace clr::rt
