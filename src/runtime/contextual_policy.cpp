#include "runtime/contextual_policy.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/stats.hpp"

namespace clr::rt {

ContextualAuraPolicy::ContextualAuraPolicy(const dse::DesignDb& db, const DrcMatrix& drc,
                                           double p_rc, const dse::MetricRanges& ranges,
                                           Params params)
    : UraPolicy(db, drc, p_rc), params_(params), ranges_(ranges) {
  if (params.makespan_buckets == 0 || params.func_rel_buckets == 0) {
    throw std::invalid_argument("ContextualAuraPolicy: bucket counts must be >= 1");
  }
  if (params.gamma < 0.0 || params.gamma >= 1.0) {
    throw std::invalid_argument("ContextualAuraPolicy: gamma must be in [0,1)");
  }
  if (params.alpha <= 0.0 || params.alpha > 1.0) {
    throw std::invalid_argument("ContextualAuraPolicy: alpha must be in (0,1]");
  }
  values_.assign(num_contexts(), std::vector<double>(db.size(), 0.0));
}

std::size_t ContextualAuraPolicy::context_of(const dse::QosSpec& spec) const {
  auto bucket = [](double x, double lo, double hi, std::size_t n) {
    if (n <= 1) return std::size_t{0};
    const double t = util::min_max_norm(x, lo, hi);
    return std::min(static_cast<std::size_t>(t * static_cast<double>(n)), n - 1);
  };
  const std::size_t s_bucket =
      bucket(spec.max_makespan, ranges_.makespan_min, ranges_.makespan_max,
             params_.makespan_buckets);
  const std::size_t f_bucket =
      bucket(spec.min_func_rel, ranges_.func_rel_min, ranges_.func_rel_max,
             params_.func_rel_buckets);
  return s_bucket * params_.func_rel_buckets + f_bucket;
}

Decision ContextualAuraPolicy::select(std::size_t current, const dse::QosSpec& spec) {
  const std::size_t ctx = context_of(spec);
  Decision d = evaluate_and_pick(current, spec, &values_[ctx], params_.gamma, params_.guard);
  if (learning_) episode_.push_back(Step{ctx, d.point, d.reward});
  return d;
}

Decision ContextualAuraPolicy::peek(std::size_t current, const dse::QosSpec& spec) {
  const std::size_t ctx = context_of(spec);
  return evaluate_and_pick(current, spec, &values_[ctx], params_.gamma, params_.guard);
}

void ContextualAuraPolicy::end_episode() {
  if (!learning_ || episode_.empty()) return;
  double g = 0.0;
  for (auto it = episode_.rbegin(); it != episode_.rend(); ++it) {
    g = it->reward + params_.gamma * g;
    double& v = values_[it->context][it->state];
    v += params_.alpha * (g - v);
  }
  episode_.clear();
}

void ContextualAuraPolicy::reset() { episode_.clear(); }

}  // namespace clr::rt
