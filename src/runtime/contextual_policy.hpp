#pragma once
// Contextual AuRA (extension): the plain AuRA agent learns one value per
// stored design point, but a point's long-run worth depends on the *demand
// regime* — a frugal low-reliability point is valuable while requirements
// are loose and a liability while they are tight. This agent quantizes the
// incoming QoS requirement into a small grid of contexts and learns a value
// per (context, point) pair; selection and learning otherwise follow
// AuraPolicy's guarded-lookahead scheme. With a 1x1 grid it degenerates to
// the plain agent.

#include "runtime/policy.hpp"

namespace clr::rt {

class ContextualAuraPolicy : public UraPolicy {
 public:
  struct Params {
    double gamma = 0.5;
    double alpha = 0.05;
    double guard = 0.0;  ///< 0 => value arbitrates exact immediate ties only
    /// Context grid resolution per QoS dimension (makespan bound x
    /// reliability floor). 1 x 1 matches the plain AuraPolicy.
    std::size_t makespan_buckets = 3;
    std::size_t func_rel_buckets = 3;
  };

  /// `ranges` delimits the demand box used for bucketing (usually the same
  /// MetricRanges handed to the QosProcess).
  ContextualAuraPolicy(const dse::DesignDb& db, const DrcMatrix& drc, double p_rc,
                       const dse::MetricRanges& ranges, Params params);

  Decision select(std::size_t current, const dse::QosSpec& spec) override;
  /// Episode-free evaluation (speculative previews must not enter learning).
  Decision peek(std::size_t current, const dse::QosSpec& spec) override;
  void end_episode() override;
  void reset() override;

  /// Context index for a requirement (row-major bucket id).
  std::size_t context_of(const dse::QosSpec& spec) const;
  std::size_t num_contexts() const { return params_.makespan_buckets * params_.func_rel_buckets; }

  /// Values of one context (size = database size).
  const std::vector<double>& values(std::size_t context) const { return values_.at(context); }

  void set_learning(bool enabled) { learning_ = enabled; }

 private:
  Params params_;
  dse::MetricRanges ranges_;
  /// Per context: one value per stored point.
  std::vector<std::vector<double>> values_;
  /// (context, state, reward) trajectory of the current episode.
  struct Step {
    std::size_t context;
    std::size_t state;
    double reward;
  };
  std::vector<Step> episode_;
  bool learning_ = true;
};

}  // namespace clr::rt
