#include "common/metrics.hpp"

#include <sstream>

namespace clr::util {

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Timer& MetricsRegistry::timer(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = timers_[name];
  if (!slot) slot = std::make_unique<Timer>();
  return *slot;
}

std::vector<CounterSnapshot> MetricsRegistry::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<CounterSnapshot> out;
  out.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.push_back({name, c->value()});
  return out;
}

std::vector<TimerSnapshot> MetricsRegistry::timers() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TimerSnapshot> out;
  out.reserve(timers_.size());
  for (const auto& [name, t] : timers_) out.push_back({name, t->total_ms(), t->count()});
  return out;
}

std::string MetricsRegistry::to_string() const {
  std::ostringstream oss;
  for (const auto& c : counters()) oss << c.name << "=" << c.value << "\n";
  for (const auto& t : timers()) {
    oss << t.name << "=" << t.total_ms << "ms (" << t.count << " spans)\n";
  }
  return oss.str();
}

}  // namespace clr::util
