#pragma once
// Streaming statistics helpers used by the Monte-Carlo runtime simulator and
// the benchmark reporters.

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <stdexcept>
#include <vector>

namespace clr::util {

/// Welford-style running mean/variance with min/max tracking.
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  std::size_t count() const { return n_; }
  double sum() const { return sum_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return n_ > 0 ? min_ : 0.0; }
  double max() const { return n_ > 0 ? max_ : 0.0; }

  void merge(const RunningStats& other) {
    if (other.n_ == 0) return;
    if (n_ == 0) { *this = other; return; }
    const double total = static_cast<double>(n_ + other.n_);
    const double delta = other.mean_ - mean_;
    m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                           static_cast<double>(other.n_) / total;
    mean_ = (mean_ * static_cast<double>(n_) + other.mean_ * static_cast<double>(other.n_)) / total;
    n_ += other.n_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Two-sided 95% Student-t critical value for `df` degrees of freedom
/// (exact table up to 30, the normal 1.96 asymptote beyond). df = 0 returns
/// infinity — a single replication carries no interval information.
double student_t_95(std::size_t df);

/// Compact replication summary: the interval estimate the replicated
/// runtime-experiment harness reports for every RuntimeStats field.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  ///< sample standard deviation
  /// Half-width of the 95% confidence interval of the mean (Student-t);
  /// 0 for fewer than two samples.
  double ci95 = 0.0;
  double min = 0.0;
  double max = 0.0;
};

/// Summarize a finished replication stream.
Summary summarize(const RunningStats& stats);

/// Percentile of a sample (linear interpolation). q in [0, 1].
double percentile(std::vector<double> values, double q);

/// Min–max normalization of `x` into [0, 1]; returns 0 when the range is
/// degenerate (all values equal) — the convention Algorithm 1 needs so a
/// single-candidate feasible set is not penalized.
double min_max_norm(double x, double lo, double hi);

/// Fixed-width histogram over [lo, hi). Out-of-range samples do not land in
/// any bin (total() counts in-range mass only) but are tallied separately so
/// callers can tell "all mass binned" apart from "some mass fell outside".
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
  std::size_t bins() const { return counts_.size(); }
  /// In-range samples (the denominator for bin fractions).
  std::size_t total() const { return total_; }
  /// Samples that fell outside [lo, hi) and were not binned.
  std::size_t out_of_range() const { return out_of_range_; }
  /// Every sample ever offered, binned or not.
  std::size_t observed() const { return total_ + out_of_range_; }
  double bin_low(std::size_t i) const;
  double bin_high(std::size_t i) const;

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
  std::size_t out_of_range_ = 0;
};

}  // namespace clr::util
