#include "common/stats.hpp"

namespace clr::util {

double percentile(std::vector<double> values, double q) {
  if (values.empty()) throw std::invalid_argument("percentile: empty sample");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("percentile: q out of [0,1]");
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values.front();
  const double pos = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double min_max_norm(double x, double lo, double hi) {
  const double range = hi - lo;
  if (range <= 0.0) return 0.0;
  return std::clamp((x - lo) / range, 0.0, 1.0);
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (bins == 0) throw std::invalid_argument("Histogram: bins must be > 0");
  if (!(lo < hi)) throw std::invalid_argument("Histogram: lo must be < hi");
}

void Histogram::add(double x) {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  if (x < lo_ || x >= hi_) return;  // out-of-range samples are dropped
  const auto idx = static_cast<std::size_t>((x - lo_) / width);
  ++counts_[std::min(idx, counts_.size() - 1)];
  ++total_;
}

double Histogram::bin_low(std::size_t i) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(i);
}

double Histogram::bin_high(std::size_t i) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(i + 1);
}

}  // namespace clr::util
