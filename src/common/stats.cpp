#include "common/stats.hpp"

namespace clr::util {

double student_t_95(std::size_t df) {
  // Two-sided 0.95 quantiles of the t distribution.
  static constexpr double kTable[] = {
      12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
      2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
      2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042};
  if (df == 0) return std::numeric_limits<double>::infinity();
  if (df <= 30) return kTable[df - 1];
  return 1.960;
}

Summary summarize(const RunningStats& stats) {
  Summary s;
  s.count = stats.count();
  s.mean = stats.mean();
  s.stddev = stats.stddev();
  s.min = stats.min();
  s.max = stats.max();
  if (s.count > 1) {
    s.ci95 = student_t_95(s.count - 1) * s.stddev / std::sqrt(static_cast<double>(s.count));
  }
  return s;
}

double percentile(std::vector<double> values, double q) {
  if (values.empty()) throw std::invalid_argument("percentile: empty sample");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("percentile: q out of [0,1]");
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values.front();
  const double pos = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double min_max_norm(double x, double lo, double hi) {
  const double range = hi - lo;
  if (range <= 0.0) return 0.0;
  return std::clamp((x - lo) / range, 0.0, 1.0);
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (bins == 0) throw std::invalid_argument("Histogram: bins must be > 0");
  if (!(lo < hi)) throw std::invalid_argument("Histogram: lo must be < hi");
}

void Histogram::add(double x) {
  if (x < lo_ || x >= hi_) {
    ++out_of_range_;  // not binned, but coverage stays visible to callers
    return;
  }
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  const auto idx = static_cast<std::size_t>((x - lo_) / width);
  ++counts_[std::min(idx, counts_.size() - 1)];
  ++total_;
}

double Histogram::bin_low(std::size_t i) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(i);
}

double Histogram::bin_high(std::size_t i) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(i + 1);
}

}  // namespace clr::util
