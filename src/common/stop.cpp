#include "common/stop.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <signal.h>
#endif

namespace clr::util {

const char* stop_reason_name(StopReason reason) {
  switch (reason) {
    case StopReason::Signal:
      return "signal";
    case StopReason::Deadline:
      return "deadline";
    case StopReason::Budget:
      return "budget";
    case StopReason::None:
      break;
  }
  return "none";
}

#if defined(__unix__) || defined(__APPLE__)

namespace {

// The handler reads this with a relaxed load; install_stop_signal_handlers
// publishes the source before sigaction() makes the handler reachable.
std::atomic<StopSource*> g_signal_stop_source{nullptr};

void stop_signal_handler(int /*signo*/) {
  StopSource* source = g_signal_stop_source.load(std::memory_order_relaxed);
  if (source != nullptr) source->request_stop(StopReason::Signal);
}

}  // namespace

void install_stop_signal_handlers(StopSource& source) {
  g_signal_stop_source.store(&source, std::memory_order_relaxed);
  struct sigaction action = {};
  action.sa_handler = stop_signal_handler;
  sigemptyset(&action.sa_mask);
  // SA_RESETHAND: the second SIGINT/SIGTERM gets the default disposition, so
  // a stuck run can still be killed with a second Ctrl-C.
  action.sa_flags = SA_RESETHAND;
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);
}

#else

void install_stop_signal_handlers(StopSource&) {}

#endif

}  // namespace clr::util
