#pragma once
// Cooperative cancellation for long-running flows (DESIGN.md §5.12).
//
// A StopSource is the single writer side of a stop request: a signal handler,
// a wall-clock deadline or a step budget arms it, and every long loop in the
// library (GA generations, Runner cell dispatch, ThreadPool index claiming)
// polls a StopToken view of it at its natural boundaries. The request path is
// one relaxed atomic store, so it is async-signal-safe — clrtool's SIGINT /
// SIGTERM handler does nothing but call request_stop().
//
// Cancellation is *cooperative and boundary-aligned*: a stop request never
// tears a generation or a replication job in half. Loops finish the unit of
// work they started, report their restartable state (see io/checkpoint.hpp)
// and return with a `complete = false` flag. This is what makes interrupted
// runs resumable bit-identically.

#include <atomic>
#include <chrono>
#include <cstdint>

namespace clr::util {

/// Why a stop was requested (first request wins; later ones are ignored).
enum class StopReason : int {
  None = 0,      ///< no stop requested
  Signal = 1,    ///< SIGINT/SIGTERM (or an explicit external request)
  Deadline = 2,  ///< the wall-clock deadline passed
  Budget = 3,    ///< a generation/cell step budget was exhausted
};

/// Human-readable reason ("signal", "deadline", "budget", "none").
const char* stop_reason_name(StopReason reason);

class StopToken;

/// Owner side of a cooperative stop flag. All members are lock-free atomics;
/// request_stop() is async-signal-safe.
class StopSource {
 public:
  StopSource() = default;
  StopSource(const StopSource&) = delete;
  StopSource& operator=(const StopSource&) = delete;

  /// Latch the stop flag. The first caller's reason sticks. Safe to call
  /// from a signal handler (one relaxed exchange + one relaxed store).
  void request_stop(StopReason reason = StopReason::Signal) noexcept {
    if (!stopped_.exchange(true, std::memory_order_relaxed)) {
      reason_.store(static_cast<int>(reason), std::memory_order_relaxed);
    }
  }

  /// Arm a wall-clock deadline `seconds` from now (steady clock). The flag
  /// latches on the first stop_requested() call at/after the deadline —
  /// there is no timer thread. seconds <= 0 stops immediately.
  void set_deadline_after(double seconds) {
    const auto now = std::chrono::steady_clock::now().time_since_epoch();
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(now).count() +
                    static_cast<std::int64_t>(seconds * 1e9);
    deadline_ns_.store(ns, std::memory_order_relaxed);
  }

  /// True once a stop was requested (or the armed deadline has passed;
  /// checking latches the flag so the reason is stable afterwards).
  bool stop_requested() noexcept {
    if (stopped_.load(std::memory_order_relaxed)) return true;
    const std::int64_t deadline = deadline_ns_.load(std::memory_order_relaxed);
    if (deadline != 0) {
      const auto now = std::chrono::steady_clock::now().time_since_epoch();
      if (std::chrono::duration_cast<std::chrono::nanoseconds>(now).count() >= deadline) {
        request_stop(StopReason::Deadline);
        return true;
      }
    }
    return false;
  }

  StopReason reason() const noexcept {
    return static_cast<StopReason>(reason_.load(std::memory_order_relaxed));
  }

  /// A lightweight view; valid as long as this source outlives it.
  StopToken token() noexcept;

 private:
  std::atomic<bool> stopped_{false};
  std::atomic<int> reason_{static_cast<int>(StopReason::None)};
  std::atomic<std::int64_t> deadline_ns_{0};  ///< steady-clock ns; 0 = none
};

/// Nullable, copyable view of a StopSource. A default-constructed token never
/// reports a stop — APIs take it by value and callers that don't care pass
/// `{}`.
class StopToken {
 public:
  StopToken() = default;

  bool stop_possible() const noexcept { return source_ != nullptr; }
  bool stop_requested() const noexcept {
    return source_ != nullptr && source_->stop_requested();
  }
  StopReason reason() const noexcept {
    return source_ != nullptr ? source_->reason() : StopReason::None;
  }

 private:
  friend class StopSource;
  explicit StopToken(StopSource* source) : source_(source) {}
  StopSource* source_ = nullptr;
};

inline StopToken StopSource::token() noexcept { return StopToken(this); }

/// Step-count budget: arms a StopSource with StopReason::Budget once `limit`
/// steps have been recorded. A limit of 0 means unlimited. Sessions call
/// step() once per generation boundary / replication job.
class RunBudget {
 public:
  RunBudget(StopSource& source, std::uint64_t limit) : source_(&source), limit_(limit) {}

  void step(std::uint64_t count = 1) {
    steps_ += count;
    if (limit_ != 0 && steps_ >= limit_) source_->request_stop(StopReason::Budget);
  }

  std::uint64_t steps() const { return steps_; }
  std::uint64_t limit() const { return limit_; }

 private:
  StopSource* source_;
  std::uint64_t limit_;
  std::uint64_t steps_ = 0;
};

/// Route SIGINT and SIGTERM to `source.request_stop(StopReason::Signal)`.
/// Installed with SA_RESETHAND: the first signal requests a cooperative stop
/// (finish the current generation/cell, write a final checkpoint), a second
/// one falls back to the default disposition and kills the process. The
/// source must outlive the process's signal handling (clrtool uses a
/// function-local static). No-op on platforms without sigaction.
void install_stop_signal_handlers(StopSource& source);

}  // namespace clr::util
