#include "common/parallel.hpp"

namespace clr::util {

std::size_t resolve_threads(std::size_t requested) {
  if (requested != 0) return requested;
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<std::size_t>(hc);
}

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t total = resolve_threads(threads);
  workers_.reserve(total - 1);
  for (std::size_t i = 1; i < total; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::drain(const std::function<void(std::size_t)>& body, std::size_t n,
                       StopToken stop) {
  while (!failed_.load(std::memory_order_relaxed)) {
    if (stop.stop_requested()) return;
    const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= n) return;
    try {
      body(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!error_) error_ = std::current_exception();
      failed_.store(true, std::memory_order_relaxed);
      return;
    }
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(std::size_t)>* body = nullptr;
    std::size_t n = 0;
    StopToken job_stop;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_start_.wait(lock, [&] { return stop_ || job_id_ != seen; });
      if (stop_) return;
      seen = job_id_;
      body = body_;
      n = job_n_;
      job_stop = job_stop_;
    }
    drain(*body, n, job_stop);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--active_ == 0) cv_done_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& body) {
  parallel_for(n, body, StopToken{});
}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& body,
                              StopToken stop) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    for (std::size_t i = 0; i < n; ++i) {
      if (stop.stop_requested()) return;
      body(i);
    }
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    body_ = &body;
    job_stop_ = stop;
    job_n_ = n;
    next_.store(0, std::memory_order_relaxed);
    failed_.store(false, std::memory_order_relaxed);
    error_ = nullptr;
    active_ = workers_.size();
    ++job_id_;
  }
  cv_start_.notify_all();
  drain(body, n, stop);
  std::unique_lock<std::mutex> lock(mu_);
  cv_done_.wait(lock, [&] { return active_ == 0; });
  body_ = nullptr;
  job_stop_ = StopToken{};
  if (error_) {
    auto err = error_;
    error_ = nullptr;
    std::rethrow_exception(err);
  }
}

}  // namespace clr::util
