#pragma once
// Minimal leveled logger. Off by default in benches/tests; examples turn on
// Info to narrate the flow.

#include <iostream>
#include <sstream>
#include <string>

namespace clr::util {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Global log threshold; messages below it are dropped.
LogLevel log_level();
void set_log_level(LogLevel level);

/// Emit a log line like "[info] message" to stderr if enabled.
void log_line(LogLevel level, const std::string& message);

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream oss;
  (oss << ... << std::forward<Args>(args));
  return oss.str();
}
}  // namespace detail

template <typename... Args>
void log_debug(Args&&... args) {
  if (log_level() <= LogLevel::Debug) log_line(LogLevel::Debug, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_info(Args&&... args) {
  if (log_level() <= LogLevel::Info) log_line(LogLevel::Info, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_warn(Args&&... args) {
  if (log_level() <= LogLevel::Warn) log_line(LogLevel::Warn, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_error(Args&&... args) {
  if (log_level() <= LogLevel::Error) log_line(LogLevel::Error, detail::concat(std::forward<Args>(args)...));
}

}  // namespace clr::util
