#pragma once
// Deterministic random-number utilities.
//
// Every stochastic component in the library takes an explicit Rng& so that
// experiments are reproducible bit-for-bit from a single seed (DESIGN.md §5.5).

#include <cstdint>
#include <locale>
#include <random>
#include <span>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace clr::util {

/// SplitMix64 — used to expand a single user seed into well-distributed
/// per-component seeds (e.g. one Rng per application size in a sweep).
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  /// Next 64-bit value of the sequence.
  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Current stream state. SplitMix64{state()} continues the sequence
  /// bit-exactly — used by checkpoint/resume (DESIGN.md §5.12).
  constexpr std::uint64_t state() const { return state_; }

 private:
  std::uint64_t state_;
};

/// Seeded pseudo-random generator with convenience samplers.
///
/// Wraps std::mt19937_64; all distribution helpers are members so call sites
/// never instantiate std:: distributions with inconsistent parameter orders.
class Rng {
 public:
  using engine_type = std::mt19937_64;

  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Derive an independent child generator (stable given call order).
  Rng fork() { return Rng(engine_()); }

  engine_type& engine() { return engine_; }

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int uniform_int(int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(engine_);
  }

  /// Uniform std::size_t in [0, n-1]. Requires n > 0.
  std::size_t index(std::size_t n) {
    if (n == 0) throw std::invalid_argument("Rng::index: n must be > 0");
    return std::uniform_int_distribution<std::size_t>(0, n - 1)(engine_);
  }

  /// Uniform real in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Bernoulli trial with success probability p.
  bool chance(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Normal sample with given mean and standard deviation.
  double normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Exponential sample with given mean (mean = 1/rate). Requires mean > 0.
  double exponential_mean(double mean) {
    if (mean <= 0.0) throw std::invalid_argument("exponential_mean: mean must be > 0");
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  /// Uniformly pick an element of a non-empty span.
  template <typename T>
  const T& pick(std::span<const T> items) {
    return items[index(items.size())];
  }

  template <typename T>
  const T& pick(const std::vector<T>& items) {
    return items[index(items.size())];
  }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::swap(items[i - 1], items[index(i)]);
    }
  }

  /// Serialize the full engine state. Restoring it continues the stream
  /// bit-exactly: the distribution helpers construct fresh std::
  /// distributions per call, so the engine is the only hidden state. Uses
  /// the classic locale — mt19937_64's stream operators are locale-sensitive
  /// and checkpoints must be portable across locales.
  std::string save_state() const {
    std::ostringstream out;
    out.imbue(std::locale::classic());
    out << engine_;
    return out.str();
  }

  /// Restore a state produced by save_state(). Throws std::invalid_argument
  /// if the text does not parse as an mt19937_64 state.
  void restore_state(const std::string& text) {
    std::istringstream in(text);
    in.imbue(std::locale::classic());
    engine_type restored;
    in >> restored;
    if (in.fail()) throw std::invalid_argument("Rng::restore_state: malformed engine state");
    engine_ = restored;
  }

 private:
  engine_type engine_;
};

}  // namespace clr::util
