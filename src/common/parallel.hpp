#pragma once
// Minimal fixed-size thread pool with a blocking parallel_for primitive.
//
// The DSE engines are evaluation-bound (DESIGN.md §7): every generation the
// GA produces a batch of chromosomes whose fitness evaluations are pure
// functions with no shared mutable state. The pool maps such batches over a
// fixed set of workers; the calling thread participates, so a pool of size N
// uses N OS threads total (N-1 workers + the caller).
//
// Determinism contract: parallel_for only parallelizes the *execution* of
// body(i); it never reorders observable results as long as body(i) writes
// only to slot i of pre-sized output storage. All random-number draws stay on
// the caller (see DESIGN.md "Parallel evaluation & determinism").

#include <cstddef>
#include <functional>
#include <atomic>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "common/stop.hpp"

namespace clr::util {

/// Resolve a user-facing thread-count knob: 0 means "auto" —
/// std::thread::hardware_concurrency(), at least 1.
std::size_t resolve_threads(std::size_t requested);

class ThreadPool {
 public:
  /// @param threads total concurrency (0 = auto). A pool of size 1 spawns no
  ///        worker threads and runs every job inline on the caller.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total concurrency, including the calling thread.
  std::size_t size() const { return workers_.size() + 1; }

  /// Run body(i) for every i in [0, n), distributing iterations over the
  /// workers and the calling thread; returns when all iterations finished.
  /// The first exception thrown by any iteration is rethrown on the caller
  /// (remaining iterations are skipped, already-started ones complete).
  /// Not reentrant: body must not call parallel_for on the same pool.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

  /// Stop-aware variant: once stop.stop_requested() is observed, no *new*
  /// index is claimed; already-claimed iterations always run to completion.
  /// Because indices are claimed by a monotonic counter, the executed set is
  /// exactly a contiguous prefix [0, k) of the iteration space — callers
  /// that record per-index completion (exp::Runner) stay deterministic. The
  /// caller must check the token afterwards to learn whether the batch was
  /// cut short. Exception semantics match the plain overload.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body,
                    StopToken stop);

 private:
  void worker_loop();
  void drain(const std::function<void(std::size_t)>& body, std::size_t n,
             StopToken stop);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  const std::function<void(std::size_t)>* body_ = nullptr;
  StopToken job_stop_;
  std::size_t job_n_ = 0;
  std::uint64_t job_id_ = 0;
  std::size_t active_ = 0;
  std::atomic<std::size_t> next_{0};
  std::atomic<bool> failed_{false};
  std::exception_ptr error_;
  bool stop_ = false;
};

}  // namespace clr::util
