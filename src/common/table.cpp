#include "common/table.hpp"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace clr::util {

void TextTable::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TextTable::add_row(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string TextTable::fmt(double value, int precision) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << value;
  return oss.str();
}

std::string TextTable::to_string() const {
  std::size_t cols = header_.size();
  for (const auto& r : rows_) cols = std::max(cols, r.size());
  std::vector<std::size_t> widths(cols, 0);
  auto measure = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  };
  measure(header_);
  for (const auto& r : rows_) measure(r);

  auto rule = [&]() {
    std::string s = "+";
    for (std::size_t c = 0; c < cols; ++c) s += std::string(widths[c] + 2, '-') + "+";
    return s + "\n";
  };
  auto line = [&](const std::vector<std::string>& row) {
    std::string s = "|";
    for (std::size_t c = 0; c < cols; ++c) {
      const std::string cell = c < row.size() ? row[c] : std::string{};
      s += " " + cell + std::string(widths[c] - cell.size(), ' ') + " |";
    }
    return s + "\n";
  };

  std::string out;
  if (!title_.empty()) out += title_ + "\n";
  out += rule();
  if (!header_.empty()) {
    out += line(header_);
    out += rule();
  }
  for (const auto& r : rows_) out += line(r);
  out += rule();
  return out;
}

std::string TextTable::to_csv() const {
  auto escape = [](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string s = "\"";
    for (char ch : cell) {
      if (ch == '"') s += "\"\"";
      else s += ch;
    }
    return s + "\"";
  };
  std::string out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out += ",";
      out += escape(row[c]);
    }
    out += "\n";
  };
  if (!header_.empty()) emit(header_);
  for (const auto& r : rows_) emit(r);
  return out;
}

void TextTable::print(std::ostream& os) const { os << to_string(); }

void write_file(const std::string& path, const std::string& contents) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("write_file: cannot open " + path);
  f << contents;
  if (!f) throw std::runtime_error("write_file: write failed for " + path);
}

}  // namespace clr::util
