#pragma once
// Distributions used by the experiment setup of the paper (§5.1):
// bivariate Gaussian for QoS-requirement variation and exponential
// inter-arrival for discrete events; truncated normal as a clamped helper.

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "common/rng.hpp"

namespace clr::util {

/// Bivariate Gaussian with correlation, sampled via Cholesky decomposition.
///
/// The paper uses a bivariate Gaussian to emulate joint variation of the two
/// QoS requirements (makespan bound, reliability floor).
class BivariateGaussian {
 public:
  /// @param rho correlation coefficient in (-1, 1).
  BivariateGaussian(double mean_x, double mean_y, double sd_x, double sd_y, double rho)
      : mean_x_(mean_x), mean_y_(mean_y), sd_x_(sd_x), sd_y_(sd_y), rho_(rho) {
    if (sd_x <= 0.0 || sd_y <= 0.0) {
      throw std::invalid_argument("BivariateGaussian: standard deviations must be > 0");
    }
    if (rho <= -1.0 || rho >= 1.0) {
      throw std::invalid_argument("BivariateGaussian: rho must be in (-1, 1)");
    }
  }

  /// Draw one correlated pair.
  std::pair<double, double> sample(Rng& rng) const {
    const double z1 = rng.normal(0.0, 1.0);
    const double z2 = rng.normal(0.0, 1.0);
    const double x = mean_x_ + sd_x_ * z1;
    const double y = mean_y_ + sd_y_ * (rho_ * z1 + std::sqrt(1.0 - rho_ * rho_) * z2);
    return {x, y};
  }

  double mean_x() const { return mean_x_; }
  double mean_y() const { return mean_y_; }
  double sd_x() const { return sd_x_; }
  double sd_y() const { return sd_y_; }
  double rho() const { return rho_; }

 private:
  double mean_x_, mean_y_, sd_x_, sd_y_, rho_;
};

/// Normal distribution clamped (not re-sampled) to [lo, hi].
class ClampedNormal {
 public:
  ClampedNormal(double mean, double stddev, double lo, double hi)
      : mean_(mean), stddev_(stddev), lo_(lo), hi_(hi) {
    if (lo > hi) throw std::invalid_argument("ClampedNormal: lo > hi");
    if (stddev <= 0.0) throw std::invalid_argument("ClampedNormal: stddev must be > 0");
  }

  double sample(Rng& rng) const {
    return std::clamp(rng.normal(mean_, stddev_), lo_, hi_);
  }

  double lo() const { return lo_; }
  double hi() const { return hi_; }

 private:
  double mean_, stddev_, lo_, hi_;
};

}  // namespace clr::util
