#pragma once
// ASCII table / CSV emission used by the benchmark harnesses to print the
// paper's tables and figure data series.

#include <iosfwd>
#include <string>
#include <vector>

namespace clr::util {

/// Column-aligned ASCII table with an optional title, mirroring the layout of
/// the paper's tables (one header row, one or more value rows).
class TextTable {
 public:
  explicit TextTable(std::string title = {}) : title_(std::move(title)) {}

  /// Set the header row (clears nothing else).
  void set_header(std::vector<std::string> header);

  /// Append a row; it may have fewer cells than the header (padded blank).
  void add_row(std::vector<std::string> row);

  /// Convenience: format doubles with fixed precision.
  static std::string fmt(double value, int precision = 1);

  /// Render with box-drawing '-', '|' separators.
  std::string to_string() const;

  /// Render as CSV (no title line).
  std::string to_csv() const;

  void print(std::ostream& os) const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Write `contents` to `path`, throwing std::runtime_error on failure.
void write_file(const std::string& path, const std::string& contents);

}  // namespace clr::util
