#pragma once
// Minimal double-precision SIMD shim for the batched schedule-evaluation
// kernel (DESIGN.md §5.10). One vector type (VecD, kWidth lanes) and the
// handful of ops the kernel needs; the backend is picked per translation
// unit at preprocessing time:
//
//   CLR_FORCE_SCALAR   -> scalar (CI leg; also any unknown architecture)
//   __AVX2__           -> 4-lane AVX
//   __SSE2__ / x86-64  -> 2-lane SSE2
//   __aarch64__ NEON   -> 2-lane NEON
//
// The batched kernel is additionally compiled twice (portable flags and
// -mavx2) and dispatched at runtime, so a default x86-64 build still uses
// AVX2 on machines that have it — see schedule/batch_kernel.inl.
//
// Semantics contract (what keeps the batch path bit-identical to the scalar
// kernel): every op performs exactly the IEEE-754 operation of its scalar
// counterpart, element-wise, with no fusing and no reassociation.
//   - add/sub/mul/div are the plain IEEE ops (the kernel is built without
//     FMA codegen; never introduce fma here — it changes rounding).
//   - min/max match std::min / std::max *bitwise*, including NaN and signed
//     zero: std::max(a, b) is (a < b) ? b : a, which is x86 maxpd with the
//     operands swapped (maxpd returns its SECOND operand when the compare is
//     false or unordered). NEON vmax/vmin propagate NaN differently, so that
//     backend uses an explicit compare + select.
// tests/common/test_simd.cpp cross-checks every op against the scalar
// fallback on denormal / NaN / ±0 / infinity inputs.

#include <cstddef>

#if !defined(CLR_FORCE_SCALAR) && (defined(__AVX2__) || defined(__SSE2__) || \
                                   defined(__x86_64__) || defined(_M_X64))
#define CLR_SIMD_X86 1
#include <immintrin.h>
#elif !defined(CLR_FORCE_SCALAR) && defined(__aarch64__) && defined(__ARM_NEON)
#define CLR_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace clr::simd {

#if defined(CLR_SIMD_X86) && defined(__AVX2__)

inline constexpr std::size_t kWidth = 4;
inline constexpr const char* kBackend = "avx2";

struct VecD {
  __m256d v;
};

inline VecD load(const double* p) { return {_mm256_loadu_pd(p)}; }
inline void store(double* p, VecD a) { _mm256_storeu_pd(p, a.v); }
inline VecD set1(double x) { return {_mm256_set1_pd(x)}; }
inline VecD add(VecD a, VecD b) { return {_mm256_add_pd(a.v, b.v)}; }
inline VecD sub(VecD a, VecD b) { return {_mm256_sub_pd(a.v, b.v)}; }
inline VecD mul(VecD a, VecD b) { return {_mm256_mul_pd(a.v, b.v)}; }
inline VecD div(VecD a, VecD b) { return {_mm256_div_pd(a.v, b.v)}; }
// Operand order: see the semantics contract above — (a < b) ? b : a.
inline VecD max(VecD a, VecD b) { return {_mm256_max_pd(b.v, a.v)}; }
inline VecD min(VecD a, VecD b) { return {_mm256_min_pd(b.v, a.v)}; }

#elif defined(CLR_SIMD_X86)

inline constexpr std::size_t kWidth = 2;
inline constexpr const char* kBackend = "sse2";

struct VecD {
  __m128d v;
};

inline VecD load(const double* p) { return {_mm_loadu_pd(p)}; }
inline void store(double* p, VecD a) { _mm_storeu_pd(p, a.v); }
inline VecD set1(double x) { return {_mm_set1_pd(x)}; }
inline VecD add(VecD a, VecD b) { return {_mm_add_pd(a.v, b.v)}; }
inline VecD sub(VecD a, VecD b) { return {_mm_sub_pd(a.v, b.v)}; }
inline VecD mul(VecD a, VecD b) { return {_mm_mul_pd(a.v, b.v)}; }
inline VecD div(VecD a, VecD b) { return {_mm_div_pd(a.v, b.v)}; }
inline VecD max(VecD a, VecD b) { return {_mm_max_pd(b.v, a.v)}; }
inline VecD min(VecD a, VecD b) { return {_mm_min_pd(b.v, a.v)}; }

#elif defined(CLR_SIMD_NEON)

inline constexpr std::size_t kWidth = 2;
inline constexpr const char* kBackend = "neon";

struct VecD {
  float64x2_t v;
};

inline VecD load(const double* p) { return {vld1q_f64(p)}; }
inline void store(double* p, VecD a) { vst1q_f64(p, a.v); }
inline VecD set1(double x) { return {vdupq_n_f64(x)}; }
inline VecD add(VecD a, VecD b) { return {vaddq_f64(a.v, b.v)}; }
inline VecD sub(VecD a, VecD b) { return {vsubq_f64(a.v, b.v)}; }
inline VecD mul(VecD a, VecD b) { return {vmulq_f64(a.v, b.v)}; }
inline VecD div(VecD a, VecD b) { return {vdivq_f64(a.v, b.v)}; }
// vmaxq_f64 returns NaN when either input is NaN; std::max does not. Compare
// + bitwise-select reproduces (a < b) ? b : a exactly (an unordered compare
// yields all-zero lanes, selecting a).
inline VecD max(VecD a, VecD b) {
  return {vbslq_f64(vcltq_f64(a.v, b.v), b.v, a.v)};
}
inline VecD min(VecD a, VecD b) {
  return {vbslq_f64(vcltq_f64(b.v, a.v), b.v, a.v)};
}

#else

inline constexpr std::size_t kWidth = 1;
inline constexpr const char* kBackend = "scalar";

struct VecD {
  double v;
};

inline VecD load(const double* p) { return {*p}; }
inline void store(double* p, VecD a) { *p = a.v; }
inline VecD set1(double x) { return {x}; }
inline VecD add(VecD a, VecD b) { return {a.v + b.v}; }
inline VecD sub(VecD a, VecD b) { return {a.v - b.v}; }
inline VecD mul(VecD a, VecD b) { return {a.v * b.v}; }
inline VecD div(VecD a, VecD b) { return {a.v / b.v}; }
inline VecD max(VecD a, VecD b) { return {a.v < b.v ? b.v : a.v}; }
inline VecD min(VecD a, VecD b) { return {b.v < a.v ? b.v : a.v}; }

#endif

/// The reference semantics every backend must reproduce bitwise; the shim
/// unit test runs each op against these on denormal/NaN/boundary inputs.
namespace scalar_ref {
inline double add(double a, double b) { return a + b; }
inline double sub(double a, double b) { return a - b; }
inline double mul(double a, double b) { return a * b; }
inline double div(double a, double b) { return a / b; }
inline double max(double a, double b) { return a < b ? b : a; }
inline double min(double a, double b) { return b < a ? b : a; }
}  // namespace scalar_ref

}  // namespace clr::simd
