#pragma once
// Lightweight observability primitives for the experiment harnesses: named
// monotonic counters and accumulating wall-clock timers behind a registry.
// Counters/timers are lock-free on the hot path (relaxed atomics); the
// registry itself serializes only name resolution, and hands out references
// that stay valid for the registry's lifetime — workers resolve once, then
// update without contention.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace clr::util {

/// Monotonic event counter.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Accumulating wall-clock timer (total elapsed + number of spans).
class Timer {
 public:
  /// RAII span: measures from construction to destruction.
  class Scope {
   public:
    explicit Scope(Timer& timer)
        : timer_(&timer), start_(std::chrono::steady_clock::now()) {}
    ~Scope() {
      const auto elapsed = std::chrono::steady_clock::now() - start_;
      timer_->add_ns(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count()));
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    Timer* timer_;
    std::chrono::steady_clock::time_point start_;
  };

  void add_ns(std::uint64_t ns) {
    ns_.fetch_add(ns, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
  }

  double total_ms() const {
    return static_cast<double>(ns_.load(std::memory_order_relaxed)) / 1e6;
  }
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> ns_{0};
  std::atomic<std::uint64_t> count_{0};
};

/// Point-in-time view of one named metric.
struct CounterSnapshot {
  std::string name;
  std::uint64_t value = 0;
};
struct TimerSnapshot {
  std::string name;
  double total_ms = 0.0;
  std::uint64_t count = 0;
};

/// Thread-safe name -> metric registry. Metrics are created on first access
/// and never removed, so returned references remain valid.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Timer& timer(const std::string& name);

  std::vector<CounterSnapshot> counters() const;
  std::vector<TimerSnapshot> timers() const;

  /// One "name=value" per line, counters then timers, sorted by name.
  std::string to_string() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Timer>> timers_;
};

}  // namespace clr::util
