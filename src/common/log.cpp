#include "common/log.hpp"

#include <atomic>

namespace clr::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Warn};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "debug";
    case LogLevel::Info: return "info";
    case LogLevel::Warn: return "warn";
    case LogLevel::Error: return "error";
    case LogLevel::Off: return "off";
  }
  return "?";
}
}  // namespace

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

void log_line(LogLevel level, const std::string& message) {
  std::cerr << "[" << level_name(level) << "] " << message << "\n";
}

}  // namespace clr::util
