#include "faults/fault_model.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "reliability/techniques.hpp"

namespace clr::flt {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

void FaultParams::validate() const {
  if (transient_rate < 0.0 || !std::isfinite(transient_rate)) {
    throw std::invalid_argument("FaultParams: transient_rate must be finite and >= 0");
  }
  if (pe_mtbf < 0.0 || !std::isfinite(pe_mtbf)) {
    throw std::invalid_argument("FaultParams: pe_mtbf must be finite and >= 0");
  }
  if (recovery_latency < 0.0) {
    throw std::invalid_argument("FaultParams: recovery_latency must be >= 0");
  }
  if (reexec_energy_factor < 0.0) {
    throw std::invalid_argument("FaultParams: reexec_energy_factor must be >= 0");
  }
  if (qos_tolerance < 0.0 || qos_tolerance > 1.0) {
    throw std::invalid_argument("FaultParams: qos_tolerance must be in [0, 1]");
  }
  if (fallback_coverage < 0.0 || fallback_coverage > 1.0) {
    throw std::invalid_argument("FaultParams: fallback_coverage must be in [0, 1]");
  }
}

std::vector<PeFaultProfile> profiles_from_platform(const plat::Platform& platform) {
  std::vector<PeFaultProfile> profiles;
  profiles.reserve(platform.num_pes());
  for (const auto& pe : platform.pes()) {
    const auto& type = platform.pe_type(pe.type);
    profiles.push_back(PeFaultProfile{type.avf, type.beta_aging});
  }
  return profiles;
}

std::vector<PeFaultProfile> uniform_profiles(std::size_t n) {
  return std::vector<PeFaultProfile>(n, PeFaultProfile{});
}

double recovery_probability(const rel::ClrConfig& cfg) {
  const auto& hw = rel::hw_traits(cfg.hw);
  const auto& asw = rel::asw_traits(cfg.asw);
  // Chain: spatially masked by the HW layer, else corrected in place by the
  // ASW layer, else detected by the ASW layer and re-executed when an SSW
  // technique is listening for detections.
  const double reexec = cfg.ssw != rel::SswTechnique::None ? 1.0 : 0.0;
  const double survive_given_upset =
      asw.correct_coverage + (asw.detect_coverage - asw.correct_coverage) * reexec;
  return (1.0 - hw.residual) + hw.residual * survive_given_upset;
}

PlatformHealth::PlatformHealth(const dse::DesignDb& db, std::size_t num_pes)
    : pe_alive_(num_pes, true),
      point_alive_(db.size(), true),
      points_on_pe_(num_pes),
      num_alive_pes_(num_pes),
      num_alive_points_(db.size()) {
  for (std::size_t i = 0; i < db.size(); ++i) {
    for (const auto& a : db.point(i).config.tasks) {
      if (a.pe >= num_pes) {
        throw std::invalid_argument(
            "PlatformHealth: stored point binds a task to PE id beyond the platform");
      }
      auto& bucket = points_on_pe_[a.pe];
      if (bucket.empty() || bucket.back() != i) bucket.push_back(i);
    }
  }
}

void PlatformHealth::kill_pe(plat::PeId pe) {
  if (pe >= pe_alive_.size() || !pe_alive_[pe]) return;
  pe_alive_[pe] = false;
  --num_alive_pes_;
  for (std::size_t point : points_on_pe_[pe]) {
    if (point_alive_[point]) {
      point_alive_[point] = false;
      --num_alive_points_;
    }
  }
}

FaultInjector::FaultInjector(const FaultParams& params, std::vector<PeFaultProfile> profiles,
                             std::uint64_t seed)
    : params_(params), profiles_(std::move(profiles)), rng_(seed) {
  params_.validate();
  if (profiles_.empty()) {
    throw std::invalid_argument("FaultInjector: at least one PE profile is required");
  }
  for (const auto& p : profiles_) {
    if (p.ser_scale < 0.0 || p.weibull_shape <= 0.0) {
      throw std::invalid_argument("FaultInjector: ser_scale must be >= 0, weibull_shape > 0");
    }
  }

  // Fixed sampling order (all permanents, then all first transients, both by
  // ascending PE id) so one seed always yields one timeline.
  permanent_at_.assign(profiles_.size(), kInf);
  if (params_.pe_mtbf > 0.0) {
    for (std::size_t pe = 0; pe < profiles_.size(); ++pe) {
      const double scale = weibull_scale_for_mean(params_.pe_mtbf, profiles_[pe].weibull_shape);
      permanent_at_[pe] = sample_weibull(rng_, profiles_[pe].weibull_shape, scale);
    }
  }
  next_transient_.assign(profiles_.size(), kInf);
  if (params_.transient_rate > 0.0) {
    for (std::size_t pe = 0; pe < profiles_.size(); ++pe) {
      next_transient_[pe] = sample_transient_gap(pe);
    }
  }
}

double FaultInjector::sample_transient_gap(std::size_t pe) {
  const double rate = params_.transient_rate * profiles_[pe].ser_scale;
  if (rate <= 0.0) return kInf;
  return rng_.exponential_mean(1.0 / rate);
}

double FaultInjector::next_time() const {
  double best = kInf;
  for (std::size_t pe = 0; pe < profiles_.size(); ++pe) {
    best = std::min(best, std::min(permanent_at_[pe], next_transient_[pe]));
  }
  return best;
}

FaultEvent FaultInjector::pop() {
  const double when = next_time();
  if (when == kInf) throw std::logic_error("FaultInjector::pop: no pending fault");

  // Permanent faults win ties (the PE dies before any coincident upset on it
  // could matter); among equals the lowest PE id goes first.
  for (std::size_t pe = 0; pe < profiles_.size(); ++pe) {
    if (permanent_at_[pe] == when) {
      permanent_at_[pe] = kInf;
      next_transient_[pe] = kInf;  // a dead PE emits no further soft errors
      return FaultEvent{when, static_cast<plat::PeId>(pe), FaultKind::Permanent};
    }
  }
  for (std::size_t pe = 0; pe < profiles_.size(); ++pe) {
    if (next_transient_[pe] == when) {
      next_transient_[pe] = when + sample_transient_gap(pe);
      return FaultEvent{when, static_cast<plat::PeId>(pe), FaultKind::Transient};
    }
  }
  throw std::logic_error("FaultInjector::pop: inconsistent timeline");
}

double FaultInjector::weibull_scale_for_mean(double mean, double shape) {
  if (mean <= 0.0 || shape <= 0.0) {
    throw std::invalid_argument("weibull_scale_for_mean: mean and shape must be > 0");
  }
  return mean / std::tgamma(1.0 + 1.0 / shape);
}

double FaultInjector::sample_weibull(util::Rng& rng, double shape, double scale) {
  // Inverse CDF: t = scale * (-ln(1 - u))^(1/shape); u in [0, 1) keeps the
  // log argument strictly positive.
  const double u = rng.uniform();
  return scale * std::pow(-std::log(1.0 - u), 1.0 / shape);
}

}  // namespace clr::flt
