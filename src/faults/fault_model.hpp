#pragma once
// Run-time fault-injection subsystem (ISSUE 3): merges the two fault classes
// the cross-layer reliability literature says must be modeled *jointly*
// (Aliee et al., PAPERS.md) into the discrete-event timeline of the run-time
// adaptation loop:
//
//   - transient soft errors: per-PE Poisson arrivals whose rate is the base
//     environment SER scaled by each PE's architectural vulnerability factor
//     (the Table-2 heterogeneity axis), survived or not according to the
//     active CLR technique's detection/recovery coverage;
//   - permanent wear-out faults: one Weibull-distributed death time per PE
//     (shape = the PE type's aging profile βp, scale calibrated so the mean
//     equals the configured MTBF), after which the PE — and every stored
//     design point bound to it — is gone for the rest of the run.
//
// This is deliberately a *timeline-level* model, distinct from
// sim::FaultInjector which dices per-attempt SEUs inside one application
// execution to validate the analytical Table-2/3 metrics. Here faults strike
// the platform underneath the adaptation policy, shrinking the feasible
// design-point set (PlatformHealth) and forcing the simulator's degraded-mode
// fallback chain (see runtime/simulator.hpp).
//
// Determinism contract (DESIGN.md §5.6): all fault randomness flows through
// one dedicated Rng seeded per replication, separate from the QoS stream —
// with rates = 0 the injector draws nothing and the simulation is bit-for-bit
// identical to a fault-free run at any job count.

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "dse/design_db.hpp"
#include "platform/platform.hpp"
#include "reliability/clr_config.hpp"

namespace clr::flt {

/// Per-PE fault characteristics (the heterogeneity factors of §3.1).
struct PeFaultProfile {
  /// Soft-error-rate multiplier for this PE (the platform model's AVF — the
  /// fraction of raw upsets the micro-architecture lets through).
  double ser_scale = 1.0;
  /// Weibull shape of the PE's wear-out process (the PE type's βp).
  double weibull_shape = 2.0;
};

/// Knobs of the run-time fault environment. All rates are per application
/// execution cycle, the time unit of the runtime simulator. Both classes
/// default to off, which keeps every pre-existing experiment bit-identical.
struct FaultParams {
  /// Base transient soft-error arrival rate per PE per cycle (scaled by each
  /// PE's ser_scale). 0 disables transient injection.
  double transient_rate = 0.0;
  /// Mean cycles to permanent wear-out per PE (Weibull mean). 0 disables
  /// permanent faults.
  double pe_mtbf = 0.0;
  /// Service interruption charged per *recovered* transient fault (detection
  /// + state restore + re-execution), in cycles of downtime.
  double recovery_latency = 25.0;
  /// Energy charged per recovered transient, as a multiple of the active
  /// point's per-cycle energy over the recovery latency (re-execution work).
  double reexec_energy_factor = 1.0;
  /// Tier-2 degraded-mode band: after a permanent fault, a surviving point
  /// whose relative QoS violation is within this tolerance is acceptable as a
  /// relaxed-QoS fallback; beyond it the system drops to safe mode.
  double qos_tolerance = 0.10;
  /// Recovery probability used when the scenario carries no CLR space to
  /// look the struck task's configuration up in. Defaults to 0 — an
  /// unprotected task (HW None, ASW None) recovers nothing.
  double fallback_coverage = 0.0;

  bool enabled() const { return transient_rate > 0.0 || pe_mtbf > 0.0; }

  /// Throws std::invalid_argument on out-of-range values.
  void validate() const;
};

/// A full fault scenario for one simulation run: the environment knobs, the
/// per-PE profiles (index = PeId) and the dedicated fault-stream seed.
struct FaultScenario {
  FaultParams params;
  /// One profile per PE; empty lets the simulator substitute uniform
  /// profiles sized to the database's largest referenced PE id.
  std::vector<PeFaultProfile> profiles;
  std::uint64_t seed = 0;
  /// CLR configuration space the stored points' clr_index values refer to —
  /// the lookup that gives each struck task its recovery coverage. Not owned;
  /// nullptr falls back to FaultParams::fallback_coverage for every task.
  const rel::ClrSpace* clr_space = nullptr;
};

/// What kind of fault (if any) an event carries.
enum class FaultKind : std::uint8_t { None = 0, Transient, Permanent };

/// One sampled fault arrival on the runtime timeline.
struct FaultEvent {
  double time = 0.0;
  plat::PeId pe = 0;
  FaultKind kind = FaultKind::None;
};

/// Per-PE fault profiles straight from a platform model (AVF -> ser_scale,
/// beta_aging -> weibull_shape), indexed by PeId.
std::vector<PeFaultProfile> profiles_from_platform(const plat::Platform& platform);

/// `n` identical default profiles (tests, databases without a platform).
std::vector<PeFaultProfile> uniform_profiles(std::size_t n);

/// Probability that a transient fault striking a task protected by `cfg` is
/// recovered (result still correct): spatial masking by the HW layer,
/// in-place correction by the ASW layer, or detection by the ASW layer
/// followed by re-execution when an SSW technique (retry/checkpoint) is
/// present to act on it. Mirrors the masking chain of sim::FaultInjector.
double recovery_probability(const rel::ClrConfig& cfg);

/// Mutable platform/database health state for one simulation run: which PEs
/// are still alive, and — derived — which stored design points are still
/// executable (a point dies with the first of its PEs).
class PlatformHealth {
 public:
  /// Throws std::invalid_argument when a stored point binds a task to a PE
  /// id >= num_pes.
  PlatformHealth(const dse::DesignDb& db, std::size_t num_pes);

  std::size_t num_pes() const { return pe_alive_.size(); }
  bool pe_alive(plat::PeId pe) const { return pe_alive_.at(pe); }
  std::size_t num_alive_pes() const { return num_alive_pes_; }
  bool all_pes_alive() const { return num_alive_pes_ == pe_alive_.size(); }

  bool point_alive(std::size_t point) const { return point_alive_.at(point); }
  std::size_t num_alive_points() const { return num_alive_points_; }
  /// Alive-mask over stored points — the feasibility filter the adaptation
  /// policies and DrcMatrix lookups consume.
  const std::vector<bool>& point_mask() const { return point_alive_; }

  /// Permanently retire a PE and every stored point bound to it. Idempotent.
  void kill_pe(plat::PeId pe);

 private:
  std::vector<bool> pe_alive_;
  std::vector<bool> point_alive_;
  /// pe -> indices of stored points with at least one task on that PE.
  std::vector<std::vector<std::size_t>> points_on_pe_;
  std::size_t num_alive_pes_ = 0;
  std::size_t num_alive_points_ = 0;
};

/// Deterministic merged fault timeline: per-PE exponential transient arrivals
/// plus one pre-sampled Weibull permanent death time per PE. All sampling
/// uses the injector's own Rng in a fixed order, so one seed reproduces one
/// timeline regardless of thread count or caller interleaving.
class FaultInjector {
 public:
  FaultInjector(const FaultParams& params, std::vector<PeFaultProfile> profiles,
                std::uint64_t seed);

  /// Time of the earliest pending fault (+infinity when none will ever fire).
  double next_time() const;

  /// Consume and return the earliest pending fault. Permanent faults retire
  /// the PE inside the injector (no further transients on it); transient
  /// faults reschedule that PE's next arrival. Ties break permanent-first,
  /// then lowest PE id. Throws std::logic_error when nothing is pending.
  FaultEvent pop();

  /// The dedicated fault-stream Rng — also used by the simulator for the
  /// struck-task choice and the coverage dice, so the whole fault story
  /// derives from one seed.
  util::Rng& rng() { return rng_; }

  const FaultParams& params() const { return params_; }
  std::size_t num_pes() const { return profiles_.size(); }

  /// Weibull scale parameter such that the distribution's mean equals
  /// `mean` for the given shape (mean = scale * Gamma(1 + 1/shape)).
  static double weibull_scale_for_mean(double mean, double shape);

  /// Inverse-CDF Weibull sample.
  static double sample_weibull(util::Rng& rng, double shape, double scale);

 private:
  double sample_transient_gap(std::size_t pe);

  FaultParams params_;
  std::vector<PeFaultProfile> profiles_;
  util::Rng rng_;
  std::vector<double> next_transient_;  ///< per PE; +inf when disabled/dead
  std::vector<double> permanent_at_;    ///< per PE; +inf when disabled/spent
};

}  // namespace clr::flt
