#include "experiments/session.hpp"

#include <optional>
#include <stdexcept>
#include <utility>

#include "io/checkpoint.hpp"

namespace clr::exp {

namespace {

void hash_bytes(std::uint64_t& h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
}

template <typename T>
void hash_value(std::uint64_t& h, T v) {
  hash_bytes(h, &v, sizeof v);
}

void hash_ga(std::uint64_t& h, const moea::GaParams& ga) {
  hash_value<std::uint64_t>(h, ga.population);
  hash_value<std::uint64_t>(h, ga.generations);
  hash_value<double>(h, ga.crossover_prob);
  hash_value<double>(h, ga.mutation_prob);
  hash_value<std::uint64_t>(h, ga.tournament_size);
  // ga.threads deliberately excluded: thread count never affects results.
}

void validate(const SessionControl& control) {
  if (control.checkpoint_every == 0) {
    throw std::invalid_argument("session: checkpoint_every must be >= 1");
  }
  if (control.resume && control.checkpoint_path.empty()) {
    throw std::invalid_argument("session: resume requires a checkpoint path");
  }
}

}  // namespace

std::uint64_t explore_param_hash(const AppInstance& app, const FlowParams& params,
                                 std::uint64_t flow_seed) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  hash_value<std::uint64_t>(h, app.graph().num_tasks());
  hash_value<std::uint64_t>(h, app.graph().num_edges());
  hash_value<std::uint64_t>(h, app.platform().num_pes());
  hash_value<std::uint64_t>(h, app.platform().num_pe_types());
  hash_value<std::uint64_t>(h, app.clr_space().size());
  hash_value<std::uint64_t>(h, flow_seed);
  hash_value<std::uint32_t>(h, static_cast<std::uint32_t>(params.mode));
  hash_value<std::uint64_t>(h, params.spec_samples);
  hash_value<double>(h, params.makespan_quantile);
  hash_value<double>(h, params.func_rel_quantile);
  hash_ga(h, params.dse.base_ga);
  hash_ga(h, params.dse.red_ga);
  hash_value<double>(h, params.dse.tol_makespan_band);
  hash_value<double>(h, params.dse.tol_func_rel_band);
  hash_value<double>(h, params.dse.tol_energy);
  hash_value<std::uint64_t>(h, params.dse.extras_per_seed);
  hash_value<std::uint64_t>(h, params.dse.max_red_seeds);
  hash_value<std::uint64_t>(h, params.dse.calibration_samples);
  hash_value<std::uint8_t>(h, params.dse.heft_seeding ? 1 : 0);
  hash_value<std::uint64_t>(h, params.dse.max_base_points);
  // dse.threads, dse.batched_eval and dse.eval_cache_capacity deliberately
  // excluded: all three are bit-identical performance knobs (DESIGN.md §5.6,
  // §5.10), so a checkpoint taken at --jobs 8 resumes fine at --jobs 1.
  return h;
}

ExploreOutcome run_explore_session(const AppInstance& app, const FlowParams& params,
                                   std::uint64_t flow_seed, const SessionControl& control) {
  validate(control);
  const std::uint64_t param_hash = explore_param_hash(app, params, flow_seed);

  // The session's own stop source merges every stop signal: the external
  // token (signals, deadlines) is forwarded at each boundary, the step
  // budget arms it directly. Engines only ever see this merged token.
  util::StopSource session_stop;
  util::RunBudget budget(session_stop, control.step_budget);

  std::optional<io::CheckpointStore> store;
  if (!control.checkpoint_path.empty()) store.emplace(control.checkpoint_path);

  std::optional<io::ExploreCheckpoint> restored;
  if (control.resume && store) {
    if (auto snapshot = store->load_newest()) {
      io::ExploreCheckpoint c = io::decode_explore_checkpoint(snapshot->view());
      if (c.param_hash != param_hash) {
        throw std::runtime_error(
            "explore resume: the checkpoint was taken under different parameters (hash " +
            std::to_string(c.param_hash) + ", this run computes " + std::to_string(param_hash) +
            ")");
      }
      restored = std::move(c);
    }
    // No loadable checkpoint: start fresh, so the first run and every
    // resumed run share one command line.
  }

  ExploreOutcome out;
  out.resumed = restored.has_value();

  util::Rng rng(flow_seed);
  FlowResult flow;
  if (restored) {
    // The spec was derived from RNG draws that precede every saved boundary;
    // restoring it (instead of re-deriving) keeps the fresh Rng untouched —
    // the GA resume path restores the true stream state anyway.
    flow.spec.max_makespan = restored->spec_max_makespan;
    flow.spec.min_func_rel = restored->spec_min_func_rel;
  } else {
    flow.spec = derive_spec(app.context(), params.mode, params.spec_samples,
                            params.makespan_quantile, params.func_rel_quantile, rng);
  }

  dse::MappingProblem problem(app.context(), flow.spec, params.mode);
  recfg::ReconfigModel reconfig(app.platform(), app.impls());
  dse::DesignTimeDse dse_flow(problem, reconfig, params.dse);

  // Shared boundary bookkeeping: count the step, fold in external stop and
  // budget, then decide whether this boundary becomes a durable checkpoint
  // (every Nth, and always the one we stop on).
  auto boundary = [&](io::ExploreCheckpoint&& c) {
    out.steps += 1;
    budget.step();
    if (control.stop.stop_requested()) session_stop.request_stop(control.stop.reason());
    const bool stopping = session_stop.stop_requested();
    if (store && (stopping || out.steps % control.checkpoint_every == 0)) {
      c.sequence = store->next_sequence();
      c.param_hash = param_hash;
      c.spec_max_makespan = flow.spec.max_makespan;
      c.spec_min_func_rel = flow.spec.min_func_rel;
      store->save(io::serialize_explore_checkpoint(c));
      out.checkpoints_written += 1;
    }
  };

  // Stage 1: BaseD. Skipped entirely when the checkpoint is already in the
  // ReD stage (the finished BaseD database travels in the checkpoint).
  bool base_complete = true;
  if (restored && restored->stage == 1) {
    flow.based = restored->based;
  } else {
    dse::BaseControl base_control;
    base_control.stop = session_stop.token();
    dse::BaseProgress base_resume;
    if (restored) {
      base_resume.ref = restored->ref;
      base_resume.scale = restored->scale;
      base_resume.ga = restored->ga;
      base_control.resume = &base_resume;
    }
    base_control.on_boundary = [&](const dse::BaseProgress& p) {
      io::ExploreCheckpoint c;
      c.stage = 0;
      c.ref = p.ref;
      c.scale = p.scale;
      c.ga = p.ga;
      boundary(std::move(c));
    };
    dse::StageOutcome base = dse_flow.run_base_resumable(rng, base_control);
    flow.based = std::move(base.db);
    base_complete = base.complete;
  }
  if (!base_complete) {
    out.flow = std::move(flow);
    out.complete = false;
    out.stop_reason = session_stop.reason();
    return out;
  }
  if (flow.based.empty()) {
    throw std::runtime_error("run_explore_session: design-time DSE found no feasible point");
  }

  // Stage 2: ReD.
  dse::RedControl red_control;
  red_control.stop = session_stop.token();
  dse::RedProgress red_resume;
  if (restored && restored->stage == 1) {
    red_resume.seed_pos = static_cast<std::size_t>(restored->red_seed_pos);
    red_resume.ga = restored->ga;
    red_resume.red = restored->red;
    red_control.resume = &red_resume;
  }
  red_control.on_boundary = [&](const dse::RedProgress& p) {
    io::ExploreCheckpoint c;
    c.stage = 1;
    c.ga = p.ga;
    c.red_seed_pos = p.seed_pos;
    c.based = flow.based;
    c.red = p.red;
    boundary(std::move(c));
  };
  dse::StageOutcome red = dse_flow.run_red_resumable(flow.based, rng, red_control);
  flow.red = std::move(red.db);
  out.complete = red.complete;
  out.flow = std::move(flow);
  out.stop_reason = session_stop.reason();
  return out;
}

RunnerOutcome run_runner_session(Runner& runner, const SessionControl& control) {
  validate(control);
  const std::uint64_t grid_hash = runner.grid_hash();

  util::StopSource session_stop;
  util::RunBudget budget(session_stop, control.step_budget);

  std::optional<io::CheckpointStore> store;
  if (!control.checkpoint_path.empty()) store.emplace(control.checkpoint_path);

  RunnerOutcome out;
  RunnerProgress restored;
  RunnerControl runner_control;
  runner_control.stop = session_stop.token();
  // One wave of checkpoint_every jobs between boundaries: the runner's
  // batch size IS the checkpoint cadence.
  runner_control.batch_size = control.checkpoint_every;

  if (control.resume && store) {
    if (auto snapshot = store->load_newest()) {
      io::RunnerCheckpoint c = io::decode_runner_checkpoint(snapshot->view());
      if (c.grid_hash != grid_hash) {
        throw std::runtime_error(
            "runner resume: the checkpoint was taken for a different grid (hash " +
            std::to_string(c.grid_hash) + ", this grid computes " + std::to_string(grid_hash) +
            ")");
      }
      restored.grid_hash = c.grid_hash;
      restored.replications = static_cast<std::size_t>(c.replications);
      restored.done = std::move(c.done);
      restored.runs = std::move(c.runs);
      runner_control.resume = &restored;
      out.resumed = true;
    }
  }

  std::size_t checkpointed_jobs = out.resumed ? restored.jobs_done() : 0;
  runner_control.on_batch = [&](const RunnerProgress& progress) {
    out.steps += 1;
    budget.step();
    if (control.stop.stop_requested()) session_stop.request_stop(control.stop.reason());
    // Every batch is a checkpoint boundary; skip the write only when no new
    // job finished (a stop can interrupt a wave before any claim).
    if (store && progress.jobs_done() != checkpointed_jobs) {
      io::RunnerCheckpoint c;
      c.sequence = store->next_sequence();
      c.grid_hash = progress.grid_hash;
      c.replications = progress.replications;
      c.done = progress.done;
      c.runs = progress.runs;
      store->save(io::serialize_runner_checkpoint(c));
      out.checkpoints_written += 1;
      checkpointed_jobs = progress.jobs_done();
    }
  };

  out.run = runner.run(runner_control);
  out.stop_reason = session_stop.reason();
  return out;
}

}  // namespace clr::exp
