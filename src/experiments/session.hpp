#pragma once
// Checkpointed run sessions (DESIGN.md §5.12): the layer between the
// resumable engines (dse::DesignTimeDse stages, exp::Runner batches) and the
// on-disk A/B checkpoint store (io/checkpoint.hpp). The engines report
// restartable state at their natural boundaries (GA generations, job
// batches); the session decides WHEN a boundary becomes a durable checkpoint
// (every N boundaries, and always when stopping), validates resume identity
// (param/grid hashes), and folds budget limits into the cooperative stop.
//
// Determinism contract: a run killed at any instant and resumed from its
// newest good checkpoint produces bit-for-bit the uninterrupted run's
// results, at any thread count. Proven by tests/robustness/test_kill_resume.

#include <cstdint>
#include <string>

#include "common/stop.hpp"
#include "experiments/flow.hpp"
#include "experiments/runner.hpp"

namespace clr::exp {

/// Session knobs shared by the explore and runner sessions.
struct SessionControl {
  /// External cooperative stop (signals, deadlines). The session forwards it
  /// into the engines and also stops on its own budget.
  util::StopToken stop;
  /// Checkpoint base path; slots `<path>.a` / `<path>.b` hold the A/B pair.
  /// Empty = no checkpointing (the session still honors stop/budget).
  std::string checkpoint_path;
  /// Checkpoint every N boundaries (explore: GA generations; runner: job
  /// batches of this many jobs). Must be >= 1.
  std::size_t checkpoint_every = 1;
  /// Load the newest good checkpoint and continue from it. Without a
  /// loadable checkpoint the session starts fresh (first run and resumed
  /// run share one command line).
  bool resume = false;
  /// Stop after this many boundaries (0 = unlimited) — the deterministic
  /// interruption lever for tests and incremental runs.
  std::uint64_t step_budget = 0;
};

/// What a session did, beyond the engine outcome itself.
struct ExploreOutcome {
  FlowResult flow;
  /// False when the run was cut short (signal/deadline/budget); `flow` then
  /// holds the partial databases accumulated so far.
  bool complete = true;
  /// True when the run continued from a loaded checkpoint.
  bool resumed = false;
  /// Boundaries passed this session (not counting restored ones).
  std::uint64_t steps = 0;
  std::uint64_t checkpoints_written = 0;
  util::StopReason stop_reason = util::StopReason::None;
};

/// FNV-1a over every result-affecting explore parameter: the app's shape
/// (graph/platform/CLR-space sizes), the flow seed and both GA configs.
/// Deliberately excludes thread counts and the batched_eval toggle — they
/// never affect results (DESIGN.md §5.6), so a checkpoint taken at --jobs 8
/// resumes fine at --jobs 1.
std::uint64_t explore_param_hash(const AppInstance& app, const FlowParams& params,
                                 std::uint64_t flow_seed);

/// Run the design flow under session control. `flow_seed` seeds the flow's
/// master Rng (fresh runs only; resumed runs restore the stream from the
/// checkpoint). Throws std::runtime_error when resuming against a
/// checkpoint whose param hash mismatches.
ExploreOutcome run_explore_session(const AppInstance& app, const FlowParams& params,
                                   std::uint64_t flow_seed, const SessionControl& control);

struct RunnerOutcome {
  RunOutcome run;
  bool resumed = false;
  std::uint64_t steps = 0;
  std::uint64_t checkpoints_written = 0;
  util::StopReason stop_reason = util::StopReason::None;
};

/// Run a prepared (cells already added) Runner grid under session control.
/// checkpoint_every is the job-batch size between checkpoints.
RunnerOutcome run_runner_session(Runner& runner, const SessionControl& control);

}  // namespace clr::exp
