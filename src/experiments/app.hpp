#pragma once
// Experiment application instances: bundles one task graph with the platform,
// implementation sets, CLR space and fault model, and owns their lifetimes so
// an EvalContext can point into them safely.

#include <cstdint>
#include <memory>

#include "common/rng.hpp"
#include "platform/platform.hpp"
#include "reliability/clr_config.hpp"
#include "reliability/implementation.hpp"
#include "reliability/metrics.hpp"
#include "schedule/scheduler.hpp"
#include "taskgraph/generator.hpp"
#include "taskgraph/graph.hpp"

namespace clr::exp {

/// Immovable bundle of everything a design-space evaluation needs.
class AppInstance {
 public:
  AppInstance(tg::TaskGraph graph, plat::Platform platform, rel::ClrGranularity granularity,
              rel::FaultModel fault, rel::ImplGenParams impl_params, std::uint64_t impl_seed);

  /// Same, with an explicit (custom) CLR configuration space.
  AppInstance(tg::TaskGraph graph, plat::Platform platform, rel::ClrSpace clr_space,
              rel::FaultModel fault, rel::ImplGenParams impl_params, std::uint64_t impl_seed);

  AppInstance(const AppInstance&) = delete;
  AppInstance& operator=(const AppInstance&) = delete;

  const tg::TaskGraph& graph() const { return graph_; }
  const plat::Platform& platform() const { return platform_; }
  const rel::ImplementationSet& impls() const { return impls_; }
  const rel::ClrSpace& clr_space() const { return clr_space_; }

  /// Evaluation context wired to this instance's members (valid for the
  /// lifetime of the AppInstance).
  const sched::EvalContext& context() const { return ctx_; }

 private:
  tg::TaskGraph graph_;
  plat::Platform platform_;
  rel::ClrSpace clr_space_;
  rel::ImplementationSet impls_;
  sched::EvalContext ctx_;
};

/// Synthetic TGFF-style application of §5.1 on the default 5-PE/3-PRR
/// HMPSoC. Deterministic per (num_tasks, seed).
std::unique_ptr<AppInstance> make_synthetic_app(
    std::size_t num_tasks, std::uint64_t seed,
    rel::ClrGranularity granularity = rel::ClrGranularity::Full);

/// Synthetic application with a caller-supplied CLR space (layer-ablation
/// studies). Graph/implementations are identical to make_synthetic_app for
/// the same (num_tasks, seed).
std::unique_ptr<AppInstance> make_synthetic_app_with_space(std::size_t num_tasks,
                                                           std::uint64_t seed,
                                                           rel::ClrSpace clr_space);

/// The Fig. 2b JPEG-encoder application on the default platform.
std::unique_ptr<AppInstance> make_jpeg_app(
    std::uint64_t seed, rel::ClrGranularity granularity = rel::ClrGranularity::Full);

/// The master experiment seed; per-application seeds are derived from it so
/// every bench/test sweep is reproducible.
inline constexpr std::uint64_t kMasterSeed = 0xC1A0D5E2019ULL;

/// Per-(experiment, num_tasks) derived seed.
std::uint64_t derive_seed(std::uint64_t experiment_tag, std::size_t num_tasks);

}  // namespace clr::exp
