#include "experiments/runner.hpp"

#include <chrono>
#include <map>
#include <memory>
#include <stdexcept>
#include <utility>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "trace/trace.hpp"

namespace clr::exp {

namespace {

const char* policy_name(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::Baseline: return "baseline";
    case PolicyKind::Ura: return "ura";
    case PolicyKind::Aura: return "aura";
    case PolicyKind::Mdp: return "mdp";
  }
  return "unknown";
}

// FNV-1a64 accumulation over raw bytes (same constants as the snapshot
// checksum and hash_configuration).
void hash_bytes(std::uint64_t& h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
}

template <typename T>
void hash_value(std::uint64_t& h, T v) {
  hash_bytes(h, &v, sizeof v);
}

}  // namespace

ReplicatedStats replicate_stats(const std::vector<rt::RuntimeStats>& runs) {
  util::RunningStats events, reconfigs, infeasible, energy, total_cost, avg_cost, max_drc;
  util::RunningStats violation_time, transients, unrecovered, permanents, evacuations,
      safe_entries, downtime, availability, mttr;
  util::RunningStats stall, hidden, hits, misses, service_avail;
  for (const auto& r : runs) {
    events.add(static_cast<double>(r.num_events));
    reconfigs.add(static_cast<double>(r.num_reconfigs));
    infeasible.add(static_cast<double>(r.num_infeasible_events));
    energy.add(r.avg_energy);
    total_cost.add(r.total_reconfig_cost);
    avg_cost.add(r.avg_reconfig_cost);
    max_drc.add(r.max_drc);
    violation_time.add(r.qos_violation_time);
    transients.add(static_cast<double>(r.num_transient_faults));
    unrecovered.add(static_cast<double>(r.num_unrecovered_failures));
    permanents.add(static_cast<double>(r.num_permanent_faults));
    evacuations.add(static_cast<double>(r.num_evacuations));
    safe_entries.add(static_cast<double>(r.num_safe_mode_entries));
    downtime.add(r.downtime);
    availability.add(r.availability);
    mttr.add(r.mttr);
    stall.add(r.reconfig_stall_time);
    hidden.add(r.prefetch_hidden_time);
    hits.add(static_cast<double>(r.prefetch_hits));
    misses.add(static_cast<double>(r.prefetch_misses));
    service_avail.add(r.service_availability);
  }
  ReplicatedStats s;
  s.replications = runs.size();
  s.num_events = util::summarize(events);
  s.num_reconfigs = util::summarize(reconfigs);
  s.num_infeasible_events = util::summarize(infeasible);
  s.avg_energy = util::summarize(energy);
  s.total_reconfig_cost = util::summarize(total_cost);
  s.avg_reconfig_cost = util::summarize(avg_cost);
  s.max_drc = util::summarize(max_drc);
  s.qos_violation_time = util::summarize(violation_time);
  s.num_transient_faults = util::summarize(transients);
  s.num_unrecovered_failures = util::summarize(unrecovered);
  s.num_permanent_faults = util::summarize(permanents);
  s.num_evacuations = util::summarize(evacuations);
  s.num_safe_mode_entries = util::summarize(safe_entries);
  s.downtime = util::summarize(downtime);
  s.availability = util::summarize(availability);
  s.mttr = util::summarize(mttr);
  s.reconfig_stall_time = util::summarize(stall);
  s.prefetch_hidden_time = util::summarize(hidden);
  s.prefetch_hits = util::summarize(hits);
  s.prefetch_misses = util::summarize(misses);
  s.service_availability = util::summarize(service_avail);
  return s;
}

std::uint64_t replication_seed(std::uint64_t base, std::size_t rep) {
  util::SplitMix64 mix(base + 0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(rep));
  return mix.next();
}

std::size_t Runner::add_cell(RunnerCell cell) {
  if (cell.db == nullptr) throw std::invalid_argument("Runner::add_cell: db is required");
  if (cell.app == nullptr && cell.drc == nullptr) {
    throw std::invalid_argument("Runner::add_cell: either app or an explicit drc is required");
  }
  if (cell.drc != nullptr && cell.drc->size() != cell.db->size()) {
    throw std::invalid_argument("Runner::add_cell: drc size must match db size");
  }
  metrics_.counter("runner.cells").add();
  cells_.push_back(std::move(cell));
  return cells_.size() - 1;
}

std::vector<CellResult> Runner::run() { return run(RunnerControl{}).results; }

std::uint64_t Runner::grid_hash() const {
  const std::size_t reps = std::max<std::size_t>(config_.replications, 1);
  std::uint64_t h = 0xcbf29ce484222325ULL;
  hash_value<std::uint64_t>(h, reps);
  hash_value<std::uint64_t>(h, cells_.size());
  for (const auto& cell : cells_) {
    hash_value<std::uint64_t>(h, cell.label.size());
    hash_bytes(h, cell.label.data(), cell.label.size());
    hash_value<std::uint64_t>(h, cell.seed);
    hash_value<std::uint32_t>(h, static_cast<std::uint32_t>(cell.params.kind));
    hash_value<double>(h, cell.params.p_rc);
    hash_value<double>(h, cell.params.pretrain_cycles);
    hash_value<std::uint64_t>(h, cell.params.pretrain_sweeps);
    hash_value<std::uint8_t>(h, cell.params.pretrain ? 1 : 0);
    hash_value<double>(h, cell.params.sim.total_cycles);
    hash_value<double>(h, cell.params.sim.episode_cycles);
    hash_value<double>(h, cell.params.faults.transient_rate);
    hash_value<double>(h, cell.params.faults.pe_mtbf);
    hash_value<double>(h, cell.params.faults.recovery_latency);
    hash_value<double>(h, cell.params.faults.reexec_energy_factor);
    hash_value<double>(h, cell.params.faults.qos_tolerance);
    hash_value<double>(h, cell.params.faults.fallback_coverage);
    hash_value<std::uint64_t>(h, cell.db->size());
    hash_value<double>(h, cell.ranges.energy_min);
    hash_value<double>(h, cell.ranges.energy_max);
    hash_value<double>(h, cell.ranges.makespan_min);
    hash_value<double>(h, cell.ranges.makespan_max);
    hash_value<double>(h, cell.ranges.func_rel_min);
    hash_value<double>(h, cell.ranges.func_rel_max);
    // New-policy knobs only enter the hash when they are actually in play,
    // so every pre-existing grid keeps its historical hash (checkpoints
    // recorded before this version still resume).
    if (cell.params.kind == PolicyKind::Mdp) {
      hash_value<std::uint64_t>(h, cell.params.mdp.makespan_bins);
      hash_value<std::uint64_t>(h, cell.params.mdp.func_rel_bins);
      hash_value<double>(h, cell.params.mdp.gamma);
      hash_value<double>(h, cell.params.mdp.tolerance);
      hash_value<std::uint64_t>(h, cell.params.mdp.max_sweeps);
    }
    if (cell.params.prefetch) {
      hash_value<std::uint8_t>(h, 1);
      hash_value<std::uint64_t>(h, cell.params.prefetch_params.min_observations);
    }
  }
  return h;
}

RunOutcome Runner::run(const RunnerControl& control) {
  const std::size_t reps = std::max<std::size_t>(config_.replications, 1);
  const std::size_t total = cells_.size() * reps;
  const std::uint64_t identity = grid_hash();

  // Flat per-job state (job = cell·reps + rep). A resume restores the
  // completed jobs' flags and stats; everything else is recomputed.
  std::vector<std::uint8_t> done(total, 0);
  std::vector<rt::RuntimeStats> stats(total);
  if (control.resume != nullptr) {
    const RunnerProgress& p = *control.resume;
    if (p.grid_hash != identity) {
      throw std::invalid_argument(
          "Runner::run: resume progress was recorded for a different grid (hash mismatch)");
    }
    if (p.replications != reps) {
      throw std::invalid_argument("Runner::run: resume progress has " +
                                  std::to_string(p.replications) + " replications, grid has " +
                                  std::to_string(reps));
    }
    if (p.done.size() != total || p.runs.size() != total) {
      throw std::invalid_argument("Runner::run: resume progress spans " +
                                  std::to_string(p.done.size()) + " jobs, grid has " +
                                  std::to_string(total));
    }
    done = p.done;
    stats = p.runs;
  }

  util::ThreadPool pool(config_.jobs);
  bool stopped = control.stop.stop_requested();

  // Phase 1: one DrcMatrix per distinct (app, db) pair, built row-parallel.
  // Keyed on the pair because the model derives from the app's platform and
  // implementation sets while the table spans the db's stored points. Not
  // checkpointed: the tables are deterministic recomputations on resume.
  std::map<std::pair<const AppInstance*, const dse::DesignDb*>, std::unique_ptr<rt::DrcMatrix>>
      drc_cache;
  for (const auto& cell : cells_) {
    if (stopped || control.stop.stop_requested()) {
      stopped = true;
      break;
    }
    if (cell.drc != nullptr) continue;
    const auto key = std::make_pair(cell.app, cell.db);
    if (drc_cache.count(key) > 0) {
      metrics_.counter("runner.drc_cache_hits").add();
      continue;
    }
    util::Timer::Scope span(metrics_.timer("runner.drc_build"));
    CLR_TRACE_SPAN(drc_span, trace::Category::Exp, "exp.drc_build",
                   {{"db_points", cell.db->size()}, {"label", cell.label}});
    recfg::ReconfigModel model(cell.app->platform(), cell.app->impls());
    drc_cache.emplace(key, std::make_unique<rt::DrcMatrix>(*cell.db, model, &pool));
    metrics_.counter("runner.drc_builds").add();
  }

  // Phase 2: fan the pending (cell, replication) jobs out in waves of
  // `batch_size`. Each job's seed derives only from (cell.seed, rep) and
  // each writes its own pre-sized slot, so neither the schedule, the wave
  // boundaries, nor a kill/resume cycle can change any observable result.
  std::vector<double> wall(total, 0.0);
  std::vector<std::uint8_t> fresh(total, 0);  ///< executed in THIS run (metrics)
  if (!stopped) {
    std::vector<std::size_t> pending;
    pending.reserve(total);
    for (std::size_t job = 0; job < total; ++job) {
      if (done[job] == 0) pending.push_back(job);
    }
    const std::size_t wave = control.batch_size > 0 ? control.batch_size : std::max<std::size_t>(pending.size(), 1);
    CLR_TRACE_SPAN(grid_span, trace::Category::Exp, "exp.grid",
                   {{"cells", cells_.size()},
                    {"replications", reps},
                    {"jobs", config_.jobs},
                    {"pending", pending.size()}});
    for (std::size_t begin = 0; begin < pending.size(); begin += wave) {
      if (control.stop.stop_requested()) {
        stopped = true;
        break;
      }
      const std::size_t count = std::min(wave, pending.size() - begin);
      pool.parallel_for(
          count,
          [&](std::size_t k) {
            const std::size_t job = pending[begin + k];
            const std::size_t c = job / reps;
            const std::size_t r = job % reps;
            const RunnerCell& cell = cells_[c];
            CLR_TRACE_SPAN(cell_span, trace::Category::Exp, "exp.cell",
                           {{"cell", c},
                            {"rep", r},
                            {"label", cell.label},
                            {"policy", policy_name(cell.params.kind)},
                            {"p_rc", cell.params.p_rc},
                            {"fault_rate", cell.params.faults.transient_rate},
                            {"seed", replication_seed(cell.seed, r)}});
            const rt::DrcMatrix* drc =
                cell.drc != nullptr ? cell.drc : drc_cache.at({cell.app, cell.db}).get();
            const rel::ClrSpace* clr_space =
                cell.app != nullptr ? &cell.app->clr_space() : nullptr;
            const auto start = std::chrono::steady_clock::now();
            stats[job] = evaluate_policy_with(*cell.db, *drc, cell.ranges, cell.params,
                                              replication_seed(cell.seed, r), clr_space);
            wall[job] = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - start)
                            .count();
            done[job] = 1;
            fresh[job] = 1;
            metrics_.counter("runner.jobs").add();
          },
          control.stop);
      if (control.on_batch) {
        RunnerProgress progress;
        progress.grid_hash = identity;
        progress.replications = reps;
        progress.done = done;
        progress.runs.reserve(total);
        for (const auto& s : stats) {
          rt::RuntimeStats stripped = s;
          stripped.trace.clear();  // traces are observability, never persisted
          progress.runs.push_back(std::move(stripped));
        }
        control.on_batch(progress);
      }
      if (control.stop.stop_requested()) {
        stopped = true;
        break;
      }
    }
  }

  // Phase 3: aggregate sequentially in cell/replication order over the
  // completed jobs. Restored and freshly-run stats are interchangeable here,
  // so a resumed grid's ReplicatedStats are bit-identical. Metrics count
  // only this run's work (restored jobs were counted by the original run).
  RunOutcome outcome;
  outcome.jobs_total = total;
  outcome.results.reserve(cells_.size());
  for (std::size_t c = 0; c < cells_.size(); ++c) {
    CellResult res;
    res.label = cells_[c].label;
    res.params = cells_[c].params;
    res.seed = cells_[c].seed;
    std::vector<rt::RuntimeStats> cell_runs;
    cell_runs.reserve(reps);
    for (std::size_t r = 0; r < reps; ++r) {
      const std::size_t job = c * reps + r;
      if (done[job] == 0) continue;
      outcome.jobs_done += 1;
      cell_runs.push_back(stats[job]);
      res.wall_ms += wall[job];
      if (fresh[job] != 0) {
        metrics_.counter("runner.events").add(stats[job].num_events);
        metrics_.counter("runner.reconfigs").add(stats[job].num_reconfigs);
      }
    }
    res.stats = replicate_stats(cell_runs);
    metrics_.timer("runner.cell").add_ns(static_cast<std::uint64_t>(res.wall_ms * 1e6));
    if (config_.keep_runs) res.runs = std::move(cell_runs);
    outcome.results.push_back(std::move(res));
  }
  outcome.complete = !stopped && outcome.jobs_done == total;
  return outcome;
}

namespace {

io::Json summary_json(const util::Summary& s) {
  return io::JsonObject{{"mean", io::Json(s.mean)},   {"stddev", io::Json(s.stddev)},
                        {"ci95", io::Json(s.ci95)},   {"min", io::Json(s.min)},
                        {"max", io::Json(s.max)},     {"count", io::Json(s.count)}};
}

}  // namespace

io::Json grid_report(const std::string& experiment, const RunnerConfig& config,
                     const std::vector<CellResult>& results,
                     const util::MetricsRegistry* metrics, bool interrupted) {
  io::JsonArray cells;
  cells.reserve(results.size());
  for (const auto& res : results) {
    io::JsonObject cell{
        {"label", io::Json(res.label)},
        {"policy", io::Json(policy_name(res.params.kind))},
        {"p_rc", io::Json(res.params.p_rc)},
        {"seed", io::Json(res.seed)},
        {"replications", io::Json(res.stats.replications)},
        {"num_events", summary_json(res.stats.num_events)},
        {"num_reconfigs", summary_json(res.stats.num_reconfigs)},
        {"num_infeasible_events", summary_json(res.stats.num_infeasible_events)},
        {"avg_energy", summary_json(res.stats.avg_energy)},
        {"total_reconfig_cost", summary_json(res.stats.total_reconfig_cost)},
        {"avg_reconfig_cost", summary_json(res.stats.avg_reconfig_cost)},
        {"max_drc", summary_json(res.stats.max_drc)},
        {"fault_rate", io::Json(res.params.faults.transient_rate)},
        {"pe_mtbf", io::Json(res.params.faults.pe_mtbf)},
        {"qos_violation_time", summary_json(res.stats.qos_violation_time)},
        {"num_transient_faults", summary_json(res.stats.num_transient_faults)},
        {"num_unrecovered_failures", summary_json(res.stats.num_unrecovered_failures)},
        {"num_permanent_faults", summary_json(res.stats.num_permanent_faults)},
        {"num_evacuations", summary_json(res.stats.num_evacuations)},
        {"num_safe_mode_entries", summary_json(res.stats.num_safe_mode_entries)},
        {"downtime", summary_json(res.stats.downtime)},
        {"availability", summary_json(res.stats.availability)},
        {"mttr", summary_json(res.stats.mttr)},
        {"prefetch", io::Json(res.params.prefetch)},
        {"reconfig_stall_time", summary_json(res.stats.reconfig_stall_time)},
        {"prefetch_hidden_time", summary_json(res.stats.prefetch_hidden_time)},
        {"prefetch_hits", summary_json(res.stats.prefetch_hits)},
        {"prefetch_misses", summary_json(res.stats.prefetch_misses)},
        {"service_availability", summary_json(res.stats.service_availability)},
        {"wall_ms", io::Json(res.wall_ms)},
    };
    cells.emplace_back(std::move(cell));
  }

  io::JsonObject report{
      {"experiment", io::Json(experiment)},
      {"replications", io::Json(config.replications)},
      {"jobs", io::Json(config.jobs)},
      {"cells", io::Json(std::move(cells))},
  };
  // Only emitted on partial reports, so complete reports stay byte-stable
  // across versions.
  if (interrupted) report.emplace_back("interrupted", io::Json(true));
  if (metrics != nullptr) {
    io::JsonObject counters;
    for (const auto& c : metrics->counters()) counters.emplace_back(c.name, io::Json(c.value));
    io::JsonObject timers;
    for (const auto& t : metrics->timers()) {
      timers.emplace_back(t.name, io::Json(io::JsonObject{{"total_ms", io::Json(t.total_ms)},
                                                          {"spans", io::Json(t.count)}}));
    }
    report.emplace_back("counters", io::Json(std::move(counters)));
    report.emplace_back("timers", io::Json(std::move(timers)));
  }
  return io::Json(std::move(report));
}

}  // namespace clr::exp
