#include "experiments/flow.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "common/stats.hpp"
#include "runtime/drc_matrix.hpp"

namespace clr::exp {

dse::MetricRanges qos_ranges(const FlowResult& flow) {
  // The demand distribution must sweep across the *front's* QoS band —
  // requirements far looser than the band never force adaptation, and
  // requirements far tighter are never satisfiable. A modest slack on the
  // loose side keeps a share of everything-feasible events.
  const dse::MetricRanges base = flow.based.ranges();
  const double s_band = std::max(base.makespan_max - base.makespan_min, 1e-9);
  const double f_band = std::max(base.func_rel_max - base.func_rel_min, 1e-9);
  dse::MetricRanges box = base;
  box.makespan_max = std::min(base.makespan_max + 0.25 * s_band, flow.spec.max_makespan);
  box.makespan_max = std::max(box.makespan_max, base.makespan_max);  // spec can be tighter
  box.func_rel_min = std::max(base.func_rel_min - 0.25 * f_band, flow.spec.min_func_rel);
  box.func_rel_min = std::min(box.func_rel_min, base.func_rel_min);
  return box;
}

dse::QosSpec derive_spec(const sched::EvalContext& ctx, dse::ObjectiveMode mode,
                         std::size_t samples, double makespan_quantile,
                         double func_rel_quantile, util::Rng& rng) {
  // Bootstrap with a throwaway loose spec (MappingProblem requires one).
  dse::QosSpec loose{1e18, 0.0};
  dse::MappingProblem probe(ctx, loose, mode);

  std::vector<double> makespans;
  std::vector<double> func_rels;
  makespans.reserve(samples);
  func_rels.reserve(samples);
  for (std::size_t s = 0; s < samples; ++s) {
    const auto cfg = probe.decode(probe.random_genes(rng));
    const auto res = probe.evaluate_schedule(cfg);
    makespans.push_back(res.makespan);
    func_rels.push_back(res.func_rel);
  }

  dse::QosSpec spec;
  spec.max_makespan = util::percentile(makespans, makespan_quantile);
  spec.min_func_rel = util::percentile(func_rels, func_rel_quantile);
  return spec;
}

FlowResult run_design_flow(const AppInstance& app, const FlowParams& params, util::Rng& rng) {
  FlowResult result;
  result.spec = derive_spec(app.context(), params.mode, params.spec_samples,
                            params.makespan_quantile, params.func_rel_quantile, rng);

  dse::MappingProblem problem(app.context(), result.spec, params.mode);
  recfg::ReconfigModel reconfig(app.platform(), app.impls());
  dse::DesignTimeDse dse_flow(problem, reconfig, params.dse);

  result.based = dse_flow.run_base(rng);
  if (result.based.empty()) {
    throw std::runtime_error("run_design_flow: design-time DSE found no feasible point");
  }
  result.red = dse_flow.run_red(result.based, rng);
  return result;
}

rt::RuntimeStats evaluate_policy(const AppInstance& app, const dse::DesignDb& db,
                                 const dse::MetricRanges& ranges,
                                 const RuntimeEvalParams& params, std::uint64_t seed) {
  recfg::ReconfigModel reconfig(app.platform(), app.impls());
  rt::DrcMatrix drc(db, reconfig);
  return evaluate_policy(app, db, drc, ranges, params, seed);
}

rt::RuntimeStats evaluate_policy(const AppInstance& app, const dse::DesignDb& db,
                                 const rt::DrcMatrix& drc, const dse::MetricRanges& ranges,
                                 const RuntimeEvalParams& params, std::uint64_t seed) {
  if (params.faults.enabled() && params.fault_profiles.empty()) {
    // Derive the per-PE fault heterogeneity from the platform model.
    RuntimeEvalParams derived = params;
    derived.fault_profiles = flt::profiles_from_platform(app.platform());
    return evaluate_policy_with(db, drc, ranges, derived, seed, &app.clr_space());
  }
  return evaluate_policy_with(db, drc, ranges, params, seed, &app.clr_space());
}

rt::RuntimeStats evaluate_policy_with(const dse::DesignDb& db, const rt::DrcMatrix& drc,
                                      const dse::MetricRanges& ranges,
                                      const RuntimeEvalParams& params, std::uint64_t seed,
                                      const rel::ClrSpace* clr_space,
                                      const rt::MdpTable* mdp_table) {
  rt::QosProcess qos(ranges, params.qos);
  rt::RuntimeSimulator sim(params.sim);

  util::SplitMix64 mix(seed);
  util::Rng pretrain_rng(mix.next());
  util::Rng eval_rng(mix.next());

  // The fault seed is drawn *after* (and only in addition to) the two
  // established streams, so enabling faults never perturbs the QoS or
  // pre-training sequences — and disabling them reproduces historical runs.
  flt::FaultScenario scenario;
  const flt::FaultScenario* active_scenario = nullptr;
  if (params.faults.enabled()) {
    params.faults.validate();
    scenario.params = params.faults;
    scenario.profiles = params.fault_profiles;
    scenario.seed = mix.next();
    scenario.clr_space = clr_space;
    active_scenario = &scenario;
  }

  // Optional prefetch wrapper: selection-transparent, so wrapping changes
  // only the new stall/hidden accounting — never the decision sequence.
  const auto run_with = [&](rt::AdaptationPolicy& policy) {
    if (params.prefetch) {
      rt::PrefetchPolicy wrapped(policy, db, drc, params.prefetch_params);
      return sim.run(db, wrapped, qos, eval_rng, active_scenario);
    }
    return sim.run(db, policy, qos, eval_rng, active_scenario);
  };

  switch (params.kind) {
    case PolicyKind::Baseline: {
      rt::BaselinePolicy policy(db, drc);
      return run_with(policy);
    }
    case PolicyKind::Ura: {
      rt::UraPolicy policy(db, drc, params.p_rc);
      return run_with(policy);
    }
    case PolicyKind::Aura: {
      rt::AuraPolicy policy(db, drc, params.p_rc, params.aura);
      if (params.pretrain) {
        // Pre-training stays fault-free: prior knowledge reflects the
        // nominal platform the design-time flow optimized for. The prefetch
        // wrapper (if any) is absent here on purpose: staging is an
        // evaluation-time effect, not part of the prior.
        rt::pretrain_aura(policy, db, qos, params.pretrain_cycles, params.pretrain_sweeps,
                          pretrain_rng);
      }
      return run_with(policy);
    }
    case PolicyKind::Mdp: {
      // Offline planning is deterministic (no RNG), so building the table
      // here — or reusing one prebuilt by the caller (fleet sweeps,
      // snapshot-loaded tables) — yields bit-identical runs.
      rt::MdpTable built;
      if (mdp_table == nullptr) {
        built = rt::build_mdp_table(db, drc, ranges, params.p_rc, params.qos, params.faults,
                                    params.mdp);
        mdp_table = &built;
      }
      rt::MdpPolicy policy(db, drc, *mdp_table);
      return run_with(policy);
    }
  }
  throw std::logic_error("evaluate_policy_with: unknown policy kind");
}

}  // namespace clr::exp
