#pragma once
// End-to-end hybrid flow (Fig. 3): derive a QoS reference from the space,
// run the design-time stages (BaseD, ReD), and evaluate run-time policies
// over the stored databases under the Monte-Carlo QoS process.

#include "dse/design_time.hpp"
#include "experiments/app.hpp"
#include "runtime/mdp_policy.hpp"
#include "runtime/prefetch.hpp"
#include "runtime/simulator.hpp"

namespace clr::exp {

/// Knobs for the full flow; defaults match the paper's §5.1 setup scaled to
/// bench-friendly run times (override total_cycles for the full 1e6 runs).
struct FlowParams {
  dse::DseConfig dse;
  dse::ObjectiveMode mode = dse::ObjectiveMode::EnergyQos;
  /// Random chromosomes sampled to estimate the achievable (S, F) ranges
  /// when deriving the QoS reference corner.
  std::size_t spec_samples = 64;
  /// The SSPEC corner as a quantile of sampled makespans (loose: most of the
  /// space is feasible; the run-time QoS process then tightens it).
  double makespan_quantile = 0.85;
  /// The FSPEC corner as a quantile of sampled reliabilities.
  double func_rel_quantile = 0.10;
};

struct FlowResult {
  dse::QosSpec spec;
  dse::DesignDb based;  ///< Pareto-front-only database ([11]-style)
  dse::DesignDb red;    ///< BaseD + reconfiguration-cost-aware extras
};

/// The QoS-requirement box the run-time process samples from: from the global
/// reference corner (loosest demand) to the best point the BaseD database
/// achieves (tightest satisfiable demand). Using this box for *both*
/// databases keeps BaseD-vs-ReD comparisons apples-to-apples, and it makes
/// ReD's tolerance-degraded extras genuinely feasible under loose demands.
dse::MetricRanges qos_ranges(const FlowResult& flow);

/// Estimate a workable QoS reference corner (max SSPEC / min FSPEC of Eq. 5)
/// by sampling random configurations.
dse::QosSpec derive_spec(const sched::EvalContext& ctx, dse::ObjectiveMode mode,
                         std::size_t samples, double makespan_quantile,
                         double func_rel_quantile, util::Rng& rng);

/// Run design-time DSE (both stages) for one application.
FlowResult run_design_flow(const AppInstance& app, const FlowParams& params, util::Rng& rng);

/// Which run-time policy to evaluate. Mdp is the offline-planned tabular
/// policy of DESIGN.md §5.14 (value iteration over the discretized QoS
/// process), evaluated beside the learned agents.
enum class PolicyKind { Baseline, Ura, Aura, Mdp };

struct RuntimeEvalParams {
  PolicyKind kind = PolicyKind::Ura;
  double p_rc = 0.5;
  rt::AuraPolicy::Params aura{};
  /// Offline pre-training budget for AuRA's prior knowledge (cycles/sweeps).
  double pretrain_cycles = 5e4;
  std::size_t pretrain_sweeps = 4;
  bool pretrain = true;
  rt::SimulationParams sim{};
  rt::QosProcessParams qos{};
  /// Run-time fault environment. Defaults to all-rates-zero: the fault seed
  /// is then never drawn and the evaluation is bit-for-bit the fault-free one.
  flt::FaultParams faults{};
  /// Per-PE fault profiles (index = PeId). Empty: evaluate_policy derives
  /// them from the app's platform (AVF / βp); the app-less
  /// evaluate_policy_with path substitutes uniform defaults.
  std::vector<flt::PeFaultProfile> fault_profiles;
  /// Offline MDP planning knobs (PolicyKind::Mdp only).
  rt::MdpPolicyParams mdp{};
  /// Wrap the evaluated policy in a PrefetchPolicy (speculative bitstream
  /// staging). Never changes which points are picked — only the stall/hidden
  /// split in RuntimeStats; every pre-existing field stays bit-identical.
  bool prefetch = false;
  rt::PrefetchParams prefetch_params{};
};

/// Evaluate one policy over one database. `ranges` defines the QoS process
/// (pass the same ranges when comparing databases so both see the same
/// requirement distribution); `seed` fixes both the QoS sequence and any
/// pre-training randomness.
rt::RuntimeStats evaluate_policy(const AppInstance& app, const dse::DesignDb& db,
                                 const dse::MetricRanges& ranges,
                                 const RuntimeEvalParams& params, std::uint64_t seed);

/// Same, but against a prebuilt DrcMatrix (a `.clrdb` snapshot's persisted
/// table, or one shared across a sweep) — skips the O(n²·tasks) rebuild while
/// keeping the app-derived fault profiles and CLR coverage. Bit-identical to
/// the overload above when `drc` equals the matrix it would build.
rt::RuntimeStats evaluate_policy(const AppInstance& app, const dse::DesignDb& db,
                                 const rt::DrcMatrix& drc, const dse::MetricRanges& ranges,
                                 const RuntimeEvalParams& params, std::uint64_t seed);

/// Same evaluation against a prebuilt reconfiguration-cost table. The cost
/// matrix only depends on (db, platform, implementations), so grid sweeps
/// build it once per database and share it across every policy/pRC/seed cell
/// (see exp::Runner); this overload is also the path that needs no
/// AppInstance at all (tests, what-if cost tables). `clr_space` gives fault
/// injection the struck task's CLR coverage; nullptr falls back to
/// FaultParams::fallback_coverage. `mdp_table` optionally supplies a
/// prebuilt MDP plan for PolicyKind::Mdp (fleet sweeps share one table
/// across devices; snapshots persist them) — nullptr builds it on the fly,
/// bit-identically, since planning is deterministic.
rt::RuntimeStats evaluate_policy_with(const dse::DesignDb& db, const rt::DrcMatrix& drc,
                                      const dse::MetricRanges& ranges,
                                      const RuntimeEvalParams& params, std::uint64_t seed,
                                      const rel::ClrSpace* clr_space = nullptr,
                                      const rt::MdpTable* mdp_table = nullptr);

}  // namespace clr::exp
