#include "experiments/app.hpp"

namespace clr::exp {

AppInstance::AppInstance(tg::TaskGraph graph, plat::Platform platform,
                         rel::ClrGranularity granularity, rel::FaultModel fault,
                         rel::ImplGenParams impl_params, std::uint64_t impl_seed)
    : AppInstance(std::move(graph), std::move(platform), rel::ClrSpace(granularity), fault,
                  impl_params, impl_seed) {}

AppInstance::AppInstance(tg::TaskGraph graph, plat::Platform platform, rel::ClrSpace clr_space,
                         rel::FaultModel fault, rel::ImplGenParams impl_params,
                         std::uint64_t impl_seed)
    : graph_(std::move(graph)), platform_(std::move(platform)), clr_space_(std::move(clr_space)) {
  util::Rng rng(impl_seed);
  impls_ = rel::generate_implementations(graph_, platform_, impl_params, rng);
  ctx_.graph = &graph_;
  ctx_.platform = &platform_;
  ctx_.impls = &impls_;
  ctx_.clr_space = &clr_space_;
  ctx_.metrics = rel::MetricsModel(fault);
  ctx_.check();
}

std::unique_ptr<AppInstance> make_synthetic_app(std::size_t num_tasks, std::uint64_t seed,
                                                rel::ClrGranularity granularity) {
  util::SplitMix64 mix(seed);
  const std::uint64_t graph_seed = mix.next();
  const std::uint64_t impl_seed = mix.next();

  tg::GeneratorParams gp;
  gp.num_tasks = num_tasks;
  gp.num_task_types = std::max<std::size_t>(4, num_tasks / 5);
  util::Rng graph_rng(graph_seed);
  tg::TaskGraph graph = tg::TgffGenerator(gp).generate(graph_rng);

  return std::make_unique<AppInstance>(std::move(graph), plat::make_default_hmpsoc(), granularity,
                                       rel::FaultModel{}, rel::ImplGenParams{}, impl_seed);
}

std::unique_ptr<AppInstance> make_synthetic_app_with_space(std::size_t num_tasks,
                                                           std::uint64_t seed,
                                                           rel::ClrSpace clr_space) {
  util::SplitMix64 mix(seed);
  const std::uint64_t graph_seed = mix.next();
  const std::uint64_t impl_seed = mix.next();

  tg::GeneratorParams gp;
  gp.num_tasks = num_tasks;
  gp.num_task_types = std::max<std::size_t>(4, num_tasks / 5);
  util::Rng graph_rng(graph_seed);
  tg::TaskGraph graph = tg::TgffGenerator(gp).generate(graph_rng);

  return std::make_unique<AppInstance>(std::move(graph), plat::make_default_hmpsoc(),
                                       std::move(clr_space), rel::FaultModel{},
                                       rel::ImplGenParams{}, impl_seed);
}

std::unique_ptr<AppInstance> make_jpeg_app(std::uint64_t seed, rel::ClrGranularity granularity) {
  return std::make_unique<AppInstance>(tg::make_jpeg_encoder_graph(), plat::make_default_hmpsoc(),
                                       granularity, rel::FaultModel{}, rel::ImplGenParams{}, seed);
}

std::uint64_t derive_seed(std::uint64_t experiment_tag, std::size_t num_tasks) {
  util::SplitMix64 mix(kMasterSeed ^ experiment_tag);
  std::uint64_t s = mix.next();
  for (std::size_t i = 0; i <= num_tasks % 97; ++i) s = mix.next();
  return s ^ (static_cast<std::uint64_t>(num_tasks) * 0x9e3779b97f4a7c15ULL);
}

}  // namespace clr::exp
