#pragma once
// Replicated, parallel runtime-experiment harness.
//
// The design-time DSE got batching/parallelism/caching in DESIGN.md §5.6;
// this is the same treatment for the run-time half of the hybrid flow
// (Fig. 6/7, Tables 4-7). A grid of cells — (app × db × policy × pRC) — is
// expanded into independent (cell, replication) jobs and fanned out over a
// util::ThreadPool. Each job derives its own seed from the cell's base seed
// via SplitMix64 and writes into a pre-sized slot, so results are bit-for-bit
// identical at any job count (the §5.6 determinism contract). Per-cell
// replications aggregate into ReplicatedStats: mean, stddev and 95% CI
// (Student-t) for every RuntimeStats field — the interval estimates that
// replicated Monte-Carlo evaluation owes its ReD-vs-BaseD / AuRA-vs-uRA
// percentages.
//
// The pairwise DrcMatrix (O(n²) ReconfigModel::drc calls) only depends on
// (db, platform, implementations), never on the policy/pRC/seed of a cell,
// so the Runner memoizes one matrix per distinct (app, db) pair per run and
// builds it row-parallel on the same pool. A MetricsRegistry threads through
// the harness (cells, jobs, events, reconfigs, drc builds/cache hits, build
// and cell timers), and the whole replicated grid exports to JSON via clr_io
// for machine-readable bench reports.

#include <cstdint>
#include <string>
#include <vector>

#include "common/metrics.hpp"
#include "common/stats.hpp"
#include "experiments/flow.hpp"
#include "io/json.hpp"
#include "runtime/drc_matrix.hpp"

namespace clr::exp {

/// Per-field replication summaries over one cell's Monte-Carlo runs.
struct ReplicatedStats {
  std::size_t replications = 0;
  util::Summary num_events;
  util::Summary num_reconfigs;
  util::Summary num_infeasible_events;
  util::Summary avg_energy;
  util::Summary total_reconfig_cost;
  util::Summary avg_reconfig_cost;
  util::Summary max_drc;
  // Fault / degraded-mode axes (degenerate zero-width summaries when the
  // cell ran without a fault scenario).
  util::Summary qos_violation_time;
  util::Summary num_transient_faults;
  util::Summary num_unrecovered_failures;
  util::Summary num_permanent_faults;
  util::Summary num_evacuations;
  util::Summary num_safe_mode_entries;
  util::Summary downtime;
  util::Summary availability;
  util::Summary mttr;
};

/// Aggregate a finished replication set (in replication order — callers that
/// need bit-for-bit reproducibility must not reorder `runs`).
ReplicatedStats replicate_stats(const std::vector<rt::RuntimeStats>& runs);

/// Seed of replication `rep` of a cell with base seed `base`: a SplitMix64
/// expansion, so replications are decorrelated but each (base, rep) pair maps
/// to the same simulation regardless of execution order or thread count.
std::uint64_t replication_seed(std::uint64_t base, std::size_t rep);

/// One grid cell: a policy evaluation over one database, replicated over
/// seeds. Either `app` (the reconfiguration-model source; cost matrices are
/// then cached per (app, db)) or an explicit `drc` table must be set.
struct RunnerCell {
  const AppInstance* app = nullptr;
  const dse::DesignDb* db = nullptr;
  const rt::DrcMatrix* drc = nullptr;  ///< explicit cost table (tests/what-if)
  dse::MetricRanges ranges;            ///< QoS-process box (exp::qos_ranges)
  RuntimeEvalParams params;
  std::uint64_t seed = 0;  ///< base seed; replication r runs replication_seed(seed, r)
  std::string label;
};

/// Outcome of one cell: the replicated summaries plus observability data.
struct CellResult {
  std::string label;
  RuntimeEvalParams params;
  std::uint64_t seed = 0;
  ReplicatedStats stats;
  /// Summed wall-clock of this cell's replication jobs, milliseconds
  /// (observability only — not part of the deterministic payload).
  double wall_ms = 0.0;
  /// Per-replication raw runs, kept when RunnerConfig::keep_runs (paired
  /// per-seed comparisons, traces).
  std::vector<rt::RuntimeStats> runs;
};

struct RunnerConfig {
  /// Monte-Carlo replications per cell (>= 1).
  std::size_t replications = 5;
  /// Worker concurrency (0 = all hardware threads, 1 = sequential).
  std::size_t jobs = 0;
  /// Keep every replication's RuntimeStats in CellResult::runs.
  bool keep_runs = false;
};

class Runner {
 public:
  explicit Runner(RunnerConfig config = {}) : config_(config) {}

  /// Queue a cell; returns its index into the run() result vector.
  std::size_t add_cell(RunnerCell cell);

  /// Expand cells × replications, fan the jobs out, aggregate. Results are
  /// indexed by add_cell() order and bit-for-bit independent of `jobs`.
  std::vector<CellResult> run();

  const RunnerConfig& config() const { return config_; }
  std::size_t num_cells() const { return cells_.size(); }

  /// Harness counters/timers: runner.cells, runner.jobs, runner.events,
  /// runner.reconfigs, runner.drc_builds, runner.drc_cache_hits,
  /// runner.drc_build (timer), runner.cell (timer).
  util::MetricsRegistry& metrics() { return metrics_; }
  const util::MetricsRegistry& metrics() const { return metrics_; }

 private:
  RunnerConfig config_;
  util::MetricsRegistry metrics_;
  std::vector<RunnerCell> cells_;
};

/// Machine-readable report of a replicated grid: experiment name, harness
/// config, per-cell field summaries and wall-clock, and — when a Runner is
/// given — its metrics snapshot.
io::Json grid_report(const std::string& experiment, const RunnerConfig& config,
                     const std::vector<CellResult>& results,
                     const util::MetricsRegistry* metrics = nullptr);

}  // namespace clr::exp
