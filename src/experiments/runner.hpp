#pragma once
// Replicated, parallel runtime-experiment harness.
//
// The design-time DSE got batching/parallelism/caching in DESIGN.md §5.6;
// this is the same treatment for the run-time half of the hybrid flow
// (Fig. 6/7, Tables 4-7). A grid of cells — (app × db × policy × pRC) — is
// expanded into independent (cell, replication) jobs and fanned out over a
// util::ThreadPool. Each job derives its own seed from the cell's base seed
// via SplitMix64 and writes into a pre-sized slot, so results are bit-for-bit
// identical at any job count (the §5.6 determinism contract). Per-cell
// replications aggregate into ReplicatedStats: mean, stddev and 95% CI
// (Student-t) for every RuntimeStats field — the interval estimates that
// replicated Monte-Carlo evaluation owes its ReD-vs-BaseD / AuRA-vs-uRA
// percentages.
//
// The pairwise DrcMatrix (O(n²) ReconfigModel::drc calls) only depends on
// (db, platform, implementations), never on the policy/pRC/seed of a cell,
// so the Runner memoizes one matrix per distinct (app, db) pair per run and
// builds it row-parallel on the same pool. A MetricsRegistry threads through
// the harness (cells, jobs, events, reconfigs, drc builds/cache hits, build
// and cell timers), and the whole replicated grid exports to JSON via clr_io
// for machine-readable bench reports.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/metrics.hpp"
#include "common/stats.hpp"
#include "common/stop.hpp"
#include "experiments/flow.hpp"
#include "io/json.hpp"
#include "runtime/drc_matrix.hpp"

namespace clr::exp {

/// Per-field replication summaries over one cell's Monte-Carlo runs.
struct ReplicatedStats {
  std::size_t replications = 0;
  util::Summary num_events;
  util::Summary num_reconfigs;
  util::Summary num_infeasible_events;
  util::Summary avg_energy;
  util::Summary total_reconfig_cost;
  util::Summary avg_reconfig_cost;
  util::Summary max_drc;
  // Fault / degraded-mode axes (degenerate zero-width summaries when the
  // cell ran without a fault scenario).
  util::Summary qos_violation_time;
  util::Summary num_transient_faults;
  util::Summary num_unrecovered_failures;
  util::Summary num_permanent_faults;
  util::Summary num_evacuations;
  util::Summary num_safe_mode_entries;
  util::Summary downtime;
  util::Summary availability;
  util::Summary mttr;
  // Reconfiguration-port axes (stall/hidden split, DESIGN.md §5.14). Without
  // prefetching, reconfig_stall_time == total_reconfig_cost per run.
  util::Summary reconfig_stall_time;
  util::Summary prefetch_hidden_time;
  util::Summary prefetch_hits;
  util::Summary prefetch_misses;
  util::Summary service_availability;
};

/// Aggregate a finished replication set (in replication order — callers that
/// need bit-for-bit reproducibility must not reorder `runs`).
ReplicatedStats replicate_stats(const std::vector<rt::RuntimeStats>& runs);

/// Seed of replication `rep` of a cell with base seed `base`: a SplitMix64
/// expansion, so replications are decorrelated but each (base, rep) pair maps
/// to the same simulation regardless of execution order or thread count.
std::uint64_t replication_seed(std::uint64_t base, std::size_t rep);

/// One grid cell: a policy evaluation over one database, replicated over
/// seeds. Either `app` (the reconfiguration-model source; cost matrices are
/// then cached per (app, db)) or an explicit `drc` table must be set.
struct RunnerCell {
  const AppInstance* app = nullptr;
  const dse::DesignDb* db = nullptr;
  const rt::DrcMatrix* drc = nullptr;  ///< explicit cost table (tests/what-if)
  dse::MetricRanges ranges;            ///< QoS-process box (exp::qos_ranges)
  RuntimeEvalParams params;
  std::uint64_t seed = 0;  ///< base seed; replication r runs replication_seed(seed, r)
  std::string label;
};

/// Outcome of one cell: the replicated summaries plus observability data.
struct CellResult {
  std::string label;
  RuntimeEvalParams params;
  std::uint64_t seed = 0;
  ReplicatedStats stats;
  /// Summed wall-clock of this cell's replication jobs, milliseconds
  /// (observability only — not part of the deterministic payload).
  double wall_ms = 0.0;
  /// Per-replication raw runs, kept when RunnerConfig::keep_runs (paired
  /// per-seed comparisons, traces).
  std::vector<rt::RuntimeStats> runs;
};

struct RunnerConfig {
  /// Monte-Carlo replications per cell (>= 1).
  std::size_t replications = 5;
  /// Worker concurrency (0 = all hardware threads, 1 = sequential).
  std::size_t jobs = 0;
  /// Keep every replication's RuntimeStats in CellResult::runs.
  bool keep_runs = false;
};

/// Restartable grid state, snapshotted between job batches. Jobs are indexed
/// cell-major (job = cell × replications + rep — the same flat order run()
/// dispatches), and each job's seed depends only on (cell.seed, rep), so a
/// resumed grid aggregates restored + fresh runs into ReplicatedStats that
/// are bit-for-bit the uninterrupted run's. Event traces are NOT carried
/// (aggregation never reads them); restored jobs re-surface with empty
/// traces.
struct RunnerProgress {
  /// Runner::grid_hash() of the grid this progress belongs to; resuming
  /// against a different grid is refused.
  std::uint64_t grid_hash = 0;
  std::size_t replications = 0;
  /// One flag per job, 1 = completed.
  std::vector<std::uint8_t> done;
  /// One record per job; meaningful only where done[i] != 0.
  std::vector<rt::RuntimeStats> runs;

  std::size_t jobs_done() const {
    std::size_t n = 0;
    for (std::uint8_t d : done) n += (d != 0);
    return n;
  }
};

/// Cooperative-cancellation + checkpoint hooks for Runner::run(). Default
/// state (no stop, no batching, no resume) reproduces the plain run().
struct RunnerControl {
  /// Checked between batches and inside the pool's job-claim loop; a
  /// requested stop finishes the in-flight jobs and returns a partial
  /// outcome (complete = false).
  util::StopToken stop;
  /// Jobs per dispatch wave (0 = all pending jobs in one wave). The
  /// checkpoint cadence: on_batch fires after every wave.
  std::size_t batch_size = 0;
  /// Called after each wave with the accumulated progress (traces already
  /// stripped) — the session layer serializes this into a checkpoint.
  std::function<void(const RunnerProgress&)> on_batch;
  /// Resume from a prior run's progress: completed jobs are never re-run.
  /// Validated against grid_hash()/replications/job count (throws
  /// std::invalid_argument on mismatch).
  const RunnerProgress* resume = nullptr;
};

/// Outcome of a controlled run. `results` always spans every cell; cells
/// with missing replications aggregate only the completed ones (partial
/// report).
struct RunOutcome {
  std::vector<CellResult> results;
  bool complete = true;
  std::size_t jobs_done = 0;
  std::size_t jobs_total = 0;
};

class Runner {
 public:
  explicit Runner(RunnerConfig config = {}) : config_(config) {}

  /// Queue a cell; returns its index into the run() result vector.
  std::size_t add_cell(RunnerCell cell);

  /// Expand cells × replications, fan the jobs out, aggregate. Results are
  /// indexed by add_cell() order and bit-for-bit independent of `jobs`.
  std::vector<CellResult> run();

  /// Controlled run: stop-aware, batched, resumable (DESIGN.md §5.12). With
  /// a default RunnerControl this is exactly run(); with `resume` set,
  /// completed jobs are skipped and the final aggregation is bit-identical
  /// to the uninterrupted run at any `jobs` count.
  RunOutcome run(const RunnerControl& control);

  /// FNV-1a over the grid's result-affecting identity: cell labels, seeds,
  /// policy/p_rc/simulation/fault parameters, db sizes, QoS ranges and the
  /// replication count. Deliberately excludes `jobs` (thread count never
  /// affects results) and wall-clock observability.
  std::uint64_t grid_hash() const;

  const RunnerConfig& config() const { return config_; }
  std::size_t num_cells() const { return cells_.size(); }

  /// Harness counters/timers: runner.cells, runner.jobs, runner.events,
  /// runner.reconfigs, runner.drc_builds, runner.drc_cache_hits,
  /// runner.drc_build (timer), runner.cell (timer).
  util::MetricsRegistry& metrics() { return metrics_; }
  const util::MetricsRegistry& metrics() const { return metrics_; }

 private:
  RunnerConfig config_;
  util::MetricsRegistry metrics_;
  std::vector<RunnerCell> cells_;
};

/// Machine-readable report of a replicated grid: experiment name, harness
/// config, per-cell field summaries and wall-clock, and — when a Runner is
/// given — its metrics snapshot. `interrupted` marks a partial report from a
/// stopped run (the key is only emitted when true, keeping existing reports
/// byte-stable).
io::Json grid_report(const std::string& experiment, const RunnerConfig& config,
                     const std::vector<CellResult>& results,
                     const util::MetricsRegistry* metrics = nullptr, bool interrupted = false);

}  // namespace clr::exp
