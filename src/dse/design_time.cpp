#include "dse/design_time.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/parallel.hpp"
#include "schedule/heft.hpp"
#include "trace/trace.hpp"
#include <stdexcept>

namespace clr::dse {

RedProblem::RedProblem(const MappingProblem& mapping, const recfg::ReconfigModel& reconfig,
                       std::vector<sched::Configuration> base_configs, const DesignPoint& seed,
                       const MetricRanges& base_ranges, const DseConfig& cfg,
                       moea::GenomeCache<double>* drc_cache)
    : mapping_(&mapping),
      reconfig_(&reconfig),
      base_configs_(std::move(base_configs)),
      seed_(seed),
      base_ranges_(base_ranges),
      cfg_(&cfg),
      drc_cache_(drc_cache) {
  if (base_configs_.empty()) throw std::invalid_argument("RedProblem: empty base set");
}

moea::Evaluation RedProblem::evaluate(const std::vector<int>& genes) const {
  const ScheduleMetrics res = mapping_->evaluate_metrics(genes);
  double avg_drc = 0.0;
  if (drc_cache_ == nullptr || !drc_cache_->lookup(genes, &avg_drc)) {
    avg_drc = reconfig_->average_drc(mapping_->decode(genes), base_configs_);
    if (drc_cache_ != nullptr) drc_cache_->store(genes, avg_drc);
  }

  moea::Evaluation eval;
  eval.objectives = {avg_drc, res.energy};

  // Global QoS spec plus per-seed degradation tolerances (§4.2.1): the new
  // point must stay within tolerance of the seed's QoS metrics and R.
  const QosSpec& spec = mapping_->spec();
  double violation = 0.0;
  if (res.makespan > spec.max_makespan) {
    violation += (res.makespan - spec.max_makespan) / spec.max_makespan;
  }
  if (res.func_rel < spec.min_func_rel) {
    violation += (spec.min_func_rel - res.func_rel) / std::max(spec.min_func_rel, 1e-9);
  }
  // Tolerances are fractions of the BaseD front's QoS bands so they adapt
  // to how spread the front actually is (an absolute tolerance would dwarf a
  // narrow band and produce extras that are never feasible when needed).
  const double s_band = std::max(base_ranges_.makespan_max - base_ranges_.makespan_min, 1e-12);
  const double f_band = std::max(base_ranges_.func_rel_max - base_ranges_.func_rel_min, 1e-12);
  const double s_cap = seed_.makespan + cfg_->tol_makespan_band * s_band;
  if (res.makespan > s_cap) violation += (res.makespan - s_cap) / s_cap;
  const double f_floor = seed_.func_rel - cfg_->tol_func_rel_band * f_band;
  if (res.func_rel < f_floor) violation += (f_floor - res.func_rel) / f_band;
  const double j_cap = seed_.energy * (1.0 + cfg_->tol_energy);
  if (res.energy > j_cap) violation += (res.energy - j_cap) / j_cap;

  eval.violation = violation;
  return eval;
}

void RedProblem::evaluate_batch(std::span<moea::Individual* const> batch) const {
  // Stage the whole batch's schedule metrics through the SoA kernel; the
  // evaluate() calls below then hit the memo and only pay for the dRC and
  // constraint tail, which is not scheduler-bound.
  std::vector<const std::vector<int>*> genes;
  genes.reserve(batch.size());
  for (const moea::Individual* ind : batch) genes.push_back(&ind->genes);
  std::vector<ScheduleMetrics> metrics(batch.size());
  mapping_->evaluate_metrics_batch({genes.data(), genes.size()}, metrics.data());
  for (moea::Individual* ind : batch) ind->eval = evaluate(ind->genes);
}

DesignTimeDse::DesignTimeDse(const MappingProblem& problem, const recfg::ReconfigModel& reconfig,
                             DseConfig cfg)
    : problem_(&problem), reconfig_(&reconfig), cfg_(cfg) {}

DesignPoint DesignTimeDse::make_point(const sched::Configuration& cfg, bool extra) const {
  const sched::ScheduleResult res = problem_->evaluate_schedule(cfg);
  DesignPoint p;
  p.config = cfg;
  p.energy = res.energy;
  p.makespan = res.makespan;
  p.func_rel = res.func_rel;
  p.extra = extra;
  return p;
}

DesignPoint DesignTimeDse::make_point(const std::vector<int>& genes, bool extra) const {
  const ScheduleMetrics res = problem_->evaluate_metrics(genes);
  DesignPoint p;
  p.config = problem_->decode(genes);
  p.energy = res.energy;
  p.makespan = res.makespan;
  p.func_rel = res.func_rel;
  p.extra = extra;
  return p;
}

DesignDb DesignTimeDse::run_base(util::Rng& rng) const {
  return run_base_resumable(rng, {}).db;
}

StageOutcome DesignTimeDse::run_base_resumable(util::Rng& rng, const BaseControl& control) const {
  CLR_TRACE_SPAN(base_span, trace::Category::Dse, "dse.base",
                 {{"pop", cfg_.base_ga.population}, {"gens", cfg_.base_ga.generations}});
  util::ThreadPool pool(cfg_.threads);
  moea::EvalCache cache(cfg_.eval_cache_capacity);
  const moea::EvalOptions eval_opts{&pool, &cache, cfg_.batched_eval};

  const std::size_t dim = problem_->num_objectives();
  std::vector<double> ref(dim);
  std::vector<double> scale(dim);
  std::vector<std::vector<int>> seeds;
  if (control.resume != nullptr) {
    // The calibration below consumed RNG draws before the saved GA boundary,
    // so its result travels in the checkpoint; the RNG stream itself is
    // restored inside ga.run from the saved GA state.
    ref = control.resume->ref;
    scale = control.resume->scale;
  } else {
    // Calibrate the Eq. (5) reference point and objective scales from random
    // samples of the space, so the signed hypervolume is well-conditioned.
    // Generate-then-evaluate: all chromosomes are drawn first (sequentially,
    // on the master Rng), then evaluated as one parallel batch.
    std::vector<double> lo(dim, std::numeric_limits<double>::infinity());
    std::vector<double> hi(dim, -std::numeric_limits<double>::infinity());
    {
      CLR_TRACE_SPAN(cal_span, trace::Category::Dse, "dse.calibrate",
                     {{"samples", cfg_.calibration_samples}});
      std::vector<moea::Individual> samples(cfg_.calibration_samples);
      std::vector<moea::Individual*> batch;
      batch.reserve(samples.size());
      for (auto& s : samples) {
        s.genes = problem_->random_genes(rng);
        batch.push_back(&s);
      }
      moea::BatchEvaluator(*problem_, eval_opts).evaluate(batch);
      for (const auto& s : samples) {
        for (std::size_t k = 0; k < dim; ++k) {
          lo[k] = std::min(lo[k], s.eval.objectives[k]);
          hi[k] = std::max(hi[k], s.eval.objectives[k]);
        }
      }
    }

    // Reference corner: the QoS constraints pin the makespan / reliability
    // dimensions; the energy dimension gets a loose cap above the sampled max.
    const QosSpec& spec = problem_->spec();
    auto loose = [&](std::size_t k) { return hi[k] + 0.05 * (hi[k] - lo[k]) + 1e-9; };
    switch (problem_->mode()) {
      case ObjectiveMode::EnergyQos:
        ref = {loose(0), spec.max_makespan, -spec.min_func_rel};
        break;
      case ObjectiveMode::CspQos:
        ref = {spec.max_makespan, -spec.min_func_rel};
        break;
      case ObjectiveMode::EnergyLifetime:
        // QoS enters through the constraint violation; both objectives get a
        // loose sampled corner.
        ref = {loose(0), loose(1)};
        break;
    }
    for (std::size_t k = 0; k < dim; ++k) {
      const double range = hi[k] - lo[k];
      scale[k] = range > 1e-12 ? 1.0 / range : 1.0;
    }

    if (cfg_.heft_seeding) {
      // The HEFT heuristic maps over the full platform; when the problem
      // restricts the binding domain (e.g. a failed PE is excluded) its seed
      // may not be expressible — skip it rather than fail the exploration.
      try {
        seeds.push_back(problem_->encode(sched::heft_seed(problem_->compiled())));
      } catch (const std::invalid_argument&) {
      }
    }
  }

  moea::HvGa ga(cfg_.base_ga, ref, scale);
  moea::GaRunControl ga_control;
  ga_control.stop = control.stop;
  if (control.on_boundary) {
    ga_control.on_boundary = [&](const moea::GaState& state) {
      BaseProgress progress;
      progress.ref = ref;
      progress.scale = scale;
      progress.ga = state;
      control.on_boundary(progress);
    };
  }
  if (control.resume != nullptr) ga_control.resume = &control.resume->ga;
  const auto result = ga.run(*problem_, rng, seeds, eval_opts, &ga_control);

  // Thin the raw front to the storage budget, preferring well-spread points
  // (crowding distance keeps the extremes first). Pure recomputation from
  // the archive — on the partial (stopped) path it yields the
  // best-effort-so-far database for the partial report.
  std::vector<moea::Individual> front = result.archive.members();
  if (front.size() > cfg_.max_base_points && cfg_.max_base_points > 0) {
    std::vector<std::size_t> all(front.size());
    for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
    moea::assign_crowding(front, all);
    std::sort(front.begin(), front.end(), [](const moea::Individual& a,
                                             const moea::Individual& b) {
      return a.crowding > b.crowding;
    });
    front.resize(cfg_.max_base_points);
  }

  StageOutcome outcome;
  outcome.complete = result.complete;
  for (const auto& ind : front) {
    outcome.db.add(make_point(ind.genes, /*extra=*/false));
  }
  return outcome;
}

DesignDb DesignTimeDse::run_red(const DesignDb& base, util::Rng& rng) const {
  return run_red_resumable(base, rng, {}).db;
}

StageOutcome DesignTimeDse::run_red_resumable(const DesignDb& base, util::Rng& rng,
                                              const RedControl& control) const {
  if (base.empty()) throw std::invalid_argument("run_red: empty BaseD database");
  CLR_TRACE_SPAN(red_span, trace::Category::Dse, "dse.red", {{"base_points", base.size()}});
  const auto base_configs = base.configurations();

  DesignDb red;
  std::size_t start_pos = 0;
  if (control.resume != nullptr) {
    red = control.resume->red;
    start_pos = control.resume->seed_pos;
  } else {
    for (const auto& p : base.points()) {
      DesignPoint copy = p;
      copy.extra = false;
      red.add(std::move(copy));
    }
  }

  // Explore at most max_red_seeds seeds, spread evenly across the front.
  std::vector<std::size_t> seed_idx;
  const std::size_t n = base.size();
  const std::size_t want = std::min(cfg_.max_red_seeds, n);
  for (std::size_t i = 0; i < want; ++i) {
    seed_idx.push_back(i * n / want);
  }

  // One pool for all per-seed runs; the average-dRC memo is valid across
  // seeds (the base set is fixed), but each run gets a FRESH Evaluation memo
  // because RedProblem's constraint violations are seed-relative. Cross-seed
  // schedule sharing still happens in the problem's schedule cache.
  util::ThreadPool pool(cfg_.threads);
  moea::GenomeCache<double> drc_cache(cfg_.eval_cache_capacity);

  moea::Nsga2 nsga(cfg_.red_ga);
  for (std::size_t pos = start_pos; pos < seed_idx.size(); ++pos) {
    const std::size_t si = seed_idx[pos];
    CLR_TRACE_SPAN(seed_span, trace::Category::Dse, "dse.red_seed", {{"seed_index", si}});
    const DesignPoint& seed = base.point(si);
    const double seed_avg_drc = reconfig_->average_drc(seed.config, base_configs);

    RedProblem red_problem(*problem_, *reconfig_, base_configs, seed, base.ranges(), cfg_,
                           &drc_cache);
    // Seed the secondary GA with the seed point, the *other* front points,
    // and mutated copies of the seed. Crossover can then blend a cheap
    // point's task binding with the seed's CLR configuration — CLR/priority
    // changes are free (§3.5), so such blends are exactly the cheap-to-reach
    // QoS-strong targets of Fig. 4b.
    //
    // When resuming into this seed's GA, the seed list (and its mutation
    // draws) is skipped: the GA restores its own population and the RNG
    // stream from the saved boundary, which already reflects those draws.
    const bool resuming_here = control.resume != nullptr && pos == start_pos;
    std::vector<std::vector<int>> seeds;
    if (!resuming_here) {
      const auto seed_genes = problem_->encode(seed.config);
      seeds.push_back(seed_genes);
      for (const auto& other : base.points()) {
        if (seeds.size() + 1 >= cfg_.red_ga.population) break;
        seeds.push_back(problem_->encode(other.config));
      }
      while (seeds.size() < cfg_.red_ga.population * 3 / 4) {
        auto mutated = seed_genes;
        moea::reset_mutation(red_problem, mutated, 0.10, rng);
        seeds.push_back(std::move(mutated));
      }
    }

    moea::GaRunControl ga_control;
    ga_control.stop = control.stop;
    if (control.on_boundary) {
      ga_control.on_boundary = [&](const moea::GaState& state) {
        RedProgress progress;
        progress.seed_pos = pos;
        progress.ga = state;
        progress.red = red;
        control.on_boundary(progress);
      };
    }
    if (resuming_here) ga_control.resume = &control.resume->ga;

    moea::EvalCache eval_cache(cfg_.eval_cache_capacity);
    const auto result = nsga.run(red_problem, rng, seeds, {&pool, &eval_cache, cfg_.batched_eval},
                                 &ga_control);
    CLR_TRACE_COUNTER(trace::Category::Dse, "dse.red_drc_cache.hits",
                      static_cast<double>(drc_cache.hits()));
    CLR_TRACE_COUNTER(trace::Category::Dse, "dse.red_drc_cache.misses",
                      static_cast<double>(drc_cache.misses()));

    if (!result.complete) {
      // Stopped mid-seed: the boundary callback already reported the
      // restartable state; return the extras collected from finished seeds.
      StageOutcome partial;
      partial.db = std::move(red);
      partial.complete = false;
      return partial;
    }

    // Collect candidates that are strictly cheaper to reach than the seed.
    // On a resume that lands exactly on a finished GA (its final boundary),
    // the GA above no-ops and this re-collection is pure deterministic
    // recomputation — DesignDb::add deduplicates, so extras are never
    // double-counted.
    struct Candidate {
      DesignPoint point;
      double avg_drc;
    };
    std::vector<Candidate> candidates;
    for (const auto& ind : result.archive.members()) {
      const double avg_drc = ind.eval.objectives[0];
      if (avg_drc + 1e-12 >= seed_avg_drc) continue;
      candidates.push_back({make_point(ind.genes, /*extra=*/true), avg_drc});
    }

    // Keep the best candidates for each run-time regime:
    //  - cheapest average dRC (serves pRC -> 0, QoS may degrade in-band),
    //  - lowest energy (serves pRC -> 1),
    //  - cheapest among candidates that lose NO QoS vs the seed — the
    //    same-QoS twin F''_Op of Fig. 4b, feasible whenever the seed is.
    auto keep_best = [&](auto cmp, auto filter) {
      std::vector<const Candidate*> pool;
      for (const auto& c : candidates) {
        if (filter(c)) pool.push_back(&c);
      }
      std::sort(pool.begin(), pool.end(), [&](const Candidate* a, const Candidate* b) {
        return cmp(*a, *b);
      });
      std::size_t kept = 0;
      for (const Candidate* c : pool) {
        if (kept >= cfg_.extras_per_seed) break;
        const std::size_t before = red.size();
        red.add(c->point);
        if (red.size() > before) ++kept;
      }
    };
    const auto any = [](const Candidate&) { return true; };
    const auto no_qos_loss = [&](const Candidate& c) {
      return c.point.func_rel >= seed.func_rel - 1e-12 &&
             c.point.makespan <= seed.makespan + 1e-12;
    };
    const auto by_drc = [](const Candidate& a, const Candidate& b) {
      return a.avg_drc < b.avg_drc;
    };
    const auto by_energy = [](const Candidate& a, const Candidate& b) {
      return a.point.energy < b.point.energy;
    };
    keep_best(by_drc, any);
    keep_best(by_energy, any);
    keep_best(by_drc, no_qos_loss);
  }
  StageOutcome outcome;
  outcome.db = std::move(red);
  return outcome;
}

DesignTimeDse::Result DesignTimeDse::run(util::Rng& rng) const {
  Result r;
  r.based = run_base(rng);
  r.red = run_red(r.based, rng);
  return r;
}

}  // namespace clr::dse
