#pragma once
// Design/compile-time exploration (paper §4.2, Fig. 3 left):
//
//  1. System-level MOEA — a hypervolume-fitness GA (Eq. 5 / Fig. 4a) over the
//     CLR-integrated mapping space, producing the Pareto-front database
//     **BaseD** (the [11]-style baseline).
//  2. Reconfiguration-cost-aware MOEA (**ReD**, §4.2.1) — for every BaseD
//     point, a secondary MOEA seeded at that point searches for additional
//     non-dominant points within a QoS/performance degradation tolerance
//     whose *average dRC to the optimal set* is lower, i.e. points that are
//     cheap to reach at run-time (the F''_Op of Fig. 4b).

#include <functional>

#include "common/stop.hpp"
#include "dse/design_db.hpp"
#include "dse/mapping_problem.hpp"
#include "moea/control.hpp"
#include "moea/hvga.hpp"
#include "moea/nsga2.hpp"
#include "reconfig/reconfig.hpp"

namespace clr::dse {

/// Parameters for the two design-time stages. GA operator probabilities
/// default to the paper's §5.1 values (0.7 / 0.03 / tournament 5).
struct DseConfig {
  moea::GaParams base_ga{.population = 80, .generations = 120};
  moea::GaParams red_ga{.population = 40, .generations = 40};
  /// Makespan degradation tolerated by a ReD point vs its seed, as a
  /// fraction of the BaseD front's makespan band. Kept moderate: an extra
  /// must satisfy (almost) the same QoS demands as its seed, otherwise it is
  /// never feasible exactly when the run-time needs a cheap target
  /// (Fig. 4b: F''_Op meets the constraints of S').
  double tol_makespan_band = 0.35;
  /// Functional-reliability degradation tolerated vs the seed, as a fraction
  /// of the BaseD front's reliability band.
  double tol_func_rel_band = 0.35;
  /// Relative energy (R) degradation tolerated by a ReD point vs its seed.
  /// This is where most of the slack lives: paying some energy for cheap
  /// reachability is the ReD trade.
  double tol_energy = 0.25;
  /// Extra points kept per BaseD seed from EACH end of the secondary front
  /// (cheapest average dRC, lowest energy).
  std::size_t extras_per_seed = 2;
  /// Cap on BaseD seeds explored by the ReD stage (storage constraint input
  /// of Fig. 3); all are explored when the front is smaller.
  std::size_t max_red_seeds = 16;
  /// Random configurations sampled to calibrate the Eq. (5) reference point
  /// and objective scales.
  std::size_t calibration_samples = 64;
  /// Seed the system-level GA with a HEFT-constructed mapping (upward-rank
  /// priorities + EFT-greedy binding, unprotected CLR). Accelerates
  /// convergence on the makespan-tight corner of the front.
  bool heft_seeding = true;
  /// Storage budget for the BaseD database (Fig. 3 "Storage Constraints"):
  /// when the raw Pareto front is larger it is thinned to this many points,
  /// keeping objective-space extremes and the best-spread (crowding) points.
  std::size_t max_base_points = 28;
  /// Evaluation concurrency for both stages (and the calibration sampling):
  /// 0 = std::thread::hardware_concurrency(). Results are identical at any
  /// thread count — see DESIGN.md "Parallel evaluation & determinism".
  std::size_t threads = 0;
  /// Route GA evaluation through the batched SIMD kernel
  /// (CompiledGraph::evaluate_batch) instead of per-genome scalar calls.
  /// Bit-identical either way (DESIGN.md §5.10); the switch exists for the
  /// side-by-side throughput bench and A/B debugging.
  bool batched_eval = true;
  /// Capacity of the chromosome -> Evaluation memo handed to the engines.
  /// The BaseD run keeps one across all generations; each ReD run gets a
  /// fresh one (its constraint violations are seed-relative), with the
  /// cross-seed sharing happening in MappingProblem's schedule cache.
  std::size_t eval_cache_capacity = 1 << 16;
};

/// The secondary ReD optimization problem: minimize (avg dRC to the BaseD
/// set, Japp) subject to the global QoS spec and the per-seed degradation
/// tolerances.
class RedProblem : public moea::Problem {
 public:
  /// @param drc_cache optional genome -> average-dRC memo shared across the
  ///        per-seed ReD runs (valid for one fixed base_configs set).
  RedProblem(const MappingProblem& mapping, const recfg::ReconfigModel& reconfig,
             std::vector<sched::Configuration> base_configs, const DesignPoint& seed,
             const MetricRanges& base_ranges, const DseConfig& cfg,
             moea::GenomeCache<double>* drc_cache = nullptr);

  std::size_t num_genes() const override { return mapping_->num_genes(); }
  int domain_size(std::size_t locus) const override { return mapping_->domain_size(locus); }
  std::size_t num_objectives() const override { return 2; }
  moea::Evaluation evaluate(const std::vector<int>& genes) const override;

  /// Primes the mapping problem's schedule memo through the SIMD batch
  /// kernel, then runs the per-genome tail (dRC memo + tolerance
  /// constraints). Bit-identical to sequential evaluate() calls.
  void evaluate_batch(std::span<moea::Individual* const> batch) const override;

 private:
  const MappingProblem* mapping_;
  const recfg::ReconfigModel* reconfig_;
  std::vector<sched::Configuration> base_configs_;
  DesignPoint seed_;
  MetricRanges base_ranges_;
  const DseConfig* cfg_;
  moea::GenomeCache<double>* drc_cache_;
};

/// Restartable state of the BaseD stage at a GA generation boundary
/// (DESIGN.md §5.12). The Eq. (5) reference/scale calibration happens before
/// the GA and consumes RNG draws, so it is captured here; everything after
/// the GA (front thinning, DesignDb construction) is deterministic
/// recomputation from the archive.
struct BaseProgress {
  std::vector<double> ref;
  std::vector<double> scale;
  moea::GaState ga;
};

/// Run control for the resumable BaseD stage.
struct BaseControl {
  util::StopToken stop;
  /// Invoked at every GA generation boundary with the full restartable state.
  std::function<void(const BaseProgress&)> on_boundary;
  /// When non-null, continue from this boundary (calibration is skipped; the
  /// RNG stream is restored from the saved GA state).
  const BaseProgress* resume = nullptr;
};

/// Restartable state of the ReD stage: which BaseD seed's secondary GA is in
/// flight (`seed_pos` indexes the deterministic seed schedule), that GA's
/// boundary state, and the ReD database accumulated from all *completed*
/// seeds. A checkpoint taken at a finished GA's final boundary resumes into
/// a no-op GA run whose extras are re-collected deterministically
/// (DesignDb::add deduplicates), so no boundary is unsafe to crash on.
struct RedProgress {
  std::size_t seed_pos = 0;
  moea::GaState ga;
  DesignDb red;
};

/// Run control for the resumable ReD stage.
struct RedControl {
  util::StopToken stop;
  std::function<void(const RedProgress&)> on_boundary;
  const RedProgress* resume = nullptr;
};

/// Result of a resumable stage: the (possibly partial) database and whether
/// the stage ran to completion or was cut short by a cooperative stop.
struct StageOutcome {
  DesignDb db;
  bool complete = true;
};

/// Orchestrates both design-time stages for one application.
class DesignTimeDse {
 public:
  DesignTimeDse(const MappingProblem& problem, const recfg::ReconfigModel& reconfig,
                DseConfig cfg = {});

  /// Stage 1: Pareto-front database (BaseD).
  DesignDb run_base(util::Rng& rng) const;

  /// Stage 2: BaseD plus the reconfiguration-cost-aware extras (ReD).
  DesignDb run_red(const DesignDb& base, util::Rng& rng) const;

  /// Stage 1 with cooperative stop / checkpoint boundaries / resume. With a
  /// default-constructed control this is bit-identical to run_base; an
  /// interrupted run resumed from the last reported BaseProgress is
  /// bit-identical to the uninterrupted run.
  StageOutcome run_base_resumable(util::Rng& rng, const BaseControl& control) const;

  /// Stage 2, resumable; same contract as run_base_resumable.
  StageOutcome run_red_resumable(const DesignDb& base, util::Rng& rng,
                                 const RedControl& control) const;

  /// Convenience: both stages.
  struct Result {
    DesignDb based;
    DesignDb red;
  };
  Result run(util::Rng& rng) const;

  /// Build a fully-evaluated design point from a configuration (always
  /// re-runs the scheduler; prefer the chromosome overload inside the flow).
  DesignPoint make_point(const sched::Configuration& cfg, bool extra = false) const;

  /// Build a design point from a chromosome via the problem's schedule memo:
  /// archived points were already evaluated during the GA run, so this is a
  /// cache hit instead of a redundant scheduler invocation.
  DesignPoint make_point(const std::vector<int>& genes, bool extra = false) const;

  const DseConfig& config() const { return cfg_; }

 private:
  const MappingProblem* problem_;
  const recfg::ReconfigModel* reconfig_;
  DseConfig cfg_;
};

}  // namespace clr::dse
