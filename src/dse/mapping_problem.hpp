#pragma once
// The CLR-integrated task-mapping search space of Eq. (4):
//   Xapp = Π_t (Mt x Ct),  Mt = Pt x It x Qt
// encoded as 4 integer genes per task: PE binding (restricted to PEs with a
// compatible implementation), implementation choice, CLR-config index and
// list-scheduling priority.

#include <atomic>
#include <cstdint>
#include <vector>

#include "moea/eval_cache.hpp"
#include "moea/problem.hpp"
#include "schedule/compiled_graph.hpp"
#include "schedule/scheduler.hpp"

namespace clr::dse {

/// QoS specification (SSPEC, FSPEC) of Eq. (4): an upper bound on average
/// makespan and a lower bound on functional reliability.
struct QosSpec {
  double max_makespan = 0.0;  ///< SSPEC
  double min_func_rel = 0.0;  ///< FSPEC

  bool satisfied_by(double makespan, double func_rel) const {
    return makespan <= max_makespan && func_rel >= min_func_rel;
  }
};

/// Objective layout of the design-time problem.
enum class ObjectiveMode {
  /// {Japp, Sapp, -Fapp} — the full Eq. (5) trade-off space.
  EnergyQos,
  /// {Sapp, -Fapp} — the constraint-satisfaction variant of §5.2 (R(Xi)=0).
  CspQos,
  /// {Japp, -MTTF} under QoS constraints — the lifetime-optimization
  /// extension the paper suggests ("Other metrics such as MTTF can be added
  /// to R(Xi) for optimization of system lifetime").
  EnergyLifetime,
};

/// Scalar slice of a ScheduleResult — everything the DSE objectives and
/// design points consume. The per-task schedule is dropped so memo-cache
/// entries stay small.
struct ScheduleMetrics {
  double makespan = 0.0;
  double func_rel = 0.0;
  double peak_power = 0.0;
  double energy = 0.0;
  double system_mttf = 0.0;

  static ScheduleMetrics of(const sched::ScheduleResult& res) {
    return {res.makespan, res.func_rel, res.peak_power, res.energy, res.system_mttf};
  }
  static ScheduleMetrics of(const sched::KernelMetrics& m) {
    return {m.makespan, m.func_rel, m.peak_power, m.energy, m.system_mttf};
  }
};

/// moea::Problem adapter over the list-scheduler evaluation.
class MappingProblem : public moea::Problem {
 public:
  /// @param spec the reference QoS corner (max SSPEC / min FSPEC of Eq. 5);
  ///        configurations beyond it are constraint-violating.
  /// @param excluded_pes PEs removed from the binding domain — the paper's
  ///        reduced-resource-availability scenario (a permanent PE fault is
  ///        "a separate instance of this scenario with ... the number of
  ///        available PEs", §4). Throws when a task is left without any
  ///        runnable PE.
  MappingProblem(const sched::EvalContext& ctx, QosSpec spec, ObjectiveMode mode,
                 std::vector<plat::PeId> excluded_pes = {});

  std::size_t num_genes() const override { return 4 * num_tasks_; }
  int domain_size(std::size_t locus) const override;
  std::size_t num_objectives() const override {
    return mode_ == ObjectiveMode::EnergyQos ? 3 : 2;  // CspQos/EnergyLifetime: 2
  }
  moea::Evaluation evaluate(const std::vector<int>& genes) const override;

  /// Batched evaluation (DESIGN.md §5.10): resolves schedule-cache hits,
  /// then decodes the misses into SoA blocks and runs them through
  /// CompiledGraph::evaluate_batch. Bit-identical to per-genome evaluate()
  /// at any batch size/partitioning.
  void evaluate_batch(std::span<moea::Individual* const> batch) const override;

  /// Batched evaluate_metrics: out[i] receives evaluate_metrics(*genes[i]),
  /// with cache misses evaluated in SoA blocks through the SIMD kernel.
  /// Bit-identical to the scalar path; duplicate genomes within one call may
  /// each count as a schedule run (the scalar sequence would memo-hit the
  /// second), so callers wanting exact run counts should dedup first.
  void evaluate_metrics_batch(std::span<const std::vector<int>* const> genes,
                              ScheduleMetrics* out) const;

  /// Decode a chromosome into a concrete configuration (always valid:
  /// PE/implementation compatibility is guaranteed by construction).
  sched::Configuration decode(const std::vector<int>& genes) const;

  /// decode() into caller-owned storage — allocation-free once `out` is warm
  /// for this problem's task count (the steady-state evaluation path).
  void decode_into(const std::vector<int>& genes, sched::Configuration* out) const;

  /// Inverse of decode (used to seed the ReD stage from BaseD points).
  /// Throws std::invalid_argument when cfg uses a (pe, impl) pair that the
  /// encoding cannot express.
  std::vector<int> encode(const sched::Configuration& cfg) const;

  /// Full schedule evaluation of a decoded configuration (uncached). Runs
  /// the flat CompiledGraph kernel — bit-identical to ListScheduler.
  sched::ScheduleResult evaluate_schedule(const sched::Configuration& cfg) const;

  /// Memoized decode + schedule keyed by chromosome: a genome is run through
  /// the ListScheduler at most once across the whole design-time flow —
  /// BaseD generations, every ReD run and DesignTimeDse::make_point all
  /// share this cache. Thread-safe.
  ScheduleMetrics evaluate_metrics(const std::vector<int>& genes) const;

  const sched::EvalContext& context() const { return *ctx_; }

  /// The flat evaluation kernel compiled from this problem's context (shared,
  /// read-only; used by the GA hot loop and the HEFT seeding overloads).
  const sched::CompiledGraph& compiled() const { return compiled_; }

  const QosSpec& spec() const { return spec_; }
  ObjectiveMode mode() const { return mode_; }

  /// Objective vector for a schedule result under this mode.
  std::vector<double> objectives_of(const ScheduleMetrics& m) const;

  /// Full Evaluation (objectives + Eq. (5) constraint violations) for
  /// already-computed metrics — the shared tail of evaluate() and
  /// evaluate_batch().
  moea::Evaluation evaluation_of(const ScheduleMetrics& m) const;
  std::vector<double> objectives_of(const sched::ScheduleResult& result) const {
    return objectives_of(ScheduleMetrics::of(result));
  }

  /// Actual ListScheduler invocations so far (memo misses + direct calls) —
  /// the "evals" of the throughput bench.
  std::uint64_t schedule_runs() const { return schedule_runs_.load(std::memory_order_relaxed); }

  /// The genome -> ScheduleMetrics memo (hit/miss/eviction counters).
  const moea::GenomeCache<ScheduleMetrics>& schedule_cache() const { return schedule_cache_; }

 private:
  const sched::EvalContext* ctx_;
  sched::CompiledGraph compiled_;
  QosSpec spec_;
  ObjectiveMode mode_;
  std::size_t num_tasks_;
  /// Per task: PEs that have at least one compatible implementation.
  std::vector<std::vector<plat::PeId>> allowed_pes_;
  /// Per task / per allowed-PE slot: compatible implementation indices.
  std::vector<std::vector<std::vector<std::size_t>>> compat_impls_;
  mutable moea::GenomeCache<ScheduleMetrics> schedule_cache_{1 << 16};
  mutable std::atomic<std::uint64_t> schedule_runs_{0};
};

}  // namespace clr::dse
