#pragma once
// Stored design-point database — the artifact the design-time stage hands to
// the run-time agent (Fig. 3 "Design points database"). BaseD holds only the
// Pareto front; ReD additionally holds the reconfiguration-cost-aware
// non-dominant points of §4.2.1 (flagged `extra`).

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "dse/mapping_problem.hpp"
#include "schedule/configuration.hpp"

namespace clr::dse {

/// One stored design point with its cached QoS/performance metrics.
struct DesignPoint {
  sched::Configuration config;
  double energy = 0.0;     ///< Japp (R = -Japp)
  double makespan = 0.0;   ///< Sapp
  double func_rel = 0.0;   ///< Fapp
  /// True for ReD's additional reconfiguration-cost-aware points.
  bool extra = false;

  bool feasible_for(const QosSpec& spec) const {
    return spec.satisfied_by(makespan, func_rel);
  }
};

/// Observed metric ranges over a database (for min-max normalization and for
/// deriving the run-time QoS process).
struct MetricRanges {
  double energy_min = 0.0, energy_max = 0.0;
  double makespan_min = 0.0, makespan_max = 0.0;
  double func_rel_min = 0.0, func_rel_max = 0.0;

  bool operator==(const MetricRanges&) const = default;
};

class DesignDb {
 public:
  DesignDb() = default;

  /// Add a point; rejects exact configuration duplicates. Returns the index
  /// of the stored (or pre-existing) point.
  std::size_t add(DesignPoint point);

  /// Pre-size the point storage (bulk loaders: snapshot materialization).
  void reserve(std::size_t n) { points_.reserve(n); }

  std::size_t size() const { return points_.size(); }
  bool empty() const { return points_.empty(); }
  const DesignPoint& point(std::size_t i) const { return points_.at(i); }
  const std::vector<DesignPoint>& points() const { return points_; }

  /// Indices of points satisfying `spec` (the FEAS set of Algorithm 1).
  /// A non-null `point_alive` mask (size() entries; see flt::PlatformHealth)
  /// additionally drops points that died with a failed PE.
  std::vector<std::size_t> feasible_indices(const QosSpec& spec,
                                            const std::vector<bool>* point_alive = nullptr) const;

  /// Index of the point minimizing total relative QoS violation — the
  /// fallback when no stored point satisfies the new spec. With a mask the
  /// search is restricted to alive points; throws std::logic_error when the
  /// mask excludes everything.
  std::size_t least_violating(const QosSpec& spec,
                              const std::vector<bool>* point_alive = nullptr) const;

  /// Total relative QoS violation of point `i` w.r.t. `spec` (0 = feasible):
  /// the measure least_violating() minimizes and the degraded-mode tolerance
  /// check compares against.
  double violation_of(std::size_t i, const QosSpec& spec) const;

  /// True when point `i` binds at least one task to `pe`.
  bool uses_pe(std::size_t i, plat::PeId pe) const;

  /// Metric ranges over all stored points.
  MetricRanges ranges() const;

  /// Number of `extra` (ReD) points.
  std::size_t num_extra() const;

  /// All stored configurations (the reconfiguration targets for avg-dRC).
  std::vector<sched::Configuration> configurations() const;

  /// Database restricted to points that do not bind any task to `failed_pe`
  /// — the run-time reaction to a permanent PE fault (§4: "a permanent fault
  /// to one of the PEs resulting in reduced resource availability").
  DesignDb without_pe(plat::PeId failed_pe) const;

  /// Human-readable summary ("N points (M extra), S in [..], F in [..]").
  std::string summary() const;

 private:
  std::vector<DesignPoint> points_;
  /// FNV-1a(configuration) -> stored indices with that hash. Dedup in add()
  /// probes the bucket with full Configuration equality (a collision degrades
  /// to an extra comparison, never a wrong match), turning the archive-wide
  /// duplicate scan from O(n) per insert into O(1) amortized.
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> index_;
};

/// Deterministic 64-bit FNV-1a over a configuration's decision variables
/// (same idiom as moea::hash_genes; shared by the DesignDb dedup index).
std::uint64_t hash_configuration(const sched::Configuration& config);

}  // namespace clr::dse
