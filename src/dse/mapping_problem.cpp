#include "dse/mapping_problem.hpp"

#include <algorithm>
#include <stdexcept>

#include "schedule/batch.hpp"

namespace clr::dse {

namespace {

/// Per-thread reusable kernel state: the scratch arenas plus a decode
/// target, so steady-state evaluation (cache miss -> decode -> kernel)
/// performs zero heap allocations once warm. Shared across problems;
/// EvalScratch::bind / BatchScratch::bind and decode_into re-size on shape
/// changes.
struct ThreadEvalState {
  sched::EvalScratch scratch;
  sched::BatchScratch batch_scratch;
  sched::Configuration cfg;
  // evaluate_batch / evaluate_metrics_batch staging (reused, so the steady
  // state stays allocation-free once the vectors have grown to batch size).
  std::vector<std::size_t> miss_idx;
  std::vector<const std::vector<int>*> gene_ptrs;
  std::vector<dse::ScheduleMetrics> metrics;
};

ThreadEvalState& thread_eval_state() {
  thread_local ThreadEvalState state;
  return state;
}

}  // namespace

MappingProblem::MappingProblem(const sched::EvalContext& ctx, QosSpec spec, ObjectiveMode mode,
                               std::vector<plat::PeId> excluded_pes)
    : ctx_(&ctx), compiled_(ctx), spec_(spec), mode_(mode), num_tasks_(ctx.graph->num_tasks()) {
  ctx.check();
  if (spec.max_makespan <= 0.0) throw std::invalid_argument("MappingProblem: SSPEC must be > 0");
  if (spec.min_func_rel < 0.0 || spec.min_func_rel > 1.0) {
    throw std::invalid_argument("MappingProblem: FSPEC must be in [0,1]");
  }

  allowed_pes_.resize(num_tasks_);
  compat_impls_.resize(num_tasks_);
  for (tg::TaskId t = 0; t < num_tasks_; ++t) {
    for (const auto& pe : ctx.platform->pes()) {
      if (std::find(excluded_pes.begin(), excluded_pes.end(), pe.id) != excluded_pes.end()) {
        continue;
      }
      auto compat = ctx.impls->compatible_with(t, pe.type);
      if (compat.empty()) continue;
      allowed_pes_[t].push_back(pe.id);
      compat_impls_[t].push_back(std::move(compat));
    }
    if (allowed_pes_[t].empty()) {
      throw std::invalid_argument("MappingProblem: task has no runnable PE");
    }
  }
}

int MappingProblem::domain_size(std::size_t locus) const {
  const std::size_t t = locus / 4;
  if (t >= num_tasks_) throw std::out_of_range("MappingProblem: locus out of range");
  switch (locus % 4) {
    case 0:  // PE slot
      return static_cast<int>(allowed_pes_[t].size());
    case 1: {  // implementation slot (decoded modulo the bound PE's count)
      std::size_t max_c = 1;
      for (const auto& c : compat_impls_[t]) max_c = std::max(max_c, c.size());
      return static_cast<int>(max_c);
    }
    case 2:  // CLR configuration
      return static_cast<int>(ctx_->clr_space->size());
    default:  // priority
      return static_cast<int>(num_tasks_);
  }
}

sched::Configuration MappingProblem::decode(const std::vector<int>& genes) const {
  sched::Configuration cfg;
  decode_into(genes, &cfg);
  return cfg;
}

void MappingProblem::decode_into(const std::vector<int>& genes, sched::Configuration* out) const {
  if (genes.size() != num_genes()) throw std::invalid_argument("decode: gene count mismatch");
  sched::Configuration& cfg = *out;
  cfg.tasks.resize(num_tasks_);
  for (tg::TaskId t = 0; t < num_tasks_; ++t) {
    const int g_pe = genes[4 * t];
    const int g_impl = genes[4 * t + 1];
    const int g_clr = genes[4 * t + 2];
    const int g_prio = genes[4 * t + 3];

    const auto slot = static_cast<std::size_t>(g_pe) % allowed_pes_[t].size();
    const auto& compat = compat_impls_[t][slot];
    sched::TaskAssignment& a = cfg[t];
    a.pe = allowed_pes_[t][slot];
    a.impl_index = static_cast<std::uint32_t>(compat[static_cast<std::size_t>(g_impl) % compat.size()]);
    a.clr_index = static_cast<std::uint32_t>(static_cast<std::size_t>(g_clr) % ctx_->clr_space->size());
    a.priority = g_prio;
  }
}

std::vector<int> MappingProblem::encode(const sched::Configuration& cfg) const {
  if (cfg.size() != num_tasks_) throw std::invalid_argument("encode: configuration size mismatch");
  std::vector<int> genes(num_genes(), 0);
  for (tg::TaskId t = 0; t < num_tasks_; ++t) {
    const auto& a = cfg[t];
    const auto& pes = allowed_pes_[t];
    const auto it = std::find(pes.begin(), pes.end(), a.pe);
    if (it == pes.end()) throw std::invalid_argument("encode: PE not allowed for task");
    const auto slot = static_cast<std::size_t>(it - pes.begin());
    const auto& compat = compat_impls_[t][slot];
    const auto impl_it = std::find(compat.begin(), compat.end(), a.impl_index);
    if (impl_it == compat.end()) throw std::invalid_argument("encode: impl not compatible");
    genes[4 * t] = static_cast<int>(slot);
    genes[4 * t + 1] = static_cast<int>(impl_it - compat.begin());
    genes[4 * t + 2] = static_cast<int>(a.clr_index);
    genes[4 * t + 3] = std::clamp(a.priority, 0, static_cast<int>(num_tasks_) - 1);
  }
  return genes;
}

sched::ScheduleResult MappingProblem::evaluate_schedule(const sched::Configuration& cfg) const {
  schedule_runs_.fetch_add(1, std::memory_order_relaxed);
  return compiled_.schedule(cfg, thread_eval_state().scratch);
}

ScheduleMetrics MappingProblem::evaluate_metrics(const std::vector<int>& genes) const {
  ScheduleMetrics m;
  if (schedule_cache_.lookup(genes, &m)) return m;
  // Miss: decode + kernel run against the calling thread's arena. Only the
  // memo store below touches the heap.
  ThreadEvalState& state = thread_eval_state();
  decode_into(genes, &state.cfg);
  schedule_runs_.fetch_add(1, std::memory_order_relaxed);
  m = ScheduleMetrics::of(compiled_.evaluate(state.cfg, state.scratch));
  schedule_cache_.store(genes, m);
  return m;
}

std::vector<double> MappingProblem::objectives_of(const ScheduleMetrics& m) const {
  switch (mode_) {
    case ObjectiveMode::EnergyQos:
      return {m.energy, m.makespan, -m.func_rel};
    case ObjectiveMode::CspQos:
      return {m.makespan, -m.func_rel};
    case ObjectiveMode::EnergyLifetime:
      return {m.energy, -m.system_mttf};
  }
  throw std::logic_error("MappingProblem: unknown objective mode");
}

void MappingProblem::evaluate_metrics_batch(std::span<const std::vector<int>* const> genes,
                                            ScheduleMetrics* out) const {
  static_assert(sched::BatchGenomes::kLanes == 8,
                "BatchEvaluator's chunk size assumes 8-lane blocks");
  constexpr std::size_t kL = sched::BatchGenomes::kLanes;
  ThreadEvalState& state = thread_eval_state();

  // Resolve memo hits first; the misses are evaluated in SoA blocks. The
  // block composition is fixed by miss order, and each lane's result is
  // independent of its co-lanes, so partitioning can never change bits.
  state.miss_idx.clear();
  for (std::size_t i = 0; i < genes.size(); ++i) {
    if (!schedule_cache_.lookup(*genes[i], &out[i])) state.miss_idx.push_back(i);
  }

  sched::KernelMetrics km[kL];
  state.batch_scratch.genomes.bind(num_tasks_);
  for (std::size_t base = 0; base < state.miss_idx.size(); base += kL) {
    const std::size_t lanes = std::min(kL, state.miss_idx.size() - base);
    for (std::size_t l = 0; l < lanes; ++l) {
      decode_into(*genes[state.miss_idx[base + l]], &state.cfg);
      state.batch_scratch.genomes.set(l, state.cfg);
    }
    schedule_runs_.fetch_add(lanes, std::memory_order_relaxed);
    compiled_.evaluate_block(state.batch_scratch.genomes, lanes, state.batch_scratch, km);
    for (std::size_t l = 0; l < lanes; ++l) {
      const std::size_t i = state.miss_idx[base + l];
      out[i] = ScheduleMetrics::of(km[l]);
      schedule_cache_.store(*genes[i], out[i]);
    }
  }
}

void MappingProblem::evaluate_batch(std::span<moea::Individual* const> batch) const {
  ThreadEvalState& state = thread_eval_state();
  state.gene_ptrs.clear();
  for (const moea::Individual* ind : batch) state.gene_ptrs.push_back(&ind->genes);
  state.metrics.resize(batch.size());
  evaluate_metrics_batch({state.gene_ptrs.data(), state.gene_ptrs.size()}, state.metrics.data());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    batch[i]->eval = evaluation_of(state.metrics[i]);
  }
}

moea::Evaluation MappingProblem::evaluate(const std::vector<int>& genes) const {
  return evaluation_of(evaluate_metrics(genes));
}

moea::Evaluation MappingProblem::evaluation_of(const ScheduleMetrics& result) const {
  moea::Evaluation eval;
  eval.objectives = objectives_of(result);

  // Relative constraint violations against the Eq. (5) reference corner.
  double violation = 0.0;
  if (result.makespan > spec_.max_makespan) {
    violation += (result.makespan - spec_.max_makespan) / spec_.max_makespan;
  }
  if (result.func_rel < spec_.min_func_rel) {
    violation += (spec_.min_func_rel - result.func_rel) / std::max(spec_.min_func_rel, 1e-9);
  }
  eval.violation = violation;
  return eval;
}

}  // namespace clr::dse
