#include "dse/design_db.hpp"

#include <algorithm>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace clr::dse {

std::uint64_t hash_configuration(const sched::Configuration& config) {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  const auto mix = [&h](std::uint64_t word) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (word >> (8 * byte)) & 0xffULL;
      h *= 0x100000001b3ULL;  // FNV-1a prime
    }
  };
  for (const auto& t : config.tasks) {
    mix((static_cast<std::uint64_t>(t.pe) << 32) | t.impl_index);
    mix((static_cast<std::uint64_t>(t.clr_index) << 32) |
        static_cast<std::uint32_t>(t.priority));
  }
  return h;
}

std::size_t DesignDb::add(DesignPoint point) {
  auto& bucket = index_[hash_configuration(point.config)];
  for (std::size_t i : bucket) {
    if (points_[i].config == point.config) return i;
  }
  bucket.push_back(points_.size());
  points_.push_back(std::move(point));
  return points_.size() - 1;
}

std::vector<std::size_t> DesignDb::feasible_indices(const QosSpec& spec,
                                                    const std::vector<bool>* point_alive) const {
  std::vector<std::size_t> result;
  for (std::size_t i = 0; i < points_.size(); ++i) {
    if (point_alive != nullptr && !(*point_alive)[i]) continue;
    if (points_[i].feasible_for(spec)) result.push_back(i);
  }
  return result;
}

double DesignDb::violation_of(std::size_t i, const QosSpec& spec) const {
  const auto& p = points_.at(i);
  double v = 0.0;
  if (p.makespan > spec.max_makespan) {
    v += (p.makespan - spec.max_makespan) / spec.max_makespan;
  }
  if (p.func_rel < spec.min_func_rel) {
    v += (spec.min_func_rel - p.func_rel) / std::max(spec.min_func_rel, 1e-9);
  }
  return v;
}

std::size_t DesignDb::least_violating(const QosSpec& spec,
                                      const std::vector<bool>* point_alive) const {
  if (points_.empty()) throw std::logic_error("DesignDb::least_violating: empty database");
  std::size_t best = points_.size();
  double best_violation = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < points_.size(); ++i) {
    if (point_alive != nullptr && !(*point_alive)[i]) continue;
    const double v = violation_of(i, spec);
    if (v < best_violation) {
      best_violation = v;
      best = i;
    }
  }
  if (best == points_.size()) {
    throw std::logic_error("DesignDb::least_violating: alive-mask excludes every stored point");
  }
  return best;
}

bool DesignDb::uses_pe(std::size_t i, plat::PeId pe) const {
  const auto& tasks = points_.at(i).config.tasks;
  return std::any_of(tasks.begin(), tasks.end(),
                     [&](const sched::TaskAssignment& a) { return a.pe == pe; });
}

MetricRanges DesignDb::ranges() const {
  MetricRanges r;
  if (points_.empty()) return r;
  r.energy_min = r.energy_max = points_.front().energy;
  r.makespan_min = r.makespan_max = points_.front().makespan;
  r.func_rel_min = r.func_rel_max = points_.front().func_rel;
  for (const auto& p : points_) {
    r.energy_min = std::min(r.energy_min, p.energy);
    r.energy_max = std::max(r.energy_max, p.energy);
    r.makespan_min = std::min(r.makespan_min, p.makespan);
    r.makespan_max = std::max(r.makespan_max, p.makespan);
    r.func_rel_min = std::min(r.func_rel_min, p.func_rel);
    r.func_rel_max = std::max(r.func_rel_max, p.func_rel);
  }
  return r;
}

std::size_t DesignDb::num_extra() const {
  return static_cast<std::size_t>(
      std::count_if(points_.begin(), points_.end(), [](const DesignPoint& p) { return p.extra; }));
}

std::vector<sched::Configuration> DesignDb::configurations() const {
  std::vector<sched::Configuration> result;
  result.reserve(points_.size());
  for (const auto& p : points_) result.push_back(p.config);
  return result;
}

DesignDb DesignDb::without_pe(plat::PeId failed_pe) const {
  DesignDb survivor;
  for (const auto& p : points_) {
    const bool uses_failed = std::any_of(
        p.config.tasks.begin(), p.config.tasks.end(),
        [&](const sched::TaskAssignment& a) { return a.pe == failed_pe; });
    if (!uses_failed) survivor.add(p);
  }
  return survivor;
}

std::string DesignDb::summary() const {
  const MetricRanges r = ranges();
  std::ostringstream oss;
  oss << points_.size() << " points (" << num_extra() << " extra), S in [" << r.makespan_min
      << ", " << r.makespan_max << "], F in [" << r.func_rel_min << ", " << r.func_rel_max
      << "], J in [" << r.energy_min << ", " << r.energy_max << "]";
  return oss.str();
}

}  // namespace clr::dse
