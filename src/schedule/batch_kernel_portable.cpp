// Portable instantiation of the batched block kernel: compiled with the
// project's default flags, so common/simd.hpp resolves to SSE2 on x86-64,
// NEON on aarch64 and the scalar fallback elsewhere (or everywhere under
// CLR_FORCE_SCALAR). See batch_kernel.inl.
#define CLR_BATCH_KERNEL_FN evaluate_block_portable
#include "schedule/batch_kernel.inl"
