#include "schedule/dot.hpp"

#include <sstream>
#include <stdexcept>

namespace clr::sched {

namespace {

std::string node_label(const tg::Task& t) {
  std::ostringstream oss;
  if (!t.name.empty()) {
    oss << t.name;
  } else {
    oss << "t" << t.id;
  }
  oss << "\\n(type " << t.type << ")";
  return oss.str();
}

/// A small qualitative palette cycled per PE.
const char* pe_color(plat::PeId pe) {
  static const char* kColors[] = {"#a6cee3", "#b2df8a", "#fb9a99", "#fdbf6f",
                                  "#cab2d6", "#ffff99", "#1f78b4", "#33a02c"};
  return kColors[pe % (sizeof(kColors) / sizeof(kColors[0]))];
}

void emit_edges(const tg::TaskGraph& graph, std::ostringstream& oss) {
  for (const auto& e : graph.edges()) {
    oss << "  n" << e.src << " -> n" << e.dst << " [label=\"" << e.comm_time << "\"];\n";
  }
}

}  // namespace

std::string to_dot(const tg::TaskGraph& graph) {
  std::ostringstream oss;
  oss << "digraph app {\n  rankdir=TB;\n  node [shape=ellipse];\n";
  for (const auto& t : graph.tasks()) {
    oss << "  n" << t.id << " [label=\"" << node_label(t) << "\"];\n";
  }
  emit_edges(graph, oss);
  oss << "}\n";
  return oss.str();
}

std::string to_dot(const tg::TaskGraph& graph, const Configuration& cfg) {
  if (cfg.size() != graph.num_tasks()) {
    throw std::invalid_argument("to_dot: configuration size mismatch");
  }
  std::ostringstream oss;
  oss << "digraph mapped_app {\n  rankdir=TB;\n  node [shape=box, style=filled];\n";
  for (const auto& t : graph.tasks()) {
    oss << "  n" << t.id << " [label=\"" << node_label(t) << "\\nPE" << cfg[t.id].pe
        << " prio " << cfg[t.id].priority << "\", fillcolor=\"" << pe_color(cfg[t.id].pe)
        << "\"];\n";
  }
  emit_edges(graph, oss);
  oss << "}\n";
  return oss.str();
}

}  // namespace clr::sched
