#pragma once
// Flat, allocation-free schedule-evaluation kernel (DESIGN.md §5.9).
//
// Every DSE objective (Sapp/Fapp/Japp of Table 3, the hypervolume fitness of
// Eq. 5) funnels through one inner loop: ListScheduler over a candidate
// configuration followed by the Table 2/3 metric chain. The pointer-based
// reference path re-derives everything per evaluation — per-task metric
// bundles through MetricsModel (exp/tgamma), normalized criticalities (an
// O(n) sum per task), edge lists behind two indirections, and a fresh set of
// heap-allocated working vectors.
//
// CompiledGraph hoists all of that out of the loop, once per problem:
//   - graph topology in CSR form (successor/predecessor arrays with the edge
//     communication times inlined next to the endpoints),
//   - the Kahn topological order and HEFT mean execution times / compatible
//     implementation lists per (task, PE),
//   - the full Table 2 metric table for every (task, implementation, CLR
//     config) triple, flattened into contiguous rows,
//   - normalized criticalities and the PE×PE communication-factor matrix.
//
// Steady-state evaluation then runs against a caller-owned EvalScratch arena
// (one per thread) and performs zero heap allocations. Results are
// bit-identical to ReferenceScheduler::run at any thread count: the kernel
// performs the same floating-point operations in the same order (see the
// determinism contract in DESIGN.md §5.9 and tests/schedule/
// test_differential.cpp, which proves exact equality over fuzzed graphs).

#include <cstdint>
#include <span>
#include <vector>

#include "reliability/metrics.hpp"
#include "schedule/configuration.hpp"
#include "schedule/scheduler.hpp"

namespace clr::sched {

class BatchGenomes;
struct BatchScratch;
namespace detail {
struct BatchKernelAccess;
}

/// Scalar Table 3 bundle produced by one kernel evaluation (the per-task
/// windows stay in the scratch arena; see EvalScratch::start/end).
struct KernelMetrics {
  double makespan = 0.0;    ///< Sapp
  double func_rel = 0.0;    ///< Fapp
  double peak_power = 0.0;  ///< Wapp
  double energy = 0.0;      ///< Japp
  double system_mttf = 0.0;
};

/// Reusable per-thread working memory for CompiledGraph::evaluate. All
/// vectors are sized on first use for a given (tasks, PEs) shape and then
/// reused; a warm scratch makes evaluation allocation-free (pinned by
/// tests/schedule/test_alloc_pinning.cpp).
struct EvalScratch {
  /// Power-profile sweep event (kept public so the arena owns the storage).
  struct Event {
    double time;
    double delta;
  };

  std::vector<std::uint32_t> metric_row;  ///< per task: row into the metric table
  std::vector<double> start;              ///< per task: SSTt of the last evaluation
  std::vector<double> end;                ///< per task: SETt of the last evaluation
  std::vector<std::uint32_t> pending;     ///< per task: unfinished predecessors
  std::vector<std::uint32_t> ready;       ///< ready set (first ready_count slots)
  /// 2n power events for the Wapp sweep, stored as one time-sorted run per PE
  /// (a PE executes its tasks back to back, so no global sort is needed; the
  /// sweep pairwise-merges the runs through the ping-pong buffer).
  std::vector<Event> events;
  std::vector<Event> events2;           ///< merge ping-pong buffer
  std::vector<std::uint32_t> run_off;   ///< per PE: first event slot of its run
  std::vector<std::uint32_t> run_off2;  ///< merged-run offsets (ping-pong)
  std::vector<std::uint32_t> run_pos;   ///< per PE: fill cursor into its run
  std::vector<double> pe_free;         ///< per PE: next free time
  std::vector<double> aging_rate;      ///< per PE: duty-cycle aging rate
  std::size_t ready_count = 0;
  /// Ready-set priority buckets: bucket_words bitmask words per priority
  /// level (task id = bit index), used when every priority is in [0, n).
  /// The scheduling loop pops every bit it sets, so the array is all-zero
  /// between evaluations; it is re-cleared defensively on entry because an
  /// invalid-configuration throw can abandon bits mid-run.
  std::vector<std::uint64_t> prio_bucket;
  std::size_t bucket_words = 0;

  /// Size the arena for a (tasks, PEs) shape; no-op (and allocation-free)
  /// when the shape is unchanged.
  void bind(std::size_t num_tasks, std::size_t num_pes);
};

/// The compiled evaluation context: built once per MappingProblem (or once
/// per call for the one-shot ListScheduler API), read-only afterwards and
/// safe to share across threads. Snapshots the EvalContext's MetricsModel at
/// build time — rebuild after mutating the context.
class CompiledGraph {
 public:
  /// Validates the context (EvalContext::check + implementation-set/graph
  /// size agreement) and precomputes all tables. Throws std::invalid_argument
  /// on an inconsistent context.
  explicit CompiledGraph(const EvalContext& ctx);

  std::size_t num_tasks() const { return num_tasks_; }
  std::size_t num_pes() const { return num_pes_; }
  std::size_t num_edges() const { return num_edges_; }
  const EvalContext& context() const { return *ctx_; }

  /// Evaluate `cfg` into the Table 3 metrics. Performs zero heap allocations
  /// once `scratch` is warm for this graph's shape. Per-task windows are left
  /// in scratch.start/scratch.end. Throws std::invalid_argument exactly like
  /// ListScheduler on incompatible/out-of-range assignments.
  KernelMetrics evaluate(const Configuration& cfg, EvalScratch& scratch) const;

  /// Full ScheduleResult (allocates the per-task vector); semantics and bits
  /// identical to ReferenceScheduler::run.
  ScheduleResult schedule(const Configuration& cfg, EvalScratch& scratch) const;

  /// Batched evaluation (DESIGN.md §5.10): cfgs[i] -> out[i], processed in
  /// SoA blocks of BatchGenomes::kLanes through the SIMD kernel. Results are
  /// bit-identical to evaluate() per configuration at any batch size and any
  /// caller-side partitioning; zero heap allocations once `scratch` is warm.
  /// Throws like evaluate() on invalid configurations (when several are
  /// invalid, which one's exception surfaces first may differ from the
  /// sequential order). out.size() must be >= cfgs.size().
  void evaluate_batch(std::span<const Configuration> cfgs, BatchScratch& scratch,
                      std::span<KernelMetrics> out) const;

  /// One SoA block: evaluate lanes [0, lanes) of `genomes` into out[0..lanes).
  /// Pads the unused lanes itself (see BatchGenomes::pad). Per-task windows
  /// of the block are left in scratch.start/scratch.end ([task][lane]
  /// layout). The backend (AVX2 vs portable) is picked once at runtime;
  /// both compute identical bits.
  void evaluate_block(BatchGenomes& genomes, std::size_t lanes, BatchScratch& scratch,
                      KernelMetrics* out) const;

  /// Name of the batch-kernel backend the runtime dispatcher selects on this
  /// machine ("avx2" or the portable TU's simd backend). Provenance only —
  /// both backends compute identical bits.
  static const char* batch_backend();

  // --- CSR topology views (round-tripped against the pointer-based graph by
  // tests/taskgraph/test_graph_fuzz.cpp). ---

  /// Kahn topological order, identical to TaskGraph::topological_order().
  std::span<const tg::TaskId> topo_order() const { return topo_order_; }

  /// Successor task ids of `t` in edge-insertion order.
  std::span<const tg::TaskId> successors(tg::TaskId t) const {
    return {succ_.data() + out_off_[t], out_off_[t + 1] - out_off_[t]};
  }
  /// Predecessor task ids of `t` in edge-insertion order.
  std::span<const tg::TaskId> predecessors(tg::TaskId t) const {
    return {pred_.data() + in_off_[t], in_off_[t + 1] - in_off_[t]};
  }
  /// Communication times aligned with successors(t) / predecessors(t).
  std::span<const double> successor_comm(tg::TaskId t) const {
    return {succ_comm_.data() + out_off_[t], out_off_[t + 1] - out_off_[t]};
  }
  std::span<const double> predecessor_comm(tg::TaskId t) const {
    return {pred_comm_.data() + in_off_[t], in_off_[t + 1] - in_off_[t]};
  }

  // --- Flattened cost/reliability tables (consumed by the kernel and the
  // HEFT seeding overloads in schedule/heft.hpp). ---

  /// Number of implementations available for task `t`.
  std::size_t num_impls(tg::TaskId t) const { return impl_off_[t + 1] - impl_off_[t]; }

  /// Precomputed Table 2 bundle for (task, implementation, CLR config);
  /// bit-identical to MetricsModel::evaluate on the same triple.
  const rel::TaskMetrics& metrics_for(tg::TaskId t, std::uint32_t impl_index,
                                      std::uint32_t clr_index) const {
    return metric_table_[(impl_off_[t] + impl_index) * clr_size_ + clr_index];
  }

  /// HEFT execution time of (task, implementation) on any compatible PE:
  /// base_time × perf_factor of the implementation's PE type.
  double exec_time(tg::TaskId t, std::uint32_t impl_index) const {
    return exec_time_[impl_off_[t] + impl_index];
  }

  /// Implementation indices of task `t` compatible with PE `pe`, ascending
  /// (the CSR replacement for ImplementationSet::compatible_with, which
  /// returns a fresh vector per call).
  std::span<const std::uint32_t> compatible_impls(tg::TaskId t, plat::PeId pe) const {
    const std::size_t cell = t * num_pes_ + pe;
    return {compat_.data() + compat_off_[cell], compat_off_[cell + 1] - compat_off_[cell]};
  }

  /// Mean execution time over all (PE, implementation) options — bit-identical
  /// to sched::mean_execution_time on the same context.
  double mean_exec(tg::TaskId t) const { return mean_exec_[t]; }

  /// ζt (Eq. 2), identical to TaskGraph::normalized_criticality.
  double normalized_criticality(tg::TaskId t) const { return norm_crit_[t]; }

  /// Platform::comm_factor(a, b), precomputed as a dense matrix.
  double comm_factor(plat::PeId a, plat::PeId b) const {
    return comm_factor_[a * num_pes_ + b];
  }

 private:
  /// The batched kernel lives in separate translation units (portable and
  /// -mavx2 instantiations of batch_kernel.inl) and reads the tables below
  /// through this accessor.
  friend struct detail::BatchKernelAccess;

  const EvalContext* ctx_;
  std::size_t num_tasks_ = 0;
  std::size_t num_pes_ = 0;
  std::size_t num_edges_ = 0;
  std::size_t clr_size_ = 0;

  // CSR topology. *_off_ has num_tasks_+1 entries; payload arrays are aligned.
  std::vector<std::size_t> out_off_, in_off_;
  std::vector<tg::TaskId> succ_, pred_;
  std::vector<double> succ_comm_, pred_comm_;
  std::vector<tg::TaskId> topo_order_;

  // Per-task scalar tables.
  std::vector<double> norm_crit_;
  std::vector<double> mean_exec_;

  // Implementation-indexed tables: impl_off_[t] is the first row of task t;
  // metric_table_ holds clr_size_ contiguous entries per row.
  std::vector<std::size_t> impl_off_;
  std::vector<plat::PeTypeId> impl_pe_type_;  ///< per row: required PE type
  std::vector<double> exec_time_;             ///< per row: HEFT exec time
  std::vector<rel::TaskMetrics> metric_table_;

  /// The subset of TaskMetrics the evaluation loop reads, packed to exactly
  /// half a cache line (the full 48-byte TaskMetrics straddles lines). The
  /// values are bitwise copies of metric_table_, so arithmetic on them is
  /// identical; the big table stays authoritative for metrics_for()/schedule.
  struct alignas(32) PackedMetrics {
    double avg_ext;
    double avg_power;
    double err_prob;
    double mttf;
  };
  std::vector<PackedMetrics> kernel_table_;

  // Per-(task, PE) compatible-implementation CSR.
  std::vector<std::size_t> compat_off_;
  std::vector<std::uint32_t> compat_;

  // Platform tables.
  std::vector<plat::PeTypeId> pe_type_of_;
  std::vector<double> comm_factor_;
};

}  // namespace clr::sched
