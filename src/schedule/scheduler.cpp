#include "schedule/scheduler.hpp"

#include <algorithm>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace clr::sched {

void EvalContext::check() const {
  if (graph == nullptr || platform == nullptr || impls == nullptr || clr_space == nullptr) {
    throw std::invalid_argument("EvalContext: null component");
  }
  if (impls->num_tasks() != graph->num_tasks()) {
    throw std::invalid_argument("EvalContext: implementation set / graph size mismatch");
  }
}

namespace {

rel::TaskMetrics task_metrics_for(const EvalContext& ctx, const Configuration& cfg,
                                  tg::TaskId t) {
  const TaskAssignment& a = cfg[t];
  const auto& impl_list = ctx.impls->for_task(t);
  if (a.impl_index >= impl_list.size()) {
    throw std::invalid_argument("ListScheduler: impl_index out of range");
  }
  const rel::Implementation& impl = impl_list[a.impl_index];
  if (a.pe >= ctx.platform->num_pes()) {
    throw std::invalid_argument("ListScheduler: PE id out of range");
  }
  const plat::PeType& pe_type = ctx.platform->type_of(a.pe);
  if (impl.pe_type != pe_type.id) {
    throw std::invalid_argument("ListScheduler: implementation incompatible with bound PE");
  }
  if (a.clr_index >= ctx.clr_space->size()) {
    throw std::invalid_argument("ListScheduler: clr_index out of range");
  }
  return ctx.metrics.evaluate(impl, pe_type, ctx.clr_space->config(a.clr_index));
}

}  // namespace

ScheduleResult ReferenceScheduler::run(const EvalContext& ctx, const Configuration& cfg) const {
  ctx.check();
  const tg::TaskGraph& g = *ctx.graph;
  if (cfg.size() != g.num_tasks()) {
    throw std::invalid_argument("ListScheduler: configuration size mismatch");
  }

  ScheduleResult result;
  result.tasks.resize(g.num_tasks());

  // Pre-compute per-task metrics (CLR-dependent).
  for (tg::TaskId t = 0; t < g.num_tasks(); ++t) {
    result.tasks[t].metrics = task_metrics_for(ctx, cfg, t);
  }

  // Priority-driven list scheduling.
  std::vector<std::size_t> pending(g.num_tasks(), 0);
  for (tg::TaskId t = 0; t < g.num_tasks(); ++t) pending[t] = g.in_edges(t).size();

  std::vector<double> pe_free(ctx.platform->num_pes(), 0.0);
  std::vector<tg::TaskId> ready;
  for (tg::TaskId t = 0; t < g.num_tasks(); ++t) {
    if (pending[t] == 0) ready.push_back(t);
  }

  std::size_t done = 0;
  while (done < g.num_tasks()) {
    if (ready.empty()) {
      throw std::logic_error("ListScheduler: no ready task (cyclic graph?)");
    }
    // Highest priority first; ties broken by lower task id for determinism.
    auto best = std::min_element(ready.begin(), ready.end(), [&](tg::TaskId a, tg::TaskId b) {
      if (cfg[a].priority != cfg[b].priority) return cfg[a].priority > cfg[b].priority;
      return a < b;
    });
    const tg::TaskId t = *best;
    ready.erase(best);

    // Earliest start: bound PE free, and all inputs arrived (cross-PE edges
    // pay the edge's communication time).
    double est = pe_free[cfg[t].pe];
    for (tg::EdgeId e : g.in_edges(t)) {
      const tg::Edge& edge = g.edge(e);
      const double comm =
          cfg[edge.src].pe != cfg[t].pe
              ? edge.comm_time * ctx.platform->comm_factor(cfg[edge.src].pe, cfg[t].pe)
              : 0.0;
      est = std::max(est, result.tasks[edge.src].end + comm);
    }
    result.tasks[t].start = est;
    result.tasks[t].end = est + result.tasks[t].metrics.avg_ext;
    pe_free[cfg[t].pe] = result.tasks[t].end;
    ++done;

    for (tg::EdgeId e : g.out_edges(t)) {
      const tg::TaskId dst = g.edge(e).dst;
      if (--pending[dst] == 0) ready.push_back(dst);
    }
  }

  // --- Table 3 system metrics. ---
  // Sapp (Eq. 1): max end time.
  for (const auto& ts : result.tasks) result.makespan = std::max(result.makespan, ts.end);

  // Fapp (Eq. 2): criticality-weighted sum of per-task success probability.
  double frel = 0.0;
  for (tg::TaskId t = 0; t < g.num_tasks(); ++t) {
    frel += (1.0 - result.tasks[t].metrics.err_prob) * g.normalized_criticality(t);
  }
  result.func_rel = frel;

  // Japp (Eq. 3): sum of AvgExT * W.
  double energy = 0.0;
  for (const auto& ts : result.tasks) energy += ts.metrics.energy();
  result.energy = energy;

  // System MTTF (lifetime extension): series model over the used PEs, each
  // aging only while executing (duty-cycle-adjusted).
  if (result.makespan > 0.0) {
    std::vector<double> aging_rate(ctx.platform->num_pes(), 0.0);
    for (tg::TaskId t = 0; t < g.num_tasks(); ++t) {
      const auto& m = result.tasks[t].metrics;
      if (m.mttf > 0.0) {
        aging_rate[cfg[t].pe] += (m.avg_ext / result.makespan) / m.mttf;
      }
    }
    double min_mttf = std::numeric_limits<double>::infinity();
    for (double rate : aging_rate) {
      if (rate > 0.0) min_mttf = std::min(min_mttf, 1.0 / rate);
    }
    result.system_mttf = std::isfinite(min_mttf) ? min_mttf : 0.0;
  }

  // Wapp (Eq. 3): peak of the summed power profile — sweep start/end events.
  struct Event {
    double time;
    double delta;
  };
  std::vector<Event> events;
  events.reserve(2 * g.num_tasks());
  for (const auto& ts : result.tasks) {
    events.push_back({ts.start, ts.metrics.avg_power});
    events.push_back({ts.end, -ts.metrics.avg_power});
  }
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.delta < b.delta;  // process releases before acquisitions at ties
  });
  double current = 0.0;
  for (const auto& ev : events) {
    current += ev.delta;
    result.peak_power = std::max(result.peak_power, current);
  }

  return result;
}

ScheduleResult ListScheduler::run(const EvalContext& ctx, const Configuration& cfg) const {
  return ReferenceScheduler{}.run(ctx, cfg);
}

std::string validate_schedule(const EvalContext& ctx, const Configuration& cfg,
                              const ScheduleResult& result) {
  const tg::TaskGraph& g = *ctx.graph;
  std::ostringstream err;

  if (result.tasks.size() != g.num_tasks()) return "task count mismatch";

  constexpr double kEps = 1e-9;
  // Precedence + communication.
  for (const auto& edge : g.edges()) {
    const double comm =
        cfg[edge.src].pe != cfg[edge.dst].pe
            ? edge.comm_time * ctx.platform->comm_factor(cfg[edge.src].pe, cfg[edge.dst].pe)
            : 0.0;
    const double arrival = result.tasks[edge.src].end + comm;
    if (result.tasks[edge.dst].start + kEps < arrival) {
      err << "edge " << edge.id << ": dst starts before data arrives";
      return err.str();
    }
  }
  // PE exclusivity: overlapping intervals on the same PE.
  for (tg::TaskId a = 0; a < g.num_tasks(); ++a) {
    for (tg::TaskId b = a + 1; b < g.num_tasks(); ++b) {
      if (cfg[a].pe != cfg[b].pe) continue;
      const bool overlap = result.tasks[a].start + kEps < result.tasks[b].end &&
                           result.tasks[b].start + kEps < result.tasks[a].end;
      if (overlap) {
        err << "tasks " << a << " and " << b << " overlap on PE " << cfg[a].pe;
        return err.str();
      }
    }
  }
  // Makespan.
  double last = 0.0;
  for (const auto& ts : result.tasks) last = std::max(last, ts.end);
  if (std::abs(last - result.makespan) > 1e-6) return "makespan mismatch";
  // Durations.
  for (tg::TaskId t = 0; t < g.num_tasks(); ++t) {
    const double dur = result.tasks[t].end - result.tasks[t].start;
    if (std::abs(dur - result.tasks[t].metrics.avg_ext) > 1e-6) {
      err << "task " << t << ": duration != AvgExT";
      return err.str();
    }
  }
  return {};
}

}  // namespace clr::sched
