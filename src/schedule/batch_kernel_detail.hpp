#pragma once
// Internals shared between the scalar kernel (compiled_graph.cpp) and the
// two batched-kernel translation units (batch_kernel_portable.cpp /
// batch_kernel_avx2.cpp — see batch_kernel.inl). Not part of the public
// schedule/ API.

#include <algorithm>
#include <cstdint>
#include <limits>

#include "schedule/batch.hpp"
#include "schedule/compiled_graph.hpp"

namespace clr::sched::detail {

/// Private-table access for the out-of-class batched kernel; CompiledGraph
/// befriends this struct so the hot tables stay private everywhere else.
struct BatchKernelAccess {
  using Packed = CompiledGraph::PackedMetrics;

  static std::size_t clr_size(const CompiledGraph& g) { return g.clr_size_; }
  static const std::size_t* out_off(const CompiledGraph& g) { return g.out_off_.data(); }
  static const std::size_t* in_off(const CompiledGraph& g) { return g.in_off_.data(); }
  static const tg::TaskId* succ(const CompiledGraph& g) { return g.succ_.data(); }
  static const tg::TaskId* pred(const CompiledGraph& g) { return g.pred_.data(); }
  static const double* pred_comm(const CompiledGraph& g) { return g.pred_comm_.data(); }
  static const double* norm_crit(const CompiledGraph& g) { return g.norm_crit_.data(); }
  static const std::size_t* impl_off(const CompiledGraph& g) { return g.impl_off_.data(); }
  static const plat::PeTypeId* impl_pe_type(const CompiledGraph& g) {
    return g.impl_pe_type_.data();
  }
  static const Packed* kernel_table(const CompiledGraph& g) { return g.kernel_table_.data(); }
  static const plat::PeTypeId* pe_type_of(const CompiledGraph& g) { return g.pe_type_of_.data(); }
  static const double* comm_factor(const CompiledGraph& g) { return g.comm_factor_.data(); }
};

/// Wapp sweep over 2n events that may contain zero-length intervals: a full
/// (time, delta) sort followed by the running-sum scan. Any ordering sorted
/// by that key yields the same value sequence — events with equal keys are
/// bitwise identical — so this sums exactly what the reference's globally
/// sorted sweep sums.
inline double sweep_sorted_events(EvalScratch::Event* ev, std::size_t n2) {
  std::sort(ev, ev + n2, [](const EvalScratch::Event& a, const EvalScratch::Event& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.delta < b.delta;  // releases before acquisitions at ties
  });
  double peak = 0.0;
  double current = 0.0;
  for (std::size_t k = 0; k < n2; ++k) {
    current += ev[k].delta;
    peak = std::max(peak, current);
  }
  return peak;
}

/// Wapp sweep over `runs` per-PE sorted event runs (2n events total):
/// bottom-up 4-way merge passes through the ping-pong buffer, with the final
/// one-or-two-run pass fused into the running-sum sweep. All selects go
/// through integers/cmovs — the comparison outcomes are data-dependent
/// near-50/50 and branches here mispredict their way to dominating the whole
/// kernel. Ties may resolve either way: equal-key events are bitwise
/// identical. Consumes/overwrites all four arrays.
inline double sweep_merge_runs(EvalScratch::Event* src, EvalScratch::Event* dst,
                               std::uint32_t* off_cur, std::uint32_t* off_next, std::size_t runs,
                               std::size_t n2) {
  constexpr EvalScratch::Event kDrained{std::numeric_limits<double>::infinity(),
                                        std::numeric_limits<double>::infinity()};
  const auto before = [](const EvalScratch::Event& x, const EvalScratch::Event& y) {
    return x.time < y.time || (x.time == y.time && x.delta < y.delta);
  };
  const std::uint32_t clamp = n2 > 0 ? static_cast<std::uint32_t>(n2 - 1) : 0u;
  while (runs > 2) {
    std::size_t out = 0;
    off_next[0] = 0;
    for (std::size_t r = 0; r < runs; r += 4) {
      std::uint32_t cur[4];
      std::uint32_t lim[4];
      EvalScratch::Event h[4];
      for (std::size_t q = 0; q < 4; ++q) {
        cur[q] = off_cur[std::min(r + q, runs)];
        lim[q] = off_cur[std::min(r + q + 1, runs)];
        h[q] = cur[q] < lim[q] ? src[cur[q]] : kDrained;
      }
      const std::uint32_t k_end = lim[3];
      for (std::uint32_t k = cur[0]; k < k_end; ++k) {
        const std::uint32_t w01 = before(h[1], h[0]) ? 1u : 0u;
        const std::uint32_t w23 = before(h[3], h[2]) ? 3u : 2u;
        const std::uint32_t w = before(h[w23], h[w01]) ? w23 : w01;
        dst[k] = h[w];
        const std::uint32_t c = cur[w] + 1;
        cur[w] = c;
        // Clamped speculative load keeps the refill branch-free; the select
        // swaps in the sentinel when the run is drained.
        const EvalScratch::Event ld = src[c < lim[w] ? c : clamp];
        h[w] = c < lim[w] ? ld : kDrained;
      }
      off_next[++out] = k_end;
    }
    std::swap(src, dst);
    std::swap(off_cur, off_next);
    runs = out;
  }

  double peak = 0.0;
  double current = 0.0;
  if (runs <= 1) {
    for (std::size_t k = 0; k < n2; ++k) {
      current += src[k].delta;
      peak = std::max(peak, current);
    }
    return peak;
  }
  std::uint32_t i = off_cur[0];
  const std::uint32_t i_end = off_cur[1];
  std::uint32_t j = i_end;
  const std::uint32_t j_end = off_cur[2];
  while (i < i_end && j < j_end) {
    const EvalScratch::Event& ea = src[i];
    const EvalScratch::Event& eb = src[j];
    const bool take_b = eb.time < ea.time || (eb.time == ea.time && eb.delta < ea.delta);
    const std::uint32_t sel = take_b ? j : i;
    current += src[sel].delta;
    peak = std::max(peak, current);
    i += static_cast<std::uint32_t>(!take_b);
    j += static_cast<std::uint32_t>(take_b);
  }
  for (; i < i_end; ++i) {
    current += src[i].delta;
    peak = std::max(peak, current);
  }
  for (; j < j_end; ++j) {
    current += src[j].delta;
    peak = std::max(peak, current);
  }
  return peak;
}

// The batched block kernel, compiled once with portable flags and (on
// x86-64, when the compiler supports it) once with -mavx2; CompiledGraph::
// evaluate_block picks via __builtin_cpu_supports at first use. Both
// instantiations perform identical IEEE operations — dispatch can never
// change results (DESIGN.md §5.10).
void evaluate_block_portable(const CompiledGraph& g, const BatchGenomes& bg, std::size_t lanes,
                             BatchScratch& s, KernelMetrics* out);
#if defined(CLR_HAVE_AVX2_TU)
void evaluate_block_avx2(const CompiledGraph& g, const BatchGenomes& bg, std::size_t lanes,
                         BatchScratch& s, KernelMetrics* out);
#endif

}  // namespace clr::sched::detail
