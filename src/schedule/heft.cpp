#include "schedule/heft.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace clr::sched {

double mean_execution_time(const EvalContext& ctx, tg::TaskId t) {
  const auto& impls = ctx.impls->for_task(t);
  double sum = 0.0;
  std::size_t count = 0;
  for (const auto& pe : ctx.platform->pes()) {
    for (std::size_t i : ctx.impls->compatible_with(t, pe.type)) {
      sum += impls[i].base_time * ctx.platform->type_of(pe.id).perf_factor;
      ++count;
    }
  }
  if (count == 0) throw std::logic_error("mean_execution_time: task has no option");
  return sum / static_cast<double>(count);
}

std::vector<double> upward_ranks(const EvalContext& ctx) {
  ctx.check();
  const tg::TaskGraph& g = *ctx.graph;
  std::vector<double> rank(g.num_tasks(), 0.0);
  const auto order = g.topological_order();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const tg::TaskId t = *it;
    double succ_term = 0.0;
    for (tg::EdgeId e : g.out_edges(t)) {
      const tg::Edge& edge = g.edge(e);
      succ_term = std::max(succ_term, edge.comm_time + rank[edge.dst]);
    }
    rank[t] = mean_execution_time(ctx, t) + succ_term;
  }
  return rank;
}

Configuration heft_seed(const EvalContext& ctx) {
  ctx.check();
  const tg::TaskGraph& g = *ctx.graph;
  const auto ranks = upward_ranks(ctx);

  // Process tasks in decreasing upward rank (ties: lower id first), which is
  // always a valid topological order.
  std::vector<tg::TaskId> order(g.num_tasks());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](tg::TaskId a, tg::TaskId b) {
    if (ranks[a] != ranks[b]) return ranks[a] > ranks[b];
    return a < b;
  });

  Configuration cfg;
  cfg.tasks.resize(g.num_tasks());
  std::vector<double> pe_free(ctx.platform->num_pes(), 0.0);
  std::vector<double> finish(g.num_tasks(), 0.0);
  std::vector<plat::PeId> placed_on(g.num_tasks(), 0);

  for (std::size_t pos = 0; pos < order.size(); ++pos) {
    const tg::TaskId t = order[pos];
    double best_eft = std::numeric_limits<double>::infinity();
    for (const auto& pe : ctx.platform->pes()) {
      for (std::size_t i : ctx.impls->compatible_with(t, pe.type)) {
        const double exec =
            ctx.impls->for_task(t)[i].base_time * ctx.platform->type_of(pe.id).perf_factor;
        double est = pe_free[pe.id];
        for (tg::EdgeId e : g.in_edges(t)) {
          const tg::Edge& edge = g.edge(e);
          est = std::max(est, finish[edge.src] +
                                  (placed_on[edge.src] != pe.id ? edge.comm_time : 0.0));
        }
        const double eft = est + exec;
        if (eft < best_eft) {
          best_eft = eft;
          cfg[t].pe = pe.id;
          cfg[t].impl_index = static_cast<std::uint32_t>(i);
        }
      }
    }
    if (!std::isfinite(best_eft)) throw std::logic_error("heft_seed: unmappable task");
    finish[t] = best_eft;
    placed_on[t] = cfg[t].pe;
    pe_free[cfg[t].pe] = best_eft;
    cfg[t].clr_index = 0;  // unprotected; the GA layers reliability on top
    // Priority encodes the HEFT order: earlier tasks get higher priority.
    cfg[t].priority = static_cast<std::int32_t>(g.num_tasks() - pos - 1);
  }
  return cfg;
}

double mean_execution_time(const CompiledGraph& cg, tg::TaskId t) {
  const double mean = cg.mean_exec(t);
  if (std::isnan(mean)) throw std::logic_error("mean_execution_time: task has no option");
  return mean;
}

std::vector<double> upward_ranks(const CompiledGraph& cg) {
  std::vector<double> rank(cg.num_tasks(), 0.0);
  const auto order = cg.topo_order();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const tg::TaskId t = *it;
    double succ_term = 0.0;
    const auto succ = cg.successors(t);
    const auto comm = cg.successor_comm(t);
    for (std::size_t k = 0; k < succ.size(); ++k) {
      succ_term = std::max(succ_term, comm[k] + rank[succ[k]]);
    }
    rank[t] = mean_execution_time(cg, t) + succ_term;
  }
  return rank;
}

Configuration heft_seed(const CompiledGraph& cg) {
  const std::size_t n = cg.num_tasks();
  const std::size_t num_pes = cg.num_pes();
  const auto ranks = upward_ranks(cg);

  std::vector<tg::TaskId> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](tg::TaskId a, tg::TaskId b) {
    if (ranks[a] != ranks[b]) return ranks[a] > ranks[b];
    return a < b;
  });

  Configuration cfg;
  cfg.tasks.resize(n);
  std::vector<double> pe_free(num_pes, 0.0);
  std::vector<double> finish(n, 0.0);
  std::vector<plat::PeId> placed_on(n, 0);

  for (std::size_t pos = 0; pos < order.size(); ++pos) {
    const tg::TaskId t = order[pos];
    const auto preds = cg.predecessors(t);
    const auto pred_comm = cg.predecessor_comm(t);
    double best_eft = std::numeric_limits<double>::infinity();
    for (plat::PeId pe = 0; pe < num_pes; ++pe) {
      for (std::uint32_t i : cg.compatible_impls(t, pe)) {
        const double exec = cg.exec_time(t, i);
        double est = pe_free[pe];
        for (std::size_t k = 0; k < preds.size(); ++k) {
          est = std::max(est, finish[preds[k]] + (placed_on[preds[k]] != pe ? pred_comm[k] : 0.0));
        }
        const double eft = est + exec;
        if (eft < best_eft) {
          best_eft = eft;
          cfg[t].pe = pe;
          cfg[t].impl_index = i;
        }
      }
    }
    if (!std::isfinite(best_eft)) throw std::logic_error("heft_seed: unmappable task");
    finish[t] = best_eft;
    placed_on[t] = cfg[t].pe;
    pe_free[cfg[t].pe] = best_eft;
    cfg[t].clr_index = 0;  // unprotected; the GA layers reliability on top
    cfg[t].priority = static_cast<std::int32_t>(n - pos - 1);
  }
  return cfg;
}

}  // namespace clr::sched
