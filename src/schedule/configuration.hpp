#pragma once
// A CLR-integrated task-mapping configuration Xi (paper §4.1):
// for every task — the PE binding (Pt), the implementation choice (It), the
// schedule position / priority (Qt) and the CLR configuration (Ct).

#include <cstdint>
#include <vector>

#include "platform/platform.hpp"
#include "taskgraph/graph.hpp"

namespace clr::sched {

/// Per-task decision variables.
struct TaskAssignment {
  plat::PeId pe = 0;
  /// Index into ImplementationSet::for_task(t) — must be compatible with the
  /// PE's type.
  std::uint32_t impl_index = 0;
  /// Index into the shared ClrSpace.
  std::uint32_t clr_index = 0;
  /// List-scheduling priority (higher runs earlier among ready tasks).
  std::int32_t priority = 0;

  friend bool operator==(const TaskAssignment&, const TaskAssignment&) = default;
};

/// One full design point's decision vector (the Xi of Eq. 4).
struct Configuration {
  std::vector<TaskAssignment> tasks;

  std::size_t size() const { return tasks.size(); }
  TaskAssignment& operator[](tg::TaskId t) { return tasks[t]; }
  const TaskAssignment& operator[](tg::TaskId t) const { return tasks[t]; }

  friend bool operator==(const Configuration&, const Configuration&) = default;
};

}  // namespace clr::sched
