#pragma once
// HEFT-style constructive heuristic used to seed the design-time GA: upward
// ranks give list-scheduling priorities, and an earliest-finish-time greedy
// picks PE bindings. Seeding the MOEA with a good makespan-oriented point
// accelerates convergence on the Sapp-tight corner of the front.

#include <vector>

#include "schedule/compiled_graph.hpp"
#include "schedule/configuration.hpp"
#include "schedule/scheduler.hpp"

namespace clr::sched {

/// Mean execution time of task `t` over all its (PE, implementation)
/// options, with the unprotected CLR configuration.
double mean_execution_time(const EvalContext& ctx, tg::TaskId t);

/// HEFT upward ranks: rank(t) = meanExec(t) + max over successors of
/// (CommT(e) + rank(dst)). Higher rank = schedule earlier.
std::vector<double> upward_ranks(const EvalContext& ctx);

/// Greedy earliest-finish-time mapping in upward-rank order, unprotected CLR
/// everywhere (reliability is left for the GA to add). Priorities encode the
/// rank order, so the ListScheduler reproduces the HEFT order.
Configuration heft_seed(const EvalContext& ctx);

// --- CompiledGraph overloads (DESIGN.md §5.9). Bit-identical to the
// EvalContext versions, but read the precomputed CSR topology, flattened
// execution-time table and per-(task, PE) compatibility lists instead of
// copying ImplementationSet::compatible_with vectors inside the (task × PE)
// loop. The design-time flow seeds through these via
// MappingProblem::compiled(). ---

/// Throws std::logic_error when the task has no (PE, implementation) option.
double mean_execution_time(const CompiledGraph& cg, tg::TaskId t);
std::vector<double> upward_ranks(const CompiledGraph& cg);
Configuration heft_seed(const CompiledGraph& cg);

}  // namespace clr::sched
