#pragma once
// Graphviz DOT export of task graphs (and optionally of a mapped
// configuration, coloring tasks by their bound PE) for quick visual
// inspection of generated applications.

#include <string>

#include "schedule/configuration.hpp"
#include "taskgraph/graph.hpp"

namespace clr::sched {

/// Plain structural DOT: nodes labelled "name (type)" and edges labelled
/// with their communication time.
std::string to_dot(const tg::TaskGraph& graph);

/// DOT with mapping overlay: nodes grouped/colored per bound PE.
/// `cfg` must have one assignment per task.
std::string to_dot(const tg::TaskGraph& graph, const Configuration& cfg);

}  // namespace clr::sched
