#pragma once
// CLR-integrated list scheduler and the system-level QoS estimation of
// Table 3:
//   Sapp — average makespan (Eq. 1), from average task execution times
//   Fapp — functional reliability (Eq. 2), criticality-weighted
//   Wapp — peak power (Eq. 3)
//   Japp — energy (Eq. 3)

#include <vector>

#include "reliability/clr_config.hpp"
#include "reliability/implementation.hpp"
#include "reliability/metrics.hpp"
#include "schedule/configuration.hpp"

namespace clr::sched {

/// Per-task placement in the computed schedule.
struct TaskSchedule {
  double start = 0.0;  ///< SSTt — average start time
  double end = 0.0;    ///< SETt — average end time
  rel::TaskMetrics metrics;
};

/// Full schedule + Table 3 system metrics.
struct ScheduleResult {
  std::vector<TaskSchedule> tasks;
  double makespan = 0.0;    ///< Sapp
  double func_rel = 0.0;    ///< Fapp in [0, 1]
  double peak_power = 0.0;  ///< Wapp
  double energy = 0.0;      ///< Japp
  /// Aging-limited system lifetime: the minimum duty-cycle-adjusted MTTF
  /// over all PEs that execute at least one task. Per PE, aging accrues at
  /// rate sum_t (AvgExT_t / Sapp) / MTTF_t over its tasks (idle time does
  /// not age the PE), so MTTF_pe = 1 / rate; the system fails with its first
  /// PE (series model). This is the "MTTF added to R(Xi)" extension the
  /// paper suggests for lifetime optimization.
  double system_mttf = 0.0;

  /// Application error rate = 1 - Fapp (the Fig. 1 x-axis).
  double error_rate() const { return 1.0 - func_rel; }
};

/// Static problem context shared by every evaluation of one application:
/// graph + platform + implementation sets + CLR space + fault model.
struct EvalContext {
  const tg::TaskGraph* graph = nullptr;
  const plat::Platform* platform = nullptr;
  const rel::ImplementationSet* impls = nullptr;
  const rel::ClrSpace* clr_space = nullptr;
  rel::MetricsModel metrics;

  /// Throws std::invalid_argument when any pointer is null.
  void check() const;
};

/// The original pointer-based list-scheduler implementation, kept verbatim as
/// the differential oracle for the flat CompiledGraph kernel (DESIGN.md §5.9):
/// it re-derives per-task metrics through MetricsModel and walks the graph's
/// edge-id lists on every call. tests/schedule/test_differential.cpp proves
/// the fast kernel bit-identical to this path over fuzzed graphs.
class ReferenceScheduler {
 public:
  ScheduleResult run(const EvalContext& ctx, const Configuration& cfg) const;
};

/// Priority-driven list scheduler over a fixed task-to-PE binding.
///
/// Semantics: a task becomes ready when all predecessors have finished and
/// their data has arrived (cross-PE edges pay CommTe); among ready tasks the
/// highest `priority` (ties: lower task id) is scheduled next at its earliest
/// start on its bound PE. Average execution times (AvgExT) give the average
/// makespan of Eq. (1).
///
/// This is the one-shot convenience API (it delegates to ReferenceScheduler).
/// Hot loops that evaluate many configurations against one context should
/// build a schedule::CompiledGraph once and reuse a per-thread EvalScratch —
/// that is what dse::MappingProblem does; results are bit-identical.
class ListScheduler {
 public:
  /// Evaluate configuration `cfg`. Throws std::invalid_argument when an
  /// implementation index is incompatible with its PE's type or any index is
  /// out of range.
  ScheduleResult run(const EvalContext& ctx, const Configuration& cfg) const;
};

/// Structural validation of a schedule against its configuration: precedence
/// + communication delays respected, no overlap on any PE, makespan equals
/// the last finish time. Returns an empty string when valid, else a
/// diagnostic message (used by the property tests).
std::string validate_schedule(const EvalContext& ctx, const Configuration& cfg,
                              const ScheduleResult& result);

}  // namespace clr::sched
