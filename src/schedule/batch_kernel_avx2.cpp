// AVX2 instantiation of the batched block kernel. This translation unit is
// only added to the build on x86-64 when the compiler accepts -mavx2 (see
// src/schedule/CMakeLists.txt, CLR_HAVE_AVX2_TU); CompiledGraph::
// evaluate_block dispatches to it via __builtin_cpu_supports("avx2").
// -mfma is deliberately NOT enabled: fused multiply-add changes rounding
// and would break the bit-identity contract.
#define CLR_BATCH_KERNEL_FN evaluate_block_avx2
#include "schedule/batch_kernel.inl"
