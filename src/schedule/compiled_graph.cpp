#include "schedule/compiled_graph.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "common/simd.hpp"
#include "schedule/batch.hpp"
#include "schedule/batch_kernel_detail.hpp"

namespace clr::sched {

void EvalScratch::bind(std::size_t num_tasks, std::size_t num_pes) {
  // Fast path for the steady-state loop: a warm arena skips the dozen
  // resize() no-ops below (each still costs a size check per call).
  if (metric_row.size() == num_tasks && pe_free.size() == num_pes) return;
  metric_row.resize(num_tasks);
  start.resize(num_tasks);
  end.resize(num_tasks);
  pending.resize(num_tasks);
  ready.resize(num_tasks);
  events.resize(2 * num_tasks);
  events2.resize(2 * num_tasks);
  run_off.resize(num_pes + 1);
  run_off2.resize(num_pes + 1);
  run_pos.resize(num_pes);
  pe_free.resize(num_pes);
  aging_rate.resize(num_pes);
  ready_count = 0;
  bucket_words = (num_tasks + 63) / 64;
  prio_bucket.resize(num_tasks * bucket_words);
}

CompiledGraph::CompiledGraph(const EvalContext& ctx) : ctx_(&ctx) {
  ctx.check();
  const tg::TaskGraph& g = *ctx.graph;
  num_tasks_ = g.num_tasks();
  num_pes_ = ctx.platform->num_pes();
  num_edges_ = g.num_edges();
  clr_size_ = ctx.clr_space->size();

  // --- CSR topology, preserving the per-task edge-insertion order the
  // pointer-based scheduler iterates in. ---
  out_off_.assign(num_tasks_ + 1, 0);
  in_off_.assign(num_tasks_ + 1, 0);
  for (tg::TaskId t = 0; t < num_tasks_; ++t) {
    out_off_[t + 1] = out_off_[t] + g.out_edges(t).size();
    in_off_[t + 1] = in_off_[t] + g.in_edges(t).size();
  }
  succ_.resize(num_edges_);
  succ_comm_.resize(num_edges_);
  pred_.resize(num_edges_);
  pred_comm_.resize(num_edges_);
  for (tg::TaskId t = 0; t < num_tasks_; ++t) {
    std::size_t k = out_off_[t];
    for (tg::EdgeId e : g.out_edges(t)) {
      succ_[k] = g.edge(e).dst;
      succ_comm_[k] = g.edge(e).comm_time;
      ++k;
    }
    k = in_off_[t];
    for (tg::EdgeId e : g.in_edges(t)) {
      pred_[k] = g.edge(e).src;
      pred_comm_[k] = g.edge(e).comm_time;
      ++k;
    }
  }
  topo_order_ = g.topological_order();

  // --- Per-task scalar tables. ---
  norm_crit_.resize(num_tasks_);
  for (tg::TaskId t = 0; t < num_tasks_; ++t) norm_crit_[t] = g.normalized_criticality(t);

  // --- Platform tables. ---
  pe_type_of_.resize(num_pes_);
  for (plat::PeId p = 0; p < num_pes_; ++p) pe_type_of_[p] = ctx.platform->pe(p).type;
  comm_factor_.resize(num_pes_ * num_pes_);
  for (plat::PeId a = 0; a < num_pes_; ++a) {
    for (plat::PeId b = 0; b < num_pes_; ++b) {
      comm_factor_[a * num_pes_ + b] = ctx.platform->comm_factor(a, b);
    }
  }

  // --- Flattened implementation rows + the full Table 2 metric table. ---
  impl_off_.assign(num_tasks_ + 1, 0);
  for (tg::TaskId t = 0; t < num_tasks_; ++t) {
    impl_off_[t + 1] = impl_off_[t] + ctx.impls->for_task(t).size();
  }
  const std::size_t num_rows = impl_off_[num_tasks_];
  impl_pe_type_.resize(num_rows);
  exec_time_.resize(num_rows);
  metric_table_.resize(num_rows * clr_size_);
  const std::size_t num_types = ctx.platform->num_pe_types();
  for (tg::TaskId t = 0; t < num_tasks_; ++t) {
    const auto& impls = ctx.impls->for_task(t);
    for (std::size_t i = 0; i < impls.size(); ++i) {
      const std::size_t row = impl_off_[t] + i;
      const rel::Implementation& impl = impls[i];
      impl_pe_type_[row] = impl.pe_type;
      // An implementation referencing a PE type the platform doesn't have can
      // never pass the per-evaluation compatibility check, so its metric row
      // stays defaulted instead of tripping Platform::pe_type.
      if (impl.pe_type >= num_types) continue;
      const plat::PeType& pe_type = ctx.platform->pe_type(impl.pe_type);
      exec_time_[row] = impl.base_time * pe_type.perf_factor;
      for (std::size_t c = 0; c < clr_size_; ++c) {
        metric_table_[row * clr_size_ + c] =
            ctx.metrics.evaluate(impl, pe_type, ctx.clr_space->config(c));
      }
    }
  }

  kernel_table_.resize(metric_table_.size());
  for (std::size_t r = 0; r < metric_table_.size(); ++r) {
    const rel::TaskMetrics& tm = metric_table_[r];
    kernel_table_[r] = {tm.avg_ext, tm.avg_power, tm.err_prob, tm.mttf};
  }

  // --- Per-(task, PE) compatible implementations (ascending, matching
  // ImplementationSet::compatible_with). ---
  compat_off_.assign(num_tasks_ * num_pes_ + 1, 0);
  for (tg::TaskId t = 0; t < num_tasks_; ++t) {
    const auto& impls = ctx.impls->for_task(t);
    for (plat::PeId p = 0; p < num_pes_; ++p) {
      const std::size_t cell = t * num_pes_ + p;
      std::size_t count = 0;
      for (const auto& impl : impls) {
        if (impl.pe_type == pe_type_of_[p]) ++count;
      }
      compat_off_[cell + 1] = compat_off_[cell] + count;
    }
  }
  compat_.resize(compat_off_.back());
  for (tg::TaskId t = 0; t < num_tasks_; ++t) {
    const auto& impls = ctx.impls->for_task(t);
    for (plat::PeId p = 0; p < num_pes_; ++p) {
      std::size_t k = compat_off_[t * num_pes_ + p];
      for (std::size_t i = 0; i < impls.size(); ++i) {
        if (impls[i].pe_type == pe_type_of_[p]) compat_[k++] = static_cast<std::uint32_t>(i);
      }
    }
  }

  // --- HEFT mean execution times, accumulated in the exact (PE, impl) order
  // of sched::mean_execution_time so the seeded ranks match bitwise. A task
  // with no (PE, impl) option gets NaN; the HEFT overloads throw on it. ---
  mean_exec_.resize(num_tasks_);
  for (tg::TaskId t = 0; t < num_tasks_; ++t) {
    double sum = 0.0;
    std::size_t count = 0;
    for (plat::PeId p = 0; p < num_pes_; ++p) {
      for (std::uint32_t i : compatible_impls(t, p)) {
        sum += exec_time_[impl_off_[t] + i];
        ++count;
      }
    }
    mean_exec_[t] = count > 0 ? sum / static_cast<double>(count)
                              : std::numeric_limits<double>::quiet_NaN();
  }
}


KernelMetrics CompiledGraph::evaluate(const Configuration& cfg, EvalScratch& s) const {
  if (cfg.size() != num_tasks_) {
    throw std::invalid_argument("ListScheduler: configuration size mismatch");
  }
  s.bind(num_tasks_, num_pes_);

  // Resolve + validate each task's metric row (same checks, order and
  // messages as the reference path's task_metrics_for). Task-to-PE counts
  // are tallied on the side so the power-event runs can be laid out before
  // scheduling starts.
  std::fill(s.run_off.begin(), s.run_off.end(), 0u);
  for (tg::TaskId t = 0; t < num_tasks_; ++t) {
    const TaskAssignment& a = cfg[t];
    if (a.impl_index >= num_impls(t)) {
      throw std::invalid_argument("ListScheduler: impl_index out of range");
    }
    if (a.pe >= num_pes_) {
      throw std::invalid_argument("ListScheduler: PE id out of range");
    }
    const std::size_t row = impl_off_[t] + a.impl_index;
    if (impl_pe_type_[row] != pe_type_of_[a.pe]) {
      throw std::invalid_argument("ListScheduler: implementation incompatible with bound PE");
    }
    if (a.clr_index >= clr_size_) {
      throw std::invalid_argument("ListScheduler: clr_index out of range");
    }
    s.metric_row[t] = static_cast<std::uint32_t>(row * clr_size_ + a.clr_index);
    // The packed table is still large (rows × CLR configs) and each
    // evaluation touches n random rows of it; fetch them while the run
    // layout and ready set are being built so the scheduling loop below hits
    // warm lines.
    __builtin_prefetch(&kernel_table_[s.metric_row[t]]);
    s.run_off[a.pe + 1] += 2;
  }
  for (plat::PeId p = 0; p < num_pes_; ++p) s.run_off[p + 1] += s.run_off[p];
  for (plat::PeId p = 0; p < num_pes_; ++p) s.run_pos[p] = s.run_off[p];

  // --- Priority-driven list scheduling over the CSR arrays. Selection must
  // reproduce the reference exactly: highest priority first, ties broken by
  // lower task id. That winner is *unique* per round (ids are distinct), so
  // any structure yielding the (priority, id) argmax schedules the identical
  // sequence. When every priority lies in [0, n) — always true for decoded
  // genomes and HEFT seeds — the ready set is one id-bitmask per priority
  // level and selection is a word scan; arbitrary out-of-range priorities
  // take the linear-scan fallback below. ---
  std::fill(s.pe_free.begin(), s.pe_free.end(), 0.0);

  bool bucketable = true;
  for (tg::TaskId t = 0; t < num_tasks_; ++t) {
    const std::int32_t pr = cfg[t].priority;
    if (pr < 0 || static_cast<std::size_t>(pr) >= num_tasks_) {
      bucketable = false;
      break;
    }
  }

  std::size_t done = 0;
  bool zero_len = false;

  // Schedule one selected task: earliest start on its bound PE after all
  // predecessor data arrives, then emit its power events into the PE's run.
  // A PE executes its tasks back to back, so each run stays sorted by
  // (time, delta) — except when a zero-length interval collides with a
  // neighbour at the same time stamp, which drops the Wapp sweep below back
  // to a full sort.
  const auto run_task = [&](tg::TaskId t) {
    const TaskAssignment& a = cfg[t];
    double est = s.pe_free[a.pe];
    for (std::size_t k = in_off_[t]; k < in_off_[t + 1]; ++k) {
      const tg::TaskId src = pred_[k];
      // The product is computed unconditionally so the same-PE test selects
      // between two ready values (no data-dependent branch); a same-PE edge
      // still contributes exactly 0.0, as in the reference.
      const double cross = pred_comm_[k] * comm_factor_[cfg[src].pe * num_pes_ + a.pe];
      const double comm = cfg[src].pe != a.pe ? cross : 0.0;
      est = std::max(est, s.end[src] + comm);
    }
    const PackedMetrics& tm = kernel_table_[s.metric_row[t]];
    s.start[t] = est;
    s.end[t] = est + tm.avg_ext;
    s.pe_free[a.pe] = s.end[t];
    ++done;

    const std::uint32_t slot = s.run_pos[a.pe];
    s.run_pos[a.pe] = slot + 2;
    if (s.start[t] == s.end[t]) {
      zero_len = true;
      s.events[slot] = {s.end[t], -tm.avg_power};
      s.events[slot + 1] = {s.start[t], tm.avg_power};
    } else {
      s.events[slot] = {s.start[t], tm.avg_power};
      s.events[slot + 1] = {s.end[t], -tm.avg_power};
    }
  };

  if (bucketable) {
    const std::size_t W = s.bucket_words;
    std::fill(s.prio_bucket.begin(), s.prio_bucket.end(), 0);
    std::ptrdiff_t cur_max = -1;
    const auto push = [&](tg::TaskId t) {
      const auto pr = static_cast<std::size_t>(cfg[t].priority);
      s.prio_bucket[pr * W + (t >> 6)] |= std::uint64_t{1} << (t & 63);
      if (static_cast<std::ptrdiff_t>(pr) > cur_max) cur_max = static_cast<std::ptrdiff_t>(pr);
    };
    for (tg::TaskId t = 0; t < num_tasks_; ++t) {
      s.pending[t] = static_cast<std::uint32_t>(in_off_[t + 1] - in_off_[t]);
      if (s.pending[t] == 0) push(t);
    }
    while (done < num_tasks_) {
      std::size_t w = 0;
      while (cur_max >= 0) {
        const std::uint64_t* row = s.prio_bucket.data() + static_cast<std::size_t>(cur_max) * W;
        for (w = 0; w < W && row[w] == 0; ++w) {
        }
        if (w < W) break;
        --cur_max;
      }
      if (cur_max < 0) {
        throw std::logic_error("ListScheduler: no ready task (cyclic graph?)");
      }
      std::uint64_t& word = s.prio_bucket[static_cast<std::size_t>(cur_max) * W + w];
      const auto t = static_cast<tg::TaskId>(w * 64 + static_cast<std::size_t>(std::countr_zero(word)));
      word &= word - 1;  // pop the lowest id at the highest priority
      run_task(t);
      for (std::size_t k = out_off_[t]; k < out_off_[t + 1]; ++k) {
        const tg::TaskId dst = succ_[k];
        if (--s.pending[dst] == 0) push(dst);
      }
    }
  } else {
    s.ready_count = 0;
    for (tg::TaskId t = 0; t < num_tasks_; ++t) {
      s.pending[t] = static_cast<std::uint32_t>(in_off_[t + 1] - in_off_[t]);
      if (s.pending[t] == 0) s.ready[s.ready_count++] = t;
    }
    while (done < num_tasks_) {
      if (s.ready_count == 0) {
        throw std::logic_error("ListScheduler: no ready task (cyclic graph?)");
      }
      std::size_t best = 0;
      for (std::size_t k = 1; k < s.ready_count; ++k) {
        const tg::TaskId a = s.ready[k];
        const tg::TaskId b = s.ready[best];
        if (cfg[a].priority != cfg[b].priority) {
          if (cfg[a].priority > cfg[b].priority) best = k;
        } else if (a < b) {
          best = k;
        }
      }
      const tg::TaskId t = s.ready[best];
      s.ready[best] = s.ready[--s.ready_count];
      run_task(t);
      for (std::size_t k = out_off_[t]; k < out_off_[t + 1]; ++k) {
        const tg::TaskId dst = succ_[k];
        if (--s.pending[dst] == 0) s.ready[s.ready_count++] = dst;
      }
    }
  }

  // --- Table 3 system metrics. The reference computes these in separate
  // per-task loops; makespan, Fapp and Japp are *independent* accumulators,
  // so interleaving them in one pass feeds each accumulator the identical
  // value sequence and the results stay bitwise equal. ---
  KernelMetrics m;
  double frel = 0.0;
  double energy = 0.0;
  for (tg::TaskId t = 0; t < num_tasks_; ++t) {
    m.makespan = std::max(m.makespan, s.end[t]);
    const PackedMetrics& tm = kernel_table_[s.metric_row[t]];
    frel += (1.0 - tm.err_prob) * norm_crit_[t];
    energy += tm.avg_ext * tm.avg_power;
  }
  m.func_rel = frel;
  m.energy = energy;

  if (m.makespan > 0.0) {
    std::fill(s.aging_rate.begin(), s.aging_rate.end(), 0.0);
    for (tg::TaskId t = 0; t < num_tasks_; ++t) {
      const PackedMetrics& tm = kernel_table_[s.metric_row[t]];
      if (tm.mttf > 0.0) {
        s.aging_rate[cfg[t].pe] += (tm.avg_ext / m.makespan) / tm.mttf;
      }
    }
    double min_mttf = std::numeric_limits<double>::infinity();
    for (double rate : s.aging_rate) {
      if (rate > 0.0) min_mttf = std::min(min_mttf, 1.0 / rate);
    }
    m.system_mttf = std::isfinite(min_mttf) ? min_mttf : 0.0;
  }

  // Wapp sweep over the per-PE event runs (shared with the batched kernel;
  // see batch_kernel_detail.hpp for the determinism argument).
  if (zero_len) {
    m.peak_power = detail::sweep_sorted_events(s.events.data(), 2 * num_tasks_);
  } else {
    m.peak_power = detail::sweep_merge_runs(s.events.data(), s.events2.data(), s.run_off.data(),
                                            s.run_off2.data(), num_pes_, 2 * num_tasks_);
  }
  return m;
}

void CompiledGraph::evaluate_block(BatchGenomes& genomes, std::size_t lanes, BatchScratch& scratch,
                                   KernelMetrics* out) const {
  if (genomes.num_tasks() != num_tasks_) {
    throw std::invalid_argument("ListScheduler: configuration size mismatch");
  }
  scratch.bind(num_tasks_, num_pes_);
  genomes.pad(lanes);  // also range-checks `lanes`
  // Resolve the widest kernel instantiation this machine can run, once. Both
  // instantiations compute identical bits, so the choice is unobservable in
  // results (DESIGN.md §5.10).
#if defined(CLR_HAVE_AVX2_TU)
  static const bool use_avx2 = __builtin_cpu_supports("avx2");
  if (use_avx2) {
    detail::evaluate_block_avx2(*this, genomes, lanes, scratch, out);
    return;
  }
#endif
  detail::evaluate_block_portable(*this, genomes, lanes, scratch, out);
}

const char* CompiledGraph::batch_backend() {
#if defined(CLR_HAVE_AVX2_TU)
  if (__builtin_cpu_supports("avx2")) return "avx2";
#endif
  // This TU is built with the same baseline flags as the portable kernel TU,
  // so its compile-time simd backend is the one the portable path runs.
  return simd::kBackend;
}

void CompiledGraph::evaluate_batch(std::span<const Configuration> cfgs, BatchScratch& scratch,
                                   std::span<KernelMetrics> out) const {
  if (out.size() < cfgs.size()) {
    throw std::invalid_argument("evaluate_batch: output span smaller than input");
  }
  scratch.bind(num_tasks_, num_pes_);
  for (std::size_t base = 0; base < cfgs.size(); base += BatchGenomes::kLanes) {
    const std::size_t lanes = std::min(BatchGenomes::kLanes, cfgs.size() - base);
    for (std::size_t l = 0; l < lanes; ++l) scratch.genomes.set(l, cfgs[base + l]);
    evaluate_block(scratch.genomes, lanes, scratch, out.data() + base);
  }
}

ScheduleResult CompiledGraph::schedule(const Configuration& cfg, EvalScratch& s) const {
  const KernelMetrics m = evaluate(cfg, s);
  ScheduleResult result;
  result.tasks.resize(num_tasks_);
  for (tg::TaskId t = 0; t < num_tasks_; ++t) {
    result.tasks[t].start = s.start[t];
    result.tasks[t].end = s.end[t];
    result.tasks[t].metrics = metric_table_[s.metric_row[t]];
  }
  result.makespan = m.makespan;
  result.func_rel = m.func_rel;
  result.peak_power = m.peak_power;
  result.energy = m.energy;
  result.system_mttf = m.system_mttf;
  return result;
}

}  // namespace clr::sched
