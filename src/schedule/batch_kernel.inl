// Batched schedule-evaluation block kernel (DESIGN.md §5.10). This file is
// the single source of the kernel body; it is included by exactly two
// translation units, each defining CLR_BATCH_KERNEL_FN first:
//
//   batch_kernel_portable.cpp  -> evaluate_block_portable (default flags)
//   batch_kernel_avx2.cpp      -> evaluate_block_avx2     (-mavx2)
//
// The common/simd.hpp shim resolves to a different backend in each TU;
// everything else is identical. CompiledGraph::evaluate_block selects one of
// the two at runtime (see compiled_graph.cpp).
//
// Determinism contract (referee: tests/schedule/test_batch_differential.cpp):
// every lane of a block computes bit-for-bit what the scalar kernel — and
// therefore ReferenceScheduler — computes for that configuration, because
// each phase performs the same IEEE operations in the same order per lane:
//
//   1. Validation resolves metric rows lane-major (genome i's exceptions
//      fire before genome i+1 is examined) — integer-only.
//   2. The packed metric columns are gathered into [task][lane] SoA rows —
//      bitwise copies.
//   3. List scheduling runs per lane with the scalar selection semantics
//      (argmax of (priority, -id) is unique, so any structure that yields it
//      schedules the identical sequence); EST/EFT arithmetic is verbatim.
//   4. Fapp/Japp/Sapp accumulate vectorized ACROSS lanes in ascending task
//      order — per lane, the identical value sequence into each independent
//      accumulator; no horizontal reduction, no reassociation, no FMA.
//   5. Aging divisions vectorize across lanes the same way; the per-PE
//      scatter stays scalar in (task-outer, lane-inner) order, preserving
//      each (lane, PE) accumulation order. min-MTTF uses 1/rate with
//      1/0 = +inf, which is absorbed by min exactly as the scalar path's
//      rate > 0 skip.
//   6. The Wapp sweep reuses the scalar path's helpers per lane.
//
// Unused lanes of a partial block are padded with a copy of the last real
// genome (BatchGenomes::pad): phases 1-2 and 4-5 then process all kLanes
// lanes unconditionally (a duplicate can neither throw nor read out of
// bounds), while the per-lane phases 3 and 6 and the output writes cover
// active lanes only.

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>

#include "common/simd.hpp"
#include "schedule/batch_kernel_detail.hpp"

// The vectorized sorting-network Wapp sweep needs 64-bit integer compares
// and blends (AVX2); the portable instantiation keeps the scalar kernel's
// exact per-lane sweep helpers instead.
#if defined(__AVX2__) && !defined(CLR_FORCE_SCALAR)
#define CLR_BATCH_SORTNET 1
#include <immintrin.h>
#endif

#ifndef CLR_BATCH_KERNEL_FN
#error "define CLR_BATCH_KERNEL_FN before including batch_kernel.inl"
#endif

namespace clr::sched::detail {

namespace {

constexpr std::size_t kL = BatchGenomes::kLanes;

/// Everything the per-lane scheduling pass reads, hoisted once per block.
struct LaneSchedCtx {
  std::size_t n = 0;
  std::size_t num_pes = 0;
  const std::size_t* in_off = nullptr;
  const std::size_t* out_off = nullptr;
  const tg::TaskId* pred = nullptr;
  const tg::TaskId* succ = nullptr;
  const double* pred_comm = nullptr;
  const double* comm_factor = nullptr;
  const std::uint32_t* bpe = nullptr;
  const std::int32_t* bprio = nullptr;
};

#ifdef CLR_BATCH_SORTNET
/// Order-preserving involution on double bit patterns: x < y (as doubles; no
/// NaNs) iff signed_key(bits(x)) < signed_key(bits(y)) as SIGNED integers.
/// Applying it twice restores the original bits. -0.0 maps strictly below
/// +0.0 — lanes where that distinction could matter are flagged key_unsafe
/// and re-swept exactly (see schedule_block_lockstep).
inline std::uint64_t signed_key(std::uint64_t b) {
  return b ^ (static_cast<std::uint64_t>(static_cast<std::int64_t>(b) >> 63) >> 1);
}
#endif

/// Schedule one selected task in lane `l`: earliest start on its bound PE
/// after all predecessor data arrives, then emit its power events into the
/// PE's run slab. Branch-free zero-length emission: the two events swap
/// slots when start == end, exactly like the scalar kernel's swapped stores.
/// The per-PE state arrays are indexed pe * S: S = 1 for the lane-sequential
/// paths (shared pe_free/run_pos), S = kLanes for the lockstep path
/// ([pe][lane] arrays, caller passes the lane-offset base pointer).
template <std::size_t S>
inline bool run_lane_task(const LaneSchedCtx& c, BatchScratch& s, std::size_t l, std::size_t t,
                          EvalScratch::Event* ev, double* pe_free, std::uint32_t* run_pos) {
  const std::uint32_t pe = c.bpe[t * kL + l];
  double est = pe_free[pe * S];
  for (std::size_t k = c.in_off[t]; k < c.in_off[t + 1]; ++k) {
    const tg::TaskId src = c.pred[k];
    // The product is computed unconditionally so the same-PE test selects
    // between two ready values (no data-dependent branch); a same-PE edge
    // still contributes exactly 0.0, as in the reference.
    const double cross = c.pred_comm[k] * c.comm_factor[c.bpe[src * kL + l] * c.num_pes + pe];
    const double comm = c.bpe[src * kL + l] != pe ? cross : 0.0;
    est = std::max(est, s.end[src * kL + l] + comm);
  }
  const double fin = est + s.ext[t * kL + l];
  s.start[t * kL + l] = est;
  s.end[t * kL + l] = fin;
  pe_free[pe * S] = fin;

  const double pw = s.pow[t * kL + l];
  const std::uint32_t slot = run_pos[pe * S];
  run_pos[pe * S] = slot + 2;
  const std::uint32_t zl = est == fin ? 1u : 0u;
  ev[slot + zl] = {est, pw};
  ev[slot + 1 - zl] = {fin, -pw};
  return zl != 0;
}

/// Priority-driven list scheduling of lane `l` when every priority lies in
/// [0, n) — always true for decoded genomes and HEFT seeds. The ready set is
/// a two-level bitmap: one id-bitmask row per priority level plus an
/// occupancy bitmap over the levels, so selection is a couple of bit scans
/// instead of the scalar path's mispredicting level walk. Selection order is
/// identical: highest priority, ties to the lowest task id.
/// kSingleWord specializes the common n <= 64 shape where each level is one
/// word and the occupancy bitmap is one word.
template <bool kSingleWord>
void schedule_lane_bucketed(const LaneSchedCtx& c, BatchScratch& s, std::size_t l) {
  const std::size_t n = c.n;
  const std::size_t W = kSingleWord ? 1 : s.bucket_words;
  std::uint64_t* bucket = s.bucket.data();
  std::uint64_t* occ = s.occ.data();
  std::uint32_t* count = s.bucket_count.data();
  std::fill(bucket, bucket + n * W, std::uint64_t{0});
  std::fill(occ, occ + W, std::uint64_t{0});
  if (!kSingleWord) std::fill(count, count + n, 0u);

  const auto push = [&](std::size_t t) {
    const auto pr = static_cast<std::size_t>(c.bprio[t * kL + l]);
    if (kSingleWord) {
      bucket[pr] |= std::uint64_t{1} << t;
      occ[0] |= std::uint64_t{1} << pr;
    } else {
      bucket[pr * W + (t >> 6)] |= std::uint64_t{1} << (t & 63);
      occ[pr >> 6] |= std::uint64_t{1} << (pr & 63);
      ++count[pr];
    }
  };

  for (std::size_t t = 0; t < n; ++t) {
    s.pending[t] = static_cast<std::uint32_t>(c.in_off[t + 1] - c.in_off[t]);
    if (s.pending[t] == 0) push(t);
  }

  EvalScratch::Event* ev = s.events.data() + l * 2 * n;
  bool zero_len = false;
  std::size_t top = W;  // highest occupancy word that may be non-zero
  for (std::size_t done = 0; done < n; ++done) {
    std::size_t t;
    if (kSingleWord) {
      if (occ[0] == 0) throw std::logic_error("ListScheduler: no ready task (cyclic graph?)");
      const auto pr = static_cast<std::size_t>(63 - std::countl_zero(occ[0]));
      std::uint64_t w = bucket[pr];
      t = static_cast<std::size_t>(std::countr_zero(w));
      w &= w - 1;  // pop the lowest id at the highest priority
      bucket[pr] = w;
      occ[0] &= ~(static_cast<std::uint64_t>(w == 0 ? 1 : 0) << pr);
    } else {
      while (top > 0 && occ[top - 1] == 0) --top;
      if (top == 0) throw std::logic_error("ListScheduler: no ready task (cyclic graph?)");
      const std::size_t wp = top - 1;
      const auto pr = wp * 64 + static_cast<std::size_t>(63 - std::countl_zero(occ[wp]));
      const std::uint64_t* row = bucket + pr * W;
      std::size_t wi = 0;
      while (row[wi] == 0) ++wi;  // lowest id word; guaranteed non-empty
      std::uint64_t& word = bucket[pr * W + wi];
      t = wi * 64 + static_cast<std::size_t>(std::countr_zero(word));
      word &= word - 1;
      if (--count[pr] == 0) occ[wp] &= ~(std::uint64_t{1} << (pr & 63));
    }
    zero_len |= run_lane_task<1>(c, s, l, t, ev, s.pe_free.data(), s.run_pos.data());
    for (std::size_t k = c.out_off[t]; k < c.out_off[t + 1]; ++k) {
      const tg::TaskId dst = c.succ[k];
      if (--s.pending[dst] == 0) {
        push(dst);
        if (!kSingleWord) {
          const auto pr = static_cast<std::size_t>(c.bprio[dst * kL + l]) >> 6;
          if (pr + 1 > top) top = pr + 1;
        }
      }
    }
  }
  s.zero_len[l] = zero_len;
}

/// Lockstep scheduling of a whole block when every lane is bucketable and
/// n <= 64 (one bucket word per priority level) — the hot path for decoded
/// genomes. Three things distinguish it from schedule_lane_bucketed<true>:
///
///   * Step-major interleaving: lane-major scheduling is one long dependency
///     chain per lane (pop -> EST -> push feeds the next pop); advancing all
///     kLanes chains together gives the core kLanes independent chains to
///     overlap.
///   * The selection pass is split from the time pass. Selection depends
///     only on (graph, priorities) — never on computed times — so pass A
///     records each lane's schedule sequence integer-only, and pass B
///     replays it doing nothing but the EST/EFT dataflow and event
///     emission. Each loop carries roughly half the live state of the fused
///     form, which keeps the hot bodies out of register-spill territory.
///   * The ready-update is masked instead of branched: whether a pending
///     count hits zero depends on the lane's priorities, so a branch there
///     mispredicts constantly; the masked form is three extra ALU ops.
///
/// Per lane, both passes perform the scalar kernel's operations in the
/// scalar kernel's order — pass A pops the same unique (priority, -id)
/// argmax sequence, pass B runs run_lane_task's arithmetic verbatim — so
/// results stay bitwise identical to the per-lane path. Padded lanes
/// duplicate a real genome and are scheduled along (their output is never
/// read); a cyclic graph empties every lane's ready set at the same step, so
/// the lowest lane throws first, matching lane-major order.
void schedule_block_lockstep(const LaneSchedCtx& c, BatchScratch& s) {
  const std::size_t n = c.n;
  const std::size_t P = c.num_pes;

#ifdef CLR_BATCH_SORTNET
  // --- Pass A: selection order via sorted keys. Selection is a pure argmax
  // of (priority, -id) over the dynamic ready set, so embed both components
  // in one integer key — (priority << 16) | (0xFFFF - id), unique per lane,
  // total order matching the argmax — and sort each lane's n keys ONCE
  // through an n-element merge-exchange network (8 lanes per __m256i row).
  // The ready set then lives in a single per-lane word indexed by sorted
  // position: each pop is one clz + bit clear, and each ready-push is one
  // masked bit set through the task -> position map. Replaces the per-
  // priority bucket rows + occupancy bitmap, whose pop walked two bitmap
  // levels and touched a [priority][lane] row per step. ---
  {
    std::uint32_t* __restrict__ const order = s.order.data();
    std::uint32_t* __restrict__ const pend = s.pend_b.data();
    std::uint32_t* __restrict__ const sk = s.sel_key.data();
    std::uint32_t* __restrict__ const pos_of = s.pos_of.data();
    const std::int32_t* __restrict__ const bprio = c.bprio;
    const std::size_t* __restrict__ const out_off = c.out_off;
    const tg::TaskId* __restrict__ const succ = c.succ;

    // Keys: priority < n <= 64 and id < n keep the key below 2^23, so the
    // signed 32-bit network compares are exact.
    for (std::size_t t = 0; t < n; ++t) {
      const __m256i pr =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bprio + t * kL));
      const __m256i key = _mm256_or_si256(_mm256_slli_epi32(pr, 16),
                                          _mm256_set1_epi32(0xFFFF - static_cast<int>(t)));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(sk + t * kL), key);
    }
    {
      const std::uint32_t* const net = s.sort_net_sel.data();
      const std::size_t ces = s.sort_net_sel.size();
      for (std::size_t e = 0; e < ces; ++e) {
        std::uint32_t* const ki = sk + (net[e] >> 16) * kL;
        std::uint32_t* const kj = sk + (net[e] & 0xFFFFu) * kL;
        const __m256i a = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ki));
        const __m256i b = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(kj));
        const __m256i m = _mm256_cmpgt_epi32(a, b);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(ki), _mm256_blendv_epi8(a, b, m));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(kj), _mm256_blendv_epi8(b, a, m));
      }
    }
    // Invert to task -> position and strip the keys down to task ids (the
    // pop loop below only ever needs the id at a position).
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t l = 0; l < kL; ++l) {
        const std::uint32_t t = 0xFFFFu - (sk[p * kL + l] & 0xFFFFu);
        sk[p * kL + l] = t;
        pos_of[t * kL + l] = static_cast<std::uint32_t>(p);
      }
    }

    std::uint64_t w[kL] = {};  // bit p: task at sorted position p is ready
    for (std::size_t t = 0; t < n; ++t) {
      const auto indeg = static_cast<std::uint32_t>(c.in_off[t + 1] - c.in_off[t]);
      for (std::size_t l = 0; l < kL; ++l) pend[t * kL + l] = indeg;
      if (indeg == 0) {
        for (std::size_t l = 0; l < kL; ++l) w[l] |= std::uint64_t{1} << pos_of[t * kL + l];
      }
    }

    for (std::size_t done = 0; done < n; ++done) {
      for (std::size_t l = 0; l < kL; ++l) {
        std::uint64_t wl = w[l];
        if (wl == 0) throw std::logic_error("ListScheduler: no ready task (cyclic graph?)");
        const auto p = static_cast<std::size_t>(63 - std::countl_zero(wl));
        wl &= ~(std::uint64_t{1} << p);
        const std::size_t t = sk[p * kL + l];
        order[done * kL + l] = static_cast<std::uint32_t>(t);
        for (std::size_t k = out_off[t]; k < out_off[t + 1]; ++k) {
          const tg::TaskId dst = succ[k];
          const std::uint32_t pnd = --pend[dst * kL + l];
          const std::uint64_t m = pnd == 0 ? ~std::uint64_t{0} : std::uint64_t{0};
          wl |= (std::uint64_t{1} << pos_of[dst * kL + l]) & m;
        }
        w[l] = wl;
      }
    }
  }
#else
  // --- Pass A: selection order, integer-only (two-level priority bitmap;
  // selection sequence provably identical to the sorted-key form above:
  // both pop the unique argmax of (priority, -id) over the ready set). ---
  {
    std::uint32_t* __restrict__ const order = s.order.data();
    std::uint32_t* __restrict__ const pend = s.pend_b.data();
    std::uint64_t* __restrict__ const bucket = s.bucket_b.data();
    const std::int32_t* __restrict__ const bprio = c.bprio;
    const std::size_t* __restrict__ const out_off = c.out_off;
    const tg::TaskId* __restrict__ const succ = c.succ;

    std::fill(bucket, bucket + n * kL, std::uint64_t{0});
    std::uint64_t occ[kL] = {};
    for (std::size_t t = 0; t < n; ++t) {
      const auto indeg = static_cast<std::uint32_t>(c.in_off[t + 1] - c.in_off[t]);
      for (std::size_t l = 0; l < kL; ++l) pend[t * kL + l] = indeg;
      if (indeg == 0) {
        for (std::size_t l = 0; l < kL; ++l) {
          const auto pr = static_cast<std::size_t>(bprio[t * kL + l]);
          bucket[pr * kL + l] |= std::uint64_t{1} << t;
          occ[l] |= std::uint64_t{1} << pr;
        }
      }
    }

    for (std::size_t done = 0; done < n; ++done) {
      for (std::size_t l = 0; l < kL; ++l) {
        const std::uint64_t o = occ[l];
        if (o == 0) throw std::logic_error("ListScheduler: no ready task (cyclic graph?)");
        const auto pr = static_cast<std::size_t>(63 - std::countl_zero(o));
        std::uint64_t w = bucket[pr * kL + l];
        const auto t = static_cast<std::size_t>(std::countr_zero(w));
        w &= w - 1;  // pop the lowest id at the highest priority
        bucket[pr * kL + l] = w;
        std::uint64_t on = o & ~(static_cast<std::uint64_t>(w == 0 ? 1 : 0) << pr);
        order[done * kL + l] = static_cast<std::uint32_t>(t);
        for (std::size_t k = out_off[t]; k < out_off[t + 1]; ++k) {
          const tg::TaskId dst = succ[k];
          const std::uint32_t pnd = --pend[dst * kL + l];
          const std::uint64_t m = pnd == 0 ? ~std::uint64_t{0} : std::uint64_t{0};
          const auto prd = static_cast<std::size_t>(bprio[dst * kL + l]);
          bucket[prd * kL + l] |= (std::uint64_t{1} << dst) & m;
          on |= (std::uint64_t{1} << prd) & m;
        }
        occ[l] = on;
      }
    }
  }
#endif

  // --- Pass B: EST/EFT dataflow + event emission in the recorded order. ---
  {
    const std::uint32_t* __restrict__ const order = s.order.data();
    double* __restrict__ const end = s.end.data();
    double* __restrict__ const start = s.start.data();
    double* __restrict__ const pe_free = s.pe_free_b.data();
    std::uint32_t* __restrict__ const run_pos = s.run_pos_b.data();
    const double* __restrict__ const ext = s.ext.data();
    const double* __restrict__ const pow_ = s.pow.data();
#ifdef CLR_BATCH_SORTNET
    std::uint64_t* __restrict__ const tk = s.tkey.data();
    std::uint64_t* __restrict__ const dk = s.dkey.data();
#else
    EvalScratch::Event* __restrict__ const ev = s.events.data();
#endif
    const std::uint32_t* __restrict__ const bpe = c.bpe;
    const double* __restrict__ const comm_factor = c.comm_factor;
    const std::size_t* __restrict__ const in_off = c.in_off;
    const tg::TaskId* __restrict__ const pred = c.pred;
    const double* __restrict__ const pred_comm = c.pred_comm;

    for (std::size_t p = 0; p < P; ++p) {
      for (std::size_t l = 0; l < kL; ++l) {
        pe_free[p * kL + l] = 0.0;
        run_pos[p * kL + l] = s.run_off[l * (P + 1) + p];
      }
    }
    std::uint32_t zero_len = 0;  // bit l: lane l saw a zero-length interval
    [[maybe_unused]] const std::size_t n2 = 2 * n;
    for (std::size_t step = 0; step < n; ++step) {
      for (std::size_t l = 0; l < kL; ++l) {
        const std::size_t t = order[step * kL + l];
        const std::uint32_t pe = bpe[t * kL + l];
        double est = pe_free[pe * kL + l];
        for (std::size_t k = in_off[t]; k < in_off[t + 1]; ++k) {
          const tg::TaskId src = pred[k];
          const double cross = pred_comm[k] * comm_factor[bpe[src * kL + l] * c.num_pes + pe];
          const double comm = bpe[src * kL + l] != pe ? cross : 0.0;
          est = std::max(est, end[src * kL + l] + comm);
        }
        const double fin = est + ext[t * kL + l];
        start[t * kL + l] = est;
        end[t * kL + l] = fin;
        pe_free[pe * kL + l] = fin;
        const double pw = pow_[t * kL + l];
        const std::uint32_t slot = run_pos[pe * kL + l];
        run_pos[pe * kL + l] = slot + 2;
        const std::uint32_t zl = est == fin ? 1u : 0u;
        zero_len |= zl << l;
#ifdef CLR_BATCH_SORTNET
        // Raw-bit emission for the sorting-network sweep, [slot][lane]
        // transposed. Both the delta keying (signed_key) and the key-safety
        // classification are deferred to a vectorized pre-pass in phase 6 —
        // here the serial scheduling loop just stores the plain bit
        // patterns. The zero-length slot swap is kept only so both emission
        // forms stay line-for-line comparable — the full sort makes slot
        // order irrelevant.
        tk[(slot + zl) * kL + l] = std::bit_cast<std::uint64_t>(est);
        dk[(slot + zl) * kL + l] = std::bit_cast<std::uint64_t>(pw);
        tk[(slot + 1 - zl) * kL + l] = std::bit_cast<std::uint64_t>(fin);
        dk[(slot + 1 - zl) * kL + l] = std::bit_cast<std::uint64_t>(-pw);
#else
        EvalScratch::Event* __restrict__ const lev = ev + l * n2;
        lev[slot + zl] = {est, pw};
        lev[slot + 1 - zl] = {fin, -pw};
#endif
      }
    }
    for (std::size_t l = 0; l < kL; ++l) {
      s.zero_len[l] = (zero_len >> l) & 1u;
    }
  }
}

#ifdef CLR_BATCH_SORTNET
/// Wapp sweep of a whole lockstep block in SIMD — the phase-6 counterpart of
/// schedule_block_lockstep. The per-lane merge sweep (sweep_merge_runs) is
/// latency-bound: every merge step is a serial chain of data-dependent
/// selects with near-50/50 outcomes, so one lane at a time leaves the core
/// mostly idle. This path removes the data dependence from the control
/// structure entirely:
///
///   * Pass B emitted each event as a pair of integer sort keys in
///     [slot][lane] layout — finite times >= 0 compare as raw bit patterns,
///     deltas through the signed_key bijection.
///   * A Batcher merge-exchange network sorts all kLanes slabs at once: the
///     compare-exchange sequence is fixed by 2n alone, so every step is the
///     same 64-bit SIMD compare+blend on all lanes regardless of the data —
///     no branches, no merge cursors, full lane parallelism. The network
///     also absorbs locally-unsorted runs from zero-length intervals, so
///     the zero_len full-sort special case disappears on this path.
///   * The running-sum/peak scan then reads the sorted [slot][lane] delta
///     rows vectorized across lanes: per lane it is the scalar helper's
///     exact add/max sequence into an independent accumulator.
///
/// Tie freedom: with key_unsafe lanes excluded (±0.0 deltas, negative/NaN
/// times), events with equal (time, delta) doubles are bitwise identical and
/// so are their keys — any sorted order the network produces yields the
/// reference's value sequence bit for bit. Writes s.peak for every lane;
/// key_unsafe lanes are overwritten by the exact fallback afterwards.
void sweep_block_sorted(std::size_t n2, BatchScratch& s) {
  std::uint64_t* const tk = s.tkey.data();
  std::uint64_t* const dk = s.dkey.data();
  const std::uint32_t* const net = s.sort_net.data();
  const std::size_t ces = s.sort_net.size();
  for (std::size_t e = 0; e < ces; ++e) {
    const std::size_t i = net[e] >> 16;
    const std::size_t j = net[e] & 0xFFFFu;
    std::uint64_t* const ti = tk + i * kL;
    std::uint64_t* const tj = tk + j * kL;
    std::uint64_t* const di = dk + i * kL;
    std::uint64_t* const dj = dk + j * kL;
    for (std::size_t v = 0; v < kL; v += 4) {
      const __m256i ta = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ti + v));
      const __m256i tb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(tj + v));
      const __m256i da = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(di + v));
      const __m256i db = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dj + v));
      // Exchange where (tb, db) <lex (ta, da), strictly — equal keys stay put.
      const __m256i m = _mm256_or_si256(
          _mm256_cmpgt_epi64(ta, tb),
          _mm256_and_si256(_mm256_cmpeq_epi64(ta, tb), _mm256_cmpgt_epi64(da, db)));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(ti + v), _mm256_blendv_epi8(ta, tb, m));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(tj + v), _mm256_blendv_epi8(tb, ta, m));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(di + v), _mm256_blendv_epi8(da, db, m));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(dj + v), _mm256_blendv_epi8(db, da, m));
    }
  }
  // Fused running-sum/peak scan over the sorted delta rows, all lanes at
  // once. max operand order matches std::max(peak, current): current is the
  // first maxpd operand so peak survives when the compare is false.
  const __m256i zero = _mm256_setzero_si256();
  __m256d cur0 = _mm256_setzero_pd(), cur1 = _mm256_setzero_pd();
  __m256d pk0 = _mm256_setzero_pd(), pk1 = _mm256_setzero_pd();
  for (std::size_t k2 = 0; k2 < n2; ++k2) {
    const __m256i kd0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dk + k2 * kL));
    const __m256i kd1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dk + k2 * kL + 4));
    // signed_key is an involution: key ^ (arith-shift(key) >> 1) restores
    // the delta's bit pattern (cmpgt gives the all-ones mask for key < 0).
    const __m256i b0 = _mm256_xor_si256(kd0, _mm256_srli_epi64(_mm256_cmpgt_epi64(zero, kd0), 1));
    const __m256i b1 = _mm256_xor_si256(kd1, _mm256_srli_epi64(_mm256_cmpgt_epi64(zero, kd1), 1));
    cur0 = _mm256_add_pd(cur0, _mm256_castsi256_pd(b0));
    cur1 = _mm256_add_pd(cur1, _mm256_castsi256_pd(b1));
    pk0 = _mm256_max_pd(cur0, pk0);
    pk1 = _mm256_max_pd(cur1, pk1);
  }
  _mm256_storeu_pd(s.peak, pk0);
  _mm256_storeu_pd(s.peak + 4, pk1);
}
#endif

/// Linear-scan fallback for lanes with out-of-range priorities — the same
/// selection loop as the scalar kernel's fallback.
void schedule_lane_linear(const LaneSchedCtx& c, BatchScratch& s, std::size_t l) {
  const std::size_t n = c.n;
  std::size_t ready_count = 0;
  for (std::size_t t = 0; t < n; ++t) {
    s.pending[t] = static_cast<std::uint32_t>(c.in_off[t + 1] - c.in_off[t]);
    if (s.pending[t] == 0) s.ready[ready_count++] = static_cast<std::uint32_t>(t);
  }
  EvalScratch::Event* ev = s.events.data() + l * 2 * n;
  bool zero_len = false;
  for (std::size_t done = 0; done < n; ++done) {
    if (ready_count == 0) throw std::logic_error("ListScheduler: no ready task (cyclic graph?)");
    std::size_t best = 0;
    for (std::size_t k = 1; k < ready_count; ++k) {
      const tg::TaskId a = s.ready[k];
      const tg::TaskId b = s.ready[best];
      if (c.bprio[a * kL + l] != c.bprio[b * kL + l]) {
        if (c.bprio[a * kL + l] > c.bprio[b * kL + l]) best = k;
      } else if (a < b) {
        best = k;
      }
    }
    const tg::TaskId t = s.ready[best];
    s.ready[best] = s.ready[--ready_count];
    zero_len |= run_lane_task<1>(c, s, l, t, ev, s.pe_free.data(), s.run_pos.data());
    for (std::size_t k = c.out_off[t]; k < c.out_off[t + 1]; ++k) {
      const tg::TaskId dst = c.succ[k];
      if (--s.pending[dst] == 0) s.ready[ready_count++] = dst;
    }
  }
  s.zero_len[l] = zero_len;
}

}  // namespace

void CLR_BATCH_KERNEL_FN(const CompiledGraph& g, const BatchGenomes& bg, std::size_t lanes,
                         BatchScratch& s, KernelMetrics* out) {
  namespace sv = clr::simd;
  using A = BatchKernelAccess;
  static_assert(kL % sv::kWidth == 0, "kLanes must be a multiple of the backend width");
  constexpr std::size_t NV = kL / sv::kWidth;

  const std::size_t n = g.num_tasks();
  const std::size_t P = g.num_pes();
  const std::size_t clr_size = A::clr_size(g);
  const std::size_t* impl_off = A::impl_off(g);
  const plat::PeTypeId* impl_pe_type = A::impl_pe_type(g);
  const plat::PeTypeId* pe_type_of = A::pe_type_of(g);
  const A::Packed* kt = A::kernel_table(g);
  const double* norm_crit = A::norm_crit(g);
  const std::uint32_t* bpe = bg.pe();
  const std::uint32_t* bimpl = bg.impl();
  const std::uint32_t* bclr = bg.clr();
  const std::int32_t* bprio = bg.prio();

  // --- Phase 1: validation + metric-row resolution + per-lane power-run
  // layout. Same checks, order and messages as the scalar kernel, lane-major
  // so a sequential evaluation of the same genomes would throw first on the
  // same (genome, task). ---
#ifdef CLR_BATCH_SORTNET
  // Vectorized fast path: all four range/compatibility checks fold into one
  // accumulated violation mask (8 lanes per __m256i row), gathers run over
  // clamped indices so they stay in-bounds even for out-of-range genes, and
  // the metric row resolves arithmetically. Genomes decoded from the GA never
  // violate, so the mask test fails essentially never; when it does fire, the
  // whole phase re-runs through the scalar lane-major loop below, which
  // throws the exact exception, on the same (genome, task), as a sequential
  // evaluation would.
  bool phase1_fallback = false;
  {
    std::fill(s.run_off.begin(), s.run_off.end(), 0u);
    __m256i bad = _mm256_setzero_si256();
    __m256i okb = _mm256_set1_epi32(-1);
    const __m256i vn = _mm256_set1_epi32(static_cast<int>(n));
    const __m256i vP = _mm256_set1_epi32(static_cast<int>(P));
    const __m256i pclamp = _mm256_set1_epi32(static_cast<int>(P - 1));
    const __m256i vclr = _mm256_set1_epi32(static_cast<int>(clr_size));
    const __m256i ones = _mm256_set1_epi32(-1);
    for (std::size_t t = 0; t < n; ++t) {
      const auto icnt = static_cast<std::uint32_t>(impl_off[t + 1] - impl_off[t]);
      if (icnt == 0) {  // no implementation can be valid; message order moot
        bad = ones;
        continue;
      }
      const __m256i vi =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bimpl + t * kL));
      const __m256i vcnt = _mm256_set1_epi32(static_cast<int>(icnt));
      // Unsigned x >= limit as max_epu32(x, limit) == x.
      bad = _mm256_or_si256(bad, _mm256_cmpeq_epi32(_mm256_max_epu32(vi, vcnt), vi));
      const __m256i vp = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bpe + t * kL));
      bad = _mm256_or_si256(bad, _mm256_cmpeq_epi32(_mm256_max_epu32(vp, vP), vp));
      const __m256i vi_c = _mm256_min_epu32(vi, _mm256_set1_epi32(static_cast<int>(icnt - 1)));
      const __m256i vp_c = _mm256_min_epu32(vp, pclamp);
      const __m256i trow = _mm256_add_epi32(vi_c, _mm256_set1_epi32(static_cast<int>(impl_off[t])));
      const __m256i ty_impl =
          _mm256_i32gather_epi32(reinterpret_cast<const int*>(impl_pe_type), trow, 4);
      const __m256i ty_pe =
          _mm256_i32gather_epi32(reinterpret_cast<const int*>(pe_type_of), vp_c, 4);
      bad = _mm256_or_si256(bad, _mm256_xor_si256(_mm256_cmpeq_epi32(ty_impl, ty_pe), ones));
      const __m256i vc = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bclr + t * kL));
      bad = _mm256_or_si256(bad, _mm256_cmpeq_epi32(_mm256_max_epu32(vc, vclr), vc));
      const __m256i mrow = _mm256_add_epi32(_mm256_mullo_epi32(trow, vclr), vc);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(s.mrow.data() + t * kL), mrow);
      const __m256i pr = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bprio + t * kL));
      okb = _mm256_and_si256(
          okb, _mm256_and_si256(_mm256_cmpgt_epi32(pr, ones), _mm256_cmpgt_epi32(vn, pr)));
      for (std::size_t l = 0; l < kL; ++l) {
        // Clamp like the gathers above: an out-of-range PE gene already
        // trips `bad`, and the fallback rebuilds run_off from scratch
        // before throwing, so the clamped scatter never reaches results —
        // it only keeps the write in-bounds.
        const std::uint32_t pe = bpe[t * kL + l];
        s.run_off[l * (P + 1) + (pe < P ? pe : P - 1) + 1] += 2;
      }
    }
    phase1_fallback = _mm256_movemask_epi8(bad) != 0;
    if (!phase1_fallback) {
      const int okm = _mm256_movemask_ps(_mm256_castsi256_ps(okb));
      for (std::size_t l = 0; l < kL; ++l) {
        std::uint32_t* ro = s.run_off.data() + l * (P + 1);
        for (std::size_t p = 0; p < P; ++p) ro[p + 1] += ro[p];
        s.bucketable[l] = ((okm >> l) & 1) != 0;
      }
    }
  }
  if (phase1_fallback)
#endif
  for (std::size_t l = 0; l < kL; ++l) {
    std::uint32_t* ro = s.run_off.data() + l * (P + 1);
    std::fill(ro, ro + P + 1, 0u);
    bool bucketable = true;
    for (std::size_t t = 0; t < n; ++t) {
      const std::uint32_t impl_index = bimpl[t * kL + l];
      if (impl_index >= impl_off[t + 1] - impl_off[t]) {
        throw std::invalid_argument("ListScheduler: impl_index out of range");
      }
      const std::uint32_t pe = bpe[t * kL + l];
      if (pe >= P) {
        throw std::invalid_argument("ListScheduler: PE id out of range");
      }
      const std::size_t row = impl_off[t] + impl_index;
      if (impl_pe_type[row] != pe_type_of[pe]) {
        throw std::invalid_argument("ListScheduler: implementation incompatible with bound PE");
      }
      const std::uint32_t clr = bclr[t * kL + l];
      if (clr >= clr_size) {
        throw std::invalid_argument("ListScheduler: clr_index out of range");
      }
      s.mrow[t * kL + l] = static_cast<std::uint32_t>(row * clr_size + clr);
      ro[pe + 1] += 2;
      const std::int32_t pr = bprio[t * kL + l];
      bucketable = bucketable && pr >= 0 && static_cast<std::size_t>(pr) < n;
    }
    for (std::size_t p = 0; p < P; ++p) ro[p + 1] += ro[p];
    s.bucketable[l] = bucketable;
  }

  // --- Phase 2: gather the packed metric columns into [task][lane] SoA rows
  // (bitwise copies; each row of the packed table is half a cache line, and
  // the 8 lanes of a task give the gather natural memory-level parallelism).
  for (std::size_t t = 0; t < n; ++t) {
    const std::uint32_t* mr = s.mrow.data() + t * kL;
    double* ex = s.ext.data() + t * kL;
    double* pw = s.pow.data() + t * kL;
    double* er = s.err.data() + t * kL;
    double* mt = s.mttf.data() + t * kL;
    for (std::size_t l = 0; l < kL; ++l) {
      const A::Packed& pm = kt[mr[l]];
      ex[l] = pm.avg_ext;
      pw[l] = pm.avg_power;
      er[l] = pm.err_prob;
      mt[l] = pm.mttf;
    }
  }

  // --- Phase 3: per-lane list scheduling, cache-blocked over the batch (all
  // lanes share the warm topology/metric lines fetched above). Only active
  // lanes are scheduled; padded lanes keep stale windows that the vector
  // phases read (finite values) and the output writes never touch. ---
  LaneSchedCtx c;
  c.n = n;
  c.num_pes = P;
  c.in_off = A::in_off(g);
  c.out_off = A::out_off(g);
  c.pred = A::pred(g);
  c.succ = A::succ(g);
  c.pred_comm = A::pred_comm(g);
  c.comm_factor = A::comm_factor(g);
  c.bpe = bpe;
  c.bprio = bprio;
  bool all_bucketable = true;
  for (std::size_t l = 0; l < kL; ++l) all_bucketable = all_bucketable && s.bucketable[l];
  const bool lockstep = all_bucketable && n <= 64;
  if (lockstep) {
    schedule_block_lockstep(c, s);
  } else {
    for (std::size_t l = 0; l < lanes; ++l) {
      std::fill(s.pe_free.begin(), s.pe_free.end(), 0.0);
      const std::uint32_t* ro = s.run_off.data() + l * (P + 1);
      for (std::size_t p = 0; p < P; ++p) s.run_pos[p] = ro[p];
      if (!s.bucketable[l]) {
        schedule_lane_linear(c, s, l);
      } else if (n <= 64) {
        schedule_lane_bucketed<true>(c, s, l);
      } else {
        schedule_lane_bucketed<false>(c, s, l);
      }
    }
  }

  // --- Phase 4: Table 3 accumulators, vectorized across lanes. Ascending
  // task order per lane = the scalar kernel's exact value sequence into each
  // independent accumulator. ---
  {
    sv::VecD frel[NV], en[NV], ms[NV];
    for (std::size_t v = 0; v < NV; ++v) frel[v] = en[v] = ms[v] = sv::set1(0.0);
    const sv::VecD one = sv::set1(1.0);
    for (std::size_t t = 0; t < n; ++t) {
      const sv::VecD crit = sv::set1(norm_crit[t]);
      const double* er = s.err.data() + t * kL;
      const double* ex = s.ext.data() + t * kL;
      const double* pw = s.pow.data() + t * kL;
      const double* fin = s.end.data() + t * kL;
      for (std::size_t v = 0; v < NV; ++v) {
        const std::size_t o = v * sv::kWidth;
        frel[v] = sv::add(frel[v], sv::mul(sv::sub(one, sv::load(er + o)), crit));
        en[v] = sv::add(en[v], sv::mul(sv::load(ex + o), sv::load(pw + o)));
        ms[v] = sv::max(ms[v], sv::load(fin + o));
      }
    }
    for (std::size_t v = 0; v < NV; ++v) {
      sv::store(s.acc_frel + v * sv::kWidth, frel[v]);
      sv::store(s.acc_energy + v * sv::kWidth, en[v]);
      sv::store(s.acc_ms + v * sv::kWidth, ms[v]);
    }
  }

  // --- Phase 5: aging-limited lifetime. The ~2n divisions dominate the
  // scalar metric phase; here they vectorize across lanes, while the per-PE
  // scatter stays scalar in (task-outer, lane-inner) order so every
  // (lane, PE) accumulator sees the scalar kernel's addition order. Lanes
  // with makespan 0 scatter nothing, leaving all their rates 0, so the
  // 1/0 = +inf reduction below lands them on system_mttf = 0 exactly like
  // the scalar path's skipped block. ---
  std::fill(s.aging.begin(), s.aging.end(), 0.0);
  {
    sv::VecD msv[NV];
    for (std::size_t v = 0; v < NV; ++v) msv[v] = sv::load(s.acc_ms + v * sv::kWidth);
    for (std::size_t t = 0; t < n; ++t) {
      const double* ex = s.ext.data() + t * kL;
      const double* mt = s.mttf.data() + t * kL;
      for (std::size_t v = 0; v < NV; ++v) {
        const std::size_t o = v * sv::kWidth;
        sv::store(s.lane_tmp + o, sv::div(sv::div(sv::load(ex + o), msv[v]), sv::load(mt + o)));
      }
      for (std::size_t l = 0; l < lanes; ++l) {
        if (mt[l] > 0.0 && s.acc_ms[l] > 0.0) {
          s.aging[bpe[t * kL + l] * kL + l] += s.lane_tmp[l];
        }
      }
    }
    sv::VecD minv[NV];
    const sv::VecD one = sv::set1(1.0);
    for (std::size_t v = 0; v < NV; ++v) {
      minv[v] = sv::set1(std::numeric_limits<double>::infinity());
    }
    for (std::size_t p = 0; p < P; ++p) {
      const double* ar = s.aging.data() + p * kL;
      for (std::size_t v = 0; v < NV; ++v) {
        // 1/0 = +inf never wins the min — identical to skipping rate == 0.
        minv[v] = sv::min(minv[v], sv::div(one, sv::load(ar + v * sv::kWidth)));
      }
    }
    for (std::size_t v = 0; v < NV; ++v) sv::store(s.acc_mttf + v * sv::kWidth, minv[v]);
  }

  // --- Phase 6: Wapp sweep. On the AVX2 TU the lockstep path emitted
  // key-form events and sweeps the whole block through the sorting network;
  // key_unsafe lanes are reconstructed from the keys BEFORE the network
  // scrambles the emission order, then re-swept through the scalar kernel's
  // exact helper dispatch (zero_len -> full sort, else per-PE-run merge) so
  // even pathological inputs (±0.0 power, non-finite times) reproduce the
  // scalar path bit for bit. The per-lane scheduling paths (and the whole
  // portable TU) emit plain events and use those helpers directly. ---
#ifdef CLR_BATCH_SORTNET
  if (lockstep) {
    // Fused key-safety scan + delta keying over the raw-bit emission of
    // Pass B, all lanes at once. A lane is key-safe when every time is
    // >= 0.0 as a double (raw bits then order like signed integers), every
    // delta is nonzero and ordered (signed_key then orders like doubles;
    // _CMP_NEQ_OQ rejects ±0.0 and NaN), and every execution time is
    // >= 0.0 (with est >= 0 this gives fin >= est per interval). That is a
    // conservative subset of the per-emission criterion the scheduling
    // loop used to compute — over-flagged lanes just take the exact
    // fallback below. The same loop keys the delta rows in place.
    {
      std::uint64_t* const dkp = s.dkey.data();
      const std::uint64_t* const tkp = s.tkey.data();
      const __m256d dzero = _mm256_setzero_pd();
      const __m256i izero = _mm256_setzero_si256();
      __m256d ok0 = _mm256_castsi256_pd(_mm256_set1_epi64x(-1));
      __m256d ok1 = ok0;
      for (std::size_t k2 = 0; k2 < 2 * n; ++k2) {
        const double* const tr = reinterpret_cast<const double*>(tkp + k2 * kL);
        ok0 = _mm256_and_pd(ok0, _mm256_cmp_pd(_mm256_loadu_pd(tr), dzero, _CMP_GE_OQ));
        ok1 = _mm256_and_pd(ok1, _mm256_cmp_pd(_mm256_loadu_pd(tr + 4), dzero, _CMP_GE_OQ));
        __m256i* const dr = reinterpret_cast<__m256i*>(dkp + k2 * kL);
        const __m256i d0 = _mm256_loadu_si256(dr);
        const __m256i d1 = _mm256_loadu_si256(dr + 1);
        ok0 = _mm256_and_pd(ok0, _mm256_cmp_pd(_mm256_castsi256_pd(d0), dzero, _CMP_NEQ_OQ));
        ok1 = _mm256_and_pd(ok1, _mm256_cmp_pd(_mm256_castsi256_pd(d1), dzero, _CMP_NEQ_OQ));
        // signed_key, lane-parallel: b ^ ((b >> 63 arithmetic) >> 1).
        _mm256_storeu_si256(
            dr, _mm256_xor_si256(d0, _mm256_srli_epi64(_mm256_cmpgt_epi64(izero, d0), 1)));
        _mm256_storeu_si256(
            dr + 1, _mm256_xor_si256(d1, _mm256_srli_epi64(_mm256_cmpgt_epi64(izero, d1), 1)));
      }
      for (std::size_t t = 0; t < n; ++t) {
        const double* const xr = s.ext.data() + t * kL;
        ok0 = _mm256_and_pd(ok0, _mm256_cmp_pd(_mm256_loadu_pd(xr), dzero, _CMP_GE_OQ));
        ok1 = _mm256_and_pd(ok1, _mm256_cmp_pd(_mm256_loadu_pd(xr + 4), dzero, _CMP_GE_OQ));
      }
      const int okm = _mm256_movemask_pd(ok0) | (_mm256_movemask_pd(ok1) << 4);
      for (std::size_t l = 0; l < lanes; ++l) {
        s.key_unsafe[l] = ((okm >> l) & 1) == 0;
      }
    }
    bool unsafe_any = false;
    for (std::size_t l = 0; l < lanes; ++l) {
      if (!s.key_unsafe[l]) continue;
      unsafe_any = true;
      // signed_key is an involution, so un-keying restores the exact bits
      // run_lane_task would have emitted, in the same slots.
      EvalScratch::Event* ev = s.events.data() + l * 2 * n;
      for (std::size_t k2 = 0; k2 < 2 * n; ++k2) {
        ev[k2].time = std::bit_cast<double>(s.tkey[k2 * kL + l]);
        ev[k2].delta = std::bit_cast<double>(signed_key(s.dkey[k2 * kL + l]));
      }
    }
    sweep_block_sorted(2 * n, s);
    if (unsafe_any) {
      for (std::size_t l = 0; l < lanes; ++l) {
        if (!s.key_unsafe[l]) continue;
        EvalScratch::Event* ev = s.events.data() + l * 2 * n;
        s.peak[l] = s.zero_len[l]
                        ? sweep_sorted_events(ev, 2 * n)
                        : sweep_merge_runs(ev, s.events2.data(), s.run_off.data() + l * (P + 1),
                                           s.run_off2.data(), P, 2 * n);
      }
    }
  } else
#endif
  {
    for (std::size_t l = 0; l < lanes; ++l) {
      EvalScratch::Event* ev = s.events.data() + l * 2 * n;
      if (s.zero_len[l]) {
        s.peak[l] = sweep_sorted_events(ev, 2 * n);
      } else {
        s.peak[l] = sweep_merge_runs(ev, s.events2.data(), s.run_off.data() + l * (P + 1),
                                     s.run_off2.data(), P, 2 * n);
      }
    }
  }

  for (std::size_t l = 0; l < lanes; ++l) {
    out[l].makespan = s.acc_ms[l];
    out[l].func_rel = s.acc_frel[l];
    out[l].peak_power = s.peak[l];
    out[l].energy = s.acc_energy[l];
    out[l].system_mttf =
        s.acc_ms[l] > 0.0 && std::isfinite(s.acc_mttf[l]) ? s.acc_mttf[l] : 0.0;
  }
}

}  // namespace clr::sched::detail
