#include "schedule/gantt.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace clr::sched {

namespace {

char label_for(tg::TaskId t) {
  constexpr const char* kAlphabet =
      "0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ";
  return kAlphabet[t % 62];
}

}  // namespace

std::string render_gantt(const EvalContext& ctx, const Configuration& cfg,
                         const ScheduleResult& result, GanttOptions options) {
  ctx.check();
  if (cfg.size() != ctx.graph->num_tasks() || result.tasks.size() != cfg.size()) {
    throw std::invalid_argument("render_gantt: configuration/schedule size mismatch");
  }
  if (options.width < 8) throw std::invalid_argument("render_gantt: width too small");

  const double horizon = std::max(result.makespan, 1e-12);
  const double slot = horizon / static_cast<double>(options.width);

  std::ostringstream out;
  out << "time 0 .. " << result.makespan << " (one column = " << slot << ")\n";

  for (const auto& pe : ctx.platform->pes()) {
    std::string row(options.width, '.');
    bool used = false;
    for (tg::TaskId t = 0; t < cfg.size(); ++t) {
      if (cfg[t].pe != pe.id) continue;
      used = true;
      const auto& ts = result.tasks[t];
      auto first = static_cast<std::size_t>(ts.start / slot);
      auto last = static_cast<std::size_t>(ts.end / slot);
      first = std::min(first, options.width - 1);
      last = std::min(std::max(last, first + 1), options.width);
      for (std::size_t c = first; c < last; ++c) row[c] = label_for(t);
    }
    if (!used && !options.show_idle_pes) continue;
    out << "PE" << pe.id << " [" << ctx.platform->type_of(pe.id).name << "]";
    // Pad the PE header to a fixed column.
    const std::string header = out.str();
    const std::size_t line_start = header.rfind('\n') + 1;
    const std::size_t header_len = header.size() - line_start;
    out << std::string(header_len < 24 ? 24 - header_len : 1, ' ') << "|" << row << "|\n";
  }

  if (cfg.size() <= 20) {
    out << "legend:";
    for (tg::TaskId t = 0; t < cfg.size(); ++t) {
      out << " " << label_for(t) << "=t" << t;
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace clr::sched
