#pragma once
// ASCII Gantt rendering of a computed schedule — one row per PE, one column
// per time slot — used by the examples and the CLI to show where a mapping
// actually places work.

#include <string>

#include "schedule/scheduler.hpp"

namespace clr::sched {

struct GanttOptions {
  /// Total character width of the time axis.
  std::size_t width = 72;
  /// Show idle PEs (PEs with no task) as empty rows.
  bool show_idle_pes = false;
};

/// Render the schedule as text. Tasks are labelled by id modulo 62 with
/// [0-9a-zA-Z]; '.' is idle time. A legend line maps labels back to task ids
/// when there are few enough tasks to be readable.
std::string render_gantt(const EvalContext& ctx, const Configuration& cfg,
                         const ScheduleResult& result, GanttOptions options = {});

}  // namespace clr::sched
