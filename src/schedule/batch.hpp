#pragma once
// Structure-of-arrays population slice + scratch arena for the batched
// schedule-evaluation kernel, CompiledGraph::evaluate_batch (DESIGN.md
// §5.10).
//
// A BatchGenomes transposes up to kLanes configurations into per-gene lanes:
// gene arrays are laid out [task][lane], so the metric-accumulation loops of
// the kernel read kLanes consecutive doubles per task and vectorize across
// *genomes* instead of across tasks. kLanes is fixed at 8 — a multiple of
// every simd:: backend width (AVX2 = 4, SSE2/NEON = 2, scalar = 1), and two
// cache lines per gene row — so block composition, and therefore results,
// never depend on which backend the dispatcher picked.
//
// The inherently sequential list-scheduling pass stays per-genome (lane by
// lane) but runs cache-blocked over the batch: all lanes of a block share
// one warm set of topology/metric lines. Everything mutable lives in
// BatchScratch; a warm scratch makes evaluate_batch allocation-free
// (pinned by tests/schedule/test_alloc_pinning.cpp).

#include <cassert>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <vector>

#include "schedule/compiled_graph.hpp"
#include "schedule/configuration.hpp"

namespace clr::sched {

/// SoA transpose of up to kLanes configurations (one "block").
class BatchGenomes {
 public:
  static constexpr std::size_t kLanes = 8;

  /// Size the gene arrays for `num_tasks`; allocation-free when warm.
  void bind(std::size_t num_tasks) {
    if (num_tasks_ == num_tasks) return;
    num_tasks_ = num_tasks;
    pe_.resize(num_tasks * kLanes);
    impl_.resize(num_tasks * kLanes);
    clr_.resize(num_tasks * kLanes);
    prio_.resize(num_tasks * kLanes);
  }

  std::size_t num_tasks() const { return num_tasks_; }

  /// Transpose one configuration into lane `lane`. Throws exactly like the
  /// scalar kernel on a size mismatch; all other validation happens inside
  /// evaluate_block, in lane order.
  void set(std::size_t lane, const Configuration& cfg) {
    if (cfg.size() != num_tasks_) {
      throw std::invalid_argument("ListScheduler: configuration size mismatch");
    }
    for (std::size_t t = 0; t < num_tasks_; ++t) {
      const TaskAssignment& a = cfg[t];
      pe_[t * kLanes + lane] = a.pe;
      impl_[t * kLanes + lane] = a.impl_index;
      clr_[t * kLanes + lane] = a.clr_index;
      prio_[t * kLanes + lane] = a.priority;
    }
  }

  /// Replicate lane `lanes - 1` into the unused lanes [lanes, kLanes) so the
  /// vector phases can process all kLanes lanes unconditionally: a padded
  /// lane duplicates a real (validated) genome, so it can neither throw nor
  /// read out of bounds, and its results are simply never written out.
  /// evaluate_block calls this itself.
  void pad(std::size_t lanes) {
    if (lanes == 0 || lanes > kLanes) {
      throw std::invalid_argument("BatchGenomes: lane count out of range");
    }
    const std::size_t from = lanes - 1;
    for (std::size_t t = 0; t < num_tasks_; ++t) {
      for (std::size_t l = lanes; l < kLanes; ++l) {
        pe_[t * kLanes + l] = pe_[t * kLanes + from];
        impl_[t * kLanes + l] = impl_[t * kLanes + from];
        clr_[t * kLanes + l] = clr_[t * kLanes + from];
        prio_[t * kLanes + l] = prio_[t * kLanes + from];
      }
    }
  }

  // Raw [task][lane] gene rows for the kernel.
  const std::uint32_t* pe() const { return pe_.data(); }
  const std::uint32_t* impl() const { return impl_.data(); }
  const std::uint32_t* clr() const { return clr_.data(); }
  const std::int32_t* prio() const { return prio_.data(); }

 private:
  std::size_t num_tasks_ = static_cast<std::size_t>(-1);
  std::vector<std::uint32_t> pe_, impl_, clr_;
  std::vector<std::int32_t> prio_;
};

/// Batcher merge-exchange sorting network for `count` elements (Knuth,
/// TAOCP 5.2.2 Algorithm M — valid for any count, ~count/4 * lg^2(count)
/// compare-exchanges). The pair sequence depends only on `count`, so every
/// lane of a batch can execute it in SIMD lockstep; pairs are packed as
/// (i << 16 | j), i < j.
inline void build_merge_exchange_network(std::size_t count, std::vector<std::uint32_t>& net) {
  assert(count <= 65536 && "pair packing holds 16-bit indices");
  net.clear();
  if (count < 2) return;
  std::size_t t = 0;
  while ((std::size_t{1} << t) < count) ++t;
  for (std::size_t p = std::size_t{1} << (t - 1); p > 0; p >>= 1) {
    std::size_t q = std::size_t{1} << (t - 1);
    std::size_t r = 0;
    std::size_t d = p;
    for (;;) {
      for (std::size_t i = 0; i + d < count; ++i) {
        if ((i & p) == r) {
          net.push_back(static_cast<std::uint32_t>((i << 16) | (i + d)));
        }
      }
      if (q == p) break;
      d = q - p;
      q >>= 1;
      r = p;
    }
  }
}

/// Reusable working memory for evaluate_batch / evaluate_block — the batched
/// counterpart of EvalScratch (one per thread). [task][lane] arrays carry
/// per-lane state; per-PE and per-priority structures are shared and reused
/// lane-sequentially by the scheduling and sweep passes.
struct BatchScratch {
  static constexpr std::size_t kLanes = BatchGenomes::kLanes;

  /// Transpose target used by CompiledGraph::evaluate_batch (callers of
  /// evaluate_block may supply their own BatchGenomes instead).
  BatchGenomes genomes;

  std::vector<std::uint32_t> mrow;  ///< [t][lane]: row into the packed table
  // Gathered packed-metric columns, [t][lane] — the SoA feed of the vector
  // metric loops.
  std::vector<double> ext, pow, err, mttf;
  std::vector<double> start, end;  ///< [t][lane]: windows of the last block

  /// kLanes runs of 2n power events (lane slabs; slab l starts at l * 2n).
  std::vector<EvalScratch::Event> events;
  std::vector<EvalScratch::Event> events2;  ///< shared merge ping-pong (2n)
  std::vector<std::uint32_t> run_off;       ///< per lane: P+1 run offsets
  std::vector<std::uint32_t> run_off2;      ///< shared merged-run offsets
  std::vector<std::uint32_t> run_pos;       ///< shared per-PE fill cursors
  std::vector<std::uint32_t> pending;       ///< shared per-task indegree
  std::vector<std::uint32_t> ready;         ///< shared fallback ready set
  std::vector<double> pe_free;              ///< shared per-PE next-free time
  std::vector<double> aging;                ///< [pe][lane] aging rates

  // Two-level ready-set bitmap of the per-lane scheduler: one id-bitmask row
  // per priority level plus an occupancy bitmap over the levels (and a
  // per-level population count when rows span several words).
  std::vector<std::uint64_t> bucket;        ///< n rows x bucket_words
  std::vector<std::uint64_t> occ;           ///< occupancy over the levels
  std::vector<std::uint32_t> bucket_count;  ///< per level: ready tasks in row
  std::size_t bucket_words = 0;

  // Lane-interleaved (lockstep) scheduler state — [x][lane] copies of the
  // per-lane structures above, so the hot n <= 64 path can advance all
  // kLanes selection chains together (see batch_kernel.inl).
  std::vector<std::uint32_t> pend_b;     ///< [t][lane] outstanding preds
  std::vector<double> pe_free_b;         ///< [pe][lane] next-free time
  std::vector<std::uint32_t> run_pos_b;  ///< [pe][lane] event fill cursor
  std::vector<std::uint64_t> bucket_b;   ///< [priority][lane] ready-id masks
  std::vector<std::uint32_t> order;      ///< [step][lane] selection sequence

  // Vectorized Wapp sweep state of the AVX2 kernel (see batch_kernel.inl):
  // power events as integer sort keys in [slot][lane] layout, sorted by a
  // fixed compare-exchange network so all lanes sweep in SIMD lockstep.
  std::vector<std::uint64_t> tkey;      ///< [slot][lane] time keys
  std::vector<std::uint64_t> dkey;      ///< [slot][lane] delta keys
  std::vector<std::uint32_t> sort_net;  ///< (i << 16 | j) compare-exchanges

  // Sorted-key selection state of the lockstep scheduler's pass A: per-lane
  // (priority, id) selection keys sorted once by a second, n-element network,
  // and the inverse task -> sorted-position map (see batch_kernel.inl).
  std::vector<std::uint32_t> sel_key;       ///< [pos][lane] keys, then task ids
  std::vector<std::uint32_t> pos_of;        ///< [task][lane] sorted position
  std::vector<std::uint32_t> sort_net_sel;  ///< n-element network

  // Per-lane accumulators / flags of the current block.
  alignas(32) double lane_tmp[kLanes];
  alignas(32) double acc_frel[kLanes];
  alignas(32) double acc_energy[kLanes];
  alignas(32) double acc_ms[kLanes];
  alignas(32) double acc_mttf[kLanes];
  double peak[kLanes];
  bool bucketable[kLanes];
  bool zero_len[kLanes];
  bool key_unsafe[kLanes];  ///< lane needs the exact (non-key) sweep path

  /// Size the arena (and the embedded genome block) for a (tasks, PEs)
  /// shape; no-op and allocation-free when the shape is unchanged.
  void bind(std::size_t num_tasks, std::size_t num_pes) {
    genomes.bind(num_tasks);
    if (mrow.size() == num_tasks * kLanes && pe_free.size() == num_pes) return;
    mrow.resize(num_tasks * kLanes);
    ext.resize(num_tasks * kLanes);
    pow.resize(num_tasks * kLanes);
    err.resize(num_tasks * kLanes);
    mttf.resize(num_tasks * kLanes);
    start.resize(num_tasks * kLanes);
    end.resize(num_tasks * kLanes);
    events.resize(2 * num_tasks * kLanes);
    events2.resize(2 * num_tasks);
    run_off.resize((num_pes + 1) * kLanes);
    run_off2.resize(num_pes + 1);
    run_pos.resize(num_pes);
    pending.resize(num_tasks);
    ready.resize(num_tasks);
    pe_free.resize(num_pes);
    aging.resize(num_pes * kLanes);
    bucket_words = (num_tasks + 63) / 64;
    bucket.resize(num_tasks * bucket_words);
    occ.resize(bucket_words);
    bucket_count.resize(num_tasks);
    pend_b.resize(num_tasks * kLanes);
    pe_free_b.resize(num_pes * kLanes);
    run_pos_b.resize(num_pes * kLanes);
    bucket_b.resize(num_tasks * kLanes);
    order.resize(num_tasks * kLanes);
    tkey.resize(2 * num_tasks * kLanes);
    dkey.resize(2 * num_tasks * kLanes);
    sel_key.resize(num_tasks * kLanes);
    pos_of.resize(num_tasks * kLanes);
    // The sorting networks only serve the lockstep path (n <= 64); for
    // larger graphs building them would burn O(n log^2 n) time/memory in
    // bind and, past 65536 elements, overflow the 16-bit pair packing.
    if (num_tasks <= 64) {
      build_merge_exchange_network(2 * num_tasks, sort_net);
      build_merge_exchange_network(num_tasks, sort_net_sel);
    } else {
      sort_net.clear();
      sort_net_sel.clear();
    }
  }
};

}  // namespace clr::sched
