#pragma once
// Fleet aggregation blocks and restartable progress (DESIGN.md §5.13).
//
// Dependency-free PODs shared between the fleet pipeline (src/fleet) and the
// checkpoint codec (src/io/checkpoint.cpp): keeping them header-only here
// lets clr_io encode/decode fleet checkpoints without linking clr_fleet.
//
// The block is the unit that makes fleet aggregation bit-identical at any
// shard/thread count AND the resume grain of a checkpoint:
//
//   - devices are partitioned into fixed blocks of `block_size` consecutive
//     device ids; the partition depends only on (devices, block_size), never
//     on shards or jobs;
//   - each block is summed sequentially in device order by exactly one
//     worker/accumulator pair, so its floating-point sums have one fixed
//     association order;
//   - every aggregate (per-shard and global) is a fold of whole BlockSums in
//     block-index order, so the final association order is also fixed.
//
// Integer counters are associative anyway; the double sums are bit-stable
// because their grouping is pinned by the block structure; max_drc is an
// order-free max. A checkpoint persists completed BlockSums verbatim, so a
// resumed run folds the exact bits an uninterrupted run would have.

#include <cstdint>
#include <vector>

namespace clr::fleet {

/// Streamed per-device outcome: the mergeable slice of rt::RuntimeStats
/// (traces are never kept at fleet scale). One record flows through the
/// SPSC channel per simulated device.
struct DeviceResult {
  std::uint64_t device = 0;  ///< fleet-wide device id (determines the block)
  std::uint64_t events = 0;
  std::uint64_t reconfigs = 0;
  std::uint64_t infeasible_events = 0;
  std::uint64_t transient_faults = 0;
  std::uint64_t recovered_transients = 0;
  std::uint64_t unrecovered_failures = 0;
  std::uint64_t permanent_faults = 0;
  std::uint64_t evacuations = 0;
  std::uint64_t safe_mode_entries = 0;
  std::uint64_t prefetch_hits = 0;
  std::uint64_t prefetch_misses = 0;
  double avg_energy = 0.0;
  double total_reconfig_cost = 0.0;
  double qos_violation_time = 0.0;
  double downtime = 0.0;
  double availability = 1.0;
  double mttr = 0.0;
  double max_drc = 0.0;
  double reconfig_stall_time = 0.0;
  double prefetch_hidden_time = 0.0;
  double service_availability = 1.0;

  bool operator==(const DeviceResult&) const = default;
};

/// Aggregates over one fixed block of consecutive devices. Also the shape of
/// every derived summary (a shard or fleet total is a block-ordered fold of
/// these). 12 counters + 9 ordered double sums + 1 max.
struct BlockSum {
  std::uint64_t devices = 0;  ///< devices folded in (= block size when done)
  std::uint64_t events = 0;
  std::uint64_t reconfigs = 0;
  std::uint64_t infeasible_events = 0;
  std::uint64_t transient_faults = 0;
  std::uint64_t recovered_transients = 0;
  std::uint64_t unrecovered_failures = 0;
  std::uint64_t permanent_faults = 0;
  std::uint64_t evacuations = 0;
  std::uint64_t safe_mode_entries = 0;
  std::uint64_t prefetch_hits = 0;
  std::uint64_t prefetch_misses = 0;
  double energy_sum = 0.0;          ///< Σ avg_energy
  double reconfig_cost_sum = 0.0;   ///< Σ total_reconfig_cost
  double violation_time_sum = 0.0;  ///< Σ qos_violation_time
  double downtime_sum = 0.0;        ///< Σ downtime
  double availability_sum = 0.0;    ///< Σ availability
  double mttr_sum = 0.0;            ///< Σ mttr
  double stall_time_sum = 0.0;      ///< Σ reconfig_stall_time
  double hidden_time_sum = 0.0;     ///< Σ prefetch_hidden_time
  double service_availability_sum = 0.0;  ///< Σ service_availability
  double max_drc = 0.0;             ///< max over devices

  bool operator==(const BlockSum&) const = default;

  /// Fold one device in (must be called in ascending device order within a
  /// block — the SPSC FIFO guarantees arrival order).
  void add(const DeviceResult& r) {
    devices += 1;
    events += r.events;
    reconfigs += r.reconfigs;
    infeasible_events += r.infeasible_events;
    transient_faults += r.transient_faults;
    recovered_transients += r.recovered_transients;
    unrecovered_failures += r.unrecovered_failures;
    permanent_faults += r.permanent_faults;
    evacuations += r.evacuations;
    safe_mode_entries += r.safe_mode_entries;
    prefetch_hits += r.prefetch_hits;
    prefetch_misses += r.prefetch_misses;
    energy_sum += r.avg_energy;
    reconfig_cost_sum += r.total_reconfig_cost;
    violation_time_sum += r.qos_violation_time;
    downtime_sum += r.downtime;
    availability_sum += r.availability;
    mttr_sum += r.mttr;
    stall_time_sum += r.reconfig_stall_time;
    hidden_time_sum += r.prefetch_hidden_time;
    service_availability_sum += r.service_availability;
    if (r.max_drc > max_drc) max_drc = r.max_drc;
  }

  /// Fold a whole later block in (must be called in ascending block-index
  /// order for the double sums to have their one canonical grouping).
  void merge(const BlockSum& b) {
    devices += b.devices;
    events += b.events;
    reconfigs += b.reconfigs;
    infeasible_events += b.infeasible_events;
    transient_faults += b.transient_faults;
    recovered_transients += b.recovered_transients;
    unrecovered_failures += b.unrecovered_failures;
    permanent_faults += b.permanent_faults;
    evacuations += b.evacuations;
    safe_mode_entries += b.safe_mode_entries;
    prefetch_hits += b.prefetch_hits;
    prefetch_misses += b.prefetch_misses;
    energy_sum += b.energy_sum;
    reconfig_cost_sum += b.reconfig_cost_sum;
    violation_time_sum += b.violation_time_sum;
    downtime_sum += b.downtime_sum;
    availability_sum += b.availability_sum;
    mttr_sum += b.mttr_sum;
    stall_time_sum += b.stall_time_sum;
    hidden_time_sum += b.hidden_time_sum;
    service_availability_sum += b.service_availability_sum;
    if (b.max_drc > max_drc) max_drc = b.max_drc;
  }
};

/// Restartable fleet state at block granularity: which blocks are fully
/// accumulated, and their sums. Blocks in flight when a run stops are simply
/// recomputed on resume — per-device seeding makes the redo bit-identical.
struct FleetProgress {
  /// Hash of every result-affecting fleet parameter (fleet::fleet_param_hash);
  /// resume refuses a mismatch. Deliberately excludes shards and jobs.
  std::uint64_t param_hash = 0;
  std::uint64_t devices = 0;
  std::uint64_t block_size = 0;
  /// One flag per block, 1 = fully accumulated. Size = ceil(devices / block_size).
  std::vector<std::uint8_t> done;
  /// One sum per block (zero-initialized where done[i] == 0).
  std::vector<BlockSum> blocks;

  std::uint64_t blocks_done() const {
    std::uint64_t n = 0;
    for (std::uint8_t d : done) n += d != 0 ? 1 : 0;
    return n;
  }
};

}  // namespace clr::fleet
