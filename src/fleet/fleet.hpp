#pragma once
// Fleet-scale device simulation service (DESIGN.md §5.13, ROADMAP item 1).
//
// Runs 10⁵–10⁶ *independent* device instances — each a rt::RuntimeSimulator
// + adaptation policy over one shared read-only DesignDb/DrcMatrix (normally
// a mapped `.clrdb` snapshot) — through a sharded dataflow pipeline:
//
//   devices → blocks → shards → workers
//
//   - the device range is partitioned into fixed BLOCKS of consecutive ids
//     (the aggregation + checkpoint grain, fleet::progress.hpp);
//   - blocks are grouped into SHARDS (contiguous, block-aligned ranges);
//   - each of J worker threads owns the shards `s ≡ w (mod J)` and simulates
//     their devices in ascending id order (QoS event generation + policy
//     decisions fused in the worker — both are per-device local);
//   - each worker streams batched DeviceResults through its own bounded
//     SPSC queue (spsc_queue.hpp) to the single accumulator (the calling
//     thread), which folds them into the per-block sums — the only stage
//     that touches shared aggregates, so the pipeline needs no locks at all.
//
// Determinism rule (absolute): every aggregate is bit-identical at any
// shards/jobs combination. Per-device SplitMix64 seeding (fleet::device_seed)
// makes each device's simulation a pure function of (fleet seed, device id);
// the block structure pins every floating-point association order (see
// progress.hpp). Proven by tests/fleet/test_fleet_determinism.cpp.
//
// Checkpoint/resume reuses PR 8's machinery: completed BlockSums persist as
// a FleetState section in a `.clrdb` checkpoint through the A/B
// io::CheckpointStore; a resumed run recomputes only unfinished blocks and
// is bit-identical to an uninterrupted one (SIGKILL-proven in
// tests/robustness/test_kill_resume.cpp).

#include <cstdint>
#include <functional>
#include <vector>

#include "common/stop.hpp"
#include "dse/design_db.hpp"
#include "experiments/flow.hpp"
#include "experiments/session.hpp"
#include "fleet/progress.hpp"
#include "runtime/drc_matrix.hpp"

namespace clr::fleet {

struct FleetConfig {
  /// Device instances to simulate (ids 0..devices-1).
  std::uint64_t devices = 100000;
  /// Contiguous block-aligned device ranges; 0 = one shard per job. Purely a
  /// partitioning knob — never affects results.
  std::size_t shards = 0;
  /// Worker threads (0 = auto via util::resolve_threads). Never affects
  /// results.
  std::size_t jobs = 0;
  /// Fleet master seed; device d simulates under device_seed(seed, d).
  std::uint64_t seed = 1;
  /// Aggregation/checkpoint grain in devices (progress.hpp). Result-affecting
  /// (it pins the floating-point fold grouping), so it is part of the param
  /// hash — unlike shards/jobs.
  std::uint64_t block_size = 1024;
  /// Device batches in flight per worker queue before backpressure.
  std::size_t queue_capacity = 64;
  /// Per-device evaluation knobs: policy kind, pRC, simulation horizon, QoS
  /// process, fault environment. Mirrors exp::evaluate_policy_with exactly —
  /// fleet device d is bit-identical to
  /// `evaluate_policy_with(db, drc, ranges, params, device_seed(seed, d))`.
  exp::RuntimeEvalParams params{};
  /// QoS-requirement box the per-device QoS processes sample from.
  dse::MetricRanges ranges{};
};

/// Mergeable aggregate over a device range: the block-ordered fold plus the
/// derived per-device means the CLI and reports print.
struct FleetSummary {
  BlockSum totals;
  double mean_energy = 0.0;            ///< totals.energy_sum / devices
  double mean_reconfig_cost = 0.0;     ///< totals.reconfig_cost_sum / devices
  double mean_violation_time = 0.0;    ///< totals.violation_time_sum / devices
  double mean_downtime = 0.0;          ///< totals.downtime_sum / devices
  double mean_availability = 1.0;      ///< totals.availability_sum / devices
  double mean_mttr = 0.0;              ///< totals.mttr_sum / devices
  double mean_stall_time = 0.0;        ///< totals.stall_time_sum / devices
  double mean_hidden_time = 0.0;       ///< totals.hidden_time_sum / devices
  double mean_service_availability = 1.0;  ///< totals.service_availability_sum / devices
};

/// One shard's aggregate (fold of its block range, in block order).
struct ShardSummary {
  std::size_t shard = 0;
  std::uint64_t first_block = 0;
  std::uint64_t num_blocks = 0;
  std::uint64_t first_device = 0;
  std::uint64_t num_devices = 0;
  BlockSum totals;
};

struct FleetControl {
  /// Cooperative stop; workers honor it at block boundaries (a started block
  /// always finishes, keeping blocks all-or-nothing).
  util::StopToken stop;
  /// Completed-block table to resume from (validated against the param hash
  /// by the session layer); nullptr = fresh run.
  const FleetProgress* resume = nullptr;
  /// Invoke on_checkpoint after every N newly completed blocks (and once at
  /// the end when anything new completed). 0 = never.
  std::uint64_t checkpoint_every = 0;
  /// Called from the accumulator thread with the current progress table.
  std::function<void(const FleetProgress&)> on_checkpoint;
  /// Called from the accumulator thread after every completed block with
  /// (blocks newly done this run, total blocks) — the budget/progress hook.
  std::function<void(std::uint64_t, std::uint64_t)> on_block;
};

struct FleetResult {
  FleetSummary summary;           ///< fold of all completed blocks
  std::vector<ShardSummary> shards;
  FleetProgress progress;         ///< final block table (checkpoint payload)
  bool complete = true;           ///< false when stopped early
  std::uint64_t devices_done = 0; ///< devices in completed blocks
  std::uint64_t blocks_done_this_run = 0;
  double wall_seconds = 0.0;      ///< this run's simulate+accumulate wall time
  double devices_per_second = 0.0;///< devices simulated this run / wall time
};

/// Seed for device `d` of a fleet seeded with `base`: SplitMix64 expansion
/// (the exp::replication_seed idiom), so consecutive ids get decorrelated
/// streams and the mapping never depends on shard/thread placement.
std::uint64_t device_seed(std::uint64_t base, std::uint64_t device);

/// FNV-1a over every result-affecting fleet parameter: devices, seed,
/// block_size, policy/simulation/QoS/fault knobs and the ranges box.
/// Deliberately excludes shards, jobs and queue_capacity — pure partitioning
/// knobs, so a checkpoint taken at --shards 16 --jobs 8 resumes fine at
/// --shards 1 --jobs 1.
std::uint64_t fleet_param_hash(const FleetConfig& config);

/// Number of aggregation blocks: ceil(devices / block_size).
std::uint64_t fleet_num_blocks(const FleetConfig& config);

/// Block range [first, first+count) owned by shard `s` of `shards` over
/// `num_blocks` blocks (balanced contiguous split; early shards get the
/// remainder). Exposed for tests.
std::pair<std::uint64_t, std::uint64_t> shard_block_range(std::uint64_t num_blocks,
                                                          std::size_t shards, std::size_t s);

/// Simulate one device exactly as the fleet pipeline does: the per-device
/// slice of exp::evaluate_policy_with against a shared QosProcess +
/// RuntimeSimulator. Exposed so tests can pin fleet-vs-reference equality
/// device by device. `mdp_table` supplies the fleet-shared offline plan for
/// PolicyKind::Mdp (nullptr rebuilds it per device — bit-identical, since the
/// offline solve is deterministic, just slower).
DeviceResult simulate_device(const dse::DesignDb& db, const rt::DrcMatrix& drc,
                             const rt::QosProcess& qos, const rt::RuntimeSimulator& sim,
                             const exp::RuntimeEvalParams& params,
                             const rel::ClrSpace* clr_space, std::uint64_t device,
                             std::uint64_t fleet_seed,
                             const rt::MdpTable* mdp_table = nullptr);

/// Run the fleet. `clr_space` gives fault injection the struck task's CLR
/// coverage (nullptr falls back to FaultParams::fallback_coverage, exactly
/// as exp::evaluate_policy_with). Throws std::invalid_argument on a config
/// the partitioning cannot honor (0 devices is fine and returns empty).
FleetResult run_fleet(const dse::DesignDb& db, const rt::DrcMatrix& drc,
                      const rel::ClrSpace* clr_space, const FleetConfig& config,
                      const FleetControl& control = {});

/// What the session did beyond the fleet result itself (mirrors
/// exp::ExploreOutcome / exp::RunnerOutcome).
struct FleetSessionOutcome {
  FleetResult result;
  bool resumed = false;
  std::uint64_t checkpoints_written = 0;
  util::StopReason stop_reason = util::StopReason::None;
};

/// Run a fleet under session control (checkpoint cadence, A/B store, resume
/// identity validation, step budget in blocks). Throws std::runtime_error
/// when resuming against a checkpoint whose param hash mismatches.
FleetSessionOutcome run_fleet_session(const dse::DesignDb& db, const rt::DrcMatrix& drc,
                                      const rel::ClrSpace* clr_space, const FleetConfig& config,
                                      const exp::SessionControl& control);

/// Fold `progress`'s completed blocks (in block order) into the summary +
/// per-shard aggregates for `shards` shards. Exposed for tests and the CLI's
/// resume-only reporting path.
FleetSummary summarize(const FleetProgress& progress);
std::vector<ShardSummary> summarize_shards(const FleetProgress& progress, std::size_t shards);

}  // namespace clr::fleet
