#include "fleet/fleet.hpp"

#include <array>
#include <atomic>
#include <chrono>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "fleet/spsc_queue.hpp"
#include "io/checkpoint.hpp"
#include "runtime/policy.hpp"
#include "runtime/qos_process.hpp"
#include "runtime/simulator.hpp"

namespace clr::fleet {

namespace {

/// Devices per SPSC record: big enough to amortize the queue handoff, small
/// enough that a full queue stays a few hundred KB per worker.
constexpr std::size_t kBatchDevices = 32;

struct DeviceBatch {
  std::uint32_t count = 0;
  std::array<DeviceResult, kBatchDevices> results;
};

void hash_bytes(std::uint64_t& h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
}

template <typename T>
void hash_value(std::uint64_t& h, T v) {
  hash_bytes(h, &v, sizeof v);
}

DeviceResult to_result(std::uint64_t device, const rt::RuntimeStats& s) {
  DeviceResult r;
  r.device = device;
  r.events = s.num_events;
  r.reconfigs = s.num_reconfigs;
  r.infeasible_events = s.num_infeasible_events;
  r.transient_faults = s.num_transient_faults;
  r.recovered_transients = s.num_recovered_transients;
  r.unrecovered_failures = s.num_unrecovered_failures;
  r.permanent_faults = s.num_permanent_faults;
  r.evacuations = s.num_evacuations;
  r.safe_mode_entries = s.num_safe_mode_entries;
  r.prefetch_hits = s.prefetch_hits;
  r.prefetch_misses = s.prefetch_misses;
  r.avg_energy = s.avg_energy;
  r.total_reconfig_cost = s.total_reconfig_cost;
  r.qos_violation_time = s.qos_violation_time;
  r.downtime = s.downtime;
  r.availability = s.availability;
  r.mttr = s.mttr;
  r.max_drc = s.max_drc;
  r.reconfig_stall_time = s.reconfig_stall_time;
  r.prefetch_hidden_time = s.prefetch_hidden_time;
  r.service_availability = s.service_availability;
  return r;
}

std::uint64_t block_device_count(const FleetConfig& config, std::uint64_t block,
                                 std::uint64_t num_blocks) {
  if (block + 1 < num_blocks) return config.block_size;
  return config.devices - block * config.block_size;  // last block may be short
}

void validate_config(const FleetConfig& config) {
  if (config.block_size == 0) {
    throw std::invalid_argument("fleet: block_size must be >= 1");
  }
  if (config.params.sim.trace_events != 0) {
    throw std::invalid_argument(
        "fleet: per-event traces are not supported at fleet scale (sim.trace_events must be 0)");
  }
}

}  // namespace

std::uint64_t device_seed(std::uint64_t base, std::uint64_t device) {
  util::SplitMix64 mix(base + 0x9e3779b97f4a7c15ULL * device);
  return mix.next();
}

std::uint64_t fleet_param_hash(const FleetConfig& config) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  hash_value<std::uint64_t>(h, config.devices);
  hash_value<std::uint64_t>(h, config.seed);
  hash_value<std::uint64_t>(h, config.block_size);
  const exp::RuntimeEvalParams& p = config.params;
  hash_value<std::uint32_t>(h, static_cast<std::uint32_t>(p.kind));
  hash_value<double>(h, p.p_rc);
  hash_value<double>(h, p.aura.gamma);
  hash_value<double>(h, p.aura.alpha);
  hash_value<double>(h, p.aura.guard);
  hash_value<double>(h, p.aura.initial_value);
  hash_value<double>(h, p.pretrain_cycles);
  hash_value<std::uint64_t>(h, p.pretrain_sweeps);
  hash_value<std::uint8_t>(h, p.pretrain ? 1 : 0);
  hash_value<double>(h, p.sim.total_cycles);
  hash_value<double>(h, p.sim.episode_cycles);
  hash_value<double>(h, p.qos.makespan_mean_frac);
  hash_value<double>(h, p.qos.makespan_sd_frac);
  hash_value<double>(h, p.qos.func_rel_mean_frac);
  hash_value<double>(h, p.qos.func_rel_sd_frac);
  hash_value<double>(h, p.qos.rho);
  hash_value<double>(h, p.qos.ar1_phi);
  hash_value<double>(h, p.qos.mean_event_gap);
  hash_value<double>(h, p.faults.transient_rate);
  hash_value<double>(h, p.faults.pe_mtbf);
  hash_value<double>(h, p.faults.recovery_latency);
  hash_value<double>(h, p.faults.reexec_energy_factor);
  hash_value<double>(h, p.faults.qos_tolerance);
  hash_value<double>(h, p.faults.fallback_coverage);
  hash_value<std::uint64_t>(h, p.fault_profiles.size());
  for (const auto& profile : p.fault_profiles) {
    hash_value<double>(h, profile.ser_scale);
    hash_value<double>(h, profile.weibull_shape);
  }
  hash_value<double>(h, config.ranges.energy_min);
  hash_value<double>(h, config.ranges.energy_max);
  hash_value<double>(h, config.ranges.makespan_min);
  hash_value<double>(h, config.ranges.makespan_max);
  hash_value<double>(h, config.ranges.func_rel_min);
  hash_value<double>(h, config.ranges.func_rel_max);
  // New-policy knobs enter the hash only when in play, keeping every
  // pre-existing fleet's hash (and its resumable checkpoints) stable.
  if (p.kind == exp::PolicyKind::Mdp) {
    hash_value<std::uint64_t>(h, p.mdp.makespan_bins);
    hash_value<std::uint64_t>(h, p.mdp.func_rel_bins);
    hash_value<double>(h, p.mdp.gamma);
    hash_value<double>(h, p.mdp.tolerance);
    hash_value<std::uint64_t>(h, p.mdp.max_sweeps);
  }
  if (p.prefetch) {
    hash_value<std::uint8_t>(h, 1);
    hash_value<std::uint64_t>(h, p.prefetch_params.min_observations);
  }
  // shards, jobs and queue_capacity deliberately excluded: partitioning and
  // flow-control knobs never affect results (the determinism rule), so a
  // checkpoint taken at any --shards/--jobs resumes at any other.
  return h;
}

std::uint64_t fleet_num_blocks(const FleetConfig& config) {
  if (config.devices == 0) return 0;
  return (config.devices + config.block_size - 1) / config.block_size;
}

std::pair<std::uint64_t, std::uint64_t> shard_block_range(std::uint64_t num_blocks,
                                                          std::size_t shards, std::size_t s) {
  if (shards == 0 || s >= shards) {
    throw std::invalid_argument("fleet: shard index " + std::to_string(s) + " out of " +
                                std::to_string(shards));
  }
  const std::uint64_t n = static_cast<std::uint64_t>(shards);
  const std::uint64_t base = num_blocks / n;
  const std::uint64_t extra = num_blocks % n;
  const std::uint64_t idx = static_cast<std::uint64_t>(s);
  const std::uint64_t first = idx * base + std::min(idx, extra);
  const std::uint64_t count = base + (idx < extra ? 1 : 0);
  return {first, count};
}

DeviceResult simulate_device(const dse::DesignDb& db, const rt::DrcMatrix& drc,
                             const rt::QosProcess& qos, const rt::RuntimeSimulator& sim,
                             const exp::RuntimeEvalParams& params,
                             const rel::ClrSpace* clr_space, std::uint64_t device,
                             std::uint64_t fleet_seed, const rt::MdpTable* mdp_table) {
  // Mirrors exp::evaluate_policy_with field by field: same SplitMix64 stream
  // discipline (pretrain, eval, then the fault seed only when faults are
  // enabled), same policy construction, same pre-training. That makes every
  // fleet device bit-identical to a standalone evaluate_policy_with call —
  // pinned by tests/fleet/test_fleet_determinism.cpp.
  util::SplitMix64 mix(device_seed(fleet_seed, device));
  util::Rng pretrain_rng(mix.next());
  util::Rng eval_rng(mix.next());

  flt::FaultScenario scenario;
  const flt::FaultScenario* active_scenario = nullptr;
  if (params.faults.enabled()) {
    params.faults.validate();
    scenario.params = params.faults;
    scenario.profiles = params.fault_profiles;
    scenario.seed = mix.next();
    scenario.clr_space = clr_space;
    active_scenario = &scenario;
  }

  // Prefetch wrapping mirrors evaluate_policy_with: selection-transparent,
  // so the wrapper only fills the stall/hidden split of the result.
  const auto run_with = [&](rt::AdaptationPolicy& policy) {
    if (params.prefetch) {
      rt::PrefetchPolicy wrapped(policy, db, drc, params.prefetch_params);
      return to_result(device, sim.run(db, wrapped, qos, eval_rng, active_scenario));
    }
    return to_result(device, sim.run(db, policy, qos, eval_rng, active_scenario));
  };

  switch (params.kind) {
    case exp::PolicyKind::Baseline: {
      rt::BaselinePolicy policy(db, drc);
      return run_with(policy);
    }
    case exp::PolicyKind::Ura: {
      rt::UraPolicy policy(db, drc, params.p_rc);
      return run_with(policy);
    }
    case exp::PolicyKind::Aura: {
      rt::AuraPolicy policy(db, drc, params.p_rc, params.aura);
      if (params.pretrain) {
        rt::pretrain_aura(policy, db, qos, params.pretrain_cycles, params.pretrain_sweeps,
                          pretrain_rng);
      }
      return run_with(policy);
    }
    case exp::PolicyKind::Mdp: {
      rt::MdpTable built;
      if (mdp_table == nullptr) {
        // Per-device rebuild: bit-identical to the fleet-shared table (the
        // offline solve is RNG-free), only slower. run_fleet always shares.
        built = rt::build_mdp_table(db, drc, qos.ranges(), params.p_rc, params.qos,
                                    params.faults, params.mdp);
        mdp_table = &built;
      }
      rt::MdpPolicy policy(db, drc, *mdp_table);
      return run_with(policy);
    }
  }
  throw std::logic_error("fleet: unknown policy kind");
}

FleetSummary summarize(const FleetProgress& progress) {
  FleetSummary s;
  for (std::size_t b = 0; b < progress.blocks.size(); ++b) {
    if (b < progress.done.size() && progress.done[b] != 0) s.totals.merge(progress.blocks[b]);
  }
  const double n = static_cast<double>(s.totals.devices);
  if (s.totals.devices > 0) {
    s.mean_energy = s.totals.energy_sum / n;
    s.mean_reconfig_cost = s.totals.reconfig_cost_sum / n;
    s.mean_violation_time = s.totals.violation_time_sum / n;
    s.mean_downtime = s.totals.downtime_sum / n;
    s.mean_availability = s.totals.availability_sum / n;
    s.mean_mttr = s.totals.mttr_sum / n;
    s.mean_stall_time = s.totals.stall_time_sum / n;
    s.mean_hidden_time = s.totals.hidden_time_sum / n;
    s.mean_service_availability = s.totals.service_availability_sum / n;
  }
  return s;
}

std::vector<ShardSummary> summarize_shards(const FleetProgress& progress, std::size_t shards) {
  std::vector<ShardSummary> out;
  if (shards == 0) return out;
  const std::uint64_t num_blocks = progress.blocks.size();
  out.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    const auto [first, count] = shard_block_range(num_blocks, shards, s);
    ShardSummary shard;
    shard.shard = s;
    shard.first_block = first;
    shard.num_blocks = count;
    shard.first_device = first * progress.block_size;
    for (std::uint64_t b = first; b < first + count; ++b) {
      const std::uint64_t block_end =
          std::min((b + 1) * progress.block_size, progress.devices);
      shard.num_devices += block_end - b * progress.block_size;
      if (progress.done[static_cast<std::size_t>(b)] != 0) {
        shard.totals.merge(progress.blocks[static_cast<std::size_t>(b)]);
      }
    }
    out.push_back(shard);
  }
  return out;
}

FleetResult run_fleet(const dse::DesignDb& db, const rt::DrcMatrix& drc,
                      const rel::ClrSpace* clr_space, const FleetConfig& config,
                      const FleetControl& control) {
  validate_config(config);
  const std::uint64_t num_blocks = fleet_num_blocks(config);
  const std::size_t jobs = util::resolve_threads(config.jobs);
  const std::size_t shards = config.shards != 0 ? config.shards : jobs;
  const std::uint64_t param_hash = fleet_param_hash(config);

  FleetResult result;
  result.progress.param_hash = param_hash;
  result.progress.devices = config.devices;
  result.progress.block_size = config.block_size;
  result.progress.done.assign(static_cast<std::size_t>(num_blocks), 0);
  result.progress.blocks.assign(static_cast<std::size_t>(num_blocks), BlockSum{});

  if (control.resume != nullptr) {
    const FleetProgress& r = *control.resume;
    if (r.param_hash != param_hash || r.devices != config.devices ||
        r.block_size != config.block_size || r.done.size() != num_blocks ||
        r.blocks.size() != num_blocks) {
      throw std::invalid_argument(
          "fleet: resume progress was recorded for a different fleet (param/shape mismatch)");
    }
    result.progress.done = r.done;
    result.progress.blocks = r.blocks;
  }

  const auto start = std::chrono::steady_clock::now();

  // One offline MDP plan for the whole fleet: the table is immutable and
  // read-shared across every worker (per-device rebuilds would be
  // bit-identical but waste the solve num_devices times).
  std::optional<rt::MdpTable> shared_mdp;
  if (config.params.kind == exp::PolicyKind::Mdp && config.devices > 0) {
    shared_mdp = rt::build_mdp_table(db, drc, config.ranges, config.params.p_rc,
                                     config.params.qos, config.params.faults,
                                     config.params.mdp);
  }
  const rt::MdpTable* shared_mdp_ptr = shared_mdp ? &*shared_mdp : nullptr;

  // One queue + completion flag per worker; the worker is the queue's only
  // producer, this (the accumulator) thread its only consumer.
  struct WorkerChannel {
    std::unique_ptr<SpscQueue<DeviceBatch>> queue;
    std::atomic<bool> finished{false};
  };
  std::vector<WorkerChannel> channels(jobs);
  for (auto& c : channels) {
    c.queue = std::make_unique<SpscQueue<DeviceBatch>>(std::max<std::size_t>(config.queue_capacity, 2));
  }

  util::StopToken stop = control.stop;
  const std::vector<std::uint8_t>& already_done = result.progress.done;

  std::vector<std::thread> workers;
  workers.reserve(jobs);
  for (std::size_t w = 0; w < jobs; ++w) {
    workers.emplace_back([&, w]() {
      // Shared per-worker evaluation plant: QosProcess and RuntimeSimulator
      // are const/stateless across run() calls (the AR(1) requirement state
      // lives inside each run), so reusing them across devices is
      // bit-identical to constructing them per device — pinned by the
      // simulator-reuse test.
      const rt::QosProcess qos(config.ranges, config.params.qos);
      const rt::RuntimeSimulator sim(config.params.sim);
      SpscQueue<DeviceBatch>& queue = *channels[w].queue;

      const auto push = [&](DeviceBatch&& batch) {
        // Backpressure: the accumulator always drains until every worker
        // finishes, so spinning here cannot deadlock.
        while (!queue.try_push(std::move(batch))) std::this_thread::yield();
      };

      for (std::size_t s = w; s < shards; s += jobs) {
        const auto [first, count] = shard_block_range(num_blocks, shards, s);
        for (std::uint64_t b = first; b < first + count; ++b) {
          if (already_done[static_cast<std::size_t>(b)] != 0) continue;  // resumed block
          // Cooperative stop at block boundaries only: a started block always
          // finishes, so blocks stay all-or-nothing units.
          if (stop.stop_requested()) goto worker_done;
          {
            const std::uint64_t block_first = b * config.block_size;
            const std::uint64_t block_count = block_device_count(config, b, num_blocks);
            DeviceBatch batch;
            for (std::uint64_t d = block_first; d < block_first + block_count; ++d) {
              batch.results[batch.count++] = simulate_device(
                  db, drc, qos, sim, config.params, clr_space, d, config.seed, shared_mdp_ptr);
              if (batch.count == kBatchDevices) {
                push(std::move(batch));
                batch = DeviceBatch{};
              }
            }
            if (batch.count > 0) push(std::move(batch));
          }
        }
      }
    worker_done:
      channels[w].finished.store(true, std::memory_order_release);
    });
  }

  // Stats-accumulation stage (this thread): fold arriving device results into
  // their block sums. Within a block, results arrive in device order (one
  // producer, FIFO channel), so each block's floating-point sums carry the
  // one canonical association order regardless of shards/jobs.
  std::vector<std::uint64_t> filled(static_cast<std::size_t>(num_blocks), 0);
  std::uint64_t devices_this_run = 0;
  std::uint64_t since_checkpoint = 0;
  DeviceBatch batch;
  for (;;) {
    bool all_finished = true;
    for (const auto& c : channels) {
      all_finished = all_finished && c.finished.load(std::memory_order_acquire);
    }
    bool any = false;
    for (auto& c : channels) {
      while (c.queue->try_pop(batch)) {
        any = true;
        for (std::uint32_t i = 0; i < batch.count; ++i) {
          const DeviceResult& r = batch.results[i];
          const auto block = static_cast<std::size_t>(r.device / config.block_size);
          result.progress.blocks[block].add(r);
          devices_this_run += 1;
          if (++filled[block] == block_device_count(config, block, num_blocks)) {
            result.progress.done[block] = 1;
            result.blocks_done_this_run += 1;
            since_checkpoint += 1;
            if (control.on_block) {
              control.on_block(result.blocks_done_this_run, num_blocks);
            }
            if (control.checkpoint_every != 0 && control.on_checkpoint &&
                since_checkpoint >= control.checkpoint_every) {
              control.on_checkpoint(result.progress);
              since_checkpoint = 0;
            }
          }
        }
      }
    }
    if (all_finished && !any) break;
    if (!any) std::this_thread::yield();
  }
  for (auto& worker : workers) worker.join();

  if (control.on_checkpoint && since_checkpoint > 0) {
    control.on_checkpoint(result.progress);
  }

  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

  result.summary = summarize(result.progress);
  result.shards = summarize_shards(result.progress, shards);
  result.devices_done = result.summary.totals.devices;
  result.complete = result.progress.blocks_done() == num_blocks;
  if (result.wall_seconds > 0.0) {
    result.devices_per_second = static_cast<double>(devices_this_run) / result.wall_seconds;
  }
  return result;
}

FleetSessionOutcome run_fleet_session(const dse::DesignDb& db, const rt::DrcMatrix& drc,
                                      const rel::ClrSpace* clr_space, const FleetConfig& config,
                                      const exp::SessionControl& control) {
  if (control.checkpoint_every == 0) {
    throw std::invalid_argument("fleet session: checkpoint_every must be >= 1");
  }
  if (control.resume && control.checkpoint_path.empty()) {
    throw std::invalid_argument("fleet session: resume requires a checkpoint path");
  }
  const std::uint64_t param_hash = fleet_param_hash(config);

  // The session's own stop source merges every stop signal (the
  // exp::run_*_session discipline): the external token is forwarded at each
  // block boundary, the step budget (in blocks) arms it directly.
  util::StopSource session_stop;
  util::RunBudget budget(session_stop, control.step_budget);

  std::optional<io::CheckpointStore> store;
  if (!control.checkpoint_path.empty()) store.emplace(control.checkpoint_path);

  FleetSessionOutcome out;
  std::optional<FleetProgress> restored;
  if (control.resume && store) {
    if (auto snapshot = store->load_newest()) {
      io::FleetCheckpoint c = io::decode_fleet_checkpoint(snapshot->view());
      if (c.param_hash != param_hash) {
        throw std::runtime_error(
            "fleet resume: the checkpoint was taken under different parameters (hash " +
            std::to_string(c.param_hash) + ", this run computes " + std::to_string(param_hash) +
            ")");
      }
      restored = std::move(c.progress);
      out.resumed = true;
    }
    // No loadable checkpoint: start fresh, so the first run and every
    // resumed run share one command line.
  }

  FleetControl fleet_control;
  fleet_control.stop = session_stop.token();
  fleet_control.resume = restored ? &*restored : nullptr;
  fleet_control.on_block = [&](std::uint64_t, std::uint64_t) {
    budget.step();
    if (control.stop.stop_requested()) session_stop.request_stop(control.stop.reason());
  };
  if (store) {
    fleet_control.checkpoint_every = control.checkpoint_every;
    fleet_control.on_checkpoint = [&](const FleetProgress& progress) {
      io::FleetCheckpoint c;
      c.sequence = store->next_sequence();
      c.param_hash = param_hash;
      c.progress = progress;
      store->save(io::serialize_fleet_checkpoint(c));
      out.checkpoints_written += 1;
    };
  }

  out.result = run_fleet(db, drc, clr_space, config, fleet_control);
  out.stop_reason = session_stop.reason();
  return out;
}

}  // namespace clr::fleet
