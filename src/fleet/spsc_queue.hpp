#pragma once
// Bounded lock-free single-producer/single-consumer ring (DESIGN.md §5.13).
//
// The fleet pipeline's only inter-thread channel: each simulation worker is
// the sole producer of its own queue, the accumulator thread is the sole
// consumer of all of them. Under that 1:1 discipline a ring buffer needs no
// locks and no CAS loops — the producer owns the tail index, the consumer
// owns the head index, and a release store on the writer side paired with an
// acquire load on the reader side is the entire synchronization protocol.
// FIFO order is structural (indices only ever advance by one), which is what
// lets the accumulator fold device results in device order and keep the
// fleet's floating-point aggregates bit-identical at any shard/thread count.
//
// Contract (pinned by tests/fleet/test_spsc_queue.cpp, run under TSan):
//   - strict FIFO: items pop in push order;
//   - no loss, no duplication: every accepted push pops exactly once;
//   - bounded: try_push fails (returns false) once `capacity()` items are
//     in flight — backpressure, never silent dropping or blocking;
//   - try_pop on an empty queue returns false and touches nothing.
//
// Indices are monotonically increasing uint64s masked on slot access, so the
// full/empty distinction needs no wasted slot and index wraparound is a
// non-issue (2^64 pushes outlives any run).

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

namespace clr::fleet {

/// Cache-line size used to pad the producer- and consumer-owned index pairs
/// onto distinct lines (avoids false sharing between the two threads).
inline constexpr std::size_t kCacheLine = 64;

template <typename T>
class SpscQueue {
 public:
  /// `capacity` is rounded up to the next power of two (minimum 2) so slot
  /// selection is a mask, not a modulo.
  explicit SpscQueue(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) {
      if (cap > (std::size_t{1} << 62)) throw std::invalid_argument("SpscQueue: capacity overflow");
      cap <<= 1;
    }
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  std::size_t capacity() const { return mask_ + 1; }

  /// Producer side only. False = full (caller decides how to back off).
  bool try_push(T&& value) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - cached_head_ >= capacity()) {
      // Possibly full; refresh the consumer's published position once before
      // reporting backpressure.
      cached_head_ = head_.load(std::memory_order_acquire);
      if (tail - cached_head_ >= capacity()) return false;
    }
    slots_[static_cast<std::size_t>(tail) & mask_] = std::move(value);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side only. False = empty; `out` is untouched.
  bool try_pop(T& out) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == cached_tail_) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (head == cached_tail_) return false;
    }
    out = std::move(slots_[static_cast<std::size_t>(head) & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer-side size estimate (exact when called by the consumer between
  /// its own pops; the producer may have pushed more since).
  std::size_t approx_size() const {
    return static_cast<std::size_t>(tail_.load(std::memory_order_acquire) -
                                    head_.load(std::memory_order_acquire));
  }

 private:
  std::vector<T> slots_;
  std::size_t mask_ = 0;
  /// Consumer-owned line: its own head plus a cached view of the tail.
  alignas(kCacheLine) std::atomic<std::uint64_t> head_{0};
  std::uint64_t cached_tail_ = 0;
  /// Producer-owned line: its own tail plus a cached view of the head.
  alignas(kCacheLine) std::atomic<std::uint64_t> tail_{0};
  std::uint64_t cached_head_ = 0;
};

}  // namespace clr::fleet
