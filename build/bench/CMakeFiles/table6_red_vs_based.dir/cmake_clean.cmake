file(REMOVE_RECURSE
  "CMakeFiles/table6_red_vs_based.dir/table6_red_vs_based.cpp.o"
  "CMakeFiles/table6_red_vs_based.dir/table6_red_vs_based.cpp.o.d"
  "table6_red_vs_based"
  "table6_red_vs_based.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_red_vs_based.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
