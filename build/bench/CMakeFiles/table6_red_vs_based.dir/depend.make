# Empty dependencies file for table6_red_vs_based.
# This may be replaced when dependencies are built.
