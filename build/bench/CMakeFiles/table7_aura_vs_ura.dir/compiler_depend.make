# Empty compiler generated dependencies file for table7_aura_vs_ura.
# This may be replaced when dependencies are built.
