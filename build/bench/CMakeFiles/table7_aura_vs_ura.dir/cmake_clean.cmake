file(REMOVE_RECURSE
  "CMakeFiles/table7_aura_vs_ura.dir/table7_aura_vs_ura.cpp.o"
  "CMakeFiles/table7_aura_vs_ura.dir/table7_aura_vs_ura.cpp.o.d"
  "table7_aura_vs_ura"
  "table7_aura_vs_ura.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_aura_vs_ura.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
