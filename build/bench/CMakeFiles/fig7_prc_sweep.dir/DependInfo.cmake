
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig7_prc_sweep.cpp" "bench/CMakeFiles/fig7_prc_sweep.dir/fig7_prc_sweep.cpp.o" "gcc" "bench/CMakeFiles/fig7_prc_sweep.dir/fig7_prc_sweep.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/experiments/CMakeFiles/clr_experiments.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/clr_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/dse/CMakeFiles/clr_dse.dir/DependInfo.cmake"
  "/root/repo/build/src/reconfig/CMakeFiles/clr_reconfig.dir/DependInfo.cmake"
  "/root/repo/build/src/schedule/CMakeFiles/clr_schedule.dir/DependInfo.cmake"
  "/root/repo/build/src/reliability/CMakeFiles/clr_reliability.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/clr_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/taskgraph/CMakeFiles/clr_taskgraph.dir/DependInfo.cmake"
  "/root/repo/build/src/moea/CMakeFiles/clr_moea.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/clr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
