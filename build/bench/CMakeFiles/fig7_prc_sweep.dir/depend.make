# Empty dependencies file for fig7_prc_sweep.
# This may be replaced when dependencies are built.
