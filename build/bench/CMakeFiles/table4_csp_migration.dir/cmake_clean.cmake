file(REMOVE_RECURSE
  "CMakeFiles/table4_csp_migration.dir/table4_csp_migration.cpp.o"
  "CMakeFiles/table4_csp_migration.dir/table4_csp_migration.cpp.o.d"
  "table4_csp_migration"
  "table4_csp_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_csp_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
