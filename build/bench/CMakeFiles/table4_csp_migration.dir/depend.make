# Empty dependencies file for table4_csp_migration.
# This may be replaced when dependencies are built.
