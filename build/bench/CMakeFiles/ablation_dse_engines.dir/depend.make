# Empty dependencies file for ablation_dse_engines.
# This may be replaced when dependencies are built.
