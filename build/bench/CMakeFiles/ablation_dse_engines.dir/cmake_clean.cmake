file(REMOVE_RECURSE
  "CMakeFiles/ablation_dse_engines.dir/ablation_dse_engines.cpp.o"
  "CMakeFiles/ablation_dse_engines.dir/ablation_dse_engines.cpp.o.d"
  "ablation_dse_engines"
  "ablation_dse_engines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dse_engines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
