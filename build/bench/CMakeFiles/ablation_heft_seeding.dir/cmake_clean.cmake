file(REMOVE_RECURSE
  "CMakeFiles/ablation_heft_seeding.dir/ablation_heft_seeding.cpp.o"
  "CMakeFiles/ablation_heft_seeding.dir/ablation_heft_seeding.cpp.o.d"
  "ablation_heft_seeding"
  "ablation_heft_seeding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_heft_seeding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
