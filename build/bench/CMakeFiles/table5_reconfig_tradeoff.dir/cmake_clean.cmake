file(REMOVE_RECURSE
  "CMakeFiles/table5_reconfig_tradeoff.dir/table5_reconfig_tradeoff.cpp.o"
  "CMakeFiles/table5_reconfig_tradeoff.dir/table5_reconfig_tradeoff.cpp.o.d"
  "table5_reconfig_tradeoff"
  "table5_reconfig_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_reconfig_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
