# Empty compiler generated dependencies file for fig5_pareto_points.
# This may be replaced when dependencies are built.
