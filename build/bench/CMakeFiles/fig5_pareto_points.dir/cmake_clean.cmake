file(REMOVE_RECURSE
  "CMakeFiles/fig5_pareto_points.dir/fig5_pareto_points.cpp.o"
  "CMakeFiles/fig5_pareto_points.dir/fig5_pareto_points.cpp.o.d"
  "fig5_pareto_points"
  "fig5_pareto_points.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_pareto_points.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
