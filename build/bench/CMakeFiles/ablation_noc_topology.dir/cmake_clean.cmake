file(REMOVE_RECURSE
  "CMakeFiles/ablation_noc_topology.dir/ablation_noc_topology.cpp.o"
  "CMakeFiles/ablation_noc_topology.dir/ablation_noc_topology.cpp.o.d"
  "ablation_noc_topology"
  "ablation_noc_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_noc_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
