file(REMOVE_RECURSE
  "CMakeFiles/ablation_clr_layers.dir/ablation_clr_layers.cpp.o"
  "CMakeFiles/ablation_clr_layers.dir/ablation_clr_layers.cpp.o.d"
  "ablation_clr_layers"
  "ablation_clr_layers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_clr_layers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
