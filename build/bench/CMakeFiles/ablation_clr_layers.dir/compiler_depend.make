# Empty compiler generated dependencies file for ablation_clr_layers.
# This may be replaced when dependencies are built.
