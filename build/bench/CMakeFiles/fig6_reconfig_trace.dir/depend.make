# Empty dependencies file for fig6_reconfig_trace.
# This may be replaced when dependencies are built.
