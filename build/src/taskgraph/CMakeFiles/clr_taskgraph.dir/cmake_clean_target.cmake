file(REMOVE_RECURSE
  "libclr_taskgraph.a"
)
