file(REMOVE_RECURSE
  "CMakeFiles/clr_taskgraph.dir/generator.cpp.o"
  "CMakeFiles/clr_taskgraph.dir/generator.cpp.o.d"
  "CMakeFiles/clr_taskgraph.dir/graph.cpp.o"
  "CMakeFiles/clr_taskgraph.dir/graph.cpp.o.d"
  "libclr_taskgraph.a"
  "libclr_taskgraph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clr_taskgraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
