# Empty compiler generated dependencies file for clr_taskgraph.
# This may be replaced when dependencies are built.
