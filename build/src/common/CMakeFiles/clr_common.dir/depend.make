# Empty dependencies file for clr_common.
# This may be replaced when dependencies are built.
