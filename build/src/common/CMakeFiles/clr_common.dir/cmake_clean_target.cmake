file(REMOVE_RECURSE
  "libclr_common.a"
)
