file(REMOVE_RECURSE
  "CMakeFiles/clr_common.dir/log.cpp.o"
  "CMakeFiles/clr_common.dir/log.cpp.o.d"
  "CMakeFiles/clr_common.dir/stats.cpp.o"
  "CMakeFiles/clr_common.dir/stats.cpp.o.d"
  "CMakeFiles/clr_common.dir/table.cpp.o"
  "CMakeFiles/clr_common.dir/table.cpp.o.d"
  "libclr_common.a"
  "libclr_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clr_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
