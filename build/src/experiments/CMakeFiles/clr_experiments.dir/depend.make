# Empty dependencies file for clr_experiments.
# This may be replaced when dependencies are built.
