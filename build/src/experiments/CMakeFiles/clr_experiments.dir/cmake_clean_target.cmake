file(REMOVE_RECURSE
  "libclr_experiments.a"
)
