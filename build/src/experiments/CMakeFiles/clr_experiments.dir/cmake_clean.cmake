file(REMOVE_RECURSE
  "CMakeFiles/clr_experiments.dir/app.cpp.o"
  "CMakeFiles/clr_experiments.dir/app.cpp.o.d"
  "CMakeFiles/clr_experiments.dir/flow.cpp.o"
  "CMakeFiles/clr_experiments.dir/flow.cpp.o.d"
  "libclr_experiments.a"
  "libclr_experiments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clr_experiments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
