# Empty compiler generated dependencies file for clr_sim.
# This may be replaced when dependencies are built.
