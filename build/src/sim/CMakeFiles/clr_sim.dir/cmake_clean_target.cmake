file(REMOVE_RECURSE
  "libclr_sim.a"
)
