file(REMOVE_RECURSE
  "CMakeFiles/clr_sim.dir/des.cpp.o"
  "CMakeFiles/clr_sim.dir/des.cpp.o.d"
  "CMakeFiles/clr_sim.dir/fault_injection.cpp.o"
  "CMakeFiles/clr_sim.dir/fault_injection.cpp.o.d"
  "libclr_sim.a"
  "libclr_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clr_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
