file(REMOVE_RECURSE
  "CMakeFiles/clr_platform.dir/platform.cpp.o"
  "CMakeFiles/clr_platform.dir/platform.cpp.o.d"
  "libclr_platform.a"
  "libclr_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clr_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
