file(REMOVE_RECURSE
  "libclr_platform.a"
)
