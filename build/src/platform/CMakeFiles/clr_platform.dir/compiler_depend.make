# Empty compiler generated dependencies file for clr_platform.
# This may be replaced when dependencies are built.
