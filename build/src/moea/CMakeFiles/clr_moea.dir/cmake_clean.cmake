file(REMOVE_RECURSE
  "CMakeFiles/clr_moea.dir/archive.cpp.o"
  "CMakeFiles/clr_moea.dir/archive.cpp.o.d"
  "CMakeFiles/clr_moea.dir/hvga.cpp.o"
  "CMakeFiles/clr_moea.dir/hvga.cpp.o.d"
  "CMakeFiles/clr_moea.dir/hypervolume.cpp.o"
  "CMakeFiles/clr_moea.dir/hypervolume.cpp.o.d"
  "CMakeFiles/clr_moea.dir/individual.cpp.o"
  "CMakeFiles/clr_moea.dir/individual.cpp.o.d"
  "CMakeFiles/clr_moea.dir/nsga2.cpp.o"
  "CMakeFiles/clr_moea.dir/nsga2.cpp.o.d"
  "CMakeFiles/clr_moea.dir/operators.cpp.o"
  "CMakeFiles/clr_moea.dir/operators.cpp.o.d"
  "CMakeFiles/clr_moea.dir/problem.cpp.o"
  "CMakeFiles/clr_moea.dir/problem.cpp.o.d"
  "libclr_moea.a"
  "libclr_moea.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clr_moea.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
