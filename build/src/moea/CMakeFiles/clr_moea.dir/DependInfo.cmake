
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/moea/archive.cpp" "src/moea/CMakeFiles/clr_moea.dir/archive.cpp.o" "gcc" "src/moea/CMakeFiles/clr_moea.dir/archive.cpp.o.d"
  "/root/repo/src/moea/hvga.cpp" "src/moea/CMakeFiles/clr_moea.dir/hvga.cpp.o" "gcc" "src/moea/CMakeFiles/clr_moea.dir/hvga.cpp.o.d"
  "/root/repo/src/moea/hypervolume.cpp" "src/moea/CMakeFiles/clr_moea.dir/hypervolume.cpp.o" "gcc" "src/moea/CMakeFiles/clr_moea.dir/hypervolume.cpp.o.d"
  "/root/repo/src/moea/individual.cpp" "src/moea/CMakeFiles/clr_moea.dir/individual.cpp.o" "gcc" "src/moea/CMakeFiles/clr_moea.dir/individual.cpp.o.d"
  "/root/repo/src/moea/nsga2.cpp" "src/moea/CMakeFiles/clr_moea.dir/nsga2.cpp.o" "gcc" "src/moea/CMakeFiles/clr_moea.dir/nsga2.cpp.o.d"
  "/root/repo/src/moea/operators.cpp" "src/moea/CMakeFiles/clr_moea.dir/operators.cpp.o" "gcc" "src/moea/CMakeFiles/clr_moea.dir/operators.cpp.o.d"
  "/root/repo/src/moea/problem.cpp" "src/moea/CMakeFiles/clr_moea.dir/problem.cpp.o" "gcc" "src/moea/CMakeFiles/clr_moea.dir/problem.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/clr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
