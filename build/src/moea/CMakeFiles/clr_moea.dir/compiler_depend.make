# Empty compiler generated dependencies file for clr_moea.
# This may be replaced when dependencies are built.
