file(REMOVE_RECURSE
  "libclr_moea.a"
)
