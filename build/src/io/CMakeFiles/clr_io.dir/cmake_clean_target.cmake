file(REMOVE_RECURSE
  "libclr_io.a"
)
