file(REMOVE_RECURSE
  "CMakeFiles/clr_io.dir/json.cpp.o"
  "CMakeFiles/clr_io.dir/json.cpp.o.d"
  "CMakeFiles/clr_io.dir/serialize.cpp.o"
  "CMakeFiles/clr_io.dir/serialize.cpp.o.d"
  "libclr_io.a"
  "libclr_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clr_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
