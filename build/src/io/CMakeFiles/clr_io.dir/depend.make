# Empty dependencies file for clr_io.
# This may be replaced when dependencies are built.
