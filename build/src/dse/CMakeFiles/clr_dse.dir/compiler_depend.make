# Empty compiler generated dependencies file for clr_dse.
# This may be replaced when dependencies are built.
