file(REMOVE_RECURSE
  "CMakeFiles/clr_dse.dir/design_db.cpp.o"
  "CMakeFiles/clr_dse.dir/design_db.cpp.o.d"
  "CMakeFiles/clr_dse.dir/design_time.cpp.o"
  "CMakeFiles/clr_dse.dir/design_time.cpp.o.d"
  "CMakeFiles/clr_dse.dir/mapping_problem.cpp.o"
  "CMakeFiles/clr_dse.dir/mapping_problem.cpp.o.d"
  "libclr_dse.a"
  "libclr_dse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clr_dse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
