file(REMOVE_RECURSE
  "libclr_dse.a"
)
