
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/contextual_policy.cpp" "src/runtime/CMakeFiles/clr_runtime.dir/contextual_policy.cpp.o" "gcc" "src/runtime/CMakeFiles/clr_runtime.dir/contextual_policy.cpp.o.d"
  "/root/repo/src/runtime/drc_matrix.cpp" "src/runtime/CMakeFiles/clr_runtime.dir/drc_matrix.cpp.o" "gcc" "src/runtime/CMakeFiles/clr_runtime.dir/drc_matrix.cpp.o.d"
  "/root/repo/src/runtime/policy.cpp" "src/runtime/CMakeFiles/clr_runtime.dir/policy.cpp.o" "gcc" "src/runtime/CMakeFiles/clr_runtime.dir/policy.cpp.o.d"
  "/root/repo/src/runtime/qos_process.cpp" "src/runtime/CMakeFiles/clr_runtime.dir/qos_process.cpp.o" "gcc" "src/runtime/CMakeFiles/clr_runtime.dir/qos_process.cpp.o.d"
  "/root/repo/src/runtime/simulator.cpp" "src/runtime/CMakeFiles/clr_runtime.dir/simulator.cpp.o" "gcc" "src/runtime/CMakeFiles/clr_runtime.dir/simulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/clr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dse/CMakeFiles/clr_dse.dir/DependInfo.cmake"
  "/root/repo/build/src/reconfig/CMakeFiles/clr_reconfig.dir/DependInfo.cmake"
  "/root/repo/build/src/moea/CMakeFiles/clr_moea.dir/DependInfo.cmake"
  "/root/repo/build/src/schedule/CMakeFiles/clr_schedule.dir/DependInfo.cmake"
  "/root/repo/build/src/reliability/CMakeFiles/clr_reliability.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/clr_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/taskgraph/CMakeFiles/clr_taskgraph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
