file(REMOVE_RECURSE
  "CMakeFiles/clr_runtime.dir/contextual_policy.cpp.o"
  "CMakeFiles/clr_runtime.dir/contextual_policy.cpp.o.d"
  "CMakeFiles/clr_runtime.dir/drc_matrix.cpp.o"
  "CMakeFiles/clr_runtime.dir/drc_matrix.cpp.o.d"
  "CMakeFiles/clr_runtime.dir/policy.cpp.o"
  "CMakeFiles/clr_runtime.dir/policy.cpp.o.d"
  "CMakeFiles/clr_runtime.dir/qos_process.cpp.o"
  "CMakeFiles/clr_runtime.dir/qos_process.cpp.o.d"
  "CMakeFiles/clr_runtime.dir/simulator.cpp.o"
  "CMakeFiles/clr_runtime.dir/simulator.cpp.o.d"
  "libclr_runtime.a"
  "libclr_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clr_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
