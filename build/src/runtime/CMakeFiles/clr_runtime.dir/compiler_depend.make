# Empty compiler generated dependencies file for clr_runtime.
# This may be replaced when dependencies are built.
