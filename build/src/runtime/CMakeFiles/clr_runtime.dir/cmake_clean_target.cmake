file(REMOVE_RECURSE
  "libclr_runtime.a"
)
