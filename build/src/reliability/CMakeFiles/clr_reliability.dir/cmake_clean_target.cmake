file(REMOVE_RECURSE
  "libclr_reliability.a"
)
