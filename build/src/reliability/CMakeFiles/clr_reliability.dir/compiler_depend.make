# Empty compiler generated dependencies file for clr_reliability.
# This may be replaced when dependencies are built.
