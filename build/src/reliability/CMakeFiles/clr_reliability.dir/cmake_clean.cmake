file(REMOVE_RECURSE
  "CMakeFiles/clr_reliability.dir/clr_config.cpp.o"
  "CMakeFiles/clr_reliability.dir/clr_config.cpp.o.d"
  "CMakeFiles/clr_reliability.dir/implementation.cpp.o"
  "CMakeFiles/clr_reliability.dir/implementation.cpp.o.d"
  "CMakeFiles/clr_reliability.dir/metrics.cpp.o"
  "CMakeFiles/clr_reliability.dir/metrics.cpp.o.d"
  "CMakeFiles/clr_reliability.dir/techniques.cpp.o"
  "CMakeFiles/clr_reliability.dir/techniques.cpp.o.d"
  "libclr_reliability.a"
  "libclr_reliability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clr_reliability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
