
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/reliability/clr_config.cpp" "src/reliability/CMakeFiles/clr_reliability.dir/clr_config.cpp.o" "gcc" "src/reliability/CMakeFiles/clr_reliability.dir/clr_config.cpp.o.d"
  "/root/repo/src/reliability/implementation.cpp" "src/reliability/CMakeFiles/clr_reliability.dir/implementation.cpp.o" "gcc" "src/reliability/CMakeFiles/clr_reliability.dir/implementation.cpp.o.d"
  "/root/repo/src/reliability/metrics.cpp" "src/reliability/CMakeFiles/clr_reliability.dir/metrics.cpp.o" "gcc" "src/reliability/CMakeFiles/clr_reliability.dir/metrics.cpp.o.d"
  "/root/repo/src/reliability/techniques.cpp" "src/reliability/CMakeFiles/clr_reliability.dir/techniques.cpp.o" "gcc" "src/reliability/CMakeFiles/clr_reliability.dir/techniques.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/clr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/clr_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/taskgraph/CMakeFiles/clr_taskgraph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
