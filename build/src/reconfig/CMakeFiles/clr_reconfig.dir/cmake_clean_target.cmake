file(REMOVE_RECURSE
  "libclr_reconfig.a"
)
