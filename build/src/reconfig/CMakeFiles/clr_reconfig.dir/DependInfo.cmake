
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/reconfig/reconfig.cpp" "src/reconfig/CMakeFiles/clr_reconfig.dir/reconfig.cpp.o" "gcc" "src/reconfig/CMakeFiles/clr_reconfig.dir/reconfig.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/clr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/clr_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/reliability/CMakeFiles/clr_reliability.dir/DependInfo.cmake"
  "/root/repo/build/src/schedule/CMakeFiles/clr_schedule.dir/DependInfo.cmake"
  "/root/repo/build/src/taskgraph/CMakeFiles/clr_taskgraph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
