file(REMOVE_RECURSE
  "CMakeFiles/clr_reconfig.dir/reconfig.cpp.o"
  "CMakeFiles/clr_reconfig.dir/reconfig.cpp.o.d"
  "libclr_reconfig.a"
  "libclr_reconfig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clr_reconfig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
