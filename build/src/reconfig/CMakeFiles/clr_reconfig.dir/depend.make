# Empty dependencies file for clr_reconfig.
# This may be replaced when dependencies are built.
