# Empty dependencies file for clr_schedule.
# This may be replaced when dependencies are built.
