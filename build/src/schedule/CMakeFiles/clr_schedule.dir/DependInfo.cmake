
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/schedule/dot.cpp" "src/schedule/CMakeFiles/clr_schedule.dir/dot.cpp.o" "gcc" "src/schedule/CMakeFiles/clr_schedule.dir/dot.cpp.o.d"
  "/root/repo/src/schedule/gantt.cpp" "src/schedule/CMakeFiles/clr_schedule.dir/gantt.cpp.o" "gcc" "src/schedule/CMakeFiles/clr_schedule.dir/gantt.cpp.o.d"
  "/root/repo/src/schedule/heft.cpp" "src/schedule/CMakeFiles/clr_schedule.dir/heft.cpp.o" "gcc" "src/schedule/CMakeFiles/clr_schedule.dir/heft.cpp.o.d"
  "/root/repo/src/schedule/scheduler.cpp" "src/schedule/CMakeFiles/clr_schedule.dir/scheduler.cpp.o" "gcc" "src/schedule/CMakeFiles/clr_schedule.dir/scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/clr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/clr_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/taskgraph/CMakeFiles/clr_taskgraph.dir/DependInfo.cmake"
  "/root/repo/build/src/reliability/CMakeFiles/clr_reliability.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
