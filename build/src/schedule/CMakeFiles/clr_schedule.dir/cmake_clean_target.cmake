file(REMOVE_RECURSE
  "libclr_schedule.a"
)
