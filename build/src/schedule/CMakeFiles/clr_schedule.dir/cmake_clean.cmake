file(REMOVE_RECURSE
  "CMakeFiles/clr_schedule.dir/dot.cpp.o"
  "CMakeFiles/clr_schedule.dir/dot.cpp.o.d"
  "CMakeFiles/clr_schedule.dir/gantt.cpp.o"
  "CMakeFiles/clr_schedule.dir/gantt.cpp.o.d"
  "CMakeFiles/clr_schedule.dir/heft.cpp.o"
  "CMakeFiles/clr_schedule.dir/heft.cpp.o.d"
  "CMakeFiles/clr_schedule.dir/scheduler.cpp.o"
  "CMakeFiles/clr_schedule.dir/scheduler.cpp.o.d"
  "libclr_schedule.a"
  "libclr_schedule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clr_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
