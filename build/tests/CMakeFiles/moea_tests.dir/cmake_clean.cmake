file(REMOVE_RECURSE
  "CMakeFiles/moea_tests.dir/moea/test_archive.cpp.o"
  "CMakeFiles/moea_tests.dir/moea/test_archive.cpp.o.d"
  "CMakeFiles/moea_tests.dir/moea/test_hvga.cpp.o"
  "CMakeFiles/moea_tests.dir/moea/test_hvga.cpp.o.d"
  "CMakeFiles/moea_tests.dir/moea/test_hypervolume.cpp.o"
  "CMakeFiles/moea_tests.dir/moea/test_hypervolume.cpp.o.d"
  "CMakeFiles/moea_tests.dir/moea/test_individual.cpp.o"
  "CMakeFiles/moea_tests.dir/moea/test_individual.cpp.o.d"
  "CMakeFiles/moea_tests.dir/moea/test_nsga2.cpp.o"
  "CMakeFiles/moea_tests.dir/moea/test_nsga2.cpp.o.d"
  "CMakeFiles/moea_tests.dir/moea/test_operators.cpp.o"
  "CMakeFiles/moea_tests.dir/moea/test_operators.cpp.o.d"
  "moea_tests"
  "moea_tests.pdb"
  "moea_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/moea_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
