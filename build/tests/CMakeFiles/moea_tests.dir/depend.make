# Empty dependencies file for moea_tests.
# This may be replaced when dependencies are built.
