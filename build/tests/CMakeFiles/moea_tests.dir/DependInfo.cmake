
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/moea/test_archive.cpp" "tests/CMakeFiles/moea_tests.dir/moea/test_archive.cpp.o" "gcc" "tests/CMakeFiles/moea_tests.dir/moea/test_archive.cpp.o.d"
  "/root/repo/tests/moea/test_hvga.cpp" "tests/CMakeFiles/moea_tests.dir/moea/test_hvga.cpp.o" "gcc" "tests/CMakeFiles/moea_tests.dir/moea/test_hvga.cpp.o.d"
  "/root/repo/tests/moea/test_hypervolume.cpp" "tests/CMakeFiles/moea_tests.dir/moea/test_hypervolume.cpp.o" "gcc" "tests/CMakeFiles/moea_tests.dir/moea/test_hypervolume.cpp.o.d"
  "/root/repo/tests/moea/test_individual.cpp" "tests/CMakeFiles/moea_tests.dir/moea/test_individual.cpp.o" "gcc" "tests/CMakeFiles/moea_tests.dir/moea/test_individual.cpp.o.d"
  "/root/repo/tests/moea/test_nsga2.cpp" "tests/CMakeFiles/moea_tests.dir/moea/test_nsga2.cpp.o" "gcc" "tests/CMakeFiles/moea_tests.dir/moea/test_nsga2.cpp.o.d"
  "/root/repo/tests/moea/test_operators.cpp" "tests/CMakeFiles/moea_tests.dir/moea/test_operators.cpp.o" "gcc" "tests/CMakeFiles/moea_tests.dir/moea/test_operators.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/moea/CMakeFiles/clr_moea.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/clr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
