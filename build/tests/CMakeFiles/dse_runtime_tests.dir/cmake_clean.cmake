file(REMOVE_RECURSE
  "CMakeFiles/dse_runtime_tests.dir/dse/test_design_db.cpp.o"
  "CMakeFiles/dse_runtime_tests.dir/dse/test_design_db.cpp.o.d"
  "CMakeFiles/dse_runtime_tests.dir/dse/test_design_time.cpp.o"
  "CMakeFiles/dse_runtime_tests.dir/dse/test_design_time.cpp.o.d"
  "CMakeFiles/dse_runtime_tests.dir/dse/test_extensions.cpp.o"
  "CMakeFiles/dse_runtime_tests.dir/dse/test_extensions.cpp.o.d"
  "CMakeFiles/dse_runtime_tests.dir/dse/test_mapping_problem.cpp.o"
  "CMakeFiles/dse_runtime_tests.dir/dse/test_mapping_problem.cpp.o.d"
  "CMakeFiles/dse_runtime_tests.dir/experiments/test_app.cpp.o"
  "CMakeFiles/dse_runtime_tests.dir/experiments/test_app.cpp.o.d"
  "CMakeFiles/dse_runtime_tests.dir/runtime/test_contextual_policy.cpp.o"
  "CMakeFiles/dse_runtime_tests.dir/runtime/test_contextual_policy.cpp.o.d"
  "CMakeFiles/dse_runtime_tests.dir/runtime/test_extensions.cpp.o"
  "CMakeFiles/dse_runtime_tests.dir/runtime/test_extensions.cpp.o.d"
  "CMakeFiles/dse_runtime_tests.dir/runtime/test_policy.cpp.o"
  "CMakeFiles/dse_runtime_tests.dir/runtime/test_policy.cpp.o.d"
  "CMakeFiles/dse_runtime_tests.dir/runtime/test_qos_process.cpp.o"
  "CMakeFiles/dse_runtime_tests.dir/runtime/test_qos_process.cpp.o.d"
  "CMakeFiles/dse_runtime_tests.dir/runtime/test_simulator.cpp.o"
  "CMakeFiles/dse_runtime_tests.dir/runtime/test_simulator.cpp.o.d"
  "CMakeFiles/dse_runtime_tests.dir/schedule/test_gantt.cpp.o"
  "CMakeFiles/dse_runtime_tests.dir/schedule/test_gantt.cpp.o.d"
  "CMakeFiles/dse_runtime_tests.dir/schedule/test_heft.cpp.o"
  "CMakeFiles/dse_runtime_tests.dir/schedule/test_heft.cpp.o.d"
  "dse_runtime_tests"
  "dse_runtime_tests.pdb"
  "dse_runtime_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dse_runtime_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
