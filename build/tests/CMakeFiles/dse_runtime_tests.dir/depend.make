# Empty dependencies file for dse_runtime_tests.
# This may be replaced when dependencies are built.
