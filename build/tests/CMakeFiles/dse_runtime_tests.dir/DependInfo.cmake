
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/dse/test_design_db.cpp" "tests/CMakeFiles/dse_runtime_tests.dir/dse/test_design_db.cpp.o" "gcc" "tests/CMakeFiles/dse_runtime_tests.dir/dse/test_design_db.cpp.o.d"
  "/root/repo/tests/dse/test_design_time.cpp" "tests/CMakeFiles/dse_runtime_tests.dir/dse/test_design_time.cpp.o" "gcc" "tests/CMakeFiles/dse_runtime_tests.dir/dse/test_design_time.cpp.o.d"
  "/root/repo/tests/dse/test_extensions.cpp" "tests/CMakeFiles/dse_runtime_tests.dir/dse/test_extensions.cpp.o" "gcc" "tests/CMakeFiles/dse_runtime_tests.dir/dse/test_extensions.cpp.o.d"
  "/root/repo/tests/dse/test_mapping_problem.cpp" "tests/CMakeFiles/dse_runtime_tests.dir/dse/test_mapping_problem.cpp.o" "gcc" "tests/CMakeFiles/dse_runtime_tests.dir/dse/test_mapping_problem.cpp.o.d"
  "/root/repo/tests/experiments/test_app.cpp" "tests/CMakeFiles/dse_runtime_tests.dir/experiments/test_app.cpp.o" "gcc" "tests/CMakeFiles/dse_runtime_tests.dir/experiments/test_app.cpp.o.d"
  "/root/repo/tests/runtime/test_contextual_policy.cpp" "tests/CMakeFiles/dse_runtime_tests.dir/runtime/test_contextual_policy.cpp.o" "gcc" "tests/CMakeFiles/dse_runtime_tests.dir/runtime/test_contextual_policy.cpp.o.d"
  "/root/repo/tests/runtime/test_extensions.cpp" "tests/CMakeFiles/dse_runtime_tests.dir/runtime/test_extensions.cpp.o" "gcc" "tests/CMakeFiles/dse_runtime_tests.dir/runtime/test_extensions.cpp.o.d"
  "/root/repo/tests/runtime/test_policy.cpp" "tests/CMakeFiles/dse_runtime_tests.dir/runtime/test_policy.cpp.o" "gcc" "tests/CMakeFiles/dse_runtime_tests.dir/runtime/test_policy.cpp.o.d"
  "/root/repo/tests/runtime/test_qos_process.cpp" "tests/CMakeFiles/dse_runtime_tests.dir/runtime/test_qos_process.cpp.o" "gcc" "tests/CMakeFiles/dse_runtime_tests.dir/runtime/test_qos_process.cpp.o.d"
  "/root/repo/tests/runtime/test_simulator.cpp" "tests/CMakeFiles/dse_runtime_tests.dir/runtime/test_simulator.cpp.o" "gcc" "tests/CMakeFiles/dse_runtime_tests.dir/runtime/test_simulator.cpp.o.d"
  "/root/repo/tests/schedule/test_gantt.cpp" "tests/CMakeFiles/dse_runtime_tests.dir/schedule/test_gantt.cpp.o" "gcc" "tests/CMakeFiles/dse_runtime_tests.dir/schedule/test_gantt.cpp.o.d"
  "/root/repo/tests/schedule/test_heft.cpp" "tests/CMakeFiles/dse_runtime_tests.dir/schedule/test_heft.cpp.o" "gcc" "tests/CMakeFiles/dse_runtime_tests.dir/schedule/test_heft.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/experiments/CMakeFiles/clr_experiments.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/clr_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/dse/CMakeFiles/clr_dse.dir/DependInfo.cmake"
  "/root/repo/build/src/reconfig/CMakeFiles/clr_reconfig.dir/DependInfo.cmake"
  "/root/repo/build/src/schedule/CMakeFiles/clr_schedule.dir/DependInfo.cmake"
  "/root/repo/build/src/reliability/CMakeFiles/clr_reliability.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/clr_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/taskgraph/CMakeFiles/clr_taskgraph.dir/DependInfo.cmake"
  "/root/repo/build/src/moea/CMakeFiles/clr_moea.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/clr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
