
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/common/test_distributions.cpp" "tests/CMakeFiles/unit_tests.dir/common/test_distributions.cpp.o" "gcc" "tests/CMakeFiles/unit_tests.dir/common/test_distributions.cpp.o.d"
  "/root/repo/tests/common/test_rng.cpp" "tests/CMakeFiles/unit_tests.dir/common/test_rng.cpp.o" "gcc" "tests/CMakeFiles/unit_tests.dir/common/test_rng.cpp.o.d"
  "/root/repo/tests/common/test_stats.cpp" "tests/CMakeFiles/unit_tests.dir/common/test_stats.cpp.o" "gcc" "tests/CMakeFiles/unit_tests.dir/common/test_stats.cpp.o.d"
  "/root/repo/tests/common/test_table.cpp" "tests/CMakeFiles/unit_tests.dir/common/test_table.cpp.o" "gcc" "tests/CMakeFiles/unit_tests.dir/common/test_table.cpp.o.d"
  "/root/repo/tests/platform/test_noc.cpp" "tests/CMakeFiles/unit_tests.dir/platform/test_noc.cpp.o" "gcc" "tests/CMakeFiles/unit_tests.dir/platform/test_noc.cpp.o.d"
  "/root/repo/tests/platform/test_platform.cpp" "tests/CMakeFiles/unit_tests.dir/platform/test_platform.cpp.o" "gcc" "tests/CMakeFiles/unit_tests.dir/platform/test_platform.cpp.o.d"
  "/root/repo/tests/reconfig/test_reconfig.cpp" "tests/CMakeFiles/unit_tests.dir/reconfig/test_reconfig.cpp.o" "gcc" "tests/CMakeFiles/unit_tests.dir/reconfig/test_reconfig.cpp.o.d"
  "/root/repo/tests/reliability/test_clr_space.cpp" "tests/CMakeFiles/unit_tests.dir/reliability/test_clr_space.cpp.o" "gcc" "tests/CMakeFiles/unit_tests.dir/reliability/test_clr_space.cpp.o.d"
  "/root/repo/tests/reliability/test_implementation.cpp" "tests/CMakeFiles/unit_tests.dir/reliability/test_implementation.cpp.o" "gcc" "tests/CMakeFiles/unit_tests.dir/reliability/test_implementation.cpp.o.d"
  "/root/repo/tests/reliability/test_metrics.cpp" "tests/CMakeFiles/unit_tests.dir/reliability/test_metrics.cpp.o" "gcc" "tests/CMakeFiles/unit_tests.dir/reliability/test_metrics.cpp.o.d"
  "/root/repo/tests/reliability/test_techniques.cpp" "tests/CMakeFiles/unit_tests.dir/reliability/test_techniques.cpp.o" "gcc" "tests/CMakeFiles/unit_tests.dir/reliability/test_techniques.cpp.o.d"
  "/root/repo/tests/reliability/test_thermal.cpp" "tests/CMakeFiles/unit_tests.dir/reliability/test_thermal.cpp.o" "gcc" "tests/CMakeFiles/unit_tests.dir/reliability/test_thermal.cpp.o.d"
  "/root/repo/tests/schedule/test_dot.cpp" "tests/CMakeFiles/unit_tests.dir/schedule/test_dot.cpp.o" "gcc" "tests/CMakeFiles/unit_tests.dir/schedule/test_dot.cpp.o.d"
  "/root/repo/tests/schedule/test_scheduler.cpp" "tests/CMakeFiles/unit_tests.dir/schedule/test_scheduler.cpp.o" "gcc" "tests/CMakeFiles/unit_tests.dir/schedule/test_scheduler.cpp.o.d"
  "/root/repo/tests/taskgraph/test_generator.cpp" "tests/CMakeFiles/unit_tests.dir/taskgraph/test_generator.cpp.o" "gcc" "tests/CMakeFiles/unit_tests.dir/taskgraph/test_generator.cpp.o.d"
  "/root/repo/tests/taskgraph/test_graph.cpp" "tests/CMakeFiles/unit_tests.dir/taskgraph/test_graph.cpp.o" "gcc" "tests/CMakeFiles/unit_tests.dir/taskgraph/test_graph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/clr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/taskgraph/CMakeFiles/clr_taskgraph.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/clr_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/reliability/CMakeFiles/clr_reliability.dir/DependInfo.cmake"
  "/root/repo/build/src/schedule/CMakeFiles/clr_schedule.dir/DependInfo.cmake"
  "/root/repo/build/src/reconfig/CMakeFiles/clr_reconfig.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
