file(REMOVE_RECURSE
  "CMakeFiles/clrtool.dir/clrtool.cpp.o"
  "CMakeFiles/clrtool.dir/clrtool.cpp.o.d"
  "clrtool"
  "clrtool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clrtool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
