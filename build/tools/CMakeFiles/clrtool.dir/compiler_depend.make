# Empty compiler generated dependencies file for clrtool.
# This may be replaced when dependencies are built.
