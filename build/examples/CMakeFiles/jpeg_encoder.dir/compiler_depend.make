# Empty compiler generated dependencies file for jpeg_encoder.
# This may be replaced when dependencies are built.
