file(REMOVE_RECURSE
  "CMakeFiles/jpeg_encoder.dir/jpeg_encoder.cpp.o"
  "CMakeFiles/jpeg_encoder.dir/jpeg_encoder.cpp.o.d"
  "jpeg_encoder"
  "jpeg_encoder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jpeg_encoder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
