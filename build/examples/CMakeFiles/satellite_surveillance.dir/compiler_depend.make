# Empty compiler generated dependencies file for satellite_surveillance.
# This may be replaced when dependencies are built.
