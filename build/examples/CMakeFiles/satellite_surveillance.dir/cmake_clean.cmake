file(REMOVE_RECURSE
  "CMakeFiles/satellite_surveillance.dir/satellite_surveillance.cpp.o"
  "CMakeFiles/satellite_surveillance.dir/satellite_surveillance.cpp.o.d"
  "satellite_surveillance"
  "satellite_surveillance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/satellite_surveillance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
