# Empty dependencies file for pe_failure_recovery.
# This may be replaced when dependencies are built.
