file(REMOVE_RECURSE
  "CMakeFiles/pe_failure_recovery.dir/pe_failure_recovery.cpp.o"
  "CMakeFiles/pe_failure_recovery.dir/pe_failure_recovery.cpp.o.d"
  "pe_failure_recovery"
  "pe_failure_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pe_failure_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
