// clrtool — command-line front end to the library's main flows.
//
//   clrtool generate --tasks N [--seed S] [--graph-out G.json]
//                    [--platform-out P.json] [--dot-out G.dot]
//       Generate a synthetic application; optionally save the graph, the
//       default platform and a Graphviz rendering.
//
//   clrtool explore  --tasks N [--seed S] [--pop P] [--gens G] [--csp]
//                    [--jobs J] [--db-out DB.json]
//       Run the hybrid design-time DSE (BaseD + ReD) and save/print the
//       design-point database. --jobs sets the evaluation concurrency
//       (default: all hardware threads); results are identical at any J.
//
//   clrtool simulate --tasks N [--seed S] [--db DB.json]
//                    [--policy ura|aura|mdp|baseline] [--prefetch]
//                    [--prc X] [--cycles C] [--sim-seed S2]
//                    [--fault-rate R] [--pe-mtbf M] [--qos-tolerance T]
//                    [--replications R] [--jobs J] [--report F.json]
//       Load a database produced by `explore` for the same (tasks, seed)
//       application and run the Monte-Carlo run-time adaptation. Without
//       --db, the design-time flow runs inline first (one process covering
//       DSE + runtime — the single-command tracing path). With
//       --replications > 1 the run goes through the replicated exp::Runner
//       harness (R derived-seed replications fanned over J workers; results
//       identical at any J) and the table reports mean ± 95% CI; --report
//       writes the full replicated grid as JSON. --fault-rate (transient
//       soft errors per PE per cycle) and --pe-mtbf (mean cycles to
//       permanent PE wear-out) switch run-time fault injection on;
//       --qos-tolerance bounds the relaxed-QoS degraded mode. --policy mdp
//       selects the offline-solved tabular MDP policy (DESIGN.md §5.14);
//       --prefetch speculatively stages the predicted next configuration on
//       the single reconfiguration port so its load time hides behind
//       serviced cycles (never changes decisions, only stall accounting).
//
//   clrtool fleet    --devices N [--shards S] [--jobs J] [--block B]
//                    [--tasks N] [--seed S] [--db DB.clrdb]
//                    [--policy ura|aura|mdp|baseline] [--prefetch]
//                    [--prc X] [--cycles C] [--sim-seed S2] [--fault-rate R]
//                    [--pe-mtbf M] [--qos-tolerance T] [--report F.json]
//       Run N independent device instances — each a runtime simulator +
//       adaptation policy over the shared (ideally snapshot-mapped) design
//       database — through the sharded fleet pipeline (DESIGN.md §5.13) and
//       print the streamed fleet/per-shard aggregates plus the devices/s
//       throughput. Aggregates are bit-identical at ANY --shards/--jobs
//       combination; --block sets the aggregation/checkpoint grain (result-
//       affecting, part of the checkpoint identity). Accepts the shared
//       checkpoint/budget flags; an interrupted fleet resumes at block
//       granularity with bit-identical final results.
//
//   clrtool inspect  --db DB.json
//       Print the stored design points.
//
//   clrtool validate --tasks N [--seed S] --db DB.json [--runs R] [--points K]
//       Fault-inject the first K stored points (Monte-Carlo execution with
//       sampled SEUs) and compare against the database's analytical metrics.
//
// Long runs (`explore`, replicated `simulate`, `fleet`) accept --checkpoint F.clrdb
// [--checkpoint-every N] [--resume] plus --time-budget / --step-budget.
// SIGINT/SIGTERM stop cooperatively: the current generation/cell finishes, a
// final checkpoint is written, the partial report prints, and the process
// exits 3 ("interrupted"); a second signal kills immediately. A killed run
// resumed with --resume is bit-identical to the uninterrupted one.
//
// All randomness is seeded; identical invocations produce identical output.

#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "common/parallel.hpp"
#include "common/stop.hpp"
#include "common/table.hpp"
#include "experiments/flow.hpp"
#include "experiments/runner.hpp"
#include "experiments/session.hpp"
#include "faults/fault_model.hpp"
#include "fleet/fleet.hpp"
#include "io/json.hpp"
#include "io/serialize.hpp"
#include "io/snapshot.hpp"
#include "runtime/drc_matrix.hpp"
#include "schedule/dot.hpp"
#include "schedule/gantt.hpp"
#include "schedule/heft.hpp"
#include "sim/fault_injection.hpp"
#include "trace/trace.hpp"

namespace {

using namespace clr;

/// Exit code of a run cut short cooperatively (SIGINT/SIGTERM, --time-budget
/// or --step-budget): the partial report was emitted and — with --checkpoint
/// — a final checkpoint written, but the run is not complete. Distinct from
/// 1 (error) and 2 (usage) so scripts can branch on "resume me later".
constexpr int kExitInterrupted = 3;

/// The process-wide stop source the signal handlers and --time-budget arm.
/// Function-local static: lives until process exit, so the async handler's
/// pointer stays valid.
util::StopSource& global_stop() {
  static util::StopSource source;
  return source;
}

/// Tiny --key value argument scanner. Malformed or unknown input throws
/// std::runtime_error with a one-line actionable message; main() turns that
/// into a non-zero exit.
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 2; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) {
        throw std::runtime_error("expected an --option, got '" + key +
                                 "' (run clrtool without arguments for usage)");
      }
      key = key.substr(2);
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        values_[key] = argv[++i];
      } else {
        values_[key] = "";  // boolean flag
      }
    }
  }

  bool has(const std::string& key) const { return values_.count(key) > 0; }

  /// Reject any option not in `allowed` — a typo'd flag must fail loudly, not
  /// silently fall back to the default value.
  void expect_only(std::initializer_list<const char*> allowed) const {
    for (const auto& [key, value] : values_) {
      bool known = false;
      for (const char* a : allowed) {
        if (key == a) {
          known = true;
          break;
        }
      }
      if (!known) {
        throw std::runtime_error("unknown option --" + key +
                                 " (run clrtool without arguments for usage)");
      }
    }
  }

  std::string str(const std::string& key, const std::string& fallback = "") const {
    const auto it = values_.find(key);
    return it != values_.end() ? it->second : fallback;
  }

  long num(const std::string& key, long fallback) const {
    const auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    try {
      std::size_t used = 0;
      const long v = std::stol(it->second, &used);
      if (used != it->second.size()) throw std::invalid_argument("trailing characters");
      return v;
    } catch (const std::exception&) {
      throw std::runtime_error("option --" + key + ": expected an integer, got '" +
                               it->second + "'");
    }
  }

  double real(const std::string& key, double fallback) const {
    const auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    try {
      std::size_t used = 0;
      const double v = std::stod(it->second, &used);
      if (used != it->second.size() || !std::isfinite(v)) {
        throw std::invalid_argument("not a finite number");
      }
      return v;
    } catch (const std::exception&) {
      throw std::runtime_error("option --" + key + ": expected a finite number, got '" +
                               it->second + "'");
    }
  }

 private:
  std::map<std::string, std::string> values_;
};

/// Non-negative integer option with a lower bound, as std::size_t.
std::size_t size_arg(const Args& args, const std::string& key, long fallback,
                     long min_value = 0) {
  const long v = args.num(key, fallback);
  if (v < min_value) {
    throw std::runtime_error("option --" + key + ": must be >= " + std::to_string(min_value) +
                             ", got " + std::to_string(v));
  }
  return static_cast<std::size_t>(v);
}

/// Parse the shared checkpoint/budget flags into a SessionControl, validate
/// their dependencies (--resume and --checkpoint-every require --checkpoint)
/// and arm the global stop source's deadline from --time-budget.
exp::SessionControl session_control(const Args& args) {
  exp::SessionControl control;
  control.checkpoint_path = args.str("checkpoint");
  if (args.has("checkpoint") && control.checkpoint_path.empty()) {
    throw std::runtime_error("option --checkpoint: expected a .clrdb base path");
  }
  if (args.has("checkpoint-every") && !args.has("checkpoint")) {
    throw std::runtime_error("option --checkpoint-every requires --checkpoint");
  }
  control.checkpoint_every = size_arg(args, "checkpoint-every", 1, 1);
  if (args.has("resume")) {
    if (!args.has("checkpoint")) throw std::runtime_error("option --resume requires --checkpoint");
    control.resume = true;
  }
  if (args.has("time-budget")) {
    const double seconds = args.real("time-budget", 0.0);
    if (seconds <= 0.0) throw std::runtime_error("option --time-budget: must be > 0 seconds");
    global_stop().set_deadline_after(seconds);
  }
  control.step_budget = static_cast<std::uint64_t>(size_arg(args, "step-budget", 0));
  control.stop = global_stop().token();
  return control;
}

int usage() {
  std::fprintf(stderr,
               "usage: clrtool <generate|explore|simulate|fleet|inspect|validate> [options]\n"
               "  generate --tasks N [--seed S] [--graph-out F] [--platform-out F] [--dot-out F]\n"
               "  explore  --tasks N [--seed S] [--pop P] [--gens G] [--csp] [--jobs J]\n"
               "           [--db-out F] [--trace F2] [--trace-categories C]\n"
               "           [--checkpoint F.clrdb] [--checkpoint-every N] [--resume]\n"
               "           [--time-budget SEC] [--step-budget N]\n"
               "  simulate --tasks N [--seed S] [--db F] [--policy ura|aura|mdp|baseline]\n"
               "           [--prefetch] [--prc X]\n"
               "           [--cycles C] [--sim-seed S2] [--fault-rate R] [--pe-mtbf M]\n"
               "           [--qos-tolerance T] [--replications R] [--jobs J] [--report F]\n"
               "           [--pop P] [--gens G] [--trace F2] [--trace-categories C]\n"
               "           [--checkpoint F.clrdb] [--checkpoint-every N] [--resume]\n"
               "           [--time-budget SEC] [--step-budget N]\n"
               "           (without --db the design-time flow runs inline first)\n"
               "  fleet    --devices N [--shards S] [--jobs J] [--block B] [--tasks N] [--seed S]\n"
               "           [--db F] [--policy ura|aura|mdp|baseline] [--prefetch] [--prc X]\n"
               "           [--cycles C]\n"
               "           [--sim-seed S2] [--fault-rate R] [--pe-mtbf M] [--qos-tolerance T]\n"
               "           [--report F] [--pop P] [--gens G]\n"
               "           [--checkpoint F.clrdb] [--checkpoint-every N] [--resume]\n"
               "           [--time-budget SEC] [--step-budget N]\n"
               "           (aggregates are bit-identical at any --shards/--jobs)\n"
               "  inspect  --db F\n"
               "  validate --tasks N [--seed S] --db F [--runs R] [--points K] [--sim-seed S2]\n"
               "--trace writes a Chrome trace_event JSON timeline (Perfetto /\n"
               "chrome://tracing) and prints a per-span summary; --trace-categories\n"
               "filters it to a comma list of dse,runtime,exp,drc,bench (default all).\n"
               "--checkpoint writes crash-safe A/B checkpoints (<F>.a/<F>.b) at generation\n"
               "or job-batch boundaries; --resume continues from the newest good one with\n"
               "bit-identical results. SIGINT/SIGTERM, --time-budget (wall-clock seconds)\n"
               "and --step-budget (boundaries) stop cooperatively: the partial report is\n"
               "printed, a final checkpoint written, and the exit code is 3.\n");
  return 2;
}

/// Turn tracing on when --trace is present. Returns the output path ("" =
/// tracing off). Must run before the traced work starts.
std::string setup_trace(const Args& args) {
  if (!args.has("trace")) {
    if (args.has("trace-categories")) {
      throw std::runtime_error("option --trace-categories requires --trace");
    }
    return "";
  }
  const std::string path = args.str("trace");
  if (path.empty()) throw std::runtime_error("option --trace: expected an output path");
  std::uint32_t mask = trace::kAllCategories;
  try {
    mask = trace::parse_categories(args.str("trace-categories", "all"));
  } catch (const std::exception& e) {
    throw std::runtime_error(std::string("option --trace-categories: ") + e.what());
  }
  trace::Tracer::instance().enable(mask);
  return path;
}

/// Stop tracing, write the Chrome JSON file and print the summary table.
void finish_trace(const std::string& path) {
  if (path.empty()) return;
  auto& tracer = trace::Tracer::instance();
  tracer.disable();
  util::write_file(path, tracer.chrome_trace().dump() + "\n");
  std::printf("%s", tracer.summary().c_str());
  std::printf("trace (%zu events) written to %s\n", tracer.num_events(), path.c_str());
  tracer.clear();
}

int cmd_generate(const Args& args) {
  args.expect_only({"tasks", "seed", "graph-out", "platform-out", "dot-out"});
  const auto tasks = size_arg(args, "tasks", 20, 1);
  const auto seed = static_cast<std::uint64_t>(size_arg(args, "seed", 1));
  const auto app = exp::make_synthetic_app(tasks, seed);
  std::printf("generated %zu-task application (seed %llu): %zu edges, %zu PEs, CLR space %zu\n",
              tasks, static_cast<unsigned long long>(seed), app->graph().num_edges(),
              app->platform().num_pes(), app->clr_space().size());
  if (args.has("graph-out")) {
    util::write_file(args.str("graph-out"), io::to_json(app->graph()).dump(2) + "\n");
    std::printf("graph written to %s\n", args.str("graph-out").c_str());
  }
  if (args.has("platform-out")) {
    util::write_file(args.str("platform-out"), io::to_json(app->platform()).dump(2) + "\n");
    std::printf("platform written to %s\n", args.str("platform-out").c_str());
  }
  if (args.has("dot-out")) {
    util::write_file(args.str("dot-out"), sched::to_dot(app->graph(), sched::heft_seed(app->context())));
    std::printf("DOT (HEFT mapping overlay) written to %s\n", args.str("dot-out").c_str());
  }
  return 0;
}

int cmd_explore(const Args& args) {
  args.expect_only({"tasks", "seed", "pop", "gens", "csp", "jobs", "db-out", "trace",
                    "trace-categories", "checkpoint", "checkpoint-every", "resume", "time-budget",
                    "step-budget"});
  const auto tasks = size_arg(args, "tasks", 20, 1);
  const auto seed = static_cast<std::uint64_t>(size_arg(args, "seed", 1));
  const exp::SessionControl control = session_control(args);
  const std::string trace_path = setup_trace(args);
  const auto app = exp::make_synthetic_app(tasks, seed);

  exp::FlowParams params;
  params.dse.base_ga.population = size_arg(args, "pop", 64, 2);
  params.dse.base_ga.generations = size_arg(args, "gens", 60, 1);
  // 0 = auto (std::thread::hardware_concurrency); the front is bit-for-bit
  // identical at any job count.
  params.dse.threads = size_arg(args, "jobs", 0);
  if (args.has("csp")) params.mode = dse::ObjectiveMode::CspQos;

  util::install_stop_signal_handlers(global_stop());
  const auto outcome = exp::run_explore_session(*app, params, seed ^ 0xD5EULL, control);
  const auto& flow = outcome.flow;
  if (outcome.resumed) {
    std::printf("resumed from checkpoint %s (.a/.b)\n", control.checkpoint_path.c_str());
  }
  std::printf("spec: Sapp <= %.2f, Fapp >= %.5f\nBaseD: %s\nReD:   %s\n", flow.spec.max_makespan,
              flow.spec.min_func_rel, flow.based.summary().c_str(), flow.red.summary().c_str());
  if (!outcome.complete) {
    // Partial report only; the database on disk stays the checkpoint, not a
    // half-built artifact that could be mistaken for the full result.
    std::printf("interrupted (%s) after %llu generation boundaries",
                util::stop_reason_name(outcome.stop_reason),
                static_cast<unsigned long long>(outcome.steps));
    if (!control.checkpoint_path.empty()) {
      std::printf("; %llu checkpoint(s) written — rerun with --resume to continue",
                  static_cast<unsigned long long>(outcome.checkpoints_written));
    }
    std::printf("\n");
    finish_trace(trace_path);
    return kExitInterrupted;
  }
  if (args.has("db-out")) {
    const std::string out = args.str("db-out");
    if (io::is_snapshot_path(out)) {
      // Binary snapshot: persist the DrcMatrix too, so later `simulate`
      // processes skip the O(n²·tasks) rebuild entirely.
      recfg::ReconfigModel reconfig(app->platform(), app->impls());
      util::ThreadPool pool(params.dse.threads);
      rt::DrcMatrix drc(flow.red, reconfig, &pool);
      io::save_snapshot(out, flow.red, app->clr_space(), &drc);
    } else {
      io::save_design_db(out, flow.red, app->clr_space());
    }
    std::printf("database written to %s\n", out.c_str());
  }
  finish_trace(trace_path);
  return 0;
}

int cmd_simulate(const Args& args) {
  args.expect_only({"tasks", "seed", "db", "policy", "prefetch", "prc", "cycles", "sim-seed",
                    "fault-rate", "pe-mtbf", "qos-tolerance", "replications", "jobs", "report",
                    "trace", "trace-categories", "pop", "gens", "checkpoint", "checkpoint-every",
                    "resume", "time-budget", "step-budget"});
  // Validate every option before touching the filesystem, so a typo'd flag
  // value fails fast with the option-level message.
  const auto tasks = size_arg(args, "tasks", 20, 1);
  const auto seed = static_cast<std::uint64_t>(size_arg(args, "seed", 1));

  exp::RuntimeEvalParams params;
  const std::string policy = args.str("policy", "ura");
  if (policy == "ura") params.kind = exp::PolicyKind::Ura;
  else if (policy == "aura") params.kind = exp::PolicyKind::Aura;
  else if (policy == "mdp") params.kind = exp::PolicyKind::Mdp;
  else if (policy == "baseline") params.kind = exp::PolicyKind::Baseline;
  else {
    std::fprintf(stderr, "simulate: unknown policy '%s' (use ura, aura, mdp or baseline)\n",
                 policy.c_str());
    return usage();
  }
  params.prefetch = args.has("prefetch");
  params.p_rc = args.real("prc", 0.5);
  if (params.p_rc < 0.0 || params.p_rc > 1.0) {
    throw std::runtime_error("option --prc: must be in [0, 1]");
  }
  params.sim.total_cycles = args.real("cycles", 2e5);
  if (params.sim.total_cycles <= 0.0) {
    throw std::runtime_error("option --cycles: must be > 0");
  }

  // Run-time fault environment (off unless a rate is given). validate()
  // turns out-of-range values into the one-line error contract.
  params.faults.transient_rate = args.real("fault-rate", 0.0);
  params.faults.pe_mtbf = args.real("pe-mtbf", 0.0);
  params.faults.qos_tolerance = args.real("qos-tolerance", params.faults.qos_tolerance);
  params.faults.validate();

  const auto sim_seed = static_cast<std::uint64_t>(size_arg(args, "sim-seed", 7));
  const auto replications = size_arg(args, "replications", 1, 1);
  const bool replicated = replications > 1 || args.has("report");
  if (!replicated && (args.has("checkpoint") || args.has("resume") || args.has("time-budget") ||
                      args.has("step-budget") || args.has("checkpoint-every"))) {
    throw std::runtime_error(
        "simulate: --checkpoint/--resume/--time-budget/--step-budget need the replicated "
        "runner — pass --replications > 1 (or --report)");
  }
  const exp::SessionControl control = session_control(args);
  const std::string trace_path = setup_trace(args);

  // Design database: load one produced by `explore` (--db), or — without
  // --db — run the design-time flow inline first (one-shot explore+simulate,
  // the path that traces DSE and runtime into a single timeline).
  std::unique_ptr<exp::AppInstance> app;
  dse::DesignDb db;
  // Filled when a .clrdb snapshot carries the precomputed cost matrix; the
  // evaluation below then skips the per-process DrcMatrix rebuild.
  std::optional<rt::DrcMatrix> snapshot_drc;
  if (args.has("db")) {
    const std::string db_path = args.str("db");
    if (io::is_snapshot_path(db_path)) {
      auto loaded = io::load_snapshot(db_path);
      app = exp::make_synthetic_app_with_space(tasks, seed, loaded.space);
      db = std::move(loaded.db);
      snapshot_drc = std::move(loaded.drc);
    } else {
      const auto loaded = io::load_design_db(db_path);
      // Rebuild the identical application (the database stores indices into
      // its implementation sets, which regenerate deterministically per seed).
      app = exp::make_synthetic_app_with_space(tasks, seed, loaded.space);
      db = loaded.db;
    }
  } else {
    app = exp::make_synthetic_app(tasks, seed);
    exp::FlowParams flow_params;
    flow_params.dse.base_ga.population = size_arg(args, "pop", 64, 2);
    flow_params.dse.base_ga.generations = size_arg(args, "gens", 60, 1);
    flow_params.dse.threads = size_arg(args, "jobs", 0);
    util::Rng flow_rng(seed ^ 0xD5EULL);
    db = exp::run_design_flow(*app, flow_params, flow_rng).red;
    std::printf("explored inline: %zu stored design points (pass --db to reuse a saved "
                "database)\n",
                db.size());
  }

  // QoS box from the database's own ranges, widened like qos_ranges().
  const auto r = db.ranges();
  dse::MetricRanges box = r;
  box.makespan_max = r.makespan_max + 0.25 * (r.makespan_max - r.makespan_min);
  box.func_rel_min = r.func_rel_min - 0.25 * (r.func_rel_max - r.func_rel_min);

  if (!replicated) {
    const auto stats = snapshot_drc
                           ? exp::evaluate_policy(*app, db, *snapshot_drc, box, params, sim_seed)
                           : exp::evaluate_policy(*app, db, box, params, sim_seed);
    util::TextTable table("simulation result");
    table.set_header({"policy", "pRC", "cycles", "avg energy", "avg dRC/event", "#reconfigs",
                      "QoS violations", "availability", "MTTR", "unrecovered"});
    table.add_row({policy, util::TextTable::fmt(params.p_rc, 2),
                   util::TextTable::fmt(params.sim.total_cycles, 0),
                   util::TextTable::fmt(stats.avg_energy, 2),
                   util::TextTable::fmt(stats.avg_reconfig_cost, 2),
                   std::to_string(stats.num_reconfigs),
                   std::to_string(stats.num_infeasible_events),
                   util::TextTable::fmt(stats.availability, 5),
                   util::TextTable::fmt(stats.mttr, 1),
                   std::to_string(stats.num_unrecovered_failures)});
    std::printf("%s", table.to_string().c_str());
    finish_trace(trace_path);
    return 0;
  }

  // Replicated path: derived seeds per replication, fanned over the harness.
  exp::RunnerConfig config;
  config.replications = replications;
  config.jobs = size_arg(args, "jobs", 0);
  exp::Runner runner(config);
  exp::RunnerCell cell;
  cell.app = app.get();
  cell.db = &db;
  if (snapshot_drc) cell.drc = &*snapshot_drc;
  cell.ranges = box;
  cell.params = params;
  cell.seed = sim_seed;
  cell.label = policy + " pRC=" + util::TextTable::fmt(params.p_rc, 2);
  runner.add_cell(std::move(cell));
  util::install_stop_signal_handlers(global_stop());
  const exp::RunnerOutcome session = exp::run_runner_session(runner, control);
  const auto& results = session.run.results;
  const auto& s = results.front().stats;
  if (session.resumed) {
    std::printf("resumed from checkpoint %s (.a/.b)\n", control.checkpoint_path.c_str());
  }

  const auto ci = [](const util::Summary& f, int prec) {
    return util::TextTable::fmt(f.mean, prec) + " ±" + util::TextTable::fmt(f.ci95, prec);
  };
  util::TextTable table("simulation result (" + std::to_string(s.replications) + " of " +
                        std::to_string(replications) + " replications, mean ±95% CI)");
  table.set_header({"policy", "pRC", "cycles", "avg energy", "avg dRC/event", "#reconfigs",
                    "QoS violations", "availability", "MTTR", "unrecovered"});
  table.add_row({policy, util::TextTable::fmt(params.p_rc, 2),
                 util::TextTable::fmt(params.sim.total_cycles, 0), ci(s.avg_energy, 2),
                 ci(s.avg_reconfig_cost, 2), ci(s.num_reconfigs, 1),
                 ci(s.num_infeasible_events, 1), ci(s.availability, 5), ci(s.mttr, 1),
                 ci(s.num_unrecovered_failures, 1)});
  std::printf("%s", table.to_string().c_str());
  if (args.has("report")) {
    const auto report = exp::grid_report("clrtool_simulate", config, results, &runner.metrics(),
                                         !session.run.complete);
    util::write_file(args.str("report"), report.dump(2) + "\n");
    std::printf("report written to %s\n", args.str("report").c_str());
  }
  if (!session.run.complete) {
    std::printf("interrupted (%s): %llu of %llu replication jobs done",
                util::stop_reason_name(session.stop_reason),
                static_cast<unsigned long long>(session.run.jobs_done),
                static_cast<unsigned long long>(session.run.jobs_total));
    if (!control.checkpoint_path.empty()) {
      std::printf("; %llu checkpoint(s) written — rerun with --resume to continue",
                  static_cast<unsigned long long>(session.checkpoints_written));
    }
    std::printf("\n");
    finish_trace(trace_path);
    return kExitInterrupted;
  }
  finish_trace(trace_path);
  return 0;
}

int cmd_fleet(const Args& args) {
  args.expect_only({"devices", "shards", "jobs", "block", "tasks", "seed", "db", "policy",
                    "prefetch", "prc", "cycles", "sim-seed", "fault-rate", "pe-mtbf",
                    "qos-tolerance", "report", "pop", "gens", "checkpoint", "checkpoint-every",
                    "resume", "time-budget", "step-budget"});
  const auto tasks = size_arg(args, "tasks", 20, 1);
  const auto seed = static_cast<std::uint64_t>(size_arg(args, "seed", 1));

  fleet::FleetConfig config;
  config.devices = static_cast<std::uint64_t>(size_arg(args, "devices", 100000));
  config.shards = size_arg(args, "shards", 0);
  config.jobs = size_arg(args, "jobs", 0);
  config.block_size = static_cast<std::uint64_t>(size_arg(args, "block", 1024, 1));
  config.seed = static_cast<std::uint64_t>(size_arg(args, "sim-seed", 7));

  exp::RuntimeEvalParams& params = config.params;
  const std::string policy = args.str("policy", "ura");
  if (policy == "ura") params.kind = exp::PolicyKind::Ura;
  else if (policy == "aura") params.kind = exp::PolicyKind::Aura;
  else if (policy == "mdp") params.kind = exp::PolicyKind::Mdp;
  else if (policy == "baseline") params.kind = exp::PolicyKind::Baseline;
  else {
    std::fprintf(stderr, "fleet: unknown policy '%s' (use ura, aura, mdp or baseline)\n",
                 policy.c_str());
    return usage();
  }
  params.prefetch = args.has("prefetch");
  params.p_rc = args.real("prc", 0.5);
  if (params.p_rc < 0.0 || params.p_rc > 1.0) {
    throw std::runtime_error("option --prc: must be in [0, 1]");
  }
  // Shorter default horizon than `simulate` (2e4 vs 2e5 cycles): fleet runs
  // amortize statistical power across devices, not cycles.
  params.sim.total_cycles = args.real("cycles", 2e4);
  if (params.sim.total_cycles <= 0.0) {
    throw std::runtime_error("option --cycles: must be > 0");
  }
  params.faults.transient_rate = args.real("fault-rate", 0.0);
  params.faults.pe_mtbf = args.real("pe-mtbf", 0.0);
  params.faults.qos_tolerance = args.real("qos-tolerance", params.faults.qos_tolerance);
  params.faults.validate();

  const exp::SessionControl control = session_control(args);

  // Design database: a .clrdb snapshot (the fleet-scale path — one mapped
  // copy, DrcMatrix included), a JSON artifact, or an inline explore.
  std::unique_ptr<exp::AppInstance> app;
  dse::DesignDb db;
  std::optional<rt::DrcMatrix> drc;
  if (args.has("db")) {
    const std::string db_path = args.str("db");
    if (io::is_snapshot_path(db_path)) {
      auto loaded = io::load_snapshot(db_path);
      app = exp::make_synthetic_app_with_space(tasks, seed, loaded.space);
      db = std::move(loaded.db);
      drc = std::move(loaded.drc);
    } else {
      const auto loaded = io::load_design_db(db_path);
      app = exp::make_synthetic_app_with_space(tasks, seed, loaded.space);
      db = loaded.db;
    }
  } else {
    app = exp::make_synthetic_app(tasks, seed);
    exp::FlowParams flow_params;
    flow_params.dse.base_ga.population = size_arg(args, "pop", 64, 2);
    flow_params.dse.base_ga.generations = size_arg(args, "gens", 60, 1);
    flow_params.dse.threads = config.jobs;
    util::Rng flow_rng(seed ^ 0xD5EULL);
    db = exp::run_design_flow(*app, flow_params, flow_rng).red;
    std::printf("explored inline: %zu stored design points (pass --db to reuse a saved "
                "database)\n",
                db.size());
  }
  if (!drc) {
    // No precomputed matrix in the artifact: rebuild it once, up front (the
    // pipeline itself never computes pairwise costs).
    recfg::ReconfigModel reconfig(app->platform(), app->impls());
    util::ThreadPool pool(config.jobs);
    drc.emplace(db, reconfig, &pool);
  }

  // Per-device fault environment mirrors exp::evaluate_policy: per-PE SER
  // profiles derived from the platform when injection is on.
  if (params.faults.enabled() && params.fault_profiles.empty()) {
    params.fault_profiles = flt::profiles_from_platform(app->platform());
  }

  // QoS box from the database's own ranges, widened like qos_ranges().
  const auto r = db.ranges();
  config.ranges = r;
  config.ranges.makespan_max = r.makespan_max + 0.25 * (r.makespan_max - r.makespan_min);
  config.ranges.func_rel_min = r.func_rel_min - 0.25 * (r.func_rel_max - r.func_rel_min);

  util::install_stop_signal_handlers(global_stop());
  const fleet::FleetSessionOutcome outcome =
      fleet::run_fleet_session(db, *drc, &app->clr_space(), config, control);
  const fleet::FleetResult& result = outcome.result;
  const fleet::FleetSummary& s = result.summary;
  if (outcome.resumed) {
    std::printf("resumed from checkpoint %s (.a/.b): %llu of %llu blocks were done\n",
                control.checkpoint_path.c_str(),
                static_cast<unsigned long long>(result.progress.blocks_done() -
                                                result.blocks_done_this_run),
                static_cast<unsigned long long>(result.progress.done.size()));
  }

  util::TextTable table("fleet result (" + std::to_string(result.devices_done) + " of " +
                        std::to_string(config.devices) + " devices)");
  table.set_header({"policy", "pRC", "cycles", "mean energy", "reconfigs", "QoS violations",
                    "unrecovered", "mean avail", "mean MTTR", "max dRC"});
  table.add_row({policy, util::TextTable::fmt(params.p_rc, 2),
                 util::TextTable::fmt(params.sim.total_cycles, 0),
                 util::TextTable::fmt(s.mean_energy, 2), std::to_string(s.totals.reconfigs),
                 std::to_string(s.totals.infeasible_events),
                 std::to_string(s.totals.unrecovered_failures),
                 util::TextTable::fmt(s.mean_availability, 5),
                 util::TextTable::fmt(s.mean_mttr, 1), util::TextTable::fmt(s.totals.max_drc, 2)});
  std::printf("%s", table.to_string().c_str());

  util::TextTable shard_table("per-shard aggregates (bit-identical at any --shards/--jobs)");
  shard_table.set_header({"shard", "devices", "events", "reconfigs", "QoS violations",
                          "unrecovered", "mean energy", "mean avail"});
  for (const fleet::ShardSummary& sh : result.shards) {
    const double n = sh.totals.devices > 0 ? static_cast<double>(sh.totals.devices) : 1.0;
    shard_table.add_row({std::to_string(sh.shard), std::to_string(sh.totals.devices),
                         std::to_string(sh.totals.events), std::to_string(sh.totals.reconfigs),
                         std::to_string(sh.totals.infeasible_events),
                         std::to_string(sh.totals.unrecovered_failures),
                         util::TextTable::fmt(sh.totals.energy_sum / n, 2),
                         util::TextTable::fmt(sh.totals.availability_sum / n, 5)});
  }
  std::printf("%s", shard_table.to_string().c_str());
  std::printf("throughput: %.0f devices/s (%llu block(s) in %.2f s, %zu worker thread(s))\n",
              result.devices_per_second,
              static_cast<unsigned long long>(result.blocks_done_this_run), result.wall_seconds,
              util::resolve_threads(config.jobs));

  if (args.has("report")) {
    io::JsonArray shard_rows;
    for (const fleet::ShardSummary& sh : result.shards) {
      shard_rows.push_back(io::Json(io::JsonObject{
          {"shard", io::Json(static_cast<std::uint64_t>(sh.shard))},
          {"first_device", io::Json(sh.first_device)},
          {"num_devices", io::Json(sh.num_devices)},
          {"devices_done", io::Json(sh.totals.devices)},
          {"events", io::Json(sh.totals.events)},
          {"reconfigs", io::Json(sh.totals.reconfigs)},
          {"infeasible_events", io::Json(sh.totals.infeasible_events)},
          {"unrecovered_failures", io::Json(sh.totals.unrecovered_failures)},
          {"energy_sum", io::Json(sh.totals.energy_sum)},
          {"availability_sum", io::Json(sh.totals.availability_sum)},
      }));
    }
    const io::Json report(io::JsonObject{
        {"experiment", io::Json("clrtool_fleet")},
        {"devices", io::Json(config.devices)},
        {"shards", io::Json(static_cast<std::uint64_t>(result.shards.size()))},
        {"jobs", io::Json(static_cast<std::uint64_t>(util::resolve_threads(config.jobs)))},
        {"block_size", io::Json(config.block_size)},
        {"seed", io::Json(config.seed)},
        {"policy", io::Json(policy)},
        {"prefetch", io::Json(params.prefetch)},
        {"p_rc", io::Json(params.p_rc)},
        {"cycles", io::Json(params.sim.total_cycles)},
        {"fault_rate", io::Json(params.faults.transient_rate)},
        {"pe_mtbf", io::Json(params.faults.pe_mtbf)},
        {"complete", io::Json(result.complete)},
        {"devices_done", io::Json(result.devices_done)},
        {"devices_per_second", io::Json(result.devices_per_second)},
        {"wall_seconds", io::Json(result.wall_seconds)},
        {"summary",
         io::Json(io::JsonObject{
             {"events", io::Json(s.totals.events)},
             {"reconfigs", io::Json(s.totals.reconfigs)},
             {"infeasible_events", io::Json(s.totals.infeasible_events)},
             {"transient_faults", io::Json(s.totals.transient_faults)},
             {"recovered_transients", io::Json(s.totals.recovered_transients)},
             {"unrecovered_failures", io::Json(s.totals.unrecovered_failures)},
             {"permanent_faults", io::Json(s.totals.permanent_faults)},
             {"evacuations", io::Json(s.totals.evacuations)},
             {"safe_mode_entries", io::Json(s.totals.safe_mode_entries)},
             {"mean_energy", io::Json(s.mean_energy)},
             {"mean_reconfig_cost", io::Json(s.mean_reconfig_cost)},
             {"mean_violation_time", io::Json(s.mean_violation_time)},
             {"mean_downtime", io::Json(s.mean_downtime)},
             {"mean_availability", io::Json(s.mean_availability)},
             {"mean_mttr", io::Json(s.mean_mttr)},
             {"prefetch_hits", io::Json(s.totals.prefetch_hits)},
             {"prefetch_misses", io::Json(s.totals.prefetch_misses)},
             {"mean_stall_time", io::Json(s.mean_stall_time)},
             {"mean_hidden_time", io::Json(s.mean_hidden_time)},
             {"mean_service_availability", io::Json(s.mean_service_availability)},
             {"max_drc", io::Json(s.totals.max_drc)},
         })},
        {"shard_aggregates", io::Json(std::move(shard_rows))},
    });
    util::write_file(args.str("report"), report.dump(2) + "\n");
    std::printf("report written to %s\n", args.str("report").c_str());
  }

  if (!result.complete) {
    std::printf("interrupted (%s): %llu of %llu blocks done",
                util::stop_reason_name(outcome.stop_reason),
                static_cast<unsigned long long>(result.progress.blocks_done()),
                static_cast<unsigned long long>(result.progress.done.size()));
    if (!control.checkpoint_path.empty()) {
      std::printf("; %llu checkpoint(s) written — rerun with --resume to continue",
                  static_cast<unsigned long long>(outcome.checkpoints_written));
    }
    std::printf("\n");
    return kExitInterrupted;
  }
  return 0;
}

int cmd_validate(const Args& args) {
  args.expect_only({"tasks", "seed", "db", "runs", "points", "sim-seed"});
  if (!args.has("db")) {
    std::fprintf(stderr, "validate: --db is required\n");
    return usage();
  }
  const auto tasks = size_arg(args, "tasks", 20, 1);
  const auto seed = static_cast<std::uint64_t>(size_arg(args, "seed", 1));
  const auto loaded = io::load_design_db(args.str("db"));
  const auto app = exp::make_synthetic_app_with_space(tasks, seed, loaded.space);
  const auto runs = size_arg(args, "runs", 3000, 1);
  const auto max_points = size_arg(args, "points", 5, 1);

  sim::FaultInjector injector(app->context());
  sched::ListScheduler scheduler;
  util::Rng rng(static_cast<std::uint64_t>(args.num("sim-seed", 11)));

  util::TextTable table("fault-injection validation (" + std::to_string(runs) + " runs/point)");
  table.set_header({"#", "S stored", "S empirical", "J stored", "J empirical", "F stored",
                    "F empirical"});
  for (std::size_t i = 0; i < std::min(max_points, loaded.db.size()); ++i) {
    const auto& p = loaded.db.point(i);
    const auto agg = injector.run_many(p.config, runs, rng);
    const auto analytical = scheduler.run(app->context(), p.config);
    table.add_row({std::to_string(i), util::TextTable::fmt(analytical.makespan, 2),
                   util::TextTable::fmt(agg.makespan.mean(), 2),
                   util::TextTable::fmt(analytical.energy, 2),
                   util::TextTable::fmt(agg.energy.mean(), 2),
                   util::TextTable::fmt(analytical.func_rel, 5),
                   util::TextTable::fmt(agg.weighted_success.mean(), 5)});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("empirical columns should track the stored/analytical ones closely; see\n"
              "tests/sim/test_fault_injection.cpp for the formal tolerances.\n");
  return 0;
}

int cmd_inspect(const Args& args) {
  args.expect_only({"db"});
  if (!args.has("db")) {
    std::fprintf(stderr, "inspect: --db is required\n");
    return usage();
  }
  const auto loaded = io::load_design_db(args.str("db"));
  std::printf("%s\nCLR space: %zu configurations\n\n", loaded.db.summary().c_str(),
              loaded.space.size());
  util::TextTable table("stored design points");
  table.set_header({"#", "", "Sapp", "Fapp", "Japp"});
  for (std::size_t i = 0; i < loaded.db.size(); ++i) {
    const auto& p = loaded.db.point(i);
    table.add_row({std::to_string(i), p.extra ? ">" : "*", util::TextTable::fmt(p.makespan, 2),
                   util::TextTable::fmt(p.func_rel, 5), util::TextTable::fmt(p.energy, 2)});
  }
  std::printf("%s", table.to_string().c_str());
  return 0;
}

}  // namespace

namespace {

int dispatch(int argc, char** argv) {
  if (argc < 2) return usage();
  try {
    const Args args(argc, argv);
    const std::string cmd = argv[1];
    if (cmd == "generate") return cmd_generate(args);
    if (cmd == "explore") return cmd_explore(args);
    if (cmd == "simulate") return cmd_simulate(args);
    if (cmd == "fleet") return cmd_fleet(args);
    if (cmd == "inspect") return cmd_inspect(args);
    if (cmd == "validate") return cmd_validate(args);
    std::fprintf(stderr, "unknown command '%s'\n", cmd.c_str());
    return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "clrtool: %s\n", e.what());
    return 1;
  }
}

}  // namespace

int main(int argc, char** argv) {
#ifdef SIGPIPE
  // `clrtool inspect | head` closes our stdout mid-write; the default
  // disposition would kill the process with no message and exit code 141.
  // Ignore the signal so writes fail with EPIPE instead, and report that as
  // an ordinary error below.
  std::signal(SIGPIPE, SIG_IGN);
#endif
  const int code = dispatch(argc, argv);
  if (std::fflush(stdout) != 0 || std::ferror(stdout) != 0) {
    std::fprintf(stderr, "clrtool: error writing to stdout (broken pipe or device full)\n");
    return code == 0 ? 1 : code;
  }
  return code;
}
