// Satellite-surveillance scenario from the paper's introduction: perpetual
// on-board processing under a battery level that drifts with sun exposure
// and a terrain-dependent tolerance to application errors. The system must
// keep operating — conserving energy when the battery is low (accepting a
// higher error rate) and maximizing reliability when power is plentiful.
//
// The drifting environment maps onto the QoS process: a low battery shows up
// as a loose reliability floor (the system may degrade), a critical terrain
// as a tight one. We run the full hybrid flow and then let the AuRA agent
// (pre-trained offline on the expected orbit profile — the "prior knowledge"
// of §4.3.2) manage the platform through several simulated orbits.
//
// Build & run:  ./build/examples/satellite_surveillance

#include <cmath>
#include <cstdio>

#include "common/table.hpp"
#include "experiments/flow.hpp"
#include "runtime/drc_matrix.hpp"

int main() {
  using namespace clr;
  std::printf("== Satellite surveillance: perpetual processing under a drifting budget ==\n\n");

  // The on-board image-processing pipeline: a 30-task synthetic application
  // on the default HMPSoC (2 big + 2 little cores, 1 DSP, 3 PRR slots).
  const auto app = exp::make_synthetic_app(30, /*seed=*/0x5a7e);
  exp::FlowParams params;
  params.dse.base_ga.population = 64;
  params.dse.base_ga.generations = 60;
  util::Rng rng(41);
  const auto flow = exp::run_design_flow(*app, params, rng);
  std::printf("stored design points: %zu (%zu reconfiguration-cost-aware extras)\n\n",
              flow.red.size(), flow.red.num_extra());

  recfg::ReconfigModel reconfig(app->platform(), app->impls());
  rt::DrcMatrix drc(flow.red, reconfig);

  // Orbit profile: the reliability requirement follows the terrain under
  // surveillance and the battery follows sun exposure. We simulate it as a
  // strongly autocorrelated QoS process (phi = 0.9): requirements drift, not
  // jump — exactly the environment the agent can learn.
  rt::QosProcessParams orbit;
  orbit.ar1_phi = 0.9;
  orbit.func_rel_mean_frac = 0.55;
  orbit.func_rel_sd_frac = 0.30;
  orbit.makespan_mean_frac = 0.50;
  orbit.makespan_sd_frac = 0.20;
  rt::QosProcess qos(exp::qos_ranges(flow), orbit);

  // Offline mission rehearsal: pre-train the agent's value functions on the
  // expected orbit profile (prior knowledge), then fly the mission.
  rt::AuraPolicy::Params agent_params;
  agent_params.gamma = 0.5;
  agent_params.guard = 0.02;
  rt::AuraPolicy agent(flow.red, drc, /*p_rc=*/0.4, agent_params);
  util::Rng train_rng(7);
  rt::pretrain_aura(agent, flow.red, qos, /*cycles_per_sweep=*/5e4, /*sweeps=*/6, train_rng);
  std::printf("agent pre-trained; value function spread: ");
  double v_lo = 1e300, v_hi = -1e300;
  for (double v : agent.values()) {
    v_lo = std::min(v_lo, v);
    v_hi = std::max(v_hi, v);
  }
  std::printf("[%.3f, %.3f]\n\n", v_lo, v_hi);

  // Fly five "orbits" of 100k cycles each and report per-orbit statistics.
  util::TextTable mission("mission log (AuRA, pRC = 0.4)");
  mission.set_header({"orbit", "avg energy", "avg dRC/event", "#reconfigs", "QoS violations"});
  rt::SimulationParams sim_params;
  sim_params.total_cycles = 1e5;
  rt::RuntimeSimulator sim(sim_params);
  util::Rng mission_rng(12);
  for (int orbit_no = 1; orbit_no <= 5; ++orbit_no) {
    const auto stats = sim.run(flow.red, agent, qos, mission_rng);
    mission.add_row({std::to_string(orbit_no), util::TextTable::fmt(stats.avg_energy, 1),
                     util::TextTable::fmt(stats.avg_reconfig_cost, 2),
                     std::to_string(stats.num_reconfigs),
                     std::to_string(stats.num_infeasible_events)});
  }
  std::printf("%s\n", mission.to_string().c_str());

  // Compare against the fixed worst-case configuration (the non-adaptive
  // design the paper's Fig. 1 argues against): always run the most reliable
  // stored point.
  std::size_t most_reliable = 0;
  for (std::size_t i = 0; i < flow.red.size(); ++i) {
    if (flow.red.point(i).func_rel > flow.red.point(most_reliable).func_rel) most_reliable = i;
  }
  const double fixed_energy = flow.red.point(most_reliable).energy;
  rt::UraPolicy adaptive(flow.red, drc, 0.4);
  util::Rng cmp_rng(12);
  rt::SimulationParams long_run;
  long_run.total_cycles = 5e5;
  const auto adaptive_stats = rt::RuntimeSimulator(long_run).run(flow.red, adaptive, qos, cmp_rng);
  std::printf("fixed worst-case configuration: J = %.1f per cycle\n", fixed_energy);
  std::printf("dynamic adaptation (uRA):       J = %.1f per cycle (%.1f%% saved)\n",
              adaptive_stats.avg_energy,
              100.0 * (fixed_energy - adaptive_stats.avg_energy) / fixed_energy);
  std::printf("done.\n");
  return 0;
}
