// Building a *custom* platform and inspecting the design space: shows the
// lower-level public API — platform construction, implementation generation,
// manual schedule evaluation, reconfiguration-cost analysis and the two
// design-time stages — without the experiment-level convenience wrappers.
//
// Build & run:  ./build/examples/design_space_report

#include <cstdio>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "dse/design_time.hpp"
#include "experiments/flow.hpp"
#include "reliability/implementation.hpp"
#include "runtime/drc_matrix.hpp"
#include "taskgraph/generator.hpp"

int main() {
  using namespace clr;
  std::printf("== Custom platform design-space report ==\n\n");

  // --- 1. A custom asymmetric platform: 1 fast core, 3 efficiency cores,
  // 2 PRR accelerator slots with a slow ICAP. ---
  plat::Platform hw;
  plat::PeType fast;
  fast.name = "perf-core";
  fast.perf_factor = 0.6;
  fast.power_factor = 2.0;
  fast.avf = 0.5;
  fast.beta_aging = 2.4;
  plat::PeType eff;
  eff.name = "eff-core";
  eff.perf_factor = 1.5;
  eff.power_factor = 0.5;
  eff.avf = 0.25;
  eff.beta_aging = 1.7;
  plat::PeType acc;
  acc.name = "prr-accel";
  acc.kind = plat::PeKind::Accelerator;
  acc.perf_factor = 0.45;
  acc.power_factor = 0.8;
  acc.avf = 0.6;
  acc.beta_aging = 2.6;
  const auto t_fast = hw.add_pe_type(fast);
  const auto t_eff = hw.add_pe_type(eff);
  const auto t_acc = hw.add_pe_type(acc);
  hw.add_pe(t_fast);
  hw.add_pe(t_eff);
  hw.add_pe(t_eff);
  hw.add_pe(t_eff);
  const auto prr0 = hw.add_prr(3u << 20);
  const auto prr1 = hw.add_prr(3u << 20);
  hw.add_pe(t_acc, 1u << 19, prr0);
  hw.add_pe(t_acc, 1u << 19, prr1);
  plat::Interconnect ic;
  ic.binary_bandwidth = 4096.0;
  ic.icap_bandwidth = 512.0;  // deliberately slow: bitstreams dominate dRC
  hw.set_interconnect(ic);
  std::printf("platform: %zu PEs (%zu types), %zu PRRs, ICAP %.0f B/cycle\n", hw.num_pes(),
              hw.num_pe_types(), hw.num_prrs(), hw.interconnect().icap_bandwidth);

  // --- 2. Application + implementations + CLR space, assembled by hand. ---
  tg::GeneratorParams gp;
  gp.num_tasks = 24;
  util::Rng rng(77);
  const tg::TaskGraph graph = tg::TgffGenerator(gp).generate(rng);
  const rel::ImplementationSet impls =
      rel::generate_implementations(graph, hw, rel::ImplGenParams{}, rng);
  const rel::ClrSpace clr_space(rel::ClrGranularity::Full);
  sched::EvalContext ctx;
  ctx.graph = &graph;
  ctx.platform = &hw;
  ctx.impls = &impls;
  ctx.clr_space = &clr_space;
  ctx.metrics = rel::MetricsModel(rel::FaultModel{5e-3});
  std::printf("application: %zu tasks / %zu edges; CLR space: %zu configurations\n\n",
              graph.num_tasks(), graph.num_edges(), clr_space.size());

  // --- 3. Derive the QoS corner, run both design-time stages. ---
  const auto spec = exp::derive_spec(ctx, dse::ObjectiveMode::EnergyQos, 64, 0.85, 0.10, rng);
  std::printf("QoS reference corner: Sapp <= %.1f, Fapp >= %.4f\n", spec.max_makespan,
              spec.min_func_rel);
  dse::MappingProblem problem(ctx, spec, dse::ObjectiveMode::EnergyQos);
  recfg::ReconfigModel reconfig(hw, impls);
  dse::DseConfig dse_cfg;
  dse_cfg.base_ga.population = 64;
  dse_cfg.base_ga.generations = 60;
  dse::DesignTimeDse dse_flow(problem, reconfig, dse_cfg);
  const auto result = dse_flow.run(rng);
  std::printf("BaseD: %s\nReD:   %s\n\n", result.based.summary().c_str(),
              result.red.summary().c_str());

  // --- 4. Reconfiguration-cost structure of the stored points. ---
  rt::DrcMatrix drc(result.red, reconfig);
  util::RunningStats pair_costs;
  std::size_t free_pairs = 0;
  for (std::size_t i = 0; i < drc.size(); ++i) {
    for (std::size_t j = 0; j < drc.size(); ++j) {
      if (i == j) continue;
      pair_costs.add(drc.drc(i, j));
      if (drc.drc(i, j) == 0.0) ++free_pairs;
    }
  }
  std::printf("pairwise dRC: mean %.1f, min %.1f, max %.1f; %zu free transitions "
              "(CLR/priority-only changes)\n",
              pair_costs.mean(), pair_costs.min(), pair_costs.max(), free_pairs);

  // --- 5. Per-point report. ---
  util::TextTable table("stored design points");
  table.set_header({"", "Sapp", "Fapp", "Japp", "peak W", "mean dRC out"});
  sched::ListScheduler scheduler;
  for (std::size_t i = 0; i < result.red.size(); ++i) {
    const auto& p = result.red.point(i);
    const auto res = scheduler.run(ctx, p.config);
    double out = 0.0;
    for (std::size_t j = 0; j < drc.size(); ++j) out += drc.drc(i, j);
    out /= static_cast<double>(drc.size() - 1);
    table.add_row({p.extra ? ">" : "*", util::TextTable::fmt(p.makespan, 1),
                   util::TextTable::fmt(p.func_rel, 5), util::TextTable::fmt(p.energy, 1),
                   util::TextTable::fmt(res.peak_power, 2), util::TextTable::fmt(out, 1)});
  }
  std::printf("%s\ndone.\n", table.to_string().c_str());
  return 0;
}
