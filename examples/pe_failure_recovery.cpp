// Permanent-PE-failure recovery: the paper's other adaptation trigger (§4:
// "The change could be internal: for example a permanent fault to one of the
// PEs resulting in reduced resource availability"). We run the normal hybrid
// flow, then kill one PE mid-mission: the stored design points that bind any
// task to the failed PE become unusable, the run-time manager switches to the
// surviving subset (paying one reconfiguration), and operation continues at
// whatever QoS the degraded platform can still deliver.
//
// Build & run:  ./build/examples/pe_failure_recovery

#include <cstdio>

#include "common/table.hpp"
#include "experiments/flow.hpp"
#include "runtime/drc_matrix.hpp"

int main() {
  using namespace clr;
  std::printf("== Permanent PE failure: adapt with the surviving design points ==\n\n");

  const auto app = exp::make_synthetic_app(24, /*seed=*/0xFA11);
  exp::FlowParams params;
  params.dse.base_ga.population = 64;
  params.dse.base_ga.generations = 70;
  params.dse.max_base_points = 40;  // a deeper store helps post-failure coverage
  util::Rng rng(3);
  const auto flow = exp::run_design_flow(*app, params, rng);
  std::printf("healthy platform: %zu PEs; stored points: %zu\n", app->platform().num_pes(),
              flow.red.size());

  // How exposed is the database to each PE?
  util::TextTable exposure("stored-point exposure per PE");
  exposure.set_header({"PE", "type", "points using it", "points surviving its failure"});
  for (const auto& pe : app->platform().pes()) {
    const auto survivors = flow.red.without_pe(pe.id);
    exposure.add_row({std::to_string(pe.id), app->platform().type_of(pe.id).name,
                      std::to_string(flow.red.size() - survivors.size()),
                      std::to_string(survivors.size())});
  }
  std::printf("%s\n", exposure.to_string().c_str());

  // Pick the busiest general-purpose PE as the casualty.
  plat::PeId victim = 0;
  std::size_t max_used = 0;
  for (const auto& pe : app->platform().pes()) {
    const std::size_t used = flow.red.size() - flow.red.without_pe(pe.id).size();
    if (used > max_used) {
      max_used = used;
      victim = pe.id;
    }
  }
  dse::DesignDb survivors = flow.red.without_pe(victim);
  std::printf("failing PE %u (%s): %zu of %zu stored points survive\n", victim,
              app->platform().type_of(victim).name.c_str(), survivors.size(), flow.red.size());
  if (survivors.empty()) {
    // The stored points all used the failed PE (typical when the design-time
    // optimizer load-balances across the whole platform). The paper treats
    // reduced availability as "a separate instance of this scenario" —
    // re-run the design-time DSE with the victim excluded from the binding
    // domain to build a degraded-platform database.
    std::printf("no stored point avoids PE %u: re-exploring the degraded platform...\n", victim);
    util::Rng recovery_rng(5);
    const auto degraded_spec = exp::derive_spec(app->context(), dse::ObjectiveMode::EnergyQos, 48,
                                                0.85, 0.10, recovery_rng);
    dse::MappingProblem degraded_problem(app->context(), degraded_spec,
                                         dse::ObjectiveMode::EnergyQos, {victim});
    recfg::ReconfigModel degraded_reconfig(app->platform(), app->impls());
    dse::DseConfig recovery_cfg;
    recovery_cfg.base_ga.population = 48;
    recovery_cfg.base_ga.generations = 40;
    dse::DesignTimeDse recovery(degraded_problem, degraded_reconfig, recovery_cfg);
    survivors = recovery.run_base(recovery_rng);
    std::printf("degraded-platform DSE: %s\n", survivors.summary().c_str());
  }

  // Phase 1: healthy operation. Phase 2: operation restricted to survivors.
  recfg::ReconfigModel reconfig(app->platform(), app->impls());
  const auto box = exp::qos_ranges(flow);
  rt::QosProcess qos(box);
  rt::SimulationParams sim_params;
  sim_params.total_cycles = 1e5;
  rt::RuntimeSimulator sim(sim_params);

  rt::DrcMatrix healthy_drc(flow.red, reconfig);
  rt::UraPolicy healthy_policy(flow.red, healthy_drc, 0.5);
  util::Rng phase_rng(17);
  const auto healthy = sim.run(flow.red, healthy_policy, qos, phase_rng);

  rt::DrcMatrix degraded_drc(survivors, reconfig);
  rt::UraPolicy degraded_policy(survivors, degraded_drc, 0.5);
  const auto degraded = sim.run(survivors, degraded_policy, qos, phase_rng);

  util::TextTable phases("mission phases (100k cycles each, pRC = 0.5)");
  phases.set_header({"phase", "points", "avg energy", "avg dRC/event", "QoS violations"});
  phases.add_row({"healthy", std::to_string(flow.red.size()),
                  util::TextTable::fmt(healthy.avg_energy, 1),
                  util::TextTable::fmt(healthy.avg_reconfig_cost, 2),
                  std::to_string(healthy.num_infeasible_events)});
  phases.add_row({"after failure", std::to_string(survivors.size()),
                  util::TextTable::fmt(degraded.avg_energy, 1),
                  util::TextTable::fmt(degraded.avg_reconfig_cost, 2),
                  std::to_string(degraded.num_infeasible_events)});
  std::printf("%s\n", phases.to_string().c_str());
  std::printf("the degraded platform keeps operating; QoS violations rise when the demanded\n"
              "requirements exceed what the surviving points can deliver.\ndone.\n");
  return 0;
}
