// JPEG-encoder case study (the application of Fig. 2b): explores how
// cross-layer reliability configurations move the encoder along the
// energy / reliability / makespan trade-off, first for hand-picked CLR
// configurations on a fixed mapping, then with the full design-time DSE.
//
// Build & run:  ./build/examples/jpeg_encoder

#include <cstdio>

#include "common/table.hpp"
#include "experiments/flow.hpp"
#include "schedule/gantt.hpp"

namespace {

using namespace clr;

/// Fixed reference mapping: every task on its fastest compatible PE, with a
/// uniform CLR configuration applied to all tasks.
sched::Configuration uniform_clr_mapping(const exp::AppInstance& app, std::size_t clr_index) {
  const auto& ctx = app.context();
  sched::Configuration cfg;
  cfg.tasks.resize(app.graph().num_tasks());
  for (tg::TaskId t = 0; t < app.graph().num_tasks(); ++t) {
    double best_time = 1e300;
    for (const auto& pe : app.platform().pes()) {
      for (std::size_t i : app.impls().compatible_with(t, pe.type)) {
        const double time =
            app.impls().for_task(t)[i].base_time * app.platform().type_of(pe.id).perf_factor;
        if (time < best_time) {
          best_time = time;
          cfg[t].pe = pe.id;
          cfg[t].impl_index = static_cast<std::uint32_t>(i);
        }
      }
    }
    cfg[t].clr_index = static_cast<std::uint32_t>(clr_index % ctx.clr_space->size());
    cfg[t].priority = static_cast<std::int32_t>(app.graph().num_tasks() - t);
  }
  return cfg;
}

}  // namespace

int main() {
  using namespace clr;
  std::printf("== JPEG encoder (Fig. 2b): cross-layer reliability trade-offs ==\n\n");

  const auto app = exp::make_jpeg_app(/*seed=*/2019);
  std::printf("task graph: %zu tasks, %zu edges (S -> 4x(D,H) -> Q -> Z), period %.0f\n\n",
              app->graph().num_tasks(), app->graph().num_edges(), app->graph().period());

  // --- Part 1: uniform CLR configurations on the fastest mapping. ---
  sched::ListScheduler scheduler;
  util::TextTable sweep("uniform CLR configuration on the fastest mapping");
  sweep.set_header({"CLR configuration", "Sapp", "Fapp", "err %", "Wapp", "Japp"});
  const auto& space = app->clr_space();
  // A representative sample: unprotected, each single layer, two combos.
  for (std::size_t idx : std::vector<std::size_t>{0, 1, 2, 3, 8, 20}) {
    if (idx >= space.size()) continue;
    const auto cfg = uniform_clr_mapping(*app, idx);
    const auto res = scheduler.run(app->context(), cfg);
    sweep.add_row({rel::to_string(space.config(idx)), util::TextTable::fmt(res.makespan, 1),
                   util::TextTable::fmt(res.func_rel, 5),
                   util::TextTable::fmt(100.0 * res.error_rate(), 3),
                   util::TextTable::fmt(res.peak_power, 2), util::TextTable::fmt(res.energy, 1)});
  }
  std::printf("%s\n", sweep.to_string().c_str());

  // --- Part 2: full hybrid design-time DSE. ---
  exp::FlowParams params;
  params.dse.base_ga.population = 64;
  params.dse.base_ga.generations = 80;
  util::Rng rng(99);
  const auto flow = exp::run_design_flow(*app, params, rng);
  std::printf("design-time DSE\n  BaseD: %s\n  ReD:   %s\n\n", flow.based.summary().c_str(),
              flow.red.summary().c_str());

  util::TextTable front("stored design points ('>' = reconfiguration-cost-aware extra)");
  front.set_header({"", "Sapp", "Fapp", "Japp"});
  for (const auto& p : flow.red.points()) {
    front.add_row({p.extra ? ">" : "*", util::TextTable::fmt(p.makespan, 1),
                   util::TextTable::fmt(p.func_rel, 5), util::TextTable::fmt(p.energy, 1)});
  }
  std::printf("%s\n", front.to_string().c_str());

  // --- Part 3: run-time adaptation on the encoder. ---
  exp::RuntimeEvalParams rt_params;
  rt_params.kind = exp::PolicyKind::Ura;
  rt_params.sim.total_cycles = 1e5;
  util::TextTable rt_table("run-time adaptation (100k cycles)");
  rt_table.set_header({"pRC", "avg energy", "avg dRC/event", "#reconfigs"});
  for (double p_rc : {0.0, 0.5, 1.0}) {
    rt_params.p_rc = p_rc;
    const auto stats = exp::evaluate_policy(*app, flow.red, exp::qos_ranges(flow), rt_params, 7);
    rt_table.add_row({util::TextTable::fmt(p_rc, 1), util::TextTable::fmt(stats.avg_energy, 1),
                      util::TextTable::fmt(stats.avg_reconfig_cost, 2),
                      std::to_string(stats.num_reconfigs)});
  }
  std::printf("%s\n", rt_table.to_string().c_str());

  // Bonus: where does the best-energy stored point place the pipeline?
  std::size_t best = 0;
  for (std::size_t i = 0; i < flow.red.size(); ++i) {
    if (flow.red.point(i).energy < flow.red.point(best).energy) best = i;
  }
  const auto& best_cfg = flow.red.point(best).config;
  const auto best_res = scheduler.run(app->context(), best_cfg);
  std::printf("Gantt of the lowest-energy stored point:\n%s\ndone.\n",
              sched::render_gantt(app->context(), best_cfg, best_res).c_str());
  return 0;
}
