// Quickstart: the whole hybrid methodology on one synthetic application.
//
//  1. Generate a TGFF-style 20-task application and the default HMPSoC.
//  2. Run the design-time DSE: Pareto front (BaseD) + reconfiguration-cost-
//     aware extras (ReD).
//  3. Simulate run-time adaptation under a varying QoS requirement with uRA
//     and AuRA, and compare average energy / reconfiguration cost.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "common/table.hpp"
#include "experiments/flow.hpp"

int main() {
  using namespace clr;

  std::printf("== Hybrid dynamic cross-layer reliability: quickstart ==\n\n");

  // 1. Application + platform.
  const auto app = exp::make_synthetic_app(/*num_tasks=*/20, /*seed=*/42);
  std::printf("application: %zu tasks, %zu edges; platform: %zu PEs, %zu PRRs; CLR space: %zu configs\n",
              app->graph().num_tasks(), app->graph().num_edges(), app->platform().num_pes(),
              app->platform().num_prrs(), app->clr_space().size());

  // 2. Design-time DSE (GA parameters follow the paper: pc=0.7, pm=0.03,
  //    tournament of 5).
  exp::FlowParams params;
  params.dse.base_ga.population = 64;
  params.dse.base_ga.generations = 60;
  util::Rng rng(7);
  const exp::FlowResult flow = exp::run_design_flow(*app, params, rng);

  std::printf("\nQoS reference corner: SSPEC <= %.1f, FSPEC >= %.4f\n", flow.spec.max_makespan,
              flow.spec.min_func_rel);
  std::printf("BaseD: %s\n", flow.based.summary().c_str());
  std::printf("ReD:   %s\n", flow.red.summary().c_str());

  // 3. Run-time adaptation: same QoS process over both databases.
  const auto ranges = exp::qos_ranges(flow);
  exp::RuntimeEvalParams rt_params;
  rt_params.sim.total_cycles = 2e5;
  rt_params.sim.trace_events = 0;

  util::TextTable table("run-time adaptation (200k cycles, pRC = 0.5)");
  table.set_header({"policy", "database", "avg energy", "avg dRC/event", "#reconfigs"});
  for (const auto& [name, db] : {std::pair{"BaseD", &flow.based}, std::pair{"ReD", &flow.red}}) {
    for (exp::PolicyKind kind : {exp::PolicyKind::Ura, exp::PolicyKind::Aura}) {
      rt_params.kind = kind;
      rt_params.p_rc = 0.5;
      const auto stats = exp::evaluate_policy(*app, *db, ranges, rt_params, /*seed=*/123);
      table.add_row({kind == exp::PolicyKind::Ura ? "uRA" : "AuRA", name,
                     util::TextTable::fmt(stats.avg_energy, 2),
                     util::TextTable::fmt(stats.avg_reconfig_cost, 2),
                     std::to_string(stats.num_reconfigs)});
    }
  }
  std::printf("\n%s\n", table.to_string().c_str());
  std::printf("done.\n");
  return 0;
}
