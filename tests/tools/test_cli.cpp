// CLI error contract (ISSUE 3 satellite): clrtool must reject unknown
// subcommands, unknown options, malformed numerics and malformed JSON with a
// non-zero exit code and a one-line actionable message — never a silent
// fallback to defaults and never a crash. The tests drive the real binary
// (CLRTOOL_PATH is injected by the build).

#include <gtest/gtest.h>
#include <sys/wait.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <string>
#include <tuple>
#include <utility>

namespace {

std::pair<int, std::string> run_tool(const std::string& args) {
  const std::string cmd = std::string(CLRTOOL_PATH) + " " + args + " 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr);
  std::string output;
  std::array<char, 4096> buffer{};
  while (fgets(buffer.data(), buffer.size(), pipe) != nullptr) output += buffer.data();
  const int status = pclose(pipe);
  const int exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return {exit_code, output};
}

TEST(CliErrors, NoArgumentsPrintsUsageAndFails) {
  const auto [code, out] = run_tool("");
  EXPECT_NE(code, 0);
  EXPECT_NE(out.find("usage:"), std::string::npos);
}

TEST(CliErrors, UnknownSubcommandFails) {
  const auto [code, out] = run_tool("frobnicate");
  EXPECT_NE(code, 0);
  EXPECT_NE(out.find("unknown command 'frobnicate'"), std::string::npos);
}

TEST(CliErrors, UnknownOptionFailsInsteadOfSilentlyDefaulting) {
  const auto [code, out] = run_tool("generate --task 5");  // typo for --tasks
  EXPECT_NE(code, 0);
  EXPECT_NE(out.find("unknown option --task"), std::string::npos);
}

TEST(CliErrors, MalformedIntegerIsRejectedWithTheOffendingValue) {
  const auto [code, out] = run_tool("generate --tasks abc");
  EXPECT_NE(code, 0);
  EXPECT_NE(out.find("option --tasks"), std::string::npos);
  EXPECT_NE(out.find("'abc'"), std::string::npos);
}

TEST(CliErrors, TrailingGarbageInNumberIsRejected) {
  const auto [code, out] = run_tool("generate --tasks 5x");
  EXPECT_NE(code, 0);
  EXPECT_NE(out.find("option --tasks"), std::string::npos);
}

TEST(CliErrors, OutOfRangeNumericIsRejected) {
  const auto [code, out] = run_tool("generate --tasks 0");
  EXPECT_NE(code, 0);
  EXPECT_NE(out.find("--tasks"), std::string::npos);
  EXPECT_NE(out.find(">= 1"), std::string::npos);
}

TEST(CliErrors, NonOptionArgumentIsRejected) {
  const auto [code, out] = run_tool("generate tasks");
  EXPECT_NE(code, 0);
  EXPECT_NE(out.find("expected an --option"), std::string::npos);
}

TEST(CliErrors, MalformedDatabaseJsonFails) {
  const std::string path = ::testing::TempDir() + "clrtool_bad_db.json";
  std::ofstream(path) << "this is { not valid json";
  const auto [code, out] = run_tool("inspect --db " + path);
  EXPECT_NE(code, 0);
  EXPECT_NE(out.find("clrtool:"), std::string::npos);
  std::remove(path.c_str());
}

TEST(CliErrors, MissingDatabaseFileFails) {
  const auto [code, out] = run_tool("inspect --db /nonexistent/definitely_missing.json");
  EXPECT_NE(code, 0);
  EXPECT_FALSE(out.empty());
}

TEST(CliErrors, SimulateRejectsUnknownPolicy) {
  const auto [code, out] = run_tool("simulate --db /tmp/whatever.json --policy wishful");
  EXPECT_NE(code, 0);
  EXPECT_NE(out.find("unknown policy 'wishful'"), std::string::npos);
}

TEST(CliErrors, SimulateRejectsNegativeFaultRate) {
  // Option-layer validation fires before any file I/O for malformed reals.
  const auto [code, out] = run_tool("simulate --db /tmp/whatever.json --fault-rate nope");
  EXPECT_NE(code, 0);
  EXPECT_NE(out.find("option --fault-rate"), std::string::npos);
}

TEST(CliHappyPath, GenerateSucceeds) {
  const auto [code, out] = run_tool("generate --tasks 5 --seed 3");
  EXPECT_EQ(code, 0);
  EXPECT_NE(out.find("generated 5-task application"), std::string::npos);
}

TEST(CliTrace, UnknownCategoryIsRejected) {
  const auto [code, out] =
      run_tool("simulate --tasks 5 --trace /tmp/t.json --trace-categories dse,bogus");
  EXPECT_NE(code, 0);
  EXPECT_NE(out.find("option --trace-categories"), std::string::npos);
  EXPECT_NE(out.find("'bogus'"), std::string::npos);
}

TEST(CliTrace, CategoriesWithoutTraceIsRejected) {
  const auto [code, out] = run_tool("simulate --tasks 5 --trace-categories dse");
  EXPECT_NE(code, 0);
  EXPECT_NE(out.find("--trace-categories requires --trace"), std::string::npos);
}

TEST(CliTrace, SimulateWritesAChromeTraceWithSummary) {
  // The one-shot acceptance path: no --db, so the design flow runs inline and
  // the trace covers DSE + runner + runtime in a single timeline.
  const std::string path = ::testing::TempDir() + "clrtool_trace.json";
  const auto [code, out] = run_tool(
      "simulate --tasks 6 --seed 3 --pop 8 --gens 3 --cycles 2e4 --replications 2 "
      "--jobs 2 --fault-rate 2e-4 --trace " +
      path);
  EXPECT_EQ(code, 0) << out;
  EXPECT_NE(out.find("trace summary"), std::string::npos);
  EXPECT_NE(out.find("written to"), std::string::npos);

  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "trace file missing: " << path;
  std::string text((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.find("\"displayTimeUnit\""), std::string::npos);
  // DSE generation spans, runner cell spans and runtime QoS events all
  // present in one file — the tentpole's acceptance criterion.
  EXPECT_NE(text.find("\"nsga2.generation\""), std::string::npos);
  EXPECT_NE(text.find("\"exp.cell\""), std::string::npos);
  EXPECT_NE(text.find("\"rt.qos_event\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(CliTrace, CategoriesFilterTheTimeline) {
  const std::string path = ::testing::TempDir() + "clrtool_trace_filtered.json";
  const auto [code, out] = run_tool(
      "simulate --tasks 6 --seed 3 --pop 8 --gens 3 --cycles 1e4 "
      "--trace " + path + " --trace-categories runtime");
  EXPECT_EQ(code, 0) << out;
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string text((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("\"rt.qos_event\""), std::string::npos);
  EXPECT_EQ(text.find("\"nsga2.generation\""), std::string::npos);  // dse filtered out
  EXPECT_EQ(text.find("\"exp.cell\""), std::string::npos);          // exp filtered out
  std::remove(path.c_str());
}

TEST(CliSnapshot, ExploreWritesClrdbThatSimulateAndInspectConsume) {
  // End-to-end .clrdb flow: explore persists the binary snapshot (with the
  // DrcMatrix), simulate/inspect load it, and the simulate output is
  // byte-identical to the JSON-database path.
  const std::string clrdb = ::testing::TempDir() + "clrtool_db.clrdb";
  const std::string json = ::testing::TempDir() + "clrtool_db.json";
  const std::string common = "--tasks 6 --seed 5 --pop 8 --gens 3 --db-out ";
  ASSERT_EQ(run_tool("explore " + common + clrdb).first, 0);
  ASSERT_EQ(run_tool("explore " + common + json).first, 0);

  const auto [icode, iout] = run_tool("inspect --db " + clrdb);
  EXPECT_EQ(icode, 0) << iout;
  EXPECT_NE(iout.find("stored design points"), std::string::npos);

  const std::string sim = "simulate --tasks 6 --seed 5 --cycles 5e3 --db ";
  const auto [acode, aout] = run_tool(sim + clrdb);
  const auto [bcode, bout] = run_tool(sim + json);
  EXPECT_EQ(acode, 0) << aout;
  EXPECT_EQ(bcode, 0) << bout;
  EXPECT_EQ(aout, bout);

  std::remove(clrdb.c_str());
  std::remove(json.c_str());
}

TEST(CliSnapshot, CorruptedClrdbFailsWithTypedMessage) {
  const std::string good_path = ::testing::TempDir() + "clrtool_corrupt.clrdb";
  ASSERT_EQ(run_tool("explore --tasks 6 --seed 5 --pop 8 --gens 3 --db-out " + good_path).first,
            0);
  std::ifstream in(good_path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  in.close();
  ASSERT_GT(bytes.size(), 100u);
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0xFF);
  std::ofstream(good_path, std::ios::binary | std::ios::trunc).write(bytes.data(),
                                                                     bytes.size());
  const auto [code, out] =
      run_tool("simulate --tasks 6 --seed 5 --cycles 5e3 --db " + good_path);
  EXPECT_NE(code, 0);
  EXPECT_NE(out.find("snapshot:"), std::string::npos) << out;
  std::remove(good_path.c_str());
}

// --- Checkpoint/resume flags (DESIGN.md §5.12) -------------------------------

TEST(CliCheckpoint, ResumeRequiresCheckpoint) {
  const auto [code, out] = run_tool("explore --tasks 5 --resume");
  EXPECT_NE(code, 0);
  EXPECT_NE(out.find("--resume requires --checkpoint"), std::string::npos);
}

TEST(CliCheckpoint, CheckpointEveryRequiresCheckpoint) {
  const auto [code, out] = run_tool("explore --tasks 5 --checkpoint-every 2");
  EXPECT_NE(code, 0);
  EXPECT_NE(out.find("--checkpoint-every requires --checkpoint"), std::string::npos);
}

TEST(CliCheckpoint, SingleRunSimulateRejectsCheckpointFlags) {
  const auto [code, out] =
      run_tool("simulate --tasks 5 --checkpoint /tmp/x.clrdb");
  EXPECT_NE(code, 0);
  EXPECT_NE(out.find("--replications > 1"), std::string::npos);
}

TEST(CliCheckpoint, StepBudgetInterruptsWithExitCode3AndResumeFinishes) {
  const std::string ckpt = ::testing::TempDir() + "clrtool_ckpt.clrdb";
  const std::string db_full = ::testing::TempDir() + "clrtool_full.clrdb";
  const std::string db_resumed = ::testing::TempDir() + "clrtool_resumed.clrdb";
  std::remove((ckpt + ".a").c_str());
  std::remove((ckpt + ".b").c_str());
  const std::string common = "explore --tasks 6 --seed 5 --pop 8 --gens 4 ";

  // Uninterrupted reference.
  ASSERT_EQ(run_tool(common + "--db-out " + db_full).first, 0);

  // Interrupted leg: exit code 3, actionable message, no db-out yet.
  const auto [icode, iout] = run_tool(common + "--checkpoint " + ckpt +
                                      " --step-budget 3 --db-out " + db_resumed);
  EXPECT_EQ(icode, 3) << iout;
  EXPECT_NE(iout.find("interrupted"), std::string::npos);
  EXPECT_NE(iout.find("--resume to continue"), std::string::npos);
  EXPECT_EQ(std::ifstream(db_resumed).good(), false) << "partial run must not write --db-out";

  // Resume legs share the command line; loop until complete. (The larger
  // budget keeps the leg count small — the red stage spans many boundaries.)
  int code = 3;
  std::string out;
  for (int leg = 0; leg < 32 && code == 3; ++leg) {
    std::tie(code, out) = run_tool(common + "--checkpoint " + ckpt +
                                   " --resume --step-budget 60 --db-out " + db_resumed);
  }
  ASSERT_EQ(code, 0) << out;
  EXPECT_NE(out.find("resumed from checkpoint"), std::string::npos);

  // The resumed run's database is byte-identical to the uninterrupted one.
  std::ifstream a(db_full, std::ios::binary), b(db_resumed, std::ios::binary);
  ASSERT_TRUE(a.good());
  ASSERT_TRUE(b.good());
  const std::string full_bytes((std::istreambuf_iterator<char>(a)),
                               std::istreambuf_iterator<char>());
  const std::string resumed_bytes((std::istreambuf_iterator<char>(b)),
                                  std::istreambuf_iterator<char>());
  EXPECT_EQ(full_bytes, resumed_bytes);

  std::remove(db_full.c_str());
  std::remove(db_resumed.c_str());
  std::remove((ckpt + ".a").c_str());
  std::remove((ckpt + ".b").c_str());
}

TEST(CliCheckpoint, TimeBudgetRejectsNonPositive) {
  const auto [code, out] = run_tool("explore --tasks 5 --time-budget 0");
  EXPECT_NE(code, 0);
  EXPECT_NE(out.find("--time-budget"), std::string::npos);
}

// --- SIGPIPE / broken stdout hardening ---------------------------------------

TEST(CliBrokenPipe, TruncatedStdoutExitsCleanlyNotViaSignal) {
  // `clrtool ... | head -c 0` closes the read end immediately. The tool must
  // not die of SIGPIPE (exit 141): it either finishes (0) or reports the
  // write error (1).
  const std::string rcfile = ::testing::TempDir() + "clrtool_pipe_rc";
  const std::string cmd = std::string("{ ") + CLRTOOL_PATH +
                          " generate --tasks 5 --seed 3 2>/dev/null; echo $? > " + rcfile +
                          "; } | head -c 0";
  ASSERT_EQ(std::system(cmd.c_str()) != -1, true);
  std::ifstream in(rcfile);
  int rc = -1;
  in >> rc;
  EXPECT_TRUE(rc == 0 || rc == 1) << "exit code " << rc << " (141 would mean death by SIGPIPE)";
  std::remove(rcfile.c_str());
}

TEST(CliBrokenPipe, WriteFailureToFullDeviceIsReported) {
  if (!std::ifstream("/dev/full").good()) GTEST_SKIP() << "/dev/full not available";
  const std::string cmd =
      std::string(CLRTOOL_PATH) + " generate --tasks 5 --seed 3 > /dev/full 2>/tmp/clrtool_err";
  const int status = std::system(cmd.c_str());
  ASSERT_NE(status, -1);
  EXPECT_TRUE(WIFEXITED(status));
  EXPECT_NE(WEXITSTATUS(status), 0) << "a failed stdout write must not exit 0";
  std::ifstream err("/tmp/clrtool_err");
  const std::string text((std::istreambuf_iterator<char>(err)), std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("clrtool:"), std::string::npos) << text;
  std::remove("/tmp/clrtool_err");
}

}  // namespace
