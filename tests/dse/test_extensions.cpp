// Tests for the DSE extensions: custom CLR spaces, PE exclusion (reduced
// resource availability), the lifetime objective mode, the system-MTTF
// metric and DesignDb::without_pe.

#include <gtest/gtest.h>

#include "dse/design_time.hpp"
#include "experiments/app.hpp"
#include "experiments/flow.hpp"

namespace clr::dse {
namespace {

TEST(ClrSpaceCustom, PrependsUnprotected) {
  rel::ClrConfig tmr{rel::HwTechnique::PartialTmr, rel::SswTechnique::None,
                     rel::AswTechnique::None, 0};
  rel::ClrSpace space({tmr});
  ASSERT_EQ(space.size(), 2u);
  EXPECT_EQ(space.config(0), rel::ClrConfig{});
  EXPECT_EQ(space.config(1), tmr);
}

TEST(ClrSpaceCustom, KeepsExistingUnprotectedFirst) {
  rel::ClrConfig tmr{rel::HwTechnique::PartialTmr, rel::SswTechnique::None,
                     rel::AswTechnique::None, 0};
  rel::ClrSpace space({rel::ClrConfig{}, tmr});
  ASSERT_EQ(space.size(), 2u);
  EXPECT_EQ(space.config(0), rel::ClrConfig{});
}

TEST(ClrSpaceCustom, EmptyListYieldsUnprotectedOnly) {
  rel::ClrSpace space(std::vector<rel::ClrConfig>{});
  EXPECT_EQ(space.size(), 1u);
  EXPECT_EQ(space.config(0), rel::ClrConfig{});
}

TEST(AppWithSpace, SharesGraphWithPlainFactory) {
  const auto plain = exp::make_synthetic_app(18, 31);
  const auto custom =
      exp::make_synthetic_app_with_space(18, 31, rel::ClrSpace(rel::ClrGranularity::HwOnly));
  EXPECT_EQ(plain->graph().num_edges(), custom->graph().num_edges());
  EXPECT_EQ(custom->clr_space().size(), 3u);
}

TEST(SystemMttf, ComputedAndPositive) {
  const auto app = exp::make_synthetic_app(12, 7);
  MappingProblem prob(app->context(), QosSpec{1e9, 0.0}, ObjectiveMode::EnergyQos);
  util::Rng rng(1);
  const auto res = prob.evaluate_schedule(prob.decode(prob.random_genes(rng)));
  EXPECT_GT(res.system_mttf, 0.0);
}

TEST(SystemMttf, SeriesModelTakesTheWorstPe) {
  // Two identical tasks: on one PE the aging rates add (shorter life) vs
  // spread over two PEs (each PE ages at half the duty).
  plat::Platform hw;
  plat::PeType t;
  const auto tid = hw.add_pe_type(t);
  hw.add_pe(tid);
  hw.add_pe(tid);

  tg::TaskGraph g;
  g.add_task(0);
  g.add_task(0);

  rel::ImplementationSet impls;
  impls.resize(2);
  rel::Implementation impl;
  impl.pe_type = tid;
  impl.base_time = 10.0;
  impls.add(0, impl);
  impls.add(1, impl);

  rel::ClrSpace clr(rel::ClrGranularity::HwOnly);
  sched::EvalContext ctx;
  ctx.graph = &g;
  ctx.platform = &hw;
  ctx.impls = &impls;
  ctx.clr_space = &clr;
  ctx.metrics = rel::MetricsModel(rel::FaultModel{0.0});

  sched::ListScheduler sched;
  sched::Configuration together;
  together.tasks = {{0, 0, 0, 0}, {0, 0, 0, 0}};
  sched::Configuration spread;
  spread.tasks = {{0, 0, 0, 0}, {1, 0, 0, 0}};
  const auto res_together = sched.run(ctx, together);
  const auto res_spread = sched.run(ctx, spread);
  // Together: makespan 20, PE0 duty 100% -> mttf_pe = task_mttf / 1.
  // Spread: makespan 10, each PE duty 100%?? each runs 10 of 10 cycles ->
  // same rate. Both PEs fully busy -> same system MTTF as a single PE at
  // full duty. The interesting comparison: one task only.
  EXPECT_GT(res_together.system_mttf, 0.0);
  EXPECT_GT(res_spread.system_mttf, 0.0);
  // Single task on one PE at full duty:
  sched::Configuration solo_cfg;
  solo_cfg.tasks = {{0, 0, 0, 0}, {1, 0, 0, 0}};
  // For "together", PE0 executes 20 time units over a 20-unit window at the
  // same per-task MTTF as spread; rates: together PE0 = 2*(10/20)/mttf =
  // 1/mttf; spread PE0 = (10/10)/mttf = 1/mttf. Equal.
  EXPECT_NEAR(res_together.system_mttf, res_spread.system_mttf, 1e-6);
}

TEST(SystemMttf, IdlePlatformHasZeroLifetimeMetric) {
  // Degenerate: no tasks -> no used PEs -> metric reports 0 (undefined).
  plat::Platform hw;
  plat::PeType t;
  hw.add_pe(hw.add_pe_type(t));
  tg::TaskGraph g;
  rel::ImplementationSet impls;
  rel::ClrSpace clr(rel::ClrGranularity::HwOnly);
  sched::EvalContext ctx;
  ctx.graph = &g;
  ctx.platform = &hw;
  ctx.impls = &impls;
  ctx.clr_space = &clr;
  const auto res = sched::ListScheduler{}.run(ctx, sched::Configuration{});
  EXPECT_DOUBLE_EQ(res.system_mttf, 0.0);
}

TEST(EnergyLifetimeMode, TwoObjectivesAndMttfIsSecond) {
  const auto app = exp::make_synthetic_app(10, 9);
  MappingProblem prob(app->context(), QosSpec{1e9, 0.0}, ObjectiveMode::EnergyLifetime);
  EXPECT_EQ(prob.num_objectives(), 2u);
  util::Rng rng(2);
  const auto genes = prob.random_genes(rng);
  const auto eval = prob.evaluate(genes);
  const auto res = prob.evaluate_schedule(prob.decode(genes));
  EXPECT_DOUBLE_EQ(eval.objectives[0], res.energy);
  EXPECT_DOUBLE_EQ(eval.objectives[1], -res.system_mttf);
}

TEST(EnergyLifetimeMode, DesignTimeFlowProducesFront) {
  const auto app = exp::make_synthetic_app(12, 11);
  util::Rng rng(3);
  const auto spec =
      exp::derive_spec(app->context(), ObjectiveMode::EnergyLifetime, 32, 0.90, 0.05, rng);
  MappingProblem prob(app->context(), spec, ObjectiveMode::EnergyLifetime);
  recfg::ReconfigModel reconfig(app->platform(), app->impls());
  DseConfig cfg;
  cfg.base_ga.population = 32;
  cfg.base_ga.generations = 20;
  DesignTimeDse flow(prob, reconfig, cfg);
  const auto db = flow.run_base(rng);
  EXPECT_FALSE(db.empty());
}

TEST(ExcludedPes, BindingsAvoidExcludedPe) {
  const auto app = exp::make_synthetic_app(15, 13);
  const plat::PeId victim = 0;
  MappingProblem prob(app->context(), QosSpec{1e9, 0.0}, ObjectiveMode::EnergyQos, {victim});
  util::Rng rng(4);
  for (int trial = 0; trial < 30; ++trial) {
    const auto cfg = prob.decode(prob.random_genes(rng));
    for (const auto& a : cfg.tasks) EXPECT_NE(a.pe, victim);
  }
}

TEST(ExcludedPes, ThrowsWhenNoPeRemains) {
  const auto app = exp::make_synthetic_app(8, 15);
  std::vector<plat::PeId> all;
  for (const auto& pe : app->platform().pes()) all.push_back(pe.id);
  EXPECT_THROW(MappingProblem(app->context(), QosSpec{1e9, 0.0}, ObjectiveMode::EnergyQos, all),
               std::invalid_argument);
}

TEST(WithoutPe, FiltersPointsUsingThePe) {
  DesignDb db;
  auto add = [&](plat::PeId pe0, plat::PeId pe1, int tag) {
    DesignPoint p;
    p.config.tasks.resize(2);
    p.config.tasks[0].pe = pe0;
    p.config.tasks[1].pe = pe1;
    p.config.tasks[0].priority = tag;
    db.add(p);
  };
  add(0, 1, 1);
  add(1, 2, 2);
  add(2, 3, 3);
  const auto survivors = db.without_pe(1);
  ASSERT_EQ(survivors.size(), 1u);
  EXPECT_EQ(survivors.point(0).config.tasks[0].pe, 2u);
  EXPECT_EQ(db.without_pe(9).size(), 3u);  // unused PE removes nothing
}

}  // namespace
}  // namespace clr::dse
