#include "dse/mapping_problem.hpp"

#include <gtest/gtest.h>

#include "experiments/app.hpp"

namespace clr::dse {
namespace {

class MappingProblemTest : public ::testing::Test {
 protected:
  void SetUp() override {
    app_ = exp::make_synthetic_app(12, 777);
    spec_ = QosSpec{1e6, 0.0};  // loose
  }

  std::unique_ptr<exp::AppInstance> app_;
  QosSpec spec_;
};

TEST_F(MappingProblemTest, GeneLayoutIsFourPerTask) {
  MappingProblem prob(app_->context(), spec_, ObjectiveMode::EnergyQos);
  EXPECT_EQ(prob.num_genes(), 4 * app_->graph().num_tasks());
  for (std::size_t i = 0; i < prob.num_genes(); ++i) {
    EXPECT_GE(prob.domain_size(i), 1);
  }
  EXPECT_THROW(prob.domain_size(prob.num_genes()), std::out_of_range);
}

TEST_F(MappingProblemTest, ObjectiveCountPerMode) {
  MappingProblem full(app_->context(), spec_, ObjectiveMode::EnergyQos);
  MappingProblem csp(app_->context(), spec_, ObjectiveMode::CspQos);
  EXPECT_EQ(full.num_objectives(), 3u);
  EXPECT_EQ(csp.num_objectives(), 2u);
}

TEST_F(MappingProblemTest, DecodeAlwaysProducesSchedulableConfigs) {
  MappingProblem prob(app_->context(), spec_, ObjectiveMode::EnergyQos);
  util::Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    const auto genes = prob.random_genes(rng);
    const auto cfg = prob.decode(genes);
    // evaluate_schedule throws on any invalid index/compatibility issue.
    EXPECT_NO_THROW(prob.evaluate_schedule(cfg));
  }
}

TEST_F(MappingProblemTest, EncodeDecodeRoundTrip) {
  MappingProblem prob(app_->context(), spec_, ObjectiveMode::EnergyQos);
  util::Rng rng(6);
  for (int trial = 0; trial < 25; ++trial) {
    const auto cfg = prob.decode(prob.random_genes(rng));
    const auto genes = prob.encode(cfg);
    const auto cfg2 = prob.decode(genes);
    EXPECT_EQ(cfg, cfg2);
  }
}

TEST_F(MappingProblemTest, EvaluationMatchesSchedule) {
  MappingProblem prob(app_->context(), spec_, ObjectiveMode::EnergyQos);
  util::Rng rng(7);
  const auto genes = prob.random_genes(rng);
  const auto eval = prob.evaluate(genes);
  const auto res = prob.evaluate_schedule(prob.decode(genes));
  ASSERT_EQ(eval.objectives.size(), 3u);
  EXPECT_DOUBLE_EQ(eval.objectives[0], res.energy);
  EXPECT_DOUBLE_EQ(eval.objectives[1], res.makespan);
  EXPECT_DOUBLE_EQ(eval.objectives[2], -res.func_rel);
}

TEST_F(MappingProblemTest, LooseSpecIsFeasible) {
  MappingProblem prob(app_->context(), spec_, ObjectiveMode::EnergyQos);
  util::Rng rng(8);
  const auto eval = prob.evaluate(prob.random_genes(rng));
  EXPECT_DOUBLE_EQ(eval.violation, 0.0);
}

TEST_F(MappingProblemTest, ImpossibleSpecIsViolated) {
  QosSpec impossible{1e-6, 1.0};
  MappingProblem prob(app_->context(), impossible, ObjectiveMode::EnergyQos);
  util::Rng rng(9);
  const auto eval = prob.evaluate(prob.random_genes(rng));
  EXPECT_GT(eval.violation, 0.0);
}

TEST_F(MappingProblemTest, RejectsBadSpec) {
  EXPECT_THROW(MappingProblem(app_->context(), QosSpec{0.0, 0.5}, ObjectiveMode::EnergyQos),
               std::invalid_argument);
  EXPECT_THROW(MappingProblem(app_->context(), QosSpec{1.0, 1.5}, ObjectiveMode::EnergyQos),
               std::invalid_argument);
}

TEST_F(MappingProblemTest, EncodeRejectsForeignConfig) {
  MappingProblem prob(app_->context(), spec_, ObjectiveMode::EnergyQos);
  util::Rng rng(10);
  auto cfg = prob.decode(prob.random_genes(rng));
  cfg[0].impl_index = 10000;
  EXPECT_THROW(prob.encode(cfg), std::invalid_argument);
}

TEST(QosSpec, SatisfiedBy) {
  QosSpec spec{100.0, 0.9};
  EXPECT_TRUE(spec.satisfied_by(100.0, 0.9));
  EXPECT_TRUE(spec.satisfied_by(50.0, 0.99));
  EXPECT_FALSE(spec.satisfied_by(100.1, 0.99));
  EXPECT_FALSE(spec.satisfied_by(50.0, 0.89));
}

}  // namespace
}  // namespace clr::dse
