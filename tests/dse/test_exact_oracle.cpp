// Exact Pareto oracle for the design-time GAs (ISSUE 9 satellite).
//
// For tiny mapping instances — 3 tasks on 2-3 PEs with a cut-down CLR menu —
// the 4-genes-per-task space of Eq. (4) is small enough to ENUMERATE
// EXHAUSTIVELY. That enumeration yields the *true* Pareto-optimal set of
// feasible objective vectors, an oracle no sampling-based test can provide:
// the GA fronts (NSGA-II and the hypervolume-fitness GA, both with their raw
// unbounded archives) are then required to EQUAL the oracle exactly on every
// fuzzed instance — not merely to be non-dominated among themselves.
//
// Exactness of the comparison: both the oracle and the GAs evaluate genomes
// through the same MappingProblem (shared schedule memo), so matching
// objective vectors are bit-identical doubles and the set comparison needs no
// tolerance. Instances are fuzzed over application seed, PE subset, CLR menu,
// objective mode and QoS-spec tightness; instances whose genome space exceeds
// the enumeration cap are skipped (the fuzz loop draws until enough fit).

#include "dse/mapping_problem.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "experiments/app.hpp"
#include "moea/hvga.hpp"
#include "moea/nsga2.hpp"

namespace clr::dse {
namespace {

using ObjVec = std::vector<double>;

/// Genome spaces above this are not enumerated (the fuzz loop skips them).
constexpr std::uint64_t kMaxEnumeration = 150000;
/// Valid fuzzed instances each oracle test must check.
constexpr int kRequiredInstances = 50;
/// Fuzz attempts allowed to collect them (constructor throws and cap
/// overruns consume attempts).
constexpr int kMaxAttempts = 400;

/// Insert `v` into a non-dominated set of objective vectors: drop it when a
/// member dominates or equals it, evict members it dominates.
void insert_nondominated(std::vector<ObjVec>& front, const ObjVec& v) {
  for (const ObjVec& m : front) {
    if (m == v || moea::dominates(m, v)) return;
  }
  front.erase(std::remove_if(front.begin(), front.end(),
                             [&](const ObjVec& m) { return moea::dominates(v, m); }),
              front.end());
  front.push_back(v);
}

std::vector<ObjVec> sorted(std::vector<ObjVec> front) {
  std::sort(front.begin(), front.end());
  return front;
}

struct TinyInstance {
  std::unique_ptr<exp::AppInstance> app;
  std::unique_ptr<MappingProblem> problem;
  std::uint64_t genome_space = 0;  ///< Π domain_size(locus)
};

/// Fuzz one tiny instance. Returns nullopt when this seed's draw is not
/// enumerable (space too large) or not schedulable (a task loses every PE).
std::optional<TinyInstance> make_tiny_instance(std::uint64_t seed) {
  util::Rng fuzz(seed * 0x9E3779B97F4A7C15ULL + 1);
  const std::size_t tasks = 3;

  // Cut-down CLR menu: unprotected plus 1-2 fuzzed techniques.
  const std::vector<rel::ClrConfig> menu{
      {rel::HwTechnique::Hardening, rel::SswTechnique::None, rel::AswTechnique::None, 0},
      {rel::HwTechnique::PartialTmr, rel::SswTechnique::None, rel::AswTechnique::None, 0},
      {rel::HwTechnique::None, rel::SswTechnique::Retry, rel::AswTechnique::Checksum, 1},
      {rel::HwTechnique::None, rel::SswTechnique::None, rel::AswTechnique::Hamming, 0},
  };
  std::vector<rel::ClrConfig> picked{menu[fuzz.index(menu.size())]};
  if (fuzz.chance(0.5)) {
    const rel::ClrConfig extra = menu[fuzz.index(menu.size())];
    if (!(extra == picked[0])) picked.push_back(extra);
  }

  TinyInstance inst;
  inst.app = exp::make_synthetic_app_with_space(tasks, 100 + seed, rel::ClrSpace(picked));

  // Keep 2 (mostly) or 3 of the default platform's 5 PEs.
  const std::size_t num_pes = inst.app->platform().num_pes();
  std::vector<plat::PeId> pes(num_pes);
  for (std::size_t i = 0; i < num_pes; ++i) pes[i] = static_cast<plat::PeId>(i);
  fuzz.shuffle(pes);
  const std::size_t keep = fuzz.chance(0.75) ? 2 : 3;
  std::vector<plat::PeId> excluded(pes.begin() + static_cast<std::ptrdiff_t>(keep), pes.end());

  const ObjectiveMode mode = fuzz.chance(0.5) ? ObjectiveMode::EnergyQos : ObjectiveMode::CspQos;

  // Spec tightness: sample the reachable metric ranges through a loose
  // problem, then either keep the loose spec or tighten it into the sampled
  // range (constraint-domination coverage).
  QosSpec spec{1e18, 0.0};
  try {
    MappingProblem probe(inst.app->context(), spec, mode, excluded);
    double ms_lo = 1e300, ms_hi = -1e300, fr_lo = 1e300, fr_hi = -1e300;
    for (int i = 0; i < 32; ++i) {
      const auto m = probe.evaluate_metrics(probe.random_genes(fuzz));
      ms_lo = std::min(ms_lo, m.makespan);
      ms_hi = std::max(ms_hi, m.makespan);
      fr_lo = std::min(fr_lo, m.func_rel);
      fr_hi = std::max(fr_hi, m.func_rel);
    }
    if (fuzz.chance(0.5)) {
      spec.max_makespan = ms_lo + 0.7 * (ms_hi - ms_lo) + 1e-9;
      spec.min_func_rel = std::max(0.0, fr_lo + 0.3 * (fr_hi - fr_lo) - 1e-9);
    }
    inst.problem =
        std::make_unique<MappingProblem>(inst.app->context(), spec, mode, excluded);
  } catch (const std::invalid_argument&) {
    return std::nullopt;  // a task lost every compatible PE
  }

  inst.genome_space = 1;
  for (std::size_t locus = 0; locus < inst.problem->num_genes(); ++locus) {
    inst.genome_space *= static_cast<std::uint64_t>(inst.problem->domain_size(locus));
    if (inst.genome_space > kMaxEnumeration) return std::nullopt;
  }
  return inst;
}

/// The oracle: enumerate EVERY genome of the (mixed-radix) space and keep the
/// non-dominated feasible objective vectors.
std::vector<ObjVec> exact_pareto_front(const MappingProblem& problem) {
  const std::size_t n = problem.num_genes();
  std::vector<int> radix(n);
  for (std::size_t i = 0; i < n; ++i) radix[i] = problem.domain_size(i);
  std::vector<int> genes(n, 0);
  std::vector<ObjVec> front;
  while (true) {
    const moea::Evaluation eval = problem.evaluate(genes);
    if (eval.feasible()) insert_nondominated(front, eval.objectives);
    std::size_t i = 0;
    while (i < n && ++genes[i] == radix[i]) genes[i++] = 0;
    if (i == n) break;
  }
  return sorted(front);
}

/// Non-dominated feasible objective vectors of a GA archive (the archive is
/// already feasible + non-dominated by chromosome; this dedups genomes that
/// map to the same objective vector).
std::vector<ObjVec> archive_front(const moea::ParetoArchive& archive) {
  std::vector<ObjVec> front;
  for (const moea::Individual& m : archive.members()) {
    insert_nondominated(front, m.eval.objectives);
  }
  return sorted(front);
}

enum class Solver { Nsga2, HvGa };

moea::GaParams oracle_ga_params(Solver solver) {
  moea::GaParams params;
  params.population = 64;
  // Tiny genomes (12 loci) need a hotter mutation rate and softer selection
  // than the paper-scale defaults to cover every front extreme, not just the
  // crowded middle. The hypervolume GA gets the larger budget: its scalar
  // fitness pulls the population together, so front coverage relies more on
  // mutation-driven drift than NSGA-II's crowding pressure does.
  params.generations = solver == Solver::HvGa ? 250 : 120;
  params.mutation_prob = solver == Solver::HvGa ? 0.15 : 0.1;
  params.tournament_size = 3;
  params.threads = 1;  // tiny problems — a pool per instance would dominate
  return params;
}

/// HvGa reference/scale calibration, the design_time.cpp recipe shrunk to the
/// oracle scale.
void calibrate(const MappingProblem& problem, util::Rng& rng, std::vector<double>& ref,
               std::vector<double>& scale) {
  const std::size_t dim = problem.num_objectives();
  std::vector<double> lo(dim, 1e300), hi(dim, -1e300);
  for (int i = 0; i < 64; ++i) {
    const auto eval = problem.evaluate(problem.random_genes(rng));
    for (std::size_t k = 0; k < dim; ++k) {
      lo[k] = std::min(lo[k], eval.objectives[k]);
      hi[k] = std::max(hi[k], eval.objectives[k]);
    }
  }
  ref.assign(dim, 0.0);
  scale.assign(dim, 1.0);
  const QosSpec& spec = problem.spec();
  const auto loose = [&](std::size_t k) { return hi[k] + 0.05 * (hi[k] - lo[k]) + 1e-9; };
  if (problem.mode() == ObjectiveMode::EnergyQos) {
    ref = {loose(0), spec.max_makespan, -spec.min_func_rel};
  } else {
    ref = {spec.max_makespan, -spec.min_func_rel};
  }
  for (std::size_t k = 0; k < dim; ++k) {
    const double range = hi[k] - lo[k];
    scale[k] = range > 1e-12 ? 1.0 / range : 1.0;
  }
}

void run_oracle_suite(Solver solver) {
  int checked = 0;
  int nonempty_fronts = 0;
  for (std::uint64_t seed = 0; checked < kRequiredInstances; ++seed) {
    ASSERT_LT(seed, kMaxAttempts) << "fuzzer could not draw " << kRequiredInstances
                                  << " enumerable instances";
    auto inst = make_tiny_instance(seed);
    if (!inst) continue;
    const std::vector<ObjVec> oracle = exact_pareto_front(*inst->problem);
    if (!oracle.empty()) ++nonempty_fronts;

    // Budget: up to kRestarts independent runs whose archives are unioned
    // (restarts are part of the tuned budget, not a weakening — the union
    // must still EQUAL the oracle, and a spurious non-optimal point in any
    // run's archive would survive the union and fail the comparison). The
    // hypervolume GA needs the restarts: its scalar summed-hypervolume
    // fitness does not reward every weakly-contributing front point, so a
    // single trajectory can converge without visiting all of them.
    const int restarts = solver == Solver::HvGa ? 16 : 4;
    std::vector<ObjVec> found;
    for (int restart = 0; restart < restarts && found != oracle; ++restart) {
      util::Rng ga_rng(seed ^ 0x0AC1EULL ^ (static_cast<std::uint64_t>(restart) << 32));
      moea::ParetoArchive archive;
      moea::GaParams params = oracle_ga_params(solver);
      // Heat the later restarts: once the cool trajectories have agreed on
      // the easy points, the remaining misses are isolated genomes that only
      // a more diffusive walk reaches.
      params.mutation_prob = std::min(0.35, params.mutation_prob * (1.0 + 0.25 * restart));
      if (solver == Solver::Nsga2) {
        archive = moea::Nsga2(params).run(*inst->problem, ga_rng).archive;
      } else {
        std::vector<double> ref, scale;
        calibrate(*inst->problem, ga_rng, ref, scale);
        archive = moea::HvGa(params, ref, scale).run(*inst->problem, ga_rng).archive;
      }
      for (const ObjVec& v : archive_front(archive)) insert_nondominated(found, v);
      std::sort(found.begin(), found.end());
    }
    EXPECT_EQ(found, oracle) << "instance seed " << seed << " (space " << inst->genome_space
                             << " genomes): GA front differs from the exhaustive Pareto set";
    ++checked;
  }
  // The sweep must actually exercise the comparison, not vacuously pass on
  // all-infeasible instances.
  EXPECT_GE(nonempty_fronts, kRequiredInstances / 2);
}

TEST(ExactParetoOracle, Nsga2FrontEqualsExhaustiveEnumeration) { run_oracle_suite(Solver::Nsga2); }

TEST(ExactParetoOracle, HvGaFrontEqualsExhaustiveEnumeration) { run_oracle_suite(Solver::HvGa); }

// The oracle itself must be order-independent: enumerating the space in
// reverse yields the same front (guards insert_nondominated against
// order-dependent bugs that would silently weaken both suites above).
TEST(ExactParetoOracle, OracleFrontIsEnumerationOrderIndependent) {
  std::optional<TinyInstance> inst;
  for (std::uint64_t seed = 0; !inst && seed < kMaxAttempts; ++seed) {
    inst = make_tiny_instance(seed);
  }
  ASSERT_TRUE(inst.has_value());
  const MappingProblem& problem = *inst->problem;
  const std::vector<ObjVec> forward = exact_pareto_front(problem);

  const std::size_t n = problem.num_genes();
  std::vector<int> radix(n);
  for (std::size_t i = 0; i < n; ++i) radix[i] = problem.domain_size(i);
  std::vector<int> genes(n);
  for (std::size_t i = 0; i < n; ++i) genes[i] = radix[i] - 1;
  std::vector<ObjVec> front;
  while (true) {
    const moea::Evaluation eval = problem.evaluate(genes);
    if (eval.feasible()) insert_nondominated(front, eval.objectives);
    std::size_t i = 0;
    while (i < n) {
      if (--genes[i] >= 0) break;
      genes[i] = radix[i] - 1;
      ++i;
    }
    if (i == n) break;
  }
  EXPECT_EQ(sorted(std::move(front)), forward);
}

}  // namespace
}  // namespace clr::dse
