#include "dse/design_time.hpp"

#include <gtest/gtest.h>

#include "experiments/app.hpp"
#include "experiments/flow.hpp"

namespace clr::dse {
namespace {

/// Shared small flow (design-time GA runs are the expensive part; one run,
/// many assertions).
class DesignTimeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    app_ = exp::make_synthetic_app(14, 4242).release();
    util::Rng rng(99);
    spec_ = exp::derive_spec(app_->context(), ObjectiveMode::EnergyQos, 48, 0.85, 0.10, rng);
    problem_ = new MappingProblem(app_->context(), spec_, ObjectiveMode::EnergyQos);
    reconfig_ = new recfg::ReconfigModel(app_->platform(), app_->impls());

    DseConfig cfg;
    cfg.base_ga.population = 40;
    cfg.base_ga.generations = 30;
    cfg.red_ga.population = 24;
    cfg.red_ga.generations = 15;
    cfg.max_red_seeds = 6;
    flow_ = new DesignTimeDse(*problem_, *reconfig_, cfg);
    based_ = new DesignDb(flow_->run_base(rng));
    red_ = new DesignDb(flow_->run_red(*based_, rng));
  }

  static void TearDownTestSuite() {
    delete red_;
    delete based_;
    delete flow_;
    delete reconfig_;
    delete problem_;
    delete app_;
    red_ = nullptr;
    based_ = nullptr;
    flow_ = nullptr;
    reconfig_ = nullptr;
    problem_ = nullptr;
    app_ = nullptr;
  }

  static exp::AppInstance* app_;
  static QosSpec spec_;
  static MappingProblem* problem_;
  static recfg::ReconfigModel* reconfig_;
  static DesignTimeDse* flow_;
  static DesignDb* based_;
  static DesignDb* red_;
};

exp::AppInstance* DesignTimeTest::app_ = nullptr;
QosSpec DesignTimeTest::spec_;
MappingProblem* DesignTimeTest::problem_ = nullptr;
recfg::ReconfigModel* DesignTimeTest::reconfig_ = nullptr;
DesignTimeDse* DesignTimeTest::flow_ = nullptr;
DesignDb* DesignTimeTest::based_ = nullptr;
DesignDb* DesignTimeTest::red_ = nullptr;

TEST_F(DesignTimeTest, BaseDbIsNonEmptyAndWithinBudget) {
  ASSERT_FALSE(based_->empty());
  EXPECT_LE(based_->size(), flow_->config().max_base_points);
}

TEST_F(DesignTimeTest, BaseDbPointsAreFeasible) {
  for (const auto& p : based_->points()) {
    EXPECT_LE(p.makespan, spec_.max_makespan);
    EXPECT_GE(p.func_rel, spec_.min_func_rel);
    EXPECT_FALSE(p.extra);
  }
}

TEST_F(DesignTimeTest, BaseDbPointsAreMutuallyNonDominated) {
  const auto& pts = based_->points();
  for (std::size_t i = 0; i < pts.size(); ++i) {
    for (std::size_t j = 0; j < pts.size(); ++j) {
      if (i == j) continue;
      const bool dominates = pts[i].energy <= pts[j].energy &&
                             pts[i].makespan <= pts[j].makespan &&
                             pts[i].func_rel >= pts[j].func_rel &&
                             (pts[i].energy < pts[j].energy ||
                              pts[i].makespan < pts[j].makespan ||
                              pts[i].func_rel > pts[j].func_rel);
      EXPECT_FALSE(dominates) << "point " << i << " dominates " << j;
    }
  }
}

TEST_F(DesignTimeTest, CachedMetricsMatchReEvaluation) {
  for (const auto& p : based_->points()) {
    const auto res = problem_->evaluate_schedule(p.config);
    EXPECT_DOUBLE_EQ(res.energy, p.energy);
    EXPECT_DOUBLE_EQ(res.makespan, p.makespan);
    EXPECT_DOUBLE_EQ(res.func_rel, p.func_rel);
  }
}

TEST_F(DesignTimeTest, RedContainsAllBasePoints) {
  ASSERT_GE(red_->size(), based_->size());
  for (const auto& bp : based_->points()) {
    bool found = false;
    for (const auto& rp : red_->points()) {
      if (rp.config == bp.config) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found);
  }
}

TEST_F(DesignTimeTest, RedExtrasRespectGlobalSpec) {
  for (const auto& p : red_->points()) {
    if (!p.extra) continue;
    EXPECT_LE(p.makespan, spec_.max_makespan * (1.0 + 1e-9));
    EXPECT_GE(p.func_rel, spec_.min_func_rel - 1e-9);
  }
}

TEST_F(DesignTimeTest, RedExtrasAreCheaperToReachThanSomeBasePoint) {
  // Every extra exists because its average dRC to the base set is lower than
  // its seed's; at minimum it must beat the *worst* base point.
  if (red_->num_extra() == 0) GTEST_SKIP() << "no extras found on this seed";
  const auto base_configs = based_->configurations();
  double worst_base = 0.0;
  for (const auto& bp : based_->points()) {
    worst_base = std::max(worst_base, reconfig_->average_drc(bp.config, base_configs));
  }
  for (const auto& p : red_->points()) {
    if (!p.extra) continue;
    EXPECT_LT(reconfig_->average_drc(p.config, base_configs), worst_base);
  }
}

TEST_F(DesignTimeTest, RunRedRejectsEmptyBase) {
  util::Rng rng(1);
  DesignDb empty;
  EXPECT_THROW(flow_->run_red(empty, rng), std::invalid_argument);
}

TEST(RedProblem, RejectsEmptyBaseSet) {
  auto app = exp::make_synthetic_app(8, 5);
  MappingProblem prob(app->context(), QosSpec{1e6, 0.0}, ObjectiveMode::EnergyQos);
  recfg::ReconfigModel reconfig(app->platform(), app->impls());
  DseConfig cfg;
  DesignPoint seed;
  EXPECT_THROW(RedProblem(prob, reconfig, {}, seed, MetricRanges{}, cfg), std::invalid_argument);
}

TEST(DeriveSpec, ProducesAchievableCorner) {
  auto app = exp::make_synthetic_app(10, 6);
  util::Rng rng(2);
  const auto spec =
      exp::derive_spec(app->context(), ObjectiveMode::EnergyQos, 32, 0.85, 0.10, rng);
  EXPECT_GT(spec.max_makespan, 0.0);
  EXPECT_GT(spec.min_func_rel, 0.0);
  EXPECT_LT(spec.min_func_rel, 1.0);
  // A fresh random sample should be feasible reasonably often.
  dse::MappingProblem prob(app->context(), spec, ObjectiveMode::EnergyQos);
  int feasible = 0;
  for (int i = 0; i < 40; ++i) {
    if (prob.evaluate(prob.random_genes(rng)).feasible()) ++feasible;
  }
  EXPECT_GT(feasible, 5);
}

}  // namespace
}  // namespace clr::dse
