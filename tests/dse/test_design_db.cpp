#include "dse/design_db.hpp"

#include <gtest/gtest.h>

namespace clr::dse {
namespace {

DesignPoint make_point(double energy, double makespan, double func_rel, int tag = 0) {
  DesignPoint p;
  p.energy = energy;
  p.makespan = makespan;
  p.func_rel = func_rel;
  // Distinct configurations via the priority field.
  p.config.tasks.resize(1);
  p.config.tasks[0].priority = tag;
  return p;
}

TEST(DesignDb, AddAndQuery) {
  DesignDb db;
  EXPECT_TRUE(db.empty());
  const auto i = db.add(make_point(10, 100, 0.9, 1));
  EXPECT_EQ(i, 0u);
  EXPECT_EQ(db.size(), 1u);
  EXPECT_DOUBLE_EQ(db.point(0).energy, 10.0);
}

TEST(DesignDb, DeduplicatesByConfiguration) {
  DesignDb db;
  db.add(make_point(10, 100, 0.9, 1));
  const auto again = db.add(make_point(99, 999, 0.1, 1));  // same config tag
  EXPECT_EQ(again, 0u);
  EXPECT_EQ(db.size(), 1u);
  EXPECT_DOUBLE_EQ(db.point(0).energy, 10.0);  // first insert wins
}

TEST(DesignDb, FeasibleIndices) {
  DesignDb db;
  db.add(make_point(1, 100, 0.95, 1));
  db.add(make_point(2, 200, 0.99, 2));
  db.add(make_point(3, 50, 0.90, 3));
  const auto feas = db.feasible_indices(QosSpec{150.0, 0.94});
  EXPECT_EQ(feas, (std::vector<std::size_t>{0}));
  const auto all = db.feasible_indices(QosSpec{500.0, 0.0});
  EXPECT_EQ(all.size(), 3u);
  const auto none = db.feasible_indices(QosSpec{10.0, 0.999});
  EXPECT_TRUE(none.empty());
}

TEST(DesignDb, LeastViolatingPrefersFeasible) {
  DesignDb db;
  db.add(make_point(1, 1000, 0.5, 1));   // violates both
  db.add(make_point(2, 100, 0.95, 2));   // feasible
  EXPECT_EQ(db.least_violating(QosSpec{150.0, 0.9}), 1u);
}

TEST(DesignDb, LeastViolatingPicksSmallestViolation) {
  DesignDb db;
  db.add(make_point(1, 200, 0.95, 1));  // makespan 33% over
  db.add(make_point(2, 160, 0.95, 2));  // makespan 6.7% over
  EXPECT_EQ(db.least_violating(QosSpec{150.0, 0.9}), 1u);
}

TEST(DesignDb, LeastViolatingThrowsOnEmpty) {
  DesignDb db;
  EXPECT_THROW(db.least_violating(QosSpec{1.0, 0.5}), std::logic_error);
}

TEST(DesignDb, RangesSpanAllPoints) {
  DesignDb db;
  db.add(make_point(10, 100, 0.90, 1));
  db.add(make_point(30, 80, 0.99, 2));
  const auto r = db.ranges();
  EXPECT_DOUBLE_EQ(r.energy_min, 10.0);
  EXPECT_DOUBLE_EQ(r.energy_max, 30.0);
  EXPECT_DOUBLE_EQ(r.makespan_min, 80.0);
  EXPECT_DOUBLE_EQ(r.makespan_max, 100.0);
  EXPECT_DOUBLE_EQ(r.func_rel_min, 0.90);
  EXPECT_DOUBLE_EQ(r.func_rel_max, 0.99);
}

TEST(DesignDb, NumExtraCountsFlag) {
  DesignDb db;
  auto p = make_point(1, 1, 0.5, 1);
  p.extra = true;
  db.add(p);
  db.add(make_point(2, 2, 0.6, 2));
  EXPECT_EQ(db.num_extra(), 1u);
}

TEST(DesignDb, ConfigurationsExportsAll) {
  DesignDb db;
  db.add(make_point(1, 1, 0.5, 1));
  db.add(make_point(2, 2, 0.6, 2));
  EXPECT_EQ(db.configurations().size(), 2u);
}

TEST(DesignDb, SummaryMentionsCounts) {
  DesignDb db;
  db.add(make_point(1, 1, 0.5, 1));
  EXPECT_NE(db.summary().find("1 points"), std::string::npos);
}

TEST(HashConfiguration, EqualConfigsHashEqually) {
  sched::Configuration a;
  a.tasks.resize(3);
  a.tasks[1].pe = 2;
  a.tasks[1].impl_index = 4;
  a.tasks[2].clr_index = 1;
  a.tasks[2].priority = -7;
  sched::Configuration b = a;
  EXPECT_EQ(hash_configuration(a), hash_configuration(b));
  b.tasks[0].priority = 1;
  EXPECT_NE(hash_configuration(a), hash_configuration(b));  // overwhelmingly likely
}

TEST(DesignDb, HashedIndexMatchesLinearScanDedup) {
  // Property check of the FNV-bucketed duplicate index: inserting a stream of
  // part-fresh / part-duplicate multi-task configurations must behave exactly
  // like the original linear scan — same returned index per insert, same
  // final contents, first insert winning each duplicate group.
  DesignDb db;
  std::vector<sched::Configuration> reference;  // linear-scan ground truth
  std::uint64_t lcg = 88172645463325252ULL;
  const auto next = [&lcg] {
    lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
    return lcg >> 33;
  };
  for (int round = 0; round < 400; ++round) {
    DesignPoint p;
    p.energy = static_cast<double>(round);
    p.config.tasks.resize(1 + next() % 4);
    for (auto& t : p.config.tasks) {
      t.pe = static_cast<plat::PeId>(next() % 3);
      t.impl_index = static_cast<std::uint32_t>(next() % 3);
      t.clr_index = static_cast<std::uint32_t>(next() % 2);
      t.priority = static_cast<int>(next() % 2);
    }
    std::size_t expected = reference.size();
    for (std::size_t i = 0; i < reference.size(); ++i) {
      if (reference[i] == p.config) {
        expected = i;
        break;
      }
    }
    if (expected == reference.size()) reference.push_back(p.config);
    EXPECT_EQ(db.add(p), expected) << "round " << round;
  }
  ASSERT_EQ(db.size(), reference.size());
  EXPECT_LT(db.size(), 400u);  // the modulus guarantees actual duplicates
  for (std::size_t i = 0; i < db.size(); ++i) {
    EXPECT_TRUE(db.point(i).config == reference[i]);
  }
}

TEST(DesignPoint, FeasibleFor) {
  const auto p = make_point(5, 100, 0.95);
  EXPECT_TRUE(p.feasible_for(QosSpec{100.0, 0.95}));
  EXPECT_FALSE(p.feasible_for(QosSpec{99.0, 0.95}));
  EXPECT_FALSE(p.feasible_for(QosSpec{100.0, 0.96}));
}

}  // namespace
}  // namespace clr::dse
