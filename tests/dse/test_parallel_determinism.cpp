// The generate-then-evaluate contract end-to-end: DesignTimeDse::run must
// produce bit-for-bit identical BaseD/ReD databases at any thread count, and
// the schedule memo must eliminate the redundant re-scheduling of archived
// points (DESIGN.md "Parallel evaluation & determinism").

#include <gtest/gtest.h>

#include "dse/design_time.hpp"
#include "experiments/app.hpp"
#include "experiments/flow.hpp"

namespace clr::dse {
namespace {

DseConfig small_config(std::size_t threads) {
  DseConfig cfg;
  cfg.base_ga.population = 24;
  cfg.base_ga.generations = 12;
  cfg.red_ga.population = 16;
  cfg.red_ga.generations = 8;
  cfg.max_red_seeds = 3;
  cfg.calibration_samples = 32;
  cfg.threads = threads;
  return cfg;
}

void expect_identical(const DesignDb& a, const DesignDb& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto& pa = a.point(i);
    const auto& pb = b.point(i);
    EXPECT_TRUE(pa.config == pb.config) << "configs differ at point " << i;
    EXPECT_EQ(pa.energy, pb.energy) << "energy differs at point " << i;
    EXPECT_EQ(pa.makespan, pb.makespan) << "makespan differs at point " << i;
    EXPECT_EQ(pa.func_rel, pb.func_rel) << "func_rel differs at point " << i;
    EXPECT_EQ(pa.extra, pb.extra) << "extra flag differs at point " << i;
  }
}

class ParallelDeterminismTest : public ::testing::Test {
 protected:
  DesignTimeDse::Result run_with(std::size_t threads) const {
    // Fresh problem per run: the schedule memo must not leak results (or
    // their absence) between thread counts.
    MappingProblem problem(app_->context(), spec_, ObjectiveMode::EnergyQos);
    recfg::ReconfigModel reconfig(app_->platform(), app_->impls());
    DesignTimeDse flow(problem, reconfig, small_config(threads));
    util::Rng rng(kRunSeed);
    return flow.run(rng);
  }

  static void SetUpTestSuite() {
    app_ = exp::make_synthetic_app(12, 777).release();
    util::Rng rng(5);
    spec_ = exp::derive_spec(app_->context(), ObjectiveMode::EnergyQos, 48, 0.85, 0.10, rng);
  }

  static void TearDownTestSuite() {
    delete app_;
    app_ = nullptr;
  }

  static constexpr std::uint64_t kRunSeed = 4242;
  static exp::AppInstance* app_;
  static QosSpec spec_;
};

exp::AppInstance* ParallelDeterminismTest::app_ = nullptr;
QosSpec ParallelDeterminismTest::spec_;

TEST_F(ParallelDeterminismTest, FrontsAreThreadCountInvariant) {
  const auto r1 = run_with(1);
  const auto r4 = run_with(4);
  ASSERT_FALSE(r1.based.empty());
  expect_identical(r1.based, r4.based);
  expect_identical(r1.red, r4.red);
}

TEST_F(ParallelDeterminismTest, RunsAreSeedReproducible) {
  const auto a = run_with(2);
  const auto b = run_with(2);
  expect_identical(a.based, b.based);
  expect_identical(a.red, b.red);
}

TEST_F(ParallelDeterminismTest, ScheduleMemoAbsorbsRepeatEvaluations) {
  MappingProblem problem(app_->context(), spec_, ObjectiveMode::EnergyQos);
  recfg::ReconfigModel reconfig(app_->platform(), app_->impls());
  DesignTimeDse flow(problem, reconfig, small_config(1));
  util::Rng rng(kRunSeed);
  const auto result = flow.run(rng);
  ASSERT_FALSE(result.red.empty());

  // Crossover/mutation and ReD front-reseeding re-produce identical genomes
  // constantly — a healthy share of evaluation requests must be memo hits,
  // and every actual scheduler invocation must correspond to a memo miss.
  const auto& cache = problem.schedule_cache();
  EXPECT_GT(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), problem.schedule_runs());

  // An already-evaluated genome must not re-run the scheduler when turned
  // into a design point (the old make_point path re-scheduled every archived
  // point).
  util::Rng probe_rng(1234);
  const auto genes = problem.random_genes(probe_rng);
  const auto runs_before = problem.schedule_runs();
  problem.evaluate(genes);
  EXPECT_EQ(problem.schedule_runs(), runs_before + 1);
  flow.make_point(genes, /*extra=*/false);
  problem.evaluate(genes);
  EXPECT_EQ(problem.schedule_runs(), runs_before + 1);
}

TEST_F(ParallelDeterminismTest, CachedMakePointMatchesDirectEvaluation) {
  MappingProblem problem(app_->context(), spec_, ObjectiveMode::EnergyQos);
  recfg::ReconfigModel reconfig(app_->platform(), app_->impls());
  DesignTimeDse flow(problem, reconfig, small_config(1));
  util::Rng rng(99);
  const auto genes = problem.random_genes(rng);
  const DesignPoint cached = flow.make_point(genes, /*extra=*/true);
  const DesignPoint direct = flow.make_point(problem.decode(genes), /*extra=*/true);
  EXPECT_TRUE(cached.config == direct.config);
  EXPECT_EQ(cached.energy, direct.energy);
  EXPECT_EQ(cached.makespan, direct.makespan);
  EXPECT_EQ(cached.func_rel, direct.func_rel);
  EXPECT_TRUE(cached.extra);
}

}  // namespace
}  // namespace clr::dse
