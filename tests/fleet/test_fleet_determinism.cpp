// Fleet determinism proofs (DESIGN.md §5.13, ISSUE 9 satellite): the
// absolute rule that every fleet aggregate is BIT-identical — plain
// EXPECT_EQ on doubles via the defaulted BlockSum comparison, no tolerances —
// across every shards × jobs combination, with and without fault injection,
// and across a checkpoint/resume interruption that hands the remaining work
// to a differently-partitioned run.
//
// What is (deliberately) NOT claimed: per-shard folds compare across runs
// only at a FIXED shard count. A shard total is a fold of that shard's
// blocks, so changing the shard boundaries regroups the floating-point
// summation — the per-block sums and the flat block-order global fold are
// the invariants that hold at ANY partitioning.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "fleet/fleet.hpp"

namespace clr::fleet {
namespace {

namespace fs = std::filesystem;

dse::DesignDb make_db() {
  dse::DesignDb db;
  auto add = [&](double s, double f, double j, int tag) {
    dse::DesignPoint p;
    p.makespan = s;
    p.func_rel = f;
    p.energy = j;
    p.config.tasks.resize(1);
    p.config.tasks[0].priority = tag;
    db.add(p);
  };
  add(100, 0.95, 50, 0);
  add(120, 0.99, 80, 1);
  add(80, 0.92, 30, 2);
  add(95, 0.97, 60, 3);
  return db;
}

rt::DrcMatrix make_drc() {
  return rt::DrcMatrix(4, {0, 10, 2, 5, 10, 0, 10, 4, 2, 10, 0, 8, 5, 4, 8, 0});
}

dse::MetricRanges make_ranges() {
  dse::MetricRanges r;
  r.makespan_min = 80.0;
  r.makespan_max = 120.0;
  r.func_rel_min = 0.92;
  r.func_rel_max = 0.99;
  r.energy_min = 30.0;
  r.energy_max = 80.0;
  return r;
}

FleetConfig make_config(bool with_faults) {
  FleetConfig config;
  config.devices = 1000;  // 32 blocks of 32 devices + a short 8-device tail
  config.block_size = 32;
  config.seed = 0xDE7ULL;
  config.queue_capacity = 4;  // tiny queues so backpressure is actually hit
  config.params.kind = exp::PolicyKind::Ura;
  config.params.p_rc = 0.4;
  config.params.sim.total_cycles = 1e3;
  config.ranges = make_ranges();
  if (with_faults) {
    config.params.faults.transient_rate = 1e-4;
    config.params.faults.pe_mtbf = 2e4;
    config.params.faults.validate();
    config.params.fault_profiles = {{1.0, 2.0}, {1.4, 1.6}, {0.7, 2.4}, {1.1, 2.1}};
  }
  return config;
}

/// The full ISSUE matrix: shards {1,4,16} × jobs {1,8}.
struct Combo {
  std::size_t shards, jobs;
};
const std::vector<Combo> kMatrix = {{1, 1}, {1, 8}, {4, 1}, {4, 8}, {16, 1}, {16, 8}};

void expect_block_table_identical(const FleetResult& a, const FleetResult& b,
                                  const std::string& what) {
  ASSERT_EQ(a.progress.blocks.size(), b.progress.blocks.size()) << what;
  ASSERT_EQ(a.progress.done, b.progress.done) << what;
  for (std::size_t i = 0; i < a.progress.blocks.size(); ++i) {
    // Defaulted operator==: every counter and double compared bit-for-bit.
    EXPECT_EQ(a.progress.blocks[i], b.progress.blocks[i]) << what << " block " << i;
  }
  EXPECT_EQ(a.summary.totals, b.summary.totals) << what;
  EXPECT_EQ(a.summary.mean_energy, b.summary.mean_energy) << what;
  EXPECT_EQ(a.summary.mean_availability, b.summary.mean_availability) << what;
}

void run_matrix_over(const FleetConfig& base) {
  const auto db = make_db();
  const auto drc = make_drc();

  std::vector<FleetResult> results;
  for (const Combo& combo : kMatrix) {
    FleetConfig config = base;
    config.shards = combo.shards;
    config.jobs = combo.jobs;
    results.push_back(run_fleet(db, drc, nullptr, config));
    ASSERT_TRUE(results.back().complete);
    ASSERT_EQ(results.back().devices_done, base.devices);
  }

  for (std::size_t i = 1; i < results.size(); ++i) {
    expect_block_table_identical(results[i], results[0],
                                 "shards " + std::to_string(kMatrix[i].shards) + " jobs " +
                                     std::to_string(kMatrix[i].jobs));
  }

  // Per-shard folds: identical across job counts at each fixed shard count
  // (matrix entries are laid out in (shards, jobs) pairs).
  for (std::size_t pair = 0; pair < kMatrix.size(); pair += 2) {
    const auto& at_j1 = results[pair].shards;
    const auto& at_j8 = results[pair + 1].shards;
    ASSERT_EQ(at_j1.size(), at_j8.size());
    for (std::size_t s = 0; s < at_j1.size(); ++s) {
      EXPECT_EQ(at_j1[s].totals, at_j8[s].totals)
          << kMatrix[pair].shards << " shards, shard " << s << ": jobs must not affect the fold";
      EXPECT_EQ(at_j1[s].first_device, at_j8[s].first_device);
      EXPECT_EQ(at_j1[s].num_devices, at_j8[s].num_devices);
    }
  }
}

void run_matrix(bool with_faults) { run_matrix_over(make_config(with_faults)); }

TEST(FleetDeterminism, AggregatesBitIdenticalAcrossShardAndJobMatrix) { run_matrix(false); }

TEST(FleetDeterminism, AggregatesBitIdenticalAcrossShardAndJobMatrixWithFaults) {
  run_matrix(true);
}

TEST(FleetDeterminism, MdpPrefetchAggregatesBitIdenticalAcrossShardAndJobMatrix) {
  // ISSUE 10 differential: the MDP policy (one table shared by every worker)
  // plus speculative prefetch must survive the same shards × jobs matrix
  // bit-for-bit — with fault injection on, which exercises the
  // cancel-on-evacuation path of the reconfiguration port.
  FleetConfig config = make_config(true);
  config.params.kind = exp::PolicyKind::Mdp;
  config.params.mdp.makespan_bins = 4;
  config.params.mdp.func_rel_bins = 4;
  config.params.prefetch = true;
  run_matrix_over(config);
}

TEST(FleetDeterminism, PrefetchOffFoldsKeepStallEqualToReconfigCost) {
  // With prefetch off nothing is ever staged: the stall fold must carry the
  // exact bits of the folded reconfiguration cost (same addends, same order)
  // and the hidden/hit/miss counters must be identically zero. This pins the
  // pre-PR accounting: the old folded sum is still reconstructible as
  // stall + hidden on every block.
  const auto db = make_db();
  const auto drc = make_drc();
  const FleetResult r = run_fleet(db, drc, nullptr, make_config(true));
  ASSERT_TRUE(r.complete);
  EXPECT_EQ(r.summary.totals.stall_time_sum, r.summary.totals.reconfig_cost_sum);
  EXPECT_EQ(r.summary.totals.hidden_time_sum, 0.0);
  EXPECT_EQ(r.summary.totals.prefetch_hits, 0u);
  EXPECT_EQ(r.summary.totals.prefetch_misses, 0u);
  for (const auto& block : r.progress.blocks) {
    EXPECT_EQ(block.stall_time_sum, block.reconfig_cost_sum);
    EXPECT_EQ(block.hidden_time_sum, 0.0);
  }
}

TEST(FleetDeterminism, PolicyAndPrefetchKnobsAreHashGuardedOnlyWhenActive) {
  // The param hash is extended ONLY for result-affecting knobs: toggling
  // prefetch or switching to the MDP policy must fence checkpoints, while
  // MDP planning knobs stay inert (hash-invisible) under a non-MDP policy —
  // that is what keeps every pre-PR checkpoint loadable.
  const FleetConfig base = make_config(false);  // Ura, prefetch off
  const std::uint64_t h0 = fleet_param_hash(base);

  FleetConfig prefetch_on = base;
  prefetch_on.params.prefetch = true;
  EXPECT_NE(fleet_param_hash(prefetch_on), h0);

  FleetConfig mdp = base;
  mdp.params.kind = exp::PolicyKind::Mdp;
  const std::uint64_t h_mdp = fleet_param_hash(mdp);
  EXPECT_NE(h_mdp, h0);

  FleetConfig inert = base;
  inert.params.mdp.gamma = 0.5;
  inert.params.mdp.makespan_bins = 3;
  inert.params.prefetch_params.min_observations = 99;
  EXPECT_EQ(fleet_param_hash(inert), h0) << "inactive knobs must not invalidate checkpoints";

  FleetConfig mdp_tuned = mdp;
  mdp_tuned.params.mdp.gamma = 0.5;
  EXPECT_NE(fleet_param_hash(mdp_tuned), h_mdp) << "active MDP knobs are result-affecting";
}

TEST(FleetDeterminism, RepeatedRunsAreBitIdentical) {
  // Same config twice: nothing in the pipeline (queue timing, thread
  // interleaving) may leak into the results.
  const auto db = make_db();
  const auto drc = make_drc();
  FleetConfig config = make_config(true);
  config.shards = 5;
  config.jobs = 3;
  const FleetResult a = run_fleet(db, drc, nullptr, config);
  const FleetResult b = run_fleet(db, drc, nullptr, config);
  expect_block_table_identical(a, b, "repeat");
  ASSERT_EQ(a.shards.size(), b.shards.size());
  for (std::size_t s = 0; s < a.shards.size(); ++s) EXPECT_EQ(a.shards[s].totals, b.shards[s].totals);
}

TEST(FleetDeterminism, CheckpointResumeInterruptionIsInvisibleInTheResult) {
  // Interrupt via step budget at one partitioning, resume (possibly over
  // several legs) at ANOTHER partitioning, and require the final aggregates
  // to carry the exact bits of an uninterrupted run — with faults on.
  const auto db = make_db();
  const auto drc = make_drc();
  const FleetConfig base = make_config(true);

  FleetConfig wide = base;
  wide.shards = 16;
  wide.jobs = 8;
  const FleetResult reference = run_fleet(db, drc, nullptr, wide);
  ASSERT_TRUE(reference.complete);

  const fs::path dir =
      fs::temp_directory_path() / ("clr_fleet_det_" + std::to_string(static_cast<long>(::getpid())));
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string checkpoint = (dir / "fleet.clrdb").string();

  // Leg 1: 16 shards × 2 jobs, stopped after 7 blocks. Two jobs (not eight)
  // bound the post-budget run-ahead: each worker can be at most one block +
  // queue_capacity batches past the accumulator, so 7 budgeted + ~10 in
  // flight stays well short of the 32 blocks and the cut is guaranteed.
  exp::SessionControl control;
  control.checkpoint_path = checkpoint;
  control.checkpoint_every = 2;
  control.resume = true;
  control.step_budget = 7;
  FleetConfig leg1 = base;
  leg1.shards = 16;
  leg1.jobs = 2;
  const FleetSessionOutcome cut = run_fleet_session(db, drc, nullptr, leg1, control);
  ASSERT_FALSE(cut.result.complete);
  ASSERT_GE(cut.checkpoints_written, 1u);

  // Leg 2: finish at 1 shard × 1 job — the checkpoint carries no partitioning
  // residue, so the same file resumes under a totally different layout.
  FleetConfig leg2 = base;
  leg2.shards = 1;
  leg2.jobs = 1;
  control.step_budget = 0;
  const FleetSessionOutcome done = run_fleet_session(db, drc, nullptr, leg2, control);
  ASSERT_TRUE(done.result.complete);
  EXPECT_TRUE(done.resumed);
  EXPECT_LT(done.result.blocks_done_this_run, reference.progress.blocks.size())
      << "the resumed leg must reuse checkpointed blocks, not recompute everything";

  expect_block_table_identical(done.result, reference, "resumed vs uninterrupted");

  fs::remove_all(dir);
}

TEST(FleetDeterminism, QueueCapacityAndBlockTimingNeverAffectResults) {
  const auto db = make_db();
  const auto drc = make_drc();
  const FleetConfig base = make_config(false);
  FleetConfig tight = base;
  tight.queue_capacity = 1;  // rounds up to 2: maximal backpressure
  tight.jobs = 4;
  FleetConfig roomy = base;
  roomy.queue_capacity = 1024;
  roomy.jobs = 4;
  expect_block_table_identical(run_fleet(db, drc, nullptr, tight),
                               run_fleet(db, drc, nullptr, roomy), "queue capacity");
}

TEST(FleetDeterminism, BlockSizeIsResultAffectingAndHashGuarded) {
  // The one partitioning-looking knob that DOES affect results: block_size
  // regroups the double sums. The param hash must fence it (so checkpoints
  // cannot cross), and the integer counters must still agree (they are
  // associative — only the FP grouping changes).
  const auto db = make_db();
  const auto drc = make_drc();
  const FleetConfig a = make_config(false);
  FleetConfig b = a;
  b.block_size = 17;  // deliberately coprime to 32
  EXPECT_NE(fleet_param_hash(a), fleet_param_hash(b));
  const FleetResult ra = run_fleet(db, drc, nullptr, a);
  const FleetResult rb = run_fleet(db, drc, nullptr, b);
  EXPECT_EQ(ra.summary.totals.devices, rb.summary.totals.devices);
  EXPECT_EQ(ra.summary.totals.events, rb.summary.totals.events);
  EXPECT_EQ(ra.summary.totals.reconfigs, rb.summary.totals.reconfigs);
  EXPECT_EQ(ra.summary.totals.max_drc, rb.summary.totals.max_drc) << "max is order-free";
}

}  // namespace
}  // namespace clr::fleet
