// Fleet pipeline unit tests (DESIGN.md §5.13): partition math, block-sum
// algebra, the per-device seeding/equality contract against
// exp::evaluate_policy_with, param-hash sensitivity (block_size in,
// shards/jobs/queue_capacity out), cooperative stop + checkpoint cadence,
// the FleetState checkpoint codec (round trip + hostile bytes), and the
// session layer's budget/resume discipline. The cross-configuration
// bit-identity matrix lives in test_fleet_determinism.cpp.

#include "fleet/fleet.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <vector>

#include "io/checkpoint.hpp"
#include "io/snapshot.hpp"

namespace clr::fleet {
namespace {

namespace fs = std::filesystem;

// --- Fixtures (the tiny hand-built database the runtime tests share) ---------

dse::DesignDb make_db() {
  dse::DesignDb db;
  auto add = [&](double s, double f, double j, int tag) {
    dse::DesignPoint p;
    p.makespan = s;
    p.func_rel = f;
    p.energy = j;
    p.config.tasks.resize(1);
    p.config.tasks[0].priority = tag;
    db.add(p);
  };
  add(100, 0.95, 50, 0);
  add(120, 0.99, 80, 1);
  add(80, 0.92, 30, 2);
  return db;
}

rt::DrcMatrix make_drc() { return rt::DrcMatrix(3, {0, 10, 2, 10, 0, 10, 2, 10, 0}); }

dse::MetricRanges make_ranges() {
  dse::MetricRanges r;
  r.makespan_min = 80.0;
  r.makespan_max = 120.0;
  r.func_rel_min = 0.92;
  r.func_rel_max = 0.99;
  r.energy_min = 30.0;
  r.energy_max = 80.0;
  return r;
}

FleetConfig make_config(std::uint64_t devices = 96, std::uint64_t block_size = 16) {
  FleetConfig config;
  config.devices = devices;
  config.block_size = block_size;
  config.seed = 0xF1EE7ULL;
  config.params.kind = exp::PolicyKind::Ura;
  config.params.p_rc = 0.3;
  config.params.sim.total_cycles = 2e3;
  config.ranges = make_ranges();
  return config;
}

void enable_faults(FleetConfig& config) {
  config.params.faults.transient_rate = 5e-5;
  config.params.faults.pe_mtbf = 5e4;
  config.params.faults.validate();
  config.params.fault_profiles = {{1.0, 2.0}, {1.4, 1.6}, {0.7, 2.4}};
}

class FleetTempDir : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("clr_fleet_" +
            std::string(::testing::UnitTest::GetInstance()->current_test_info()->name()) + "_" +
            std::to_string(static_cast<long>(::getpid())));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }
  std::string path(const std::string& name) const { return (dir_ / name).string(); }
  fs::path dir_;
};

// --- Partition math -----------------------------------------------------------

TEST(FleetPartition, NumBlocksIsCeilOfDevicesOverBlockSize) {
  EXPECT_EQ(fleet_num_blocks(make_config(0, 16)), 0u);
  EXPECT_EQ(fleet_num_blocks(make_config(1, 16)), 1u);
  EXPECT_EQ(fleet_num_blocks(make_config(16, 16)), 1u);
  EXPECT_EQ(fleet_num_blocks(make_config(17, 16)), 2u);
  EXPECT_EQ(fleet_num_blocks(make_config(100000, 1024)), 98u);
}

TEST(FleetPartition, ShardBlockRangesTileTheBlockSpaceExactly) {
  for (std::uint64_t num_blocks : {0, 1, 2, 5, 16, 17, 31}) {
    for (std::size_t shards : {1, 2, 3, 7, 16, 20}) {
      std::uint64_t next = 0;
      std::uint64_t min_count = ~0ULL, max_count = 0;
      for (std::size_t s = 0; s < shards; ++s) {
        const auto [first, count] = shard_block_range(num_blocks, shards, s);
        // Contiguous and in order: shard s starts where s-1 ended.
        EXPECT_EQ(first, next) << num_blocks << " blocks, shard " << s << "/" << shards;
        next = first + count;
        min_count = std::min(min_count, count);
        max_count = std::max(max_count, count);
      }
      EXPECT_EQ(next, num_blocks) << "shards must cover every block exactly once";
      EXPECT_LE(max_count - min_count, 1u) << "split must stay balanced";
    }
  }
}

TEST(FleetPartition, ShardBlockRangeRejectsBadIndices) {
  EXPECT_THROW(shard_block_range(10, 0, 0), std::invalid_argument);
  EXPECT_THROW(shard_block_range(10, 4, 4), std::invalid_argument);
  EXPECT_THROW(shard_block_range(10, 4, 99), std::invalid_argument);
}

// --- Block-sum algebra --------------------------------------------------------

DeviceResult make_result(std::uint64_t device) {
  DeviceResult r;
  r.device = device;
  r.events = 10 + device;
  r.reconfigs = device % 3;
  r.transient_faults = device % 2;
  r.avg_energy = 50.0 + 0.25 * static_cast<double>(device);
  r.total_reconfig_cost = 2.0 * static_cast<double>(device % 5);
  r.qos_violation_time = 0.125 * static_cast<double>(device);
  r.downtime = 0.5 * static_cast<double>(device % 4);
  r.availability = 1.0 - 1e-3 * static_cast<double>(device % 7);
  r.mttr = 3.0 + static_cast<double>(device % 2);
  r.max_drc = static_cast<double>(device % 11);
  return r;
}

TEST(FleetBlockSum, AddThenMergeEqualsOneFlatFoldInTheSameOrder) {
  // Folding devices 0..31 as two 16-device blocks merged in block order must
  // give the exact bits of one flat device-order fold: merge() concatenates
  // sums whose parenthesization matches the block partition.
  BlockSum flat;
  for (std::uint64_t d = 0; d < 32; ++d) flat.add(make_result(d));

  BlockSum b0, b1;
  for (std::uint64_t d = 0; d < 16; ++d) b0.add(make_result(d));
  for (std::uint64_t d = 16; d < 32; ++d) b1.add(make_result(d));
  BlockSum merged = b0;
  merged.merge(b1);

  EXPECT_EQ(merged.devices, 32u);
  EXPECT_EQ(merged.events, flat.events);
  EXPECT_EQ(merged.reconfigs, flat.reconfigs);
  EXPECT_EQ(merged.transient_faults, flat.transient_faults);
  // Integer counters are associative; the double sums agree here because
  // every addend in this synthetic fixture is exactly representable is NOT
  // assumed — we only require the counters and max to be exact and the sums
  // to match the same grouping (checked bitwise in the determinism suite).
  EXPECT_EQ(merged.max_drc, flat.max_drc);
  EXPECT_EQ(merged.devices, flat.devices);
}

TEST(FleetBlockSum, MaxDrcIsOrderFreeMax) {
  BlockSum a, b;
  DeviceResult hi = make_result(3);
  hi.max_drc = 42.0;
  a.add(make_result(0));
  a.add(hi);
  b.add(hi);
  b.add(make_result(0));
  EXPECT_EQ(a.max_drc, 42.0);
  EXPECT_EQ(b.max_drc, 42.0);
}

// --- Seeding + the evaluate_policy_with equality contract ---------------------

TEST(FleetSeeding, DeviceSeedIsAPureDecorrelatedFunctionOfBaseAndId) {
  EXPECT_EQ(device_seed(7, 1000), device_seed(7, 1000));
  EXPECT_NE(device_seed(7, 1000), device_seed(7, 1001));
  EXPECT_NE(device_seed(7, 1000), device_seed(8, 1000));
  // Consecutive ids must not produce near-identical streams: the SplitMix64
  // finalizer separates them even though the raw inputs differ by one
  // golden-ratio step.
  const std::uint64_t a = device_seed(1, 0), b = device_seed(1, 1);
  EXPECT_NE(a >> 32, b >> 32);
}

TEST(FleetSeeding, SimulateDeviceIsBitIdenticalToEvaluatePolicyWith) {
  const auto db = make_db();
  const auto drc = make_drc();
  for (const bool faults : {false, true}) {
    for (const exp::PolicyKind kind :
         {exp::PolicyKind::Baseline, exp::PolicyKind::Ura, exp::PolicyKind::Aura}) {
      FleetConfig config = make_config();
      config.params.kind = kind;
      if (faults) enable_faults(config);
      const rt::QosProcess qos(config.ranges, config.params.qos);
      const rt::RuntimeSimulator sim(config.params.sim);
      for (const std::uint64_t device : {0ULL, 17ULL, 95ULL}) {
        const DeviceResult fleet_result = simulate_device(db, drc, qos, sim, config.params,
                                                          nullptr, device, config.seed);
        const rt::RuntimeStats reference = exp::evaluate_policy_with(
            db, drc, config.ranges, config.params, device_seed(config.seed, device), nullptr);
        // Bitwise equality (plain EXPECT_EQ on doubles), not approximate: the
        // fleet path must BE the reference path under the derived seed.
        EXPECT_EQ(fleet_result.events, reference.num_events);
        EXPECT_EQ(fleet_result.reconfigs, reference.num_reconfigs);
        EXPECT_EQ(fleet_result.infeasible_events, reference.num_infeasible_events);
        EXPECT_EQ(fleet_result.transient_faults, reference.num_transient_faults);
        EXPECT_EQ(fleet_result.recovered_transients, reference.num_recovered_transients);
        EXPECT_EQ(fleet_result.unrecovered_failures, reference.num_unrecovered_failures);
        EXPECT_EQ(fleet_result.permanent_faults, reference.num_permanent_faults);
        EXPECT_EQ(fleet_result.evacuations, reference.num_evacuations);
        EXPECT_EQ(fleet_result.safe_mode_entries, reference.num_safe_mode_entries);
        EXPECT_EQ(fleet_result.avg_energy, reference.avg_energy);
        EXPECT_EQ(fleet_result.total_reconfig_cost, reference.total_reconfig_cost);
        EXPECT_EQ(fleet_result.qos_violation_time, reference.qos_violation_time);
        EXPECT_EQ(fleet_result.downtime, reference.downtime);
        EXPECT_EQ(fleet_result.availability, reference.availability);
        EXPECT_EQ(fleet_result.mttr, reference.mttr);
        EXPECT_EQ(fleet_result.max_drc, reference.max_drc);
      }
    }
  }
}

// --- Param hash ---------------------------------------------------------------

TEST(FleetParamHash, ResultAffectingKnobsChangeTheHash) {
  const FleetConfig base = make_config();
  const std::uint64_t h = fleet_param_hash(base);
  auto mutated = [&](auto&& mutate) {
    FleetConfig c = base;
    mutate(c);
    return fleet_param_hash(c);
  };
  EXPECT_NE(h, mutated([](FleetConfig& c) { c.devices += 1; }));
  EXPECT_NE(h, mutated([](FleetConfig& c) { c.seed += 1; }));
  EXPECT_NE(h, mutated([](FleetConfig& c) { c.block_size *= 2; }));
  EXPECT_NE(h, mutated([](FleetConfig& c) { c.params.kind = exp::PolicyKind::Aura; }));
  EXPECT_NE(h, mutated([](FleetConfig& c) { c.params.p_rc = 0.9; }));
  EXPECT_NE(h, mutated([](FleetConfig& c) { c.params.sim.total_cycles *= 2; }));
  EXPECT_NE(h, mutated([](FleetConfig& c) { c.params.faults.transient_rate = 1e-4; }));
  EXPECT_NE(h, mutated([](FleetConfig& c) { c.params.fault_profiles = {{1.5, 2.0}}; }));
  EXPECT_NE(h, mutated([](FleetConfig& c) { c.ranges.makespan_max += 1.0; }));
}

TEST(FleetParamHash, PartitioningKnobsNeverChangeTheHash) {
  // The checkpoint-compatibility contract: shards, jobs and queue_capacity
  // are pure partitioning/flow-control knobs, so a checkpoint taken at any
  // of them resumes at any other.
  const FleetConfig base = make_config();
  const std::uint64_t h = fleet_param_hash(base);
  FleetConfig c = base;
  c.shards = 16;
  c.jobs = 8;
  c.queue_capacity = 4;
  EXPECT_EQ(h, fleet_param_hash(c));
}

// --- run_fleet validation + control ------------------------------------------

TEST(FleetRun, RejectsZeroBlockSizeAndTracedRuns) {
  const auto db = make_db();
  const auto drc = make_drc();
  FleetConfig bad_block = make_config();
  bad_block.block_size = 0;
  EXPECT_THROW(run_fleet(db, drc, nullptr, bad_block), std::invalid_argument);
  FleetConfig traced = make_config();
  traced.params.sim.trace_events = 10;
  EXPECT_THROW(run_fleet(db, drc, nullptr, traced), std::invalid_argument);
}

TEST(FleetRun, ZeroDevicesCompletesEmpty) {
  const auto db = make_db();
  const auto drc = make_drc();
  const FleetResult result = run_fleet(db, drc, nullptr, make_config(0));
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.devices_done, 0u);
  EXPECT_TRUE(result.progress.blocks.empty());
  EXPECT_EQ(result.summary.totals.devices, 0u);
}

TEST(FleetRun, ResumeRefusesForeignProgress) {
  const auto db = make_db();
  const auto drc = make_drc();
  const FleetConfig config = make_config();
  FleetProgress foreign;
  foreign.param_hash = fleet_param_hash(config) ^ 1;
  foreign.devices = config.devices;
  foreign.block_size = config.block_size;
  foreign.done.assign(static_cast<std::size_t>(fleet_num_blocks(config)), 0);
  foreign.blocks.assign(static_cast<std::size_t>(fleet_num_blocks(config)), BlockSum{});
  FleetControl control;
  control.resume = &foreign;
  EXPECT_THROW(run_fleet(db, drc, nullptr, config, control), std::invalid_argument);
}

TEST(FleetRun, StopAtBlockBoundaryThenResumeMatchesUninterruptedBitwise) {
  const auto db = make_db();
  const auto drc = make_drc();
  FleetConfig config = make_config(256, 16);  // 16 blocks
  config.jobs = 1;
  // The worker pipelines ahead of the accumulator by queue_capacity batches,
  // so a stop armed at accumulation time lands a few blocks later. A tiny
  // queue bounds that run-ahead (~3 blocks) well below the 16-block total.
  config.queue_capacity = 2;

  const FleetResult reference = run_fleet(db, drc, nullptr, config);
  ASSERT_TRUE(reference.complete);

  // Stop once 2 blocks have been accumulated: the run must end incomplete
  // with whole blocks only (all-or-nothing grain).
  util::StopSource stop;
  FleetControl control;
  control.stop = stop.token();
  control.on_block = [&](std::uint64_t done, std::uint64_t) {
    if (done >= 2) stop.request_stop();
  };
  const FleetResult partial = run_fleet(db, drc, nullptr, config, control);
  EXPECT_FALSE(partial.complete);
  EXPECT_LT(partial.progress.blocks_done(), 16u);
  EXPECT_GE(partial.progress.blocks_done(), 2u);
  EXPECT_EQ(partial.devices_done % config.block_size, 0u)
      << "a stopped run must hold whole blocks only";

  // Every completed block already carries its final bits.
  for (std::size_t b = 0; b < partial.progress.done.size(); ++b) {
    if (partial.progress.done[b] != 0) {
      EXPECT_EQ(partial.progress.blocks[b], reference.progress.blocks[b]) << "block " << b;
    }
  }

  FleetControl resume;
  resume.resume = &partial.progress;
  const FleetResult resumed = run_fleet(db, drc, nullptr, config, resume);
  ASSERT_TRUE(resumed.complete);
  EXPECT_EQ(resumed.blocks_done_this_run + partial.progress.blocks_done(), 16u);
  EXPECT_EQ(resumed.progress.blocks, reference.progress.blocks);
  EXPECT_EQ(resumed.summary.totals, reference.summary.totals);
}

TEST(FleetRun, CheckpointCadenceFiresEveryNBlocksAndFlushesAtTheEnd) {
  const auto db = make_db();
  const auto drc = make_drc();
  FleetConfig config = make_config(96, 16);  // 6 blocks
  config.jobs = 1;  // in-order completion makes the cadence points exact
  std::vector<std::uint64_t> checkpoint_blocks;
  FleetControl control;
  control.checkpoint_every = 2;
  control.on_checkpoint = [&](const FleetProgress& p) {
    checkpoint_blocks.push_back(p.blocks_done());
  };
  const FleetResult result = run_fleet(db, drc, nullptr, config, control);
  ASSERT_TRUE(result.complete);
  // 6 blocks at a cadence of 2: checkpoints at 2, 4, 6 completed blocks (the
  // last doubles as the final flush; no extra empty flush after it).
  ASSERT_EQ(checkpoint_blocks.size(), 3u);
  EXPECT_EQ(checkpoint_blocks[0], 2u);
  EXPECT_EQ(checkpoint_blocks[1], 4u);
  EXPECT_EQ(checkpoint_blocks[2], 6u);
}

// --- summarize / summarize_shards --------------------------------------------

TEST(FleetSummarize, ShardSummariesTileTheDeviceRangeAndFoldToTheTotal) {
  const auto db = make_db();
  const auto drc = make_drc();
  const FleetConfig config = make_config(100, 16);  // 7 blocks, short tail
  const FleetResult result = run_fleet(db, drc, nullptr, config);
  ASSERT_TRUE(result.complete);

  for (const std::size_t shards : {1u, 3u, 7u, 9u}) {
    const auto summaries = summarize_shards(result.progress, shards);
    ASSERT_EQ(summaries.size(), shards);
    std::uint64_t devices = 0;
    BlockSum refold;
    for (const ShardSummary& s : summaries) {
      devices += s.num_devices;
      refold.merge(s.totals);
    }
    EXPECT_EQ(devices, 100u) << shards << " shards";
    EXPECT_EQ(refold.devices, result.summary.totals.devices);
    EXPECT_EQ(refold.events, result.summary.totals.events);
    EXPECT_EQ(refold.max_drc, result.summary.totals.max_drc);
  }

  const FleetSummary summary = summarize(result.progress);
  EXPECT_EQ(summary.totals, result.summary.totals);
  EXPECT_EQ(summary.mean_energy, result.summary.mean_energy);
}

// --- FleetState checkpoint codec ---------------------------------------------

io::FleetCheckpoint make_checkpoint() {
  io::FleetCheckpoint c;
  c.sequence = 9;
  c.param_hash = 0xABCDEF0123456789ULL;
  c.progress.param_hash = c.param_hash;
  c.progress.devices = 100;
  c.progress.block_size = 16;
  c.progress.done = {1, 0, 1, 1, 0, 0, 1};
  c.progress.blocks.resize(7);
  for (std::size_t b = 0; b < 7; ++b) {
    if (c.progress.done[b] == 0) continue;
    for (std::uint64_t d = 0; d < 16; ++d) c.progress.blocks[b].add(make_result(b * 16 + d));
  }
  return c;
}

TEST(FleetCheckpointCodec, RoundTripIsFieldExact) {
  const io::FleetCheckpoint c = make_checkpoint();
  const std::string bytes = io::serialize_fleet_checkpoint(c);
  const io::Snapshot snap = io::Snapshot::from_bytes(std::string(bytes));
  EXPECT_EQ(io::checkpoint_sequence(snap.view()), 9u);
  const io::FleetCheckpoint back = io::decode_fleet_checkpoint(snap.view());
  EXPECT_EQ(back.sequence, c.sequence);
  EXPECT_EQ(back.param_hash, c.param_hash);
  EXPECT_EQ(back.progress.param_hash, c.progress.param_hash);
  EXPECT_EQ(back.progress.devices, c.progress.devices);
  EXPECT_EQ(back.progress.block_size, c.progress.block_size);
  EXPECT_EQ(back.progress.done, c.progress.done);
  // BlockSum == is defaulted member-wise comparison: bit-exact doubles.
  EXPECT_EQ(back.progress.blocks, c.progress.blocks);
}

TEST(FleetCheckpointCodec, EveryTruncationSurfacesAsTypedError) {
  const std::string bytes = io::serialize_fleet_checkpoint(make_checkpoint());
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    try {
      const io::Snapshot snap = io::Snapshot::from_bytes(bytes.substr(0, len));
      (void)io::decode_fleet_checkpoint(snap.view());
      FAIL() << "truncation to " << len << " bytes accepted";
    } catch (const io::SnapshotError&) {
      // expected: typed error, never a crash or silent success
    }
  }
}

TEST(FleetCheckpointCodec, EverySingleByteFlipSurfacesAsTypedError) {
  const std::string good = io::serialize_fleet_checkpoint(make_checkpoint());
  for (std::size_t i = 0; i < good.size(); ++i) {
    std::string bad = good;
    bad[i] = static_cast<char>(bad[i] ^ 0x5A);
    try {
      const io::Snapshot snap = io::Snapshot::from_bytes(std::move(bad));
      (void)io::decode_fleet_checkpoint(snap.view());
      FAIL() << "flip at byte " << i << " accepted";
    } catch (const io::SnapshotError&) {
      // expected
    }
  }
}

// --- Session layer ------------------------------------------------------------

TEST_F(FleetTempDir, SessionStepBudgetStopsWholeBlocksAndResumeCompletes) {
  const auto db = make_db();
  const auto drc = make_drc();
  FleetConfig config = make_config(256, 16);  // 16 blocks
  config.jobs = 1;
  config.queue_capacity = 2;  // bound the pipeline run-ahead past the budget

  const FleetResult reference = run_fleet(db, drc, nullptr, config);

  exp::SessionControl control;
  control.checkpoint_path = path("fleet.clrdb");
  control.checkpoint_every = 1;
  control.resume = true;
  control.step_budget = 3;
  const FleetSessionOutcome cut = run_fleet_session(db, drc, nullptr, config, control);
  EXPECT_FALSE(cut.result.complete);
  // The budget arms the stop at exactly 3 accumulated blocks; blocks already
  // in the pipeline still land, so the cut holds at least 3 and well under
  // the total (run-ahead ≤ queue_capacity + 1 blocks).
  EXPECT_GE(cut.result.blocks_done_this_run, 3u);
  EXPECT_LT(cut.result.blocks_done_this_run, 16u);
  EXPECT_EQ(cut.stop_reason, util::StopReason::Budget);
  EXPECT_GE(cut.checkpoints_written, 1u);
  EXPECT_FALSE(cut.resumed);

  control.step_budget = 0;
  const FleetSessionOutcome done = run_fleet_session(db, drc, nullptr, config, control);
  EXPECT_TRUE(done.result.complete);
  EXPECT_TRUE(done.resumed);
  EXPECT_EQ(done.result.blocks_done_this_run + cut.result.blocks_done_this_run, 16u)
      << "resume must not redo finished blocks";
  EXPECT_EQ(done.result.progress.blocks, reference.progress.blocks);
  EXPECT_EQ(done.result.summary.totals, reference.summary.totals);
}

TEST_F(FleetTempDir, SessionResumeRefusesParamHashMismatch) {
  const auto db = make_db();
  const auto drc = make_drc();
  FleetConfig config = make_config(96, 16);

  exp::SessionControl control;
  control.checkpoint_path = path("fleet.clrdb");
  control.checkpoint_every = 1;
  control.resume = true;
  control.step_budget = 2;
  (void)run_fleet_session(db, drc, nullptr, config, control);

  config.seed ^= 0xDEADULL;  // different fleet identity, same checkpoint path
  control.step_budget = 0;
  EXPECT_THROW(run_fleet_session(db, drc, nullptr, config, control), std::runtime_error);
}

TEST(FleetSession, RejectsZeroCadenceAndPathlessResume) {
  const auto db = make_db();
  const auto drc = make_drc();
  exp::SessionControl no_cadence;
  no_cadence.checkpoint_every = 0;
  EXPECT_THROW(run_fleet_session(db, drc, nullptr, make_config(), no_cadence),
               std::invalid_argument);
  exp::SessionControl pathless;
  pathless.checkpoint_every = 1;
  pathless.resume = true;
  EXPECT_THROW(run_fleet_session(db, drc, nullptr, make_config(), pathless),
               std::invalid_argument);
}

}  // namespace
}  // namespace clr::fleet
