// SPSC ring contract tests (DESIGN.md §5.13): strict FIFO, no loss, no
// duplication, bounded backpressure, index wraparound. The Concurrent* tests
// run a real producer/consumer thread pair and are part of the TSan CI leg
// (-R 'Spsc|Fleet'), which is what gives the queue's two-atomic protocol its
// teeth — a missing release/acquire edge shows up as a data-race report, not
// a flaky value check.

#include "fleet/spsc_queue.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <numeric>
#include <thread>
#include <vector>

namespace clr::fleet {
namespace {

TEST(SpscQueue, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscQueue<int>(0).capacity(), 2u);
  EXPECT_EQ(SpscQueue<int>(1).capacity(), 2u);
  EXPECT_EQ(SpscQueue<int>(2).capacity(), 2u);
  EXPECT_EQ(SpscQueue<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscQueue<int>(64).capacity(), 64u);
  EXPECT_EQ(SpscQueue<int>(65).capacity(), 128u);
}

TEST(SpscQueue, FifoOrderSingleThreaded) {
  SpscQueue<int> q(8);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(q.try_push(int(i)));
  for (int i = 0; i < 8; ++i) {
    int out = -1;
    ASSERT_TRUE(q.try_pop(out));
    EXPECT_EQ(out, i);
  }
  int out = -1;
  EXPECT_FALSE(q.try_pop(out));
  EXPECT_EQ(out, -1) << "failed pop must leave the out-slot untouched";
}

TEST(SpscQueue, BackpressureWhenFullNeverDropsOrBlocks) {
  SpscQueue<int> q(4);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(q.try_push(int(i)));
  // Full: pushes are refused (returning, not blocking) until a pop frees a
  // slot, and the refused values are never enqueued.
  EXPECT_FALSE(q.try_push(99));
  EXPECT_FALSE(q.try_push(100));
  int out = -1;
  ASSERT_TRUE(q.try_pop(out));
  EXPECT_EQ(out, 0);
  EXPECT_TRUE(q.try_push(4));
  for (int expected : {1, 2, 3, 4}) {
    ASSERT_TRUE(q.try_pop(out));
    EXPECT_EQ(out, expected);
  }
}

TEST(SpscQueue, WraparoundPreservesFifoAcrossManyCycles) {
  // A capacity-4 ring pushed 10'000 times wraps its slot indices thousands of
  // times; FIFO order and exactly-once delivery must be unaffected.
  SpscQueue<std::uint64_t> q(4);
  std::uint64_t next_push = 0, next_pop = 0;
  while (next_pop < 10'000) {
    while (next_push < 10'000 && q.try_push(std::uint64_t(next_push))) ++next_push;
    std::uint64_t out = ~0ULL;
    while (q.try_pop(out)) {
      ASSERT_EQ(out, next_pop);
      ++next_pop;
    }
  }
  EXPECT_EQ(next_push, 10'000u);
}

TEST(SpscQueue, MoveOnlyPayloadPopsExactlyOnce) {
  // unique_ptr payloads make double-consumption structurally visible: a slot
  // popped twice would surface as a null pointer here.
  SpscQueue<std::unique_ptr<int>> q(8);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(q.try_push(std::make_unique<int>(i)));
    std::unique_ptr<int> out;
    ASSERT_TRUE(q.try_pop(out));
    ASSERT_NE(out, nullptr);
    EXPECT_EQ(*out, i);
  }
}

TEST(SpscQueue, ConcurrentProducerConsumerKeepsFifoWithNoLossNoDuplication) {
  // One real producer thread against one real consumer thread, tiny capacity
  // so the full/empty edges are hit constantly. Strict FIFO makes the check
  // total: the consumer must observe exactly 0,1,2,...,N-1.
  constexpr std::uint64_t kItems = 200'000;
  SpscQueue<std::uint64_t> q(8);
  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kItems; ++i) {
      while (!q.try_push(std::uint64_t(i))) std::this_thread::yield();
    }
  });
  std::uint64_t expected = 0;
  std::uint64_t sum = 0;
  while (expected < kItems) {
    std::uint64_t out = 0;
    if (!q.try_pop(out)) {
      std::this_thread::yield();
      continue;
    }
    ASSERT_EQ(out, expected) << "FIFO violated";
    sum += out;
    ++expected;
  }
  producer.join();
  std::uint64_t final_out = 0;
  EXPECT_FALSE(q.try_pop(final_out)) << "items left after every push was popped";
  EXPECT_EQ(sum, kItems * (kItems - 1) / 2);
}

TEST(SpscQueue, ConcurrentBurstyProducerHitsEmptyAndFullEdges) {
  // Bursty pacing (producer pushes in bursts, consumer drains in bursts)
  // exercises the cached-index refresh paths on both sides under contention.
  constexpr std::uint64_t kItems = 50'000;
  SpscQueue<std::uint64_t> q(16);
  std::thread producer([&] {
    std::uint64_t i = 0;
    while (i < kItems) {
      const std::uint64_t burst = 1 + (i % 23);
      for (std::uint64_t b = 0; b < burst && i < kItems; ++b) {
        while (!q.try_push(std::uint64_t(i))) std::this_thread::yield();
        ++i;
      }
      std::this_thread::yield();
    }
  });
  std::uint64_t expected = 0;
  while (expected < kItems) {
    std::uint64_t out = 0;
    std::size_t drained = 0;
    while (drained < 37 && q.try_pop(out)) {
      ASSERT_EQ(out, expected);
      ++expected;
      ++drained;
    }
    if (drained == 0) std::this_thread::yield();
  }
  producer.join();
  EXPECT_EQ(q.approx_size(), 0u);
}

}  // namespace
}  // namespace clr::fleet
