#include "moea/hvga.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace clr::moea {
namespace {

/// Bi-objective problem with front f1 + f2 = 9 (gene x in [0,9]):
/// objectives (x, 9-x); infeasible beyond the reference handled by HvGa.
class LineProblem : public Problem {
 public:
  std::size_t num_genes() const override { return 1; }
  int domain_size(std::size_t) const override { return 10; }
  std::size_t num_objectives() const override { return 2; }
  Evaluation evaluate(const std::vector<int>& genes) const override {
    const double x = genes[0];
    return Evaluation{{x, 9.0 - x}, 0.0};
  }
};

/// Two-gene problem where the second gene is pure waste (adds to both
/// objectives): the GA must drive it to zero.
class WasteProblem : public Problem {
 public:
  std::size_t num_genes() const override { return 2; }
  int domain_size(std::size_t) const override { return 10; }
  std::size_t num_objectives() const override { return 2; }
  Evaluation evaluate(const std::vector<int>& genes) const override {
    const double x = genes[0];
    const double waste = genes[1];
    return Evaluation{{x + waste, 9.0 - x + waste}, 0.0};
  }
};

TEST(HvGa, MaximizesPointHypervolume) {
  // Reference (10, 10): the max-HV point on the line is x = 4 or 5
  // ((10-4)*(10-5) = 30 = (10-5)*(10-4)).
  LineProblem prob;
  GaParams params;
  params.population = 16;
  params.generations = 20;
  HvGa ga(params, {10.0, 10.0}, {1.0, 1.0});
  util::Rng rng(5);
  const auto result = ga.run(prob, rng);
  EXPECT_DOUBLE_EQ(result.best_fitness, 30.0);
}

TEST(HvGa, ArchiveHoldsTheWholeFront) {
  LineProblem prob;
  GaParams params;
  params.population = 40;
  params.generations = 30;
  HvGa ga(params, {10.0, 10.0}, {1.0, 1.0});
  util::Rng rng(6);
  const auto result = ga.run(prob, rng);
  // All 10 points of the line are mutually non-dominated; a healthy run
  // discovers nearly all of them.
  EXPECT_GE(result.archive.size(), 8u);
}

TEST(HvGa, EliminatesWaste) {
  WasteProblem prob;
  GaParams params;
  params.population = 30;
  params.generations = 40;
  HvGa ga(params, {20.0, 20.0}, {1.0, 1.0});
  util::Rng rng(7);
  const auto result = ga.run(prob, rng);
  // The best individual should carry no waste.
  EXPECT_EQ(result.population.front().genes[1], 0);
}

TEST(HvGa, ReferenceOutsideSpaceYieldsNegativeFitness) {
  // With ref (5,5), points with x > 5 (or 9-x > 5) are "infeasible" in the
  // Fig. 4a sense and receive negative fitness; the GA should still settle
  // on a feasible point.
  LineProblem prob;
  GaParams params;
  params.population = 16;
  params.generations = 20;
  HvGa ga(params, {5.5, 5.5}, {1.0, 1.0});
  util::Rng rng(8);
  const auto result = ga.run(prob, rng);
  // Only x in [4,5] satisfies both (x <= 5.5 and 9-x <= 5.5), each sweeping
  // hypervolume 1.5 * 0.5 = 0.75 toward the reference.
  EXPECT_GE(result.population.front().genes[0], 4);
  EXPECT_LE(result.population.front().genes[0], 5);
  EXPECT_DOUBLE_EQ(result.best_fitness, 0.75);
}

TEST(HvGa, SeededRunIsDeterministic) {
  LineProblem prob;
  GaParams params;
  params.population = 12;
  params.generations = 8;
  HvGa ga(params, {10.0, 10.0}, {1.0, 1.0});
  util::Rng a(9), b(9);
  const auto ra = ga.run(prob, a);
  const auto rb = ga.run(prob, b);
  EXPECT_DOUBLE_EQ(ra.best_fitness, rb.best_fitness);
  ASSERT_EQ(ra.archive.size(), rb.archive.size());
}

/// Counts actual evaluate() calls through the batch pipeline.
class CountingLine : public LineProblem {
 public:
  std::size_t num_genes() const override { return 6; }
  int domain_size(std::size_t) const override { return 50; }
  Evaluation evaluate(const std::vector<int>& genes) const override {
    ++evaluations;
    double x = 0.0;
    for (int g : genes) x += g;
    return Evaluation{{x, 294.0 - x}, 0.0};
  }
  mutable std::size_t evaluations = 0;
};

TEST(HvGa, OddPopulationSkipsTheSurplusOffspringEvaluation) {
  CountingLine prob;
  GaParams params;
  params.population = 7;
  params.generations = 2;
  params.mutation_prob = 0.9;  // keep children distinct from parents/siblings
  params.threads = 1;
  HvGa ga(params, {300.0, 300.0}, {1.0, 1.0});
  util::Rng rng(12);
  ga.run(prob, rng);
  // 7 initial + 7 offspring per generation; the discarded second child of
  // the last pair is no longer evaluated.
  EXPECT_EQ(prob.evaluations, 7u + 2u * 7u);
}

TEST(HvGa, ThreadCountDoesNotChangeTheResult) {
  LineProblem prob;
  GaParams params;
  params.population = 16;
  params.generations = 10;
  params.threads = 1;
  HvGa ga1(params, {10.0, 10.0}, {1.0, 1.0});
  params.threads = 4;
  HvGa ga4(params, {10.0, 10.0}, {1.0, 1.0});
  util::Rng a(13), b(13);
  const auto seq = ga1.run(prob, a);
  const auto par = ga4.run(prob, b);
  EXPECT_DOUBLE_EQ(seq.best_fitness, par.best_fitness);
  ASSERT_EQ(seq.population.size(), par.population.size());
  for (std::size_t i = 0; i < seq.population.size(); ++i) {
    EXPECT_EQ(seq.population[i].genes, par.population[i].genes);
    EXPECT_DOUBLE_EQ(seq.population[i].fitness, par.population[i].fitness);
  }
}

TEST(HvGa, DimensionMismatchThrows) {
  LineProblem prob;
  GaParams params;
  HvGa ga(params, {10.0}, {1.0});  // 1-D reference for a 2-D problem
  util::Rng rng(10);
  EXPECT_THROW(ga.run(prob, rng), std::invalid_argument);
}

TEST(HvGa, RejectsTinyPopulation) {
  LineProblem prob;
  GaParams params;
  params.population = 1;
  HvGa ga(params, {10.0, 10.0}, {1.0, 1.0});
  util::Rng rng(11);
  EXPECT_THROW(ga.run(prob, rng), std::invalid_argument);
}

}  // namespace
}  // namespace clr::moea
