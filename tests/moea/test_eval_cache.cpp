#include "moea/eval_cache.hpp"

#include <gtest/gtest.h>

#include <atomic>

#include "common/parallel.hpp"

namespace clr::moea {
namespace {

/// Deterministic problem that counts how often evaluate() actually runs.
class CountingProblem : public Problem {
 public:
  std::size_t num_genes() const override { return 4; }
  int domain_size(std::size_t) const override { return 1000; }
  std::size_t num_objectives() const override { return 2; }
  Evaluation evaluate(const std::vector<int>& genes) const override {
    evaluations.fetch_add(1, std::memory_order_relaxed);
    double sum = 0.0;
    for (int g : genes) sum += g;
    return Evaluation{{sum, -sum}, genes[0] == 0 ? 1.0 : 0.0};
  }

  mutable std::atomic<std::uint64_t> evaluations{0};
};

TEST(HashGenes, IsDeterministicAndDiscriminates) {
  EXPECT_EQ(hash_genes({1, 2, 3}), hash_genes({1, 2, 3}));
  EXPECT_NE(hash_genes({1, 2, 3}), hash_genes({3, 2, 1}));
  EXPECT_NE(hash_genes({0}), hash_genes({0, 0}));
  EXPECT_NE(hash_genes({-1}), hash_genes({1}));
  hash_genes({});  // empty chromosome must not crash
}

TEST(EvalCache, HitReturnsTheExactCachedEvaluation) {
  EvalCache cache(64);
  const std::vector<int> genes{4, 8, 15, 16};
  const Evaluation stored{{1.25, -3.5, 7.0}, 0.125};
  cache.store(genes, stored);

  Evaluation out;
  ASSERT_TRUE(cache.lookup(genes, &out));
  EXPECT_EQ(out.objectives, stored.objectives);
  EXPECT_EQ(out.violation, stored.violation);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 0u);
}

TEST(EvalCache, MissLeavesOutputUntouchedAndCounts) {
  EvalCache cache(64);
  Evaluation out{{9.0}, 9.0};
  EXPECT_FALSE(cache.lookup({1, 2}, &out));
  EXPECT_EQ(out.objectives, (std::vector<double>{9.0}));
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_DOUBLE_EQ(cache.hit_rate(), 0.0);
}

TEST(EvalCache, StoreOverwritesExistingKey) {
  EvalCache cache(64);
  cache.store({7}, Evaluation{{1.0}, 0.0});
  cache.store({7}, Evaluation{{2.0}, 0.5});
  Evaluation out;
  ASSERT_TRUE(cache.lookup({7}, &out));
  EXPECT_DOUBLE_EQ(out.objectives[0], 2.0);
  EXPECT_DOUBLE_EQ(out.violation, 0.5);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(EvalCache, BoundedSizeEvictsOldestEntries) {
  EvalCache cache(32);  // 2 entries per shard
  for (int i = 0; i < 500; ++i) {
    cache.store({i, i + 1}, Evaluation{{static_cast<double>(i)}, 0.0});
  }
  EXPECT_LE(cache.size(), cache.capacity());
  EXPECT_GT(cache.evictions(), 0u);
  // The newest entry must still be present (FIFO evicts from the front).
  Evaluation out;
  EXPECT_TRUE(cache.lookup({499, 500}, &out));
  EXPECT_DOUBLE_EQ(out.objectives[0], 499.0);
}

TEST(EvalCache, ClearEmptiesEveryShard) {
  EvalCache cache(64);
  for (int i = 0; i < 40; ++i) cache.store({i}, Evaluation{{0.0}, 0.0});
  EXPECT_GT(cache.size(), 0u);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
}

TEST(BatchEvaluator, DeduplicatesIdenticalGenomesWithinABatch) {
  CountingProblem prob;
  BatchEvaluator evaluator(prob, {});
  std::vector<Individual> group(6);
  group[0].genes = {1, 2, 3, 4};
  group[1].genes = {5, 6, 7, 8};
  group[2].genes = {1, 2, 3, 4};  // duplicate of 0
  group[3].genes = {1, 2, 3, 4};  // duplicate of 0
  group[4].genes = {5, 6, 7, 8};  // duplicate of 1
  group[5].genes = {9, 9, 9, 9};
  std::vector<Individual*> batch;
  for (auto& ind : group) batch.push_back(&ind);

  evaluator.evaluate(batch);
  EXPECT_EQ(prob.evaluations.load(), 3u);
  EXPECT_EQ(group[2].eval.objectives, group[0].eval.objectives);
  EXPECT_DOUBLE_EQ(group[0].eval.objectives[0], 10.0);
  EXPECT_DOUBLE_EQ(group[5].eval.objectives[0], 36.0);
}

TEST(BatchEvaluator, CacheSkipsReEvaluationAcrossBatches) {
  CountingProblem prob;
  EvalCache cache(1 << 10);
  BatchEvaluator evaluator(prob, {nullptr, &cache});
  std::vector<Individual> group(3);
  group[0].genes = {1, 0, 0, 0};
  group[1].genes = {2, 0, 0, 0};
  group[2].genes = {3, 0, 0, 0};
  std::vector<Individual*> batch;
  for (auto& ind : group) batch.push_back(&ind);

  evaluator.evaluate(batch);
  EXPECT_EQ(prob.evaluations.load(), 3u);

  // Second batch with the same genomes: pure cache hits.
  for (auto& ind : group) ind.eval = Evaluation{};
  evaluator.evaluate(batch);
  EXPECT_EQ(prob.evaluations.load(), 3u);
  EXPECT_EQ(cache.hits(), 3u);
  EXPECT_DOUBLE_EQ(group[2].eval.objectives[0], 3.0);
}

TEST(BatchEvaluator, ParallelAndSequentialResultsMatch) {
  CountingProblem prob;
  util::ThreadPool pool(4);
  std::vector<Individual> seq(64), par(64);
  for (int i = 0; i < 64; ++i) {
    seq[i].genes = {i, 2 * i, 3 * i, 4 * i};
    par[i].genes = seq[i].genes;
  }
  std::vector<Individual*> seq_batch, par_batch;
  for (auto& ind : seq) seq_batch.push_back(&ind);
  for (auto& ind : par) par_batch.push_back(&ind);

  BatchEvaluator(prob, {}).evaluate(seq_batch);
  BatchEvaluator(prob, {&pool, nullptr}).evaluate(par_batch);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(par[i].eval.objectives, seq[i].eval.objectives) << "individual " << i;
    EXPECT_EQ(par[i].eval.violation, seq[i].eval.violation);
  }
}

}  // namespace
}  // namespace clr::moea
