#include "moea/archive.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace clr::moea {
namespace {

Individual make(std::vector<int> genes, std::vector<double> objs, double violation = 0.0) {
  Individual ind;
  ind.genes = std::move(genes);
  ind.eval.objectives = std::move(objs);
  ind.eval.violation = violation;
  return ind;
}

TEST(ParetoArchive, InsertsNonDominated) {
  ParetoArchive a;
  EXPECT_TRUE(a.insert(make({0}, {1.0, 3.0})));
  EXPECT_TRUE(a.insert(make({1}, {3.0, 1.0})));
  EXPECT_EQ(a.size(), 2u);
}

TEST(ParetoArchive, RejectsDominatedCandidate) {
  ParetoArchive a;
  a.insert(make({0}, {1.0, 1.0}));
  EXPECT_FALSE(a.insert(make({1}, {2.0, 2.0})));
  EXPECT_EQ(a.size(), 1u);
}

TEST(ParetoArchive, EvictsDominatedMembers) {
  ParetoArchive a;
  a.insert(make({0}, {2.0, 2.0}));
  a.insert(make({1}, {3.0, 1.0}));
  EXPECT_TRUE(a.insert(make({2}, {1.0, 1.0})));  // dominates both
  EXPECT_EQ(a.size(), 1u);
  EXPECT_EQ(a.members().front().genes, std::vector<int>{2});
}

TEST(ParetoArchive, RejectsInfeasible) {
  ParetoArchive a;
  EXPECT_FALSE(a.insert(make({0}, {0.0, 0.0}, 1.0)));
  EXPECT_TRUE(a.empty());
}

TEST(ParetoArchive, RejectsDuplicateGenes) {
  ParetoArchive a;
  EXPECT_TRUE(a.insert(make({1, 2}, {1.0, 2.0})));
  EXPECT_FALSE(a.insert(make({1, 2}, {1.0, 2.0})));
  EXPECT_EQ(a.size(), 1u);
}

TEST(ParetoArchive, RejectsDuplicateObjectivePoint) {
  ParetoArchive a;
  EXPECT_TRUE(a.insert(make({0}, {1.0, 2.0})));
  // Different genes, identical objective vector: adds no front value.
  EXPECT_FALSE(a.insert(make({1}, {1.0, 2.0})));
}

TEST(ParetoArchive, NonDominatedQuery) {
  ParetoArchive a;
  a.insert(make({0}, {1.0, 1.0}));
  EXPECT_FALSE(a.non_dominated(Evaluation{{2.0, 2.0}, 0.0}));
  EXPECT_TRUE(a.non_dominated(Evaluation{{0.5, 2.0}, 0.0}));
  EXPECT_TRUE(a.non_dominated(Evaluation{{1.0, 1.0}, 0.0}));  // ties allowed
}

TEST(ParetoArchive, MembersAreMutuallyNonDominated) {
  ParetoArchive a;
  util::Rng rng(77);
  for (int i = 0; i < 200; ++i) {
    a.insert(make({i}, {rng.uniform(), rng.uniform()}));
  }
  const auto& m = a.members();
  for (std::size_t i = 0; i < m.size(); ++i) {
    for (std::size_t j = 0; j < m.size(); ++j) {
      if (i == j) continue;
      EXPECT_FALSE(dominates(m[i].eval.objectives, m[j].eval.objectives));
    }
  }
}

TEST(ParetoArchive, ClearEmpties) {
  ParetoArchive a;
  a.insert(make({0}, {1.0, 1.0}));
  a.clear();
  EXPECT_TRUE(a.empty());
}

}  // namespace
}  // namespace clr::moea
