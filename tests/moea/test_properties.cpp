// Randomized property tests (seeded, deterministic) for the optimization
// substrate: the Pareto archive's structural invariant and hypervolume's
// set-function laws. Each property runs over many derived seeds so a
// regression shows up as a concrete failing seed, reproducible by rerunning
// the test.

#include <algorithm>
#include <array>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "moea/archive.hpp"
#include "moea/hypervolume.hpp"
#include "moea/individual.hpp"

namespace clr::moea {
namespace {

Individual random_individual(util::Rng& rng, int id, std::size_t dims) {
  Individual ind;
  ind.genes = {id};
  ind.eval.objectives.resize(dims);
  for (auto& o : ind.eval.objectives) o = rng.uniform(0.0, 10.0);
  // ~1 in 8 candidates infeasible: the archive must reject them outright.
  ind.eval.violation = rng.chance(0.125) ? rng.uniform(0.1, 1.0) : 0.0;
  return ind;
}

/// Core invariant: no archived member is dominated by (or identical in
/// objectives to) any other member, and none is infeasible.
void expect_archive_invariant(const ParetoArchive& archive) {
  const auto& m = archive.members();
  for (const auto& ind : m) EXPECT_EQ(ind.eval.violation, 0.0);
  for (std::size_t i = 0; i < m.size(); ++i) {
    for (std::size_t j = 0; j < m.size(); ++j) {
      if (i == j) continue;
      EXPECT_FALSE(dominates(m[i].eval.objectives, m[j].eval.objectives))
          << "member " << i << " dominates member " << j;
      EXPECT_NE(m[i].eval.objectives, m[j].eval.objectives)
          << "members " << i << " and " << j << " share an objective point";
    }
  }
}

TEST(ArchiveProperty, NeverHoldsDominatedOrInfeasibleMembers) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    util::Rng rng(util::SplitMix64(seed).next());
    ParetoArchive archive;
    const std::size_t dims = 2 + seed % 2;  // alternate 2-D / 3-D fronts
    for (int i = 0; i < 200; ++i) archive.insert(random_individual(rng, i, dims));
    ASSERT_FALSE(archive.empty()) << "seed " << seed;
    expect_archive_invariant(archive);
  }
}

TEST(ArchiveProperty, InsertReportsExactlyTheSurvivors) {
  // insert() returning true must mean the candidate is now a member;
  // returning false must leave the membership unchanged.
  for (std::uint64_t seed = 100; seed < 110; ++seed) {
    util::Rng rng(util::SplitMix64(seed).next());
    ParetoArchive archive;
    for (int i = 0; i < 150; ++i) {
      const Individual cand = random_individual(rng, i, 2);
      const std::size_t before = archive.size();
      const bool added = archive.insert(cand);
      const auto& m = archive.members();
      const bool present =
          std::any_of(m.begin(), m.end(),
                      [&](const Individual& ind) { return ind.genes == cand.genes; });
      EXPECT_EQ(added, present) << "seed " << seed << " candidate " << i;
      if (!added) EXPECT_EQ(archive.size(), before);
      expect_archive_invariant(archive);
    }
  }
}

TEST(ArchiveProperty, EveryRejectedFeasibleCandidateIsCoveredByAMember) {
  // A feasible candidate the archive refuses must be dominated by — or
  // objective-identical to — something the archive kept.
  util::Rng rng(0xA5A5A5A5ULL);
  ParetoArchive archive;
  for (int i = 0; i < 300; ++i) {
    const Individual cand = random_individual(rng, i, 2);
    if (archive.insert(cand) || cand.eval.violation > 0.0) continue;
    const auto& m = archive.members();
    const bool covered = std::any_of(m.begin(), m.end(), [&](const Individual& ind) {
      return dominates(ind.eval.objectives, cand.eval.objectives) ||
             ind.eval.objectives == cand.eval.objectives;
    });
    EXPECT_TRUE(covered) << "candidate " << i << " rejected but uncovered";
  }
}

TEST(HypervolumeProperty, MonotonicallyNonDecreasingUnderInsertion2d) {
  const std::array<double, 2> ref{10.0, 10.0};
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    util::Rng rng(util::SplitMix64(0x48560000ULL + seed).next());
    std::vector<std::array<double, 2>> points;
    double prev = 0.0;
    for (int i = 0; i < 40; ++i) {
      // Include points outside the reference box: they must contribute 0,
      // never a decrease.
      points.push_back({rng.uniform(0.0, 12.0), rng.uniform(0.0, 12.0)});
      const double hv = hypervolume_2d(points, ref);
      EXPECT_GE(hv, prev - 1e-12) << "seed " << seed << " after point " << i;
      prev = hv;
    }
  }
}

TEST(HypervolumeProperty, MonotonicallyNonDecreasingUnderInsertion3d) {
  const std::array<double, 3> ref{10.0, 10.0, 10.0};
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    util::Rng rng(util::SplitMix64(0x48563000ULL + seed).next());
    std::vector<std::array<double, 3>> points;
    double prev = 0.0;
    for (int i = 0; i < 25; ++i) {
      points.push_back(
          {rng.uniform(0.0, 12.0), rng.uniform(0.0, 12.0), rng.uniform(0.0, 12.0)});
      const double hv = hypervolume_3d(points, ref);
      EXPECT_GE(hv, prev - 1e-12) << "seed " << seed << " after point " << i;
      prev = hv;
    }
  }
}

TEST(HypervolumeProperty, InvariantUnderPermutation) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    util::Rng rng(util::SplitMix64(0x9e70000ULL + seed).next());
    std::vector<std::array<double, 2>> pts2;
    std::vector<std::array<double, 3>> pts3;
    for (int i = 0; i < 30; ++i) {
      pts2.push_back({rng.uniform(0.0, 9.0), rng.uniform(0.0, 9.0)});
      pts3.push_back(
          {rng.uniform(0.0, 9.0), rng.uniform(0.0, 9.0), rng.uniform(0.0, 9.0)});
    }
    const double hv2 = hypervolume_2d(pts2, {10.0, 10.0});
    const double hv3 = hypervolume_3d(pts3, {10.0, 10.0, 10.0});
    for (int shuffle = 0; shuffle < 5; ++shuffle) {
      // Deterministic Fisher-Yates via the seeded Rng.
      for (std::size_t i = pts2.size(); i > 1; --i) {
        std::swap(pts2[i - 1], pts2[rng.index(i)]);
        std::swap(pts3[i - 1], pts3[rng.index(i)]);
      }
      EXPECT_DOUBLE_EQ(hypervolume_2d(pts2, {10.0, 10.0}), hv2) << "seed " << seed;
      EXPECT_DOUBLE_EQ(hypervolume_3d(pts3, {10.0, 10.0, 10.0}), hv3) << "seed " << seed;
    }
  }
}

TEST(HypervolumeProperty, DominatedPointsNeverChangeTheValue) {
  util::Rng rng(0xD0D0ULL);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<std::array<double, 2>> pts;
    for (int i = 0; i < 10; ++i) pts.push_back({rng.uniform(0.0, 5.0), rng.uniform(0.0, 5.0)});
    const double base = hypervolume_2d(pts, {10.0, 10.0});
    // Add a point dominated by an existing one: value must be identical.
    const auto& host = pts[rng.index(pts.size())];
    pts.push_back({host[0] + rng.uniform(0.0, 4.0), host[1] + rng.uniform(0.0, 4.0)});
    EXPECT_DOUBLE_EQ(hypervolume_2d(pts, {10.0, 10.0}), base) << "trial " << trial;
  }
}

}  // namespace
}  // namespace clr::moea
