#include "moea/individual.hpp"

#include <gtest/gtest.h>

namespace clr::moea {
namespace {

TEST(Dominates, StrictDominance) {
  EXPECT_TRUE(dominates({1.0, 1.0}, {2.0, 2.0}));
  EXPECT_TRUE(dominates({1.0, 2.0}, {2.0, 2.0}));  // better in one, equal other
  EXPECT_FALSE(dominates({1.0, 3.0}, {2.0, 2.0}));  // trade-off
  EXPECT_FALSE(dominates({2.0, 2.0}, {2.0, 2.0}));  // equal does not dominate
  EXPECT_FALSE(dominates({3.0, 3.0}, {2.0, 2.0}));
}

TEST(Dominates, DimensionMismatchThrows) {
  EXPECT_THROW(dominates({1.0}, {1.0, 2.0}), std::invalid_argument);
}

TEST(Dominates, SingleObjective) {
  EXPECT_TRUE(dominates({1.0}, {2.0}));
  EXPECT_FALSE(dominates({2.0}, {1.0}));
}

TEST(ConstrainedDominates, FeasibleBeatsInfeasible) {
  Evaluation feasible{{10.0, 10.0}, 0.0};
  Evaluation infeasible{{1.0, 1.0}, 0.5};
  EXPECT_TRUE(constrained_dominates(feasible, infeasible));
  EXPECT_FALSE(constrained_dominates(infeasible, feasible));
}

TEST(ConstrainedDominates, InfeasiblesCompareByViolation) {
  Evaluation worse{{1.0, 1.0}, 0.9};
  Evaluation better{{9.0, 9.0}, 0.1};
  EXPECT_TRUE(constrained_dominates(better, worse));
  EXPECT_FALSE(constrained_dominates(worse, better));
}

TEST(ConstrainedDominates, FeasiblesCompareByPareto) {
  Evaluation a{{1.0, 2.0}, 0.0};
  Evaluation b{{2.0, 3.0}, 0.0};
  Evaluation c{{0.5, 4.0}, 0.0};
  EXPECT_TRUE(constrained_dominates(a, b));
  EXPECT_FALSE(constrained_dominates(a, c));
  EXPECT_FALSE(constrained_dominates(c, a));
}

TEST(Evaluation, FeasibleThreshold) {
  EXPECT_TRUE((Evaluation{{}, 0.0}).feasible());
  EXPECT_TRUE((Evaluation{{}, -1.0}).feasible());
  EXPECT_FALSE((Evaluation{{}, 1e-9}).feasible());
}

}  // namespace
}  // namespace clr::moea
