// Resume determinism for both GA engines (DESIGN.md §5.12): a run stopped at
// any generation boundary and resumed from the reported GaState must be
// bit-identical to the uninterrupted run — population, archive and RNG stream.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/parallel.hpp"
#include "moea/control.hpp"
#include "moea/hvga.hpp"
#include "moea/nsga2.hpp"

namespace clr::moea {
namespace {

/// Bi-objective problem with front f1 + f2 = 9 (gene x in [0,9]).
class LineProblem : public Problem {
 public:
  std::size_t num_genes() const override { return 1; }
  int domain_size(std::size_t) const override { return 10; }
  std::size_t num_objectives() const override { return 2; }
  Evaluation evaluate(const std::vector<int>& genes) const override {
    const double x = genes[0];
    return Evaluation{{x, 9.0 - x}, 0.0};
  }
};

/// Two-gene variant with a constraint, so rank/crowding/violation all carry
/// real information through the round-trip.
class ConstrainedProblem : public Problem {
 public:
  std::size_t num_genes() const override { return 2; }
  int domain_size(std::size_t) const override { return 8; }
  std::size_t num_objectives() const override { return 2; }
  Evaluation evaluate(const std::vector<int>& genes) const override {
    const double x = genes[0];
    const double y = genes[1];
    return Evaluation{{x + y, 7.0 - x + y}, x + y > 10.0 ? x + y - 10.0 : 0.0};
  }
};

void expect_same_individuals(const std::vector<Individual>& a, const std::vector<Individual>& b,
                             const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].genes, b[i].genes) << what << " genes, slot " << i;
    ASSERT_EQ(a[i].eval.objectives.size(), b[i].eval.objectives.size()) << what << " slot " << i;
    for (std::size_t k = 0; k < a[i].eval.objectives.size(); ++k) {
      EXPECT_DOUBLE_EQ(a[i].eval.objectives[k], b[i].eval.objectives[k])
          << what << " objective " << k << ", slot " << i;
    }
    EXPECT_DOUBLE_EQ(a[i].eval.violation, b[i].eval.violation) << what << " slot " << i;
    EXPECT_DOUBLE_EQ(a[i].fitness, b[i].fitness) << what << " slot " << i;
    EXPECT_EQ(a[i].rank, b[i].rank) << what << " slot " << i;
    EXPECT_DOUBLE_EQ(a[i].crowding, b[i].crowding) << what << " slot " << i;
  }
}

GaParams small_params() {
  GaParams params;
  params.population = 12;
  params.generations = 8;
  return params;
}

// Run `engine.run` uninterrupted, then re-run stopping at every possible
// boundary and resuming from the captured state; every resumed run must
// reproduce the uninterrupted result bit-exactly.
template <typename Engine, typename Result>
void check_resume_equivalence(const Engine& engine, const Problem& prob, std::uint64_t seed) {
  util::Rng full_rng(seed);
  std::uint64_t boundaries = 0;
  GaRunControl count_control;
  count_control.on_boundary = [&](const GaState&) { ++boundaries; };
  const Result full = engine.run(prob, full_rng, {}, {}, &count_control);
  ASSERT_TRUE(full.complete);
  // init (generations_done = 0) plus one per generation.
  ASSERT_EQ(boundaries, engine.params().generations + 1);

  for (std::uint64_t stop_at = 0; stop_at <= engine.params().generations; ++stop_at) {
    SCOPED_TRACE("stop at boundary " + std::to_string(stop_at));

    // First leg: run until the chosen boundary, capture state, stop.
    util::StopSource stop;
    GaState saved;
    GaRunControl first_control;
    first_control.stop = stop.token();
    first_control.on_boundary = [&](const GaState& s) {
      if (s.generations_done == stop_at) {
        saved = s;
        stop.request_stop();
      }
    };
    util::Rng first_rng(seed);
    const Result first = engine.run(prob, first_rng, {}, {}, &first_control);
    ASSERT_EQ(saved.generations_done, stop_at);
    ASSERT_FALSE(saved.rng_state.empty());
    if (stop_at < engine.params().generations) {
      EXPECT_FALSE(first.complete);
    } else {
      EXPECT_TRUE(first.complete);  // stop requested after the final boundary
    }

    // Second leg: resume from the captured state with a throwaway-seeded RNG
    // (resume must restore the true stream) and run to completion. The
    // resumed boundary itself is not re-fired.
    GaRunControl resume_control;
    resume_control.resume = &saved;
    std::uint64_t resumed_boundaries = 0;
    resume_control.on_boundary = [&](const GaState& s) {
      ++resumed_boundaries;
      EXPECT_GT(s.generations_done, stop_at);
    };
    util::Rng resume_rng(seed ^ 0x9E3779B97F4A7C15ULL);
    const Result resumed = engine.run(prob, resume_rng, {}, {}, &resume_control);
    EXPECT_TRUE(resumed.complete);
    EXPECT_EQ(resumed_boundaries, engine.params().generations - stop_at);

    expect_same_individuals(full.population, resumed.population, "population");
    expect_same_individuals(full.archive.members(), resumed.archive.members(), "archive");
  }
}

TEST(GaResume, HvGaResumedRunIsBitIdenticalAtEveryBoundary) {
  LineProblem prob;
  HvGa ga(small_params(), {10.0, 10.0}, {1.0, 1.0});
  check_resume_equivalence<HvGa, HvGa::Result>(ga, prob, 41);
}

TEST(GaResume, HvGaResumePreservesBestFitness) {
  ConstrainedProblem prob;
  HvGa ga(small_params(), {12.0, 12.0}, {1.0, 1.0});
  util::Rng full_rng(99);
  const auto full = ga.run(prob, full_rng);

  util::StopSource stop;
  GaState saved;
  GaRunControl control;
  control.stop = stop.token();
  control.on_boundary = [&](const GaState& s) {
    if (s.generations_done == 3) {
      saved = s;
      stop.request_stop();
    }
  };
  util::Rng rng(99);
  (void)ga.run(prob, rng, {}, {}, &control);

  GaRunControl resume;
  resume.resume = &saved;
  util::Rng resume_rng(1);
  const auto resumed = ga.run(prob, resume_rng, {}, {}, &resume);
  EXPECT_DOUBLE_EQ(full.best_fitness, resumed.best_fitness);
}

TEST(GaResume, Nsga2ResumedRunIsBitIdenticalAtEveryBoundary) {
  ConstrainedProblem prob;
  Nsga2 ga(small_params());
  check_resume_equivalence<Nsga2, MoeaResult>(ga, prob, 43);
}

TEST(GaResume, StopBeforeFirstGenerationStillReportsInitBoundary) {
  // A pre-stopped token must still evaluate the initial population and
  // report the generations_done = 0 boundary — otherwise a run killed
  // immediately after launch would leave nothing to resume from.
  LineProblem prob;
  Nsga2 ga(small_params());
  util::StopSource stop;
  stop.request_stop();
  GaRunControl control;
  control.stop = stop.token();
  std::vector<std::uint64_t> seen;
  control.on_boundary = [&](const GaState& s) { seen.push_back(s.generations_done); };
  util::Rng rng(7);
  const auto result = ga.run(prob, rng, {}, {}, &control);
  EXPECT_FALSE(result.complete);
  EXPECT_EQ(seen, (std::vector<std::uint64_t>{0}));
  EXPECT_EQ(result.population.size(), ga.params().population);
}

TEST(GaResume, ArchiveRebuildsByInOrderReinsertion) {
  // The saved archive must round-trip through plain re-insertion into a
  // fresh ParetoArchive — the property the checkpoint codec relies on.
  LineProblem prob;
  HvGa ga(small_params(), {10.0, 10.0}, {1.0, 1.0});
  GaState last;
  GaRunControl control;
  control.on_boundary = [&](const GaState& s) { last = s; };
  util::Rng rng(17);
  const auto result = ga.run(prob, rng, {}, {}, &control);
  ASSERT_TRUE(result.complete);

  ParetoArchive rebuilt;
  for (const auto& member : last.archive) rebuilt.insert(member);
  expect_same_individuals(result.archive.members(), rebuilt.members(), "rebuilt archive");
}

TEST(GaResume, ResumeStateFromHigherThreadCountMatches) {
  // A checkpoint taken under a multi-threaded evaluation resumes bit-exactly
  // under single-threaded evaluation (and vice versa): thread count is a
  // pure performance knob.
  ConstrainedProblem prob;
  GaParams params = small_params();
  Nsga2 ga(params);

  util::Rng full_rng(53);
  const auto full = ga.run(prob, full_rng);

  util::ThreadPool pool(4);
  EvalOptions threaded;
  threaded.pool = &pool;

  util::StopSource stop;
  GaState saved;
  GaRunControl control;
  control.stop = stop.token();
  control.on_boundary = [&](const GaState& s) {
    if (s.generations_done == 4) {
      saved = s;
      stop.request_stop();
    }
  };
  util::Rng rng(53);
  (void)ga.run(prob, rng, {}, threaded, &control);
  ASSERT_EQ(saved.generations_done, 4u);

  GaRunControl resume;
  resume.resume = &saved;
  util::Rng resume_rng(2);
  const auto resumed = ga.run(prob, resume_rng, {}, {}, &resume);
  ASSERT_TRUE(resumed.complete);
  expect_same_individuals(full.population, resumed.population, "population");
  expect_same_individuals(full.archive.members(), resumed.archive.members(), "archive");
}

}  // namespace
}  // namespace clr::moea
