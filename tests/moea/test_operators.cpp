#include "moea/operators.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace clr::moea {
namespace {

/// Toy problem: N genes, each in [0, 10); minimize the sum of genes.
class SumProblem : public Problem {
 public:
  explicit SumProblem(std::size_t n) : n_(n) {}
  std::size_t num_genes() const override { return n_; }
  int domain_size(std::size_t) const override { return 10; }
  std::size_t num_objectives() const override { return 1; }
  Evaluation evaluate(const std::vector<int>& genes) const override {
    return Evaluation{{static_cast<double>(std::accumulate(genes.begin(), genes.end(), 0))}, 0.0};
  }

 private:
  std::size_t n_;
};

TEST(Tournament, AlwaysPicksStrictlyBetterWhenSeen) {
  // Fitness = index; "better" = larger index. With tournament size equal to
  // the population, the best index must always win once sampled... sampling
  // with replacement cannot guarantee coverage, so instead verify the
  // invariant: the winner is never beaten by any other sampled competitor —
  // equivalently winner >= a uniformly drawn single candidate on average.
  util::Rng rng(1);
  auto better = [](std::size_t a, std::size_t b) { return a > b; };
  double avg_winner = 0.0;
  const int trials = 2000;
  for (int i = 0; i < trials; ++i) {
    avg_winner += static_cast<double>(tournament(100, 5, better, rng));
  }
  avg_winner /= trials;
  // E[max of 5 uniform(0..99)] ~ 82.5 >> E[uniform] = 49.5.
  EXPECT_GT(avg_winner, 75.0);
}

TEST(Tournament, SizeOneIsUniform) {
  util::Rng rng(2);
  auto better = [](std::size_t a, std::size_t b) { return a > b; };
  double avg = 0.0;
  const int trials = 4000;
  for (int i = 0; i < trials; ++i) avg += static_cast<double>(tournament(100, 1, better, rng));
  EXPECT_NEAR(avg / trials, 49.5, 3.0);
}

TEST(Tournament, Validation) {
  util::Rng rng(3);
  auto better = [](std::size_t, std::size_t) { return false; };
  EXPECT_THROW(tournament(0, 5, better, rng), std::invalid_argument);
  EXPECT_THROW(tournament(10, 0, better, rng), std::invalid_argument);
  EXPECT_EQ(tournament(1, 5, better, rng), 0u);
}

TEST(UniformCrossover, ZeroProbabilityKeepsParents) {
  util::Rng rng(4);
  std::vector<int> a{1, 2, 3, 4};
  std::vector<int> b{5, 6, 7, 8};
  uniform_crossover(a, b, 0.0, rng);
  EXPECT_EQ(a, (std::vector<int>{1, 2, 3, 4}));
  EXPECT_EQ(b, (std::vector<int>{5, 6, 7, 8}));
}

TEST(UniformCrossover, PreservesMultiset) {
  util::Rng rng(5);
  std::vector<int> a{1, 2, 3, 4, 5, 6};
  std::vector<int> b{11, 12, 13, 14, 15, 16};
  uniform_crossover(a, b, 1.0, rng);
  for (std::size_t i = 0; i < a.size(); ++i) {
    const int lo = static_cast<int>(i) + 1;
    const int hi = lo + 10;
    EXPECT_TRUE((a[i] == lo && b[i] == hi) || (a[i] == hi && b[i] == lo));
  }
}

TEST(UniformCrossover, SwapsRoughlyHalfTheGenes) {
  util::Rng rng(6);
  int swapped = 0;
  const int n = 200, trials = 100;
  for (int t = 0; t < trials; ++t) {
    std::vector<int> a(n, 0), b(n, 1);
    uniform_crossover(a, b, 1.0, rng);
    swapped += std::accumulate(a.begin(), a.end(), 0);
  }
  EXPECT_NEAR(static_cast<double>(swapped) / (n * trials), 0.5, 0.02);
}

TEST(UniformCrossover, SizeMismatchThrows) {
  util::Rng rng(7);
  std::vector<int> a{1};
  std::vector<int> b{1, 2};
  EXPECT_THROW(uniform_crossover(a, b, 1.0, rng), std::invalid_argument);
}

TEST(ResetMutation, ZeroProbabilityIsIdentity) {
  SumProblem prob(8);
  util::Rng rng(8);
  std::vector<int> genes{0, 1, 2, 3, 4, 5, 6, 7};
  auto copy = genes;
  reset_mutation(prob, genes, 0.0, rng);
  EXPECT_EQ(genes, copy);
}

TEST(ResetMutation, StaysWithinDomains) {
  SumProblem prob(50);
  util::Rng rng(9);
  std::vector<int> genes(50, 0);
  for (int t = 0; t < 50; ++t) {
    reset_mutation(prob, genes, 1.0, rng);
    for (int g : genes) {
      EXPECT_GE(g, 0);
      EXPECT_LT(g, 10);
    }
  }
}

TEST(ResetMutation, MutationRateApproximatesProbability) {
  SumProblem prob(1000);
  util::Rng rng(10);
  std::vector<int> genes(1000, -1);  // sentinel outside domain
  reset_mutation(prob, genes, 0.03, rng);
  const auto mutated = std::count_if(genes.begin(), genes.end(), [](int g) { return g != -1; });
  // Binomial(1000, 0.03): mean 30, sd ~5.4.
  EXPECT_GT(mutated, 8);
  EXPECT_LT(mutated, 65);
}

TEST(ResetMutation, GeneCountMismatchThrows) {
  SumProblem prob(3);
  util::Rng rng(11);
  std::vector<int> genes{0, 1};
  EXPECT_THROW(reset_mutation(prob, genes, 0.5, rng), std::invalid_argument);
}

TEST(Problem, RandomGenesWithinDomains) {
  SumProblem prob(20);
  util::Rng rng(12);
  for (int t = 0; t < 20; ++t) {
    const auto genes = prob.random_genes(rng);
    ASSERT_EQ(genes.size(), 20u);
    for (int g : genes) {
      EXPECT_GE(g, 0);
      EXPECT_LT(g, 10);
    }
  }
}

TEST(Problem, RepairWrapsOutOfDomain) {
  SumProblem prob(4);
  std::vector<int> genes{-1, 10, 25, 3};
  prob.repair(genes);
  EXPECT_EQ(genes, (std::vector<int>{9, 0, 5, 3}));
}

TEST(Problem, RepairRejectsWrongLength) {
  SumProblem prob(4);
  std::vector<int> genes{1, 2};
  EXPECT_THROW(prob.repair(genes), std::invalid_argument);
}

}  // namespace
}  // namespace clr::moea
