#include "moea/hypervolume.hpp"

#include <gtest/gtest.h>

namespace clr::moea {
namespace {

TEST(Hypervolume2d, SinglePoint) {
  EXPECT_DOUBLE_EQ(hypervolume_2d({{1.0, 1.0}}, {3.0, 3.0}), 4.0);
}

TEST(Hypervolume2d, EmptyAndOutsidePoints) {
  EXPECT_DOUBLE_EQ(hypervolume_2d({}, {3.0, 3.0}), 0.0);
  EXPECT_DOUBLE_EQ(hypervolume_2d({{4.0, 1.0}}, {3.0, 3.0}), 0.0);   // beyond ref x
  EXPECT_DOUBLE_EQ(hypervolume_2d({{3.0, 1.0}}, {3.0, 3.0}), 0.0);   // on ref boundary
}

TEST(Hypervolume2d, Staircase) {
  // Classic three-point staircase against ref (4,4):
  // (1,3): strip [1,2)x[3,4) -> 1; (2,2): [2,3)x[2,4) -> 2; (3,1): [3,4)x[1,4) -> 3.
  const double hv = hypervolume_2d({{1.0, 3.0}, {2.0, 2.0}, {3.0, 1.0}}, {4.0, 4.0});
  EXPECT_DOUBLE_EQ(hv, 1.0 * 1.0 + 1.0 * 2.0 + 1.0 * 3.0);
}

TEST(Hypervolume2d, DominatedPointAddsNothing) {
  const double without = hypervolume_2d({{1.0, 1.0}}, {4.0, 4.0});
  const double with = hypervolume_2d({{1.0, 1.0}, {2.0, 2.0}}, {4.0, 4.0});
  EXPECT_DOUBLE_EQ(without, with);
}

TEST(Hypervolume2d, DuplicatePointsCountOnce) {
  const double hv = hypervolume_2d({{1.0, 1.0}, {1.0, 1.0}}, {2.0, 2.0});
  EXPECT_DOUBLE_EQ(hv, 1.0);
}

TEST(Hypervolume3d, SinglePointBox) {
  EXPECT_DOUBLE_EQ(hypervolume_3d({{1.0, 1.0, 1.0}}, {2.0, 3.0, 4.0}), 1.0 * 2.0 * 3.0);
}

TEST(Hypervolume3d, TwoDisjointishPoints) {
  // Points (0,2,0) and (2,0,0) vs ref (3,3,1):
  // union area in xy = 3*1 + 1*3 + ... compute: A = [0,3)x[2,3) ∪ [2,3)x[0,3)
  // = (3*1) + (1*3) - (1*1) = 5; depth 1 -> volume 5.
  const double hv = hypervolume_3d({{0.0, 2.0, 0.0}, {2.0, 0.0, 0.0}}, {3.0, 3.0, 1.0});
  EXPECT_DOUBLE_EQ(hv, 5.0);
}

TEST(Hypervolume3d, LayeredPoints) {
  // (1,1,0) covers [1..2]^2 for z in [0,2); (0,0,1) covers [0..2]^2 for z in [1,2).
  // slabs: z in [0,1): area 1 -> 1; z in [1,2): area 4 -> 4. total 5.
  const double hv = hypervolume_3d({{1.0, 1.0, 0.0}, {0.0, 0.0, 1.0}}, {2.0, 2.0, 2.0});
  EXPECT_DOUBLE_EQ(hv, 5.0);
}

TEST(HypervolumeMc, AgreesWithExact2d) {
  const std::vector<std::vector<double>> pts{{1.0, 3.0}, {2.0, 2.0}, {3.0, 1.0}};
  const std::vector<double> ref{4.0, 4.0};
  const double exact = hypervolume(pts, ref);
  util::Rng rng(33);
  const double mc = hypervolume_mc(pts, {0.0, 0.0}, ref, 200000, rng);
  EXPECT_NEAR(mc, exact, 0.12);
}

TEST(HypervolumeMc, AgreesWithExact3d) {
  const std::vector<std::vector<double>> pts{{1.0, 1.0, 0.0}, {0.0, 0.0, 1.0}};
  const std::vector<double> ref{2.0, 2.0, 2.0};
  const double exact = hypervolume(pts, ref);
  util::Rng rng(34);
  const double mc = hypervolume_mc(pts, {0.0, 0.0, 0.0}, ref, 200000, rng);
  EXPECT_NEAR(mc, exact, 0.1);
}

TEST(Hypervolume, DispatchErrors) {
  EXPECT_THROW(hypervolume({{1.0, 2.0, 3.0, 4.0}}, {5.0, 5.0, 5.0, 5.0}), std::invalid_argument);
  EXPECT_THROW(hypervolume({{1.0}}, {5.0, 5.0}), std::invalid_argument);
  EXPECT_DOUBLE_EQ(hypervolume({}, {1.0}), 0.0);
}

TEST(SignedPointHv, FeasibleIsPositiveProduct) {
  const double hv = signed_point_hypervolume({1.0, 2.0}, {3.0, 4.0}, {1.0, 1.0});
  EXPECT_DOUBLE_EQ(hv, 2.0 * 2.0);
}

TEST(SignedPointHv, ScaleNormalizesUnits) {
  const double hv = signed_point_hypervolume({1.0, 2.0}, {3.0, 4.0}, {0.5, 2.0});
  EXPECT_DOUBLE_EQ(hv, (2.0 * 0.5) * (2.0 * 2.0));
}

TEST(SignedPointHv, InfeasibleIsNegativePenalty) {
  // Fig. 4a: infeasible fitness is the negative distance beyond R.
  const double hv = signed_point_hypervolume({5.0, 1.0}, {3.0, 4.0}, {1.0, 1.0});
  EXPECT_DOUBLE_EQ(hv, -2.0);
  const double both = signed_point_hypervolume({5.0, 6.0}, {3.0, 4.0}, {1.0, 1.0});
  EXPECT_DOUBLE_EQ(both, -4.0);
}

TEST(SignedPointHv, InfeasibleAlwaysBelowFeasible) {
  const double feas = signed_point_hypervolume({2.99, 3.99}, {3.0, 4.0}, {1.0, 1.0});
  const double infeas = signed_point_hypervolume({3.001, 0.0}, {3.0, 4.0}, {1.0, 1.0});
  EXPECT_GT(feas, 0.0);
  EXPECT_LT(infeas, 0.0);
}

TEST(SignedPointHv, DimensionMismatchThrows) {
  EXPECT_THROW(signed_point_hypervolume({1.0}, {1.0, 2.0}, {1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(signed_point_hypervolume({1.0, 2.0}, {1.0, 2.0}, {1.0}), std::invalid_argument);
}

/// Brute-force cross-check: random 2-D fronts, MC vs exact.
class HvRandomCheck : public ::testing::TestWithParam<int> {};

TEST_P(HvRandomCheck, ExactMatchesMonteCarlo) {
  util::Rng rng(100 + GetParam());
  std::vector<std::vector<double>> pts;
  for (int i = 0; i < 8; ++i) pts.push_back({rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0)});
  const std::vector<double> ref{1.0, 1.0};
  const double exact = hypervolume(pts, ref);
  const double mc = hypervolume_mc(pts, {0.0, 0.0}, ref, 150000, rng);
  EXPECT_NEAR(mc, exact, 0.02);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HvRandomCheck, ::testing::Range(0, 6));

}  // namespace
}  // namespace clr::moea
