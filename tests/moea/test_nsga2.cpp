#include "moea/nsga2.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace clr::moea {
namespace {

/// Discretized bi-objective test problem with a known convex Pareto front:
/// x = mean(genes)/9 in [0,1]; f1 = x, f2 = 1 - sqrt(x) (ZDT1 with g = 1).
class Zdt1Lite : public Problem {
 public:
  explicit Zdt1Lite(std::size_t n = 8) : n_(n) {}
  std::size_t num_genes() const override { return n_; }
  int domain_size(std::size_t) const override { return 10; }
  std::size_t num_objectives() const override { return 2; }
  Evaluation evaluate(const std::vector<int>& genes) const override {
    double x = 0.0;
    for (int g : genes) x += g;
    x /= 9.0 * static_cast<double>(n_);
    // g > 1 whenever genes disagree, pushing the front toward uniform genes.
    double spread = 0.0;
    for (int g : genes) spread += std::abs(g / 9.0 - x);
    const double g_term = 1.0 + spread / static_cast<double>(n_);
    return Evaluation{{x, g_term * (1.0 - std::sqrt(x / g_term))}, 0.0};
  }

 private:
  std::size_t n_;
};

/// Constrained single-front problem: minimize (x, 9-x) with x = gene sum,
/// feasible only when x >= 3.
class ConstrainedLine : public Problem {
 public:
  std::size_t num_genes() const override { return 1; }
  int domain_size(std::size_t) const override { return 10; }
  std::size_t num_objectives() const override { return 2; }
  Evaluation evaluate(const std::vector<int>& genes) const override {
    const double x = genes[0];
    Evaluation e{{x, 9.0 - x}, 0.0};
    if (x < 3.0) e.violation = 3.0 - x;
    return e;
  }
};

TEST(NonDominatedSort, RanksKnownLayers) {
  std::vector<Individual> pop(4);
  pop[0].eval = {{1.0, 1.0}, 0.0};  // front 0
  pop[1].eval = {{2.0, 2.0}, 0.0};  // front 1 (dominated by 0)
  pop[2].eval = {{0.5, 3.0}, 0.0};  // front 0 (trade-off with 0)
  pop[3].eval = {{3.0, 3.0}, 0.0};  // front 2 (dominated by 0 and 1)
  const auto fronts = non_dominated_sort(pop);
  ASSERT_EQ(fronts.size(), 3u);
  EXPECT_EQ(pop[0].rank, 0);
  EXPECT_EQ(pop[2].rank, 0);
  EXPECT_EQ(pop[1].rank, 1);
  EXPECT_EQ(pop[3].rank, 2);
}

TEST(NonDominatedSort, InfeasibleAlwaysRanksBelowFeasible) {
  std::vector<Individual> pop(2);
  pop[0].eval = {{100.0, 100.0}, 0.0};  // terrible but feasible
  pop[1].eval = {{0.0, 0.0}, 0.1};      // perfect but infeasible
  non_dominated_sort(pop);
  EXPECT_LT(pop[0].rank, pop[1].rank);
}

TEST(AssignCrowding, ExtremesAreInfinite) {
  std::vector<Individual> pop(4);
  pop[0].eval = {{0.0, 3.0}, 0.0};
  pop[1].eval = {{1.0, 2.0}, 0.0};
  pop[2].eval = {{2.0, 1.0}, 0.0};
  pop[3].eval = {{3.0, 0.0}, 0.0};
  assign_crowding(pop, {0, 1, 2, 3});
  EXPECT_TRUE(std::isinf(pop[0].crowding));
  EXPECT_TRUE(std::isinf(pop[3].crowding));
  EXPECT_FALSE(std::isinf(pop[1].crowding));
  // Interior crowding for evenly spaced points: (2-0)/3 per objective x2.
  EXPECT_NEAR(pop[1].crowding, 4.0 / 3.0, 1e-12);
}

TEST(AssignCrowding, TinyFrontsAllInfinite) {
  std::vector<Individual> pop(2);
  pop[0].eval = {{0.0, 1.0}, 0.0};
  pop[1].eval = {{1.0, 0.0}, 0.0};
  assign_crowding(pop, {0, 1});
  EXPECT_TRUE(std::isinf(pop[0].crowding));
  EXPECT_TRUE(std::isinf(pop[1].crowding));
}

TEST(NonDominatedSort, AllIdenticalObjectivesFormOneFront) {
  std::vector<Individual> pop(5);
  for (auto& ind : pop) ind.eval = {{1.5, 2.5}, 0.0};
  const auto fronts = non_dominated_sort(pop);
  ASSERT_EQ(fronts.size(), 1u);
  EXPECT_EQ(fronts[0].size(), 5u);
  for (const auto& ind : pop) EXPECT_EQ(ind.rank, 0);
}

TEST(AssignCrowding, SinglePointFrontIsInfinite) {
  std::vector<Individual> pop(1);
  pop[0].eval = {{1.0, 2.0}, 0.0};
  assign_crowding(pop, {0});
  EXPECT_TRUE(std::isinf(pop[0].crowding));
}

TEST(AssignCrowding, IdenticalObjectivesDegenerateRange) {
  // hi == lo on every objective: the boundary points of the sorted order get
  // infinity, interior points keep zero — no division by the zero-width band.
  std::vector<Individual> pop(4);
  for (auto& ind : pop) ind.eval = {{3.0, 3.0}, 0.0};
  assign_crowding(pop, {0, 1, 2, 3});
  std::size_t infinite = 0;
  for (const auto& ind : pop) {
    EXPECT_FALSE(std::isnan(ind.crowding));
    if (std::isinf(ind.crowding)) ++infinite;
    else EXPECT_DOUBLE_EQ(ind.crowding, 0.0);
  }
  EXPECT_EQ(infinite, 2u);
}

TEST(AssignCrowding, EmptyFrontIsANoop) {
  std::vector<Individual> pop(2);
  pop[0].eval = {{0.0, 1.0}, 0.0};
  pop[1].eval = {{1.0, 0.0}, 0.0};
  assign_crowding(pop, {});  // must not touch pop (or crash)
  EXPECT_DOUBLE_EQ(pop[0].crowding, 0.0);
  EXPECT_DOUBLE_EQ(pop[1].crowding, 0.0);
}

/// Counts actual evaluate() calls (genes are wide enough that random
/// chromosomes are distinct, so batch deduplication does not hide calls).
class CountingZdt : public Zdt1Lite {
 public:
  Evaluation evaluate(const std::vector<int>& genes) const override {
    ++evaluations;
    return Zdt1Lite::evaluate(genes);
  }
  mutable std::size_t evaluations = 0;
};

TEST(Nsga2, OddPopulationSkipsTheSurplusOffspringEvaluation) {
  CountingZdt prob;
  GaParams params;
  params.population = 5;
  params.generations = 3;
  params.mutation_prob = 0.9;  // keep children distinct from parents/siblings
  params.threads = 1;
  util::Rng rng(17);
  Nsga2(params).run(prob, rng);
  // 5 initial + 5 offspring per generation; the discarded second child of
  // the last pair is no longer evaluated.
  EXPECT_EQ(prob.evaluations, 5u + 3u * 5u);
}

TEST(Nsga2, ThreadCountDoesNotChangeTheResult) {
  Zdt1Lite prob;
  GaParams params;
  params.population = 24;
  params.generations = 12;
  params.threads = 1;
  util::Rng a(23), b(23);
  const auto seq = Nsga2(params).run(prob, a);
  params.threads = 4;
  const auto par = Nsga2(params).run(prob, b);
  ASSERT_EQ(seq.population.size(), par.population.size());
  for (std::size_t i = 0; i < seq.population.size(); ++i) {
    EXPECT_EQ(seq.population[i].genes, par.population[i].genes);
    EXPECT_EQ(seq.population[i].eval.objectives, par.population[i].eval.objectives);
  }
  ASSERT_EQ(seq.archive.size(), par.archive.size());
  for (std::size_t i = 0; i < seq.archive.size(); ++i) {
    EXPECT_EQ(seq.archive.members()[i].genes, par.archive.members()[i].genes);
  }
}

TEST(Nsga2, SharedCacheDoesNotChangeTheResult) {
  Zdt1Lite prob;
  GaParams params;
  params.population = 20;
  params.generations = 10;
  params.threads = 1;
  util::Rng a(31), b(31);
  const auto plain = Nsga2(params).run(prob, a);
  EvalCache cache(1 << 12);
  const auto cached = Nsga2(params).run(prob, b, {}, {nullptr, &cache});
  EXPECT_GT(cache.hits(), 0u);
  ASSERT_EQ(plain.archive.size(), cached.archive.size());
  for (std::size_t i = 0; i < plain.archive.size(); ++i) {
    EXPECT_EQ(plain.archive.members()[i].genes, cached.archive.members()[i].genes);
    EXPECT_EQ(plain.archive.members()[i].eval.objectives,
              cached.archive.members()[i].eval.objectives);
  }
}

TEST(Nsga2, ConvergesTowardZdt1Front) {
  Zdt1Lite prob;
  GaParams params;
  params.population = 60;
  params.generations = 60;
  util::Rng rng(42);
  const auto result = Nsga2(params).run(prob, rng);

  ASSERT_FALSE(result.archive.empty());
  // Every archived point should be close to the true front f2 = 1 - sqrt(f1):
  // allow slack for the discrete spread penalty.
  double worst_gap = 0.0;
  for (const auto& ind : result.archive.members()) {
    const double f1 = ind.eval.objectives[0];
    const double f2 = ind.eval.objectives[1];
    worst_gap = std::max(worst_gap, f2 - (1.0 - std::sqrt(f1)));
  }
  EXPECT_LT(worst_gap, 0.15);
  // The front must be spread, not collapsed to a point.
  double f1_min = 1e9, f1_max = -1e9;
  for (const auto& ind : result.archive.members()) {
    f1_min = std::min(f1_min, ind.eval.objectives[0]);
    f1_max = std::max(f1_max, ind.eval.objectives[0]);
  }
  EXPECT_GT(f1_max - f1_min, 0.4);
}

TEST(Nsga2, HandlesConstraints) {
  ConstrainedLine prob;
  GaParams params;
  params.population = 20;
  params.generations = 20;
  util::Rng rng(43);
  const auto result = Nsga2(params).run(prob, rng);
  ASSERT_FALSE(result.archive.empty());
  for (const auto& ind : result.archive.members()) {
    EXPECT_GE(ind.genes[0], 3);  // only feasible points archived
  }
  // All feasible points of this problem are mutually non-dominated, so the
  // archive should cover several of them.
  EXPECT_GE(result.archive.size(), 3u);
}

TEST(Nsga2, SeedsSurviveToArchive) {
  ConstrainedLine prob;
  GaParams params;
  params.population = 8;
  params.generations = 2;
  util::Rng rng(44);
  const auto result = Nsga2(params).run(prob, rng, {{7}});
  bool found = false;
  for (const auto& ind : result.archive.members()) {
    found |= ind.genes[0] == 7;
  }
  EXPECT_TRUE(found);
}

TEST(Nsga2, DeterministicPerSeed) {
  Zdt1Lite prob;
  GaParams params;
  params.population = 20;
  params.generations = 10;
  util::Rng a(7), b(7);
  const auto ra = Nsga2(params).run(prob, a);
  const auto rb = Nsga2(params).run(prob, b);
  ASSERT_EQ(ra.archive.size(), rb.archive.size());
  for (std::size_t i = 0; i < ra.archive.size(); ++i) {
    EXPECT_EQ(ra.archive.members()[i].genes, rb.archive.members()[i].genes);
  }
}

TEST(Nsga2, RejectsTinyPopulation) {
  Zdt1Lite prob;
  GaParams params;
  params.population = 1;
  util::Rng rng(1);
  EXPECT_THROW(Nsga2(params).run(prob, rng), std::invalid_argument);
}

}  // namespace
}  // namespace clr::moea
