#include "platform/platform.hpp"

#include <gtest/gtest.h>

namespace clr::plat {
namespace {

TEST(Platform, AddPeTypeValidation) {
  Platform hw;
  PeType t;
  t.perf_factor = 0.0;
  EXPECT_THROW(hw.add_pe_type(t), std::invalid_argument);
  t.perf_factor = 1.0;
  t.power_factor = -1.0;
  EXPECT_THROW(hw.add_pe_type(t), std::invalid_argument);
  t.power_factor = 1.0;
  t.avf = 1.5;
  EXPECT_THROW(hw.add_pe_type(t), std::invalid_argument);
  t.avf = 0.5;
  t.beta_aging = 0.0;
  EXPECT_THROW(hw.add_pe_type(t), std::invalid_argument);
  t.beta_aging = 2.0;
  EXPECT_EQ(hw.add_pe_type(t), 0u);
}

TEST(Platform, AddPeValidation) {
  Platform hw;
  EXPECT_THROW(hw.add_pe(0), std::out_of_range);  // no types yet
  PeType t;
  const PeTypeId tid = hw.add_pe_type(t);
  EXPECT_THROW(hw.add_pe(tid, 1024, 0), std::out_of_range);  // no PRR yet
  const PrrId prr = hw.add_prr(1024);
  EXPECT_NO_THROW(hw.add_pe(tid, 1024, prr));
}

TEST(Platform, TypeOfResolvesThroughPe) {
  Platform hw;
  PeType t;
  t.name = "x";
  const PeTypeId tid = hw.add_pe_type(t);
  const PeId pe = hw.add_pe(tid);
  EXPECT_EQ(hw.type_of(pe).name, "x");
}

TEST(Platform, IsReconfigurable) {
  Platform hw;
  PeType t;
  const PeTypeId tid = hw.add_pe_type(t);
  const PeId fixed = hw.add_pe(tid);
  const PrrId prr = hw.add_prr(2048);
  const PeId accel = hw.add_pe(tid, 1024, prr);
  EXPECT_FALSE(hw.is_reconfigurable(fixed));
  EXPECT_TRUE(hw.is_reconfigurable(accel));
}

TEST(DefaultHmpsoc, MatchesPaperSetup) {
  const Platform hw = make_default_hmpsoc();
  // §5.1: 5 fixed PEs of 3 types + 3 PRR accelerator slots.
  EXPECT_EQ(hw.num_prrs(), 3u);
  EXPECT_EQ(hw.num_pes(), 8u);  // 5 fixed + 3 PRR-hosted
  EXPECT_EQ(hw.pes_of_kind(PeKind::Accelerator).size(), 3u);
  EXPECT_EQ(hw.num_pes() - hw.pes_of_kind(PeKind::Accelerator).size(), 5u);
  // 3 non-accelerator types that differ in masking factor.
  std::size_t fixed_types = 0;
  for (const auto& t : hw.pe_types()) {
    if (t.kind != PeKind::Accelerator) ++fixed_types;
  }
  EXPECT_EQ(fixed_types, 3u);
}

TEST(DefaultHmpsoc, TypesDifferInMaskingFactor) {
  const Platform hw = make_default_hmpsoc();
  std::vector<double> avfs;
  for (const auto& t : hw.pe_types()) {
    if (t.kind != PeKind::Accelerator) avfs.push_back(t.avf);
  }
  ASSERT_EQ(avfs.size(), 3u);
  EXPECT_NE(avfs[0], avfs[1]);
  EXPECT_NE(avfs[1], avfs[2]);
  EXPECT_NE(avfs[0], avfs[2]);
}

TEST(DefaultHmpsoc, AcceleratorPesSitInDistinctPrrs) {
  const Platform hw = make_default_hmpsoc();
  std::vector<std::uint32_t> prrs;
  for (PeId id : hw.pes_of_kind(PeKind::Accelerator)) {
    EXPECT_TRUE(hw.is_reconfigurable(id));
    prrs.push_back(hw.pe(id).prr);
  }
  std::sort(prrs.begin(), prrs.end());
  EXPECT_EQ(prrs, (std::vector<std::uint32_t>{0, 1, 2}));
}

TEST(DefaultHmpsoc, InterconnectIsConfigured) {
  const Platform hw = make_default_hmpsoc();
  EXPECT_GT(hw.interconnect().binary_bandwidth, 0.0);
  EXPECT_GT(hw.interconnect().icap_bandwidth, 0.0);
  EXPECT_GE(hw.interconnect().per_migration_overhead, 0.0);
}

}  // namespace
}  // namespace clr::plat
