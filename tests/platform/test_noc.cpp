// Mesh-NoC topology tests: hop geometry, communication-factor semantics, and
// their effect on schedules and reconfiguration costs.

#include <gtest/gtest.h>

#include "platform/platform.hpp"
#include "reconfig/reconfig.hpp"
#include "schedule/scheduler.hpp"
#include "reliability/clr_config.hpp"
#include "reliability/implementation.hpp"
#include "taskgraph/graph.hpp"

namespace clr::plat {
namespace {

Platform make_grid(std::size_t pes, std::size_t columns, Topology topology) {
  Platform hw;
  PeType t;
  const auto tid = hw.add_pe_type(t);
  for (std::size_t i = 0; i < pes; ++i) hw.add_pe(tid);
  Interconnect ic;
  ic.topology = topology;
  ic.mesh_columns = columns;
  hw.set_interconnect(ic);
  return hw;
}

TEST(NocTopology, BusHopsAreUniform) {
  const auto hw = make_grid(6, 3, Topology::Bus);
  EXPECT_EQ(hw.hop_count(0, 0), 0u);
  EXPECT_EQ(hw.hop_count(0, 1), 1u);
  EXPECT_EQ(hw.hop_count(0, 5), 1u);
  EXPECT_DOUBLE_EQ(hw.comm_factor(0, 5), 1.0);
  EXPECT_DOUBLE_EQ(hw.comm_factor(2, 2), 1.0);
}

TEST(NocTopology, MeshManhattanDistance) {
  // 3-column mesh of 6 PEs:
  //   0 1 2
  //   3 4 5
  const auto hw = make_grid(6, 3, Topology::Mesh2D);
  EXPECT_EQ(hw.hop_count(0, 1), 1u);
  EXPECT_EQ(hw.hop_count(0, 2), 2u);
  EXPECT_EQ(hw.hop_count(0, 3), 1u);
  EXPECT_EQ(hw.hop_count(0, 4), 2u);
  EXPECT_EQ(hw.hop_count(0, 5), 3u);
  EXPECT_EQ(hw.hop_count(2, 3), 3u);
  EXPECT_EQ(hw.hop_count(4, 4), 0u);
  EXPECT_DOUBLE_EQ(hw.comm_factor(0, 5), 3.0);
}

TEST(NocTopology, HopCountIsSymmetric) {
  const auto hw = make_grid(8, 4, Topology::Mesh2D);
  for (PeId a = 0; a < 8; ++a) {
    for (PeId b = 0; b < 8; ++b) {
      EXPECT_EQ(hw.hop_count(a, b), hw.hop_count(b, a));
    }
  }
}

TEST(NocTopology, UnknownPeThrows) {
  const auto hw = make_grid(4, 2, Topology::Mesh2D);
  EXPECT_THROW(hw.hop_count(0, 9), std::out_of_range);
}

/// Two-task chain: cross-PE communication must scale with hop distance on a
/// mesh but not on a bus.
class NocScheduleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    graph_.add_task(0);
    graph_.add_task(0);
    graph_.add_edge(0, 1, /*comm_time=*/5.0, 128);

    impls_.resize(2);
    rel::Implementation impl;
    impl.pe_type = 0;
    impl.base_time = 10.0;
    impls_.add(0, impl);
    impls_.add(1, impl);
  }

  sched::ScheduleResult run_on(const Platform& hw, PeId src, PeId dst) {
    sched::EvalContext ctx;
    ctx.graph = &graph_;
    ctx.platform = &hw;
    ctx.impls = &impls_;
    ctx.clr_space = &clr_;
    ctx.metrics = rel::MetricsModel(rel::FaultModel{0.0});
    sched::Configuration cfg;
    cfg.tasks = {{src, 0, 0, 0}, {dst, 0, 0, 0}};
    return sched::ListScheduler{}.run(ctx, cfg);
  }

  tg::TaskGraph graph_;
  rel::ImplementationSet impls_;
  rel::ClrSpace clr_{rel::ClrGranularity::HwOnly};
};

TEST_F(NocScheduleTest, MeshCommunicationScalesWithHops) {
  const auto mesh = make_grid(6, 3, Topology::Mesh2D);
  EXPECT_DOUBLE_EQ(run_on(mesh, 0, 1).makespan, 10.0 + 1 * 5.0 + 10.0);
  EXPECT_DOUBLE_EQ(run_on(mesh, 0, 5).makespan, 10.0 + 3 * 5.0 + 10.0);
  EXPECT_DOUBLE_EQ(run_on(mesh, 0, 0).makespan, 20.0);  // same PE: free
}

TEST_F(NocScheduleTest, BusCommunicationIsUniform) {
  const auto bus = make_grid(6, 3, Topology::Bus);
  EXPECT_DOUBLE_EQ(run_on(bus, 0, 1).makespan, 25.0);
  EXPECT_DOUBLE_EQ(run_on(bus, 0, 5).makespan, 25.0);
}

TEST(NocReconfig, MigrationCostScalesWithHops) {
  auto hw = make_grid(6, 3, Topology::Mesh2D);
  tg::TaskGraph g;
  g.add_task(0);
  rel::ImplementationSet impls;
  impls.resize(1);
  rel::Implementation impl;
  impl.pe_type = 0;
  impl.binary_bytes = 4096;
  impls.add(0, impl);
  recfg::ReconfigModel model(hw, impls);

  sched::Configuration at0, at1, at5;
  at0.tasks = {{0, 0, 0, 0}};
  at1.tasks = {{1, 0, 0, 0}};
  at5.tasks = {{5, 0, 0, 0}};
  const double near = model.drc(at0, at1);
  const double far = model.drc(at0, at5);
  const double transfer = 4096.0 / hw.interconnect().binary_bandwidth;
  const double overhead = hw.interconnect().per_migration_overhead;
  EXPECT_DOUBLE_EQ(near, 1 * transfer + overhead);
  EXPECT_DOUBLE_EQ(far, 3 * transfer + overhead);
  EXPECT_GT(far, near);
}

TEST(NocReconfig, BusMigrationIsDistanceBlind) {
  auto hw = make_grid(6, 3, Topology::Bus);
  tg::TaskGraph g;
  g.add_task(0);
  rel::ImplementationSet impls;
  impls.resize(1);
  rel::Implementation impl;
  impl.pe_type = 0;
  impl.binary_bytes = 4096;
  impls.add(0, impl);
  recfg::ReconfigModel model(hw, impls);
  sched::Configuration at0, at1, at5;
  at0.tasks = {{0, 0, 0, 0}};
  at1.tasks = {{1, 0, 0, 0}};
  at5.tasks = {{5, 0, 0, 0}};
  EXPECT_DOUBLE_EQ(model.drc(at0, at1), model.drc(at0, at5));
}

}  // namespace
}  // namespace clr::plat
