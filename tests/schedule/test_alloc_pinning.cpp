// Allocation pinning for the flat evaluation kernel (ISSUE 5 / DESIGN.md
// §5.9): once a per-thread EvalScratch is warm for a problem shape, a
// CompiledGraph evaluation must perform *zero* heap allocations, and the
// MappingProblem steady-state paths (decode_into + cache-hit
// evaluate_metrics) must stay allocation-free too. The count is enforced by
// replacing the global operator new/delete with counting versions, which is
// why this suite lives in its own binary (alloc_tests) — the override is
// program-wide.

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

#include "dse/mapping_problem.hpp"
#include "experiments/app.hpp"
#include "schedule/batch.hpp"
#include "schedule/compiled_graph.hpp"
#include "schedule/heft.hpp"

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};

void* counted_alloc(std::size_t n) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}

void* counted_aligned_alloc(std::size_t n, std::size_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align, n ? n : 1) != 0) {
    throw std::bad_alloc();
  }
  return p;
}
}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void* operator new(std::size_t n, std::align_val_t a) {
  return counted_aligned_alloc(n, static_cast<std::size_t>(a));
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return counted_aligned_alloc(n, static_cast<std::size_t>(a));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace clr {
namespace {

std::uint64_t allocs() { return g_alloc_count.load(std::memory_order_relaxed); }

// The instrument itself must observe ordinary allocations, otherwise a
// zero-count result proves nothing.
TEST(AllocPinning, InstrumentCountsHeapAllocations) {
  const std::uint64_t before = allocs();
  auto* v = new std::vector<int>(1024, 7);
  const std::uint64_t delta = allocs() - before;
  delete v;
  EXPECT_GE(delta, 2u);  // the vector object + its buffer
}

TEST(AllocPinning, WarmKernelEvaluationIsAllocationFree) {
  const auto app = exp::make_synthetic_app(24, exp::derive_seed(0xA110Cu, 24));
  const sched::CompiledGraph cg(app->context());
  const sched::Configuration cfg = sched::heft_seed(cg);

  sched::EvalScratch scratch;
  sched::KernelMetrics warm = cg.evaluate(cfg, scratch);  // sizes the arena

  const std::uint64_t before = allocs();
  sched::KernelMetrics m;
  for (int i = 0; i < 100; ++i) m = cg.evaluate(cfg, scratch);
  const std::uint64_t delta = allocs() - before;

  EXPECT_EQ(delta, 0u) << "kernel evaluation allocated on the warm path";
  EXPECT_EQ(m.makespan, warm.makespan);  // and still computes the same result
  EXPECT_EQ(m.energy, warm.energy);
}

// The batched entry point has the same contract (DESIGN.md §5.10): once the
// BatchScratch is warm for the shape, evaluate_batch — including the per-lane
// SoA transpose staging — performs zero heap allocations at any batch size.
TEST(AllocPinning, WarmBatchedEvaluationIsAllocationFree) {
  const auto app = exp::make_synthetic_app(24, exp::derive_seed(0xA110Cu, 24));
  const sched::CompiledGraph cg(app->context());
  const sched::Configuration seed = sched::heft_seed(cg);

  // A population of distinct configurations (perturbed priorities) so the
  // transpose writes real data every block, partial tail included.
  std::vector<sched::Configuration> cfgs(3 * sched::BatchGenomes::kLanes + 5, seed);
  for (std::size_t c = 0; c < cfgs.size(); ++c) {
    for (std::size_t t = 0; t < cfgs[c].size(); ++t) {
      cfgs[c][t].priority = static_cast<std::int32_t>((t + c) % cfgs[c].size());
    }
  }
  std::vector<sched::KernelMetrics> out(cfgs.size());
  sched::BatchScratch scratch;
  cg.evaluate_batch({cfgs.data(), cfgs.size()}, scratch, {out.data(), out.size()});  // warm

  const std::uint64_t before = allocs();
  for (int i = 0; i < 50; ++i) {
    cg.evaluate_batch({cfgs.data(), cfgs.size()}, scratch, {out.data(), out.size()});
    // Single-configuration spans keep the one-lane path pinned too.
    cg.evaluate_batch({cfgs.data(), 1}, scratch, {out.data(), 1});
  }
  const std::uint64_t delta = allocs() - before;

  EXPECT_EQ(delta, 0u) << "batched evaluation allocated on the warm path";
  sched::EvalScratch sscratch;
  const sched::KernelMetrics want = cg.evaluate(cfgs.back(), sscratch);
  EXPECT_EQ(want.makespan, out.back().makespan);  // and still computes the same result
  EXPECT_EQ(want.peak_power, out.back().peak_power);
}

TEST(AllocPinning, WarmDecodeIntoIsAllocationFree) {
  const auto app = exp::make_synthetic_app(16, exp::derive_seed(0xA110Cu, 16));
  const dse::MappingProblem problem(app->context(), {1e9, 0.0}, dse::ObjectiveMode::EnergyQos);
  const std::vector<int> genes = problem.encode(sched::heft_seed(problem.compiled()));

  sched::Configuration cfg;
  problem.decode_into(genes, &cfg);  // warm the target

  const std::uint64_t before = allocs();
  for (int i = 0; i < 100; ++i) problem.decode_into(genes, &cfg);
  const std::uint64_t delta = allocs() - before;
  EXPECT_EQ(delta, 0u) << "decode_into allocated on the warm path";
}

TEST(AllocPinning, CacheHitEvaluateMetricsIsAllocationFree) {
  const auto app = exp::make_synthetic_app(16, exp::derive_seed(0xA110Cu, 16));
  const dse::MappingProblem problem(app->context(), {1e9, 0.0}, dse::ObjectiveMode::EnergyQos);
  const std::vector<int> genes = problem.encode(sched::heft_seed(problem.compiled()));

  const dse::ScheduleMetrics first = problem.evaluate_metrics(genes);  // miss: memo store

  const std::uint64_t before = allocs();
  dse::ScheduleMetrics m;
  for (int i = 0; i < 100; ++i) m = problem.evaluate_metrics(genes);
  const std::uint64_t delta = allocs() - before;

  EXPECT_EQ(delta, 0u) << "memo-cache hit path allocated";
  EXPECT_EQ(m.makespan, first.makespan);
  EXPECT_EQ(problem.schedule_runs(), 1u);  // every counted call was a hit
}

}  // namespace
}  // namespace clr
