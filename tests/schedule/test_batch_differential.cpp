// Batched-kernel differential suite (DESIGN.md §5.10): evaluate_batch over
// CompiledGraph must be *bit-identical* to ReferenceScheduler — and therefore
// to the scalar kernel, which tests/schedule/test_differential.cpp pins to
// the same oracle — for every configuration, at every caller-side batch size
// and at every thread count. Exact double equality (EXPECT_EQ) throughout:
// the SoA kernel's contract is that each lane performs the scalar kernel's
// floating-point operations in the scalar kernel's order, so any ULP drift
// is a bug, not noise.
//
// Coverage: 210 seeded fuzz cases (graph sizes 1..40 plus a >64-task band
// that exercises the multi-word ready-bitmap path) crossed with four
// platform shapes and all CLR granularities, 64 random configurations each,
// re-evaluated through caller batch sizes 1, 7, 8 and 64 at jobs=1 and
// jobs=8. Dedicated cases pin the lockstep fallbacks: out-of-range
// priorities (linear-scan lanes), mixed bucketable/non-bucketable lanes in
// one block, extreme power magnitudes (subnormal/near-overflow sweep sums)
// and invalid-gene exception behavior.

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <stdexcept>
#include <vector>

#include <span>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "experiments/app.hpp"
#include "platform/platform.hpp"
#include "schedule/batch.hpp"
#include "schedule/compiled_graph.hpp"
#include "schedule/scheduler.hpp"
#include "taskgraph/generator.hpp"

namespace clr {
namespace {

constexpr std::size_t kNumCases = 210;
constexpr std::size_t kCaseBatch = 30;  // cases held in memory at once
constexpr std::size_t kConfigs = 64;    // configurations per case
constexpr std::uint64_t kSuiteTag = 0xBA7Cu;
constexpr std::size_t kBatchSizes[] = {1, 7, 8, 64};

plat::PeType gp_type(double perf, double power) {
  plat::PeType t;
  t.kind = plat::PeKind::GeneralPurpose;
  t.perf_factor = perf;
  t.power_factor = power;
  t.avf = 0.4;
  t.beta_aging = 2.0;
  return t;
}

plat::PeType dsp_type() {
  plat::PeType t;
  t.kind = plat::PeKind::Dsp;
  t.perf_factor = 0.6;
  t.power_factor = 1.3;
  t.avf = 0.3;
  t.beta_aging = 2.4;
  return t;
}

/// Four platform shapes: production HMPSoC, degenerate single PE,
/// homogeneous dual-core bus, and an 8-PE three-type mesh.
plat::Platform make_platform(std::size_t shape) {
  plat::Platform hw;
  switch (shape % 4) {
    case 0:
      return plat::make_default_hmpsoc();
    case 1: {
      const auto t = hw.add_pe_type(gp_type(1.0, 1.0));
      hw.add_pe(t);
      return hw;
    }
    case 2: {
      const auto t = hw.add_pe_type(gp_type(1.0, 1.0));
      hw.add_pe(t);
      hw.add_pe(t);
      return hw;
    }
    default: {
      const auto g0 = hw.add_pe_type(gp_type(1.0, 1.0));
      const auto g1 = hw.add_pe_type(gp_type(1.4, 0.7));
      const auto d = hw.add_pe_type(dsp_type());
      for (int i = 0; i < 4; ++i) hw.add_pe(g0);
      for (int i = 0; i < 2; ++i) hw.add_pe(g1);
      for (int i = 0; i < 2; ++i) hw.add_pe(d);
      plat::Interconnect ic;
      ic.topology = plat::Topology::Mesh2D;
      ic.mesh_columns = 4;
      hw.set_interconnect(ic);
      return hw;
    }
  }
}

rel::ClrGranularity granularity_for(std::size_t i) {
  switch (i % 3) {
    case 0:
      return rel::ClrGranularity::Full;
    case 1:
      return rel::ClrGranularity::Coarse;
    default:
      return rel::ClrGranularity::HwOnly;
  }
}

/// Seeded fuzz case. Sizes sweep 1..40; every 10th case jumps to 65..94
/// tasks so the per-lane scheduler's multi-word ready bitmap (n > 64, no
/// lockstep) is exercised. Every 9th case pushes power magnitudes to an
/// extreme (the generator validates base_power > 0, so exactly-zero power —
/// the key-unsafe lane class of the sorting-network sweep — cannot occur in
/// a valid context and that path stays purely defensive): tiny powers drive
/// the running-sum sweep into the subnormal range, huge ones toward
/// overflow, both of which must still come out bit-identical.
std::unique_ptr<exp::AppInstance> make_case(std::size_t i) {
  tg::GeneratorParams gp;
  gp.num_tasks = (i % 10 == 9) ? 65 + (i % 30) : 1 + (i % 40);
  gp.max_out_degree = 2 + (i % 4);
  gp.max_in_degree = 2 + (i % 3);
  gp.fan_in_prob = 0.15 + 0.05 * static_cast<double>(i % 7);
  util::Rng rng(exp::derive_seed(kSuiteTag, i));
  tg::TaskGraph graph = tg::TgffGenerator(gp).generate(rng);
  rel::ImplGenParams ip;
  if (i % 9 == 4) {
    const double scale = (i % 2 == 0) ? 1e-290 : 1e120;
    ip.base_power_min = 0.6 * scale;
    ip.base_power_max = 1.6 * scale;
  }
  return std::make_unique<exp::AppInstance>(std::move(graph), make_platform(i),
                                            granularity_for(i), rel::FaultModel{}, ip,
                                            exp::derive_seed(kSuiteTag + 1, i));
}

/// Uniformly random valid configuration. `prio_mode` picks the priority
/// domain: 0 = in-range [0, n) (bucketable / lockstep), 1 = wide int32
/// values incl. negatives (linear-fallback lanes), 2 = mixed per task.
sched::Configuration random_config(const sched::EvalContext& ctx, util::Rng& rng, int prio_mode) {
  const std::size_t n = ctx.graph->num_tasks();
  sched::Configuration cfg;
  cfg.tasks.resize(n);
  for (tg::TaskId t = 0; t < n; ++t) {
    std::vector<plat::PeId> pes;
    for (const auto& pe : ctx.platform->pes()) {
      if (!ctx.impls->compatible_with(t, pe.type).empty()) pes.push_back(pe.id);
    }
    if (pes.empty()) throw std::logic_error("fuzz case: task has no runnable PE");
    const plat::PeId pe = pes[rng.index(pes.size())];
    const auto compat = ctx.impls->compatible_with(t, ctx.platform->pe(pe).type);
    cfg[t].pe = pe;
    cfg[t].impl_index = static_cast<std::uint32_t>(compat[rng.index(compat.size())]);
    cfg[t].clr_index = static_cast<std::uint32_t>(rng.index(ctx.clr_space->size()));
    const bool wide = prio_mode == 1 || (prio_mode == 2 && t % 2 == 0);
    cfg[t].priority = wide ? static_cast<std::int32_t>(rng.index(1u << 20)) - (1 << 19)
                           : static_cast<std::int32_t>(rng.index(n));
  }
  return cfg;
}

struct Oracle {
  double makespan, func_rel, peak_power, energy, system_mttf;
};

struct Case {
  std::unique_ptr<exp::AppInstance> app;
  std::unique_ptr<sched::CompiledGraph> cg;
  std::vector<sched::Configuration> cfgs;
  std::vector<Oracle> want;
};

void expect_identical(const Oracle& want, const sched::KernelMetrics& got, std::size_t case_index,
                      std::size_t cfg_index, std::size_t batch_size) {
  SCOPED_TRACE(::testing::Message() << "case " << case_index << " cfg " << cfg_index
                                    << " batch_size " << batch_size);
  EXPECT_EQ(want.makespan, got.makespan);
  EXPECT_EQ(want.func_rel, got.func_rel);
  EXPECT_EQ(want.peak_power, got.peak_power);
  EXPECT_EQ(want.energy, got.energy);
  EXPECT_EQ(want.system_mttf, got.system_mttf);
}

// The main fuzz sweep: every configuration must come out bit-identical to
// the reference oracle through every caller batch size, at jobs=1 and
// jobs=8 (per-thread BatchScratch arenas, like the GA's evaluation loop).
TEST(BatchDifferential, BitIdenticalToReferenceAtAllBatchSizesAndJobs1And8) {
  const sched::ReferenceScheduler oracle;
  util::ThreadPool pool1(1);
  util::ThreadPool pool8(8);

  for (std::size_t base = 0; base < kNumCases; base += kCaseBatch) {
    std::vector<Case> cases(kCaseBatch);
    for (std::size_t k = 0; k < kCaseBatch; ++k) {
      const std::size_t i = base + k;
      cases[k].app = make_case(i);
      const sched::EvalContext& ctx = cases[k].app->context();
      cases[k].cg = std::make_unique<sched::CompiledGraph>(ctx);
      util::Rng rng(exp::derive_seed(kSuiteTag + 2, i));
      // Priority domains per configuration: mostly in-range (the lockstep
      // hot path), with wide and mixed configurations interleaved so blocks
      // combine bucketable and fallback lanes.
      for (std::size_t c = 0; c < kConfigs; ++c) {
        const int prio_mode = c % 8 == 5 ? 1 : (c % 8 == 6 ? 2 : 0);
        sched::Configuration cfg = random_config(ctx, rng, prio_mode);
        const auto res = oracle.run(ctx, cfg);
        cases[k].want.push_back(
            {res.makespan, res.func_rel, res.peak_power, res.energy, res.system_mttf});
        cases[k].cfgs.push_back(std::move(cfg));
      }
    }

    for (util::ThreadPool* pool : {&pool1, &pool8}) {
      std::vector<std::vector<sched::KernelMetrics>> out(kCaseBatch);
      pool->parallel_for(kCaseBatch, [&](std::size_t k) {
        thread_local sched::BatchScratch scratch;
        const Case& cs = cases[k];
        out[k].assign(cs.cfgs.size() * std::size(kBatchSizes), sched::KernelMetrics{});
        std::size_t off = 0;
        for (const std::size_t bs : kBatchSizes) {
          // Feed the whole configuration list through spans of `bs` (the
          // tail span is shorter), all into one output strip.
          for (std::size_t c = 0; c < cs.cfgs.size(); c += bs) {
            const std::size_t len = std::min(bs, cs.cfgs.size() - c);
            cs.cg->evaluate_batch({cs.cfgs.data() + c, len}, scratch,
                                  {out[k].data() + off + c, len});
          }
          off += cs.cfgs.size();
        }
      });
      for (std::size_t k = 0; k < kCaseBatch; ++k) {
        std::size_t off = 0;
        for (const std::size_t bs : kBatchSizes) {
          for (std::size_t c = 0; c < cases[k].cfgs.size(); ++c) {
            expect_identical(cases[k].want[c], out[k][off + c], base + k, c, bs);
          }
          off += cases[k].cfgs.size();
        }
      }
    }
  }
}

// evaluate_block with explicit lane counts 1..kLanes: the padded lanes (a
// replicated real genome) must never change the real lanes' bits, and the
// per-task windows left in the scratch must match the oracle's.
TEST(BatchDifferential, PartialBlocksMatchOracleIncludingWindows) {
  const sched::ReferenceScheduler oracle;
  sched::BatchScratch scratch;
  for (std::size_t i = 0; i < 24; ++i) {
    const auto app = make_case(5 * i + 2);
    const sched::EvalContext& ctx = app->context();
    const sched::CompiledGraph cg(ctx);
    const std::size_t n = ctx.graph->num_tasks();
    util::Rng rng(exp::derive_seed(kSuiteTag + 3, i));
    std::vector<sched::Configuration> cfgs;
    for (std::size_t c = 0; c < sched::BatchGenomes::kLanes; ++c) {
      cfgs.push_back(random_config(ctx, rng, static_cast<int>(c % 3)));
    }
    for (std::size_t lanes = 1; lanes <= sched::BatchGenomes::kLanes; ++lanes) {
      scratch.bind(n, ctx.platform->num_pes());
      for (std::size_t l = 0; l < lanes; ++l) scratch.genomes.set(l, cfgs[l]);
      sched::KernelMetrics out[sched::BatchGenomes::kLanes];
      cg.evaluate_block(scratch.genomes, lanes, scratch, out);
      for (std::size_t l = 0; l < lanes; ++l) {
        const auto want = oracle.run(ctx, cfgs[l]);
        SCOPED_TRACE(::testing::Message() << "case " << i << " lanes " << lanes << " lane " << l);
        EXPECT_EQ(want.makespan, out[l].makespan);
        EXPECT_EQ(want.func_rel, out[l].func_rel);
        EXPECT_EQ(want.peak_power, out[l].peak_power);
        EXPECT_EQ(want.energy, out[l].energy);
        EXPECT_EQ(want.system_mttf, out[l].system_mttf);
        for (std::size_t t = 0; t < n; ++t) {
          EXPECT_EQ(want.tasks[t].start, scratch.start[t * sched::BatchScratch::kLanes + l]);
          EXPECT_EQ(want.tasks[t].end, scratch.end[t * sched::BatchScratch::kLanes + l]);
        }
      }
    }
  }
}

// Invalid genes must throw std::invalid_argument through the batched entry
// points exactly like the scalar kernel — including when the bad lane sits
// in a block next to valid ones — and leave the scratch reusable.
TEST(BatchDifferential, InvalidConfigurationsThrowLikeScalar) {
  const auto app = make_case(0);
  const sched::EvalContext& ctx = app->context();
  const sched::CompiledGraph cg(ctx);
  const std::size_t n = ctx.graph->num_tasks();
  util::Rng rng(exp::derive_seed(kSuiteTag + 4, 0));
  std::vector<sched::Configuration> cfgs;
  for (std::size_t c = 0; c < 2 * sched::BatchGenomes::kLanes; ++c) {
    cfgs.push_back(random_config(ctx, rng, 0));
  }
  sched::BatchScratch scratch;
  sched::EvalScratch sscratch;
  std::vector<sched::KernelMetrics> out(cfgs.size());

  const auto corrupt = [&](std::size_t idx, auto&& mutate) {
    std::vector<sched::Configuration> bad = cfgs;
    mutate(bad[idx]);
    EXPECT_THROW(cg.evaluate(bad[idx], sscratch), std::invalid_argument);
    EXPECT_THROW(cg.evaluate_batch({bad.data(), bad.size()}, scratch,
                                   {out.data(), out.size()}),
                 std::invalid_argument);
    // The arena must stay usable after the throw.
    cg.evaluate_batch({cfgs.data(), cfgs.size()}, scratch, {out.data(), out.size()});
    const auto want = cg.evaluate(cfgs[idx], sscratch);
    EXPECT_EQ(want.makespan, out[idx].makespan);
    EXPECT_EQ(want.peak_power, out[idx].peak_power);
  };

  // Bad lane in the middle of the first block, in the second block, and in
  // the LAST lane of each block — pe == P on the last lane is the case where
  // an unclamped phase-1 scatter would write one element past run_off, so
  // ASan catches any regression of the bounds clamp.
  for (const std::size_t idx :
       {std::size_t{3}, sched::BatchGenomes::kLanes - 1, sched::BatchGenomes::kLanes + 1,
        2 * sched::BatchGenomes::kLanes - 1}) {
    corrupt(idx, [&](sched::Configuration& c) {
      c[0].pe = static_cast<plat::PeId>(ctx.platform->num_pes());
    });
    // A huge PE gene makes any unclamped indexing a far-out-of-bounds write.
    corrupt(idx, [&](sched::Configuration& c) {
      c[n / 2].pe = std::numeric_limits<plat::PeId>::max();
    });
    corrupt(idx, [&](sched::Configuration& c) {
      c[n - 1].impl_index = std::numeric_limits<std::uint32_t>::max();
    });
    corrupt(idx, [&](sched::Configuration& c) {
      c[n / 2].clr_index = static_cast<std::uint32_t>(ctx.clr_space->size());
    });
  }

  // Size mismatch throws from the transpose itself.
  std::vector<sched::Configuration> bad = cfgs;
  bad[2].tasks.resize(n + 1);
  EXPECT_THROW(cg.evaluate_batch({bad.data(), bad.size()}, scratch, {out.data(), out.size()}),
               std::invalid_argument);
}

}  // namespace
}  // namespace clr
