#include "schedule/scheduler.hpp"

#include <gtest/gtest.h>

#include "platform/platform.hpp"
#include "reliability/clr_config.hpp"
#include "reliability/implementation.hpp"
#include "taskgraph/generator.hpp"

namespace clr::sched {
namespace {

/// Two-PE homogeneous fixture with hand-authored implementations so expected
/// schedules can be computed by hand (lambda_seu = 0 keeps AvgExT == MinExT).
class HandScheduleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    plat::PeType t;
    t.perf_factor = 1.0;
    t.power_factor = 1.0;
    t.avf = 0.5;
    const auto tid = hw_.add_pe_type(t);
    hw_.add_pe(tid);
    hw_.add_pe(tid);

    ctx_.graph = &graph_;
    ctx_.platform = &hw_;
    ctx_.impls = &impls_;
    ctx_.clr_space = &clr_;
    ctx_.metrics = rel::MetricsModel(rel::FaultModel{0.0});
  }

  void add_task(double time, double power = 1.0, double criticality = 1.0) {
    graph_.add_task(0, criticality);
    impls_.resize(graph_.num_tasks());
    rel::Implementation impl;
    impl.pe_type = 0;
    impl.base_time = time;
    impl.base_power = power;
    impls_.add(static_cast<tg::TaskId>(graph_.num_tasks() - 1), impl);
  }

  Configuration config_all(plat::PeId pe) const {
    Configuration cfg;
    cfg.tasks.assign(graph_.num_tasks(), TaskAssignment{pe, 0, 0, 0});
    return cfg;
  }

  tg::TaskGraph graph_;
  plat::Platform hw_;
  rel::ImplementationSet impls_;
  rel::ClrSpace clr_{rel::ClrGranularity::HwOnly};
  EvalContext ctx_;
  ListScheduler sched_;
};

TEST_F(HandScheduleTest, SingleTask) {
  add_task(10.0, 2.0);
  const auto res = sched_.run(ctx_, config_all(0));
  EXPECT_DOUBLE_EQ(res.makespan, 10.0);
  EXPECT_DOUBLE_EQ(res.energy, 20.0);
  EXPECT_DOUBLE_EQ(res.peak_power, 2.0);
  EXPECT_DOUBLE_EQ(res.func_rel, 1.0);  // lambda = 0
}

TEST_F(HandScheduleTest, ChainOnSamePeSkipsCommTime) {
  add_task(10.0);
  add_task(5.0);
  graph_.add_edge(0, 1, 7.0, 100);
  const auto res = sched_.run(ctx_, config_all(0));
  EXPECT_DOUBLE_EQ(res.makespan, 15.0);  // no comm cost on the same PE
}

TEST_F(HandScheduleTest, ChainAcrossPesPaysCommTime) {
  add_task(10.0);
  add_task(5.0);
  graph_.add_edge(0, 1, 7.0, 100);
  Configuration cfg = config_all(0);
  cfg[1].pe = 1;
  const auto res = sched_.run(ctx_, cfg);
  EXPECT_DOUBLE_EQ(res.makespan, 22.0);  // 10 + 7 + 5
}

TEST_F(HandScheduleTest, IndependentTasksOverlapOnDifferentPes) {
  add_task(10.0, 1.0);
  add_task(10.0, 2.0);
  Configuration cfg = config_all(0);
  cfg[1].pe = 1;
  const auto res = sched_.run(ctx_, cfg);
  EXPECT_DOUBLE_EQ(res.makespan, 10.0);
  EXPECT_DOUBLE_EQ(res.peak_power, 3.0);  // both run simultaneously
  EXPECT_DOUBLE_EQ(res.energy, 30.0);
}

TEST_F(HandScheduleTest, IndependentTasksSerializeOnSamePe) {
  add_task(10.0, 1.0);
  add_task(10.0, 2.0);
  const auto res = sched_.run(ctx_, config_all(0));
  EXPECT_DOUBLE_EQ(res.makespan, 20.0);
  EXPECT_DOUBLE_EQ(res.peak_power, 2.0);  // never simultaneous
}

TEST_F(HandScheduleTest, PriorityOrdersReadyTasks) {
  add_task(10.0);
  add_task(4.0);
  add_task(6.0);
  // Tasks 1 and 2 are independent of 0; all on PE 0. Higher priority first.
  Configuration cfg = config_all(0);
  cfg[0].priority = 0;
  cfg[1].priority = 5;
  cfg[2].priority = 9;
  const auto res = sched_.run(ctx_, cfg);
  // Order: task 2 (prio 9), task 1 (prio 5), task 0 (prio 0).
  EXPECT_DOUBLE_EQ(res.tasks[2].start, 0.0);
  EXPECT_DOUBLE_EQ(res.tasks[1].start, 6.0);
  EXPECT_DOUBLE_EQ(res.tasks[0].start, 10.0);
}

TEST_F(HandScheduleTest, EqualPriorityBreaksTiesByTaskId) {
  add_task(3.0);
  add_task(3.0);
  const auto res = sched_.run(ctx_, config_all(0));
  EXPECT_DOUBLE_EQ(res.tasks[0].start, 0.0);
  EXPECT_DOUBLE_EQ(res.tasks[1].start, 3.0);
}

TEST_F(HandScheduleTest, FunctionalReliabilityWeightsByCriticality) {
  // Re-enable faults; two tasks with different criticalities.
  ctx_.metrics = rel::MetricsModel(rel::FaultModel{0.05});
  add_task(10.0, 1.0, 3.0);
  add_task(10.0, 1.0, 1.0);
  const auto res = sched_.run(ctx_, config_all(0));
  const double p = res.tasks[0].metrics.err_prob;  // same for both tasks
  EXPECT_NEAR(res.func_rel, (1.0 - p) * 0.75 + (1.0 - p) * 0.25, 1e-12);
  EXPECT_LT(res.func_rel, 1.0);
}

TEST_F(HandScheduleTest, ValidationCatchesSizeMismatch) {
  add_task(1.0);
  Configuration cfg;  // empty
  EXPECT_THROW(sched_.run(ctx_, cfg), std::invalid_argument);
}

TEST_F(HandScheduleTest, ValidationCatchesBadIndices) {
  add_task(1.0);
  auto cfg = config_all(0);
  cfg[0].pe = 99;
  EXPECT_THROW(sched_.run(ctx_, cfg), std::invalid_argument);
  cfg = config_all(0);
  cfg[0].impl_index = 42;
  EXPECT_THROW(sched_.run(ctx_, cfg), std::invalid_argument);
  cfg = config_all(0);
  cfg[0].clr_index = 1000;
  EXPECT_THROW(sched_.run(ctx_, cfg), std::invalid_argument);
}

TEST_F(HandScheduleTest, ClrConfigChangesMetrics) {
  ctx_.metrics = rel::MetricsModel(rel::FaultModel{0.05});
  add_task(10.0);
  auto plain = config_all(0);
  auto protected_cfg = config_all(0);
  protected_cfg[0].clr_index = 2;  // HwOnly space: partial TMR
  const auto res_plain = sched_.run(ctx_, plain);
  const auto res_prot = sched_.run(ctx_, protected_cfg);
  EXPECT_GT(res_prot.func_rel, res_plain.func_rel);
  EXPECT_GT(res_prot.energy, res_plain.energy);
}

/// Property tests on generated applications: schedules must always validate.
class ScheduleProperty : public ::testing::TestWithParam<std::tuple<std::size_t, int>> {};

TEST_P(ScheduleProperty, RandomConfigurationsProduceValidSchedules) {
  const auto [num_tasks, seed] = GetParam();
  tg::GeneratorParams gp;
  gp.num_tasks = num_tasks;
  util::Rng rng(static_cast<std::uint64_t>(seed) * 7919 + num_tasks);
  const auto graph = tg::TgffGenerator(gp).generate(rng);
  const auto hw = plat::make_default_hmpsoc();
  const auto impls = rel::generate_implementations(graph, hw, rel::ImplGenParams{}, rng);
  const rel::ClrSpace clr(rel::ClrGranularity::Full);

  EvalContext ctx;
  ctx.graph = &graph;
  ctx.platform = &hw;
  ctx.impls = &impls;
  ctx.clr_space = &clr;

  ListScheduler sched;
  for (int trial = 0; trial < 10; ++trial) {
    // Build a random valid configuration (PE choice restricted to types with
    // a compatible implementation).
    Configuration cfg;
    cfg.tasks.resize(graph.num_tasks());
    for (tg::TaskId t = 0; t < graph.num_tasks(); ++t) {
      std::vector<std::pair<plat::PeId, std::size_t>> choices;
      for (const auto& pe : hw.pes()) {
        for (std::size_t i : impls.compatible_with(t, pe.type)) choices.emplace_back(pe.id, i);
      }
      const auto [pe, impl] = choices[rng.index(choices.size())];
      cfg[t] = TaskAssignment{pe, static_cast<std::uint32_t>(impl),
                              static_cast<std::uint32_t>(rng.index(clr.size())),
                              rng.uniform_int(0, static_cast<int>(graph.num_tasks()) - 1)};
    }
    const auto res = sched.run(ctx, cfg);
    EXPECT_EQ(validate_schedule(ctx, cfg, res), "");
    // Makespan is bounded below by the critical path of average times.
    std::vector<double> costs(graph.num_tasks());
    for (tg::TaskId t = 0; t < graph.num_tasks(); ++t) costs[t] = res.tasks[t].metrics.avg_ext;
    EXPECT_GE(res.makespan + 1e-9, graph.critical_path_length(costs));
    EXPECT_GT(res.energy, 0.0);
    EXPECT_GT(res.peak_power, 0.0);
    EXPECT_GT(res.func_rel, 0.0);
    EXPECT_LE(res.func_rel, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ScheduleProperty,
                         ::testing::Combine(::testing::Values(5, 10, 20, 40, 80),
                                            ::testing::Values(1, 2, 3)));

}  // namespace
}  // namespace clr::sched
