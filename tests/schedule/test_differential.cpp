// Differential oracle suite (DESIGN.md §5.9): the flat CompiledGraph kernel
// must be *bit-identical* to ReferenceScheduler — the original pointer-based
// implementation kept verbatim — on every metric and every per-task window.
// "Bit-identical" is checked with exact double equality (EXPECT_EQ), not
// near-equality: the kernel's contract is that it performs the same
// floating-point operations in the same order, so any ULP drift is a bug.
//
// Coverage: 500 seeded TGFF-style random graphs crossed with five platform
// shapes (default HMPSoC, single-PE, homogeneous dual-core bus, two-type
// mesh, eight-PE three-type mesh) and all three CLR granularities, each
// evaluated on several random valid configurations. Every case is run in
// jobs=1 and jobs=8 mode through util::ThreadPool with per-thread scratch
// arenas, proving results do not depend on the thread count.

#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <stdexcept>
#include <vector>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "experiments/app.hpp"
#include "platform/platform.hpp"
#include "schedule/compiled_graph.hpp"
#include "schedule/heft.hpp"
#include "schedule/scheduler.hpp"
#include "taskgraph/generator.hpp"

namespace clr {
namespace {

constexpr std::size_t kNumCases = 500;
constexpr std::size_t kBatch = 50;         // cases held in memory at once
constexpr std::size_t kConfigsPerCase = 2; // random configurations per case
constexpr std::uint64_t kSuiteTag = 0xD1FFu;

/// One GeneralPurpose PE type; perf/power spread by `index`.
plat::PeType gp_type(double perf, double power) {
  plat::PeType t;
  t.kind = plat::PeKind::GeneralPurpose;
  t.perf_factor = perf;
  t.power_factor = power;
  t.avf = 0.4;
  t.beta_aging = 2.0;
  return t;
}

plat::PeType dsp_type() {
  plat::PeType t;
  t.kind = plat::PeKind::Dsp;
  t.perf_factor = 0.6;
  t.power_factor = 1.3;
  t.avf = 0.3;
  t.beta_aging = 2.4;
  return t;
}

/// Five platform shapes exercising: the production platform, the degenerate
/// single PE, a homogeneous bus, a small heterogeneous mesh and a wide
/// three-type mesh (comm_factor > 1 paths).
plat::Platform make_platform(std::size_t shape) {
  plat::Platform hw;
  switch (shape % 5) {
    case 0:
      return plat::make_default_hmpsoc();
    case 1: {  // single PE
      const auto t = hw.add_pe_type(gp_type(1.0, 1.0));
      hw.add_pe(t);
      return hw;
    }
    case 2: {  // dual-core homogeneous bus
      const auto t = hw.add_pe_type(gp_type(1.0, 1.0));
      hw.add_pe(t);
      hw.add_pe(t);
      return hw;
    }
    case 3: {  // 4-PE two-type 2x2 mesh
      const auto g = hw.add_pe_type(gp_type(1.0, 1.0));
      const auto d = hw.add_pe_type(dsp_type());
      hw.add_pe(g);
      hw.add_pe(g);
      hw.add_pe(d);
      hw.add_pe(d);
      plat::Interconnect ic;
      ic.topology = plat::Topology::Mesh2D;
      ic.mesh_columns = 2;
      hw.set_interconnect(ic);
      return hw;
    }
    default: {  // 8-PE three-type 4x2 mesh
      const auto g0 = hw.add_pe_type(gp_type(1.0, 1.0));
      const auto g1 = hw.add_pe_type(gp_type(1.4, 0.7));
      const auto d = hw.add_pe_type(dsp_type());
      for (int i = 0; i < 4; ++i) hw.add_pe(g0);
      for (int i = 0; i < 2; ++i) hw.add_pe(g1);
      for (int i = 0; i < 2; ++i) hw.add_pe(d);
      plat::Interconnect ic;
      ic.topology = plat::Topology::Mesh2D;
      ic.mesh_columns = 4;
      hw.set_interconnect(ic);
      return hw;
    }
  }
}

rel::ClrGranularity granularity_for(std::size_t i) {
  switch (i % 3) {
    case 0:
      return rel::ClrGranularity::Full;
    case 1:
      return rel::ClrGranularity::Coarse;
    default:
      return rel::ClrGranularity::HwOnly;
  }
}

/// Seeded fuzz case: graph size sweeps 1..40 tasks; shape and granularity
/// cycle so every (shape, granularity) pair appears many times.
std::unique_ptr<exp::AppInstance> make_case(std::size_t i) {
  tg::GeneratorParams gp;
  gp.num_tasks = 1 + (i % 40);
  gp.max_out_degree = 2 + (i % 4);
  gp.max_in_degree = 2 + (i % 3);
  gp.fan_in_prob = 0.15 + 0.05 * static_cast<double>(i % 7);
  util::Rng rng(exp::derive_seed(kSuiteTag, i));
  tg::TaskGraph graph = tg::TgffGenerator(gp).generate(rng);
  return std::make_unique<exp::AppInstance>(std::move(graph), make_platform(i),
                                            granularity_for(i), rel::FaultModel{},
                                            rel::ImplGenParams{},
                                            exp::derive_seed(kSuiteTag + 1, i));
}

/// Uniformly random *valid* configuration: a PE with at least one compatible
/// implementation, a compatible implementation on it, an in-range CLR index
/// and a priority in [0, n). generate_implementations guarantees every task
/// runs on every non-accelerator PE type, so the PE candidate list is never
/// empty on these platforms.
sched::Configuration random_config(const sched::EvalContext& ctx, util::Rng& rng) {
  const std::size_t n = ctx.graph->num_tasks();
  sched::Configuration cfg;
  cfg.tasks.resize(n);
  for (tg::TaskId t = 0; t < n; ++t) {
    std::vector<plat::PeId> pes;
    for (const auto& pe : ctx.platform->pes()) {
      if (!ctx.impls->compatible_with(t, pe.type).empty()) pes.push_back(pe.id);
    }
    if (pes.empty()) throw std::logic_error("fuzz case: task has no runnable PE");
    const plat::PeId pe = pes[rng.index(pes.size())];
    const auto compat = ctx.impls->compatible_with(t, ctx.platform->pe(pe).type);
    cfg[t].pe = pe;
    cfg[t].impl_index = static_cast<std::uint32_t>(compat[rng.index(compat.size())]);
    cfg[t].clr_index = static_cast<std::uint32_t>(rng.index(ctx.clr_space->size()));
    cfg[t].priority = static_cast<std::int32_t>(rng.index(n));
  }
  return cfg;
}

struct Case {
  std::unique_ptr<exp::AppInstance> app;
  std::unique_ptr<sched::CompiledGraph> cg;
  std::vector<sched::Configuration> cfgs;
  std::vector<sched::ScheduleResult> ref;  // oracle result per configuration
};

/// Kernel output captured per (case, configuration) cell by the parallel run.
struct CellResult {
  sched::KernelMetrics metrics;
  std::vector<double> start, end;
};

void expect_identical(const sched::ScheduleResult& ref, const CellResult& got,
                      std::size_t case_index, std::size_t cfg_index) {
  SCOPED_TRACE(::testing::Message() << "case " << case_index << " cfg " << cfg_index);
  EXPECT_EQ(ref.makespan, got.metrics.makespan);
  EXPECT_EQ(ref.func_rel, got.metrics.func_rel);
  EXPECT_EQ(ref.peak_power, got.metrics.peak_power);
  EXPECT_EQ(ref.energy, got.metrics.energy);
  EXPECT_EQ(ref.system_mttf, got.metrics.system_mttf);
  ASSERT_EQ(ref.tasks.size(), got.start.size());
  for (std::size_t t = 0; t < ref.tasks.size(); ++t) {
    EXPECT_EQ(ref.tasks[t].start, got.start[t]) << "task " << t;
    EXPECT_EQ(ref.tasks[t].end, got.end[t]) << "task " << t;
  }
}

TEST(ScheduleDifferential, KernelBitIdenticalToReferenceAtJobs1And8) {
  const sched::ReferenceScheduler oracle;
  util::ThreadPool pool1(1);
  util::ThreadPool pool8(8);

  for (std::size_t base = 0; base < kNumCases; base += kBatch) {
    // Build the batch and its oracle results sequentially.
    std::vector<Case> cases(kBatch);
    for (std::size_t k = 0; k < kBatch; ++k) {
      const std::size_t i = base + k;
      cases[k].app = make_case(i);
      const sched::EvalContext& ctx = cases[k].app->context();
      cases[k].cg = std::make_unique<sched::CompiledGraph>(ctx);
      util::Rng rng(exp::derive_seed(kSuiteTag + 2, i));
      for (std::size_t c = 0; c < kConfigsPerCase; ++c) {
        sched::Configuration cfg = random_config(ctx, rng);
        cases[k].ref.push_back(oracle.run(ctx, cfg));
        cases[k].cfgs.push_back(std::move(cfg));
      }
    }

    // Evaluate every (case, configuration) cell through the kernel at both
    // thread counts; each worker reuses its own thread_local arena.
    const std::size_t cells = kBatch * kConfigsPerCase;
    for (util::ThreadPool* pool : {&pool1, &pool8}) {
      std::vector<CellResult> out(cells);
      pool->parallel_for(cells, [&](std::size_t cell) {
        thread_local sched::EvalScratch scratch;
        const Case& cs = cases[cell / kConfigsPerCase];
        const sched::Configuration& cfg = cs.cfgs[cell % kConfigsPerCase];
        out[cell].metrics = cs.cg->evaluate(cfg, scratch);
        out[cell].start.assign(scratch.start.begin(),
                               scratch.start.begin() + cs.app->graph().num_tasks());
        out[cell].end.assign(scratch.end.begin(),
                             scratch.end.begin() + cs.app->graph().num_tasks());
      });
      for (std::size_t cell = 0; cell < cells; ++cell) {
        expect_identical(cases[cell / kConfigsPerCase].ref[cell % kConfigsPerCase], out[cell],
                         base + cell / kConfigsPerCase, cell % kConfigsPerCase);
      }
    }
  }
}

// CompiledGraph::schedule must also reproduce the oracle's per-task metric
// bundles (the fields evaluate() does not return).
TEST(ScheduleDifferential, ScheduleResultMatchesReferencePerTaskMetrics) {
  const sched::ReferenceScheduler oracle;
  sched::EvalScratch scratch;
  for (std::size_t i = 0; i < 30; ++i) {
    const auto app = make_case(7 * i + 3);
    const sched::EvalContext& ctx = app->context();
    const sched::CompiledGraph cg(ctx);
    util::Rng rng(exp::derive_seed(kSuiteTag + 3, i));
    const sched::Configuration cfg = random_config(ctx, rng);
    const auto want = oracle.run(ctx, cfg);
    const auto got = cg.schedule(cfg, scratch);
    SCOPED_TRACE(::testing::Message() << "case " << i);
    EXPECT_EQ(want.makespan, got.makespan);
    EXPECT_EQ(want.func_rel, got.func_rel);
    EXPECT_EQ(want.peak_power, got.peak_power);
    EXPECT_EQ(want.energy, got.energy);
    EXPECT_EQ(want.system_mttf, got.system_mttf);
    ASSERT_EQ(want.tasks.size(), got.tasks.size());
    for (std::size_t t = 0; t < want.tasks.size(); ++t) {
      EXPECT_EQ(want.tasks[t].start, got.tasks[t].start);
      EXPECT_EQ(want.tasks[t].end, got.tasks[t].end);
      EXPECT_EQ(want.tasks[t].metrics.min_ext, got.tasks[t].metrics.min_ext);
      EXPECT_EQ(want.tasks[t].metrics.avg_ext, got.tasks[t].metrics.avg_ext);
      EXPECT_EQ(want.tasks[t].metrics.err_prob, got.tasks[t].metrics.err_prob);
      EXPECT_EQ(want.tasks[t].metrics.mttf, got.tasks[t].metrics.mttf);
      EXPECT_EQ(want.tasks[t].metrics.avg_power, got.tasks[t].metrics.avg_power);
      EXPECT_EQ(want.tasks[t].metrics.eta, got.tasks[t].metrics.eta);
    }
  }
}

// The CompiledGraph HEFT overloads (which fix the by-value cost-table copies
// of the pointer-based path) must seed the exact same configuration.
TEST(ScheduleDifferential, HeftSeedMatchesReferenceOverloads) {
  for (std::size_t i = 0; i < 60; ++i) {
    const auto app = make_case(11 * i + 1);
    const sched::EvalContext& ctx = app->context();
    const sched::CompiledGraph cg(ctx);

    const auto ranks_ref = sched::upward_ranks(ctx);
    const auto ranks_fast = sched::upward_ranks(cg);
    ASSERT_EQ(ranks_ref.size(), ranks_fast.size());
    for (std::size_t t = 0; t < ranks_ref.size(); ++t) {
      EXPECT_EQ(ranks_ref[t], ranks_fast[t]) << "rank of task " << t << " case " << i;
    }

    const auto want = sched::heft_seed(ctx);
    const auto got = sched::heft_seed(cg);
    ASSERT_EQ(want.size(), got.size());
    for (tg::TaskId t = 0; t < want.size(); ++t) {
      SCOPED_TRACE(::testing::Message() << "case " << i << " task " << t);
      EXPECT_EQ(want[t].pe, got[t].pe);
      EXPECT_EQ(want[t].impl_index, got[t].impl_index);
      EXPECT_EQ(want[t].clr_index, got[t].clr_index);
      EXPECT_EQ(want[t].priority, got[t].priority);
    }
  }
}

}  // namespace
}  // namespace clr
