#include "schedule/gantt.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "dse/mapping_problem.hpp"
#include "experiments/app.hpp"

namespace clr::sched {
namespace {

TEST(Gantt, RendersEveryUsedPeRow) {
  const auto app = exp::make_synthetic_app(8, 42);
  dse::MappingProblem problem(app->context(), dse::QosSpec{1e9, 0.0},
                              dse::ObjectiveMode::EnergyQos);
  util::Rng rng(1);
  const auto cfg = problem.decode(problem.random_genes(rng));
  const auto res = ListScheduler{}.run(app->context(), cfg);
  const std::string gantt = render_gantt(app->context(), cfg, res);

  std::set<plat::PeId> used;
  for (const auto& a : cfg.tasks) used.insert(a.pe);
  for (plat::PeId pe : used) {
    EXPECT_NE(gantt.find("PE" + std::to_string(pe) + " "), std::string::npos) << gantt;
  }
  EXPECT_NE(gantt.find("legend:"), std::string::npos);
}

TEST(Gantt, SerialTasksDoNotOverlapInTheRow) {
  // Two 10-unit tasks on one PE: the row should show two distinct labels,
  // each occupying about half of the axis.
  const auto app = exp::make_synthetic_app(2, 7);
  dse::MappingProblem problem(app->context(), dse::QosSpec{1e9, 0.0},
                              dse::ObjectiveMode::EnergyQos);
  // All-zero genes bind both tasks to their first allowed PE — the same
  // general-purpose core on the default platform — so they serialize.
  const auto cfg = problem.decode(std::vector<int>(problem.num_genes(), 0));
  ASSERT_EQ(cfg[0].pe, cfg[1].pe);
  const auto res = ListScheduler{}.run(app->context(), cfg);
  GanttOptions opt;
  opt.width = 40;
  const std::string gantt = render_gantt(app->context(), cfg, res, opt);
  const auto zero = std::count(gantt.begin(), gantt.end(), '0');
  const auto one = std::count(gantt.begin(), gantt.end(), '1');
  EXPECT_GT(zero, 0);
  EXPECT_GT(one, 0);
}

TEST(Gantt, IdlePesHiddenByDefaultShownOnRequest) {
  const auto app = exp::make_synthetic_app(2, 9);
  dse::MappingProblem problem(app->context(), dse::QosSpec{1e9, 0.0},
                              dse::ObjectiveMode::EnergyQos);
  util::Rng rng(3);
  const auto cfg = problem.decode(problem.random_genes(rng));
  const auto res = ListScheduler{}.run(app->context(), cfg);

  const std::string hidden = render_gantt(app->context(), cfg, res);
  GanttOptions opt;
  opt.show_idle_pes = true;
  const std::string shown = render_gantt(app->context(), cfg, res, opt);
  auto count_rows = [](const std::string& s) {
    std::size_t rows = 0;
    for (std::size_t pos = s.find("PE"); pos != std::string::npos; pos = s.find("PE", pos + 2)) {
      ++rows;
    }
    return rows;
  };
  EXPECT_LE(count_rows(hidden), 2u);
  EXPECT_EQ(count_rows(shown), app->platform().num_pes());
}

TEST(Gantt, RejectsBadInputs) {
  const auto app = exp::make_synthetic_app(2, 9);
  dse::MappingProblem problem(app->context(), dse::QosSpec{1e9, 0.0},
                              dse::ObjectiveMode::EnergyQos);
  util::Rng rng(4);
  const auto cfg = problem.decode(problem.random_genes(rng));
  const auto res = ListScheduler{}.run(app->context(), cfg);
  GanttOptions tiny;
  tiny.width = 2;
  EXPECT_THROW(render_gantt(app->context(), cfg, res, tiny), std::invalid_argument);
  Configuration empty;
  EXPECT_THROW(render_gantt(app->context(), empty, res), std::invalid_argument);
}

}  // namespace
}  // namespace clr::sched
