#include "schedule/dot.hpp"

#include <gtest/gtest.h>

#include "taskgraph/generator.hpp"

namespace clr::sched {
namespace {

TEST(Dot, PlainGraphContainsAllNodesAndEdges) {
  const auto g = tg::make_jpeg_encoder_graph();
  const std::string dot = to_dot(g);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  for (const auto& t : g.tasks()) {
    EXPECT_NE(dot.find("n" + std::to_string(t.id) + " ["), std::string::npos);
    if (!t.name.empty()) EXPECT_NE(dot.find(t.name), std::string::npos);
  }
  std::size_t arrow_count = 0;
  for (std::size_t pos = dot.find("->"); pos != std::string::npos; pos = dot.find("->", pos + 2)) {
    ++arrow_count;
  }
  EXPECT_EQ(arrow_count, g.num_edges());
}

TEST(Dot, MappedGraphColorsByPe) {
  const auto g = tg::make_jpeg_encoder_graph();
  Configuration cfg;
  cfg.tasks.assign(g.num_tasks(), TaskAssignment{0, 0, 0, 0});
  cfg.tasks[1].pe = 1;
  const std::string dot = to_dot(g, cfg);
  EXPECT_NE(dot.find("fillcolor"), std::string::npos);
  EXPECT_NE(dot.find("PE0"), std::string::npos);
  EXPECT_NE(dot.find("PE1"), std::string::npos);
}

TEST(Dot, MappedGraphRejectsSizeMismatch) {
  const auto g = tg::make_jpeg_encoder_graph();
  Configuration cfg;
  EXPECT_THROW(to_dot(g, cfg), std::invalid_argument);
}

TEST(Dot, UnnamedTasksGetGeneratedLabels) {
  tg::GeneratorParams p;
  p.num_tasks = 5;
  util::Rng rng(1);
  const auto g = tg::TgffGenerator(p).generate(rng);
  const std::string dot = to_dot(g);
  EXPECT_NE(dot.find("t0"), std::string::npos);
}

}  // namespace
}  // namespace clr::sched
