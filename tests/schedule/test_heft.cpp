#include "schedule/heft.hpp"

#include <gtest/gtest.h>

#include "dse/mapping_problem.hpp"
#include "experiments/app.hpp"

namespace clr::sched {
namespace {

TEST(UpwardRanks, ChainRanksDecreaseDownstream) {
  const auto app = exp::make_synthetic_app(10, 333);
  const auto ranks = upward_ranks(app->context());
  const auto& g = app->graph();
  for (const auto& e : g.edges()) {
    EXPECT_GT(ranks[e.src], ranks[e.dst]);  // a predecessor outranks its successor
  }
  for (tg::TaskId t = 0; t < g.num_tasks(); ++t) {
    EXPECT_GE(ranks[t], mean_execution_time(app->context(), t) - 1e-12);
  }
}

TEST(UpwardRanks, SinkRankEqualsOwnMeanExecution) {
  const auto app = exp::make_synthetic_app(10, 333);
  const auto ranks = upward_ranks(app->context());
  for (tg::TaskId t : app->graph().sinks()) {
    EXPECT_NEAR(ranks[t], mean_execution_time(app->context(), t), 1e-12);
  }
}

TEST(HeftSeed, ProducesValidSchedulableConfiguration) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const auto app = exp::make_synthetic_app(20, seed);
    const auto cfg = heft_seed(app->context());
    ListScheduler sched;
    const auto res = sched.run(app->context(), cfg);  // throws if invalid
    EXPECT_EQ(validate_schedule(app->context(), cfg, res), "");
    // Unprotected CLR everywhere.
    for (const auto& a : cfg.tasks) EXPECT_EQ(a.clr_index, 0u);
  }
}

TEST(HeftSeed, BeatsRandomMappingsOnMakespan) {
  const auto app = exp::make_synthetic_app(30, 555);
  dse::MappingProblem problem(app->context(), dse::QosSpec{1e9, 0.0},
                              dse::ObjectiveMode::EnergyQos);
  ListScheduler sched;
  const auto heft_cfg = heft_seed(app->context());
  const double heft_makespan = sched.run(app->context(), heft_cfg).makespan;

  util::Rng rng(9);
  double random_sum = 0.0;
  const int trials = 30;
  for (int i = 0; i < trials; ++i) {
    auto cfg = problem.decode(problem.random_genes(rng));
    for (auto& a : cfg.tasks) a.clr_index = 0;  // fair: unprotected too
    random_sum += sched.run(app->context(), cfg).makespan;
  }
  EXPECT_LT(heft_makespan, random_sum / trials);
}

TEST(HeftSeed, EncodableIntoTheMappingProblem) {
  const auto app = exp::make_synthetic_app(15, 777);
  dse::MappingProblem problem(app->context(), dse::QosSpec{1e9, 0.0},
                              dse::ObjectiveMode::EnergyQos);
  const auto cfg = heft_seed(app->context());
  std::vector<int> genes;
  EXPECT_NO_THROW(genes = problem.encode(cfg));
  const auto roundtrip = problem.decode(genes);
  // PE bindings and implementations survive the encode/decode round trip
  // (priorities are clamped to [0, T), which HEFT respects by construction).
  for (tg::TaskId t = 0; t < app->graph().num_tasks(); ++t) {
    EXPECT_EQ(roundtrip[t].pe, cfg[t].pe);
    EXPECT_EQ(roundtrip[t].impl_index, cfg[t].impl_index);
    EXPECT_EQ(roundtrip[t].priority, cfg[t].priority);
  }
}

TEST(HeftSeed, Deterministic) {
  const auto app = exp::make_synthetic_app(25, 999);
  const auto a = heft_seed(app->context());
  const auto b = heft_seed(app->context());
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace clr::sched
